// waveck command-line front end.
//
// The full command set lives in the kCommands table below; `usage()` is
// generated from it, so the table is the single source of truth. Global
// flags (--jobs N, --metrics FILE.json, --trace FILE.jsonl) are stripped
// from argv before command dispatch and work with every command.
//
// DELAYS is an annotation file (`net dmin dmax`, `*` = default); without
// one every gate gets the paper's delay of 10.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/learning.hpp"
#include "common/flight_recorder.hpp"
#include "common/telemetry.hpp"
#include "explain/explain_cli.hpp"
#include "explain/trace_reader.hpp"
#include "prof/heartbeat.hpp"
#include "prof/perf_counters.hpp"
#include "prof/profiler.hpp"
#include "fuzz/engine.hpp"
#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"
#include "netlist/transforms.hpp"
#include "netlist/verilog_io.hpp"
#include "sched/check_scheduler.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/floating_sim.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/transition_sim.hpp"
#include "sta/sta.hpp"
#include "verify/pessimism.hpp"
#include "verify/report_io.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace waveck;

/// Worker threads for the suite/exact-delay commands (global --jobs flag).
/// 0 = one per hardware thread; 1 = serial (no pool).
std::size_t g_jobs = 0;

/// Sampling rate for --profile / the profile command (--profile-hz flag).
std::uint32_t g_profile_hz = 997;

/// One row of the command set; usage() and the file's header comment derive
/// from this table, so adding a command means adding a row here.
struct CommandSpec {
  const char* name;
  const char* args;
  const char* desc;
};

constexpr CommandSpec kCommands[] = {
    {"sta", "FILE [DELAYS]", "topological timing report"},
    {"check", "FILE DELTA [OUT] [DELAYS] [--json] [--canon] [--timeout-ms N]",
     "can a transition occur at/after DELTA?"},
    {"delay", "FILE [DELAYS]", "exact floating-mode delay + witness"},
    {"outputs", "FILE [DELAYS]", "per-output pessimism table"},
    {"learn", "FILE", "static-learning statistics"},
    {"path", "FILE [DELAYS]", "exact delay + sensitizable path"},
    {"trans", "FILE V1 V2 [DELAYS]", "two-vector transition delays"},
    {"mc", "FILE [SAMPLES] [DELAYS]", "Monte-Carlo delay lower bound"},
    {"json", "FILE [DELAYS]", "exact delay report as JSON"},
    {"profile", "FILE [OUT] [DELAYS] [--seconds S]",
     "CPU-profile the delay search; write speedscope JSON + folded stacks"},
    {"gen", "NAME [v]", "emit a generated circuit as .bench (or Verilog)"},
    {"fuzz", "[--seed N] [--runs N] ...",
     "differential fuzzing vs the exhaustive oracle (see waveck_fuzz)"},
    {"explain", "TRACE.jsonl [--json] ...",
     "analyze a --trace capture: search trees, chrome/DOT export"},
    {"serve", "[--socket PATH] [--tcp PORT] ...",
     "long-lived check daemon: JSONL requests over a socket (doc/SERVE.md)"},
    {"client", "[--socket PATH|--tcp PORT] CMD ...",
     "send requests to a running daemon (check/load/list/... or raw JSONL)"},
};

int usage() {
  std::cerr << "usage: waveck <command> [--jobs N] [--metrics FILE.json] "
               "[--trace FILE.jsonl] [--counters] [--progress [SECS]] "
               "[--profile FILE] [args]\n";
  for (const auto& cmd : kCommands) {
    std::cerr << "  " << std::left << std::setw(8) << cmd.name
              << std::setw(26) << cmd.args << cmd.desc << "\n";
  }
  std::cerr <<
      "gen NAMEs: c17, c432..c7552, hrapcenko, csa16, csel16, ks16, mul8, "
      "wallace8\n"
      "FILE may be ISCAS `.bench` or structural Verilog `.v`.\n"
      "global flags (any command):\n"
      "  --jobs N              worker threads for suite verification and the\n"
      "                        exact-delay search (0 = one per hardware\n"
      "                        thread, the default; 1 = serial)\n"
      "  --metrics FILE.json   write the telemetry registry snapshot on exit\n"
      "  --trace FILE.jsonl    stream JSONL engine events (propagate,\n"
      "                        decision, backtrack, stem, gitd_round, ...)\n"
      "  --counters            per-stage hardware counters (cycles, IPC,\n"
      "                        cache misses) in reports; degrades to\n"
      "                        wall-clock when perf_event_open is denied\n"
      "  --progress [SECS]     heartbeat line to stderr (+ JSONL event)\n"
      "                        every SECS seconds (default 5) and a\n"
      "                        watchdog snapshot when progress stalls\n"
      "  --profile FILE        sample the whole command with the in-process\n"
      "                        profiler; write speedscope JSON to FILE and\n"
      "                        collapsed stacks next to it\n"
      "  --profile-hz N        profiler sampling rate (default 997)\n"
      "  --blackbox DIR        arm the flight recorder's post-mortem dumps:\n"
      "                        watchdog stalls, deadline expiries and fatal\n"
      "                        signals write flight-*.jsonl into DIR, plus\n"
      "                        one \"exit\" dump when the command finishes\n"
      "                        (load them with `waveck explain`)\n";
  return 2;
}

Circuit load(const std::string& path, const std::string& delays) {
  const bool verilog = path.size() > 2 && path.substr(path.size() - 2) == ".v";
  Circuit c = verilog ? read_verilog_file(path) : read_bench_file(path);
  if (!delays.empty()) {
    read_delays_file(delays, c);
  } else {
    c.set_uniform_delay(DelaySpec::fixed(10));
  }
  return decompose_for_solver(c);
}

int cmd_sta(const Circuit& c) {
  const StaReport r = run_sta(c);
  std::cout << c.name() << ": " << c.num_gates() << " gates, "
            << c.inputs().size() << " inputs, " << c.outputs().size()
            << " outputs\n";
  std::cout << "topological delay: " << r.topological_delay << "\n";
  std::cout << "worst outputs:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(10, r.output_arrivals.size());
       ++i) {
    std::cout << "  " << c.net(r.output_arrivals[i].first).name << "  "
              << r.output_arrivals[i].second << "\n";
  }
  std::cout << "critical path:";
  for (NetId n : r.critical_path) std::cout << " " << c.net(n).name;
  std::cout << "\n";
  return 0;
}

int cmd_check(const Circuit& c, const std::string& delta_str,
              const std::string& out_name, bool json, bool canon,
              std::uint64_t timeout_ms) {
  const Time delta(std::stoll(delta_str));
  // --timeout-ms N: absolute deadline on the monotonic clock; checks that
  // outlive it conclude kAbandoned (exit code 0: no violation *proven*).
  const std::uint64_t deadline =
      timeout_ms == 0 ? 0
                      : prof::monotonic_ns() + timeout_ms * 1'000'000ull;
  Verifier v(c);
  v.set_deadline_ns(deadline);
  if (!out_name.empty()) {
    const auto net = c.find_net(out_name);
    if (!net) {
      std::cerr << "no such net: " << out_name << "\n";
      return 2;
    }
    const auto rep = v.check_output(*net, delta);
    if (json) {
      std::cout << (canon ? canonical_json(c, rep) : to_json(c, rep)) << "\n";
      return rep.conclusion == CheckConclusion::kViolation ? 1 : 0;
    }
    std::cout << "check (" << out_name << ", " << delta
              << "): " << to_string(rep.conclusion) << "  [stages "
              << to_string(rep.before_gitd) << "/" << to_string(rep.after_gitd)
              << "/" << to_string(rep.after_stem) << ", " << rep.backtracks
              << " backtracks, " << std::fixed << std::setprecision(3)
              << rep.seconds << "s]\n";
    if (rep.vector) {
      std::cout << "vector: " << format_vector(*rep.vector) << "\n";
    }
    return rep.conclusion == CheckConclusion::kViolation ? 1 : 0;
  }
  sched::CheckScheduler s(v, {.jobs = g_jobs});
  s.token().arm_deadline(deadline);
  const auto rep = s.check_circuit(delta);
  if (json) {
    std::cout << (canon ? canonical_json(c, rep)
                        : to_json(c, rep, /*include_metrics=*/true))
              << "\n";
    return rep.conclusion == CheckConclusion::kViolation ? 1 : 0;
  }
  std::cout << "check (all outputs, " << delta
            << "): " << to_string(rep.conclusion) << "  [" << rep.backtracks
            << " backtracks, " << std::fixed << std::setprecision(3)
            << rep.seconds << "s]\n";
  if (rep.vector) {
    std::cout << "vector: " << format_vector(*rep.vector) << " (output "
              << c.net(*rep.violating_output).name << ")\n";
  }
  return rep.conclusion == CheckConclusion::kViolation ? 1 : 0;
}

int cmd_delay(const Circuit& c) {
  Verifier v(c);
  sched::CheckScheduler s(v, {.jobs = g_jobs});
  const auto res = s.exact_floating_delay();
  std::cout << "topological delay: " << res.topological << "\n";
  std::cout << (res.exact ? "exact floating delay: "
                          : "floating delay bound (search abandoned): ")
            << res.delay << "  (" << res.probes << " probes, "
            << res.total_backtracks << " backtracks)\n";
  if (res.witness) {
    std::cout << "witness: " << format_vector(*res.witness) << "\n";
    const auto sim = simulate_floating(c, *res.witness);
    Time settle = Time::neg_inf();
    for (NetId o : c.outputs()) {
      settle = Time::max(settle, sim.settle[o.index()]);
    }
    std::cout << "simulated settle: " << settle << "\n";
  }
  return 0;
}

int cmd_outputs(const Circuit& c) {
  Verifier v(c);
  const auto rep = pessimism_report(v);
  std::cout << std::left << std::setw(20) << "OUTPUT" << std::setw(12)
            << "TOP" << std::setw(12) << "FLOATING" << std::setw(10)
            << "GAP"
            << "\n";
  for (const auto& od : rep.outputs) {
    const auto gap = od.topological.is_finite() && od.floating.is_finite()
                         ? od.topological.value() - od.floating.value()
                         : 0;
    std::cout << std::left << std::setw(20) << c.net(od.output).name
              << std::setw(12) << od.topological.str() << std::setw(12)
              << (od.floating.str() + (od.exact ? "" : "?")) << std::setw(10)
              << gap << "\n";
  }
  std::cout << "worst: top " << rep.worst_topological << ", floating "
            << rep.worst_floating << "\n";
  return 0;
}

int cmd_learn(const Circuit& c) {
  const auto res = learn_implications(c);
  std::cout << "implications: " << res.table.size() << " (direct "
            << res.direct << ", contrapositive " << res.contrapositive
            << ")\n";
  std::cout << "globally impossible net classes: " << res.impossible.size()
            << "\n";
  for (const auto& [net, cls] : res.impossible) {
    std::cout << "  " << c.net(net).name << " can never settle at "
              << (cls ? 1 : 0) << "\n";
  }
  return 0;
}

int cmd_path(const Circuit& c) {
  Verifier v(c);
  sched::CheckScheduler s(v, {.jobs = g_jobs});
  const auto res = s.exact_floating_delay();
  std::cout << "exact floating delay: " << res.delay
            << " (topological " << res.topological << ")\n";
  if (!res.witness || !res.witness_output) {
    std::cout << "no witness vector available\n";
    return 0;
  }
  const auto sim = simulate_floating(c, *res.witness);
  // Report the path into the output that actually realises the delay under
  // this witness (it may differ from the probe output the search hit).
  NetId worst = *res.witness_output;
  for (NetId o : c.outputs()) {
    if (sim.settle[o.index()] > sim.settle[worst.index()]) worst = o;
  }
  const auto path = critical_true_path(c, sim, worst);
  std::cout << "witness: " << format_vector(*res.witness) << " (output "
            << c.net(worst).name << ")\n";
  std::cout << "sensitized true path (" << path.size() << " nets):\n  ";
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) std::cout << " -> ";
    std::cout << c.net(path[i]).name << "@"
              << sim.settle[path[i].index()];
  }
  std::cout << "\n\n";
  render_timing_diagram(std::cout, c, sim, path);
  return 0;
}

int cmd_mc(const Circuit& c, std::size_t samples) {
  const auto mc = refined_floating_delay(c, samples);
  std::cout << "floating delay lower bound: " << mc.delay << " ("
            << mc.samples << " simulations incl. refinement)\n";
  if (!mc.witness.empty()) {
    std::cout << "witness: " << format_vector(mc.witness) << " (output "
              << c.net(mc.output).name << ")\n";
  }
  return 0;
}

int cmd_json(const Circuit& c) {
  Verifier v(c);
  sched::CheckScheduler s(v, {.jobs = g_jobs});
  std::cout << to_json(c, s.exact_floating_delay()) << "\n";
  return 0;
}

/// Writes the two profiler artifacts: speedscope JSON at `out` and the
/// collapsed-stack text next to it (".speedscope.json" -> ".folded").
int write_profile_outputs(const prof::ProfileReport& rep,
                          const std::string& out) {
  std::string folded_path = out;
  const std::string suffix = ".speedscope.json";
  if (folded_path.size() > suffix.size() &&
      folded_path.compare(folded_path.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
    folded_path.replace(folded_path.size() - suffix.size(), suffix.size(),
                        ".folded");
  } else {
    folded_path += ".folded";
  }
  std::ofstream ss(out);
  if (!ss) {
    std::cerr << "error: cannot open " << out << "\n";
    return 2;
  }
  ss << rep.speedscope_json << "\n";
  std::ofstream fs(folded_path);
  if (!fs) {
    std::cerr << "error: cannot open " << folded_path << "\n";
    return 2;
  }
  fs << rep.folded;
  std::cerr << "profile: " << rep.samples << " samples, " << std::fixed
            << std::setprecision(2) << rep.cpu_seconds << "s cpu";
  if (rep.dropped > 0) std::cerr << ", " << rep.dropped << " dropped";
  std::cerr << " -> " << out << " + " << folded_path << "\n";
  return 0;
}

int cmd_profile(const Circuit& c, std::string out, double min_seconds) {
  if (out.empty()) out = c.name() + ".speedscope.json";
  // When the global --profile flag already armed the profiler this command
  // only supplies the workload; main() stops it and writes the files.
  const bool own = !prof::SamplingProfiler::instance().running();
  if (own) {
    std::string err;
    if (!prof::SamplingProfiler::instance().start({.hz = g_profile_hz},
                                                  &err)) {
      std::cerr << "error: cannot start profiler: " << err << "\n";
      return 2;
    }
  }
  Verifier v(c);
  sched::CheckScheduler s(v, {.jobs = g_jobs});
  const auto res = s.exact_floating_delay();
  // Keep both halves of the pipeline hot until the sampling budget is
  // spent: delta*+1 drives learning/narrowing/gitd/stem to completion,
  // delta* forces the FAN case analysis to rediscover the witness.
  const std::uint64_t t0 = prof::monotonic_ns();
  const auto budget_ns = static_cast<std::uint64_t>(min_seconds * 1e9);
  std::size_t rounds = 0;
  if (res.delay.is_finite()) {
    do {
      (void)s.check_circuit(Time(res.delay.value() + 1));
      (void)s.check_circuit(res.delay);
      ++rounds;
    } while (prof::monotonic_ns() - t0 < budget_ns);
  }
  std::cout << "exact floating delay: " << res.delay << " (topological "
            << res.topological << ", " << rounds << " profile rounds)\n";
  if (!own) return 0;
  const auto rep = prof::SamplingProfiler::instance().stop();
  return write_profile_outputs(rep, out);
}

std::vector<bool> parse_bits(const std::string& s, std::size_t n) {
  if (s.size() != n) {
    throw std::invalid_argument("vector must have exactly " +
                                std::to_string(n) + " bits");
  }
  std::vector<bool> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (s[i] != '0' && s[i] != '1') {
      throw std::invalid_argument("vector bits must be 0/1");
    }
    v[i] = s[i] == '1';
  }
  return v;
}

int cmd_trans(const Circuit& c, const std::string& s1,
              const std::string& s2) {
  const auto v1 = parse_bits(s1, c.inputs().size());
  const auto v2 = parse_bits(s2, c.inputs().size());
  const auto r = simulate_transition(c, v1, v2);
  std::cout << std::left << std::setw(20) << "OUTPUT" << std::setw(8)
            << "VALUE" << std::setw(12) << "SETTLE"
            << "\n";
  for (NetId o : c.outputs()) {
    std::cout << std::left << std::setw(20) << c.net(o).name << std::setw(8)
              << (r.value[o.index()] ? 1 : 0) << std::setw(12)
              << r.settle[o.index()].str() << "\n";
  }
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServeOptions opt;
  opt.jobs = g_jobs == 0 ? 1 : g_jobs;  // daemon default: serial worker
  opt.handle_signals = true;
  const auto need_value = [&](std::size_t i, const char* flag) {
    if (i + 1 >= args.size()) {
      std::cerr << "error: " << flag << " needs a value\n";
      return false;
    }
    return true;
  };
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--socket") {
        if (!need_value(i, "--socket")) return 2;
        opt.socket_path = args[++i];
      } else if (a == "--tcp") {
        if (!need_value(i, "--tcp")) return 2;
        const int port = std::stoi(args[++i]);
        opt.tcp_port = port == 0 ? -1 : port;  // 0 = ephemeral
      } else if (a == "--queue-cap") {
        if (!need_value(i, "--queue-cap")) return 2;
        opt.queue_cap = std::stoull(args[++i]);
      } else if (a == "--timeout-ms") {
        if (!need_value(i, "--timeout-ms")) return 2;
        opt.default_timeout_ms = std::stoull(args[++i]);
      } else if (a == "--max-batch") {
        if (!need_value(i, "--max-batch")) return 2;
        opt.max_batch = std::max<std::size_t>(1, std::stoull(args[++i]));
      } else if (a == "--heartbeat") {
        if (!need_value(i, "--heartbeat")) return 2;
        opt.heartbeat_s = std::stod(args[++i]);
      } else if (a == "--stall-s") {
        if (!need_value(i, "--stall-s")) return 2;
        opt.stall_s = std::stod(args[++i]);
      } else if (a == "--enable-debug-ops") {
        opt.enable_debug_ops = true;
      } else if (a == "--blackbox") {
        if (!need_value(i, "--blackbox")) return 2;
        opt.blackbox_dir = args[++i];
      } else {
        std::cerr << "error: unknown serve flag " << a << "\n";
        return 2;
      }
    }
  } catch (const std::exception&) {
    std::cerr << "error: serve flag needs a numeric value\n";
    return 2;
  }
  serve::Server server(opt);
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }
  std::cerr << "waveck-serve: listening";
  if (!opt.socket_path.empty()) std::cerr << " on " << opt.socket_path;
  if (server.tcp_port() > 0) {
    std::cerr << (opt.socket_path.empty() ? " on" : " and")
              << " tcp 127.0.0.1:" << server.tcp_port();
  }
  std::cerr << " (queue cap " << opt.queue_cap << ", jobs " << opt.jobs
            << ")\n";
  server.run();
  return 0;
}

/// JSON string literal for client-built requests.
std::string jstr(const std::string& s) {
  return "\"" + telemetry::json_escape(s) + "\"";
}

/// Builds the request line for the `client` sugar commands; "" = usage
/// error. `timeout_ms < 0` means "not set".
std::string client_request(const std::vector<std::string>& cmd,
                           std::int64_t timeout_ms) {
  const std::string& op = cmd[0];
  if (op == "ping" || op == "list" || op == "stats" || op == "shutdown") {
    return "{\"op\":" + jstr(op) + "}";
  }
  if (op == "metrics") {
    // `metrics [json|prometheus]`; the prometheus envelope is unwrapped by
    // cmd_client so the body pipes straight into a scraper.
    std::string line = "{\"op\":\"metrics\"";
    if (cmd.size() > 1) line += ",\"format\":" + jstr(cmd[1]);
    return line + "}";
  }
  if (op == "load" && cmd.size() >= 3) {
    // Resolve the netlist path client-side: the daemon reads it from ITS
    // working directory otherwise.
    std::string file = cmd[2];
    if (char* rp = ::realpath(file.c_str(), nullptr)) {
      file = rp;
      std::free(rp);
    }
    std::string line = "{\"op\":\"load\",\"name\":" + jstr(cmd[1]) +
                       ",\"file\":" + jstr(file);
    if (cmd.size() > 3) line += ",\"delays\":" + jstr(cmd[3]);
    return line + "}";
  }
  if (op == "unload" && cmd.size() >= 2) {
    return "{\"op\":\"unload\",\"name\":" + jstr(cmd[1]) + "}";
  }
  if (op == "check" && cmd.size() >= 3) {
    std::string line = "{\"op\":\"check\",\"circuit\":" + jstr(cmd[1]) +
                       ",\"delta\":" + cmd[2];
    if (cmd.size() > 3) line += ",\"output\":" + jstr(cmd[3]);
    if (timeout_ms >= 0) {
      line += ",\"timeout_ms\":" + std::to_string(timeout_ms);
    }
    return line + "}";
  }
  return "";
}

/// Extracts the raw canonical report bytes from a check response (the
/// "report" object is the envelope's last key by protocol contract).
std::string extract_report(const std::string& response) {
  const std::string key = ",\"report\":";
  const std::size_t pos = response.rfind(key);
  if (pos == std::string::npos || response.empty() ||
      response.back() != '}') {
    return "";
  }
  return response.substr(pos + key.size(),
                         response.size() - (pos + key.size()) - 1);
}

int cmd_client(const std::vector<std::string>& args) {
  std::string socket_path;
  int tcp_port = 0;
  bool report_only = false;
  std::int64_t timeout_ms = -1;
  std::vector<std::string> cmd;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--socket" && i + 1 < args.size()) {
        socket_path = args[++i];
      } else if (a == "--tcp" && i + 1 < args.size()) {
        tcp_port = std::stoi(args[++i]);
      } else if (a == "--report") {
        report_only = true;
      } else if (a == "--timeout-ms" && i + 1 < args.size()) {
        timeout_ms = std::stoll(args[++i]);
      } else {
        cmd.push_back(a);
      }
    }
  } catch (const std::exception&) {
    std::cerr << "error: client flag needs a numeric value\n";
    return 2;
  }
  if (socket_path.empty() && tcp_port == 0) {
    std::cerr << "error: client needs --socket PATH or --tcp PORT\n";
    return 2;
  }

  // Request lines: sugar command, raw JSON arguments, or stdin JSONL.
  std::vector<std::string> lines;
  bool unwrap_prometheus = false;
  if (cmd.empty() || cmd[0] == "-") {
    for (std::string line; std::getline(std::cin, line);) {
      if (!line.empty()) lines.push_back(line);
    }
  } else if (!cmd[0].empty() && cmd[0][0] == '{') {
    lines = cmd;  // raw JSONL, one request per argument
  } else {
    const std::string line = client_request(cmd, timeout_ms);
    if (line.empty()) {
      std::cerr << "usage: waveck client [--socket PATH|--tcp PORT] "
                   "[--report] [--timeout-ms N]\n"
                   "  ping | list | stats | shutdown\n"
                   "  metrics [json|prometheus]\n"
                   "  load NAME FILE [DELAYS] | unload NAME\n"
                   "  check CIRCUIT DELTA [OUT]\n"
                   "  '{...}' ... | -   (raw JSONL; '-' reads stdin)\n";
      return 2;
    }
    unwrap_prometheus =
        cmd[0] == "metrics" && cmd.size() > 1 && cmd[1] == "prometheus";
    lines.push_back(line);
  }

  serve::Client client;
  std::string err;
  const bool connected = socket_path.empty()
                             ? client.connect_tcp(tcp_port, &err)
                             : client.connect_unix(socket_path, &err);
  if (!connected) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }
  bool any_failed = false;
  for (const std::string& line : lines) {
    const auto response = client.round_trip(line);
    if (!response) {
      std::cerr << "error: connection closed by server\n";
      return 2;
    }
    // The envelope leads with id/op/ok, so the first "ok" is the status.
    const std::size_t ok_pos = response->find("\"ok\":");
    const bool ok = ok_pos != std::string::npos &&
                    response->compare(ok_pos + 5, 4, "true") == 0;
    if (!ok) any_failed = true;
    if (report_only) {
      const std::string report = extract_report(*response);
      std::cout << (report.empty() ? *response : report) << "\n";
    } else if (unwrap_prometheus && ok) {
      // `metrics prometheus` sugar: print the exposition text itself, not
      // the JSON envelope — the output pipes straight into promtool or a
      // scrape-endpoint shim. The envelope parser doubles as the unescaper.
      explain::TraceEvent ev;
      std::string perr;
      if (explain::parse_flat_object(*response, ev, perr)) {
        std::cout << ev.str("body");
      } else {
        std::cout << *response << "\n";
      }
    } else {
      std::cout << *response << "\n";
    }
  }
  return any_failed ? 1 : 0;
}

int cmd_gen(const std::string& name, bool verilog) {
  Circuit c;
  if (name == "hrapcenko") {
    c = gen::hrapcenko();
  } else if (name == "csa16") {
    c = gen::carry_skip_adder(16, 4);
  } else if (name == "csel16") {
    c = gen::carry_select_adder(16, 4);
  } else if (name == "ks16") {
    c = gen::kogge_stone_adder(16);
  } else if (name == "mul8") {
    c = gen::array_multiplier(8);
  } else if (name == "wallace8") {
    c = gen::wallace_multiplier(8);
  } else {
    c = gen::build_raw(name);  // the Table-1 suite names
  }
  if (verilog) {
    write_verilog(std::cout, c);
  } else {
    write_bench(std::cout, c);
  }
  return 0;
}

}  // namespace

namespace {

int dispatch(const std::vector<std::string>& args) {
  // args[0] = command, args[1] = FILE/NAME, args[2..] = command arguments.
  if (args[0] == "fuzz") {
    // All-flag command; shares the driver with tools/waveck_fuzz.
    return fuzz::fuzz_cli_main({args.begin() + 1, args.end()}, std::cout,
                               std::cerr);
  }
  if (args[0] == "explain") {
    return explain::explain_cli_main({args.begin() + 1, args.end()},
                                     std::cout, std::cerr);
  }
  if (args[0] == "serve") {
    return cmd_serve({args.begin() + 1, args.end()});
  }
  if (args[0] == "client") {
    return cmd_client({args.begin() + 1, args.end()});
  }
  if (args.size() < 2) return usage();
  const std::string& cmd = args[0];
  const std::string& file = args[1];
  const auto arg = [&](std::size_t i) -> std::string {
    return i < args.size() ? args[i] : "";
  };
  if (cmd == "sta") return cmd_sta(load(file, arg(2)));
  if (cmd == "check") {
    // Positionals after FILE: DELTA [OUT] [DELAYS]; flags anywhere.
    // --canon implies --json: the canonical report (no timing, no metrics
    // snapshot) is the byte-comparable form the serve layer also emits.
    std::vector<std::string> pos;
    bool json = false;
    bool canon = false;
    std::uint64_t timeout_ms = 0;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else if (args[i] == "--canon") {
        json = canon = true;
      } else if (args[i] == "--timeout-ms") {
        if (i + 1 >= args.size()) return usage();
        try {
          timeout_ms = std::stoull(args[++i]);
        } catch (const std::exception&) {
          return usage();
        }
      } else {
        pos.push_back(args[i]);
      }
    }
    if (pos.empty()) return usage();
    return cmd_check(load(file, pos.size() > 2 ? pos[2] : ""), pos[0],
                     pos.size() > 1 ? pos[1] : "", json, canon, timeout_ms);
  }
  if (cmd == "profile") {
    // Positionals after FILE: [OUT] [DELAYS]; --seconds S anywhere.
    std::vector<std::string> pos;
    double seconds = 2.0;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--seconds") {
        if (i + 1 >= args.size()) return usage();
        seconds = std::stod(args[++i]);
      } else {
        pos.push_back(args[i]);
      }
    }
    return cmd_profile(load(file, pos.size() > 1 ? pos[1] : ""),
                       pos.empty() ? "" : pos[0], seconds);
  }
  if (cmd == "delay") return cmd_delay(load(file, arg(2)));
  if (cmd == "outputs") return cmd_outputs(load(file, arg(2)));
  if (cmd == "learn") return cmd_learn(load(file, ""));
  if (cmd == "path") return cmd_path(load(file, arg(2)));
  if (cmd == "trans") {
    if (args.size() < 4) return usage();
    return cmd_trans(load(file, arg(4)), args[2], args[3]);
  }
  if (cmd == "mc") {
    const std::size_t samples =
        args.size() > 2 ? std::stoull(args[2]) : std::size_t{1000};
    return cmd_mc(load(file, arg(3)), samples);
  }
  if (cmd == "json") return cmd_json(load(file, arg(2)));
  if (cmd == "gen") return cmd_gen(file, arg(2) == "v");
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global telemetry flags first; everything left is positional.
  std::string metrics_path;
  std::string trace_path;
  std::string profile_path;
  std::string blackbox_dir;
  bool progress_on = false;
  double progress_interval = 5.0;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics" || a == "--trace" || a == "--profile" ||
        a == "--blackbox") {
      if (i + 1 >= argc) {
        std::cerr << "error: " << a << " needs a file argument\n";
        return usage();
      }
      (a == "--metrics"    ? metrics_path
       : a == "--trace"    ? trace_path
       : a == "--blackbox" ? blackbox_dir
                           : profile_path) = argv[++i];
    } else if (a == "--jobs" || a == "--profile-hz") {
      if (i + 1 >= argc) {
        std::cerr << "error: " << a << " needs a number\n";
        return usage();
      }
      try {
        if (a == "--jobs") {
          g_jobs = std::stoull(argv[++i]);
        } else {
          g_profile_hz = static_cast<std::uint32_t>(std::stoul(argv[++i]));
        }
      } catch (const std::exception&) {
        std::cerr << "error: " << a << " needs a number, got " << argv[i]
                  << "\n";
        return usage();
      }
    } else if (a == "--counters") {
      prof::set_counters_enabled(true);
    } else if (a == "--progress") {
      progress_on = true;
      // Optional numeric lookahead: `--progress 2 check ...` vs
      // `--progress check ...`.
      if (i + 1 < argc) {
        char* end = nullptr;
        const double v = std::strtod(argv[i + 1], &end);
        if (end != argv[i + 1] && *end == '\0' && v > 0.0) {
          progress_interval = v;
          ++i;
        }
      }
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) return usage();

  std::unique_ptr<telemetry::JsonlTraceSink> sink;
  std::unique_ptr<prof::ProgressMonitor> monitor;
  int rc = 2;
  if (!blackbox_dir.empty()) {
    flight::set_blackbox_dir(blackbox_dir);
    flight::install_fatal_handlers();
  }
  try {
    if (!trace_path.empty()) {
      sink = std::make_unique<telemetry::JsonlTraceSink>(trace_path);
      telemetry::set_trace_sink(sink.get());
    }
    // Monitor after the sink so progress_begin/heartbeat land in the trace.
    if (progress_on) {
      monitor = std::make_unique<prof::ProgressMonitor>(
          prof::HeartbeatOptions{.interval_s = progress_interval},
          std::cerr);
    }
    if (!profile_path.empty()) {
      std::string err;
      if (!prof::SamplingProfiler::instance().start({.hz = g_profile_hz},
                                                    &err)) {
        std::cerr << "warning: profiler not started: " << err << "\n";
        profile_path.clear();
      }
    }
    rc = dispatch(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 2;
  }
  // Teardown order matters: stop sampling first (the monitor/sink are not
  // async-signal-safe), then the monitor (progress_end still reaches the
  // sink), then the sink itself.
  if (!profile_path.empty() && prof::SamplingProfiler::instance().running()) {
    const auto prep = prof::SamplingProfiler::instance().stop();
    const int prc = write_profile_outputs(prep, profile_path);
    if (rc == 0 && prc != 0) rc = prc;
  }
  monitor.reset();
  telemetry::set_trace_sink(nullptr);
  sink.reset();
  if (!blackbox_dir.empty()) {
    // Unconditional end-of-run dump (cooldown 0 forces it even when an
    // automatic trigger fired moments earlier): `--blackbox DIR` always
    // leaves at least one explain-loadable trace of the run behind.
    const std::string path = flight::dump_blackbox("exit", 0);
    if (!path.empty()) {
      std::cerr << "flight recorder dump: " << path << "\n";
    }
  }
  if (!metrics_path.empty()) {
    // Written even after a failed command: partial metrics still help.
    std::ofstream os(metrics_path);
    if (os) {
      os << telemetry::Registry::global().to_json() << "\n";
    } else {
      std::cerr << "error: cannot open " << metrics_path << "\n";
      if (rc == 0) rc = 2;
    }
  }
  return rc;
}
