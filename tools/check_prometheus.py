#!/usr/bin/env python3
"""Validates Prometheus text exposition produced by `waveck client metrics
prometheus` (and the serve daemon's `metrics` op behind it).

Checks the whole format contract, not just a substring: every line is a
well-formed comment or sample, every sample's metric was TYPE-declared,
histogram bucket series are cumulative and consistent (`le` ascending,
counts non-decreasing, `+Inf` bucket equal to `_count`), and the serve
introspection series the scrape exists for are actually present.

Usage: check_prometheus.py FILE [required-metric ...]
Exits non-zero with a message on the first violation.
"""
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?(?:[0-9]+(?:\.[0-9]+)?'
    r'(?:[eE][+-][0-9]+)?|\+?Inf|NaN))$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def base_name(name):
    for suffix in ('_bucket', '_sum', '_count', '_total'):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    path = sys.argv[1]
    required = sys.argv[2:]

    typed = {}      # base metric name -> declared type
    samples = []    # (name, labels-dict, value)
    with open(path, encoding='utf-8') as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip('\n')
            if not line:
                continue
            if line.startswith('#'):
                parts = line.split(' ', 3)
                if parts[1] not in ('TYPE', 'HELP'):
                    sys.exit(f'{path}:{lineno}: unknown comment kind: {line}')
                if parts[1] == 'TYPE':
                    if len(parts) != 4 or parts[3] not in (
                            'counter', 'gauge', 'histogram', 'summary'):
                        sys.exit(f'{path}:{lineno}: malformed TYPE: {line}')
                    typed[parts[2]] = parts[3]
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                sys.exit(f'{path}:{lineno}: malformed sample: {line}')
            name, labelstr, value = m.group(1), m.group(2) or '', m.group(3)
            labels = dict(LABEL_RE.findall(labelstr[1:-1])) if labelstr else {}
            if labelstr and not labelstr.startswith('{'):
                sys.exit(f'{path}:{lineno}: malformed labels: {line}')
            if name not in typed and base_name(name) not in typed:
                sys.exit(f'{path}:{lineno}: sample without TYPE: {name}')
            samples.append((name, labels, value))

    if not samples:
        sys.exit(f'{path}: no samples at all')

    # Histogram consistency: group each *_bucket family by its non-le labels.
    series = {}   # (base, frozenset(labels w/o le)) -> [(le, count)]
    counts = {}   # (base, frozenset(labels)) -> count value
    for name, labels, value in samples:
        if name.endswith('_bucket'):
            key = (name[:-len('_bucket')],
                   frozenset((k, v) for k, v in labels.items() if k != 'le'))
            le = labels.get('le')
            if le is None:
                sys.exit(f'{path}: bucket sample without le: {name}')
            series.setdefault(key, []).append(
                (float('inf') if le == '+Inf' else float(le), int(value)))
        elif name.endswith('_count'):
            counts[(name[:-len('_count')],
                    frozenset(labels.items()))] = int(value)

    if not series:
        sys.exit(f'{path}: no histogram series found')
    for (base, labels), buckets in series.items():
        ordered = sorted(buckets)
        if [b for b, _ in buckets] != [b for b, _ in ordered]:
            sys.exit(f'{path}: {base}{dict(labels)}: le not ascending')
        cum = [c for _, c in ordered]
        if cum != sorted(cum):
            sys.exit(f'{path}: {base}{dict(labels)}: buckets not cumulative')
        if ordered[-1][0] != float('inf'):
            sys.exit(f'{path}: {base}{dict(labels)}: missing +Inf bucket')
        total = counts.get((base, labels))
        if total is None:
            sys.exit(f'{path}: {base}{dict(labels)}: missing _count')
        if total != ordered[-1][1]:
            sys.exit(f'{path}: {base}{dict(labels)}: +Inf={ordered[-1][1]} '
                     f'!= _count={total}')

    names = {name for name, _, _ in samples}
    for want in required:
        if want not in names:
            sys.exit(f'{path}: required metric missing: {want}')

    print(f'{path}: OK — {len(samples)} samples, {len(typed)} metrics, '
          f'{len(series)} histogram series')


if __name__ == '__main__':
    main()
