// waveck_fuzz: standalone differential-fuzzing front end.
//
// Thin wrapper over fuzz::fuzz_cli_main (the same driver behind
// `waveck fuzz`), plus the global --metrics/--trace telemetry flags shared
// with the main CLI so fuzz campaigns are observable through the existing
// metrics/trace layer. See doc/TESTING.md for the triage workflow.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.hpp"
#include "fuzz/engine.hpp"

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics" || a == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "error: " << a << " needs a file argument\n";
        return 2;
      }
      (a == "--metrics" ? metrics_path : trace_path) = argv[++i];
    } else {
      args.push_back(a);
    }
  }

  std::unique_ptr<waveck::telemetry::JsonlTraceSink> sink;
  int rc = 2;
  try {
    if (!trace_path.empty()) {
      sink = std::make_unique<waveck::telemetry::JsonlTraceSink>(trace_path);
      waveck::telemetry::set_trace_sink(sink.get());
    }
    rc = waveck::fuzz::fuzz_cli_main(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 2;
  }
  waveck::telemetry::set_trace_sink(nullptr);
  sink.reset();
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (os) {
      os << waveck::telemetry::Registry::global().to_json() << "\n";
    } else {
      std::cerr << "error: cannot open " << metrics_path << "\n";
      if (rc == 0) rc = 2;
    }
  }
  return rc;
}
