// E5/E6 -- Section 6 paragraph 3: dominator effectiveness on the
// "traditionally difficult" SEC/DED circuit class (c1908).
//
// Paper: "The use of timing dominators was very effective on the
// traditionally difficult c1908 circuit. It proved that output 57_912
// (topological delay of 340) cannot have a delay greater than 200 in 0.76
// seconds. This particular case has 5 timing dominators, and no narrowing
// was performed on 3 of them by the original method."
//
// We reproduce the mechanism on the c1908-analogue: pick the output with
// the deepest cone, sweep delta downward, and report (a) the largest delta
// each configuration (with / without G.I.T.D.) can refute without case
// analysis, and (b) the dominator counts at those deltas.
#include <iostream>

#include "analysis/carriers.hpp"
#include "gen/iscas_suite.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"

int main() {
  using namespace waveck;
  using namespace waveck::bench;
  const Circuit c = gen::prepare_for_experiment(gen::build_raw("c1908"));
  const auto arrivals = topo_arrival(c);
  NetId worst = c.outputs().front();
  for (NetId o : c.outputs()) {
    if (arrivals[o.index()] > arrivals[worst.index()]) worst = o;
  }
  const Time top = arrivals[worst.index()];

  std::cout << "E5: dominator effectiveness on " << c.name() << " ("
            << c.num_gates() << " NOR gates)\n";
  std::cout << std::string(80, '=') << "\n";
  std::cout << "deepest output: " << c.net(worst).name << ", top = " << top
            << "\n\n";

  auto largest_refutable = [&](bool with_dominators) {
    VerifyOptions opt;
    opt.use_dominators = with_dominators;
    opt.use_stem_correlation = false;
    opt.use_case_analysis = false;
    Verifier v(c, opt);
    // Sweep delta down from top; return the smallest delta still refuted
    // purely by narrowing (+ dominators if enabled).
    Time best = top + 1;
    for (std::int64_t delta = top.value(); delta > 0; delta -= 10) {
      const auto rep = v.check_output(worst, Time(delta));
      if (rep.conclusion != CheckConclusion::kNoViolation) break;
      best = Time(delta);
    }
    return best;
  };

  const Time without = largest_refutable(false);
  const Time with = largest_refutable(true);
  print_row({"configuration", "refutes down to delta"}, {34, 22});
  std::cout << std::string(56, '-') << "\n";
  print_row({"narrowing only", without.str()}, {34, 22});
  print_row({"narrowing + G.I.T.D.", with.str()}, {34, 22});
  std::cout << "\n(the paper's 340-top output was proved <= 200 only with "
               "dominators)\n\n";

  // Dominator chain at the with-GITD frontier.
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  const TimingCheck check{worst, with};
  cs.restrict_domain(worst, AbstractSignal::violating(with));
  cs.schedule_all();
  cs.reach_fixpoint();
  const auto carr = dynamic_carriers(cs, check);
  const auto doms = timing_dominators(c, check, carr);
  std::cout << "dynamic timing dominators at delta = " << with << ": "
            << doms.size() << " (paper's case: 5)\n";
  return 0;
}
