// A2 -- FAN-heuristic ablation (Section 5 design choices).
//
// The paper modifies FAN in three ways: objective weights combine with MAX
// at fanout stems (not the ATPG sum), SCOAP controllability guides choices,
// and decisions run in 3 phases between dynamic dominators. This harness
// measures backtracks and decisions for the witness row (delta = exact)
// under each variant.
#include <iostream>

#include "gen/iscas_suite.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace waveck;
  using namespace waveck::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::cout << "A2: FAN heuristic ablation (witness search at delta = "
               "exact)\n";
  std::cout << std::string(92, '=') << "\n";
  print_row({"CIRCUIT", "paper-FAN", "sum@fanout", "no-SCOAP", "1-phase",
             "no-dom-in-CA"},
            {14, 16, 16, 16, 16, 16});
  std::cout << std::string(92, '-') << "\n";

  for (const auto& entry : gen::table1_suite(quick)) {
    const Circuit& c = entry.circuit;
    if (entry.max_backtracks < 1000) continue;  // skip the abandoned giant

    VerifyOptions base;
    base.case_analysis.max_backtracks = entry.max_backtracks;
    base.max_stems = 512;
    Verifier vf(c, base);
    const auto exact = vf.exact_floating_delay();
    if (!exact.exact) continue;

    auto run = [&](auto mutate) {
      VerifyOptions opt = base;
      mutate(opt);
      Verifier v(c, opt);
      const auto rep = v.check_circuit(exact.delay);
      if (rep.conclusion == CheckConclusion::kViolation) {
        return "V(" + std::to_string(rep.backtracks) + "b)";
      }
      return std::string(to_string(rep.conclusion));
    };

    const std::string paper = run([](VerifyOptions&) {});
    const std::string sum =
        run([](VerifyOptions& o) { o.case_analysis.sum_at_fanout = true; });
    const std::string noscoap =
        run([](VerifyOptions& o) { o.case_analysis.use_scoap = false; });
    const std::string onephase =
        run([](VerifyOptions& o) { o.case_analysis.three_phase = false; });
    const std::string nodom = run(
        [](VerifyOptions& o) { o.case_analysis.dominators_in_search = false; });
    print_row({entry.name, paper, sum, noscoap, onephase, nodom},
              {14, 16, 16, 16, 16, 16});
  }
  std::cout << "\nV(kb) = vector found after k backtracks; A = abandoned\n";
  return 0;
}
