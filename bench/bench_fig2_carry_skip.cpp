// E2 -- Figure 2/3 + Section 4 narrative: carry-skip adder dominators.
//
// Paper claims reproduced here:
//   * the last-transition interval propagates from the final carry across
//     the ambiguous merge gates only via *global* implications: the
//     dynamic timing dominators include the block-carry chain;
//   * Corollary 1 narrowing on those dominators adds information that the
//     local gate constraints cannot derive.
#include <iostream>

#include "analysis/carriers.hpp"
#include "gen/generators.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"

int main() {
  using namespace waveck;
  using namespace waveck::bench;
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout_net = *c.find_net("cout");
  const Time top = topo_arrival(c)[cout_net.index()];

  std::cout << "E2: Figure 2/3 (carry-skip adder, 16 bits, blocks of 4)\n";
  std::cout << std::string(80, '=') << "\n";
  std::cout << "gates: " << c.num_gates() << ", top(cout) = " << top << "\n\n";

  // Sweep delta down from top to the largest value local narrowing cannot
  // refute -- the regime where the global implications matter. (At delta =
  // top the bp/p class contradiction is local and the fixpoint closes the
  // check on its own.)
  Time delta = top;
  for (; delta > Time(0); delta = delta - 10) {
    ConstraintSystem probe(c);
    for (NetId in : c.inputs()) {
      probe.restrict_domain(in, AbstractSignal::floating_input());
    }
    probe.restrict_domain(cout_net, AbstractSignal::violating(delta));
    probe.schedule_all();
    if (probe.reach_fixpoint() ==
        ConstraintSystem::Status::kPossibleViolation) {
      break;
    }
  }
  std::cout << "largest delta surviving plain narrowing: " << delta << "\n";
  const TimingCheck check{cout_net, delta};
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(cout_net, AbstractSignal::violating(delta));
  cs.schedule_all();
  cs.reach_fixpoint();

  const auto carriers = dynamic_carriers(cs, check);
  const auto doms = timing_dominators(c, check, carriers);
  std::cout << "dynamic carriers: " << carriers.count() << " of "
            << c.num_nets() << " nets\n";
  std::cout << "dynamic timing dominators (paper: C7, X, C6, C5, ...):\n  ";
  for (std::size_t i = 0; i < doms.size(); ++i) {
    if (i) std::cout << " -> ";
    std::cout << c.net(doms[i]).name << "(k="
              << carriers.distance[doms[i].index()].str() << ")";
  }
  std::cout << "\n\n";

  // Corollary 1 round: count narrowed dominators, then run to fixpoint and
  // iterate (the Figure 4 loop), reporting rounds until quiescent/closed.
  std::size_t rounds = 0;
  std::size_t total_narrowed = 0;
  for (;;) {
    const std::size_t n = apply_dominator_implications(cs, check);
    if (n == 0) break;
    total_narrowed += n;
    ++rounds;
    if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) break;
  }
  std::cout << "G.I.T.D. loop: " << rounds << " rounds, " << total_narrowed
            << " dominator narrowings, final state: "
            << (cs.inconsistent() ? "NoViolation (check closed)"
                                  : "PossibleViolation")
            << "\n";
  return 0;
}
