// M1 -- microbenchmarks: abstract-waveform algebra, gate projections, and
// fixpoint throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include <array>

#include "constraints/constraint_system.hpp"
#include "constraints/projection.hpp"
#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "waveform/abstract_waveform.hpp"

namespace {

using namespace waveck;

void BM_IntervalIntersectHull(benchmark::State& state) {
  LtInterval a{Time(0), Time(100)};
  LtInterval b{Time(50), Time(150)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
    benchmark::DoNotOptimize(a.hull(b));
  }
}
BENCHMARK(BM_IntervalIntersectHull);

void BM_SignalOps(benchmark::State& state) {
  AbstractSignal a{LtInterval(Time(0), Time(100)),
                   LtInterval(Time(10), Time(90))};
  AbstractSignal b{LtInterval(Time(50), Time(150)),
                   LtInterval(Time(-5), Time(60))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
    benchmark::DoNotOptimize(a.unite(b));
    benchmark::DoNotOptimize(a.narrower_than(b));
  }
}
BENCHMARK(BM_SignalOps);

void BM_ProjectAnd(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    std::vector<AbstractSignal> ins(
        n, AbstractSignal{LtInterval(Time(0), Time(50)),
                          LtInterval(Time(5), Time(60))});
    AbstractSignal out = AbstractSignal::violating(Time(40));
    benchmark::DoNotOptimize(
        project_gate(GateType::kAnd, DelaySpec::fixed(10), out,
                     std::span<AbstractSignal>(ins)));
  }
}
BENCHMARK(BM_ProjectAnd)->Arg(2)->Arg(4)->Arg(8);

void BM_ProjectXor(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<AbstractSignal> ins(
        2, AbstractSignal{LtInterval(Time(0), Time(50)),
                          LtInterval(Time(5), Time(60))});
    AbstractSignal out = AbstractSignal::violating(Time(40));
    benchmark::DoNotOptimize(
        project_gate(GateType::kXor, DelaySpec::fixed(10), out,
                     std::span<AbstractSignal>(ins)));
  }
}
BENCHMARK(BM_ProjectXor);

void BM_FixpointHrapcenko(benchmark::State& state) {
  const Circuit c = gen::hrapcenko(10);
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(*c.find_net("s"), AbstractSignal::violating(Time(61)));
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
  }
}
BENCHMARK(BM_FixpointHrapcenko);

void BM_FixpointCarrySkip(benchmark::State& state) {
  Circuit c = gen::carry_skip_adder(unsigned(state.range(0)), 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout_net = *c.find_net("cout");
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(cout_net, AbstractSignal::violating(Time(100)));
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(c.num_gates()));
}
BENCHMARK(BM_FixpointCarrySkip)->Arg(16)->Arg(32)->Arg(64);

void BM_FixpointNorC17(benchmark::State& state) {
  const Circuit c = gen::prepare_for_experiment(gen::c17());
  const NetId out = c.outputs().front();
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(out, AbstractSignal::violating(Time(30)));
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
  }
}
BENCHMARK(BM_FixpointNorC17);

void BM_TrailPushPop(benchmark::State& state) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();
  const NetId stem = c.fanout_stems().front();
  for (auto _ : state) {
    const auto mark = cs.push_state();
    cs.restrict_domain(stem, AbstractSignal::class_only(false));
    cs.reach_fixpoint();
    cs.pop_to(mark);
  }
}
BENCHMARK(BM_TrailPushPop);

}  // namespace
