// M1 -- microbenchmarks: abstract-waveform algebra, gate projections, and
// fixpoint throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include <array>

#include "constraints/constraint_system.hpp"
#include "constraints/level_kernel.hpp"
#include "constraints/projection.hpp"
#include "gen/builder.hpp"
#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "waveform/abstract_waveform.hpp"

namespace {

using namespace waveck;

void BM_IntervalIntersectHull(benchmark::State& state) {
  LtInterval a{Time(0), Time(100)};
  LtInterval b{Time(50), Time(150)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
    benchmark::DoNotOptimize(a.hull(b));
  }
}
BENCHMARK(BM_IntervalIntersectHull);

void BM_SignalOps(benchmark::State& state) {
  AbstractSignal a{LtInterval(Time(0), Time(100)),
                   LtInterval(Time(10), Time(90))};
  AbstractSignal b{LtInterval(Time(50), Time(150)),
                   LtInterval(Time(-5), Time(60))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
    benchmark::DoNotOptimize(a.unite(b));
    benchmark::DoNotOptimize(a.narrower_than(b));
  }
}
BENCHMARK(BM_SignalOps);

void BM_ProjectAnd(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    std::vector<AbstractSignal> ins(
        n, AbstractSignal{LtInterval(Time(0), Time(50)),
                          LtInterval(Time(5), Time(60))});
    AbstractSignal out = AbstractSignal::violating(Time(40));
    benchmark::DoNotOptimize(
        project_gate(GateType::kAnd, DelaySpec::fixed(10), out,
                     std::span<AbstractSignal>(ins)));
  }
}
BENCHMARK(BM_ProjectAnd)->Arg(2)->Arg(4)->Arg(8);

void BM_ProjectXor(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<AbstractSignal> ins(
        2, AbstractSignal{LtInterval(Time(0), Time(50)),
                          LtInterval(Time(5), Time(60))});
    AbstractSignal out = AbstractSignal::violating(Time(40));
    benchmark::DoNotOptimize(
        project_gate(GateType::kXor, DelaySpec::fixed(10), out,
                     std::span<AbstractSignal>(ins)));
  }
}
BENCHMARK(BM_ProjectXor);

void BM_FixpointHrapcenko(benchmark::State& state) {
  const Circuit c = gen::hrapcenko(10);
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(*c.find_net("s"), AbstractSignal::violating(Time(61)));
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
  }
}
BENCHMARK(BM_FixpointHrapcenko);

void BM_FixpointCarrySkip(benchmark::State& state) {
  Circuit c = gen::carry_skip_adder(unsigned(state.range(0)), 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout_net = *c.find_net("cout");
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(cout_net, AbstractSignal::violating(Time(100)));
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(c.num_gates()));
}
BENCHMARK(BM_FixpointCarrySkip)->Arg(16)->Arg(32)->Arg(64);

void BM_FixpointNorC17(benchmark::State& state) {
  const Circuit c = gen::prepare_for_experiment(gen::c17());
  const NetId out = c.outputs().front();
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(out, AbstractSignal::violating(Time(30)));
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
  }
}
BENCHMARK(BM_FixpointNorC17);

// ----- level-sweep kernels: scalar vs SIMD on synthetic wide levels --------
// One wide level of independent same-arity gates over a small shared input
// pool: the constraint system drains it as a handful of kernel runs, so the
// measured cost is almost purely the batched projection kernel. Reported as
// ns per gate evaluation (items == gate evals); run with WAVECK_SIMD=0 to
// get the scalar twin's numbers from the same binary.
Circuit wide_level_circuit(GateType type, unsigned arity, unsigned gates) {
  gen::detail::Builder b("wide_level");
  std::vector<NetId> pool;
  for (unsigned i = 0; i < 12; ++i) {
    pool.push_back(b.input("i" + std::to_string(i)));
  }
  for (unsigned g = 0; g < gates; ++g) {
    std::vector<NetId> ins;
    for (unsigned k = 0; k < arity; ++k) {
      ins.push_back(pool[(g * 7 + k * 5 + k) % pool.size()]);
    }
    b.out(type, "o" + std::to_string(g), std::move(ins));
  }
  b.c.set_uniform_delay(DelaySpec(8, 12));
  b.c.finalize();
  return std::move(b.c);
}

void run_level_sweep(benchmark::State& state, GateType type, bool simd) {
  const unsigned arity = static_cast<unsigned>(state.range(0));
  const Circuit c = wide_level_circuit(type, arity, 256);
  const bool prior = simd_enabled();
  if (simd && !simd_supported()) {
    state.SkipWithError("AVX2 kernels unavailable on this host/build");
    return;
  }
  set_simd_enabled(simd);
  std::uint64_t evals = 0;
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    for (NetId out : c.outputs()) {
      cs.restrict_domain(out, AbstractSignal::violating(Time(15)));
    }
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
    evals += cs.applications();
  }
  set_simd_enabled(prior);
  state.SetItemsProcessed(static_cast<int64_t>(evals));
}

void BM_LevelSweepAndScalar(benchmark::State& state) {
  run_level_sweep(state, GateType::kAnd, false);
}
void BM_LevelSweepAndSimd(benchmark::State& state) {
  run_level_sweep(state, GateType::kAnd, true);
}
void BM_LevelSweepNorScalar(benchmark::State& state) {
  run_level_sweep(state, GateType::kNor, false);
}
void BM_LevelSweepNorSimd(benchmark::State& state) {
  run_level_sweep(state, GateType::kNor, true);
}
BENCHMARK(BM_LevelSweepAndScalar)->Arg(2)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_LevelSweepAndSimd)->Arg(2)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_LevelSweepNorScalar)->Arg(2)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_LevelSweepNorSimd)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

// Mixed gate classes in one level: exercises run segmentation (several
// (type, arity) runs per sweep) and the unary kernel alongside the
// controlling one.
void BM_LevelSweepMixed(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  gen::detail::Builder b("mixed_level");
  std::vector<NetId> pool;
  for (unsigned i = 0; i < 12; ++i) {
    pool.push_back(b.input("i" + std::to_string(i)));
  }
  const GateType kinds[] = {GateType::kAnd, GateType::kOr, GateType::kNand,
                            GateType::kNor, GateType::kNot, GateType::kXor};
  for (unsigned g = 0; g < 240; ++g) {
    const GateType t = kinds[g % 6];
    const unsigned arity = t == GateType::kNot ? 1 : 2 + g % 3;
    std::vector<NetId> ins;
    for (unsigned k = 0; k < arity; ++k) {
      ins.push_back(pool[(g * 7 + k * 5 + k) % pool.size()]);
    }
    b.out(t, "o" + std::to_string(g), std::move(ins));
  }
  b.c.set_uniform_delay(DelaySpec(8, 12));
  b.c.finalize();
  const Circuit& c = b.c;
  const bool prior = simd_enabled();
  if (simd && !simd_supported()) {
    state.SkipWithError("AVX2 kernels unavailable on this host/build");
    return;
  }
  set_simd_enabled(simd);
  std::uint64_t evals = 0;
  for (auto _ : state) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    for (NetId out : c.outputs()) {
      cs.restrict_domain(out, AbstractSignal::violating(Time(15)));
    }
    cs.schedule_all();
    benchmark::DoNotOptimize(cs.reach_fixpoint());
    evals += cs.applications();
  }
  set_simd_enabled(prior);
  state.SetItemsProcessed(static_cast<int64_t>(evals));
}
BENCHMARK(BM_LevelSweepMixed)->Arg(0)->Arg(1);

void BM_TrailPushPop(benchmark::State& state) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();
  const NetId stem = c.fanout_stems().front();
  for (auto _ : state) {
    const auto mark = cs.push_state();
    cs.restrict_domain(stem, AbstractSignal::class_only(false));
    cs.reach_fixpoint();
    cs.pop_to(mark);
  }
}
BENCHMARK(BM_TrailPushPop);

}  // namespace
