// A1 -- stage-contribution ablation (our extension of Table 1).
//
// For each suite circuit, runs the proof row (delta = exact + 1) under four
// configurations -- narrowing only, + learning, + G.I.T.D., + stem
// correlation -- and reports which configuration first proves N without
// case analysis, plus backtracks when case analysis is still needed.
#include <iostream>

#include "gen/iscas_suite.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"

int main(int argc, char** argv) {
  using namespace waveck;
  using namespace waveck::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::cout << "A1: stage-contribution ablation (delta = exact floating "
               "delay + 1)\n";
  std::cout << std::string(86, '=') << "\n";
  print_row({"CIRCUIT", "narrow", "+learn", "+GITD", "+stem", "+CA(btk)",
             "CPU(s)"},
            {14, 10, 10, 10, 10, 12, 8});
  std::cout << std::string(86, '-') << "\n";

  for (const auto& entry : gen::table1_suite(quick)) {
    const Circuit& c = entry.circuit;

    // Exact delay with the full engine first.
    VerifyOptions full;
    full.case_analysis.max_backtracks = entry.max_backtracks;
    full.max_stems = 512;
    Verifier vf(c, full);
    const auto exact = vf.exact_floating_delay();
    const Time delta = exact.delay + 1;

    auto closes = [&](bool learn, bool gitd, bool stem) {
      VerifyOptions opt;
      opt.use_learning = learn;
      opt.use_dominators = gitd;
      opt.use_stem_correlation = stem;
      opt.max_stems = 512;
      opt.use_case_analysis = false;
      Verifier v(c, opt);
      const auto rep = v.check_circuit(delta);
      return rep.conclusion == CheckConclusion::kNoViolation;
    };

    const auto t0 = std::chrono::steady_clock::now();
    const bool n0 = closes(false, false, false);
    const bool n1 = n0 || closes(true, false, false);
    const bool n2 = n1 || closes(true, true, false);
    const bool n3 = n2 || closes(true, true, true);
    std::string ca = "-";
    if (!n3) {
      VerifyOptions opt;
      opt.max_stems = 512;
      opt.case_analysis.max_backtracks = entry.max_backtracks;
      Verifier v(c, opt);
      const auto rep = v.check_circuit(delta);
      ca = rep.conclusion == CheckConclusion::kNoViolation
               ? "N(" + std::to_string(rep.backtracks) + ")"
               : std::string(to_string(rep.conclusion));
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    auto yn = [](bool b) { return b ? std::string("N") : std::string("P"); };
    print_row({entry.name + (exact.exact ? "" : "(U)"), yn(n0), yn(n1),
               yn(n2), yn(n3), ca, fmt_secs(secs)},
              {14, 10, 10, 10, 10, 12, 8});
  }
  std::cout << "\nN = proves NoViolation at that stage; P = still possible;"
            << "\nN(k) = case analysis proves it with k backtracks\n";
  return 0;
}
