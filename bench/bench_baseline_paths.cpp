// A4 -- baseline comparison (our extension, paper Section 1 motivation).
//
// The paper dismisses path-oriented verifiers ("may have to enumerate a
// very large number of paths") and builds on floating-mode semantics
// rather than static sensitization. This harness quantifies both points:
// for each suite circuit it runs the classic baseline -- longest-first path
// enumeration with static sensitization -- next to the exact waveform-
// narrowing engine, reporting the delay estimates, path counts, and times.
//
// Observed effects: (a) the baseline's estimate can sit *below* the true
// floating delay (static sensitization is unsound for floating mode); (b)
// its path budget explodes on reconvergent circuits where the narrowing
// engine needs milliseconds.
#include <iostream>

#include "gen/iscas_suite.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"
#include "sta/path_enum.hpp"

int main(int argc, char** argv) {
  using namespace waveck;
  using namespace waveck::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::cout << "A4: waveform narrowing vs path enumeration + static "
               "sensitization\n";
  std::cout << std::string(104, '=') << "\n";
  print_row({"CIRCUIT", "TOP", "EXACT(wn)", "CPU(s)", "STATIC(pe)", "PATHS",
             "CPU(s)", "NOTES"},
            {14, 9, 11, 9, 11, 11, 9, 20});
  std::cout << std::string(104, '-') << "\n";

  for (const auto& entry : gen::table1_suite(quick)) {
    const Circuit& c = entry.circuit;
    const Time top = topological_delay(c);

    VerifyOptions opt;
    opt.case_analysis.max_backtracks = entry.max_backtracks;
    opt.max_stems = 512;
    Verifier v(c, opt);
    const auto t0 = std::chrono::steady_clock::now();
    const auto exact = v.exact_floating_delay();
    const double wn_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    PathEnumOptions pe;
    pe.max_paths = 50000;
    const auto t1 = std::chrono::steady_clock::now();
    const auto base = path_enum_delay(c, pe);
    const double pe_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();

    std::string notes;
    if (base.budget_exhausted) notes = "path budget blown";
    if (base.delay < exact.delay) {
      notes += notes.empty() ? "" : "; ";
      notes += "underestimates";
    }
    print_row({entry.name, top.str(),
               exact.delay.str() + (exact.exact ? "" : "?"),
               fmt_secs(wn_secs), base.delay.str(),
               std::to_string(base.paths_enumerated), fmt_secs(pe_secs),
               notes},
              {14, 9, 11, 9, 11, 11, 9, 20});
  }
  return 0;
}
