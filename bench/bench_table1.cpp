// E3 -- Table 1: the full ISCAS'85-class suite.
//
// For every circuit (NOR implementation, 10 units per gate) this harness
// finds the exact floating-mode delay delta_E (adaptive binary search with
// per-probe simulation jumps), then reports the paper's two rows:
//   * delta = delta_E + 1 : which stage proves N (or how many backtracks);
//   * delta = delta_E     : the case analysis finds a test vector (V).
// Circuits whose search is abandoned (the paper's c6288) report an upper
// bound (U) and 'A', exactly like Table 1.
//
// Absolute top/delta values differ from the paper (generated analogue
// netlists; see DESIGN.md); the reproduced signal is the *stage profile*:
// which machinery closes each circuit and that vectors need few backtracks.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "gen/iscas_suite.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"
#include "sched/check_scheduler.hpp"
#include "sim/floating_sim.hpp"

int main(int argc, char** argv) {
  using namespace waveck;
  using namespace waveck::bench;
  bool quick = false;
  bool json = false;
  std::size_t jobs = 0;    // 0 = serial only, no parallel pass
  std::size_t repeat = 1;  // timed serial runs per row (--repeat)
  std::string upto;        // stop after the first entry matching this prefix
  std::string json_path = "BENCH_table1.json";
  std::string trace_path;  // --trace: JSONL capture of one extra run per row
  bool history = false;    // --append-history: one JSONL entry per run
  std::string history_path = "BENCH_history.jsonl";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (arg == "--counters") {
      prof::set_counters_enabled(true);
    } else if (arg == "--append-history") {
      history = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') history_path = argv[++i];
    } else if (arg == "--jobs") {
      jobs = sched::ThreadPool::hardware_workers();
      if (i + 1 < argc && argv[i + 1][0] != '-') jobs = std::stoull(argv[++i]);
      if (jobs == 0) jobs = sched::ThreadPool::hardware_workers();
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::stoull(argv[++i]);
      if (repeat == 0) repeat = 1;
    } else if (arg == "--upto" && i + 1 < argc) {
      upto = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: bench_table1 [--quick] [--json [FILE]] "
                   "[--jobs [N]] [--repeat N] [--upto NAME] "
                   "[--trace FILE.jsonl] [--counters] "
                   "[--append-history [FILE]]\n";
      return 2;
    }
  }

  // --trace: every row gets one *extra* run with the sink installed (the
  // timed runs stay untraced so wall clocks match untraced benches); the
  // row's trace_lines is the event count of its capture, which `waveck
  // explain` cross-checks against the row's backtrack/decision tallies.
  std::unique_ptr<telemetry::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<telemetry::JsonlTraceSink>(trace_path);
  }

  std::cout << "E3: Table 1 -- ISCAS'85-class suite, NOR implementation, "
               "delay 10/gate\n";
  std::cout << std::string(80, '=') << "\n";
  print_table1_header();
  std::vector<Table1Row> rows;
  double serial_total = 0.0;
  double parallel_total = 0.0;
  bool matched = true;

  const auto suite = gen::table1_suite(quick);
  for (const auto& entry : suite) {
    const Circuit& c = entry.circuit;
    const Time top = topological_delay(c);

    VerifyOptions opt;
    opt.case_analysis.max_backtracks = entry.max_backtracks;
    opt.max_stems = 512;
    Verifier v(c, opt);

    const auto exact = v.exact_floating_delay();
    const std::string kind = exact.exact ? "E" : "U";

    // With --repeat N each row is checked once unrecorded (warmup) and then
    // N recorded times: `seconds` is the last run, `seconds_min` the
    // minimum -- the robust statistic on noisy CI machines. Results are
    // deterministic, so repeats change timing only.
    double min_above = -1.0;
    double min_at = -1.0;
    const auto timed_check = [&](Time delta, double& min_s) {
      if (repeat > 1) (void)v.check_circuit(delta);  // warmup
      SuiteReport rep = v.check_circuit(delta);
      min_s = repeat > 1 ? rep.seconds : -1.0;
      for (std::size_t r = 1; r < repeat; ++r) {
        rep = v.check_circuit(delta);
        min_s = std::min(min_s, rep.seconds);
      }
      return rep;
    };

    const auto traced_check = [&](Time delta) -> std::int64_t {
      if (!trace_sink) return -1;
      const std::uint64_t before = trace_sink->events_written();
      telemetry::set_trace_sink(trace_sink.get());
      (void)v.check_circuit(delta);
      telemetry::set_trace_sink(nullptr);
      return static_cast<std::int64_t>(trace_sink->events_written() - before);
    };

    // Row 1: delta_E + 1 (the proof row; printed second in the paper's
    // order, which lists the just-failing delta first for some circuits --
    // we keep proof-then-witness order).
    const auto above = timed_check(exact.delay + 1, min_above);
    auto row_above = row_from_suite(entry.name, top, exact.delay + 1, "",
                                    above);
    row_above.seconds_min = min_above;
    row_above.trace_lines = traced_check(exact.delay + 1);

    // Row 2: delta_E (witness row).
    const auto at = timed_check(exact.delay, min_at);
    auto row_at = row_from_suite(entry.name, top, exact.delay, kind, at);
    row_at.seconds_min = min_at;
    row_at.trace_lines = traced_check(exact.delay);

    if (jobs > 0) {
      // Parallel pass: the same two suite checks through the scheduler.
      // The deterministic merge must reproduce the serial conclusions and
      // stage statuses exactly; only wall-clock may differ.
      sched::CheckScheduler s(v, {.jobs = jobs});
      const auto p_above = s.check_circuit(exact.delay + 1);
      const auto p_at = s.check_circuit(exact.delay);
      const auto same = [](const SuiteReport& a, const SuiteReport& b) {
        return a.conclusion == b.conclusion && a.before_gitd == b.before_gitd &&
               a.after_gitd == b.after_gitd && a.after_stem == b.after_stem &&
               a.backtracks == b.backtracks;
      };
      if (!same(above, p_above) || !same(at, p_at)) {
        std::cerr << entry.name
                  << ": parallel result diverges from serial -- bug\n";
        matched = false;
      }
      row_above.seconds_parallel = p_above.seconds;
      row_at.seconds_parallel = p_at.seconds;
      serial_total += row_above.seconds + row_at.seconds;
      parallel_total += p_above.seconds + p_at.seconds;
    }

    print_table1_row(row_above);
    rows.push_back(row_above);
    print_table1_row(row_at);
    rows.push_back(row_at);

    // --upto NAME: run the suite prefix ending at the first entry whose
    // label starts with NAME (CI benches up to c1908 to bound job time).
    if (!upto.empty() && entry.name.rfind(upto, 0) == 0) break;
  }

  std::cout << "\nLegend: P possible violation, N no violation, V vector "
               "found,\n        A abandoned (backtrack budget), - not "
               "needed, E exact delay, U upper bound\n";
  if (jobs > 0) {
    std::cout << "\nparallel pass (" << jobs << " jobs): serial "
              << fmt_secs(serial_total) << "s vs parallel "
              << fmt_secs(parallel_total) << "s";
    if (parallel_total > 0) {
      std::cout << "  (" << std::fixed << std::setprecision(2)
                << serial_total / parallel_total << "x)";
    }
    std::cout << "\n"
              << (matched ? "parallel results match serial on every row\n"
                          : "PARALLEL/SERIAL MISMATCH -- see above\n");
  }
  if (json) {
    write_table1_json(json_path, rows, jobs);
    std::cout << "wrote " << json_path << "\n";
  }
  if (history) append_history(history_path, rows, quick, repeat);
  return matched ? 0 : 1;
}
