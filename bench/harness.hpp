// Shared helpers for the experiment harnesses: fixed-width table printing
// and the per-circuit "Table 1 row" runner.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/telemetry.hpp"
#include "prof/perf_counters.hpp"
#include "verify/verifier.hpp"

namespace waveck::bench {

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::cout << std::left << std::setw(widths[i]) << cells[i];
  }
  std::cout << "\n";
}

inline std::string fmt_time(Time t) { return t.str(); }

inline std::string fmt_secs(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << s;
  return os.str();
}

/// One Table-1 style record: the two deltas (exact and exact+1), per-stage
/// statuses, backtracks, final result, CPU.
struct Table1Row {
  std::string circuit;
  Time top{};
  Time delta{};
  std::string delta_kind;  // "E" exact, "U" upper bound
  StageStatus before_gitd = StageStatus::kNotRun;
  StageStatus after_gitd = StageStatus::kNotRun;
  StageStatus after_stem = StageStatus::kNotRun;
  std::string backtracks;  // number or "-" / "A"
  std::string result;      // V / N / A
  double seconds = 0.0;
  std::size_t backtracks_n = 0;  // numeric form for JSON output
  StageSeconds stage_seconds;
  /// Wall-clock of the same suite check re-run through the parallel
  /// CheckScheduler (bench_table1 --jobs); < 0 = parallel pass not run.
  double seconds_parallel = -1.0;
  /// Min-of-N wall-clock (bench_table1 --repeat N); < 0 = single run only.
  double seconds_min = -1.0;
  /// Violating input vector "bits@output" when the row finds one ("" = no
  /// witness). Part of the CI bench-regression key: the *same* vector must
  /// keep reproducing, not just some vector.
  std::string witness;
  /// Trace events captured for this row's extra traced run (bench_table1
  /// --trace); < 0 = tracing off. Never set on the timed runs, so wall
  /// clocks stay comparable with untraced benches.
  std::int64_t trace_lines = -1;
  /// Per-stage hardware counters (bench_table1 --counters); empty (no
  /// sections) when counters were off for the timed run.
  StagePerf stage_perf;
};

inline void print_table1_header() {
  print_row({"CIRCUIT", "MAX.TOP", "DELTA", "BEFORE", "AFTER", "AFTER",
             "C.A.", "C.A.", "CPU"},
            {14, 9, 9, 8, 8, 8, 8, 8, 8});
  print_row({"", "", "", "G.I.T.D.", "G.I.T.D.", "STEM C.", "#BTRCK",
             "RESULT", "(s)"},
            {14, 9, 9, 8, 8, 8, 8, 8, 8});
  std::cout << std::string(80, '-') << "\n";
}

inline void print_table1_row(const Table1Row& r) {
  print_row({r.circuit, fmt_time(r.top), fmt_time(r.delta) + r.delta_kind,
             to_string(r.before_gitd), to_string(r.after_gitd),
             to_string(r.after_stem), r.backtracks, r.result,
             fmt_secs(r.seconds)},
            {14, 9, 9, 8, 8, 8, 8, 8, 8});
}

inline Table1Row row_from_suite(const std::string& name, Time top,
                                Time delta, const std::string& kind,
                                const SuiteReport& rep) {
  Table1Row r;
  r.circuit = name;
  r.top = top;
  r.delta = delta;
  r.delta_kind = kind;
  r.before_gitd = rep.before_gitd;
  r.after_gitd = rep.after_gitd;
  r.after_stem = rep.after_stem;
  r.seconds = rep.seconds;
  r.backtracks_n = rep.backtracks;
  r.stage_seconds = rep.stage_seconds;
  r.stage_perf = rep.stage_perf;
  if (rep.vector) {
    r.witness = format_vector(*rep.vector);
    if (rep.violating_output) {
      r.witness += "@" + std::to_string(rep.violating_output->index());
    }
  }
  switch (rep.conclusion) {
    case CheckConclusion::kViolation:
      r.backtracks = std::to_string(rep.backtracks);
      r.result = "V";
      break;
    case CheckConclusion::kNoViolation:
      r.backtracks = rep.backtracks > 0 ? std::to_string(rep.backtracks) : "-";
      r.result = "N";
      break;
    case CheckConclusion::kAbandoned:
      r.backtracks = "A";
      r.result = "A";
      break;
    case CheckConclusion::kPossible:
      r.backtracks = "-";
      r.result = "P";
      break;
  }
  return r;
}

/// One stage's scaled counters as a JSON object body. Mirrors
/// report_io.cpp's per-check "perf" stages: wall_ns always, hardware
/// events only when the group actually read (hw).
inline void write_counter_totals_json(std::ostream& os,
                                      const prof::CounterTotals& t,
                                      bool hw) {
  // JSON has no nan/inf literal: a rate must never reach the stream
  // non-finite (the accessors guard zero denominators, but belt-and-braces
  // here keeps machine parsers safe whatever the counters did).
  const auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  os << "{\"wall_ns\":" << t.wall_ns;
  if (hw) {
    os << ",\"cycles\":" << t.cycles
       << ",\"instructions\":" << t.instructions
       << ",\"ipc\":" << finite(t.ipc())
       << ",\"cache_references\":" << t.cache_references
       << ",\"cache_misses\":" << t.cache_misses
       << ",\"cache_miss_rate\":" << finite(t.cache_miss_rate())
       << ",\"branch_misses\":" << t.branch_misses;
  }
  os << "}";
}

inline void write_stage_perf_json(std::ostream& os, const StagePerf& p) {
  const bool hw = p.total().hw_valid;
  os << ",\"perf\":{\"counters\":\""
     << (hw ? "available" : "unavailable") << "\"";
  if (!hw) {
    os << ",\"reason\":\"" << telemetry::json_escape(prof::unavailable_reason())
       << "\"";
  }
  const std::pair<const char*, const prof::CounterTotals*> stages[] = {
      {"narrowing", &p.narrowing},
      {"gitd", &p.gitd},
      {"stem", &p.stem},
      {"case_analysis", &p.case_analysis}};
  for (const auto& [name, totals] : stages) {
    if (!totals->any()) continue;
    os << ",\"" << name << "\":";
    write_counter_totals_json(os, *totals, hw);
  }
  os << "}";
}

/// Writes the collected rows as one JSON document (BENCH_table1.json): each
/// row carries the Table 1 columns plus the per-stage wall-clock breakdown.
/// `jobs` > 0 records the worker count of the parallel pass; rows then also
/// carry "seconds_parallel" (serial-vs-parallel comparison).
inline void write_table1_json(const std::string& path,
                              const std::vector<Table1Row>& rows,
                              std::size_t jobs = 0) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path);
  const auto esc = [](const std::string& s) {
    return telemetry::json_escape(s);
  };
  os << "{\"bench\":\"table1\"";
  if (jobs > 0) os << ",\"jobs\":" << jobs;
  os << ",\"rows\":[";
  bool first = true;
  for (const auto& r : rows) {
    if (!first) os << ",";
    first = false;
    os << "{\"circuit\":\"" << esc(r.circuit) << "\""
       << ",\"top\":\"" << esc(r.top.str()) << "\""
       << ",\"delta\":\"" << esc(r.delta.str()) << "\""
       << ",\"delta_kind\":\"" << esc(r.delta_kind) << "\""
       << ",\"before_gitd\":\"" << to_string(r.before_gitd) << "\""
       << ",\"after_gitd\":\"" << to_string(r.after_gitd) << "\""
       << ",\"after_stem\":\"" << to_string(r.after_stem) << "\""
       << ",\"backtracks\":" << r.backtracks_n
       << ",\"result\":\"" << esc(r.result) << "\""
       << ",\"seconds\":" << r.seconds;
    if (r.seconds_parallel >= 0) {
      os << ",\"seconds_parallel\":" << r.seconds_parallel;
    }
    if (r.seconds_min >= 0) os << ",\"seconds_min\":" << r.seconds_min;
    if (r.trace_lines >= 0) os << ",\"trace_lines\":" << r.trace_lines;
    os << ",\"witness\":\"" << esc(r.witness) << "\"";
    os << ",\"stage_seconds\":{"
       << "\"narrowing\":" << r.stage_seconds.narrowing
       << ",\"gitd\":" << r.stage_seconds.gitd
       << ",\"stem\":" << r.stage_seconds.stem
       << ",\"case_analysis\":" << r.stage_seconds.case_analysis << "}";
    if (r.stage_perf.any()) write_stage_perf_json(os, r.stage_perf);
    os << "}";
  }
  os << "]}\n";
}

/// Appends one JSONL entry to the bench history file and prints the
/// total-seconds delta against the previous entry (trend at a glance; the
/// committed file accumulates one line per recorded run).
inline void append_history(const std::string& path,
                           const std::vector<Table1Row>& rows, bool quick,
                           std::size_t repeat) {
  // Previous entry's total_seconds, scraped from the last non-empty line.
  double prev_total = -1.0;
  {
    std::ifstream in(path);
    std::string line, last;
    while (std::getline(in, line)) {
      if (!line.empty()) last = line;
    }
    const std::string key = "\"total_seconds\":";
    if (const auto pos = last.find(key); pos != std::string::npos) {
      prev_total = std::strtod(last.c_str() + pos + key.size(), nullptr);
    }
  }

  double total_seconds = 0.0;
  std::size_t total_backtracks = 0;
  StagePerf perf;
  for (const auto& r : rows) {
    total_seconds += r.seconds_min >= 0 ? r.seconds_min : r.seconds;
    total_backtracks += r.backtracks_n;
    perf.add(r.stage_perf);
  }

  char ts[32] = "";
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(ts, sizeof ts, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }

  std::ofstream os(path, std::ios::app);
  if (!os) throw std::runtime_error("cannot open " + path);
  os << "{\"bench\":\"table1\",\"ts\":\"" << ts << "\",\"quick\":"
     << (quick ? "true" : "false") << ",\"repeat\":" << repeat
     << ",\"rows\":" << rows.size()
     << ",\"total_seconds\":" << total_seconds
     << ",\"total_backtracks\":" << total_backtracks;
  if (perf.any()) write_stage_perf_json(os, perf);
  os << ",\"rows_summary\":[";
  bool first = true;
  for (const auto& r : rows) {
    if (!first) os << ",";
    first = false;
    os << "{\"circuit\":\"" << telemetry::json_escape(r.circuit)
       << "\",\"delta\":\"" << telemetry::json_escape(r.delta.str())
       << "\",\"result\":\"" << telemetry::json_escape(r.result)
       << "\",\"seconds\":"
       << (r.seconds_min >= 0 ? r.seconds_min : r.seconds) << "}";
  }
  os << "]}\n";

  std::cout << "history: appended to " << path << " (total "
            << fmt_secs(total_seconds) << "s";
  if (prev_total >= 0.0) {
    const double d = total_seconds - prev_total;
    std::cout << ", " << (d >= 0 ? "+" : "") << fmt_secs(d)
              << "s vs previous";
    if (prev_total > 0.0) {
      std::cout << " [" << std::showpos << std::fixed << std::setprecision(1)
                << 100.0 * d / prev_total << "%" << std::noshowpos << "]";
    }
  }
  std::cout << ")\n";
}

}  // namespace waveck::bench
