// E1 -- Figure 1 + Example 2: the false-path chain.
//
// Paper claims reproduced here:
//   * topological delay 70, floating-mode delay 60 (delay 10 per gate);
//   * the timing check (s, 61) is eliminated by the narrowing fixpoint
//     alone (no dominators, no case analysis);
//   * at delta = 60 a test vector exists.
#include <iostream>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"

int main() {
  using namespace waveck;
  using namespace waveck::bench;
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");

  std::cout << "E1: Figure 1 / Example 2 (Hrapcenko false-path circuit)\n";
  std::cout << std::string(80, '=') << "\n";
  std::cout << "gates: " << c.num_gates() << ", delay 10 per gate\n";
  std::cout << "paper: top = 70, floating = 60, (s,61) closed by narrowing"
            << " alone\n\n";

  const Time top = topological_delay(c);
  const Time oracle = exhaustive_floating_delay(c);

  Verifier v(c);
  const auto res = v.exact_floating_delay();

  print_row({"quantity", "paper", "measured"}, {34, 12, 12});
  std::cout << std::string(58, '-') << "\n";
  print_row({"topological delay", "70", top.str()}, {34, 12, 12});
  print_row({"floating delay (oracle)", "60", oracle.str()}, {34, 12, 12});
  print_row({"floating delay (verifier)", "60", res.delay.str()},
            {34, 12, 12});

  const auto at61 = v.check_output(s, Time(61));
  print_row({"check (s,61) stage closed",
             "narrowing",
             at61.before_gitd == StageStatus::kNoViolation ? "narrowing"
                                                           : "later"},
            {34, 12, 12});
  const auto at60 = v.check_output(s, Time(60));
  print_row({"check (s,60) result", "V", to_string(at60.conclusion)},
            {34, 12, 12});
  if (at60.vector) {
    const auto sim = simulate_floating(c, *at60.vector);
    std::cout << "\nwitness e1..e7 = " << format_vector(*at60.vector)
              << ", simulated settle(s) = " << sim.settle[s.index()] << "\n";
  }
  return 0;
}
