// A3 -- adder-architecture study (our extension).
//
// The paper's carry-skip adder is one point in a family: this harness runs
// the full pipeline on four 16-bit adder architectures and reports, per
// architecture, the STA bound, the exact floating delay, the removed
// pessimism, and the stage that proves the just-false check -- showing how
// false-path structure (none / skip muxes / select muxes) maps onto the
// machinery needed.
#include <iostream>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"

int main() {
  using namespace waveck;
  using namespace waveck::bench;

  struct Arch {
    const char* name;
    Circuit circuit;
  };
  Arch archs[] = {
      {"ripple-carry", gen::ripple_carry_adder(16)},
      {"carry-skip/4", gen::carry_skip_adder(16, 4)},
      {"carry-select/4", gen::carry_select_adder(16, 4)},
      {"kogge-stone", gen::kogge_stone_adder(16)},
  };

  std::cout << "A3: 16-bit adder-architecture study (delay 10/gate)\n";
  std::cout << std::string(100, '=') << "\n";
  print_row({"ARCH", "GATES", "TOP", "EXACT", "GAP%", "PROOF STAGE",
             "BTRKS", "CPU(s)"},
            {16, 8, 8, 8, 8, 24, 8, 8});
  std::cout << std::string(100, '-') << "\n";

  for (auto& arch : archs) {
    arch.circuit.set_uniform_delay(DelaySpec::fixed(10));
    const Circuit& c = arch.circuit;
    Verifier v(c);
    const auto t0 = std::chrono::steady_clock::now();
    const auto exact = v.exact_floating_delay();

    // Which stage proves delta = exact + 1?
    std::string stage = "STA (no false paths)";
    if (exact.delay < exact.topological) {
      auto closes = [&](bool gitd, bool stems) {
        VerifyOptions opt;
        opt.use_dominators = gitd;
        opt.use_stem_correlation = stems;
        opt.use_case_analysis = false;
        Verifier vv(c, opt);
        return vv.check_circuit(exact.delay + 1).conclusion ==
               CheckConclusion::kNoViolation;
      };
      if (closes(false, false)) {
        stage = "narrowing";
      } else if (closes(true, false)) {
        stage = "G.I.T.D.";
      } else if (closes(true, true)) {
        stage = "stem correlation";
      } else {
        stage = "case analysis";
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double gap =
        exact.topological.is_finite() && exact.topological.value() > 0
            ? 100.0 *
                  double(exact.topological.value() - exact.delay.value()) /
                  double(exact.topological.value())
            : 0.0;
    print_row({arch.name, std::to_string(c.num_gates()),
               exact.topological.str(), exact.delay.str(),
               fmt_secs(gap), stage, std::to_string(exact.total_backtracks),
               fmt_secs(secs)},
              {16, 8, 8, 8, 8, 24, 8, 8});
  }
  return 0;
}
