// E4 -- Section 6, carry-skip adder paragraph.
//
// Paper: "The adder has a topological delay of 2000 and a floating-mode
// delay of 1000. This was determined in 25 seconds of CPU time after a
// total of 1636 backtracks. For delta = 1001 the case analysis proved that
// the constraint system is inconsistent on all outputs, and for delta =
// 1000 found a test vector."
//
// Our 16-bit/4-block NOR-free instance shows the same structure: floating
// delay well below topological (the block ripple chain is false), proof at
// delta+1 on all outputs, vector at delta.
#include <iostream>

#include "gen/generators.hpp"
#include "harness.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"

int main() {
  using namespace waveck;
  using namespace waveck::bench;
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));

  std::cout << "E4: 16-bit carry-skip adder exact-delay experiment\n";
  std::cout << std::string(80, '=') << "\n";
  std::cout << "gates: " << c.num_gates() << ", inputs: "
            << c.inputs().size() << "\n\n";

  Verifier v(c);
  const auto res = v.exact_floating_delay();

  print_row({"quantity", "paper", "measured"}, {36, 12, 12});
  std::cout << std::string(60, '-') << "\n";
  print_row({"topological delay", "2000", res.topological.str()},
            {36, 12, 12});
  print_row({"floating delay", "1000", res.delay.str()}, {36, 12, 12});
  const double ratio =
      res.delay.is_finite() && res.topological.is_finite()
          ? double(res.topological.value()) / double(res.delay.value())
          : 0.0;
  print_row({"top / floating ratio", "2.0",
             fmt_secs(ratio)},
            {36, 12, 12});
  print_row({"total backtracks (delay search)", "1636",
             std::to_string(res.total_backtracks)},
            {36, 12, 12});

  const auto above = v.check_circuit(res.delay + 1);
  print_row({"delta = floating+1", "N (all outs)",
             std::string(to_string(above.conclusion))},
            {36, 12, 12});
  const auto at = v.check_circuit(res.delay);
  print_row({"delta = floating", "V",
             std::string(to_string(at.conclusion))},
            {36, 12, 12});
  if (at.vector) {
    std::cout << "\nwitness (" << c.inputs().size()
              << " inputs a0..a15 b0..b15 cin): " << format_vector(*at.vector)
              << "\n";
    const auto sim = simulate_floating(c, *at.vector);
    Time settle = Time::neg_inf();
    for (NetId o : c.outputs()) {
      settle = Time::max(settle, sim.settle[o.index()]);
    }
    std::cout << "simulated settle: " << settle << " (>= "
              << res.delay << ")\n";
  }
  return 0;
}
