// Tests for src/explain: trace reader raw-token fidelity, analyzer search-
// tree reconstruction + warnings, chrome/DOT exporters, the CLI driver, and
// the trace-well-formedness fuzz property.
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/telemetry.hpp"
#include "explain/analyzer.hpp"
#include "explain/chrome_export.hpp"
#include "explain/dot_export.hpp"
#include "explain/explain_cli.hpp"
#include "explain/trace_reader.hpp"
#include "fuzz/differential.hpp"
#include "gen/generators.hpp"
#include "verify/verifier.hpp"

namespace waveck::explain {
namespace {

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TEST(TraceReader, ParsesAllValueKindsAndKeepsRawTokens) {
  TraceEvent e;
  std::string err;
  ASSERT_TRUE(parse_trace_line(
      R"({"ev":"check_begin","seq":3,"t":120,"w":1,"chk":7,"dec":2,)"
      R"("output":"n\"x","delta":-40,"ratio":0.250,"flag":true,"none":null})",
      e, err))
      << err;
  EXPECT_EQ(e.ev, "check_begin");
  EXPECT_EQ(e.seq, 3);
  EXPECT_EQ(e.t, 120);
  EXPECT_EQ(e.w, 1);
  EXPECT_EQ(e.chk, 7);
  EXPECT_EQ(e.dec, 2);
  EXPECT_EQ(e.str("output"), "n\"x");
  EXPECT_EQ(e.num("delta"), -40);
  ASSERT_NE(e.find("ratio"), nullptr);
  EXPECT_DOUBLE_EQ(e.find("ratio")->d, 0.25);
  EXPECT_EQ(e.find("ratio")->raw, "0.250");  // raw token verbatim
  EXPECT_TRUE(e.find("flag")->b);
  EXPECT_EQ(e.find("none")->kind, TraceValue::Kind::kNull);
  EXPECT_EQ(e.fields.size(), 11u);
}

TEST(TraceReader, RejectsMalformedLines) {
  TraceEvent e;
  std::string err;
  EXPECT_FALSE(parse_trace_line("not json", e, err));
  EXPECT_FALSE(parse_trace_line(R"({"ev":"x")", e, err));       // truncated
  EXPECT_FALSE(parse_trace_line(R"({"seq":1})", e, err));       // no ev
  EXPECT_FALSE(parse_trace_line(R"({"ev":"x"} tail)", e, err)); // trailing
}

TEST(TraceReader, CanonicalLineStripsOnlyRequestedKeys) {
  const std::string line =
      R"({"ev":"propagate","seq":9,"t":512,"w":0,"chk":1,"applications":3,"ratio":1.50})";
  TraceEvent e;
  std::string err;
  ASSERT_TRUE(parse_trace_line(line, e, err)) << err;
  // No strip: byte-identical round-trip (raw tokens, "1.50" included).
  EXPECT_EQ(canonical_line(e, {}), line);
  static constexpr std::array<std::string_view, 2> kStrip = {"t", "seq"};
  EXPECT_EQ(canonical_line(e, kStrip),
            R"({"ev":"propagate","w":0,"chk":1,"applications":3,"ratio":1.50})");
}

TEST(TraceReader, StreamsAndReportsLineNumbers) {
  std::istringstream in(
      "{\"ev\":\"a\",\"seq\":1}\n\n{\"ev\":\"b\",\"seq\":2}\nbroken\n");
  TraceReader r(in);
  TraceEvent e;
  ASSERT_TRUE(r.next(e));
  EXPECT_EQ(e.ev, "a");
  ASSERT_TRUE(r.next(e));
  EXPECT_EQ(e.ev, "b");
  EXPECT_FALSE(r.next(e));
  EXPECT_NE(r.error().find("line 4"), std::string::npos) << r.error();
}

// ---------------------------------------------------------------------------
// Analyzer on synthetic traces
// ---------------------------------------------------------------------------

/// A minimal well-formed check: two decisions (child backtracked then
/// exhausted), work attributed at root, decision 1, and decision 2.
const char* kSyntheticTrace =
    R"({"ev":"check_begin","seq":1,"t":0,"w":0,"chk":1,"output":"y","delta":30}
{"ev":"stage_begin","seq":2,"t":1,"w":0,"chk":1,"stage":"narrowing"}
{"ev":"propagate","seq":3,"t":2,"w":0,"chk":1,"queue":4,"applications":10,"revisions":2,"status":"P"}
{"ev":"stage_end","seq":4,"t":3,"w":0,"chk":1,"stage":"narrowing","status":"P"}
{"ev":"decision","seq":5,"t":4,"w":0,"chk":1,"dec":1,"parent":-1,"net":"a","cls":true,"depth":1}
{"ev":"propagate","seq":6,"t":5,"w":0,"chk":1,"dec":1,"queue":2,"applications":7,"revisions":1,"status":"P"}
{"ev":"decision","seq":7,"t":6,"w":0,"chk":1,"dec":2,"parent":1,"net":"b","cls":false,"depth":2}
{"ev":"propagate","seq":8,"t":7,"w":0,"chk":1,"dec":2,"queue":2,"applications":5,"revisions":1,"status":"N"}
{"ev":"conflict","seq":9,"t":8,"w":0,"chk":1,"dec":2,"depth":2}
{"ev":"backtrack","seq":10,"t":9,"w":0,"chk":1,"dec":2,"net":"b","cls":false,"depth":2}
{"ev":"propagate","seq":11,"t":10,"w":0,"chk":1,"dec":2,"queue":2,"applications":4,"revisions":0,"status":"N"}
{"ev":"conflict","seq":12,"t":11,"w":0,"chk":1,"dec":2,"depth":2}
{"ev":"decision_close","seq":13,"t":12,"w":0,"chk":1,"dec":2,"outcome":"exhausted"}
{"ev":"decision_close","seq":14,"t":13,"w":0,"chk":1,"dec":1,"outcome":"witness"}
{"ev":"check_end","seq":15,"t":14,"w":0,"chk":1,"output":"y","conclusion":"V","seconds":0.001,"vector":"101"}
)";

TEST(Analyzer, ReconstructsDecisionTreeWithAttribution) {
  std::istringstream in(kSyntheticTrace);
  const TraceAnalysis a = analyze_trace(in);
  EXPECT_TRUE(a.well_formed())
      << (a.warnings.empty() ? "" : a.warnings.front());
  ASSERT_EQ(a.checks.size(), 1u);
  const CheckTree& c = a.checks.front();
  EXPECT_EQ(c.output, "y");
  EXPECT_EQ(c.delta, 30);
  EXPECT_TRUE(c.closed);
  EXPECT_EQ(c.conclusion, "V");
  EXPECT_EQ(c.witness, "101");
  EXPECT_EQ(c.n_decisions, 2u);
  EXPECT_EQ(c.n_backtracks, 1u);
  EXPECT_EQ(c.n_conflicts, 2u);

  // Tree shape: decision 1 is a root, decision 2 its child.
  ASSERT_EQ(c.roots.size(), 1u);
  EXPECT_EQ(c.roots.front(), 1);
  const DecisionNode& d1 = c.decisions.at(1);
  const DecisionNode& d2 = c.decisions.at(2);
  ASSERT_EQ(d1.children.size(), 1u);
  EXPECT_EQ(d1.children.front(), 2);
  EXPECT_EQ(d1.close, "witness");
  EXPECT_EQ(d2.close, "exhausted");
  EXPECT_TRUE(d2.backtracked);
  EXPECT_FALSE(d1.backtracked);

  // Work attribution: root 10, d1 7, d2 5+4; d2's work is fully wasted
  // (first branch backtracked, second exhausted), d1's is not.
  EXPECT_EQ(c.root_gate_evals, 10u);
  EXPECT_EQ(d1.gate_evals, 7u);
  EXPECT_EQ(d2.gate_evals, 9u);
  EXPECT_EQ(d2.wasted_gate_evals, 9u);
  EXPECT_EQ(d1.wasted_gate_evals, 0u);
  EXPECT_EQ(c.total_gate_evals(), 26u);
  EXPECT_EQ(c.wasted_gate_evals(), 9u);
  EXPECT_NEAR(c.wasted_ratio(), 9.0 / 26.0, 1e-12);

  // Stage waterfall and per-net aggregation.
  ASSERT_EQ(c.stages.size(), 1u);
  EXPECT_EQ(c.stages.front().stage, "narrowing");
  EXPECT_EQ(c.stages.front().status, "P");
  EXPECT_EQ(a.net_stats.at("b").backtracks, 1u);
  EXPECT_EQ(a.net_stats.at("b").gate_evals, 9u);
  const auto top = a.top_nets(&NetStat::gate_evals, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top.front()->net, "b");
}

TEST(Analyzer, FlagsOrphansAndUnclosedSpans) {
  // Event for a check that never began; decision_close for an unknown
  // decision; an unclosed check at EOF.
  std::istringstream in(
      R"({"ev":"propagate","seq":1,"t":0,"w":0,"chk":9,"applications":1,"revisions":0}
{"ev":"check_begin","seq":2,"t":1,"w":0,"chk":1,"output":"y","delta":5}
{"ev":"decision_close","seq":3,"t":2,"w":0,"chk":1,"dec":42,"outcome":"witness"}
)");
  const TraceAnalysis a = analyze_trace(in);
  EXPECT_FALSE(a.well_formed());
  EXPECT_EQ(a.n_warnings, 3u);  // orphan chk, unknown dec, unclosed check
  ASSERT_EQ(a.checks.size(), 1u);
  EXPECT_FALSE(a.checks.front().closed);
}

TEST(Analyzer, DoubleFlipAndDuplicateDecisionAreWarnings) {
  std::istringstream in(
      R"({"ev":"check_begin","seq":1,"t":0,"w":0,"chk":1,"output":"y","delta":5}
{"ev":"decision","seq":2,"t":1,"w":0,"chk":1,"dec":1,"parent":-1,"net":"a","cls":true,"depth":1}
{"ev":"decision","seq":3,"t":2,"w":0,"chk":1,"dec":1,"parent":-1,"net":"a","cls":true,"depth":1}
{"ev":"backtrack","seq":4,"t":3,"w":0,"chk":1,"dec":1,"net":"a","cls":true,"depth":1}
{"ev":"backtrack","seq":5,"t":4,"w":0,"chk":1,"dec":1,"net":"a","cls":true,"depth":1}
{"ev":"decision_close","seq":6,"t":5,"w":0,"chk":1,"dec":1,"outcome":"exhausted"}
{"ev":"check_end","seq":7,"t":6,"w":0,"chk":1,"output":"y","conclusion":"N","seconds":0.0}
)");
  const TraceAnalysis a = analyze_trace(in);
  EXPECT_EQ(a.n_warnings, 2u);  // duplicate decision id + double flip
  EXPECT_EQ(a.checks.front().n_backtracks, 2u);
}

// ---------------------------------------------------------------------------
// Real traces: a verified circuit round-trips through the analyzer
// ---------------------------------------------------------------------------

TEST(Analyzer, RealTraceMatchesCheckReports) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto exact = v.exact_floating_delay();

  std::ostringstream trace;
  telemetry::JsonlTraceSink sink(trace);
  telemetry::set_trace_sink(&sink);
  std::vector<CheckReport> reports;
  for (const NetId o : c.outputs()) {
    reports.push_back(v.check_output(o, exact.delay));
  }
  telemetry::set_trace_sink(nullptr);

  std::istringstream in(trace.str());
  const TraceAnalysis a = analyze_trace(in);
  EXPECT_TRUE(a.well_formed())
      << (a.warnings.empty() ? "" : a.warnings.front());
  ASSERT_EQ(a.checks.size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CheckTree& ct = a.checks[i];
    const CheckReport& r = reports[i];
    EXPECT_EQ(ct.output, c.net(r.check.output).name);
    EXPECT_TRUE(ct.closed);
    EXPECT_EQ(ct.conclusion, to_string(r.conclusion));
    EXPECT_EQ(ct.n_decisions, r.decisions);
    EXPECT_EQ(ct.n_backtracks, r.backtracks);
    EXPECT_EQ(ct.n_gitd_rounds, r.gitd_rounds);
    EXPECT_EQ(ct.n_stems, r.stems_processed);
    // Decision spans nest: every non-root parent must exist in the tree.
    for (const auto& [id, d] : ct.decisions) {
      if (d.parent >= 0) EXPECT_TRUE(ct.decisions.contains(d.parent));
      EXPECT_FALSE(d.close.empty());
    }
  }
}

TEST(Cli, TextReportCarriesStageQuantiles) {
  // The stage waterfall now reports exact p50/p90/p99 over per-check stage
  // durations (order statistics over the real samples, not histogram
  // buckets).
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto exact = v.exact_floating_delay();

  const std::string path = "explain_test_quantiles.trace.jsonl";
  {
    std::ofstream os(path);
    telemetry::JsonlTraceSink sink(os);
    telemetry::set_trace_sink(&sink);
    for (const NetId o : c.outputs()) (void)v.check_output(o, exact.delay);
    telemetry::set_trace_sink(nullptr);
  }

  std::ostringstream out, err;
  const int rc = explain_cli_main({path}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const std::string report = out.str();
  EXPECT_NE(report.find("stage waterfall"), std::string::npos);
  EXPECT_NE(report.find("P50"), std::string::npos);
  EXPECT_NE(report.find("P90"), std::string::npos);
  EXPECT_NE(report.find("P99"), std::string::npos);
  EXPECT_NE(report.find("narrowing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FuzzIntegration, TraceWellFormedPropertyPasses) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const auto res =
      fuzz::check_property(c, fuzz::Property::kTraceWellFormed, {});
  EXPECT_TRUE(res.ok) << res.details;
  EXPECT_FALSE(res.skipped);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ChromeExport, BalancedDurationsAndWorkerTracks) {
  std::istringstream in(kSyntheticTrace);
  std::ostringstream out;
  const ChromeExportStats stats = write_chrome_trace(in, out);
  EXPECT_EQ(stats.events_in, 15u);
  EXPECT_EQ(stats.workers, 1u);
  const std::string json = out.str();
  // B/E balance: check + stage + 2 decisions open and close.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t p = json.find(needle); p != std::string::npos;
         p = json.find(needle, p + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 4u);
  EXPECT_EQ(count("\"ph\":\"E\""), 4u);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("decide a=1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
  // ns -> us conversion: t=4 becomes ts 0.004.
  EXPECT_NE(json.find("\"ts\":0.004"), std::string::npos);
}

TEST(ChromeExport, PredeclaresTracksFromBatchBegin) {
  std::istringstream in(
      R"({"ev":"batch_begin","seq":1,"t":0,"w":0,"delta":5,"jobs":2,"checks":3}
{"ev":"batch_end","seq":2,"t":9,"w":0,"delta":5,"checks_skipped":0}
)");
  std::ostringstream out;
  const ChromeExportStats stats = write_chrome_trace(in, out);
  const std::string json = out.str();
  // Tracks 0 (emitter), 1 and 2 (from jobs) all get thread names.
  EXPECT_EQ(stats.workers, 1u);  // only w=0 actually emitted
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 2\""), std::string::npos);
}

TEST(DotExport, CarrierGraphHighlightsDominatorsAndWitness) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto exact = v.exact_floating_delay();
  ASSERT_TRUE(exact.witness.has_value());

  DotOptions opt;
  opt.witness = *exact.witness;
  const std::string out_name = c.net(*exact.witness_output).name;
  const DotResult res = carrier_dot(c, out_name, exact.delay, opt);
  EXPECT_GT(res.carrier_nets, 0u);
  EXPECT_GE(res.dominators, 1u);  // the output itself always dominates
  EXPECT_GT(res.path_nets, 1u);
  EXPECT_NE(res.dot.find("digraph carriers"), std::string::npos);
  EXPECT_NE(res.dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(res.dot.find("color=red"), std::string::npos);
  EXPECT_NE(res.dot.find("fillcolor"), std::string::npos);
}

TEST(DotExport, UnknownNetThrowsAndVectorParses) {
  const Circuit c = gen::hrapcenko();
  EXPECT_THROW((void)carrier_dot(c, "no_such_net", Time{1}, {}),
               std::runtime_error);
  EXPECT_EQ(parse_vector("0110"),
            (std::vector<bool>{false, true, true, false}));
  EXPECT_FALSE(parse_vector("01x1").has_value());
}

// ---------------------------------------------------------------------------
// CLI driver
// ---------------------------------------------------------------------------

class CliFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "explain_cli_trace.jsonl";
    std::ofstream os(path_);
    os << kSyntheticTrace;
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CliFile, TextReportExitsCleanOnWellFormedTrace) {
  std::ostringstream out, err;
  EXPECT_EQ(explain_cli_main({path_}, out, err), 0);
  EXPECT_NE(out.str().find("1 check(s)"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("wasted"), std::string::npos);
  EXPECT_TRUE(err.str().empty()) << err.str();
}

TEST_F(CliFile, JsonReportIsParseableShape) {
  std::ostringstream out, err;
  EXPECT_EQ(explain_cli_main({path_, "--json"}, out, err), 0);
  const std::string s = out.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"checks\":[{\"chk\":1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"n_warnings\":0"), std::string::npos);
  EXPECT_NE(s.find("\"witness\":\"101\""), std::string::npos);
}

TEST_F(CliFile, CanonStripsTimestampAndSeq) {
  std::ostringstream out, err;
  EXPECT_EQ(explain_cli_main({path_, "--canon"}, out, err), 0);
  const std::string s = out.str();
  EXPECT_EQ(s.find("\"seq\""), std::string::npos);
  EXPECT_EQ(s.find("\"t\""), std::string::npos);
  EXPECT_NE(s.find("{\"ev\":\"check_begin\",\"w\":0,\"chk\":1"),
            std::string::npos)
      << s;
  // Canon is idempotent byte-for-byte: strip of a stripped stream.
  const std::string canon2_path = ::testing::TempDir() + "canon2.jsonl";
  {
    std::ofstream os(canon2_path);
    os << s;
  }
  std::ostringstream out2, err2;
  EXPECT_EQ(explain_cli_main({canon2_path, "--canon"}, out2, err2), 0);
  EXPECT_EQ(out2.str(), s);
  std::remove(canon2_path.c_str());
}

TEST_F(CliFile, DamagedTraceExitsOneMissingFileExitsTwo) {
  {
    std::ofstream os(path_, std::ios::app);  // orphan event for chk 99
    os << R"({"ev":"conflict","seq":99,"t":99,"w":0,"chk":99,"depth":1})"
       << "\n";
  }
  std::ostringstream out, err;
  EXPECT_EQ(explain_cli_main({path_}, out, err), 1);
  EXPECT_NE(err.str().find("orphan"), std::string::npos) << err.str();

  std::ostringstream out2, err2;
  EXPECT_EQ(explain_cli_main({"/nonexistent/trace.jsonl"}, out2, err2), 2);
  EXPECT_EQ(explain_cli_main({}, out2, err2), 2);           // no trace arg
  EXPECT_EQ(explain_cli_main({path_, "--bogus"}, out2, err2), 2);
  EXPECT_EQ(explain_cli_main({path_, "--dot", "/tmp"}, out2, err2), 2);
}

}  // namespace
}  // namespace waveck::explain
