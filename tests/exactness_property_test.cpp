// Property tests: on randomly generated circuits the verifier's
// exact_floating_delay must equal the exhaustive floating-mode oracle, and
// every NoViolation answer must be sound at each delta.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "netlist/transforms.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

class ExactnessOnRandomCircuits : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactnessOnRandomCircuits, VerifierMatchesOracle) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 7;
  cfg.gates = 24;
  cfg.outputs = 4;
  cfg.seed = GetParam();
  const Circuit c = gen::random_circuit(cfg);
  const Time oracle = exhaustive_floating_delay(c);

  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact) << "seed " << cfg.seed;
  EXPECT_EQ(res.delay, oracle) << "seed " << cfg.seed;
  if (res.witness) {
    const auto sim = simulate_floating(c, *res.witness);
    Time settle = Time::neg_inf();
    for (NetId o : c.outputs()) {
      settle = Time::max(settle, sim.settle[o.index()]);
    }
    EXPECT_EQ(settle, res.delay);
  }
}

TEST_P(ExactnessOnRandomCircuits, PerDeltaSoundness) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 18;
  cfg.outputs = 3;
  cfg.seed = GetParam() * 977 + 5;
  const Circuit c = gen::random_circuit(cfg);
  const Time oracle = exhaustive_floating_delay(c);
  Verifier v(c);
  // Probe around the oracle value: below or at -> violation; above -> N.
  for (std::int64_t delta :
       {oracle.value() - 3, oracle.value(), oracle.value() + 1,
        oracle.value() + 7}) {
    if (delta < 0) continue;
    const auto rep = v.check_circuit(Time(delta));
    if (Time(delta) <= oracle) {
      EXPECT_EQ(rep.conclusion, CheckConclusion::kViolation)
          << "seed " << cfg.seed << " delta " << delta;
    } else {
      EXPECT_EQ(rep.conclusion, CheckConclusion::kNoViolation)
          << "seed " << cfg.seed << " delta " << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactnessOnRandomCircuits,
                         ::testing::Range<std::uint64_t>(1, 21));

class ExactnessWithMux : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactnessWithMux, VerifierMatchesOracle) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 16;
  cfg.outputs = 3;
  cfg.with_mux = true;
  cfg.seed = GetParam() * 31 + 7;
  const Circuit c = gen::random_circuit(cfg);
  const Time oracle = exhaustive_floating_delay(c);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.delay, oracle) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactnessWithMux,
                         ::testing::Range<std::uint64_t>(1, 9));

class ExactnessOnNorMapped : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactnessOnNorMapped, MappingPreservesVerifiability) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 14;
  cfg.outputs = 2;
  cfg.seed = GetParam() * 131 + 3;
  Circuit mapped = map_to_nor(gen::random_circuit(cfg));
  mapped.set_uniform_delay(DelaySpec::fixed(10));
  const Time oracle = exhaustive_floating_delay(mapped);
  Verifier v(mapped);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.delay, oracle) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactnessOnNorMapped,
                         ::testing::Range<std::uint64_t>(1, 9));

/// Narrowing alone (stages 1-3, no case analysis) must never claim N below
/// the oracle delay: pure soundness sweep with everything enabled.
class StagesSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StagesSoundness, NoFalseNegativeProofs) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 20;
  cfg.outputs = 3;
  cfg.seed = GetParam() * 523 + 11;
  const Circuit c = gen::random_circuit(cfg);
  const Time oracle = exhaustive_floating_delay(c);

  VerifyOptions opt;
  opt.use_case_analysis = false;
  Verifier v(c, opt);
  for (std::int64_t delta = 0; delta <= oracle.value(); ++delta) {
    const auto rep = v.check_circuit(Time(delta));
    // A violation exists at this delta; narrowing may say Possible but
    // must never say NoViolation.
    EXPECT_NE(rep.conclusion, CheckConclusion::kNoViolation)
        << "seed " << cfg.seed << " delta " << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StagesSoundness,
                         ::testing::Range<std::uint64_t>(1, 11));

/// Cross-check the two witness producers against each other: the oracle's
/// find_violating_vector and the verifier's case-analysis vectors must both
/// replay through simulate_floating to settle times consistent with the
/// per-output exact delay, and must agree on *when* a witness exists.
class WitnessCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessCrossCheck, OracleAndVerifierWitnessesAgree) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 18;
  cfg.outputs = 3;
  cfg.seed = GetParam() * 263 + 17;
  const Circuit c = gen::random_circuit(cfg);
  Verifier v(c);

  const auto settle_of = [&](NetId s, const std::vector<bool>& vec) {
    return simulate_floating(c, vec).settle[s.index()];
  };

  for (NetId s : c.outputs()) {
    const Time exact = exhaustive_floating_delay(c, s);

    // At delta == exact a violating vector exists; its replayed settle must
    // reach delta (find_violating_vector's contract, checked independently).
    const auto at = find_violating_vector(c, s, exact);
    ASSERT_TRUE(at.has_value()) << "seed " << cfg.seed;
    EXPECT_GE(settle_of(s, *at), exact) << "seed " << cfg.seed;

    // Above exact there is none, and the verifier must agree with N.
    const Time above = exact + 1;
    EXPECT_FALSE(find_violating_vector(c, s, above).has_value())
        << "seed " << cfg.seed;
    const auto rep_above = v.check_output(s, above);
    EXPECT_EQ(rep_above.conclusion, CheckConclusion::kNoViolation)
        << "seed " << cfg.seed;

    // The verifier's own witness at delta == exact must replay to a settle
    // time >= delta on this output — i.e. be exactly as good as the
    // oracle's, not just "a vector".
    const auto rep_at = v.check_output(s, exact);
    ASSERT_EQ(rep_at.conclusion, CheckConclusion::kViolation)
        << "seed " << cfg.seed;
    ASSERT_TRUE(rep_at.vector.has_value()) << "seed " << cfg.seed;
    EXPECT_GE(settle_of(s, *rep_at.vector), exact) << "seed " << cfg.seed;
  }
}

TEST_P(WitnessCrossCheck, ExactDelaySearchWitnessMatchesOracleWitness) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 16;
  cfg.outputs = 2;
  cfg.seed = GetParam() * 431 + 29;
  const Circuit c = gen::random_circuit(cfg);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact) << "seed " << cfg.seed;
  ASSERT_TRUE(res.witness.has_value()) << "seed " << cfg.seed;
  ASSERT_TRUE(res.witness_output.has_value()) << "seed " << cfg.seed;

  // The search's witness settles at exactly the claimed delay on the
  // claimed output...
  const auto sim = simulate_floating(c, *res.witness);
  EXPECT_EQ(sim.settle[res.witness_output->index()], res.delay)
      << "seed " << cfg.seed;

  // ...and the oracle can independently produce a witness at least as slow
  // on that same output, but none slower anywhere.
  const auto oracle_vec =
      find_violating_vector(c, *res.witness_output, res.delay);
  ASSERT_TRUE(oracle_vec.has_value()) << "seed " << cfg.seed;
  const auto oracle_sim = simulate_floating(c, *oracle_vec);
  EXPECT_GE(oracle_sim.settle[res.witness_output->index()], res.delay)
      << "seed " << cfg.seed;
  for (NetId s : c.outputs()) {
    EXPECT_FALSE(find_violating_vector(c, s, res.delay + 1).has_value())
        << "seed " << cfg.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace waveck
