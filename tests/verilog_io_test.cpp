#include "netlist/verilog_io.hpp"
#include <sstream>

#include <gtest/gtest.h>

#include "common/diagnostics.hpp"
#include "gen/generators.hpp"
#include "netlist/transforms.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

constexpr const char* kC17V = R"(
// ISCAS c17 in structural Verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
)";

TEST(VerilogIo, ParseC17) {
  const Circuit c = read_verilog_string(kC17V);
  EXPECT_EQ(c.name(), "c17");
  EXPECT_EQ(c.num_gates(), 6u);
  EXPECT_EQ(c.inputs().size(), 5u);
  EXPECT_EQ(c.outputs().size(), 2u);
}

TEST(VerilogIo, ParsedMatchesBenchVersion) {
  const Circuit v = read_verilog_string(kC17V);
  const Circuit b = gen::c17();
  ASSERT_EQ(v.inputs().size(), b.inputs().size());
  // Functional equivalence over all 32 vectors (port order matches).
  for (unsigned bits = 0; bits < 32; ++bits) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (bits >> i) & 1;
    const auto rv = simulate_floating(v, in);
    const auto rb = simulate_floating(b, in);
    for (std::size_t o = 0; o < v.outputs().size(); ++o) {
      EXPECT_EQ(rv.value[v.outputs()[o].index()],
                rb.value[b.outputs()[o].index()])
          << bits;
    }
  }
}

TEST(VerilogIo, InstanceNameOptionalAndCommentsStripped) {
  const Circuit c = read_verilog_string(R"(
module m (a, b, z);
  input a, b; output z;
  /* block
     comment */
  wire t;
  and (t, a, b);  // unnamed instance
  not inv1 (z, t);
endmodule
)");
  EXPECT_EQ(c.num_gates(), 2u);
}

TEST(VerilogIo, MultiLineStatements) {
  const Circuit c = read_verilog_string(
      "module m (a,\n  b, z);\n input a,\n b;\n output\n z;\n"
      " nand g1 (z,\n  a, b)\n ;\nendmodule\n");
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(VerilogIo, RejectsUnsupportedConstructs) {
  EXPECT_THROW(read_verilog_string(
                   "module m (a, z); input a; output z;\n"
                   "assign z = a;\nendmodule\n"),
               ParseError);
  EXPECT_THROW(read_verilog_string(
                   "module m (a, z); input [3:0] a; output z;\nendmodule\n"),
               ParseError);
  EXPECT_THROW(read_verilog_string("module m (a, z); input a; output z;\n"),
               ParseError);  // missing endmodule
}

TEST(VerilogIo, ErrorsCarryLineNumbers) {
  try {
    read_verilog_string(
        "module m (a, z);\ninput a;\noutput z;\nfrobnicate (z, a);\n"
        "endmodule\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);
  }
}

TEST(VerilogIo, RoundTrip) {
  const Circuit c = gen::c17();
  const std::string text = write_verilog_string(c);
  const Circuit back = read_verilog_string(text);
  EXPECT_EQ(back.num_gates(), c.num_gates());
  EXPECT_EQ(back.inputs().size(), c.inputs().size());
  EXPECT_EQ(back.outputs().size(), c.outputs().size());
  // And stable on a second pass.
  EXPECT_EQ(write_verilog_string(back), text);
}

TEST(VerilogIo, RoundTripGeneratedCircuits) {
  for (unsigned seed = 1; seed <= 6; ++seed) {
    gen::RandomCircuitConfig cfg;
    cfg.inputs = 6;
    cfg.gates = 25;
    cfg.outputs = 3;
    cfg.seed = seed;
    cfg.with_mux = false;
    const Circuit c = gen::random_circuit(cfg);
    const Circuit back = read_verilog_string(write_verilog_string(c));
    ASSERT_EQ(back.inputs().size(), c.inputs().size());
    for (unsigned bits = 0; bits < 64; bits += 7) {
      std::vector<bool> in(6);
      for (int i = 0; i < 6; ++i) in[i] = (bits >> i) & 1;
      const auto r1 = simulate_floating(c, in);
      const auto r2 = simulate_floating(back, in);
      for (std::size_t o = 0; o < c.outputs().size(); ++o) {
        // Outputs keep their names through the round trip.
        const auto net = back.find_net(c.net(c.outputs()[o]).name);
        ASSERT_TRUE(net.has_value());
        ASSERT_EQ(r1.value[c.outputs()[o].index()], r2.value[net->index()])
            << "seed " << seed << " vec " << bits;
      }
    }
  }
}

TEST(VerilogIo, WriterRejectsMux) {
  Circuit c("m");
  const NetId s = c.add_net("s"), a = c.add_net("a"), b = c.add_net("b"),
              o = c.add_net("o");
  c.declare_input(s);
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kMux, o, {s, a, b});
  c.declare_output(o);
  c.finalize();
  std::ostringstream os;
  EXPECT_THROW(write_verilog(os, c), CircuitError);
  // After lowering it writes fine.
  const Circuit lowered = decompose_for_solver(c, {.lower_mux = true});
  EXPECT_NO_THROW(write_verilog_string(lowered));
}

TEST(VerilogIo, EscapedIdentifiers) {
  // Numeric net names (as in .bench-derived circuits) must be escaped and
  // re-readable.
  Circuit c = gen::c17();  // nets named "1", "10", ...
  const std::string text = write_verilog_string(c);
  EXPECT_NE(text.find('\\'), std::string::npos);
  const Circuit back = read_verilog_string(text);
  EXPECT_EQ(back.num_gates(), c.num_gates());
}

}  // namespace
}  // namespace waveck
