#include "netlist/circuit.hpp"

#include <gtest/gtest.h>

#include "common/diagnostics.hpp"

namespace waveck {
namespace {

Circuit two_gate() {
  Circuit c("two");
  const NetId a = c.add_net("a");
  const NetId b = c.add_net("b");
  const NetId x = c.add_net("x");
  const NetId y = c.add_net("y");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kAnd, x, {a, b}, DelaySpec::fixed(3));
  c.add_gate(GateType::kNot, y, {x}, DelaySpec::fixed(2));
  c.declare_output(y);
  c.finalize();
  return c;
}

TEST(Circuit, BuildAndQuery) {
  const Circuit c = two_gate();
  EXPECT_EQ(c.num_nets(), 4u);
  EXPECT_EQ(c.num_gates(), 2u);
  EXPECT_EQ(c.inputs().size(), 2u);
  EXPECT_EQ(c.outputs().size(), 1u);
  ASSERT_TRUE(c.find_net("x").has_value());
  const Net& x = c.net(*c.find_net("x"));
  EXPECT_TRUE(x.driver.valid());
  EXPECT_EQ(x.fanouts.size(), 1u);
}

TEST(Circuit, TopoOrderRespectsDependencies) {
  const Circuit c = two_gate();
  ASSERT_EQ(c.topo_order().size(), 2u);
  EXPECT_EQ(c.gate(c.topo_order()[0]).type, GateType::kAnd);
  EXPECT_EQ(c.gate(c.topo_order()[1]).type, GateType::kNot);
}

TEST(Circuit, DuplicateNetNameRejected) {
  Circuit c;
  c.add_net("a");
  EXPECT_THROW(c.add_net("a"), CircuitError);
}

TEST(Circuit, NetByNameOrAddReuses) {
  Circuit c;
  const NetId a = c.add_net("a");
  EXPECT_EQ(c.net_by_name_or_add("a"), a);
  EXPECT_NE(c.net_by_name_or_add("b"), a);
}

TEST(Circuit, MultipleDriversRejected) {
  Circuit c;
  const NetId a = c.add_net("a");
  const NetId x = c.add_net("x");
  c.declare_input(a);
  c.add_gate(GateType::kBuf, x, {a});
  EXPECT_THROW(c.add_gate(GateType::kNot, x, {a}), CircuitError);
}

TEST(Circuit, UndrivenInternalNetRejected) {
  Circuit c;
  const NetId a = c.add_net("a");
  const NetId x = c.add_net("x");
  c.add_gate(GateType::kBuf, x, {a});  // `a` neither input nor driven
  c.declare_output(x);
  EXPECT_THROW(c.finalize(), CircuitError);
}

TEST(Circuit, CycleRejected) {
  Circuit c;
  const NetId a = c.add_net("a");
  const NetId x = c.add_net("x");
  const NetId y = c.add_net("y");
  c.declare_input(a);
  c.add_gate(GateType::kAnd, x, {a, y});
  c.add_gate(GateType::kBuf, y, {x});
  EXPECT_THROW(c.finalize(), CircuitError);
}

TEST(Circuit, UnaryArityEnforced) {
  Circuit c;
  const NetId a = c.add_net("a");
  const NetId b = c.add_net("b");
  const NetId x = c.add_net("x");
  EXPECT_THROW(c.add_gate(GateType::kNot, x, {a, b}), CircuitError);
  EXPECT_THROW(c.add_gate(GateType::kMux, x, {a, b}), CircuitError);
}

TEST(Circuit, UniformDelay) {
  Circuit c = two_gate();
  c.set_uniform_delay(DelaySpec::fixed(10));
  for (GateId g : c.all_gates()) {
    EXPECT_EQ(c.gate(g).delay, DelaySpec::fixed(10));
  }
}

TEST(Circuit, ReconvergentStemDetection) {
  // stem fans out to two NANDs that reconverge on an AND.
  Circuit c;
  const NetId a = c.add_net("a");
  const NetId b = c.add_net("b");
  const NetId x = c.add_net("x");
  const NetId y = c.add_net("y");
  const NetId z = c.add_net("z");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kNand, x, {a, b});
  c.add_gate(GateType::kNot, y, {a});
  c.add_gate(GateType::kAnd, z, {x, y});
  c.declare_output(z);
  c.finalize();
  EXPECT_TRUE(c.is_reconvergent_stem(a));
  EXPECT_FALSE(c.is_reconvergent_stem(b));
  const auto stems = c.fanout_stems();
  ASSERT_EQ(stems.size(), 1u);
  EXPECT_EQ(stems[0], a);
}

TEST(Circuit, NonReconvergentFanout) {
  // stem feeds two independent outputs: fanout but no reconvergence.
  Circuit c;
  const NetId a = c.add_net("a");
  const NetId x = c.add_net("x");
  const NetId y = c.add_net("y");
  c.declare_input(a);
  c.add_gate(GateType::kNot, x, {a});
  c.add_gate(GateType::kBuf, y, {a});
  c.declare_output(x);
  c.declare_output(y);
  c.finalize();
  EXPECT_FALSE(c.is_reconvergent_stem(a));
}

TEST(GateTraits, ControllingValues) {
  EXPECT_FALSE(controlling_value(GateType::kAnd));
  EXPECT_FALSE(controlling_value(GateType::kNand));
  EXPECT_TRUE(controlling_value(GateType::kOr));
  EXPECT_TRUE(controlling_value(GateType::kNor));
  EXPECT_FALSE(has_controlling_value(GateType::kXor));
  EXPECT_FALSE(has_controlling_value(GateType::kNot));
}

TEST(GateTraits, Eval) {
  EXPECT_TRUE(eval_gate(GateType::kAnd, {true, true}));
  EXPECT_FALSE(eval_gate(GateType::kAnd, {true, false}));
  EXPECT_TRUE(eval_gate(GateType::kNand, {true, false}));
  EXPECT_TRUE(eval_gate(GateType::kOr, {false, true}));
  EXPECT_TRUE(eval_gate(GateType::kNor, {false, false}));
  EXPECT_TRUE(eval_gate(GateType::kXor, {true, false}));
  EXPECT_FALSE(eval_gate(GateType::kXor, {true, true}));
  EXPECT_TRUE(eval_gate(GateType::kXnor, {true, true}));
  EXPECT_FALSE(eval_gate(GateType::kNot, {true}));
  EXPECT_TRUE(eval_gate(GateType::kBuf, {true}));
  EXPECT_TRUE(eval_gate(GateType::kDelay, {true}));
  // MUX: (sel, d0, d1).
  EXPECT_TRUE(eval_gate(GateType::kMux, {false, true, false}));
  EXPECT_FALSE(eval_gate(GateType::kMux, {true, true, false}));
}

}  // namespace
}  // namespace waveck
