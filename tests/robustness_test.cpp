// Robustness properties: randomized trail stress against a snapshot model,
// interval (dmin < dmax) delays, and transition-mode properties on random
// circuits.
#include <gtest/gtest.h>

#include <vector>

#include "constraints/constraint_system.hpp"
#include "gen/generators.hpp"
#include "sim/floating_sim.hpp"
#include "sim/transition_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 11400714819323198485ull + 1) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1d;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// Randomized push/restrict/fixpoint/pop sequences: after every pop the
/// domains must match the snapshot taken at the corresponding push.
class TrailStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrailStress, PopRestoresSnapshots) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 7;
  cfg.gates = 30;
  cfg.outputs = 3;
  cfg.seed = GetParam();
  const Circuit c = gen::random_circuit(cfg);
  Rng rng(GetParam() * 31 + 7);

  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();

  struct Level {
    ConstraintSystem::Mark mark;
    std::vector<AbstractSignal> snapshot;
  };
  auto snapshot = [&]() {
    std::vector<AbstractSignal> s;
    s.reserve(c.num_nets());
    for (NetId n : c.all_nets()) s.push_back(cs.domain(n));
    return s;
  };
  std::vector<Level> levels;

  for (int step = 0; step < 200; ++step) {
    const auto r = rng.below(10);
    if (r < 4 || levels.empty()) {
      levels.push_back({cs.push_state(), snapshot()});
    } else if (r < 8) {
      // Random restriction + propagation.
      const NetId n{std::uint32_t(rng.below(c.num_nets()))};
      const bool cls = rng.below(2) != 0;
      if (rng.below(2) != 0) {
        cs.restrict_domain(n, AbstractSignal::class_only(cls));
      } else {
        cs.restrict_domain(
            n, AbstractSignal::violating(Time(std::int64_t(rng.below(40)))));
      }
      cs.reach_fixpoint();
    } else {
      const Level lvl = std::move(levels.back());
      levels.pop_back();
      cs.pop_to(lvl.mark);
      for (NetId n : c.all_nets()) {
        ASSERT_EQ(cs.domain(n), lvl.snapshot[n.index()])
            << "seed " << GetParam() << " step " << step << " net "
            << c.net(n).name;
      }
    }
  }
  // Unwind everything; the base state must be intact.
  while (!levels.empty()) {
    const Level lvl = std::move(levels.back());
    levels.pop_back();
    cs.pop_to(lvl.mark);
    for (NetId n : c.all_nets()) {
      ASSERT_EQ(cs.domain(n), lvl.snapshot[n.index()]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrailStress,
                         ::testing::Range<std::uint64_t>(1, 9));

/// With interval delays (dmin < dmax) the engine stays sound and exact
/// w.r.t. the dmax-based floating oracle.
class IntervalDelays : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalDelays, ExactAgainstDmaxOracle) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 20;
  cfg.outputs = 3;
  cfg.seed = GetParam() * 211 + 3;
  Circuit c = gen::random_circuit(cfg);
  for (GateId g : c.all_gates()) {
    auto& d = c.gate_mut(g).delay;
    d.dmin = d.dmax / 2;  // widen every delay interval
  }
  const Time oracle = exhaustive_floating_delay(c);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact) << "seed " << cfg.seed;
  EXPECT_EQ(res.delay, oracle) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalDelays,
                         ::testing::Range<std::uint64_t>(1, 11));

/// Transition-mode properties on random circuits: the verifier's
/// check_transition agrees with simulate_transition at and above the
/// settle time, for random vector pairs.
class TransitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitionProperty, VerifierMatchesSimulator) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 18;
  cfg.outputs = 2;
  cfg.seed = GetParam() * 17 + 11;
  const Circuit c = gen::random_circuit(cfg);
  Verifier v(c);
  Rng rng(GetParam());
  const std::size_t n = c.inputs().size();
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<bool> v1(n), v2(n);
    for (std::size_t i = 0; i < n; ++i) {
      v1[i] = rng.below(2) != 0;
      v2[i] = rng.below(2) != 0;
    }
    const auto sim = simulate_transition(c, v1, v2);
    for (NetId o : c.outputs()) {
      const Time settle = sim.settle[o.index()];
      if (settle != Time::neg_inf()) {
        EXPECT_EQ(v.check_transition(o, settle, v1, v2).conclusion,
                  CheckConclusion::kViolation)
            << "seed " << cfg.seed;
      }
      const Time probe = settle == Time::neg_inf() ? Time(0) : settle + 1;
      EXPECT_EQ(v.check_transition(o, probe, v1, v2).conclusion,
                CheckConclusion::kNoViolation)
          << "seed " << cfg.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitionProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

/// Narrowing forward bounds always admit the floating-simulated behaviour:
/// for every vector, every net's settle time lies within the domain's
/// class-max bound after the plain fixpoint (no delta restriction).
class ForwardBoundSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForwardBoundSoundness, SimWithinDomains) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 22;
  cfg.outputs = 3;
  cfg.seed = GetParam() * 401 + 13;
  const Circuit c = gen::random_circuit(cfg);
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  ASSERT_EQ(cs.reach_fixpoint(),
            ConstraintSystem::Status::kPossibleViolation);

  std::vector<bool> vec(c.inputs().size());
  for (unsigned bits = 0; bits < 64; ++bits) {
    for (std::size_t i = 0; i < vec.size(); ++i) vec[i] = (bits >> i) & 1;
    const auto sim = simulate_floating(c, vec);
    for (NetId n : c.all_nets()) {
      const bool val = sim.value[n.index()];
      const auto dom = cs.domain(n).cls(val);
      ASSERT_FALSE(dom.is_empty()) << c.net(n).name;
      ASSERT_GE(dom.max, sim.settle[n.index()])
          << "seed " << cfg.seed << " vec " << bits << " net "
          << c.net(n).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardBoundSoundness,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace waveck
