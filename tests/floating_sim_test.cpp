#include "sim/floating_sim.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"

namespace waveck {
namespace {

TEST(FloatingSim, AndControllingShortCircuits) {
  Circuit c("and");
  const NetId a = c.add_net("a"), b = c.add_net("b"), x = c.add_net("x");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kAnd, x, {a, b}, DelaySpec::fixed(5));
  c.declare_output(x);
  c.finalize();

  // a=0 controls: settle = 5 + settle(a) = 5 even though b also settles at 0.
  auto r = simulate_floating(c, {false, true});
  EXPECT_FALSE(r.value[x.index()]);
  EXPECT_EQ(r.settle[x.index()], Time(5));

  // all non-controlling: settle = 5 + max = 5.
  r = simulate_floating(c, {true, true});
  EXPECT_TRUE(r.value[x.index()]);
  EXPECT_EQ(r.settle[x.index()], Time(5));
}

TEST(FloatingSim, ControllingPicksEarliestController) {
  // Chain delays make inputs settle at different times.
  Circuit c("chain");
  const NetId a = c.add_net("a"), b = c.add_net("b");
  const NetId bd = c.add_net("bd"), x = c.add_net("x");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kDelay, bd, {b}, DelaySpec::fixed(7));
  c.add_gate(GateType::kOr, x, {a, bd}, DelaySpec::fixed(1));
  c.declare_output(x);
  c.finalize();

  // Both 1 (controlling for OR): earliest controller is a (settles at 0).
  auto r = simulate_floating(c, {true, true});
  EXPECT_EQ(r.settle[x.index()], Time(1));
  // Only delayed input controlling: must wait for it.
  r = simulate_floating(c, {false, true});
  EXPECT_EQ(r.settle[x.index()], Time(8));
  // No controller: wait for all.
  r = simulate_floating(c, {false, false});
  EXPECT_EQ(r.settle[x.index()], Time(8));
}

TEST(FloatingSim, XorWaitsForAllInputs) {
  Circuit c("x");
  const NetId a = c.add_net("a"), b = c.add_net("b");
  const NetId ad = c.add_net("ad"), x = c.add_net("x");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kDelay, ad, {a}, DelaySpec::fixed(9));
  c.add_gate(GateType::kXor, x, {ad, b}, DelaySpec::fixed(1));
  c.declare_output(x);
  c.finalize();
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      const auto r = simulate_floating(c, {va, vb});
      EXPECT_EQ(r.settle[x.index()], Time(10));
      EXPECT_EQ(r.value[x.index()], va != vb);
    }
  }
}

TEST(FloatingSim, MuxAgreeingDataIgnoresSelect) {
  Circuit c("m");
  const NetId s = c.add_net("s"), a = c.add_net("a"), b = c.add_net("b");
  const NetId sd = c.add_net("sd"), x = c.add_net("x");
  c.declare_input(s);
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kDelay, sd, {s}, DelaySpec::fixed(20));
  c.add_gate(GateType::kMux, x, {sd, a, b}, DelaySpec::fixed(1));
  c.declare_output(x);
  c.finalize();
  // Data agree: select (settling at 20) does not matter.
  auto r = simulate_floating(c, {true, true, true});
  EXPECT_EQ(r.settle[x.index()], Time(1));
  // Data disagree: output follows the late select.
  r = simulate_floating(c, {true, false, true});
  EXPECT_EQ(r.settle[x.index()], Time(21));
}

TEST(FloatingSim, HrapcenkoFloatingDelayIs60) {
  const Circuit c = gen::hrapcenko(10);
  EXPECT_EQ(topological_delay(c), Time(70));
  EXPECT_EQ(exhaustive_floating_delay(c), Time(60));
}

TEST(FloatingSim, HrapcenkoPerOutputMatchesCircuit) {
  const Circuit c = gen::hrapcenko(10);
  EXPECT_EQ(exhaustive_floating_delay(c, *c.find_net("s")), Time(60));
}

TEST(FloatingSim, FindViolatingVector) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const auto v60 = find_violating_vector(c, s, Time(60));
  ASSERT_TRUE(v60.has_value());
  EXPECT_GE(simulate_floating(c, *v60).settle[s.index()], Time(60));
  EXPECT_FALSE(find_violating_vector(c, s, Time(61)).has_value());
}

TEST(FloatingSim, C17FloatingEqualsTopological) {
  // c17 has no false paths at uniform delay.
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  EXPECT_EQ(exhaustive_floating_delay(c), topological_delay(c));
}

TEST(FloatingSim, CarrySkipFloatingWellBelowTopological) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const Time top = topological_delay(c);
  const Time fl = exhaustive_floating_delay(c, 17);
  EXPECT_LT(fl, top);  // the block-to-block ripple is false
}

TEST(FloatingSim, RippleAdderSumsCorrectly) {
  const Circuit c = gen::ripple_carry_adder(4);
  // inputs: a0..a3, b0..b3, cin
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) {
      std::vector<bool> v;
      for (int i = 0; i < 4; ++i) v.push_back((a >> i) & 1);
      for (int i = 0; i < 4; ++i) v.push_back((b >> i) & 1);
      v.push_back(false);
      const auto r = simulate_floating(c, v);
      unsigned sum = 0;
      for (int i = 0; i < 4; ++i) {
        sum |= unsigned{r.value[c.find_net("s" + std::to_string(i))->index()]}
               << i;
      }
      sum |= unsigned{r.value[c.find_net("cout")->index()]} << 4;
      EXPECT_EQ(sum, a + b);
    }
  }
}

TEST(FloatingSim, InputLimitGuard) {
  const Circuit c = gen::carry_skip_adder(16, 4);  // 33 inputs
  EXPECT_THROW(static_cast<void>(exhaustive_floating_delay(c, 20)),
               std::invalid_argument);
}

TEST(FloatingSim, OracleLimitErrorIsLoudAndDiagnostic) {
  const Circuit c = gen::carry_skip_adder(16, 4);  // 33 inputs
  try {
    (void)exhaustive_floating_delay(c, 20);
    FAIL() << "expected OracleLimitError";
  } catch (const OracleLimitError& e) {
    EXPECT_EQ(e.inputs(), c.inputs().size());
    EXPECT_EQ(e.limit(), 20u);
    const std::string msg = e.what();
    // The message must carry the numbers and a remedy, not just "too big".
    EXPECT_NE(msg.find(c.name()), std::string::npos) << msg;
    EXPECT_NE(msg.find("33"), std::string::npos) << msg;
    EXPECT_NE(msg.find("20"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Monte-Carlo"), std::string::npos) << msg;
  }
  // The same guard protects the other oracle entry points.
  EXPECT_THROW((void)exhaustive_floating_delay(c, c.outputs().front(), 20),
               OracleLimitError);
  EXPECT_THROW((void)find_violating_vector(c, c.outputs().front(), Time(1), 20),
               OracleLimitError);
}

TEST(FloatingSim, OracleLimitRefusesShiftOverflowEvenWhenAsked) {
  // Raising max_inputs above the 2^63 enumeration ceiling must still fail
  // loudly instead of shifting into undefined behavior.
  const Circuit c = gen::carry_skip_adder(32, 4);  // 65 inputs
  EXPECT_THROW(static_cast<void>(exhaustive_floating_delay(c, 100)),
               OracleLimitError);
  try {
    (void)exhaustive_floating_delay(c, 100);
  } catch (const OracleLimitError& e) {
    EXPECT_EQ(e.limit(), 62u);
  }
}

}  // namespace
}  // namespace waveck
