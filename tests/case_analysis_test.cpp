#include "verify/case_analysis.hpp"

#include <gtest/gtest.h>

#include "analysis/scoap.hpp"
#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "test_circuits.hpp"

namespace waveck {
namespace {

ConstraintSystem make_system(const Circuit& c, NetId s, Time delta) {
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(delta));
  cs.schedule_all();
  cs.reach_fixpoint();
  return cs;
}

TEST(CaseAnalysis, FindsVectorAtExactDelay) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const TimingCheck check{s, Time(60)};
  ConstraintSystem cs = make_system(c, s, Time(60));
  ASSERT_FALSE(cs.inconsistent());
  const Scoap sc = compute_scoap(c);
  const auto out = run_case_analysis(cs, check, &sc);
  ASSERT_EQ(out.result, CaseResult::kViolation);
  // Independent validation.
  const auto sim = simulate_floating(c, out.vector);
  EXPECT_GE(sim.settle[s.index()], Time(60));
}

TEST(CaseAnalysis, ProvesNoViolationAboveExactDelay) {
  // The gated-contradiction circuit keeps the fixpoint (and dominators) at
  // P for delta in (50, 70]: only search can prove N there.
  const Circuit c = testing::gated_contradiction();
  const NetId s = *c.find_net("s");
  ASSERT_EQ(exhaustive_floating_delay(c), Time(50));
  const TimingCheck check{s, Time(51)};
  ConstraintSystem cs = testing::checked_system(c, s, Time(51));
  ASSERT_FALSE(cs.inconsistent()) << "narrowing alone must not close it";
  const Scoap sc = compute_scoap(c);
  const auto out = run_case_analysis(cs, check, &sc);
  EXPECT_EQ(out.result, CaseResult::kNoViolation);
  EXPECT_GE(out.backtracks, 1u);
}

TEST(CaseAnalysis, CarrySkipVectorAtExactDelay) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout = *c.find_net("cout");
  const Time exact = exhaustive_floating_delay(c, cout, 17);
  const TimingCheck check{cout, exact};
  ConstraintSystem cs = make_system(c, cout, exact);
  ASSERT_FALSE(cs.inconsistent());
  const Scoap sc = compute_scoap(c);
  const auto out = run_case_analysis(cs, check, &sc);
  ASSERT_EQ(out.result, CaseResult::kViolation);
  const auto sim = simulate_floating(c, out.vector);
  EXPECT_GE(sim.settle[cout.index()], exact);
}

TEST(CaseAnalysis, RestoresStateOnNoViolation) {
  const Circuit c = testing::gated_contradiction();
  const NetId s = *c.find_net("s");
  ConstraintSystem cs = testing::checked_system(c, s, Time(51));
  ASSERT_FALSE(cs.inconsistent());
  std::vector<AbstractSignal> snapshot;
  for (NetId n : c.all_nets()) snapshot.push_back(cs.domain(n));
  const TimingCheck check{s, Time(51)};
  const auto out = run_case_analysis(cs, check, nullptr);
  ASSERT_EQ(out.result, CaseResult::kNoViolation);
  for (NetId n : c.all_nets()) {
    EXPECT_EQ(cs.domain(n), snapshot[n.index()]) << c.net(n).name;
  }
}

TEST(CaseAnalysis, AbandonsOnTinyBudget) {
  // No violation at 51, so search must backtrack; a zero budget aborts at
  // the first backtrack and restores the entry state.
  const Circuit c = testing::gated_contradiction();
  const NetId s = *c.find_net("s");
  const TimingCheck check{s, Time(51)};
  ConstraintSystem cs = testing::checked_system(c, s, Time(51));
  ASSERT_FALSE(cs.inconsistent());
  std::vector<AbstractSignal> snapshot;
  for (NetId n : c.all_nets()) snapshot.push_back(cs.domain(n));
  CaseAnalysisOptions opt;
  opt.max_backtracks = 0;
  const auto out = run_case_analysis(cs, check, nullptr, opt);
  ASSERT_EQ(out.result, CaseResult::kAbandoned);
  EXPECT_GE(out.backtracks, 1u);
  for (NetId n : c.all_nets()) {
    EXPECT_EQ(cs.domain(n), snapshot[n.index()]) << c.net(n).name;
  }
}

TEST(CaseAnalysis, HeuristicVariantsAllCorrect) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const Scoap sc = compute_scoap(c);
  for (const bool sum_mode : {false, true}) {
    for (const bool use_scoap : {false, true}) {
      for (const bool three_phase : {false, true}) {
        CaseAnalysisOptions opt;
        opt.sum_at_fanout = sum_mode;
        opt.use_scoap = use_scoap;
        opt.three_phase = three_phase;
        const TimingCheck check{s, Time(60)};
        ConstraintSystem cs = make_system(c, s, Time(60));
        const auto out = run_case_analysis(cs, check, &sc, opt);
        EXPECT_EQ(out.result, CaseResult::kViolation)
            << "sum=" << sum_mode << " scoap=" << use_scoap
            << " phases=" << three_phase;
      }
    }
  }
}

TEST(CaseAnalysis, WorksWithoutDominatorsInSearch) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  CaseAnalysisOptions opt;
  opt.dominators_in_search = false;
  const TimingCheck check{s, Time(60)};
  ConstraintSystem cs = make_system(c, s, Time(60));
  const auto out = run_case_analysis(cs, check, nullptr, opt);
  EXPECT_EQ(out.result, CaseResult::kViolation);
}

TEST(CaseAnalysis, C17ExactDelayVectors) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  const Time exact = exhaustive_floating_delay(c);
  const Scoap sc = compute_scoap(c);
  bool found = false;
  for (NetId o : c.outputs()) {
    const TimingCheck check{o, exact};
    ConstraintSystem cs = make_system(c, o, exact);
    if (cs.inconsistent()) continue;
    const auto out = run_case_analysis(cs, check, &sc);
    if (out.result == CaseResult::kViolation) {
      found = true;
      const auto sim = simulate_floating(c, out.vector);
      EXPECT_GE(sim.settle[o.index()], exact);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace waveck
