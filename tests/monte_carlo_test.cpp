#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

TEST(MonteCarlo, LowerBoundsExactDelay) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const Time exact = exhaustive_floating_delay(c, 17);
  const auto mc = sampled_floating_delay(c, 200, 42);
  EXPECT_LE(mc.delay, exact);
  EXPECT_GT(mc.delay, Time(0));
  EXPECT_EQ(mc.samples, 200u);
  // The witness reproduces its claimed settle time.
  const auto sim = simulate_floating(c, mc.witness);
  Time worst = Time::neg_inf();
  for (NetId o : c.outputs()) worst = Time::max(worst, sim.settle[o.index()]);
  EXPECT_EQ(worst, mc.delay);
}

TEST(MonteCarlo, DeterministicPerSeed) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const auto a = sampled_floating_delay(c, 50, 7);
  const auto b = sampled_floating_delay(c, 50, 7);
  EXPECT_EQ(a.delay, b.delay);
  EXPECT_EQ(a.witness, b.witness);
  const auto d = sampled_floating_delay(c, 50, 8);
  (void)d;  // different seed may or may not differ; just must not crash
}

TEST(MonteCarlo, RefinementNeverWorsens) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const auto base = sampled_floating_delay(c, 100, 3);
  const auto ref = refined_floating_delay(c, 100, 3);
  EXPECT_GE(ref.delay, base.delay);
  EXPECT_LE(ref.delay, topological_delay(c));
}

TEST(MonteCarlo, RefinementReachesExactOnSmallAdder) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const Time exact = exhaustive_floating_delay(c, 17);
  const auto ref = refined_floating_delay(c, 400, 11);
  // Greedy bit-flip hill climbing is a heuristic (it may park in a local
  // optimum), but it must stay sound and land near the exact value here.
  EXPECT_LE(ref.delay, exact);
  EXPECT_GE(ref.delay + 20, exact);
}

TEST(MonteCarlo, AgreesWithVerifierBand) {
  // sampled <= exact == verifier on a mid-size circuit.
  Circuit c = gen::prepare_for_experiment(gen::build_raw("c499"));
  const auto mc = refined_floating_delay(c, 300, 5);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_LE(mc.delay, res.delay);
}

}  // namespace
}  // namespace waveck
