// Round-trip property tests for the netlist readers/writers on randomly
// generated circuits: parse(print(c)) must be isomorphic to c (same
// interface, same gate structure, same timing), and printing again must be
// a fixpoint. Delay annotations round-trip through write_delays/read_delays.
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fuzz/differential.hpp"
#include "gen/generators.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"
#include "netlist/transforms.hpp"
#include "netlist/verilog_io.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

/// Name -> [dmin, dmax, group] for the gate driving each net; an
/// order-independent view of the circuit's timing annotation.
std::map<std::string, std::tuple<std::int64_t, std::int64_t, int>> delay_map(
    const Circuit& c) {
  std::map<std::string, std::tuple<std::int64_t, std::int64_t, int>> m;
  for (GateId g : c.all_gates()) {
    const Gate& gate = c.gate(g);
    m[c.net(gate.out).name] = {gate.delay.dmin, gate.delay.dmax,
                               gate.delay.group};
  }
  return m;
}

std::vector<std::string> net_names(const Circuit& c,
                                   const std::vector<NetId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (NetId n : ids) names.push_back(c.net(n).name);
  return names;
}

void expect_isomorphic(const Circuit& a, const Circuit& b,
                       const std::string& ctx) {
  EXPECT_EQ(net_names(a, a.inputs()), net_names(b, b.inputs())) << ctx;
  EXPECT_EQ(net_names(a, a.outputs()), net_names(b, b.outputs())) << ctx;
  EXPECT_EQ(a.num_gates(), b.num_gates()) << ctx;
  const auto ha = histogram(a), hb = histogram(b);
  for (std::size_t t = 0; t < ha.count.size(); ++t) {
    EXPECT_EQ(ha.count[t], hb.count[t]) << ctx << " gate type " << t;
  }
}

// `plain` restricts to the primitive alphabet both formats print natively;
// without it the circuit may pick up MUX gates and false-path blocks (which
// contain DELAY elements) that the Verilog writer legally lowers, so only
// the bench tests use the full alphabet.
Circuit make_random(std::uint64_t seed, bool plain) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = seed;
  cfg.inputs = 7;
  cfg.gates = 30;
  cfg.outputs = 3;
  cfg.delay_intervals = true;
  if (!plain) {
    if (seed % 3 == 0) cfg.w_mux = 4;
    cfg.false_path_blocks = seed % 2 ? 1 : 0;
  }
  return gen::structured_random_circuit(cfg);
}

class BenchRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenchRoundTrip, ParsePrintIsIsomorphicFixpoint) {
  const Circuit c = make_random(GetParam(), /*plain=*/false);
  const std::string text = write_bench_string(c);
  const Circuit back = read_bench_string(text, c.name());
  expect_isomorphic(c, back, "seed " + std::to_string(GetParam()));
  // Printing the parsed circuit reproduces the text byte for byte.
  EXPECT_EQ(write_bench_string(back), text);
}

TEST_P(BenchRoundTrip, DelaysSurviveAnnotationRoundTrip) {
  const Circuit c = make_random(GetParam(), /*plain=*/true);
  std::ostringstream delays;
  write_delays(delays, c);

  // Rebuild structure from bench (which drops timing), then re-annotate.
  Circuit back = read_bench_string(write_bench_string(c), c.name());
  EXPECT_NE(delay_map(back), delay_map(c));  // bench alone loses delays
  std::istringstream in(delays.str());
  read_delays(in, back);
  EXPECT_EQ(delay_map(back), delay_map(c));
  // With identical structure + identical delays the timing answer matches.
  EXPECT_EQ(exhaustive_floating_delay(back), exhaustive_floating_delay(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

class VerilogRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerilogRoundTrip, ParsePrintIsIsomorphicFixpoint) {
  const Circuit c = make_random(GetParam(), /*plain=*/true);
  const std::string text = write_verilog_string(c);
  const Circuit back = read_verilog_string(text, c.name());
  expect_isomorphic(c, back, "seed " + std::to_string(GetParam()));
  EXPECT_EQ(write_verilog_string(back), text);
}

TEST_P(VerilogRoundTrip, CrossFormatAgreement) {
  // bench -> circuit -> verilog -> circuit must preserve structure too.
  const Circuit c = make_random(GetParam() * 7 + 1, /*plain=*/true);
  const Circuit via_bench = read_bench_string(write_bench_string(c));
  const Circuit via_verilog = read_verilog_string(write_verilog_string(c));
  expect_isomorphic(via_bench, via_verilog,
                    "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerilogRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

// The fuzz battery's round-trip properties are the same checks packaged for
// the fuzzer; they must agree with the direct tests above on the same
// circuits (guards against the battery and the tests drifting apart).
TEST(FuzzBatteryAgreement, RoundTripPropertiesPassOnRandomCircuits) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    const Circuit c = make_random(seed, /*plain=*/true);
    const auto bench =
        fuzz::check_property(c, fuzz::Property::kBenchRoundTrip);
    EXPECT_TRUE(bench.ok) << "seed " << seed << ": " << bench.details;
    const auto verilog =
        fuzz::check_property(c, fuzz::Property::kVerilogRoundTrip);
    EXPECT_TRUE(verilog.ok) << "seed " << seed << ": " << verilog.details;
    EXPECT_FALSE(verilog.skipped) << "seed " << seed;
  }
}

}  // namespace
}  // namespace waveck
