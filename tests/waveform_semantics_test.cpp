// Brute-force semantic checks of the gate projections.
//
// Ground truth: binary waveforms enumerated on the window [kLo, kHi]
// (constant outside it), which makes the gate output *exactly* determined
// on its own shifted window [kLo+d, kHi+d]. For every pair of feasible
// input waveforms the timed Boolean function gives the output's final value
// and last-transition time; `project_gate` must be sound: no feasible
// (class, lambda) may be removed from any terminal. This validates the
// Section 3.2 narrowing rules far beyond the paper's worked examples.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "constraints/projection.hpp"

namespace waveck {
namespace {

constexpr int kLo = -3;
constexpr int kHi = 4;
constexpr int kBits = kHi - kLo + 1;  // 8 -> 256 waveforms per signal
constexpr unsigned kCount = 1u << kBits;

/// value of input waveform `w` at time t (constant before kLo / after kHi).
bool value_at(unsigned w, int t) {
  const int idx = std::clamp(t, kLo, kHi) - kLo;
  return (w >> idx) & 1;
}

/// Final value + last-transition time of a signal.
struct Wf {
  bool final_v;
  Time lambda;
};

Wf input_wf(unsigned w) {
  const bool v = value_at(w, kHi);
  for (int t = kHi; t >= kLo; --t) {
    if (value_at(w, t) != v) return {v, Time(t)};
  }
  return {v, Time::neg_inf()};
}

/// Output of an n-input gate with fixed delay d, characterised exactly on
/// [kLo + d, kHi + d] (inputs are constant outside their window, so the
/// output is constant outside this one).
Wf gate_wf(GateType t, int d, const std::vector<unsigned>& ws) {
  std::vector<bool> vals(ws.size());
  auto out_at = [&](int tt) {
    for (std::size_t i = 0; i < ws.size(); ++i) {
      vals[i] = value_at(ws[i], tt - d);
    }
    return eval_gate(t, vals);
  };
  const bool v = out_at(kHi + d);
  for (int tt = kHi + d; tt >= kLo + d; --tt) {
    if (out_at(tt) != v) return {v, Time(tt)};
  }
  return {v, Time::neg_inf()};
}

bool member(const AbstractSignal& s, const Wf& w) {
  return s.cls(w.final_v).contains(w.lambda);
}

/// (final, lambda) bucket index for the output bookkeeping.
constexpr int kLambdaSlots = kBits + 2 + 4;  // -inf + window + delay skew
int bucket(const Wf& w, int d) {
  const int base = w.lambda.is_neg_inf() ? 0 : int(w.lambda.value()) - kLo - d + 1;
  return (w.final_v ? kLambdaSlots : 0) + base;
}
Wf unbucket(int idx, int d) {
  const bool v = idx >= kLambdaSlots;
  const int base = idx % kLambdaSlots;
  return {v, base == 0 ? Time::neg_inf() : Time(base - 1 + kLo + d)};
}

/// Deterministic generator for abstract signals with boundaries around the
/// window.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1d;
  }
  Time bound() {
    const auto k = next() % (kBits + 6);
    if (k == 0) return Time::neg_inf();
    if (k == 1) return Time::pos_inf();
    return Time(kLo - 2 + static_cast<int>(k) - 2);
  }
  LtInterval interval() {
    for (int tries = 0; tries < 4; ++tries) {
      const LtInterval i{bound(), bound()};
      if (!i.is_empty()) return i;
    }
    return LtInterval::top();
  }
  AbstractSignal signal() {
    AbstractSignal s{interval(), interval()};
    if (next() % 4 == 0) s.cls(next() % 2 == 0) = LtInterval::empty();
    return s;
  }
};

/// Core check: enumerate feasible triples of the relation, project, and
/// assert nothing feasible was narrowed away.
void check_soundness(GateType type, int delay, std::size_t arity,
                     std::uint64_t seed, int trials,
                     const std::array<unsigned, 3>& strides) {
  Rng rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<AbstractSignal> in(arity);
    for (auto& s : in) s = rng.signal();
    const AbstractSignal in_s = rng.signal();

    std::vector<std::vector<bool>> feas(arity,
                                        std::vector<bool>(kCount, false));
    std::vector<bool> feas_out(2 * kLambdaSlots, false);

    std::vector<unsigned> ws(arity);
    // Nested enumeration with per-position strides (cost control).
    std::vector<unsigned> idx(arity, 0);
    auto advance = [&]() {
      for (std::size_t i = 0; i < arity; ++i) {
        idx[i] += strides[i];
        if (idx[i] < kCount) return true;
        idx[i] = 0;
      }
      return false;
    };
    do {
      bool ok = true;
      for (std::size_t i = 0; i < arity && ok; ++i) {
        ws[i] = idx[i];
        ok = member(in[i], input_wf(ws[i]));
      }
      if (!ok) continue;
      const Wf out = gate_wf(type, delay, ws);
      if (!member(in_s, out)) continue;
      for (std::size_t i = 0; i < arity; ++i) feas[i][ws[i]] = true;
      feas_out[bucket(out, delay)] = true;
    } while (advance());

    AbstractSignal out_sig = in_s;
    std::vector<AbstractSignal> ins = in;
    project_gate(type, DelaySpec::fixed(delay), out_sig,
                 std::span<AbstractSignal>(ins));

    for (std::size_t i = 0; i < arity; ++i) {
      for (unsigned w = 0; w < kCount; ++w) {
        if (!feas[i][w]) continue;
        const Wf wf = input_wf(w);
        ASSERT_TRUE(member(ins[i], wf))
            << to_string(type) << " d=" << delay << " trial " << trial
            << ": input " << i << " waveform " << w << " (lambda "
            << wf.lambda << ", final " << wf.final_v << ") removed; was "
            << in[i].str() << " -> " << ins[i].str();
      }
    }
    for (int bidx = 0; bidx < 2 * kLambdaSlots; ++bidx) {
      if (!feas_out[bidx]) continue;
      const Wf wf = unbucket(bidx, delay);
      ASSERT_TRUE(member(out_sig, wf))
          << to_string(type) << " d=" << delay << " trial " << trial
          << ": output (lambda " << wf.lambda << ", final " << wf.final_v
          << ") removed; was " << in_s.str() << " -> " << out_sig.str();
    }
  }
}

class BinaryGateSoundness
    : public ::testing::TestWithParam<std::tuple<GateType, int>> {};

TEST_P(BinaryGateSoundness, NoFeasibleWaveformRemoved) {
  const auto [type, delay] = GetParam();
  check_soundness(type, delay, 2,
                  static_cast<std::uint64_t>(type) * 1337 + delay, 30,
                  {1, 1, 1});
}

INSTANTIATE_TEST_SUITE_P(
    GatesAndDelays, BinaryGateSoundness,
    ::testing::Combine(::testing::Values(GateType::kAnd, GateType::kNand,
                                         GateType::kOr, GateType::kNor,
                                         GateType::kXor, GateType::kXnor),
                       ::testing::Values(0, 1, 2)));

class UnaryGateSoundness
    : public ::testing::TestWithParam<std::tuple<GateType, int>> {};

TEST_P(UnaryGateSoundness, NoFeasibleWaveformRemoved) {
  const auto [type, delay] = GetParam();
  check_soundness(type, delay, 1,
                  static_cast<std::uint64_t>(type) * 7919 + delay, 60,
                  {1, 1, 1});
}

INSTANTIATE_TEST_SUITE_P(
    GatesAndDelays, UnaryGateSoundness,
    ::testing::Combine(::testing::Values(GateType::kNot, GateType::kBuf,
                                         GateType::kDelay),
                       ::testing::Values(0, 1, 3)));

class MuxSoundness : public ::testing::TestWithParam<int> {};

TEST_P(MuxSoundness, NoFeasibleWaveformRemoved) {
  const int delay = GetParam();
  // Strides keep the 3-deep enumeration tractable; the select input is
  // enumerated densely (it drives the interesting rules).
  check_soundness(GateType::kMux, delay, 3, 50021 + delay, 6, {1, 3, 5});
}

INSTANTIATE_TEST_SUITE_P(Delays, MuxSoundness, ::testing::Values(0, 1));

class WideGateSoundness : public ::testing::TestWithParam<GateType> {};

TEST_P(WideGateSoundness, ThreeInputNoFeasibleWaveformRemoved) {
  const GateType type = GetParam();
  check_soundness(type, 1, 3, static_cast<std::uint64_t>(type) * 24007 + 5,
                  4, {2, 3, 5});
}

INSTANTIATE_TEST_SUITE_P(Gates, WideGateSoundness,
                         ::testing::Values(GateType::kAnd, GateType::kNand,
                                           GateType::kOr, GateType::kNor));

}  // namespace
}  // namespace waveck
