#include "analysis/carriers.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"

namespace waveck {
namespace {

TEST(StaticCarriers, HrapcenkoAtDelta61) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const CarrierSet set = static_carriers(c, {s, Time(61)});
  // Only nets on paths of length >= 61 qualify: the long chain, not n5.
  EXPECT_TRUE(set.is_carrier(s));
  EXPECT_TRUE(set.is_carrier(*c.find_net("n7")));
  EXPECT_TRUE(set.is_carrier(*c.find_net("n6")));
  EXPECT_TRUE(set.is_carrier(*c.find_net("n1")));
  EXPECT_TRUE(set.is_carrier(*c.find_net("e1")));
  EXPECT_FALSE(set.is_carrier(*c.find_net("n5")));  // longest through = 60
  EXPECT_FALSE(set.is_carrier(*c.find_net("e6")));
}

TEST(StaticCarriers, DistancesAreTopoToTarget) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const CarrierSet set = static_carriers(c, {s, Time(61)});
  EXPECT_EQ(set.distance[s.index()], Time(0));
  EXPECT_EQ(set.distance[c.find_net("n7")->index()], Time(10));
  EXPECT_EQ(set.distance[c.find_net("n1")->index()], Time(60));
}

TEST(StaticCarriers, NoneAboveTopologicalDelay) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const CarrierSet set = static_carriers(c, {s, Time(71)});
  EXPECT_EQ(set.count(), 0u);
}

TEST(StaticCarriers, EverythingAtDeltaZero) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const CarrierSet set = static_carriers(c, {s, Time(0)});
  // Every net reaching s qualifies.
  EXPECT_TRUE(set.is_carrier(*c.find_net("n5")));
  EXPECT_TRUE(set.is_carrier(*c.find_net("e6")));
}

TEST(TimingDominators, HrapcenkoChainIsDominatorChain) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const TimingCheck check{s, Time(61)};
  const auto doms = timing_dominators(c, check, static_carriers(c, check));
  // The single long path: every net on it dominates.
  std::vector<std::string> names;
  for (NetId d : doms) names.push_back(c.net(d).name);
  const std::vector<std::string> expect{"s", "n7", "n6", "n4",
                                        "n3", "n2", "n1"};
  ASSERT_GE(names.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(names[i], expect[i]) << i;
  }
}

TEST(TimingDominators, DiamondHasOnlyEndpoints) {
  // s = AND(x, y), x = NOT(a), y = BUF(a): both branches equal length; only
  // s and a dominate.
  Circuit c("diamond");
  const NetId a = c.add_net("a"), x = c.add_net("x"), y = c.add_net("y"),
              s = c.add_net("s");
  c.declare_input(a);
  c.add_gate(GateType::kNot, x, {a}, DelaySpec::fixed(10));
  c.add_gate(GateType::kBuf, y, {a}, DelaySpec::fixed(10));
  c.add_gate(GateType::kAnd, s, {x, y}, DelaySpec::fixed(10));
  c.declare_output(s);
  c.finalize();
  const TimingCheck check{s, Time(20)};
  const auto doms = timing_dominators(c, check, static_carriers(c, check));
  std::vector<std::string> names;
  for (NetId d : doms) names.push_back(c.net(d).name);
  EXPECT_EQ(names, (std::vector<std::string>{"s", "a"}));
}

TEST(DynamicCarriers, SubsetOfStaticAfterFixpoint) {
  // Once the forward narrowing has bounded every net's latest transition by
  // its topological arrival, the Def. 7 test is at least as strong as the
  // Def. 4 one: dynamic carriers are a subset of static carriers.
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const TimingCheck check{s, Time(55)};  // violation exists (floating = 60)
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(Time(55)));
  cs.schedule_all();
  ASSERT_EQ(cs.reach_fixpoint(),
            ConstraintSystem::Status::kPossibleViolation);
  const CarrierSet dyn = dynamic_carriers(cs, check);
  const CarrierSet stat = static_carriers(c, check);
  EXPECT_TRUE(dyn.is_carrier(s));
  for (NetId n : c.all_nets()) {
    if (dyn.is_carrier(n)) {
      EXPECT_TRUE(stat.is_carrier(n)) << c.net(n).name;
      EXPECT_LE(dyn.distance[n.index()], stat.distance[n.index()])
          << c.net(n).name;
    }
  }
}

TEST(DynamicCarriers, NarrowedDomainsShrinkCarrierSet) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const TimingCheck check{s, Time(61)};
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(Time(61)));
  cs.schedule_all();
  cs.reach_fixpoint();
  // Narrowing empties everything here (Example 2): no carriers remain.
  EXPECT_TRUE(cs.inconsistent());
  const CarrierSet dyn = dynamic_carriers(cs, check);
  EXPECT_FALSE(dyn.is_carrier(s));
}

TEST(DynamicCarriers, CarrySkipDominatorsIncludeBlockCarries) {
  // Paper Section 4: all paths to the final carry longer than the skip
  // route pass through the block-carry nets.
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout = *c.find_net("cout");
  const Time top = topo_arrival(c)[cout.index()];
  const TimingCheck check{cout, top};  // require the full topological path
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(cout, AbstractSignal::violating(top));
  const auto doms =
      timing_dominators(c, check, dynamic_carriers(cs, check));
  std::vector<std::string> names;
  for (NetId d : doms) names.push_back(c.net(d).name);
  // The block-carry boundary nets bc4..bc16 must all appear.
  for (const char* bc : {"bc4", "bc8", "bc12", "bc16"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), bc), names.end()) << bc;
  }
}

TEST(DominatorImplications, NarrowsDominatorsOnly) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout = *c.find_net("cout");
  const Time top = topo_arrival(c)[cout.index()];
  // Largest delta the plain fixpoint cannot refute.
  Time delta = top;
  for (; delta > Time(0); delta = delta - 10) {
    ConstraintSystem probe(c);
    for (NetId in : c.inputs()) {
      probe.restrict_domain(in, AbstractSignal::floating_input());
    }
    probe.restrict_domain(cout, AbstractSignal::violating(delta));
    probe.schedule_all();
    if (probe.reach_fixpoint() ==
        ConstraintSystem::Status::kPossibleViolation) {
      break;
    }
  }
  ASSERT_GT(delta, Time(0));
  const TimingCheck check{cout, delta};
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(cout, AbstractSignal::violating(delta));
  cs.schedule_all();
  cs.reach_fixpoint();
  const auto doms = timing_dominators(c, check, dynamic_carriers(cs, check));
  const std::size_t changed = apply_dominator_implications(cs, check);
  // Corollary 1 adds information whenever a dominator beyond s exists whose
  // domain has not already been narrowed to the implied interval.
  if (doms.size() > 1) {
    EXPECT_GT(changed, 0u);
  }
}

TEST(StaticDominatorImplications, WeakerThanDynamic) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout = *c.find_net("cout");
  const Time top = topo_arrival(c)[cout.index()];
  const TimingCheck check{cout, top};

  auto run = [&](bool dynamic) {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(cout, AbstractSignal::violating(top));
    cs.schedule_all();
    cs.reach_fixpoint();
    std::size_t rounds = 0;
    for (;;) {
      const std::size_t n = dynamic
                                ? apply_dominator_implications(cs, check)
                                : apply_static_dominator_implications(cs, check);
      if (n == 0 || cs.inconsistent()) break;
      cs.reach_fixpoint();
      if (++rounds > 100) break;
    }
    return cs.inconsistent();
  };
  const bool dyn_closed = run(true);
  const bool stat_closed = run(false);
  // Dynamic implications are at least as strong as static ones.
  EXPECT_GE(int{dyn_closed}, int{stat_closed});
}

}  // namespace
}  // namespace waveck
