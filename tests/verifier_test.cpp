#include "verify/verifier.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "netlist/transforms.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

TEST(Verifier, HrapcenkoNoViolationAt61ByNarrowingAlone) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto rep = v.check_output(*c.find_net("s"), Time(61));
  EXPECT_EQ(rep.conclusion, CheckConclusion::kNoViolation);
  EXPECT_EQ(rep.before_gitd, StageStatus::kNoViolation);  // Example 2
}

TEST(Verifier, HrapcenkoViolationAt60WithVector) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto rep = v.check_output(*c.find_net("s"), Time(60));
  ASSERT_EQ(rep.conclusion, CheckConclusion::kViolation);
  ASSERT_TRUE(rep.vector.has_value());
  const auto sim = simulate_floating(c, *rep.vector);
  EXPECT_GE(sim.settle[c.find_net("s")->index()], Time(60));
}

TEST(Verifier, ExactDelayHrapcenko) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  EXPECT_EQ(res.delay, Time(60));
  EXPECT_EQ(res.topological, Time(70));
  EXPECT_TRUE(res.exact);
  ASSERT_TRUE(res.witness.has_value());
}

TEST(Verifier, ExactDelayMatchesOracleC17) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c));
  EXPECT_TRUE(res.exact);
}

TEST(Verifier, ExactDelayMatchesOracleNorC17) {
  Circuit c = gen::prepare_for_experiment(gen::c17());
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c));
}

TEST(Verifier, ExactDelayCarrySkip8) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c, 17));
  EXPECT_LT(res.delay, res.topological);  // false ripple path removed
}

TEST(Verifier, CheckCircuitAggregates) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const Time exact = exhaustive_floating_delay(c);
  const auto viol = v.check_circuit(exact);
  EXPECT_EQ(viol.conclusion, CheckConclusion::kViolation);
  ASSERT_TRUE(viol.vector.has_value());
  ASSERT_TRUE(viol.violating_output.has_value());

  const auto clean = v.check_circuit(exact + 1);
  EXPECT_EQ(clean.conclusion, CheckConclusion::kNoViolation);
}

TEST(Verifier, TrivialOutputsSkippedViaSta) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  // delta above topological: every output is skipped as trivially safe.
  const auto rep = v.check_circuit(topological_delay(c) + 1);
  EXPECT_EQ(rep.conclusion, CheckConclusion::kNoViolation);
  EXPECT_EQ(rep.backtracks, 0u);
}

TEST(Verifier, StagesDisabledFallThrough) {
  const Circuit c = gen::hrapcenko(10);
  VerifyOptions opt;
  opt.use_case_analysis = false;
  Verifier v(c, opt);
  const auto rep = v.check_output(*c.find_net("s"), Time(60));
  EXPECT_EQ(rep.conclusion, CheckConclusion::kPossible);
}

TEST(Verifier, NoLearningStillSound) {
  VerifyOptions opt;
  opt.use_learning = false;
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c, opt);
  const auto res = v.exact_floating_delay();
  EXPECT_EQ(res.delay, Time(60));
}

TEST(Verifier, NoDominatorsStillSound) {
  VerifyOptions opt;
  opt.use_dominators = false;
  opt.case_analysis.dominators_in_search = false;
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c, opt);
  const auto res = v.exact_floating_delay();
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c, 17));
}

TEST(Verifier, NoStemCorrelationStillSound) {
  VerifyOptions opt;
  opt.use_stem_correlation = false;
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c, opt);
  EXPECT_EQ(v.exact_floating_delay().delay, Time(60));
}

TEST(Verifier, AbandonedReportsUpperBoundOnly) {
  VerifyOptions opt;
  opt.case_analysis.max_backtracks = 0;
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c, opt);
  const auto res = v.exact_floating_delay();
  // Either it still resolves every probe without backtracks or it reports
  // inexactness -- never a wrong "exact" claim above the true delay.
  if (!res.exact) {
    SUCCEED();
  } else {
    EXPECT_LE(res.delay, res.topological);
  }
}

TEST(Verifier, FormatVector) {
  EXPECT_EQ(format_vector({true, false, true, true}), "1011");
  EXPECT_EQ(format_vector({}), "");
}

TEST(Verifier, VectorSimSettleEqualsClaimedDelta) {
  // The witness at the exact delay must settle exactly at the exact delay.
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.witness.has_value());
  const auto sim = simulate_floating(c, *res.witness);
  Time settle = Time::neg_inf();
  for (NetId o : c.outputs()) {
    settle = Time::max(settle, sim.settle[o.index()]);
  }
  EXPECT_EQ(settle, res.delay);
}

}  // namespace
}  // namespace waveck
