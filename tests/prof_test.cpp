// Perf observatory tests: counter math, graceful degradation, the dual
// accumulation invariant (registry totals == sum over per-check reports),
// the sampling profiler, and the progress/watchdog heartbeat.
//
// This container may or may not expose a PMU, so every test that touches
// real hardware counters is availability-agnostic: degradation is forced
// deterministically via WAVECK_PERF_FAKE_ERRNO, and the merge invariant
// holds on wall_ns/sections, which accumulate on both paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <chrono>
#include <ctime>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/harness.hpp"
#include "common/telemetry.hpp"
#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "json_checker.hpp"
#include "netlist/transforms.hpp"
#include "prof/heartbeat.hpp"
#include "prof/perf_counters.hpp"
#include "prof/profiler.hpp"
#include "sched/check_scheduler.hpp"
#include "verify/report_io.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

using testjson::valid_json;

/// A raw suite circuit prepared the way the CLI does it: paper delays (10
/// per gate) and solver decomposition. Without delays every output is
/// STA-trivial and no pipeline stage ever runs.
Circuit prepared(const std::string& name) {
  Circuit c = gen::build_raw(name);
  c.set_uniform_delay(DelaySpec::fixed(10));
  return decompose_for_solver(c);
}

/// Restores the counters switch and the thread's group on scope exit, so a
/// failing assertion can't leak forced-degradation state into later tests.
struct CounterGuard {
  ~CounterGuard() {
    prof::set_counters_enabled(false);
    unsetenv("WAVECK_PERF_FAKE_ERRNO");
    prof::reset_thread_counter_group_for_testing();
  }
};

TEST(ScaleMultiplexed, IdentityWhenNotMultiplexed) {
  EXPECT_EQ(prof::scale_multiplexed(1000, 500, 500), 1000u);
  EXPECT_EQ(prof::scale_multiplexed(0, 500, 250), 0u);
}

TEST(ScaleMultiplexed, ExtrapolatesLinearly) {
  // Group ran half the window: raw doubles.
  EXPECT_EQ(prof::scale_multiplexed(1000, 1000, 500), 2000u);
  // Rounded, not truncated.
  EXPECT_EQ(prof::scale_multiplexed(1, 3, 2), 2u);  // 1.5 -> 2
}

TEST(ScaleMultiplexed, RunningZeroReturnsRaw) {
  // The group never got the PMU; raw is necessarily 0 and must pass
  // through without a divide.
  EXPECT_EQ(prof::scale_multiplexed(0, 1000, 0), 0u);
  EXPECT_EQ(prof::scale_multiplexed(7, 1000, 0), 7u);
}

TEST(CounterTotals, RatiosGuardZeroDivide) {
  prof::CounterTotals t;
  EXPECT_EQ(t.ipc(), 0.0);
  EXPECT_EQ(t.cache_miss_rate(), 0.0);
  t.cycles = 1000;
  t.instructions = 2500;
  t.cache_references = 100;
  t.cache_misses = 25;
  EXPECT_DOUBLE_EQ(t.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(t.cache_miss_rate(), 0.25);
}

TEST(CounterTotals, JsonNeverCarriesNonFiniteRates) {
  // Regression: a stage whose hardware group read zero cycles/references
  // (multiplexed out, or degraded mid-run) must not leak "nan"/"inf"
  // tokens into machine-parseable JSON (`waveck check --counters`,
  // bench_table1 rows).
  prof::CounterTotals t;
  t.wall_ns = 123;
  t.instructions = 500;  // ipc denominator (cycles) is zero
  t.cache_misses = 7;    // miss-rate denominator (references) is zero
  std::ostringstream os;
  bench::write_counter_totals_json(os, t, /*hw=*/true);
  const std::string j = os.str();
  EXPECT_EQ(j.find("nan"), std::string::npos) << j;
  EXPECT_EQ(j.find("inf"), std::string::npos) << j;
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"ipc\":0"), std::string::npos) << j;
  EXPECT_NE(j.find("\"cache_miss_rate\":0"), std::string::npos) << j;
}

TEST(CounterTotals, AddSkipsEmptyAndAndsValidity) {
  prof::CounterTotals a;
  prof::CounterDelta d;
  d.hw_valid = true;
  d.cycles = 10;
  d.wall_ns = 5;
  a.add(d);
  EXPECT_TRUE(a.any());
  EXPECT_TRUE(a.hw_valid);

  // An empty totals contributes nothing -- in particular it must not AND
  // its default hw_valid into a populated accumulator.
  prof::CounterTotals empty;
  empty.hw_valid = false;
  a.add(empty);
  EXPECT_TRUE(a.hw_valid);
  EXPECT_EQ(a.sections, 1u);

  prof::CounterDelta degraded;  // hw_valid = false
  degraded.wall_ns = 3;
  a.add(degraded);
  EXPECT_FALSE(a.hw_valid);
  EXPECT_EQ(a.wall_ns, 8u);
  EXPECT_EQ(a.sections, 2u);
}

TEST(DeltaBetween, WallClockAlwaysValid) {
  prof::CounterSample begin, end;
  begin.monotonic_ns = 100;
  end.monotonic_ns = 350;
  const prof::CounterDelta d = prof::delta_between(begin, end);
  EXPECT_FALSE(d.hw_valid);  // neither sample had hardware data
  EXPECT_EQ(d.wall_ns, 250u);
  EXPECT_EQ(d.cycles, 0u);
}

TEST(PerfCounters, FakeErrnoForcesDegradation) {
  CounterGuard guard;
  setenv("WAVECK_PERF_FAKE_ERRNO", "EACCES", 1);
  prof::reset_thread_counter_group_for_testing();

  const std::uint64_t warnings_before = prof::warnings_emitted();
  prof::PerfCounterGroup& g = prof::thread_counter_group();
  EXPECT_FALSE(g.available());
  EXPECT_NE(g.unavailable_reason().find("WAVECK_PERF_FAKE_ERRNO"),
            std::string::npos);

  // The degraded sample still carries a monotonic clock.
  const prof::CounterSample s = g.read();
  EXPECT_FALSE(s.hw_valid);
  EXPECT_GT(s.monotonic_ns, 0u);

  // Warning policy: at most one per process, ever -- repeated re-opens
  // (every pool worker degrades the same way) stay quiet.
  prof::reset_thread_counter_group_for_testing();
  (void)prof::thread_counter_group();
  prof::reset_thread_counter_group_for_testing();
  (void)prof::thread_counter_group();
  EXPECT_LE(prof::warnings_emitted(), 1u);
  EXPECT_LE(prof::warnings_emitted() - warnings_before, 1u);
  EXPECT_FALSE(prof::unavailable_reason().empty());
}

TEST(PerfCounters, DegradedCheckReportSaysUnavailable) {
  CounterGuard guard;
  setenv("WAVECK_PERF_FAKE_ERRNO", "EPERM", 1);
  prof::reset_thread_counter_group_for_testing();
  prof::set_counters_enabled(true);

  const Circuit c = prepared("c17");
  Verifier v(c);
  const CheckReport rep = v.check_output(c.outputs().front(), Time(1));

  ASSERT_TRUE(rep.stage_perf.any());
  EXPECT_FALSE(rep.stage_perf.total().hw_valid);
  EXPECT_GT(rep.stage_perf.total().wall_ns, 0u);

  const std::string js = to_json(c, rep);
  std::string err;
  EXPECT_TRUE(valid_json(js, &err)) << err;
  EXPECT_NE(js.find("\"counters\":\"unavailable\""), std::string::npos);
  EXPECT_NE(js.find("\"reason\":"), std::string::npos);
  EXPECT_NE(js.find("\"wall_ns\":"), std::string::npos);
}

TEST(PerfCounters, DisabledLeavesReportsEmpty) {
  CounterGuard guard;
  prof::set_counters_enabled(false);
  const Circuit c = prepared("c17");
  Verifier v(c);
  const CheckReport rep = v.check_output(c.outputs().front(), Time(1));
  EXPECT_FALSE(rep.stage_perf.any());
  const std::string js = to_json(c, rep);
  EXPECT_EQ(js.find("\"perf\":"), std::string::npos);
  std::string err;
  EXPECT_TRUE(valid_json(js, &err)) << err;
}

/// The dual-accumulation invariant: every stage window adds its delta both
/// to the CheckReport and to the emitting thread's registry, and worker
/// registries merge at batch end -- so the global registry's growth must
/// equal the sum over per-check reports under ANY jobs count. wall_ns and
/// sections accumulate even on the degraded path, which makes the test
/// availability-agnostic. The report folds delay_correlation into its
/// narrowing slot; the registry keeps them separate.
///
/// The check runs just ABOVE the exact floating delay of a false-path
/// circuit (the carry-skip adder): no output violates, so the serial loop
/// and the parallel batch execute the identical check set. Checking a
/// violating delta instead would break the equality by design: parallel
/// workers speculatively complete checks ordered after the first
/// violation, and the registry keeps that honest record of work done while
/// the deterministic report merge discards it.
TEST(PerfCounters, RegistryMergeEqualsReportSums) {
  CounterGuard guard;
  prof::set_counters_enabled(true);

  const Circuit c = [] {
    // Generators leave delays at zero; without real delays every output is
    // STA-trivial and no stage ever runs.
    Circuit raw = gen::carry_skip_adder(16, 4);
    raw.set_uniform_delay(DelaySpec::fixed(10));
    return decompose_for_solver(raw);
  }();
  const Time above = [&] {
    Verifier probe(c);
    return probe.exact_floating_delay().delay + 1;
  }();
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}}) {
    auto& reg = telemetry::Registry::global();
    const auto snap = [&](const std::string& key) {
      return reg.counter(key).value();
    };

    Verifier v(c);
    sched::CheckScheduler s(v, sched::ScheduleOptions{.jobs = jobs});
    // Registry snapshot AFTER constructing the scheduler, BEFORE the run.
    const std::string fields[] = {"wall_ns", "sections"};
    std::uint64_t before[5][2];
    const char* stages[] = {"stage.narrowing", "stage.delay_correlation",
                            "stage.gitd", "stage.stem",
                            "stage.case_analysis"};
    for (int i = 0; i < 5; ++i) {
      for (int f = 0; f < 2; ++f) {
        before[i][f] =
            snap("perf." + std::string(stages[i]) + "." + fields[f]);
      }
    }

    const SuiteReport rep = s.check_circuit(above);
    ASSERT_NE(rep.conclusion, CheckConclusion::kViolation);
    ASSERT_TRUE(rep.stage_perf.any()) << "jobs=" << jobs;

    std::uint64_t delta[5][2];
    for (int i = 0; i < 5; ++i) {
      for (int f = 0; f < 2; ++f) {
        delta[i][f] =
            snap("perf." + std::string(stages[i]) + "." + fields[f]) -
            before[i][f];
      }
    }
    // Suite totals were merged from per-check reports; cross-check both
    // levels against the registry growth.
    StagePerf sum;
    for (const CheckReport& out : rep.per_output) {
      sum.add(out.stage_perf);
    }
    const struct {
      const prof::CounterTotals& merged;
      const prof::CounterTotals& summed;
      std::uint64_t reg_wall;
      std::uint64_t reg_sections;
    } rows[] = {
        {rep.stage_perf.narrowing, sum.narrowing,
         delta[0][0] + delta[1][0], delta[0][1] + delta[1][1]},
        {rep.stage_perf.gitd, sum.gitd, delta[2][0], delta[2][1]},
        {rep.stage_perf.stem, sum.stem, delta[3][0], delta[3][1]},
        {rep.stage_perf.case_analysis, sum.case_analysis, delta[4][0],
         delta[4][1]},
    };
    for (const auto& row : rows) {
      EXPECT_EQ(row.merged.wall_ns, row.summed.wall_ns) << "jobs=" << jobs;
      EXPECT_EQ(row.merged.sections, row.summed.sections) << "jobs=" << jobs;
      EXPECT_EQ(row.merged.wall_ns, row.reg_wall) << "jobs=" << jobs;
      EXPECT_EQ(row.merged.sections, row.reg_sections) << "jobs=" << jobs;
    }
    EXPECT_GT(rep.stage_perf.narrowing.sections, 0u);
  }
}

TEST(Profiler, SmokeCapturesAnnotatedStacks) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "sanitizer runtimes intercept SIGPROF and throttle "
                  "delivery below the sample-count bound";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  GTEST_SKIP() << "sanitizer runtimes intercept SIGPROF and throttle "
                  "delivery below the sample-count bound";
#endif
#endif
  auto& p = prof::SamplingProfiler::instance();
  ASSERT_FALSE(p.running());
  std::string err;
  ASSERT_TRUE(p.start({.hz = 997, .max_samples = 1u << 14}, &err)) << err;

  telemetry::set_check_mark("smoke");
  telemetry::set_stage_mark("narrowing");
  // Burn ~0.6s of CPU: ITIMER_PROF fires on CPU time and the kernel caps
  // delivery at its tick rate (often 250Hz), so this yields >= ~100
  // samples on any machine.
  volatile double acc = 1.0;
  const std::clock_t t0 = std::clock();
  while (std::clock() - t0 < static_cast<std::clock_t>(0.6 * CLOCKS_PER_SEC)) {
    for (int i = 0; i < 10000; ++i) acc = acc * 1.0000001 + 0.5;
  }
  telemetry::set_stage_mark(nullptr);
  telemetry::set_check_mark(nullptr);

  const prof::ProfileReport rep = p.stop();
  ASSERT_FALSE(p.running());
  EXPECT_GT(rep.samples, 10u);
  EXPECT_FALSE(rep.folded.empty());
  EXPECT_NE(rep.folded.find("stage:narrowing"), std::string::npos);
  EXPECT_NE(rep.folded.find("check:smoke"), std::string::npos);

  std::string jerr;
  EXPECT_TRUE(valid_json(rep.speedscope_json, &jerr)) << jerr;
  EXPECT_NE(rep.speedscope_json.find("speedscope.app/file-format-schema"),
            std::string::npos);
  EXPECT_NE(rep.speedscope_json.find("stage:narrowing"), std::string::npos);
  EXPECT_NE(rep.speedscope_json.find("\"type\":\"sampled\""),
            std::string::npos);
}

TEST(Profiler, DoubleStartRefused) {
  auto& p = prof::SamplingProfiler::instance();
  std::string err;
  ASSERT_TRUE(p.start({.hz = 101}, &err)) << err;
  EXPECT_FALSE(p.start({.hz = 101}, &err));
  EXPECT_EQ(err, "profiler already running");
  (void)p.stop();
  EXPECT_FALSE(p.running());
}

/// Collects event names so heartbeat bracket balance can be asserted.
class NameSink final : public telemetry::TraceSink {
 public:
  void event(std::string_view name,
             std::span<const telemetry::TraceField> /*fields*/) override {
    const std::scoped_lock lock(mu_);
    names_.emplace_back(name);
  }
  [[nodiscard]] std::size_t count(const std::string& name) const {
    const std::scoped_lock lock(mu_);
    std::size_t n = 0;
    for (const auto& s : names_) n += s == name ? 1 : 0;
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_;
};

TEST(Heartbeat, BeatsWatchdogAndBalancedEvents) {
  NameSink sink;
  telemetry::set_trace_sink(&sink);
  std::ostringstream err;
  {
    prof::ProgressMonitor monitor({.interval_s = 0.05, .stall_s = 0.15},
                                  err);
    EXPECT_TRUE(prof::heartbeat_enabled());
    // Phase 1: live progress under a named check.
    prof::ActivityBoard::begin_check("out1", 7);
    prof::ActivityBoard::set_stage("case_analysis");
    prof::ActivityBoard::set_depth(3);
    for (int i = 0; i < 4; ++i) {
      prof::ActivityBoard::tick(10);
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    // Phase 2: go silent long enough to trip the watchdog.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_GE(monitor.beats(), 3u);
    EXPECT_GE(monitor.stalls(), 1u);
    prof::ActivityBoard::end_check();
    monitor.stop();

    const std::string log = err.str();
    EXPECT_NE(log.find("[waveck hb#"), std::string::npos);
    EXPECT_NE(log.find("gate_evals="), std::string::npos);
    EXPECT_NE(log.find("out1"), std::string::npos);
    EXPECT_NE(log.find("case_analysis"), std::string::npos);
    EXPECT_NE(log.find("[waveck watchdog] no progress"), std::string::npos);

    EXPECT_EQ(sink.count("progress_begin"), 1u);
    EXPECT_EQ(sink.count("progress_end"), 1u);
    EXPECT_EQ(sink.count("heartbeat"), monitor.beats());
    EXPECT_EQ(sink.count("watchdog_stall"), monitor.stalls());
    // stop() is idempotent: no second progress_end.
    monitor.stop();
    EXPECT_EQ(sink.count("progress_end"), 1u);
  }
  EXPECT_FALSE(prof::heartbeat_enabled());
  telemetry::set_trace_sink(nullptr);
}

TEST(Heartbeat, DisabledBoardWritesAreCheap) {
  // Without a monitor the enabled flag is down and producers skip the
  // board entirely; poke the flag-guarded statics directly to make sure
  // they stay safe to call either way.
  EXPECT_FALSE(prof::heartbeat_enabled());
  prof::ActivityBoard::tick(5);
  prof::ActivityBoard::set_depth(1);
  prof::ActivityBoard::end_check();
  SUCCEED();
}

}  // namespace
}  // namespace waveck
