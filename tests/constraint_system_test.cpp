#include "constraints/constraint_system.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"

namespace waveck {
namespace {

constexpr Time kNI = Time::neg_inf();

Circuit and_not_chain() {
  Circuit c("chain");
  const NetId a = c.add_net("a"), b = c.add_net("b");
  const NetId x = c.add_net("x"), y = c.add_net("y");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kAnd, x, {a, b}, DelaySpec::fixed(5));
  c.add_gate(GateType::kNot, y, {x}, DelaySpec::fixed(5));
  c.declare_output(y);
  c.finalize();
  return c;
}

TEST(ConstraintSystem, InitialDomainsAreTop) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  for (NetId n : c.all_nets()) {
    EXPECT_TRUE(cs.domain(n).is_top());
  }
  EXPECT_FALSE(cs.inconsistent());
}

TEST(ConstraintSystem, ForwardFixpointBoundsArrivals) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  EXPECT_EQ(cs.reach_fixpoint(),
            ConstraintSystem::Status::kPossibleViolation);
  const NetId y = *c.find_net("y");
  EXPECT_EQ(cs.domain(y).cls(false), LtInterval(kNI, Time(10)));
  EXPECT_EQ(cs.domain(y).cls(true), LtInterval(kNI, Time(10)));
}

TEST(ConstraintSystem, InfeasibleCheckDetected) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  // Output cannot transition at/after 11 (top = 10).
  cs.restrict_domain(*c.find_net("y"), AbstractSignal::violating(Time(11)));
  cs.schedule_all();
  EXPECT_EQ(cs.reach_fixpoint(), ConstraintSystem::Status::kNoViolation);
  EXPECT_TRUE(cs.inconsistent());
}

TEST(ConstraintSystem, FeasibleCheckStaysConsistent) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(*c.find_net("y"), AbstractSignal::violating(Time(10)));
  cs.schedule_all();
  EXPECT_EQ(cs.reach_fixpoint(),
            ConstraintSystem::Status::kPossibleViolation);
}

TEST(ConstraintSystem, RestrictReturnsWhetherNarrowed) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  const NetId a = *c.find_net("a");
  EXPECT_TRUE(cs.restrict_domain(a, AbstractSignal::floating_input()));
  EXPECT_FALSE(cs.restrict_domain(a, AbstractSignal::floating_input()));
}

TEST(ConstraintSystem, TrailPushPopRestoresDomains) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();
  const NetId x = *c.find_net("x");
  const AbstractSignal before = cs.domain(x);

  const auto mark = cs.push_state();
  cs.restrict_domain(x, AbstractSignal::class_only(false));
  cs.reach_fixpoint();
  EXPECT_NE(cs.domain(x), before);
  cs.pop_to(mark);
  EXPECT_EQ(cs.domain(x), before);
  EXPECT_FALSE(cs.inconsistent());
}

TEST(ConstraintSystem, NestedPushPop) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  const NetId a = *c.find_net("a"), b = *c.find_net("b");

  const auto m1 = cs.push_state();
  cs.restrict_domain(a, AbstractSignal::class_only(true));
  const AbstractSignal a_at_1 = cs.domain(a);
  const auto m2 = cs.push_state();
  cs.restrict_domain(b, AbstractSignal::class_only(false));
  cs.restrict_domain(a, AbstractSignal::floating_input());
  cs.pop_to(m2);
  EXPECT_EQ(cs.domain(a), a_at_1);
  EXPECT_TRUE(cs.domain(b).is_top());
  cs.pop_to(m1);
  EXPECT_TRUE(cs.domain(a).is_top());
}

TEST(ConstraintSystem, PopRestoresInconsistency) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();
  const auto mark = cs.push_state();
  cs.restrict_domain(*c.find_net("y"), AbstractSignal::violating(Time(999)));
  cs.reach_fixpoint();
  EXPECT_TRUE(cs.inconsistent());
  cs.pop_to(mark);
  EXPECT_FALSE(cs.inconsistent());
}

TEST(ConstraintSystem, ChangedSinceListsTouchedNets) {
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  const auto mark = cs.push_state();
  cs.restrict_domain(*c.find_net("a"), AbstractSignal::class_only(true));
  cs.reach_fixpoint();
  const auto changed = cs.changed_since(mark);
  EXPECT_FALSE(changed.empty());
  bool has_a = false;
  for (NetId n : changed) has_a |= (n == *c.find_net("a"));
  EXPECT_TRUE(has_a);
}

TEST(ConstraintSystem, ClassPropagationThroughChain) {
  // a=0 forces x=0 forces y=1 (pure class reasoning, no timing).
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  cs.restrict_domain(*c.find_net("a"), AbstractSignal::class_only(false));
  cs.reach_fixpoint();
  EXPECT_TRUE(cs.domain(*c.find_net("x")).single_class());
  EXPECT_FALSE(cs.domain(*c.find_net("x")).the_class());
  EXPECT_TRUE(cs.domain(*c.find_net("y")).single_class());
  EXPECT_TRUE(cs.domain(*c.find_net("y")).the_class());
}

TEST(ConstraintSystem, BackwardClassPropagation) {
  // y=0 forces x=1 forces a=b=1.
  const Circuit c = and_not_chain();
  ConstraintSystem cs(c);
  cs.restrict_domain(*c.find_net("y"), AbstractSignal::class_only(false));
  cs.reach_fixpoint();
  EXPECT_TRUE(cs.domain(*c.find_net("a")).single_class());
  EXPECT_TRUE(cs.domain(*c.find_net("a")).the_class());
  EXPECT_TRUE(cs.domain(*c.find_net("b")).the_class());
}

TEST(ConstraintSystem, ImplicationTableFires) {
  const Circuit c = and_not_chain();
  ImplicationTable table;
  // Artificial implication: a=1 => b=0.
  table.add(*c.find_net("a"), true, *c.find_net("b"), false);
  ConstraintSystem cs(c);
  cs.set_implications(&table);
  cs.restrict_domain(*c.find_net("a"), AbstractSignal::class_only(true));
  EXPECT_TRUE(cs.domain(*c.find_net("b")).single_class());
  EXPECT_FALSE(cs.domain(*c.find_net("b")).the_class());
}

TEST(ConstraintSystem, StatsAdvance) {
  const Circuit c = gen::hrapcenko();
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();
  EXPECT_GT(cs.applications(), 0u);
  EXPECT_GT(cs.narrowings(), 0u);
}

}  // namespace
}  // namespace waveck
