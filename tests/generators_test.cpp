#include "gen/generators.hpp"

#include <gtest/gtest.h>

#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "netlist/transforms.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

std::vector<bool> bits_of(std::uint64_t v, unsigned n) {
  std::vector<bool> out(n);
  for (unsigned i = 0; i < n; ++i) out[i] = (v >> i) & 1;
  return out;
}

std::uint64_t word_out(const Circuit& c, const FloatingResult& r,
                       const std::string& prefix, unsigned n) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < n; ++i) {
    const auto net = c.find_net(prefix + std::to_string(i));
    EXPECT_TRUE(net.has_value()) << prefix << i;
    v |= std::uint64_t{r.value[net->index()]} << i;
  }
  return v;
}

TEST(Generators, CarrySkipAdderAddsCorrectly) {
  const Circuit c = gen::carry_skip_adder(8, 4);
  // inputs: a0..a7, b0..b7, cin
  for (std::uint64_t a = 0; a < 256; a += 13) {
    for (std::uint64_t b = 0; b < 256; b += 17) {
      for (bool cin : {false, true}) {
        auto v = bits_of(a, 8);
        const auto bv = bits_of(b, 8);
        v.insert(v.end(), bv.begin(), bv.end());
        v.push_back(cin);
        const auto r = simulate_floating(c, v);
        const std::uint64_t sum = word_out(c, r, "s", 8) |
                                  (std::uint64_t{r.value[c.find_net("cout")
                                                              ->index()]}
                                   << 8);
        EXPECT_EQ(sum, a + b + cin);
      }
    }
  }
}

TEST(Generators, ArrayMultiplierMultipliesCorrectly) {
  const Circuit c = gen::array_multiplier(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      auto v = bits_of(a, 4);
      const auto bv = bits_of(b, 4);
      v.insert(v.end(), bv.begin(), bv.end());
      const auto r = simulate_floating(c, v);
      EXPECT_EQ(word_out(c, r, "p", 8), a * b) << a << "*" << b;
    }
  }
}

TEST(Generators, ArrayMultiplier6x6Spot) {
  const Circuit c = gen::array_multiplier(6);
  for (std::uint64_t a : {0ull, 1ull, 17ull, 42ull, 63ull}) {
    for (std::uint64_t b : {0ull, 1ull, 29ull, 63ull}) {
      auto v = bits_of(a, 6);
      const auto bv = bits_of(b, 6);
      v.insert(v.end(), bv.begin(), bv.end());
      const auto r = simulate_floating(c, v);
      EXPECT_EQ(word_out(c, r, "p", 12), a * b);
    }
  }
}

TEST(Generators, EccCorrectsSingleBitErrors) {
  const unsigned kData = 8;
  const Circuit c = gen::ecc_corrector(kData, false);
  unsigned r = 1;
  while ((1u << r) < kData + r + 1) ++r;

  // Hamming positions of the data bits (non powers of two).
  std::vector<unsigned> pos;
  for (unsigned p = 1; pos.size() < kData; ++p) {
    if ((p & (p - 1)) != 0) pos.push_back(p);
  }
  auto checks_for = [&](std::uint64_t data) {
    std::vector<bool> chk(r, false);
    for (unsigned k = 0; k < r; ++k) {
      bool par = false;
      for (unsigned i = 0; i < kData; ++i) {
        if ((pos[i] & (1u << k)) && ((data >> i) & 1)) par = !par;
      }
      chk[k] = par;
    }
    return chk;
  };

  for (std::uint64_t data : {0x00ull, 0xffull, 0x5aull, 0x13ull, 0xc7ull}) {
    const auto chk = checks_for(data);
    // No error: data passes through.
    {
      auto v = bits_of(data, kData);
      v.insert(v.end(), chk.begin(), chk.end());
      const auto res = simulate_floating(c, v);
      EXPECT_EQ(word_out(c, res, "o", kData), data);
    }
    // Each single data-bit error is corrected.
    for (unsigned e = 0; e < kData; ++e) {
      auto v = bits_of(data ^ (1ull << e), kData);
      v.insert(v.end(), chk.begin(), chk.end());
      const auto res = simulate_floating(c, v);
      EXPECT_EQ(word_out(c, res, "o", kData), data) << "err bit " << e;
    }
  }
}

TEST(Generators, SecDedFlagsDoubleErrors) {
  const unsigned kData = 8;
  const Circuit c = gen::ecc_corrector(kData, true);
  // Inputs: d0..d7, c0..c{r-1}, cp (overall parity).
  unsigned r = 1;
  while ((1u << r) < kData + r + 1) ++r;
  std::vector<unsigned> pos;
  for (unsigned p = 1; pos.size() < kData; ++p) {
    if ((p & (p - 1)) != 0) pos.push_back(p);
  }
  const std::uint64_t data = 0x5a;
  std::vector<bool> chk(r, false);
  for (unsigned k = 0; k < r; ++k) {
    bool par = false;
    for (unsigned i = 0; i < kData; ++i) {
      if ((pos[i] & (1u << k)) && ((data >> i) & 1)) par = !par;
    }
    chk[k] = par;
  }
  bool overall = false;
  for (unsigned i = 0; i < kData; ++i) overall ^= (data >> i) & 1;
  for (bool b : chk) overall ^= b;

  auto run = [&](std::uint64_t received) {
    auto v = bits_of(received, kData);
    v.insert(v.end(), chk.begin(), chk.end());
    v.push_back(overall);
    return simulate_floating(c, v);
  };
  // Clean word: no DED flag.
  EXPECT_FALSE(run(data).value[c.find_net("ded")->index()]);
  // Two flipped data bits: DED flag raised.
  EXPECT_TRUE(run(data ^ 0b101).value[c.find_net("ded")->index()]);
}

TEST(Generators, AluOpcodesWork) {
  const gen::AluConfig cfg{.width = 4, .with_subtract = true,
                           .with_flags = true, .with_parity = false};
  const Circuit c = gen::alu(cfg);
  // inputs: a0..3, b0..3, op0, op1, sub
  auto run = [&](unsigned a, unsigned b, bool op0, bool op1, bool sub) {
    auto v = bits_of(a, 4);
    const auto bv = bits_of(b, 4);
    v.insert(v.end(), bv.begin(), bv.end());
    v.push_back(op0);
    v.push_back(op1);
    v.push_back(sub);
    const auto r = simulate_floating(c, v);
    return word_out(c, r, "r", 4);
  };
  EXPECT_EQ(run(5, 6, false, false, false), (5u + 6u) & 0xf);  // ADD
  EXPECT_EQ(run(5, 6, false, false, true), (5u - 6u) & 0xf);   // SUB
  EXPECT_EQ(run(0b1100, 0b1010, true, false, false), 0b1000u);  // AND
  EXPECT_EQ(run(0b1100, 0b1010, false, true, false), 0b1110u);  // OR
  EXPECT_EQ(run(0b1100, 0b1010, true, true, false), 0b0110u);   // XOR
}

TEST(Generators, PriorityControllerGrantsHighestBus) {
  const Circuit c = gen::priority_controller(3);
  // inputs: r0_0..r0_2, r1_0..r1_2, r2_0..r2_2, e0..e2
  auto run = [&](unsigned r0, unsigned r1, unsigned r2, unsigned en) {
    std::vector<bool> v;
    for (unsigned i = 0; i < 3; ++i) v.push_back((r0 >> i) & 1);
    for (unsigned i = 0; i < 3; ++i) v.push_back((r1 >> i) & 1);
    for (unsigned i = 0; i < 3; ++i) v.push_back((r2 >> i) & 1);
    for (unsigned i = 0; i < 3; ++i) v.push_back((en >> i) & 1);
    return simulate_floating(c, v);
  };
  // Bus 1 line 2 requests alone: granted.
  auto r = run(0, 0b100, 0, 0b111);
  EXPECT_TRUE(r.value[c.find_net("g1_2")->index()]);
  // Enabled bus-0 request pre-empts bus 1.
  r = run(0b001, 0b100, 0, 0b111);
  EXPECT_TRUE(r.value[c.find_net("g0_0")->index()]);
  EXPECT_FALSE(r.value[c.find_net("g1_2")->index()]);
  // Daisy chain: lowest-numbered line of the winning bus wins.
  r = run(0b110, 0, 0, 0b111);
  EXPECT_TRUE(r.value[c.find_net("g0_1")->index()]);
  EXPECT_FALSE(r.value[c.find_net("g0_2")->index()]);
}

TEST(Generators, AdderComparatorCompares) {
  const Circuit c = gen::adder_comparator(4);
  auto run = [&](unsigned a, unsigned b) {
    auto v = bits_of(a, 4);
    const auto bv = bits_of(b, 4);
    v.insert(v.end(), bv.begin(), bv.end());
    v.push_back(false);  // cin
    return simulate_floating(c, v);
  };
  auto gt = [&](unsigned a, unsigned b) -> bool {
    const auto r = run(a, b);
    return r.value[c.find_net("a_gt_b")->index()];
  };
  auto eq = [&](unsigned a, unsigned b) -> bool {
    const auto r = run(a, b);
    return r.value[c.find_net("a_eq_b")->index()];
  };
  EXPECT_TRUE(gt(9, 4));
  EXPECT_FALSE(gt(4, 9));
  EXPECT_FALSE(gt(7, 7));
  EXPECT_TRUE(eq(7, 7));
  EXPECT_FALSE(eq(7, 8));
}

TEST(Generators, RandomCircuitIsDeterministic) {
  const gen::RandomCircuitConfig cfg{.inputs = 6, .gates = 20, .outputs = 3,
                                     .seed = 77};
  const Circuit a = gen::random_circuit(cfg);
  const Circuit b = gen::random_circuit(cfg);
  EXPECT_EQ(a.num_gates(), b.num_gates());
  for (GateId g : a.all_gates()) {
    EXPECT_EQ(a.gate(g).type, b.gate(g).type);
    EXPECT_EQ(a.gate(g).ins, b.gate(g).ins);
  }
}

TEST(Generators, RandomCircuitDifferentSeedsDiffer) {
  gen::RandomCircuitConfig cfg{.inputs = 6, .gates = 20, .outputs = 3};
  cfg.seed = 1;
  const Circuit a = gen::random_circuit(cfg);
  cfg.seed = 2;
  const Circuit b = gen::random_circuit(cfg);
  bool differ = a.num_nets() != b.num_nets();
  for (GateId g : a.all_gates()) {
    if (differ) break;
    differ = a.gate(g).type != b.gate(g).type || a.gate(g).ins != b.gate(g).ins;
  }
  EXPECT_TRUE(differ);
}

TEST(Generators, SuiteBuildsAllCircuits) {
  for (const char* name : {"c17", "c432", "c499", "c880", "c1355", "c1908",
                           "c2670", "c3540", "c5315", "c7552"}) {
    const Circuit raw = gen::build_raw(name);
    EXPECT_GT(raw.num_gates(), 0u) << name;
    const Circuit mapped = gen::prepare_for_experiment(raw);
    EXPECT_GE(mapped.num_gates(), raw.num_gates()) << name;
    for (GateId g : mapped.all_gates()) {
      ASSERT_EQ(mapped.gate(g).type, GateType::kNor);
      ASSERT_EQ(mapped.gate(g).delay, DelaySpec::fixed(10));
    }
  }
  EXPECT_THROW(gen::build_raw("c9999"), std::invalid_argument);
}

TEST(Generators, SuiteSmallSubset) {
  const auto suite = gen::table1_suite(/*small_only=*/true);
  EXPECT_GE(suite.size(), 3u);
  for (const auto& entry : suite) {
    EXPECT_TRUE(entry.circuit.finalized());
  }
}

}  // namespace
}  // namespace waveck
