// Integration regression: the Table-1 suite's stage profile must match the
// paper's (which pruning stage closes which circuit). Guards the experiment
// harness against silent drift. The two big circuits (c6288/c7552 class)
// are exercised in the bench harness instead -- this test keeps the ctest
// wall-clock short.
#include <gtest/gtest.h>

#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

struct Expectation {
  const char* name;
  // Stage that first proves the delta = exact + 1 row, as in Table 1:
  // "sta" (exact == top: nothing to prove), "narrow", "gitd", "stem".
  const char* closes;
};

class SuiteProfile : public ::testing::TestWithParam<Expectation> {};

TEST_P(SuiteProfile, MatchesPaperTable1) {
  const auto& exp = GetParam();
  const Circuit c = gen::prepare_for_experiment(gen::build_raw(exp.name));
  VerifyOptions opt;
  opt.case_analysis.max_backtracks = 20000;
  Verifier v(c, opt);
  const auto exact = v.exact_floating_delay();
  ASSERT_TRUE(exact.exact) << exp.name;

  if (std::string(exp.closes) == "sta") {
    EXPECT_EQ(exact.delay, exact.topological) << exp.name;
    // Witness row exists with few backtracks.
    const auto at = v.check_circuit(exact.delay);
    EXPECT_EQ(at.conclusion, CheckConclusion::kViolation) << exp.name;
    EXPECT_LE(at.backtracks, 32u) << exp.name;
    return;
  }

  ASSERT_LT(exact.delay, exact.topological) << exp.name;
  const Time delta = exact.delay + 1;
  auto closes = [&](bool gitd, bool stems) {
    VerifyOptions o;
    o.use_dominators = gitd;
    o.use_stem_correlation = stems;
    o.use_case_analysis = false;
    Verifier vv(c, o);
    return vv.check_circuit(delta).conclusion ==
           CheckConclusion::kNoViolation;
  };
  const bool narrow = closes(false, false);
  const bool gitd = closes(true, false);
  const bool stems = closes(true, true);
  const std::string want = exp.closes;
  if (want == "narrow") {
    EXPECT_TRUE(narrow) << exp.name;
  } else if (want == "gitd") {
    EXPECT_FALSE(narrow) << exp.name;
    EXPECT_TRUE(gitd) << exp.name;
  } else if (want == "stem") {
    EXPECT_FALSE(narrow) << exp.name;
    EXPECT_FALSE(gitd) << exp.name;
    EXPECT_TRUE(stems) << exp.name;
  } else {
    FAIL() << "bad expectation " << want;
  }

  // Witness row: a validated vector at the exact delay.
  const auto at = v.check_circuit(exact.delay);
  EXPECT_EQ(at.conclusion, CheckConclusion::kViolation) << exp.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, SuiteProfile,
    ::testing::Values(Expectation{"c17", "sta"},     //
                      Expectation{"c432", "sta"},    //
                      Expectation{"c499", "sta"},    //
                      Expectation{"c880", "sta"},    //
                      Expectation{"c1355", "sta"},   //
                      Expectation{"c1908", "gitd"},  // paper: G.I.T.D.
                      Expectation{"c2670", "stem"},  // paper: stem corr.
                      Expectation{"c3540", "gitd"},  // paper: G.I.T.D.
                      Expectation{"c5315", "narrow"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace waveck
