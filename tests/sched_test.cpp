// Scheduler subsystem: ThreadPool execution guarantees, CancellationToken
// semantics, and CheckScheduler's two modes on real circuits.
#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/circuit.hpp"
#include "sched/cancellation.hpp"
#include "sched/check_scheduler.hpp"
#include "sched/thread_pool.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

using sched::CancellationToken;
using sched::CheckScheduler;
using sched::ScheduleOptions;
using sched::ThreadPool;

Circuit carry_skip16() {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  return c;
}

TEST(SchedPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr std::size_t kJobs = 200;
  std::vector<std::atomic<int>> runs(kJobs);
  std::vector<ThreadPool::Job> batch;
  batch.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    batch.push_back([&runs, i](std::size_t) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.run(std::move(batch));
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "job " << i;
  }
}

TEST(SchedPool, WorkerIndexIsInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  std::vector<ThreadPool::Job> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back([&bad](std::size_t worker) {
      if (worker >= 3) bad.store(true);
    });
  }
  pool.run(std::move(batch));
  EXPECT_FALSE(bad.load());
}

TEST(SchedPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch_no = 0; batch_no < 10; ++batch_no) {
    std::vector<ThreadPool::Job> batch;
    for (int i = 0; i < 17; ++i) {
      batch.push_back(
          [&total](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.run(std::move(batch));
  }
  EXPECT_EQ(total.load(), 170);
}

TEST(SchedPool, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.run({});  // must not hang
  SUCCEED();
}

TEST(SchedPool, SingleWorkerStillDrainsBatch) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  std::vector<ThreadPool::Job> batch;
  for (int i = 0; i < 25; ++i) {
    batch.push_back(
        [&total](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run(std::move(batch));
  EXPECT_EQ(total.load(), 25);
}

TEST(SchedPool, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

TEST(SchedCancellation, TokenLifecycle) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.flag().load());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.flag().load());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(SchedScheduler, SerialFallbackWhenJobsIsOne) {
  const Circuit c = carry_skip16();
  CheckScheduler s(c, VerifyOptions{}, ScheduleOptions{.jobs = 1});
  EXPECT_EQ(s.jobs(), 1u);
  // delta above the topological delay: trivially no violation.
  const SuiteReport rep = s.check_circuit(Time(100000));
  EXPECT_EQ(rep.conclusion, CheckConclusion::kNoViolation);
}

TEST(SchedScheduler, ParallelExactDelayMatchesSerial) {
  const Circuit c = carry_skip16();
  Verifier serial(c);
  const auto want = serial.exact_floating_delay();

  CheckScheduler s(c, VerifyOptions{}, ScheduleOptions{.jobs = 4});
  const auto got = s.exact_floating_delay();
  EXPECT_EQ(got.delay, want.delay);
  EXPECT_EQ(got.exact, want.exact);
  EXPECT_EQ(got.probes, want.probes);
  ASSERT_TRUE(got.witness.has_value());
  EXPECT_EQ(*got.witness, *want.witness);
}

TEST(SchedScheduler, WitnessOnlyFindsAValidWitness) {
  const Circuit c = carry_skip16();
  Verifier serial(c);
  const auto exact = serial.exact_floating_delay();
  ASSERT_TRUE(exact.exact);

  CheckScheduler s(c, VerifyOptions{},
                   ScheduleOptions{.jobs = 4, .witness_only = true});
  const SuiteReport rep = s.check_circuit(exact.delay);
  EXPECT_EQ(rep.conclusion, CheckConclusion::kViolation);
  ASSERT_TRUE(rep.vector.has_value());
  ASSERT_TRUE(rep.violating_output.has_value());
  // The witness must actually realise a settle time >= delta on the
  // reported output under floating-mode simulation.
  const auto sim = simulate_floating(c, *rep.vector);
  EXPECT_GE(sim.settle[rep.violating_output->index()], exact.delay);
}

TEST(SchedScheduler, WitnessOnlyProvesCleanDeltas) {
  // Above the exact delay no violation exists, so cancellation never fires
  // and witness-only mode must still prove N on every output.
  const Circuit c = carry_skip16();
  Verifier serial(c);
  const auto exact = serial.exact_floating_delay();
  ASSERT_TRUE(exact.exact);

  CheckScheduler s(c, VerifyOptions{},
                   ScheduleOptions{.jobs = 4, .witness_only = true});
  const SuiteReport rep = s.check_circuit(exact.delay + 1);
  EXPECT_EQ(rep.conclusion, CheckConclusion::kNoViolation);
  EXPECT_EQ(rep.per_output.size(),
            plan_suite_checks(c, exact.delay + 1).order.size());
}

TEST(SchedScheduler, BorrowedVerifierKeepsOptions) {
  const Circuit c = carry_skip16();
  VerifyOptions opt;
  opt.case_analysis.max_backtracks = 1;  // starve the search
  Verifier v(c, opt);
  CheckScheduler s(v, ScheduleOptions{.jobs = 2});
  const auto serial_exact = Verifier(c, opt).exact_floating_delay();
  const auto got = s.exact_floating_delay();
  EXPECT_EQ(got.exact, serial_exact.exact);
  EXPECT_EQ(got.delay, serial_exact.delay);
}

}  // namespace
}  // namespace waveck
