#include "netlist/transforms.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

/// Functional equivalence by exhaustive simulation of final values.
void expect_equivalent(const Circuit& a, const Circuit& b) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  ASSERT_LE(a.inputs().size(), 16u);
  const std::size_t n = a.inputs().size();
  std::vector<bool> v(n);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    for (std::size_t i = 0; i < n; ++i) v[i] = (bits >> i) & 1;
    const auto ra = simulate_floating(a, v);
    const auto rb = simulate_floating(b, v);
    for (std::size_t o = 0; o < a.outputs().size(); ++o) {
      ASSERT_EQ(ra.value[a.outputs()[o].index()],
                rb.value[b.outputs()[o].index()])
          << "vector " << bits << " output " << o;
    }
  }
}

TEST(Transforms, NorMapC17Equivalent) {
  const Circuit raw = gen::c17();
  const Circuit mapped = map_to_nor(raw);
  for (GateId g : mapped.all_gates()) {
    EXPECT_EQ(mapped.gate(g).type, GateType::kNor);
  }
  expect_equivalent(raw, mapped);
}

TEST(Transforms, NorMapAllGateTypesEquivalent) {
  Circuit c("mix");
  const NetId a = c.add_net("a"), b = c.add_net("b"), s = c.add_net("s");
  c.declare_input(a);
  c.declare_input(b);
  c.declare_input(s);
  auto mk = [&](GateType t, const std::string& name, std::vector<NetId> ins) {
    const NetId o = c.add_net(name);
    c.add_gate(t, o, std::move(ins));
    c.declare_output(o);
    return o;
  };
  mk(GateType::kAnd, "o_and", {a, b});
  mk(GateType::kNand, "o_nand", {a, b});
  mk(GateType::kOr, "o_or", {a, b});
  mk(GateType::kNor, "o_nor", {a, b});
  mk(GateType::kXor, "o_xor", {a, b});
  mk(GateType::kXnor, "o_xnor", {a, b});
  mk(GateType::kNot, "o_not", {a});
  mk(GateType::kBuf, "o_buf", {a});
  mk(GateType::kDelay, "o_del", {b});
  mk(GateType::kMux, "o_mux", {s, a, b});
  c.finalize();
  const Circuit mapped = map_to_nor(c);
  for (GateId g : mapped.all_gates()) {
    EXPECT_EQ(mapped.gate(g).type, GateType::kNor);
  }
  expect_equivalent(c, mapped);
}

TEST(Transforms, NorMapWideGates) {
  Circuit c("wide");
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) {
    ins.push_back(c.add_net("i" + std::to_string(i)));
    c.declare_input(ins.back());
  }
  auto mk = [&](GateType t, const std::string& name) {
    const NetId o = c.add_net(name);
    c.add_gate(t, o, ins);
    c.declare_output(o);
  };
  mk(GateType::kAnd, "o_and");
  mk(GateType::kNand, "o_nand");
  mk(GateType::kXor, "o_xor");
  mk(GateType::kXnor, "o_xnor");
  c.finalize();
  expect_equivalent(c, map_to_nor(c));
}

TEST(Transforms, DecomposeWideXorEquivalent) {
  const Circuit raw = gen::parity_tree(9);
  Circuit wide("wide9");
  std::vector<NetId> ins;
  for (int i = 0; i < 9; ++i) {
    ins.push_back(wide.add_net("i" + std::to_string(i)));
    wide.declare_input(ins.back());
  }
  const NetId o = wide.add_net("o");
  wide.add_gate(GateType::kXor, o, ins);
  wide.declare_output(o);
  wide.finalize();
  const Circuit split = decompose_for_solver(wide);
  for (GateId g : split.all_gates()) {
    EXPECT_LE(split.gate(g).ins.size(), 2u);
  }
  expect_equivalent(wide, split);
  expect_equivalent(raw, split);
}

TEST(Transforms, DecomposeLowersMuxWhenAsked) {
  Circuit c("m");
  const NetId s = c.add_net("s"), a = c.add_net("a"), b = c.add_net("b");
  c.declare_input(s);
  c.declare_input(a);
  c.declare_input(b);
  const NetId o = c.add_net("o");
  c.add_gate(GateType::kMux, o, {s, a, b});
  c.declare_output(o);
  c.finalize();

  const Circuit kept = decompose_for_solver(c, {.lower_mux = false});
  EXPECT_EQ(histogram(kept).of(GateType::kMux), 1u);

  const Circuit lowered = decompose_for_solver(c, {.lower_mux = true});
  EXPECT_EQ(histogram(lowered).of(GateType::kMux), 0u);
  expect_equivalent(c, lowered);
}

TEST(Transforms, DecomposePreservesDelaysOnRoot) {
  Circuit c("d");
  std::vector<NetId> ins;
  for (int i = 0; i < 4; ++i) {
    ins.push_back(c.add_net("i" + std::to_string(i)));
    c.declare_input(ins.back());
  }
  const NetId o = c.add_net("o");
  c.add_gate(GateType::kXor, o, ins, DelaySpec::fixed(7));
  c.declare_output(o);
  c.finalize();
  const Circuit split = decompose_for_solver(c);
  const Gate& root = split.gate(split.net(*split.find_net("o")).driver);
  EXPECT_EQ(root.delay, DelaySpec::fixed(7));
}

TEST(Transforms, Histogram) {
  const Circuit c = gen::c17();
  const GateHistogram h = histogram(c);
  EXPECT_EQ(h.of(GateType::kNand), 6u);
  EXPECT_EQ(h.total(), 6u);
}

}  // namespace
}  // namespace waveck
