// Strict recursive-descent JSON validity checker shared by the observability
// tests (prof_test, cli_json_test). Validates full RFC 8259 syntax — no
// trailing commas, no bare values after the document, proper string escapes
// and number grammar — because the machine-readable outputs (--json,
// speedscope, BENCH_history.jsonl) are consumed by real parsers downstream
// and "looks like JSON" has already let one missing-comma bug ship.
#pragma once

#include <cctype>
#include <string>

namespace waveck::testjson {

class Checker {
 public:
  explicit Checker(const std::string& text) : s_(text) {}

  /// True iff the whole text is exactly one valid JSON value (surrounding
  /// whitespace allowed). On failure `error()` describes the first problem.
  [[nodiscard]] bool valid() {
    pos_ = 0;
    err_.clear();
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing content after document");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return err_; }

 private:
  bool fail(const std::string& what) {
    if (err_.empty()) {
      err_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key");
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
              return fail("bad \\u escape");
            }
            ++pos_;
          }
        } else {
          return fail("bad escape character");
        }
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      pos_ = start;
      return fail("expected value");
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

/// One-shot convenience.
[[nodiscard]] inline bool valid_json(const std::string& text,
                                     std::string* error = nullptr) {
  Checker c(text);
  const bool ok = c.valid();
  if (!ok && error != nullptr) *error = c.error();
  return ok;
}

}  // namespace waveck::testjson
