#include "netlist/delay_annotation.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/diagnostics.hpp"
#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"

namespace waveck {
namespace {

TEST(DelayAnnotation, AppliesPerNetRecords) {
  Circuit c = gen::c17();
  const std::size_t n = read_delays_string("10 2 5\n11 1 4\n", c);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(c.gate(c.net(*c.find_net("10")).driver).delay, DelaySpec(2, 5));
  EXPECT_EQ(c.gate(c.net(*c.find_net("11")).driver).delay, DelaySpec(1, 4));
  // Unannotated gates keep their zero delay.
  EXPECT_EQ(c.gate(c.net(*c.find_net("22")).driver).delay, DelaySpec{});
}

TEST(DelayAnnotation, DefaultRecordCoversTheRest) {
  Circuit c = gen::c17();
  const std::size_t n = read_delays_string("* 3 7\n10 1 1\n", c);
  EXPECT_EQ(n, 6u);
  EXPECT_EQ(c.gate(c.net(*c.find_net("10")).driver).delay, DelaySpec(1, 1));
  EXPECT_EQ(c.gate(c.net(*c.find_net("23")).driver).delay, DelaySpec(3, 7));
}

TEST(DelayAnnotation, CommentsIgnored) {
  Circuit c = gen::c17();
  EXPECT_EQ(read_delays_string("# nothing\n  \n10 2 2 # inline\n", c), 1u);
}

TEST(DelayAnnotation, Rejections) {
  Circuit c = gen::c17();
  EXPECT_THROW(read_delays_string("10 5 2\n", c), ParseError);   // dmin > dmax
  EXPECT_THROW(read_delays_string("10 -1 2\n", c), ParseError);  // negative
  EXPECT_THROW(read_delays_string("nope 1 2\n", c), ParseError); // unknown net
  EXPECT_THROW(read_delays_string("1 1 2\n", c), ParseError);    // primary in
  EXPECT_THROW(read_delays_string("10 1\n", c), ParseError);     // malformed
}

TEST(DelayAnnotation, RoundTrip) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec{2, 9});
  std::ostringstream os;
  write_delays(os, c);
  Circuit c2 = gen::c17();
  read_delays_string(os.str(), c2);
  for (GateId g : c.all_gates()) {
    EXPECT_EQ(c2.gate(g).delay, DelaySpec(2, 9));
  }
}

TEST(DelayAnnotation, CorrelationGroupsParsedAndWritten) {
  Circuit c = gen::c17();
  read_delays_string("10 2 5 3\n11 1 4\n* 0 9 7\n", c);
  EXPECT_EQ(c.gate(c.net(*c.find_net("10")).driver).delay.group, 3);
  EXPECT_EQ(c.gate(c.net(*c.find_net("11")).driver).delay.group, -1);
  EXPECT_EQ(c.gate(c.net(*c.find_net("22")).driver).delay.group, 7);
  EXPECT_THROW(read_delays_string("10 1 2 -4\n", c), ParseError);

  std::ostringstream os;
  write_delays(os, c);
  Circuit c2 = gen::c17();
  read_delays_string(os.str(), c2);
  for (GateId g : c.all_gates()) {
    EXPECT_EQ(c2.gate(g).delay, c.gate(g).delay);
  }
}

TEST(DelayAnnotation, AffectsTopologicalDelay) {
  Circuit c = gen::c17();
  read_delays_string("* 10 10\n", c);
  EXPECT_EQ(topological_delay(c), Time(30));  // 3 NAND levels
  read_delays_string("* 10 20\n", c);
  EXPECT_EQ(topological_delay(c), Time(60));
}

}  // namespace
}  // namespace waveck
