#include "analysis/scoap.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"

namespace waveck {
namespace {

TEST(Scoap, PrimaryInputsAreUnit) {
  const Circuit c = gen::c17();
  const Scoap s = compute_scoap(c);
  for (NetId in : c.inputs()) {
    EXPECT_EQ(s.cc0[in.index()], 1u);
    EXPECT_EQ(s.cc1[in.index()], 1u);
  }
}

TEST(Scoap, AndGateFormulae) {
  Circuit c("and");
  const NetId a = c.add_net("a"), b = c.add_net("b"), x = c.add_net("x");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kAnd, x, {a, b});
  c.declare_output(x);
  c.finalize();
  const Scoap s = compute_scoap(c);
  EXPECT_EQ(s.cc1[x.index()], 3u);  // both inputs to 1: 1+1+1
  EXPECT_EQ(s.cc0[x.index()], 2u);  // one input to 0: min(1,1)+1
  // Observability of a: need b=1 (non-controlling) + 1.
  EXPECT_EQ(s.co[a.index()], 2u);
  EXPECT_EQ(s.co[x.index()], 0u);
}

TEST(Scoap, NorGateFormulae) {
  Circuit c("nor");
  const NetId a = c.add_net("a"), b = c.add_net("b"), x = c.add_net("x");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kNor, x, {a, b});
  c.declare_output(x);
  c.finalize();
  const Scoap s = compute_scoap(c);
  EXPECT_EQ(s.cc0[x.index()], 2u);  // one input to 1
  EXPECT_EQ(s.cc1[x.index()], 3u);  // both to 0
}

TEST(Scoap, XorGateFormulae) {
  Circuit c("xor");
  const NetId a = c.add_net("a"), b = c.add_net("b"), x = c.add_net("x");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kXor, x, {a, b});
  c.declare_output(x);
  c.finalize();
  const Scoap s = compute_scoap(c);
  EXPECT_EQ(s.cc0[x.index()], 3u);  // 00 or 11: 1+1, +1
  EXPECT_EQ(s.cc1[x.index()], 3u);
}

TEST(Scoap, InverterSwaps) {
  Circuit c("inv");
  const NetId a = c.add_net("a"), x = c.add_net("x"), y = c.add_net("y");
  c.declare_input(a);
  c.add_gate(GateType::kAnd, x, {a, a});
  c.add_gate(GateType::kNot, y, {x});
  c.declare_output(y);
  c.finalize();
  const Scoap s = compute_scoap(c);
  EXPECT_EQ(s.cc0[y.index()], s.cc1[x.index()] + 1);
  EXPECT_EQ(s.cc1[y.index()], s.cc0[x.index()] + 1);
}

TEST(Scoap, DeeperNetsAreHarder) {
  // AND chain: x_{k+1} = AND(x_k, in_k); cc1 accumulates along the chain.
  Circuit c("chain");
  NetId cur = c.add_net("x0");
  c.declare_input(cur);
  for (int k = 0; k < 6; ++k) {
    const NetId in = c.add_net("i" + std::to_string(k));
    c.declare_input(in);
    const NetId nxt = c.add_net("x" + std::to_string(k + 1));
    c.add_gate(GateType::kAnd, nxt, {cur, in});
    cur = nxt;
  }
  c.declare_output(cur);
  c.finalize();
  const Scoap s = compute_scoap(c);
  std::uint32_t prev = 0;
  for (int k = 1; k <= 6; ++k) {
    const std::uint32_t cc = s.cc1[c.find_net("x" + std::to_string(k))->index()];
    EXPECT_GT(cc, prev) << k;
    prev = cc;
  }
}

TEST(Scoap, ObservabilityDecreasesTowardOutputs) {
  const Circuit c = gen::c17();
  const Scoap s = compute_scoap(c);
  for (NetId o : c.outputs()) EXPECT_EQ(s.co[o.index()], 0u);
  for (NetId in : c.inputs()) EXPECT_GT(s.co[in.index()], 0u);
}

TEST(Scoap, MuxControllability) {
  Circuit c("mux");
  const NetId s = c.add_net("s"), a = c.add_net("a"), b = c.add_net("b");
  const NetId x = c.add_net("x");
  c.declare_input(s);
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kMux, x, {s, a, b});
  c.declare_output(x);
  c.finalize();
  const Scoap sc = compute_scoap(c);
  EXPECT_EQ(sc.cc0[x.index()], 3u);  // sel + one data leg, +1
  EXPECT_EQ(sc.cc1[x.index()], 3u);
}

}  // namespace
}  // namespace waveck
