// Replays every shrunk fuzzing repro in tests/corpus/ through the full
// differential battery. Each corpus entry is a minimal circuit that once
// discriminated a real bug (see its .repro sidecar for the original
// failure); replaying them keeps those bugs fixed forever. New entries are
// added automatically by `waveck_fuzz --corpus-dir tests/corpus` on any
// failure, or by hand for interesting netlists — this test picks up
// whatever *.bench files are present, applying the matching *.delays.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/differential.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"

namespace waveck {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_entries() {
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(WAVECK_CORPUS_DIR)) {
    if (e.path().extension() == ".bench") entries.push_back(e.path());
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

Circuit load_entry(const fs::path& bench) {
  Circuit c = read_bench_file(bench.string());
  c.set_name(bench.stem().string());
  const fs::path delays = fs::path(bench).replace_extension(".delays");
  if (fs::exists(delays)) read_delays_file(delays.string(), c);
  return c;
}

TEST(CorpusReplay, CorpusIsSeeded) {
  ASSERT_TRUE(fs::is_directory(WAVECK_CORPUS_DIR))
      << "missing corpus directory " << WAVECK_CORPUS_DIR;
  EXPECT_FALSE(corpus_entries().empty())
      << "tests/corpus/ has no .bench entries";
}

TEST(CorpusReplay, EveryEntryPassesTheFullBattery) {
  for (const fs::path& bench : corpus_entries()) {
    SCOPED_TRACE(bench.filename().string());
    Circuit c;
    ASSERT_NO_THROW(c = load_entry(bench)) << bench;
    const auto result = fuzz::run_battery(c);
    for (const auto& pr : result.results) {
      EXPECT_TRUE(pr.ok) << bench.filename().string() << ": "
                         << to_string(pr.property) << ": " << pr.details;
    }
  }
}

TEST(CorpusReplay, EntriesAreMinimal) {
  // Corpus repros come out of the shrinker; anything large suggests a repro
  // was committed unshrunk and will slow this test forever after.
  for (const fs::path& bench : corpus_entries()) {
    const Circuit c = load_entry(bench);
    EXPECT_LE(c.num_gates(), 64u) << bench.filename().string();
    EXPECT_LE(c.inputs().size(), 14u) << bench.filename().string();
  }
}

TEST(CorpusReplay, ReproSidecarsNameKnownProperties) {
  for (const fs::path& bench : corpus_entries()) {
    const fs::path repro = fs::path(bench).replace_extension(".repro");
    if (!fs::exists(repro)) continue;  // hand-added entries need no sidecar
    std::ifstream in(repro);
    std::string line;
    bool found = false;
    while (std::getline(in, line)) {
      constexpr std::string_view kKey = "property: ";
      if (line.rfind(kKey, 0) == 0) {
        fuzz::Property p{};
        EXPECT_TRUE(
            fuzz::property_from_string(line.substr(kKey.size()), &p))
            << repro.filename().string() << ": " << line;
        found = true;
      }
    }
    EXPECT_TRUE(found) << repro.filename().string()
                       << " has no 'property:' line";
  }
}

}  // namespace
}  // namespace waveck
