#include "sim/transition_sim.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

TEST(TransitionSim, NonTogglingInputsAreConstant) {
  Circuit c("buf");
  const NetId a = c.add_net("a"), x = c.add_net("x");
  c.declare_input(a);
  c.add_gate(GateType::kBuf, x, {a}, DelaySpec::fixed(5));
  c.declare_output(x);
  c.finalize();
  const auto steady = simulate_transition(c, {true}, {true});
  EXPECT_EQ(steady.settle[x.index()], Time::neg_inf());
  const auto toggle = simulate_transition(c, {false}, {true});
  EXPECT_EQ(toggle.settle[x.index()], Time(5));
  EXPECT_TRUE(toggle.value[x.index()]);
}

TEST(TransitionSim, ControllingInputStopsPropagation) {
  Circuit c("and");
  const NetId a = c.add_net("a"), b = c.add_net("b");
  const NetId ad = c.add_net("ad"), x = c.add_net("x");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kDelay, ad, {a}, DelaySpec::fixed(7));
  c.add_gate(GateType::kAnd, x, {ad, b}, DelaySpec::fixed(1));
  c.declare_output(x);
  c.finalize();
  // b constant 0 controls: the a-toggle never reaches x.
  const auto r = simulate_transition(c, {false, false}, {true, false});
  EXPECT_EQ(r.settle[x.index()], Time::neg_inf());
  // b constant 1: the toggle passes through.
  const auto r2 = simulate_transition(c, {false, true}, {true, true});
  EXPECT_EQ(r2.settle[x.index()], Time(8));
}

TEST(TransitionSim, BoundedByFloatingMode) {
  // For any pair, the transition settle time never exceeds the floating
  // settle time of the destination vector.
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  const std::size_t n = c.inputs().size();
  std::vector<bool> v1(n), v2(n);
  for (unsigned b1 = 0; b1 < 32; b1 += 3) {
    for (unsigned b2 = 0; b2 < 32; ++b2) {
      for (std::size_t i = 0; i < n; ++i) {
        v1[i] = (b1 >> i) & 1;
        v2[i] = (b2 >> i) & 1;
      }
      const auto tr = simulate_transition(c, v1, v2);
      const auto fl = simulate_floating(c, v2);
      for (NetId o : c.outputs()) {
        EXPECT_LE(tr.settle[o.index()], fl.settle[o.index()]);
      }
    }
  }
}

TEST(TransitionSim, ExhaustiveDelayAtMostFloating) {
  Circuit c = gen::hrapcenko(10);
  const Time tr = exhaustive_transition_delay(c);
  EXPECT_LE(tr, exhaustive_floating_delay(c));
  EXPECT_GT(tr, Time(0));
}

TEST(TransitionSim, InputSignalEncoding) {
  const AbstractSignal steady = transition_input_signal(true, true);
  EXPECT_TRUE(steady.cls(false).is_empty());
  EXPECT_EQ(steady.cls(true),
            LtInterval(Time::neg_inf(), Time::neg_inf()));
  const AbstractSignal rise = transition_input_signal(false, true);
  EXPECT_EQ(rise.cls(true), LtInterval(Time(0), Time(0)));
  EXPECT_TRUE(rise.cls(false).is_empty());
}

TEST(TransitionSim, VerifierCheckTransitionAgreesWithSimulator) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const std::size_t n = c.inputs().size();
  std::vector<bool> v1(n), v2(n);
  for (unsigned b1 = 0; b1 < 32; b1 += 5) {
    for (unsigned b2 = 0; b2 < 32; b2 += 3) {
      for (std::size_t i = 0; i < n; ++i) {
        v1[i] = (b1 >> i) & 1;
        v2[i] = (b2 >> i) & 1;
      }
      const auto sim = simulate_transition(c, v1, v2);
      for (NetId o : c.outputs()) {
        const Time settle = sim.settle[o.index()];
        const Time probe = settle == Time::neg_inf() ? Time(0) : settle;
        const auto at = v.check_transition(o, probe, v1, v2);
        const auto above = v.check_transition(o, probe + 1, v1, v2);
        if (settle != Time::neg_inf()) {
          EXPECT_EQ(at.conclusion, CheckConclusion::kViolation)
              << b1 << "->" << b2;
        }
        EXPECT_EQ(above.conclusion, CheckConclusion::kNoViolation)
            << b1 << "->" << b2;
      }
    }
  }
}

TEST(TransitionSim, CriticalTruePathFollowsWitness) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  Verifier v(c);
  const auto rep = v.check_output(s, Time(60));
  ASSERT_EQ(rep.conclusion, CheckConclusion::kViolation);
  const auto sim = simulate_floating(c, *rep.vector);
  const auto path = critical_true_path(c, sim, s);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.back(), s);
  EXPECT_TRUE(c.net(path.front()).is_primary_input);
  // Path must be connected and its length consistent with the settle time:
  // each hop goes through the driving gate.
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GateId drv = c.net(path[i]).driver;
    ASSERT_TRUE(drv.valid());
    bool feeds = false;
    for (NetId in : c.gate(drv).ins) feeds |= (in == path[i - 1]);
    EXPECT_TRUE(feeds) << i;
  }
  // The witness settles at 60 = 6 gates after the path start: the true
  // path has 7 nets (not the 8-net topological one).
  EXPECT_EQ(path.size(), 7u);
}

TEST(TransitionSim, CriticalPathSettleMonotone) {
  // Settle times never decrease along the reported true path.
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout = *c.find_net("cout");
  const std::vector<bool> vec(c.inputs().size(), true);
  const auto sim = simulate_floating(c, vec);
  const auto path = critical_true_path(c, sim, cout);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(sim.settle[path[i - 1].index()], sim.settle[path[i].index()]);
  }
}

}  // namespace
}  // namespace waveck
