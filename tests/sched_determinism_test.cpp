// Determinism contract (doc/PARALLELISM.md): the parallel CheckScheduler in
// its default mode must reproduce the serial Verifier::check_circuit
// byte-for-byte — same conclusion, stage statuses, witness vector,
// violating output, backtrack totals and per_output list — at every worker
// count. Wall-clock fields are the only permitted difference, so the tests
// compare full SuiteReport JSON with the timing fields zeroed.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/circuit.hpp"
#include "sched/check_scheduler.hpp"
#include "verify/report_io.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

using sched::CheckScheduler;
using sched::ScheduleOptions;

constexpr std::size_t kJobCounts[] = {1, 2, 8};

// canonical_json (verify/report_io.hpp) zeroes every wall-clock field and
// drops the global metrics snapshot, leaving only deterministic content.

void expect_parallel_matches_serial(const Circuit& c, VerifyOptions opt,
                                    Time delta, const char* label) {
  Verifier serial(c, opt);
  const std::string want = canonical_json(c, serial.check_circuit(delta));
  for (const std::size_t jobs : kJobCounts) {
    CheckScheduler s(c, opt, ScheduleOptions{.jobs = jobs});
    const std::string got = canonical_json(c, s.check_circuit(delta));
    EXPECT_EQ(got, want) << label << " delta=" << delta << " jobs=" << jobs;
  }
}

TEST(SchedDeterminism, CarrySkipAdderAllDeltas) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier probe(c);
  const auto exact = probe.exact_floating_delay();
  ASSERT_TRUE(exact.exact);
  // Witness row (V), proof row (N), and a mid-range delta for good measure.
  expect_parallel_matches_serial(c, {}, exact.delay, "csa16");
  expect_parallel_matches_serial(c, {}, exact.delay + 1, "csa16");
  expect_parallel_matches_serial(c, {}, Time(exact.delay.value() / 2),
                                 "csa16");
}

TEST(SchedDeterminism, IscasCircuitBothRows) {
  // One real ISCAS'85-class circuit from the Table-1 quick suite, with the
  // suite's own per-circuit verify options (backtrack budget, stems).
  const auto suite = gen::table1_suite(/*small_only=*/true);
  ASSERT_FALSE(suite.empty());
  const auto& entry = suite.back();  // the largest of the quick suite
  VerifyOptions opt;
  opt.case_analysis.max_backtracks = entry.max_backtracks;
  opt.max_stems = 512;

  Verifier probe(entry.circuit, opt);
  const auto exact = probe.exact_floating_delay();
  expect_parallel_matches_serial(entry.circuit, opt, exact.delay,
                                 entry.name.c_str());
  expect_parallel_matches_serial(entry.circuit, opt, exact.delay + 1,
                                 entry.name.c_str());
}

TEST(SchedDeterminism, ExactDelaySearchIdenticalAtEveryJobCount) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier serial(c);
  const auto want = serial.exact_floating_delay();
  for (const std::size_t jobs : kJobCounts) {
    CheckScheduler s(c, VerifyOptions{}, ScheduleOptions{.jobs = jobs});
    const auto got = s.exact_floating_delay();
    EXPECT_EQ(got.delay, want.delay) << "jobs=" << jobs;
    EXPECT_EQ(got.exact, want.exact) << "jobs=" << jobs;
    EXPECT_EQ(got.probes, want.probes) << "jobs=" << jobs;
    EXPECT_EQ(got.total_backtracks, want.total_backtracks) << "jobs=" << jobs;
    EXPECT_EQ(got.witness, want.witness) << "jobs=" << jobs;
  }
}

TEST(SchedDeterminism, RepeatedParallelRunsAreStable) {
  // The same scheduler re-used for the same delta must keep producing the
  // identical report (no cross-batch state leaks through the pool).
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  CheckScheduler s(c, VerifyOptions{}, ScheduleOptions{.jobs = 8});
  const std::string first = canonical_json(c, s.check_circuit(Time(200)));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(canonical_json(c, s.check_circuit(Time(200))), first);
  }
}

}  // namespace
}  // namespace waveck
