#include "verify/stem_correlation.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

/// Two parallel chains from stem `a`, each gated twice with contradictory
/// requirements on a's final value (path A needs a=1 at gA and a=0 at hA;
/// path B the mirror image). The OR merge keeps backward narrowing
/// ambiguous -- either branch could carry the late transition -- so local
/// propagation and dominators stay at P, but splitting on `a` refutes both
/// classes: the paper's stem-correlation scenario (c2670/c6288).
///
/// All gates delay 10. Longest paths: a -> 3 DELAYs (30) -> gX (40) ->
/// mX (50) -> hX (60) -> s (70). Floating delay is 50.
Circuit gated_contradiction() {
  Circuit c("stemx");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  const DelaySpec d = DelaySpec::fixed(10);
  auto chain3 = [&](const std::string& p, NetId from) {
    NetId cur = from;
    for (int i = 0; i < 3; ++i) {
      const NetId nxt = c.add_net(p + std::to_string(i));
      c.add_gate(GateType::kDelay, nxt, {cur}, d);
      cur = nxt;
    }
    return cur;
  };
  const NetId na = c.add_net("na");
  c.add_gate(GateType::kNot, na, {a}, d);
  const NetId la = chain3("la", a);
  const NetId lb = chain3("lb", a);
  const NetId ga = c.add_net("ga"), ma = c.add_net("ma"),
              ha = c.add_net("ha");
  c.add_gate(GateType::kAnd, ga, {la, a}, d);   // needs a = 1
  c.add_gate(GateType::kDelay, ma, {ga}, d);
  c.add_gate(GateType::kAnd, ha, {ma, na}, d);  // needs a = 0
  const NetId gb = c.add_net("gb"), mb = c.add_net("mb"),
              hb = c.add_net("hb");
  c.add_gate(GateType::kAnd, gb, {lb, na}, d);  // needs a = 0
  c.add_gate(GateType::kDelay, mb, {gb}, d);
  c.add_gate(GateType::kAnd, hb, {mb, a}, d);   // needs a = 1
  const NetId s = c.add_net("s");
  c.add_gate(GateType::kOr, s, {ha, hb}, d);
  c.declare_output(s);
  c.finalize();
  return c;
}

ConstraintSystem make_system(const Circuit& c, NetId s, Time delta) {
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(delta));
  cs.schedule_all();
  cs.reach_fixpoint();
  return cs;
}

TEST(StemCorrelation, GatedContradictionFloatingDelayIs50) {
  const Circuit c = gated_contradiction();
  EXPECT_EQ(topological_delay(c), Time(70));
  EXPECT_EQ(exhaustive_floating_delay(c), Time(50));
}

TEST(StemCorrelation, SplitRefutesWhatLocalNarrowingCannot) {
  const Circuit c = gated_contradiction();
  const NetId s = *c.find_net("s");
  const NetId a = *c.find_net("a");
  const TimingCheck check{s, Time(61)};
  ConstraintSystem cs = make_system(c, s, Time(61));
  ASSERT_FALSE(cs.inconsistent());  // local narrowing cannot see it

  const NetId stems[] = {a};
  const auto stats = apply_stem_correlation(cs, check, stems);
  EXPECT_TRUE(stats.proved_no_violation);
}

TEST(StemCorrelation, BelowFloatingDelayStaysPossible) {
  const Circuit c = gated_contradiction();
  const NetId s = *c.find_net("s");
  const NetId a = *c.find_net("a");
  const TimingCheck check{s, Time(50)};  // achievable
  ConstraintSystem cs = make_system(c, s, Time(50));
  ASSERT_FALSE(cs.inconsistent());
  const NetId stems[] = {a};
  const auto stats = apply_stem_correlation(cs, check, stems);
  EXPECT_FALSE(stats.proved_no_violation);
  EXPECT_FALSE(cs.inconsistent());
}

TEST(StemCorrelation, OneSidedConflictBecomesNecessaryAssignment) {
  // s = AND(x, y) with x = BUF(a), y = BUF(a) (reconvergent, consistent);
  // require s to be finally 1 via a class restriction: the stem split must
  // not break anything, and the a=0 branch conflicts.
  Circuit c("agree");
  const NetId a = c.add_net("a");
  const NetId x = c.add_net("x"), y = c.add_net("y"), s = c.add_net("s");
  c.declare_input(a);
  c.add_gate(GateType::kBuf, x, {a}, DelaySpec::fixed(1));
  c.add_gate(GateType::kBuf, y, {a}, DelaySpec::fixed(1));
  c.add_gate(GateType::kAnd, s, {x, y}, DelaySpec::fixed(1));
  c.declare_output(s);
  c.finalize();

  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::class_only(true)
                            .intersect(AbstractSignal::violating(Time(0))));
  cs.schedule_all();
  cs.reach_fixpoint();
  ASSERT_FALSE(cs.inconsistent());

  const TimingCheck check{s, Time(0)};
  const NetId stems[] = {a};
  apply_stem_correlation(cs, check, stems);
  EXPECT_FALSE(cs.inconsistent());
  // The stem itself must have been fixed to class 1.
  EXPECT_TRUE(cs.domain(a).single_class());
  EXPECT_TRUE(cs.domain(a).the_class());
}

TEST(StemCorrelation, UnionKeepsBothFeasibleBranches) {
  // Reconvergence where both stem classes admit solutions: correlation must
  // not produce inconsistency (soundness smoke test).
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout = *c.find_net("cout");
  const Time fl = exhaustive_floating_delay(c, cout, 17);
  ASSERT_TRUE(find_violating_vector(c, cout, fl, 17).has_value());
  const TimingCheck check{cout, fl};  // achievable: a vector exists
  ConstraintSystem cs = make_system(c, cout, fl);
  ASSERT_FALSE(cs.inconsistent());
  std::vector<NetId> stems;
  for (NetId n : c.fanout_stems()) {
    if (c.is_reconvergent_stem(n)) stems.push_back(n);
  }
  const auto stats = apply_stem_correlation(cs, check, stems);
  EXPECT_FALSE(stats.proved_no_violation);
  EXPECT_FALSE(cs.inconsistent());
}

TEST(StemCorrelation, SkipsDecidedStems) {
  const Circuit c = gated_contradiction();
  const NetId s = *c.find_net("s");
  const NetId a = *c.find_net("a");
  const TimingCheck check{s, Time(50)};
  ConstraintSystem cs = make_system(c, s, Time(50));
  cs.restrict_domain(a, AbstractSignal::class_only(true));
  cs.reach_fixpoint();
  const bool was_inconsistent = cs.inconsistent();
  const NetId stems[] = {a};
  const auto stats = apply_stem_correlation(cs, check, stems);
  if (!was_inconsistent) {
    EXPECT_EQ(stats.stems_processed, 0u);  // single-class stems are skipped
  }
}

TEST(StemCorrelation, NonCarrierStemsSkipped) {
  // Pick a delta so high that nothing is a carrier: no stem is processed.
  const Circuit c = gated_contradiction();
  const NetId s = *c.find_net("s");
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  const TimingCheck check{s, Time(10000)};
  const NetId stems[] = {*c.find_net("a")};
  const auto stats = apply_stem_correlation(cs, check, stems);
  EXPECT_EQ(stats.stems_processed, 0u);
}

}  // namespace
}  // namespace waveck
