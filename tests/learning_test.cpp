#include "analysis/learning.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "netlist/transforms.hpp"

namespace waveck {
namespace {

bool implies(const ImplicationTable& t, NetId y, bool v, NetId x, bool w) {
  for (const auto& cons : t.of(y, v)) {
    if (cons.net == x && cons.cls == w) return true;
  }
  return false;
}

TEST(Learning, ChainImplications) {
  // y = NOT(AND(a, b)): y=0 => a=1 and b=1.
  Circuit c("chain");
  const NetId a = c.add_net("a"), b = c.add_net("b");
  const NetId x = c.add_net("x"), y = c.add_net("y");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kAnd, x, {a, b});
  c.add_gate(GateType::kNot, y, {x});
  c.declare_output(y);
  c.finalize();

  const LearningResult res = learn_implications(c);
  EXPECT_TRUE(implies(res.table, y, false, a, true));
  EXPECT_TRUE(implies(res.table, y, false, b, true));
  EXPECT_TRUE(implies(res.table, y, false, x, true));
  // Forward: a=0 => x=0 => y=1.
  EXPECT_TRUE(implies(res.table, a, false, y, true));
  EXPECT_TRUE(res.impossible.empty());
}

TEST(Learning, ContrapositivesRecorded) {
  Circuit c("c");
  const NetId a = c.add_net("a"), x = c.add_net("x");
  c.declare_input(a);
  c.add_gate(GateType::kNot, x, {a});
  c.declare_output(x);
  c.finalize();
  const LearningResult res = learn_implications(c);
  // a=0 => x=1, contrapositive x=0 => a=1 (also found directly here).
  EXPECT_TRUE(implies(res.table, a, false, x, true));
  EXPECT_TRUE(implies(res.table, x, false, a, true));
  EXPECT_GT(res.direct, 0u);
}

TEST(Learning, ConstantNetClassImpossible) {
  // x = AND(a, NOT a) is constant 0: class 1 is impossible.
  Circuit c("const0");
  const NetId a = c.add_net("a"), na = c.add_net("na"), x = c.add_net("x");
  c.declare_input(a);
  c.add_gate(GateType::kNot, na, {a});
  c.add_gate(GateType::kAnd, x, {a, na});
  c.declare_output(x);
  c.finalize();
  const LearningResult res = learn_implications(c);
  bool found = false;
  for (const auto& [net, cls] : res.impossible) {
    found |= (net == x && cls == true);
  }
  EXPECT_TRUE(found);
}

TEST(Learning, NonLocalImplicationThroughReconvergence) {
  // The SOCRATES classic: z = AND(a, b) OR AND(a, c) ... z=1 => a=1 is
  // non-local (needs the OR's case split); the contrapositive a=0 => z=0 IS
  // local, so learning must expose z=1 => a=1 via contrapositive storage.
  Circuit c("socrates");
  const NetId a = c.add_net("a"), b = c.add_net("b"), d = c.add_net("d");
  const NetId x = c.add_net("x"), y = c.add_net("y"), z = c.add_net("z");
  c.declare_input(a);
  c.declare_input(b);
  c.declare_input(d);
  c.add_gate(GateType::kAnd, x, {a, b});
  c.add_gate(GateType::kAnd, y, {a, d});
  c.add_gate(GateType::kOr, z, {x, y});
  c.declare_output(z);
  c.finalize();
  const LearningResult res = learn_implications(c);
  EXPECT_TRUE(implies(res.table, z, true, a, true));
}

TEST(Learning, SizeGuardSkipsHugeCircuits) {
  const Circuit c = gen::c17();
  LearningOptions opt;
  opt.max_nets = 1;  // force skip
  const LearningResult res = learn_implications(c, opt);
  EXPECT_EQ(res.table.size(), 0u);
}

TEST(Learning, NorMappedC17HasImplications) {
  const Circuit c = map_to_nor(gen::c17());
  const LearningResult res = learn_implications(c);
  EXPECT_GT(res.table.size(), 0u);
}

}  // namespace
}  // namespace waveck
