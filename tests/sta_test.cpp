#include "sta/sta.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"

namespace waveck {
namespace {

TEST(Sta, HrapcenkoReport) {
  const Circuit c = gen::hrapcenko(10);
  const StaReport r = run_sta(c);
  EXPECT_EQ(r.topological_delay, Time(70));
  ASSERT_EQ(r.output_arrivals.size(), 1u);
  EXPECT_EQ(r.output_arrivals[0].second, Time(70));
  ASSERT_FALSE(r.critical_path.empty());
  EXPECT_TRUE(c.net(r.critical_path.front()).is_primary_input);
  EXPECT_EQ(r.critical_path.back(), *c.find_net("s"));
}

TEST(Sta, OutputsSortedWorstFirst) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const StaReport r = run_sta(c);
  for (std::size_t i = 1; i < r.output_arrivals.size(); ++i) {
    EXPECT_GE(r.output_arrivals[i - 1].second, r.output_arrivals[i].second);
  }
  EXPECT_EQ(r.topological_delay, r.output_arrivals.front().second);
}

TEST(Sta, CriticalPathIsContiguous) {
  Circuit c = gen::ripple_carry_adder(6);
  c.set_uniform_delay(DelaySpec::fixed(5));
  const StaReport r = run_sta(c);
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    const GateId drv = c.net(r.critical_path[i]).driver;
    ASSERT_TRUE(drv.valid());
    bool feeds = false;
    for (NetId in : c.gate(drv).ins) feeds |= (in == r.critical_path[i - 1]);
    EXPECT_TRUE(feeds) << i;
  }
}

}  // namespace
}  // namespace waveck
