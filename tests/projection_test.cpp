#include "constraints/projection.hpp"

#include <gtest/gtest.h>

#include <array>

namespace waveck {
namespace {

constexpr Time kNI = Time::neg_inf();
constexpr Time kPI = Time::pos_inf();

AbstractSignal sig(LtInterval w0, LtInterval w1) { return {w0, w1}; }

TEST(Projection, PaperExample1AndGate) {
  // Example 1: 2-input AND, delay 0.
  //   D_i = (0|-inf..33, 1|50..100), D_j = (0|25..75, phi),
  //   D_s = (0|35..125, phi)
  // expected:
  //   D_i' = (phi, 1|50..100), D_j' = (0|35..75, phi), D_s' = (0|35..75, phi)
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(33)}, {Time(50), Time(100)}),
      sig({Time(25), Time(75)}, LtInterval::empty())};
  AbstractSignal out = sig({Time(35), Time(125)}, LtInterval::empty());

  const auto delta =
      project_gate(GateType::kAnd, DelaySpec::fixed(0), out, ins);
  EXPECT_TRUE(delta.any());

  EXPECT_TRUE(ins[0].cls(false).is_empty());
  EXPECT_EQ(ins[0].cls(true), LtInterval(Time(50), Time(100)));
  EXPECT_EQ(ins[1].cls(false), LtInterval(Time(35), Time(75)));
  EXPECT_TRUE(ins[1].cls(true).is_empty());
  EXPECT_EQ(out.cls(false), LtInterval(Time(35), Time(75)));
  EXPECT_TRUE(out.cls(true).is_empty());
}

TEST(Projection, PaperExample2GateG8) {
  // Example 2 at gate g8 (OR, delay 10):
  //   n5 = (0|-inf..50, 1|-inf..50), n7 = (0|-inf..60, 1|-inf..60),
  //   s  = (0|61..+inf, 1|61..+inf)
  // The controlling class (1) of n5 "blocks the way": it is removed; n7 is
  // narrowed to (0|51..60, 1|51..60); s becomes (0|61..70, 1|61..70).
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(50)}, {kNI, Time(50)}),    // n5
      sig({kNI, Time(60)}, {kNI, Time(60)})};   // n7
  AbstractSignal out = AbstractSignal::violating(Time(61));

  // One application narrows s forward and the inputs backward; iterate to
  // the per-gate fixpoint as the engine would.
  for (int i = 0; i < 3; ++i) {
    project_gate(GateType::kOr, DelaySpec::fixed(10), out, ins);
  }

  EXPECT_EQ(out.cls(false), LtInterval(Time(61), Time(70)));
  EXPECT_EQ(out.cls(true), LtInterval(Time(61), Time(70)));
  EXPECT_TRUE(ins[0].cls(true).is_empty());  // controlling class removed
  EXPECT_EQ(ins[0].cls(false), LtInterval(kNI, Time(50)));
  EXPECT_EQ(ins[1].cls(false), LtInterval(Time(51), Time(60)));
  EXPECT_EQ(ins[1].cls(true), LtInterval(Time(51), Time(60)));
}

TEST(Projection, AndForwardAllNonControllingIsExactMax) {
  std::array<AbstractSignal, 2> ins{
      sig(LtInterval::empty(), {Time(3), Time(8)}),
      sig(LtInterval::empty(), {Time(5), Time(12)})};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kAnd, DelaySpec::fixed(2), out, ins);
  // lambda_out = 2 + max(a, b): range [2+max(3,5), 2+max(8,12)].
  EXPECT_EQ(out.cls(true), LtInterval(Time(7), Time(14)));
  EXPECT_TRUE(out.cls(false).is_empty());  // no controlling input possible
}

TEST(Projection, AndForwardControlledUpperFromFreeControlling) {
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(4)}, {kNI, Time(9)}),
      sig({kNI, Time(6)}, {kNI, Time(9)})};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kAnd, DelaySpec::fixed(1), out, ins);
  // Some controlling input settles at <= max(4, 6): out 0 stable after 7.
  EXPECT_EQ(out.cls(false), LtInterval(kNI, Time(7)));
  EXPECT_EQ(out.cls(true), LtInterval(kNI, Time(10)));
}

TEST(Projection, AndForwardForcedControllingTightensCap) {
  // Input j can only be controlling (class-1 empty): the controlled output
  // settles once j does, regardless of i's controlling class.
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(30)}, {kNI, Time(30)}),
      sig({kNI, Time(4)}, LtInterval::empty())};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kAnd, DelaySpec::fixed(1), out, ins);
  EXPECT_EQ(out.cls(false), LtInterval(kNI, Time(5)));
  EXPECT_TRUE(out.cls(true).is_empty());
}

TEST(Projection, BackwardNonControllingSiblingCoverage) {
  // Output class 1 of AND requires a transition in [20, 30] (delay 0).
  // Sibling j's class-1 covers the window, so input i's class-1 keeps its
  // early waveforms but is still capped above.
  std::array<AbstractSignal, 2> ins{
      sig(LtInterval::empty(), {kNI, Time(25)}),
      sig(LtInterval::empty(), {Time(18), Time(40)})};
  AbstractSignal out = sig(LtInterval::empty(), {Time(20), Time(30)});
  project_gate(GateType::kAnd, DelaySpec::fixed(0), out, ins);
  EXPECT_EQ(ins[0].cls(true), LtInterval(kNI, Time(25)));  // lmin relaxed
  EXPECT_EQ(ins[1].cls(true), LtInterval(Time(18), Time(30)));
}

TEST(Projection, BackwardNonControllingNoSiblingCoverage) {
  // Sibling j settles by 5 < 20: i must provide the late transition.
  std::array<AbstractSignal, 2> ins{
      sig(LtInterval::empty(), {kNI, Time(40)}),
      sig(LtInterval::empty(), {kNI, Time(5)})};
  AbstractSignal out = sig(LtInterval::empty(), {Time(20), Time(30)});
  project_gate(GateType::kAnd, DelaySpec::fixed(0), out, ins);
  EXPECT_EQ(ins[0].cls(true), LtInterval(Time(20), Time(30)));
}

TEST(Projection, BackwardControllingClassRemovedWhenBlocking) {
  // AND with output class 0 requiring lmin 20 (delay 0): a controlling
  // (class-0) input stable by 10 blocks the way -> class emptied.
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(10)}, {kNI, Time(40)}),
      sig({kNI, Time(40)}, {kNI, Time(40)})};
  AbstractSignal out = sig({Time(20), Time(30)}, LtInterval::empty());
  project_gate(GateType::kAnd, DelaySpec::fixed(0), out, ins);
  EXPECT_TRUE(ins[0].cls(false).is_empty());
  EXPECT_EQ(ins[0].cls(true), LtInterval(kNI, Time(40)));
  // The other input's controlling class survives with a raised lmin.
  EXPECT_EQ(ins[1].cls(false), LtInterval(Time(20), Time(40)));
}

TEST(Projection, DeadInputPropagatesEmptiness) {
  std::array<AbstractSignal, 2> ins{
      AbstractSignal::bottom(),
      AbstractSignal::top()};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kAnd, DelaySpec::fixed(0), out, ins);
  EXPECT_TRUE(out.is_bottom());
}

TEST(Projection, NorClassMapping) {
  // NOR: controlling 1 -> output 0; all-0 inputs -> output 1.
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(3)}, LtInterval::empty()),
      sig({kNI, Time(5)}, LtInterval::empty())};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kNor, DelaySpec::fixed(1), out, ins);
  EXPECT_EQ(out.cls(true), LtInterval(kNI, Time(6)));
  EXPECT_TRUE(out.cls(false).is_empty());
}

TEST(Projection, NotShiftsAndSwapsClasses) {
  std::array<AbstractSignal, 1> ins{
      sig({Time(1), Time(5)}, {Time(2), Time(9)})};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kNot, DelaySpec::fixed(3), out, ins);
  EXPECT_EQ(out.cls(true), LtInterval(Time(4), Time(8)));   // from in class 0
  EXPECT_EQ(out.cls(false), LtInterval(Time(5), Time(12)));  // from in class 1
}

TEST(Projection, BufBackwardExact) {
  std::array<AbstractSignal, 1> ins{AbstractSignal::top()};
  AbstractSignal out = sig({Time(10), Time(20)}, LtInterval::empty());
  project_gate(GateType::kBuf, DelaySpec::fixed(4), out, ins);
  EXPECT_EQ(ins[0].cls(false), LtInterval(Time(6), Time(16)));
  EXPECT_TRUE(ins[0].cls(true).is_empty());
}

TEST(Projection, DelayIntervalWidensBothWays) {
  std::array<AbstractSignal, 1> ins{
      sig({Time(10), Time(20)}, LtInterval::empty())};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kDelay, DelaySpec{2, 5}, out, ins);
  EXPECT_EQ(out.cls(false), LtInterval(Time(12), Time(25)));
}

TEST(Projection, XorForwardCancellationRelaxesLmin) {
  // Overlapping operand intervals: simultaneous transitions may cancel.
  std::array<AbstractSignal, 2> ins{
      sig({Time(5), Time(10)}, LtInterval::empty()),
      sig({Time(8), Time(12)}, LtInterval::empty())};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kXor, DelaySpec::fixed(0), out, ins);
  EXPECT_EQ(out.cls(false), LtInterval(kNI, Time(12)));
  EXPECT_TRUE(out.cls(true).is_empty());
}

TEST(Projection, XorForwardDisjointIsExact) {
  std::array<AbstractSignal, 2> ins{
      sig({Time(1), Time(3)}, LtInterval::empty()),
      sig({Time(7), Time(9)}, LtInterval::empty())};
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kXor, DelaySpec::fixed(0), out, ins);
  // lambda_a != lambda_b always: out transitions exactly at max in [7, 9].
  EXPECT_EQ(out.cls(false), LtInterval(Time(7), Time(9)));
}

TEST(Projection, XorClassCombination) {
  // a finally 0, b finally 1 -> XOR finally 1; XNOR finally 0.
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(2)}, LtInterval::empty()),
      sig(LtInterval::empty(), {kNI, Time(3)})};
  AbstractSignal out_xor = AbstractSignal::top();
  project_gate(GateType::kXor, DelaySpec::fixed(1), out_xor, ins);
  EXPECT_TRUE(out_xor.cls(false).is_empty());
  EXPECT_EQ(out_xor.cls(true), LtInterval(kNI, Time(4)));

  std::array<AbstractSignal, 2> ins2 = ins;
  AbstractSignal out_xnor = AbstractSignal::top();
  project_gate(GateType::kXnor, DelaySpec::fixed(1), out_xnor, ins2);
  EXPECT_TRUE(out_xnor.cls(true).is_empty());
  EXPECT_EQ(out_xnor.cls(false), LtInterval(kNI, Time(4)));
}

TEST(Projection, XorBackwardRequiresLateTransition) {
  // Output must transition at/after 20; sibling settles by 5: each input's
  // feasible class must supply the late transition.
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(40)}, LtInterval::empty()),
      sig({kNI, Time(5)}, LtInterval::empty())};
  AbstractSignal out = sig({Time(20), kPI}, {Time(20), kPI});
  project_gate(GateType::kXor, DelaySpec::fixed(0), out, ins);
  EXPECT_EQ(ins[0].cls(false), LtInterval(Time(20), Time(40)));
}

TEST(Projection, MuxForwardSelectsDataWindows) {
  // sel undetermined; both data inputs finally 1.
  std::array<AbstractSignal, 3> ins{
      sig({kNI, Time(2)}, {kNI, Time(2)}),      // sel
      sig(LtInterval::empty(), {kNI, Time(5)}),  // d0
      sig(LtInterval::empty(), {kNI, Time(9)})};  // d1
  AbstractSignal out = AbstractSignal::top();
  project_gate(GateType::kMux, DelaySpec::fixed(1), out, ins);
  EXPECT_TRUE(out.cls(false).is_empty());
  EXPECT_EQ(out.cls(true), LtInterval(kNI, Time(10)));
}

TEST(Projection, MuxBackwardKillsImpossibleDataClass) {
  // sel stuck at 0, output must be 1: d0 cannot be finally 0.
  std::array<AbstractSignal, 3> ins{
      sig({kNI, Time(0)}, LtInterval::empty()),  // sel = 0
      AbstractSignal::top(),                      // d0
      AbstractSignal::top()};                     // d1
  AbstractSignal out = sig(LtInterval::empty(), {kNI, kPI});
  project_gate(GateType::kMux, DelaySpec::fixed(0), out, ins);
  EXPECT_TRUE(ins[1].cls(false).is_empty());
  EXPECT_FALSE(ins[1].cls(true).is_empty());
  // Deselected input unconstrained.
  EXPECT_TRUE(ins[2].cls(false).is_top());
}

TEST(Projection, IdempotentAtFixpoint) {
  // Re-applying after convergence changes nothing (monotone narrowing).
  std::array<AbstractSignal, 2> ins{
      sig({kNI, Time(50)}, {kNI, Time(50)}),
      sig({kNI, Time(60)}, {kNI, Time(60)})};
  AbstractSignal out = AbstractSignal::violating(Time(61));
  for (int i = 0; i < 5; ++i) {
    project_gate(GateType::kOr, DelaySpec::fixed(10), out, ins);
  }
  const auto snapshot_out = out;
  const auto snapshot_in0 = ins[0];
  const auto delta = project_gate(GateType::kOr, DelaySpec::fixed(10), out, ins);
  EXPECT_FALSE(delta.any());
  EXPECT_EQ(out, snapshot_out);
  EXPECT_EQ(ins[0], snapshot_in0);
}

}  // namespace
}  // namespace waveck
