// Randomized equivalence test for the incremental CarrierCache: after any
// interleaving of domain narrowings, fixpoints, push_state/pop_to and
// inconsistency episodes, the cached carriers()/dominators() must be
// bit-for-bit the from-scratch dynamic_carriers()/timing_dominators().
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/carrier_cache.hpp"
#include "analysis/carriers.hpp"
#include "constraints/constraint_system.hpp"
#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"

namespace waveck {
namespace {

/// A random domain restriction of the kinds the real search applies:
/// final-class decisions, Corollary-1 timing cuts, and stability bounds.
AbstractSignal random_restriction(std::mt19937_64& rng, std::int64_t t_max) {
  std::uniform_int_distribution<std::int64_t> t_dist(0, t_max);
  switch (rng() % 3) {
    case 0:
      return AbstractSignal::class_only((rng() & 1) != 0);
    case 1:
      return AbstractSignal::violating(Time(t_dist(rng)));
    default:
      return AbstractSignal::floating_input(Time(t_dist(rng)));
  }
}

void expect_cache_matches(ConstraintSystem& cs, const TimingCheck& check,
                          CarrierCache& cache, int step) {
  const CarrierSet fresh = dynamic_carriers(cs, check);
  EXPECT_EQ(cache.carriers().distance, fresh.distance)
      << "carrier mismatch at step " << step;
  const std::vector<NetId> fresh_doms =
      cs.inconsistent() ? std::vector<NetId>{}
                        : timing_dominators(cs.circuit(), check, fresh);
  EXPECT_EQ(cache.dominators(), fresh_doms)
      << "dominator mismatch at step " << step;
}

void run_random_trace(std::uint64_t seed) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = seed;
  cfg.inputs = 6;
  cfg.gates = 48;
  cfg.outputs = 3;
  cfg.false_path_blocks = 2;
  cfg.delay_intervals = (seed & 1) != 0;
  const Circuit c = gen::structured_random_circuit(cfg);

  const Time topo = topological_delay(c);
  const std::int64_t t = topo.is_finite() ? topo.value() : 1;
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);

  for (NetId s : c.outputs()) {
    for (std::int64_t d : {t / 2, t}) {
      const TimingCheck check{s, Time(d)};
      ConstraintSystem cs(c);
      CarrierCache cache(cs, check);
      std::vector<ConstraintSystem::Mark> marks;
      marks.push_back(cs.push_state());

      std::uniform_int_distribution<std::size_t> net_dist(0,
                                                          c.num_nets() - 1);
      for (int step = 0; step < 120; ++step) {
        const unsigned roll = rng() % 10;
        if (cs.inconsistent() || (roll >= 8 && marks.size() > 1)) {
          // Backtrack to a random earlier mark (always to a consistent
          // state; the trail restores flow through the change log too).
          std::uniform_int_distribution<std::size_t> pick(0,
                                                          marks.size() - 1);
          const std::size_t i = pick(rng);
          cs.pop_to(marks[i]);
          marks.resize(i + 1);
        } else if (roll >= 6) {
          marks.push_back(cs.push_state());
        } else {
          const NetId n{static_cast<std::uint32_t>(net_dist(rng))};
          cs.restrict_domain(n, random_restriction(rng, t + 2));
          cs.reach_fixpoint();
        }
        // Skipping some queries lets several commits/restores accumulate in
        // the change log, exercising the batched cone rebuild.
        if (rng() % 10 < 6) expect_cache_matches(cs, check, cache, step);
        if (::testing::Test::HasFailure()) return;
      }
      expect_cache_matches(cs, check, cache, -1);
    }
  }
}

TEST(CarrierCache, MatchesFromScratchSeed1) { run_random_trace(1); }
TEST(CarrierCache, MatchesFromScratchSeed2) { run_random_trace(2); }
TEST(CarrierCache, MatchesFromScratchSeed3) { run_random_trace(3); }
TEST(CarrierCache, MatchesFromScratchSeed4) { run_random_trace(4); }
TEST(CarrierCache, MatchesFromScratchSeed5) { run_random_trace(5); }

// The degenerate netlists the fuzz shrinker emits: checked output is a
// primary input (possibly undeclared as an output).
TEST(CarrierCache, OutputIsPrimaryInput) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = 11;
  cfg.gates = 12;
  const Circuit c = gen::structured_random_circuit(cfg);
  const NetId in = c.inputs().front();
  const TimingCheck check{in, Time(1)};
  ConstraintSystem cs(c);
  CarrierCache cache(cs, check);
  expect_cache_matches(cs, check, cache, 0);
  cs.restrict_domain(in, AbstractSignal::violating(Time(2)));
  cs.reach_fixpoint();
  expect_cache_matches(cs, check, cache, 1);
}

}  // namespace
}  // namespace waveck
