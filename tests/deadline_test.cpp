// Deadline plumbing (serve PR): an absolute monotonic expiry armed on a
// CancellationToken or a Verifier must turn a running check into a clean
// kAbandoned — never a wrong verdict, never a wedged worker — and must not
// poison later checks on the same resident state once cleared.
#include <string>

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/circuit.hpp"
#include "prof/perf_counters.hpp"
#include "sched/cancellation.hpp"
#include "sched/check_scheduler.hpp"
#include "verify/report_io.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

using sched::CancellationToken;
using sched::CheckScheduler;
using sched::ScheduleOptions;

constexpr std::uint64_t kHourNs = 3'600'000'000'000ull;

TEST(CancellationDeadline, PollLatchesCancelOnExpiry) {
  CancellationToken t;
  EXPECT_FALSE(t.poll());  // unarmed: poll is plain cancelled()
  EXPECT_FALSE(t.cancelled());

  t.arm_deadline(prof::monotonic_ns() + kHourNs);
  EXPECT_FALSE(t.poll());  // future deadline: still live
  EXPECT_FALSE(t.cancelled());

  t.arm_deadline(1);  // 1ns after the monotonic epoch: long past
  EXPECT_TRUE(t.poll());
  EXPECT_TRUE(t.cancelled());  // poll() latched the flag
}

TEST(CancellationDeadline, ResetClearsCancelButKeepsDeadline) {
  CancellationToken t;
  t.arm_deadline(1);
  EXPECT_TRUE(t.poll());

  // Batch boundary semantics: reset() re-arms the flag, the deadline stays
  // until explicitly re-armed — the next poll latches again.
  t.reset();
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.deadline_ns(), 1u);
  EXPECT_TRUE(t.poll());

  t.arm_deadline(0);  // disarm
  t.reset();
  EXPECT_FALSE(t.poll());
  EXPECT_FALSE(t.cancelled());
}

TEST(VerifierDeadline, ExpiredDeadlineAbandonsAndClearingRecovers) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));

  Verifier fresh(c);
  const auto exact = fresh.exact_floating_delay();
  ASSERT_TRUE(exact.exact);
  const std::string want =
      canonical_json(c, fresh.check_circuit(exact.delay + 1));

  Verifier v(c);
  v.set_deadline_ns(1);  // already expired: every stage boundary bails
  const SuiteReport abandoned = v.check_circuit(exact.delay + 1);
  EXPECT_EQ(abandoned.conclusion, CheckConclusion::kAbandoned);

  // The resident-verifier contract: clearing the deadline fully restores
  // the instance — the rerun is byte-identical to a fresh serial check.
  v.set_deadline_ns(0);
  EXPECT_EQ(canonical_json(c, v.check_circuit(exact.delay + 1)), want);
}

TEST(VerifierDeadline, MidSearchExpiryReturnsAbandoned) {
  // The Table-1 multiplier (16x16 array, carry-skip final row) just above
  // its hard refutation band: proving N at delta 500 takes several seconds
  // of case analysis, so a 50ms deadline expires deep inside the search —
  // not at a stage boundary — and must surface as a clean kAbandoned.
  Circuit c = gen::build_raw("c6288");
  c.set_uniform_delay(DelaySpec::fixed(10));

  Verifier v(c);
  v.set_deadline_ns(prof::monotonic_ns() + 50'000'000ull);  // +50ms
  const std::uint64_t t0 = prof::monotonic_ns();
  const SuiteReport rep = v.check_circuit(Time(500));
  const std::uint64_t elapsed = prof::monotonic_ns() - t0;

  EXPECT_EQ(rep.conclusion, CheckConclusion::kAbandoned);
  // The deadline must actually have cut the search short (the undeadlined
  // check runs for seconds; allow slack for prepare_shared + a slow box).
  EXPECT_LT(elapsed, 5'000'000'000ull) << "deadline did not stop the search";
}

TEST(SchedulerDeadline, ExpiredTokenDeadlineAbandonsSuite) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier probe(c);
  const auto exact = probe.exact_floating_delay();
  ASSERT_TRUE(exact.exact);
  const std::string want =
      canonical_json(c, probe.check_circuit(exact.delay + 1));

  CheckScheduler s(c, VerifyOptions{}, ScheduleOptions{.jobs = 2});
  s.token().arm_deadline(1);  // long past: every job skips via poll()
  const SuiteReport abandoned = s.check_circuit(exact.delay + 1);
  EXPECT_EQ(abandoned.conclusion, CheckConclusion::kAbandoned);

  // Disarm; the scheduler's own per-batch reset() clears the latched flag,
  // and the rerun matches the serial byte-for-byte (determinism contract).
  s.token().arm_deadline(0);
  EXPECT_EQ(canonical_json(c, s.check_circuit(exact.delay + 1)), want);
}

}  // namespace
}  // namespace waveck
