// Flight recorder (doc/OBSERVABILITY.md): ring overwrite semantics, merged
// chronological dumps, blackbox dumps on deadline expiry and fatal signals,
// and the explain-compatibility contract — every dump the sanitizing writer
// produces must load into explain::analyze_trace() with zero warnings.
#include "common/flight_recorder.hpp"

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include "explain/analyzer.hpp"
#include "explain/trace_reader.hpp"
#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/circuit.hpp"
#include "prof/perf_counters.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under /tmp, removed on destruction.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/waveck_flight_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p != nullptr ? p : "";
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) fs::remove_all(path, ec);
  }
  std::string path;
};

/// Leaves the recorder in its default state even when a test fails midway.
struct RecorderGuard {
  ~RecorderGuard() {
    flight::set_blackbox_dir("");
    flight::set_enabled(true);
    flight::reset_for_test();
  }
};

std::vector<std::string> blackbox_files(const std::string& dir,
                                        const std::string& reason) {
  std::vector<std::string> out;
  const std::string prefix = "flight-" + reason + "-";
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind(prefix, 0) == 0) out.push_back(e.path().string());
  }
  return out;
}

TEST(FlightRecorder, RingKeepsOnlyLastCapacityRecords) {
  auto ring = std::make_unique<flight::Ring>();  // 256 KiB: keep off stack
  constexpr std::uint64_t kExtra = 100;
  constexpr std::uint64_t kTotal = flight::Ring::kCapacity + kExtra;

  flight::Record r{};
  r.kind = static_cast<std::uint8_t>(flight::Kind::kMark);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    r.t_ns = i;
    ring->push(r);
  }

  EXPECT_EQ(ring->head(), kTotal);
  // The readable window is the last kCapacity pushes; the first kExtra
  // records were overwritten in place.
  for (std::uint64_t i = kTotal - flight::Ring::kCapacity; i < kTotal; ++i) {
    ASSERT_EQ(ring->slot(i).t_ns, i) << "slot " << i;
  }
  // The slot that held record 0 now holds record kCapacity.
  EXPECT_EQ(ring->slot(0).t_ns, flight::Ring::kCapacity);
}

TEST(FlightRecorder, DumpMergesThreadsInChronologicalOrder) {
  RecorderGuard guard;
  flight::reset_for_test();
  flight::set_enabled(true);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        flight::record(flight::Kind::kMark,
                       "t" + std::to_string(t) + "_" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::stringstream ss;
  flight::dump(ss, "merge_test");

  explain::TraceReader reader(ss);
  explain::TraceEvent ev;
  ASSERT_TRUE(reader.next(ev)) << reader.error();
  EXPECT_EQ(ev.ev, "fr_dump");
  EXPECT_EQ(ev.str("reason"), "merge_test");
  EXPECT_GE(ev.num("rings", 0), kThreads);

  std::int64_t prev_t = -1;
  std::size_t marks = 0;
  while (reader.next(ev)) {
    ASSERT_GE(ev.t, prev_t) << "dump not chronological at line "
                            << reader.line_number();
    prev_t = ev.t;
    if (ev.ev == "mark") ++marks;
  }
  EXPECT_TRUE(reader.error().empty()) << reader.error();
  EXPECT_GE(marks, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(FlightRecorder, DeadlineExpiryWritesBlackboxDump) {
  RecorderGuard guard;
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  flight::reset_for_test();
  flight::set_enabled(true);
  flight::set_blackbox_dir(dir.path);

  Circuit c = gen::build_raw("c6288");
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  v.set_deadline_ns(prof::monotonic_ns() + 50'000'000ull);  // +50ms
  const SuiteReport rep = v.check_circuit(Time(500));
  ASSERT_EQ(rep.conclusion, CheckConclusion::kAbandoned);

  const auto dumps = blackbox_files(dir.path, "deadline_expired");
  ASSERT_FALSE(dumps.empty())
      << "abandoned deadline left no blackbox dump in " << dir.path;
  std::ifstream in(dumps.front());
  ASSERT_TRUE(in.good());
  const explain::TraceAnalysis an = explain::analyze_trace(in);
  EXPECT_TRUE(an.well_formed())
      << (an.warnings.empty() ? std::string() : an.warnings.front());
  EXPECT_EQ(an.dump_reason, "deadline_expired");
  EXPECT_GT(an.events, 0u);
}

TEST(FlightRecorder, FatalSignalDumpSurvivesTheCrash) {
  RecorderGuard guard;
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the blackbox, record something, then die by SIGSEGV. The
    // handler must write the dump before the default disposition re-raises.
    flight::set_blackbox_dir(dir.path);
    flight::install_fatal_handlers();
    flight::record(flight::Kind::kMark, "about_to_crash");
    std::raise(SIGSEGV);
    ::_exit(0);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string path =
      dir.path + "/flight-fatal-" + std::to_string(pid) + ".jsonl";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no fatal dump at " << path;
  const explain::TraceAnalysis an = explain::analyze_trace(in);
  // The signal-safe writer does not sanitize, so warnings are tolerated —
  // but the header and the child's mark must have survived the crash.
  EXPECT_EQ(an.dump_reason, "fatal_signal");
  EXPECT_GT(an.events, 0u);
  EXPECT_GE(an.event_counts.count("mark"), 1u);
}

TEST(FlightRecorder, ExplainLoadsRealCheckDumpWithZeroWarnings) {
  RecorderGuard guard;
  flight::reset_for_test();
  flight::set_enabled(true);

  // A real multi-check run so the rings hold genuine check/stage/decision
  // spans, not synthetic marks.
  Circuit c = gen::carry_skip_adder(8, 2);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const SuiteReport rep = v.check_circuit(Time(40));
  ASSERT_FALSE(rep.per_output.empty());

  std::stringstream ss;
  flight::dump(ss, "test");
  const explain::TraceAnalysis an = explain::analyze_trace(ss);
  EXPECT_TRUE(an.well_formed())
      << an.n_warnings << " warnings, first: "
      << (an.warnings.empty() ? std::string() : an.warnings.front());
  EXPECT_EQ(an.dump_reason, "test");
  EXPECT_GT(an.dump_records, 0);
  EXPECT_FALSE(an.checks.empty());
  EXPECT_GT(an.event_counts.count("check_begin"), 0u);
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
  RecorderGuard guard;
  flight::reset_for_test();
  flight::set_enabled(false);
  flight::record(flight::Kind::kMark, "should_not_appear");
  EXPECT_EQ(flight::stats().records, 0u);

  flight::set_enabled(true);
  flight::record(flight::Kind::kMark, "appears");
  EXPECT_GE(flight::stats().records, 1u);
}

TEST(FlightRecorder, BlackboxCooldownRateLimitsPerReason) {
  RecorderGuard guard;
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  flight::reset_for_test();
  flight::set_enabled(true);
  flight::set_blackbox_dir(dir.path);
  flight::record(flight::Kind::kMark, "cooldown_probe");

  const std::string first = flight::dump_blackbox("cooldown_test");
  EXPECT_FALSE(first.empty());
  // Within the cooldown window the same reason is rate-limited...
  EXPECT_TRUE(flight::dump_blackbox("cooldown_test").empty());
  // ...but cooldown 0 forces a write, and a different reason is unaffected.
  EXPECT_FALSE(flight::dump_blackbox("cooldown_test", 0).empty());
  EXPECT_FALSE(flight::dump_blackbox("other_reason").empty());
  EXPECT_EQ(blackbox_files(dir.path, "cooldown_test").size(), 2u);
}

}  // namespace
}  // namespace waveck
