// The appendable false-path blocks must exhibit exactly their advertised
// stage profile (which machinery proves the proof row), raw and NOR-mapped.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

Circuit host() {
  return gen::alu({.width = 4, .with_subtract = true, .with_flags = true,
                   .with_parity = false});
}

struct Profile {
  Time top;
  Time exact;
  bool narrowing_closes;  // at delta = exact + 1, case analysis off
  bool gitd_closes;
  bool stems_close;
};

Profile profile_of(Circuit c, bool mapped) {
  if (mapped) {
    c = gen::prepare_for_experiment(c);
  } else {
    c.set_uniform_delay(DelaySpec::fixed(10));
  }
  Profile p{};
  p.top = topological_delay(c);
  Verifier full(c);
  const auto ex = full.exact_floating_delay();
  EXPECT_TRUE(ex.exact);
  p.exact = ex.delay;
  const Time delta = ex.delay + 1;
  auto closes = [&](bool gitd, bool stems) {
    VerifyOptions opt;
    opt.use_dominators = gitd;
    opt.use_stem_correlation = stems;
    opt.use_case_analysis = false;
    Verifier v(c, opt);
    return v.check_circuit(delta).conclusion == CheckConclusion::kNoViolation;
  };
  p.narrowing_closes = closes(false, false);
  p.gitd_closes = closes(true, false);
  p.stems_close = closes(true, true);
  return p;
}

class FalsePathProfiles : public ::testing::TestWithParam<bool> {};

TEST_P(FalsePathProfiles, LocalChainClosedByNarrowing) {
  Circuit c = host();
  gen::append_false_path_block(c, gen::FalsePathKind::kLocalChain, 16);
  const Profile p = profile_of(std::move(c), GetParam());
  EXPECT_LT(p.exact, p.top);  // genuinely a false path
  EXPECT_TRUE(p.narrowing_closes);
}

TEST_P(FalsePathProfiles, DominatorDiamondNeedsGitd) {
  Circuit c = host();
  gen::append_false_path_block(c, gen::FalsePathKind::kDominatorDiamond, 16);
  const Profile p = profile_of(std::move(c), GetParam());
  EXPECT_LT(p.exact, p.top);
  EXPECT_FALSE(p.narrowing_closes);
  EXPECT_TRUE(p.gitd_closes);
}

TEST_P(FalsePathProfiles, StemContradictionNeedsStems) {
  Circuit c = host();
  gen::append_false_path_block(c, gen::FalsePathKind::kStemContradiction, 24);
  const Profile p = profile_of(std::move(c), GetParam());
  EXPECT_LT(p.exact, p.top);
  EXPECT_FALSE(p.narrowing_closes);
  EXPECT_FALSE(p.gitd_closes);
  EXPECT_TRUE(p.stems_close);
}

INSTANTIATE_TEST_SUITE_P(RawAndNorMapped, FalsePathProfiles,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "nor" : "raw";
                         });

TEST(FalsePath, ExactDelayStillMatchesOracle) {
  // End-to-end exactness on a block small enough for the oracle.
  Circuit c = gen::alu({.width = 2, .with_subtract = false,
                        .with_flags = false, .with_parity = false});
  gen::append_false_path_block(c, gen::FalsePathKind::kDominatorDiamond, 8);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c));
}

TEST(FalsePath, StemBlockExactMatchesOracle) {
  Circuit c = gen::alu({.width = 2, .with_subtract = false,
                        .with_flags = false, .with_parity = false});
  gen::append_false_path_block(c, gen::FalsePathKind::kStemContradiction, 8);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c));
}

TEST(FalsePath, BlockOutputIsCriticalWithSuiteSizing) {
  // The suite sizes the chain so the block's output is the topologically
  // deepest one after NOR mapping.
  for (const char* name : {"c1908", "c2670", "c5315"}) {
    const Circuit c = gen::prepare_for_experiment(gen::build_raw(name));
    const auto top = topo_arrival(c);
    const NetId fp = *c.find_net("fp_out");
    for (NetId o : c.outputs()) {
      EXPECT_LE(top[o.index()], top[fp.index()]) << name;
    }
  }
}

TEST(FalsePath, SkipMultiplierHasFalsePaths) {
  Circuit plain = gen::array_multiplier(6);
  Circuit skip = gen::array_multiplier(6, true);
  plain.set_uniform_delay(DelaySpec::fixed(10));
  skip.set_uniform_delay(DelaySpec::fixed(10));
  EXPECT_EQ(exhaustive_floating_delay(plain), topological_delay(plain));
  EXPECT_LT(exhaustive_floating_delay(skip), topological_delay(skip));
}

TEST(FalsePath, SkipMultiplierArithmeticCorrect) {
  const Circuit c = gen::array_multiplier(5, true);
  for (unsigned a = 0; a < 32; a += 3) {
    for (unsigned b = 0; b < 32; b += 5) {
      std::vector<bool> v;
      for (int i = 0; i < 5; ++i) v.push_back((a >> i) & 1);
      for (int i = 0; i < 5; ++i) v.push_back((b >> i) & 1);
      const auto r = simulate_floating(c, v);
      unsigned p = 0;
      for (int i = 0; i < 10; ++i) {
        p |= unsigned{
                 r.value[c.find_net("p" + std::to_string(i))->index()]}
             << i;
      }
      EXPECT_EQ(p, a * b) << a << "*" << b;
    }
  }
}

}  // namespace
}  // namespace waveck
