// SoA domain planes and level-sweep kernels: encoding round-trips,
// sentinel saturation at the Time range edges, plane-predicate parity with
// the AbstractSignal definitions, and simd/scalar narrowing equivalence.
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/constraint_system.hpp"
#include "constraints/level_kernel.hpp"
#include "constraints/projection.hpp"
#include "constraints/soa_domain.hpp"
#include "gen/generators.hpp"
#include "gen/rng.hpp"
#include "waveform/soa_encoding.hpp"

namespace waveck {
namespace {

TEST(SoaEncoding, SentinelsMatchTimeRawBounds) {
  EXPECT_EQ(soa::kNegInf, Time::kRawNegInf);
  EXPECT_EQ(soa::kPosInf, Time::kRawPosInf);
  EXPECT_EQ(Time::neg_inf().raw(), soa::kNegInf);
  EXPECT_EQ(Time::pos_inf().raw(), soa::kPosInf);
  // Sentinels sit at INT64_MIN/4..INT64_MAX/4: adding any two raw values
  // (or a raw value and a negated one) can never overflow int64.
  EXPECT_GT(soa::kNegInf, INT64_MIN / 2);
  EXPECT_LT(soa::kPosInf, INT64_MAX / 2);
}

TEST(SoaEncoding, SaturatingAddKeepsInfinitiesSticky) {
  // Infinities absorb any finite shift, exactly like Time::operator+.
  EXPECT_EQ(soa::sat_add(soa::kNegInf, 1000), soa::kNegInf);
  EXPECT_EQ(soa::sat_add(soa::kNegInf, -1000), soa::kNegInf);
  EXPECT_EQ(soa::sat_add(soa::kPosInf, 1000), soa::kPosInf);
  EXPECT_EQ(soa::sat_add(soa::kPosInf, -1000), soa::kPosInf);
  EXPECT_EQ(soa::sat_add(5, 7), 12);
  EXPECT_EQ(soa::sat_add(-5, -7), -12);
}

TEST(SoaEncoding, FiniteValuesNearSentinelsStayFinite) {
  // The largest finite raw values: one inside each sentinel. A delay shift
  // never overflows int64 because sentinels sit at INT64_MIN/4..MAX/4 and
  // finite deltas are circuit delays (tiny by comparison); the algebra must
  // not confuse these extremes with the infinities themselves.
  const std::int64_t lo_edge = soa::kNegInf + 1;
  const std::int64_t hi_edge = soa::kPosInf - 1;
  EXPECT_EQ(soa::sat_add(lo_edge, 5), lo_edge + 5);
  EXPECT_EQ(soa::sat_add(hi_edge, -5), hi_edge - 5);
  // shift_forward on a [lo_edge, hi_edge] interval shifts both bounds.
  const soa::RawInterval s =
      soa::shift_forward({lo_edge, hi_edge}, 2, 3);
  EXPECT_EQ(s.lo, lo_edge + 2);
  EXPECT_EQ(s.hi, hi_edge + 3);
  // An infinite bound in the same interval stays put.
  const soa::RawInterval t =
      soa::shift_forward({soa::kNegInf, hi_edge}, 2, 3);
  EXPECT_EQ(t.lo, soa::kNegInf);
  EXPECT_EQ(t.hi, hi_edge + 3);
}

TEST(SoaEncoding, ToRawCanonicalisesEveryEmptyRepresentation) {
  // Any lo > hi LtInterval must land on THE canonical empty so that bitwise
  // plane equality is semantic equality.
  const soa::RawInterval e1 = soa::to_raw(LtInterval(Time(5), Time(3)));
  const soa::RawInterval e2 = soa::to_raw(LtInterval::empty());
  EXPECT_EQ(e1, soa::kEmpty);
  EXPECT_EQ(e2, soa::kEmpty);
  EXPECT_EQ(soa::kEmpty.lo, soa::kPosInf);
  EXPECT_EQ(soa::kEmpty.hi, soa::kNegInf);
}

TEST(SoaDomain, TopEmptyBottomRoundTrip) {
  SoaDomain d(4);
  const NetId n0{std::uint32_t{0}}, n1{std::uint32_t{1}},
      n2{std::uint32_t{2}}, n3{std::uint32_t{3}};
  EXPECT_TRUE(d.get(n0).is_top());  // fresh domain starts at top

  d.set(n1, AbstractSignal::bottom());
  EXPECT_TRUE(d.get(n1).is_bottom());
  EXPECT_TRUE(d.is_bottom(n1.index()));

  const AbstractSignal cls0 = AbstractSignal::class_only(false);
  d.set(n2, cls0);
  EXPECT_EQ(d.get(n2), cls0);
  EXPECT_TRUE(d.single_class(n2.index()));
  EXPECT_FALSE(d.cls_empty(n2.index(), 0));
  EXPECT_TRUE(d.cls_empty(n2.index(), 1));

  const AbstractSignal mixed{LtInterval(Time(-3), Time(7)),
                             LtInterval(Time(0), Time(12))};
  d.set(n3, mixed);
  EXPECT_EQ(d.get(n3), mixed);
  EXPECT_FALSE(d.single_class(n3.index()));
}

TEST(SoaDomain, PredicatesMatchAbstractSignalDefinitions) {
  // Randomised parity sweep: every plane predicate must agree with the
  // AbstractSignal it round-trips to.
  gen::Rng rng(7);
  SoaDomain d(1);
  const NetId n{std::uint32_t{0}};
  const auto rand_iv = [&]() -> LtInterval {
    switch (rng.below(4)) {
      case 0: return LtInterval::top();
      case 1: return LtInterval::empty();
      case 2: return LtInterval(Time::neg_inf(), Time(rng.below(50)) - 25);
      default: {
        const std::int64_t a =
            static_cast<std::int64_t>(rng.below(60)) - 30;
        return LtInterval(Time(a), Time(a + rng.below(20)));
      }
    }
  };
  for (int trial = 0; trial < 500; ++trial) {
    const AbstractSignal s{rand_iv(), rand_iv()};
    d.set(n, s);
    const AbstractSignal back = d.get(n);
    ASSERT_EQ(back, s);
    ASSERT_EQ(d.is_bottom(0), s.is_bottom());
    ASSERT_EQ(d.single_class(0), s.single_class());
    ASSERT_EQ(d.cls_empty(0, 0), s.cls(false).is_empty());
    ASSERT_EQ(d.cls_empty(0, 1), s.cls(true).is_empty());
    ASSERT_EQ(Time::from_raw(d.latest_raw(0)), s.latest());
    for (std::int64_t t : {-40, -1, 0, 1, 40}) {
      ASSERT_EQ(d.has_transition_at_or_after(0, Time(t)),
                s.has_transition_at_or_after(Time(t)))
          << s.str() << " t=" << t;
    }
  }
}

TEST(LevelKernel, DispatchReportsCompileAndCpuState) {
  // Runtime dispatch is internally consistent whatever the host: enabled
  // implies supported implies compiled, and the toggle round-trips.
  if (simd_enabled()) EXPECT_TRUE(simd_supported());
  if (simd_supported()) EXPECT_TRUE(simd_compiled());
  const bool prior = simd_enabled();
  set_simd_enabled(false);
  EXPECT_FALSE(simd_enabled());
  set_simd_enabled(true);
  EXPECT_EQ(simd_enabled(), simd_supported());
  set_simd_enabled(prior);
}

/// Naive worklist fixpoint straight over Gate objects and project_gate:
/// the reference the batched engine must reproduce exactly.
std::vector<AbstractSignal> reference_fixpoint(const Circuit& c) {
  std::vector<AbstractSignal> dom(c.num_nets(), AbstractSignal::top());
  for (NetId in : c.inputs()) {
    dom[in.index()] =
        dom[in.index()].intersect(AbstractSignal::floating_input());
  }
  std::deque<GateId> work;
  std::vector<char> inq(c.num_gates(), 0);
  for (GateId g : c.topo_order()) {
    work.push_back(g);
    inq[g.index()] = 1;
  }
  const auto push_net = [&](NetId n) {
    const auto pushg = [&](GateId g) {
      if (!inq[g.index()]) {
        inq[g.index()] = 1;
        work.push_back(g);
      }
    };
    if (c.net(n).driver.valid()) pushg(c.net(n).driver);
    for (GateId f : c.net(n).fanouts) pushg(f);
  };
  while (!work.empty()) {
    const GateId gid = work.front();
    work.pop_front();
    inq[gid.index()] = 0;
    const Gate& g = c.gate(gid);
    AbstractSignal out = dom[g.out.index()];
    std::vector<AbstractSignal> ins;
    for (NetId in : g.ins) ins.push_back(dom[in.index()]);
    const ProjectionDelta delta = project_gate(g.type, g.delay, out, ins);
    if (delta.out_changed) {
      dom[g.out.index()] = dom[g.out.index()].intersect(out);
      push_net(g.out);
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
      if (delta.in_changed(i)) {
        dom[g.ins[i].index()] = dom[g.ins[i].index()].intersect(ins[i]);
        push_net(g.ins[i]);
      }
    }
  }
  return dom;
}

std::vector<AbstractSignal> engine_fixpoint(const Circuit& c) {
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();
  std::vector<AbstractSignal> dom;
  dom.reserve(c.num_nets());
  for (NetId n : c.all_nets()) dom.push_back(cs.domain(n));
  return dom;
}

class KernelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelEquivalence, BatchedSweepMatchesNaiveWorklist) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = GetParam() * 131 + 5;
  cfg.gates = 60;
  const Circuit c = gen::structured_random_circuit(cfg);
  const auto ref = reference_fixpoint(c);

  const bool prior = simd_enabled();
  for (const bool simd : {false, true}) {
    if (simd && !simd_supported()) continue;
    set_simd_enabled(simd);
    const auto got = engine_fixpoint(c);
    for (NetId n : c.all_nets()) {
      ASSERT_EQ(got[n.index()], ref[n.index()])
          << (simd ? "simd" : "scalar") << " net " << c.net(n).name;
    }
  }
  set_simd_enabled(prior);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace waveck
