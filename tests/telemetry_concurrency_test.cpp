// Telemetry under concurrency (doc/PARALLELISM.md): metric objects must
// count exactly when bumped from many threads at once, per-thread
// registries must merge losslessly into the global one, and the JSONL
// trace sink must never interleave lines from concurrent emitters.
#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.hpp"

namespace waveck::telemetry {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kIters = 10000;

void run_threads(const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&body, t] { body(t); });
  }
  for (auto& th : threads) th.join();
}

TEST(TelemetryConcurrency, SharedCounterCountsExactly) {
  Registry reg;
  run_threads([&reg](std::size_t) {
    auto& ctr = reg.counter("shared");
    for (std::size_t i = 0; i < kIters; ++i) ctr.inc();
  });
  EXPECT_EQ(reg.counter("shared").value(), kThreads * kIters);
}

TEST(TelemetryConcurrency, SharedGaugeBalancesExactly) {
  Registry reg;
  run_threads([&reg](std::size_t) {
    auto& g = reg.gauge("depth");
    for (std::size_t i = 0; i < kIters; ++i) {
      g.add(3);
      g.add(-3);
    }
  });
  EXPECT_EQ(reg.gauge("depth").value(), 0);
}

TEST(TelemetryConcurrency, SharedHistogramCountsExactly) {
  Registry reg;
  run_threads([&reg](std::size_t t) {
    auto& h = reg.histogram("sizes");
    for (std::size_t i = 0; i < kIters; ++i) h.observe(t + 1);
  });
  auto& h = reg.histogram("sizes");
  EXPECT_EQ(h.count(), kThreads * kIters);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) expected_sum += (t + 1) * kIters;
  EXPECT_EQ(h.sum(), expected_sum);
}

TEST(TelemetryConcurrency, SharedTimerTotalsExactly) {
  Registry reg;
  run_threads([&reg](std::size_t) {
    auto& t = reg.timer("stage");
    for (std::size_t i = 0; i < kIters; ++i) t.add(1, 5);
  });
  EXPECT_EQ(reg.timer("stage").calls(), kThreads * kIters);
  EXPECT_EQ(reg.timer("stage").total_ns(), kThreads * kIters * 5);
}

TEST(TelemetryConcurrency, ConcurrentLookupOfNewNamesIsSafe) {
  // Hammer the registry map itself: every thread creates its own metric
  // names while also bumping one shared name.
  Registry reg;
  run_threads([&reg](std::size_t t) {
    const std::string mine = "thread." + std::to_string(t);
    for (std::size_t i = 0; i < 1000; ++i) {
      reg.counter(mine).inc();
      reg.counter("all").inc();
    }
  });
  EXPECT_EQ(reg.counter("all").value(), kThreads * 1000);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("thread." + std::to_string(t)).value(), 1000u);
  }
}

TEST(TelemetryConcurrency, PerThreadRegistriesMergeLosslessly) {
  // The scheduler's attribution scheme: each worker tallies into its own
  // registry via ScopedRegistry, then everything folds into one.
  std::vector<std::unique_ptr<Registry>> regs;
  for (std::size_t t = 0; t < kThreads; ++t) {
    regs.push_back(std::make_unique<Registry>());
  }
  run_threads([&regs](std::size_t t) {
    const ScopedRegistry scoped(*regs[t]);
    for (std::size_t i = 0; i < kIters; ++i) {
      Registry::current().counter("work").inc();
      Registry::current().timer("t").add(1, 2);
      Registry::current().histogram("h").observe(i % 7);
    }
  });
  Registry total;
  for (const auto& r : regs) {
    // Each worker saw only its own tallies (ScopedRegistry redirect).
    EXPECT_EQ(r->counter("work").value(), kIters);
    total.merge_from(*r);
  }
  EXPECT_EQ(total.counter("work").value(), kThreads * kIters);
  EXPECT_EQ(total.timer("t").calls(), kThreads * kIters);
  EXPECT_EQ(total.timer("t").total_ns(), kThreads * kIters * 2);
  EXPECT_EQ(total.histogram("h").count(), kThreads * kIters);
}

TEST(TelemetryConcurrency, CurrentFallsBackToGlobalWithoutOverride) {
  EXPECT_EQ(&Registry::current(), &Registry::global());
  Registry local;
  {
    const ScopedRegistry scoped(local);
    EXPECT_EQ(&Registry::current(), &local);
  }
  EXPECT_EQ(&Registry::current(), &Registry::global());
}

TEST(TelemetryConcurrency, TraceSinkLinesNeverInterleave) {
  std::ostringstream os;
  {
    JsonlTraceSink sink(os);
    run_threads([&sink](std::size_t t) {
      for (std::size_t i = 0; i < 500; ++i) {
        const TraceField fields[] = {TraceField("thread", t),
                                     TraceField("i", i),
                                     TraceField("tag", "abc")};
        sink.event("tick", fields);
      }
    });
    EXPECT_EQ(sink.events_written(), kThreads * 500);
  }
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  std::set<std::string> seqs;
  while (std::getline(is, line)) {
    ++lines;
    // Every line is one complete event object: the fixed prefix, a worker
    // id field, the producer fields, and balanced braces/quotes (a torn or
    // interleaved write would break all of these).
    EXPECT_EQ(line.substr(0, 12), "{\"ev\":\"tick\"") << line;
    EXPECT_NE(line.find("\"seq\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"w\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"tag\":\"abc\""), std::string::npos) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(std::count(line.begin(), line.end(), '"') % 2, 0) << line;
    const auto seq_pos = line.find("\"seq\":") + 6;
    seqs.insert(line.substr(seq_pos, line.find(',', seq_pos) - seq_pos));
  }
  EXPECT_EQ(lines, kThreads * 500);
  EXPECT_EQ(seqs.size(), lines);  // sequence numbers are unique
}

TEST(TelemetryConcurrency, MergePreservesSnapshotJson) {
  // merge_from on a quiescent registry must fold every metric kind into
  // the JSON snapshot (spot-check the names appear).
  Registry a;
  a.counter("c").add(2);
  a.gauge("g").set(7);
  a.histogram("h").observe(16);
  a.timer("t").add(3, 9000);
  Registry b;
  b.merge_from(a);
  const std::string json = b.to_json();
  EXPECT_NE(json.find("\"c\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":{\"value\":7,\"max\":7}"), std::string::npos)
      << json;
  EXPECT_EQ(b.histogram("h").count(), 1u);
  EXPECT_EQ(b.timer("t").calls(), 3u);
  EXPECT_EQ(b.timer("t").total_ns(), 9000u);
}

}  // namespace
}  // namespace waveck::telemetry
