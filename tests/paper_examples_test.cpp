// End-to-end checks against every quantitative claim reproducible from the
// paper's text: Example 1, Example 2 (Figure 1), the carry-skip narrative of
// Section 4 (Figure 2), and the Section 6 facts that do not depend on the
// exact ISCAS netlists.
#include <gtest/gtest.h>

#include "analysis/carriers.hpp"
#include "constraints/constraint_system.hpp"
#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

constexpr Time kNI = Time::neg_inf();

/// Example 2, step by step: the fixpoint on the Figure-1 circuit with the
/// timing check (s, 61) empties the output domain -- "no transition is
/// possible on s at or after t = 61".
TEST(PaperExample2, NarrowingProvesDelta61Impossible) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(Time(61)));
  cs.schedule_all();
  EXPECT_EQ(cs.reach_fixpoint(), ConstraintSystem::Status::kNoViolation);
  // The engine stops at the first emptied domain (in the narration it is
  // e3, "which then yields D_s = (phi, phi)"): inconsistency is proven.
  EXPECT_TRUE(cs.inconsistent());
}

/// The forward half of Example 2: before the delta restriction bites, the
/// arrival bounds match the narration (n_i at 10i, n5/n6 both at 50).
TEST(PaperExample2, ForwardWaveformPropagation) {
  const Circuit c = gen::hrapcenko(10);
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  ASSERT_EQ(cs.reach_fixpoint(),
            ConstraintSystem::Status::kPossibleViolation);
  auto max0 = [&](const char* n) {
    return cs.domain(*c.find_net(n)).cls(false).max;
  };
  EXPECT_EQ(max0("n1"), Time(10));
  EXPECT_EQ(max0("n2"), Time(20));
  EXPECT_EQ(max0("n3"), Time(30));
  EXPECT_EQ(max0("n4"), Time(40));
  EXPECT_EQ(max0("n5"), Time(50));
  EXPECT_EQ(max0("n6"), Time(50));
  EXPECT_EQ(max0("n7"), Time(60));
  EXPECT_EQ(max0("s"), Time(70));
}

/// Intermediate states of the backward pass at delta = 61: the controlling
/// waveforms of n5 are removed, the last-transition interval reaches n7.
/// (Checked on a partially-propagated system: inputs not yet constrained so
/// the chain does not collapse.)
TEST(PaperExample2, LastTransitionIntervalPropagatesToN7) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  ConstraintSystem cs(c);
  // Forward bounds first (floating inputs), fixpoint.
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.schedule_all();
  cs.reach_fixpoint();
  // Snapshot check on g8 only: restrict s and run just that constraint by
  // scheduling the driver of s.
  cs.restrict_domain(s, AbstractSignal::violating(Time(61)));
  cs.reach_fixpoint();  // full fixpoint collapses everything...
  // ...so verify the g8-local behaviour on a fresh system without input
  // restrictions (domains stay top upstream).
  ConstraintSystem local(c);
  // Give n5/n7 their forward bounds manually (paper state before backward).
  local.restrict_domain(*c.find_net("n5"),
                        {LtInterval(kNI, Time(50)), LtInterval(kNI, Time(50))});
  local.restrict_domain(*c.find_net("n7"),
                        {LtInterval(kNI, Time(60)), LtInterval(kNI, Time(60))});
  local.restrict_domain(s, AbstractSignal::violating(Time(61)));
  local.schedule_net(s);
  local.reach_fixpoint();
  const auto& n5 = local.domain(*c.find_net("n5"));
  const auto& n7 = local.domain(*c.find_net("n7"));
  EXPECT_TRUE(n5.cls(true).is_empty()) << "controlling class must be removed";
  EXPECT_EQ(n5.cls(false), LtInterval(kNI, Time(50)));
  EXPECT_EQ(n7.cls(false), LtInterval(Time(51), Time(60)));
  EXPECT_EQ(n7.cls(true), LtInterval(Time(51), Time(60)));
  const auto& ds = local.domain(s);
  EXPECT_EQ(ds.cls(true), LtInterval(Time(61), Time(70)));
}

/// Figure 1's headline numbers: top = 70, floating delay = 60, and the
/// verifier reproduces both (delta = 61 -> N, delta = 60 -> vector).
TEST(PaperExample2, ExactFloatingDelay60) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  EXPECT_EQ(res.topological, Time(70));
  EXPECT_EQ(res.delay, Time(60));
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c));
}

/// Section 4 narrative on the carry-skip adder: the timing dominators of
/// the final carry include the block-carry chain, and Corollary 1 narrows
/// them with "transitions at or after (lmin - top distance)".
TEST(PaperCarrySkip, DominatorChainAndImplications) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const NetId cout = *c.find_net("cout");
  const Time top = topo_arrival(c)[cout.index()];

  // Sweep delta down from top to the largest value the plain fixpoint
  // cannot refute; that is where the global implications have work to do.
  Time delta = top;
  for (;; delta = delta - 10) {
    ASSERT_GT(delta, Time(0));
    ConstraintSystem probe(c);
    for (NetId in : c.inputs()) {
      probe.restrict_domain(in, AbstractSignal::floating_input());
    }
    probe.restrict_domain(cout, AbstractSignal::violating(delta));
    probe.schedule_all();
    if (probe.reach_fixpoint() ==
        ConstraintSystem::Status::kPossibleViolation) {
      break;
    }
  }
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(cout, AbstractSignal::violating(delta));
  cs.schedule_all();
  cs.reach_fixpoint();
  const TimingCheck check{cout, delta};
  const auto carriers = dynamic_carriers(cs, check);
  const auto doms = timing_dominators(c, check, carriers);
  ASSERT_GE(doms.size(), 2u);
  EXPECT_EQ(c.net(doms.front()).name, "cout");
  // The block-carry chain dominates every sufficiently long path (the
  // paper's C5/C6/C7 narrative); at least one bc net must appear.
  bool has_bc = false;
  for (NetId d : doms) has_bc |= c.net(d).name.starts_with("bc");
  EXPECT_TRUE(has_bc);

  const std::size_t narrowed = apply_dominator_implications(cs, check);
  EXPECT_GT(narrowed, 0u);
}

/// Section 6, carry-skip adder paragraph: topological delay is twice the
/// floating delay ("topological delay of 2000 and a floating-mode delay of
/// 1000"); the ratio, not the absolute scale, is the architectural claim.
/// Our 8-bit/4-block instance shows the same false-ripple gap, exactly.
TEST(PaperCarrySkip, ExactDelaySplitsTopological) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  EXPECT_TRUE(res.exact);
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c, 17));
  EXPECT_LT(res.delay, res.topological);
  // delta = floating + 1 proves N; delta = floating finds a vector.
  EXPECT_EQ(v.check_circuit(res.delay + 1).conclusion,
            CheckConclusion::kNoViolation);
  EXPECT_EQ(v.check_circuit(res.delay).conclusion,
            CheckConclusion::kViolation);
}

/// Table 1 c17 row: exact floating delay equals the topological delay (50
/// with delay 10 and the 5-level NOR mapping is *not* claimed; the claim is
/// the process: P/P/P, a vector with very few backtracks).
TEST(PaperTable1, C17RowShape) {
  Circuit c = gen::prepare_for_experiment(gen::c17());
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  EXPECT_TRUE(res.exact);
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c));

  const auto at_exact = v.check_circuit(res.delay);
  EXPECT_EQ(at_exact.conclusion, CheckConclusion::kViolation);
  EXPECT_LE(at_exact.backtracks, 16u);  // paper: 0
  const auto above = v.check_circuit(res.delay + 1);
  EXPECT_EQ(above.conclusion, CheckConclusion::kNoViolation);
}

}  // namespace
}  // namespace waveck
