// Lattice/algebra laws of the last-transition-interval domain, swept over
// a dense grid of interval pairs (the foundation the whole narrowing
// engine's monotonicity argument rests on).
#include <gtest/gtest.h>

#include <vector>

#include "waveform/lt_interval.hpp"

namespace waveck {
namespace {

std::vector<LtInterval> grid() {
  const std::vector<Time> pts{Time::neg_inf(), Time(-2), Time(0), Time(1),
                              Time(3), Time::pos_inf()};
  std::vector<LtInterval> out;
  for (Time lo : pts) {
    for (Time hi : pts) out.push_back({lo, hi});
  }
  return out;
}

TEST(IntervalLaws, IntersectIsMeet) {
  const auto g = grid();
  for (const auto& a : g) {
    for (const auto& b : g) {
      const LtInterval m = a.intersect(b);
      // Commutative, idempotent, lower bound of both.
      EXPECT_EQ(m, b.intersect(a));
      EXPECT_EQ(a.intersect(a), a.normalized());
      EXPECT_TRUE(a.contains(m));
      EXPECT_TRUE(b.contains(m));
      // Greatest lower bound: anything inside both is inside the meet.
      for (const auto& c : g) {
        if (a.contains(c) && b.contains(c)) {
          EXPECT_TRUE(m.contains(c))
              << a.str() << " ^ " << b.str() << " vs " << c.str();
        }
      }
    }
  }
}

TEST(IntervalLaws, HullIsJoin) {
  const auto g = grid();
  for (const auto& a : g) {
    for (const auto& b : g) {
      const LtInterval j = a.hull(b);
      EXPECT_EQ(j, b.hull(a));
      EXPECT_TRUE(j.contains(a));
      EXPECT_TRUE(j.contains(b));
      // Least upper bound within the interval lattice.
      for (const auto& c : g) {
        if (c.contains(a) && c.contains(b)) {
          EXPECT_TRUE(c.contains(j));
        }
      }
    }
  }
}

TEST(IntervalLaws, AbsorptionAndAssociativity) {
  const auto g = grid();
  for (const auto& a : g) {
    for (const auto& b : g) {
      EXPECT_EQ(a.hull(a.intersect(b)), a.normalized());
      EXPECT_EQ(a.intersect(a.hull(b)), a.normalized());
      for (const auto& c : g) {
        EXPECT_EQ(a.intersect(b).intersect(c), a.intersect(b.intersect(c)));
        EXPECT_EQ(a.hull(b).hull(c), a.hull(b.hull(c)));
      }
    }
  }
}

TEST(IntervalLaws, NarrownessIsStrictPartialOrder) {
  const auto g = grid();
  for (const auto& a : g) {
    EXPECT_FALSE(a.narrower_than(a));  // irreflexive
    for (const auto& b : g) {
      if (a.narrower_than(b)) {
        EXPECT_FALSE(b.narrower_than(a));  // asymmetric
        EXPECT_TRUE(b.contains(a));        // consistent with inclusion
        for (const auto& c : g) {
          if (b.narrower_than(c)) {
            EXPECT_TRUE(a.narrower_than(c));  // transitive
          }
        }
      }
    }
  }
}

TEST(IntervalLaws, ShiftDistributesOverMeetAndJoin) {
  const auto g = grid();
  for (const auto& a : g) {
    for (const auto& b : g) {
      // Fixed shifts are lattice isomorphisms.
      EXPECT_EQ(a.intersect(b).shift_forward(3, 3),
                a.shift_forward(3, 3).intersect(b.shift_forward(3, 3)));
      EXPECT_EQ(a.hull(b).shift_forward(3, 3),
                a.shift_forward(3, 3).hull(b.shift_forward(3, 3)));
    }
  }
}

TEST(IntervalLaws, Lemma1AgreesWithMembership) {
  // union_is_exact iff no integer sits strictly between the operands.
  const auto g = grid();
  for (const auto& a : g) {
    for (const auto& b : g) {
      if (a.is_empty() || b.is_empty()) {
        EXPECT_TRUE(a.union_is_exact(b));
        continue;
      }
      const LtInterval j = a.hull(b);
      bool gap = false;
      // Scan a window of candidate integer points for hull members outside
      // both operands.
      for (std::int64_t t = -4; t <= 5 && !gap; ++t) {
        const Time tt(t);
        gap = j.contains(tt) && !a.contains(tt) && !b.contains(tt);
      }
      EXPECT_EQ(a.union_is_exact(b), !gap) << a.str() << " u " << b.str();
    }
  }
}

}  // namespace
}  // namespace waveck
