#include "verify/report_io.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "sim/transition_sim.hpp"

namespace waveck {
namespace {

TEST(ReportIo, CheckReportJson) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto rep = v.check_output(*c.find_net("s"), Time(60));
  const std::string j = to_json(c, rep);
  EXPECT_NE(j.find("\"circuit\":\"hrapcenko\""), std::string::npos);
  EXPECT_NE(j.find("\"conclusion\":\"V\""), std::string::npos);
  EXPECT_NE(j.find("\"delta\":60"), std::string::npos);
  EXPECT_NE(j.find("\"vector\":\""), std::string::npos);
}

TEST(ReportIo, NoViolationJsonHasNullVector) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto rep = v.check_output(*c.find_net("s"), Time(61));
  const std::string j = to_json(c, rep);
  EXPECT_NE(j.find("\"conclusion\":\"N\""), std::string::npos);
  EXPECT_NE(j.find("\"vector\":null"), std::string::npos);
}

TEST(ReportIo, SuiteReportJsonListsOutputs) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto rep = v.check_circuit(Time(31));
  const std::string j = to_json(c, rep);
  EXPECT_NE(j.find("\"outputs\":["), std::string::npos);
  EXPECT_NE(j.find("\"22\""), std::string::npos);
}

TEST(ReportIo, ExactDelayJson) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const std::string j = to_json(c, v.exact_floating_delay());
  EXPECT_NE(j.find("\"topological_delay\":70"), std::string::npos);
  EXPECT_NE(j.find("\"floating_delay\":60"), std::string::npos);
  EXPECT_NE(j.find("\"exact\":true"), std::string::npos);
}

TEST(ReportIo, PessimismJson) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const std::string j = to_json(c, pessimism_report(v));
  EXPECT_NE(j.find("\"worst_topological\":70"), std::string::npos);
  EXPECT_NE(j.find("\"worst_floating\":60"), std::string::npos);
}

TEST(ReportIo, JsonEscaping) {
  Circuit c("we\"ird\\name");
  const NetId a = c.add_net("in\"1");
  c.declare_input(a);
  const NetId o = c.add_net("o");
  c.add_gate(GateType::kBuf, o, {a}, DelaySpec::fixed(1));
  c.declare_output(o);
  c.finalize();
  Verifier v(c);
  const std::string j = to_json(c, v.check_output(o, Time(1)));
  EXPECT_NE(j.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(ReportIo, TimingDiagramShape) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto rep = v.check_output(*c.find_net("s"), Time(60));
  ASSERT_TRUE(rep.vector.has_value());
  const auto sim = simulate_floating(c, *rep.vector);
  const auto path = critical_true_path(c, sim, *c.find_net("s"));
  const std::string d = timing_diagram_string(c, sim, path, 40);
  // One row per path net plus the axis line.
  EXPECT_EQ(std::count(d.begin(), d.end(), '\n'), long(path.size()) + 1);
  EXPECT_NE(d.find("settles@60"), std::string::npos);
  EXPECT_NE(d.find('?'), std::string::npos);
}

TEST(ReportIo, TimingDiagramHandlesConstantNets) {
  Circuit c("k");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  const NetId o = c.add_net("o");
  c.add_gate(GateType::kBuf, o, {a}, DelaySpec::fixed(5));
  c.declare_output(o);
  c.finalize();
  const auto sim = simulate_transition(c, {true}, {true});  // settle -inf
  const std::string d = timing_diagram_string(c, sim, {a, o}, 20);
  EXPECT_NE(d.find("settles@-inf"), std::string::npos);
}

}  // namespace
}  // namespace waveck
