#include "waveform/abstract_waveform.hpp"

#include <gtest/gtest.h>

namespace waveck {
namespace {

TEST(AbstractWaveform, BasicOps) {
  const AbstractWaveform w0{false, Time(0), Time(10)};
  const AbstractWaveform w1{false, Time(5), Time(20)};
  EXPECT_EQ(w0.intersect(w1).lti, LtInterval(Time(5), Time(10)));
  EXPECT_EQ(w0.unite(w1).lti, LtInterval(Time(0), Time(20)));
  EXPECT_FALSE(w0.is_empty());
  EXPECT_TRUE(AbstractWaveform(true, Time(5), Time(4)).is_empty());
}

TEST(AbstractWaveform, EmptiesCompareEqualAcrossClasses) {
  const AbstractWaveform e0{false, LtInterval::empty()};
  const AbstractWaveform e1{true, LtInterval::empty()};
  EXPECT_EQ(e0, e1);
}

TEST(AbstractWaveform, Printing) {
  EXPECT_EQ(AbstractWaveform(true, Time(3), Time(9)).str(), "1|[3,9]");
  EXPECT_EQ(AbstractWaveform(false, LtInterval::empty()).str(), "phi");
}

TEST(AbstractSignal, TopAndBottom) {
  EXPECT_TRUE(AbstractSignal::top().is_top());
  EXPECT_FALSE(AbstractSignal::top().is_bottom());
  EXPECT_TRUE(AbstractSignal::bottom().is_bottom());
  EXPECT_FALSE(AbstractSignal::bottom().single_class());
}

TEST(AbstractSignal, FloatingInputShape) {
  const AbstractSignal f = AbstractSignal::floating_input();
  EXPECT_EQ(f.cls(false), LtInterval::stable_after(Time(0)));
  EXPECT_EQ(f.cls(true), LtInterval::stable_after(Time(0)));
}

TEST(AbstractSignal, ViolatingShape) {
  const AbstractSignal v = AbstractSignal::violating(Time(61));
  EXPECT_EQ(v.cls(false), LtInterval::at_or_after(Time(61)));
  EXPECT_EQ(v.cls(true), LtInterval::at_or_after(Time(61)));
}

TEST(AbstractSignal, ClassOnly) {
  const AbstractSignal s0 = AbstractSignal::class_only(false);
  EXPECT_TRUE(s0.single_class());
  EXPECT_FALSE(s0.the_class());
  EXPECT_TRUE(s0.cls(true).is_empty());
  EXPECT_TRUE(s0.cls(false).is_top());

  const AbstractSignal s1 = AbstractSignal::class_only(true);
  EXPECT_TRUE(s1.single_class());
  EXPECT_TRUE(s1.the_class());
}

TEST(AbstractSignal, IntersectUniteComponentwise) {
  const AbstractSignal a{LtInterval(Time(0), Time(10)),
                         LtInterval(Time(5), Time(7))};
  const AbstractSignal b{LtInterval(Time(8), Time(20)),
                         LtInterval::empty()};
  const AbstractSignal i = a.intersect(b);
  EXPECT_EQ(i.cls(false), LtInterval(Time(8), Time(10)));
  EXPECT_TRUE(i.cls(true).is_empty());
  const AbstractSignal u = a.unite(b);
  EXPECT_EQ(u.cls(false), LtInterval(Time(0), Time(20)));
  EXPECT_EQ(u.cls(true), LtInterval(Time(5), Time(7)));
}

TEST(AbstractSignal, NarrownessIsStrictSubset) {
  const AbstractSignal a{LtInterval(Time(0), Time(10)),
                         LtInterval(Time(0), Time(10))};
  AbstractSignal b = a;
  EXPECT_FALSE(b.narrower_than(a));
  b.cls(true) = LtInterval(Time(1), Time(10));
  EXPECT_TRUE(b.narrower_than(a));
  EXPECT_FALSE(a.narrower_than(b));
}

TEST(AbstractSignal, LatestAndEarliest) {
  const AbstractSignal a{LtInterval(Time(0), Time(10)),
                         LtInterval(Time(-3), Time(25))};
  EXPECT_EQ(a.latest(), Time(25));
  EXPECT_EQ(a.earliest_lmin(), Time(-3));
  EXPECT_EQ(AbstractSignal::bottom().latest(), Time::neg_inf());

  AbstractSignal one_class = a;
  one_class.cls(true) = LtInterval::empty();
  EXPECT_EQ(one_class.latest(), Time(10));
}

TEST(AbstractSignal, HasTransitionAtOrAfter) {
  const AbstractSignal a{LtInterval(Time(0), Time(10)),
                         LtInterval::empty()};
  EXPECT_TRUE(a.has_transition_at_or_after(Time(10)));
  EXPECT_FALSE(a.has_transition_at_or_after(Time(11)));
  EXPECT_FALSE(AbstractSignal::bottom().has_transition_at_or_after(Time(0)));
}

TEST(AbstractSignal, Printing) {
  const AbstractSignal a{LtInterval(Time(35), Time(75)), LtInterval::empty()};
  EXPECT_EQ(a.str(), "(0|[35,75], 1|phi)");
}

}  // namespace
}  // namespace waveck
