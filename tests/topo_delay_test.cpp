#include "netlist/topo_delay.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"

namespace waveck {
namespace {

TEST(TopoDelay, HrapcenkoTopIs70) {
  const Circuit c = gen::hrapcenko(10);
  EXPECT_EQ(topological_delay(c), Time(70));
}

TEST(TopoDelay, ArrivalPerNet) {
  const Circuit c = gen::hrapcenko(10);
  const auto top = topo_arrival(c);
  auto at = [&](const char* n) { return top[c.find_net(n)->index()]; };
  EXPECT_EQ(at("e1"), Time(0));
  EXPECT_EQ(at("n1"), Time(10));
  EXPECT_EQ(at("n2"), Time(20));
  EXPECT_EQ(at("n3"), Time(30));
  EXPECT_EQ(at("n4"), Time(40));
  EXPECT_EQ(at("n5"), Time(50));
  EXPECT_EQ(at("n6"), Time(50));
  EXPECT_EQ(at("n7"), Time(60));
  EXPECT_EQ(at("s"), Time(70));
}

TEST(TopoDelay, ToTarget) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  const auto dist = topo_to_target(c, s);
  auto at = [&](const char* n) { return dist[c.find_net(n)->index()]; };
  EXPECT_EQ(at("s"), Time(0));
  EXPECT_EQ(at("n7"), Time(10));
  EXPECT_EQ(at("n5"), Time(10));
  EXPECT_EQ(at("n4"), Time(30));  // via n6/n7 (longer than via n5)
  EXPECT_EQ(at("n1"), Time(60));
  EXPECT_EQ(at("e1"), Time(70));
  // e3 reaches s through both g2 (60 left) and g6 (30 left): max wins.
  EXPECT_EQ(at("e3"), Time(60));
}

TEST(TopoDelay, UnreachableIsNegInf) {
  Circuit c("u");
  const NetId a = c.add_net("a");
  const NetId b = c.add_net("b");
  const NetId x = c.add_net("x");
  const NetId y = c.add_net("y");
  c.declare_input(a);
  c.declare_input(b);
  c.add_gate(GateType::kNot, x, {a}, DelaySpec::fixed(1));
  c.add_gate(GateType::kNot, y, {b}, DelaySpec::fixed(1));
  c.declare_output(x);
  c.declare_output(y);
  c.finalize();
  const auto dist = topo_to_target(c, x);
  EXPECT_EQ(dist[b.index()], Time::neg_inf());
  EXPECT_EQ(dist[y.index()], Time::neg_inf());
  EXPECT_EQ(dist[a.index()], Time(1));
}

TEST(TopoDelay, LongestPathWitness) {
  const Circuit c = gen::hrapcenko(10);
  const auto path = longest_path_to(c, *c.find_net("s"));
  ASSERT_GE(path.size(), 2u);
  // Starts at an input, ends at s, and is consistent with top = 70: 8 gates.
  EXPECT_TRUE(c.net(path.front()).is_primary_input);
  EXPECT_EQ(path.back(), *c.find_net("s"));
  EXPECT_EQ(path.size(), 8u);  // e?, n1, n2, n3, n4, n6, n7, s
}

TEST(TopoDelay, MinArrivalBoundsMaxArrival) {
  Circuit c = gen::carry_skip_adder(8, 4);
  for (GateId g : c.all_gates()) {
    c.gate_mut(g).delay = DelaySpec{3, 10};
  }
  const auto lo = topo_arrival_min(c);
  const auto hi = topo_arrival(c);
  for (NetId n : c.all_nets()) {
    EXPECT_LE(lo[n.index()], hi[n.index()]) << c.net(n).name;
  }
  // On the carry-skip structure the shortest path into cout is the skip
  // route: strictly shorter than the longest.
  const NetId cout = *c.find_net("cout");
  EXPECT_LT(lo[cout.index()], hi[cout.index()]);
}

TEST(TopoDelay, MinArrivalUsesShortestPathAndDmin) {
  Circuit c("m");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  const NetId x = c.add_net("x"), y = c.add_net("y"), z = c.add_net("z");
  c.add_gate(GateType::kNot, x, {a}, DelaySpec{2, 9});
  c.add_gate(GateType::kNot, y, {x}, DelaySpec{3, 7});
  c.add_gate(GateType::kAnd, z, {y, a}, DelaySpec{1, 4});
  c.declare_output(z);
  c.finalize();
  const auto lo = topo_arrival_min(c);
  EXPECT_EQ(lo[z.index()], Time(1));  // via the direct a input
  EXPECT_EQ(lo[y.index()], Time(5));  // 2 + 3
}

TEST(TopoDelay, CarrySkipTopGrowsWithWidth) {
  Circuit small = gen::carry_skip_adder(8, 4);
  Circuit big = gen::carry_skip_adder(16, 4);
  small.set_uniform_delay(DelaySpec::fixed(10));
  big.set_uniform_delay(DelaySpec::fixed(10));
  EXPECT_LT(topological_delay(small), topological_delay(big));
}

}  // namespace
}  // namespace waveck
