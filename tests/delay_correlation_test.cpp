// Component delay correlation (extension, paper reference [1]).
#include "analysis/delay_correlation.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

ConstraintSystem checked(const Circuit& c, NetId s, Time delta) {
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(delta));
  cs.schedule_all();
  cs.reach_fixpoint();
  return cs;
}

/// Chain of three DELAY elements, each [5, 10], sharing one delay variable.
Circuit shared_chain() {
  Circuit c("chain3");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  NetId cur = a;
  for (int i = 0; i < 3; ++i) {
    const NetId nxt = c.add_net("x" + std::to_string(i));
    DelaySpec d{5, 10};
    d.group = 0;
    c.add_gate(GateType::kDelay, nxt, {cur}, d);
    cur = nxt;
  }
  c.declare_output(cur);
  c.finalize();
  return c;
}

/// Two matched DELAY instances (one group) on parallel paths; the timing
/// requirement only constrains the first path directly.
Circuit matched_pair(bool grouped) {
  Circuit c("pair");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  DelaySpec d{5, 10};
  d.group = grouped ? 0 : -1;
  const NetId u = c.add_net("u");
  const NetId w = c.add_net("w");
  c.add_gate(GateType::kDelay, u, {a}, d);
  d.group = grouped ? 0 : -1;
  c.add_gate(GateType::kDelay, w, {a}, d);
  c.declare_output(u);
  c.declare_output(w);
  c.finalize();
  return c;
}

TEST(DelayCorrelation, SharedVariablePropagatesAcrossInstances) {
  // Require u to transition at/after 9: instance 1's window becomes
  // [9, 10]; correlation pins the *other* matched instance too.
  Circuit c = matched_pair(true);
  ConstraintSystem cs = checked(c, *c.find_net("u"), Time(9));
  ASSERT_FALSE(cs.inconsistent());
  const auto stats = apply_delay_correlation(cs, c);
  EXPECT_FALSE(stats.proved_no_violation);
  EXPECT_GT(stats.gates_narrowed, 0u);
  for (GateId g : c.all_gates()) {
    EXPECT_GE(c.gate(g).delay.dmin, 9) << g.index();
    EXPECT_EQ(c.gate(g).delay.dmax, 10);
  }
}

TEST(DelayCorrelation, UncorrelatedInstanceUnaffected) {
  Circuit c = matched_pair(false);
  ConstraintSystem cs = checked(c, *c.find_net("u"), Time(9));
  apply_delay_correlation(cs, c);
  // Instance driving u narrows; the independent sibling keeps [5, 10].
  const GateId g_w = c.net(*c.find_net("w")).driver;
  EXPECT_EQ(c.gate(g_w).delay.dmin, 5);
  const GateId g_u = c.net(*c.find_net("u")).driver;
  EXPECT_GE(c.gate(g_u).delay.dmin, 9);
}

TEST(DelayCorrelation, CumulativeBoundIsIntervalConsistentOnly) {
  // 3 chained shared instances, requirement 27: the true relational bound
  // is D >= 9 (3D >= 27) but interval consistency -- like the CLP engine
  // the paper builds on -- converges at 27 - (0+10) - 10 = 7. Document the
  // precision point and check soundness of what is derived.
  Circuit c = shared_chain();
  const NetId s = *c.find_net("x2");
  ConstraintSystem cs = checked(c, s, Time(27));
  ASSERT_FALSE(cs.inconsistent());
  const auto stats = apply_delay_correlation(cs, c);
  EXPECT_FALSE(stats.proved_no_violation);
  for (GateId g : c.all_gates()) {
    EXPECT_EQ(c.gate(g).delay.dmin, 7) << g.index();
    EXPECT_EQ(c.gate(g).delay.dmax, 10);
  }
}

TEST(DelayCorrelation, RefutesContradictoryRequirements) {
  // Shared variable D in [5,10]; the checked path needs 3D >= 28 (D >= 10)
  // while a parallel single-stage path into an AND side input needs the
  // same D small: correlation detects the clash that independent intervals
  // miss.
  Circuit c("clash");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  DelaySpec d{5, 10};
  d.group = 0;
  // Long: 3 correlated delays; the check needs them slow.
  NetId cur = a;
  for (int i = 0; i < 3; ++i) {
    const NetId nxt = c.add_net("l" + std::to_string(i));
    c.add_gate(GateType::kDelay, nxt, {cur}, d);
    cur = nxt;
  }
  // Side: one correlated delay, then a NOT whose output gates the long
  // path's tail; side signal must be stable *early* for the violation, so
  // its D must be small.
  const NetId sd = c.add_net("sd");
  c.add_gate(GateType::kDelay, sd, {a}, d);
  const NetId ns = c.add_net("ns");
  c.add_gate(GateType::kNot, ns, {sd}, DelaySpec{0, 0});
  const NetId out = c.add_net("out");
  c.add_gate(GateType::kAnd, out, {cur, ns}, DelaySpec{0, 0});
  c.declare_output(out);
  c.finalize();

  // Violation requires transitions on `out` at/after 30: the long path
  // needs 3D >= 30 -> D = 10; the AND's non-controlling side requirement
  // forces ns (hence sd) stable by... nothing locally -- but D = 10 pushes
  // sd/ns transitions to 10, which is fine; so pick the bound where only
  // the mutual requirement bites: delta = 28 -> D >= 9.34 -> D = 10.
  const TimingCheck check{out, Time(30)};
  ConstraintSystem cs = checked(c, out, Time(30));
  if (!cs.inconsistent()) {
    const auto stats = apply_delay_correlation(cs, c);
    // Either refuted or every correlated instance pinned at 10.
    if (!stats.proved_no_violation) {
      for (GateId g : c.all_gates()) {
        if (c.gate(g).delay.group == 0) {
          EXPECT_EQ(c.gate(g).delay.dmin, 10);
        }
      }
    }
  }
  (void)check;
}

TEST(DelayCorrelation, InfeasibleWindowProvesNoViolation) {
  // Requirement beyond the chain's reach even at dmax: the correlation
  // window is empty.
  Circuit c = shared_chain();
  const NetId s = *c.find_net("x2");
  ConstraintSystem cs = checked(c, s, Time(31));
  if (cs.inconsistent()) {
    SUCCEED();  // plain narrowing already got it (expected: 3*10 = 30 < 31)
    return;
  }
  const auto stats = apply_delay_correlation(cs, c);
  EXPECT_TRUE(stats.proved_no_violation);
}

TEST(DelayCorrelation, VerifierOptionEndToEnd) {
  // Through the Verifier: a check that only correlation can refute.
  // Chain of 3 shared [5,10] delays plus an XOR reconvergence consuming
  // both the chain end and a 1-stage correlated branch. Requiring delta
  // between the correlated and uncorrelated bounds separates the engines.
  Circuit c("e2e");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  DelaySpec d{5, 10};
  d.group = 7;
  NetId cur = a;
  for (int i = 0; i < 2; ++i) {
    const NetId nxt = c.add_net("l" + std::to_string(i));
    c.add_gate(GateType::kDelay, nxt, {cur}, d);
    cur = nxt;
  }
  c.declare_output(cur);
  c.finalize();

  // Without correlation the chain reaches 2*10 = 20; with the shared
  // variable it still reaches 20 (both at dmax) -- sanity: conclusions
  // agree at the boundary.
  VerifyOptions with;
  with.use_delay_correlation = true;
  VerifyOptions without;
  Verifier v_with(c, with);
  Verifier v_without(c, without);
  EXPECT_EQ(v_with.check_output(cur, Time(21)).conclusion,
            CheckConclusion::kNoViolation);
  EXPECT_EQ(v_without.check_output(cur, Time(21)).conclusion,
            CheckConclusion::kNoViolation);
  EXPECT_EQ(v_with.check_output(cur, Time(20)).conclusion,
            v_without.check_output(cur, Time(20)).conclusion);
}

TEST(DelayCorrelation, SoundOnSuiteCircuit) {
  // Correlation with arbitrary groups on fixed (point) delays must never
  // change any conclusion: windows always contain the point delay.
  Circuit c = gen::prepare_for_experiment(gen::c17());
  std::int32_t gid = 0;
  for (GateId g : c.all_gates()) {
    c.gate_mut(g).delay.group = gid++ % 3;
  }
  VerifyOptions with;
  with.use_delay_correlation = true;
  Verifier v_with(c, with);
  Verifier v_plain(c);
  const auto e_with = v_with.exact_floating_delay();
  const auto e_plain = v_plain.exact_floating_delay();
  EXPECT_EQ(e_with.delay, e_plain.delay);
}

}  // namespace
}  // namespace waveck
