// Shared hand-crafted circuits for the test suites.
#pragma once

#include <string>

#include "constraints/constraint_system.hpp"
#include "gen/generators.hpp"

namespace waveck::testing {

/// Two parallel chains from stem `a`, each gated twice with contradictory
/// requirements on a's final value (path A needs a=1 at gA and a=0 at hA;
/// path B the mirror image). The OR merge keeps backward narrowing
/// ambiguous -- either branch could carry the late transition -- so the
/// plain fixpoint and the dominator implications stay at P for delta in
/// (50, 70], yet no violation exists there: stem correlation or case
/// analysis is required. All gates have delay 10; topological delay 70,
/// floating delay 50.
inline Circuit gated_contradiction() {
  Circuit c("stemx");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  const DelaySpec d = DelaySpec::fixed(10);
  auto chain3 = [&](const std::string& p, NetId from) {
    NetId cur = from;
    for (int i = 0; i < 3; ++i) {
      const NetId nxt = c.add_net(p + std::to_string(i));
      c.add_gate(GateType::kDelay, nxt, {cur}, d);
      cur = nxt;
    }
    return cur;
  };
  const NetId na = c.add_net("na");
  c.add_gate(GateType::kNot, na, {a}, d);
  const NetId la = chain3("la", a);
  const NetId lb = chain3("lb", a);
  const NetId ga = c.add_net("ga"), ma = c.add_net("ma"), ha = c.add_net("ha");
  c.add_gate(GateType::kAnd, ga, {la, a}, d);   // needs a = 1
  c.add_gate(GateType::kDelay, ma, {ga}, d);
  c.add_gate(GateType::kAnd, ha, {ma, na}, d);  // needs a = 0
  const NetId gb = c.add_net("gb"), mb = c.add_net("mb"), hb = c.add_net("hb");
  c.add_gate(GateType::kAnd, gb, {lb, na}, d);  // needs a = 0
  c.add_gate(GateType::kDelay, mb, {gb}, d);
  c.add_gate(GateType::kAnd, hb, {mb, a}, d);   // needs a = 1
  const NetId s = c.add_net("s");
  c.add_gate(GateType::kOr, s, {ha, hb}, d);
  c.declare_output(s);
  c.finalize();
  return c;
}

/// Standard timing-check setup: floating inputs, delta restriction on s,
/// fixpoint reached.
inline ConstraintSystem checked_system(const Circuit& c, NetId s,
                                       Time delta) {
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(delta));
  cs.schedule_all();
  cs.reach_fixpoint();
  return cs;
}

}  // namespace waveck::testing
