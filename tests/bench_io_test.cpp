#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "common/diagnostics.hpp"
#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"

namespace waveck {
namespace {

constexpr const char* kC17 = R"(# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIo, ParseC17) {
  const Circuit c = read_bench_string(kC17, "c17");
  EXPECT_EQ(c.num_gates(), 6u);
  EXPECT_EQ(c.inputs().size(), 5u);
  EXPECT_EQ(c.outputs().size(), 2u);
  for (GateId g : c.all_gates()) {
    EXPECT_EQ(c.gate(g).type, GateType::kNand);
  }
}

TEST(BenchIo, ParsedC17MatchesEmbeddedGenerator) {
  const Circuit parsed = read_bench_string(kC17, "c17");
  const Circuit built = gen::c17();
  EXPECT_EQ(parsed.num_gates(), built.num_gates());
  EXPECT_EQ(parsed.num_nets(), built.num_nets());
  EXPECT_EQ(parsed.inputs().size(), built.inputs().size());
}

TEST(BenchIo, RoundTrip) {
  const Circuit c = read_bench_string(kC17, "c17");
  const std::string text = write_bench_string(c);
  const Circuit c2 = read_bench_string(text, "c17");
  EXPECT_EQ(c2.num_gates(), c.num_gates());
  EXPECT_EQ(c2.num_nets(), c.num_nets());
  EXPECT_EQ(c2.inputs().size(), c.inputs().size());
  EXPECT_EQ(c2.outputs().size(), c.outputs().size());
  // Second round trip is textually stable.
  EXPECT_EQ(write_bench_string(c2), text);
}

TEST(BenchIo, AllGateKeywords) {
  const Circuit c = read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
t1 = AND(a, b)
t2 = OR(a, b)
t3 = XOR(t1, t2)
t4 = XNOR(t1, t2)
t5 = NOT(t3)
t6 = INV(t4)
t7 = BUF(t5)
t8 = BUFF(t6)
t9 = DELAY(t7)
t10 = MUX(c, t8, t9)
t11 = NOR(t9, t10)
z = NAND(t10, t11)
)");
  EXPECT_EQ(c.num_gates(), 12u);
  EXPECT_EQ(c.gate(c.net(*c.find_net("t10")).driver).type, GateType::kMux);
}

TEST(BenchIo, CaseInsensitiveKeywords) {
  const Circuit c = read_bench_string(
      "input(a)\noutput(z)\nz = nand(a, a)\n");
  EXPECT_EQ(c.num_gates(), 1u);
  EXPECT_EQ(c.gate(GateId{0u}).type, GateType::kNand);
}

TEST(BenchIo, CommentsAndBlanksIgnored) {
  const Circuit c = read_bench_string(
      "# header\n\nINPUT(a)  # trailing\nOUTPUT(z)\nz = BUF(a)\n\n");
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(BenchIo, RejectsSequential) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"),
      ParseError);
}

TEST(BenchIo, RejectsUnknownKeyword) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nz = FROB(a)\n"), ParseError);
}

TEST(BenchIo, RejectsMalformed) {
  EXPECT_THROW(read_bench_string("INPUT a\n"), ParseError);
  EXPECT_THROW(read_bench_string("z = AND(a, b\n"), ParseError);
  EXPECT_THROW(read_bench_string("z AND(a, b)\n"), ParseError);
  EXPECT_THROW(read_bench_string("INPUT(a)\nz = AND()\n"), ParseError);
}

TEST(BenchIo, RejectsUndrivenNet) {
  // `b` never defined and not an input: structural error at finalize.
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a, b)\n"),
               CircuitError);
}

TEST(BenchIo, RoundTripSuiteCircuitsAtScale) {
  // Write -> read -> write must be stable for every generated benchmark,
  // including the NOR-mapped multi-thousand-gate ones.
  for (const char* name : {"c432", "c1908", "c2670"}) {
    const Circuit raw = gen::build_raw(name);
    const std::string text = write_bench_string(raw);
    const Circuit back = read_bench_string(text, raw.name());
    EXPECT_EQ(back.num_gates(), raw.num_gates()) << name;
    EXPECT_EQ(back.num_nets(), raw.num_nets()) << name;
    EXPECT_EQ(write_bench_string(back), text) << name;
  }
}

TEST(BenchIo, ParseErrorCarriesLineNumber) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

}  // namespace
}  // namespace waveck
