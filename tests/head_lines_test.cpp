#include "analysis/head_lines.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"

namespace waveck {
namespace {

TEST(HeadLines, FanoutFreeChainHeadIsTheFrontier) {
  // a -> x -> y feeds a gate that also sees stem s: y is the head line.
  Circuit c("h");
  const NetId a = c.add_net("a"), s = c.add_net("s");
  c.declare_input(a);
  c.declare_input(s);
  const NetId x = c.add_net("x"), y = c.add_net("y");
  const NetId u = c.add_net("u"), w = c.add_net("w"), z = c.add_net("z");
  c.add_gate(GateType::kNot, x, {a});
  c.add_gate(GateType::kBuf, y, {x});
  c.add_gate(GateType::kAnd, u, {y, s});
  c.add_gate(GateType::kOr, w, {s, a});  // wait: a reused -> a is a stem!
  c.add_gate(GateType::kAnd, z, {u, w});
  c.declare_output(z);
  c.finalize();
  const HeadLines hl = compute_head_lines(c);
  // `a` and `s` fan out twice: both bound stems; x, y bound too (fed by a).
  EXPECT_TRUE(hl.is_bound(a));
  EXPECT_TRUE(hl.is_bound(s));
  EXPECT_TRUE(hl.is_bound(x));
  EXPECT_FALSE(hl.is_head(y));
}

TEST(HeadLines, PureFreeRegion) {
  // b's cone is fanout-free up to gate u whose output becomes bound via s.
  Circuit c("h2");
  const NetId b = c.add_net("b"), s = c.add_net("s");
  c.declare_input(b);
  c.declare_input(s);
  const NetId nb = c.add_net("nb");
  const NetId u = c.add_net("u"), v = c.add_net("v"), z = c.add_net("z");
  c.add_gate(GateType::kNot, nb, {b});
  c.add_gate(GateType::kAnd, u, {nb, s});
  c.add_gate(GateType::kNot, v, {s});
  c.add_gate(GateType::kOr, z, {u, v});
  c.declare_output(z);
  c.finalize();
  const HeadLines hl = compute_head_lines(c);
  EXPECT_FALSE(hl.is_bound(b));
  EXPECT_FALSE(hl.is_bound(nb));
  EXPECT_TRUE(hl.is_bound(u));   // fed by stem s
  EXPECT_TRUE(hl.is_head(nb));   // frontier of the free region
  EXPECT_FALSE(hl.is_head(b));   // interior free line
}

TEST(HeadLines, FanoutFreeCircuitHeadsAreOutputs) {
  // A pure chain: no stems anywhere; the primary output is the head.
  Circuit c("chain");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  const NetId x = c.add_net("x"), y = c.add_net("y");
  c.add_gate(GateType::kNot, x, {a});
  c.add_gate(GateType::kNot, y, {x});
  c.declare_output(y);
  c.finalize();
  const HeadLines hl = compute_head_lines(c);
  for (NetId n : c.all_nets()) EXPECT_FALSE(hl.is_bound(n));
  EXPECT_TRUE(hl.is_head(y));
  EXPECT_FALSE(hl.is_head(x));
}

TEST(HeadLines, SuiteCircuitsPartitionConsistently) {
  for (const char* name : {"c432", "c1908"}) {
    const Circuit c = gen::build_raw(name);
    const HeadLines hl = compute_head_lines(c);
    for (NetId n : c.all_nets()) {
      // head => free.
      if (hl.is_head(n)) EXPECT_FALSE(hl.is_bound(n)) << c.net(n).name;
      // free non-head, non-PO lines feed only free gates.
      if (!hl.is_bound(n) && !hl.is_head(n)) {
        for (GateId g : c.net(n).fanouts) {
          EXPECT_FALSE(hl.is_bound(c.gate(g).out))
              << name << " " << c.net(n).name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace waveck
