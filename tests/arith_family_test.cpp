#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

std::vector<bool> bits_of(std::uint64_t v, unsigned n) {
  std::vector<bool> out(n);
  for (unsigned i = 0; i < n; ++i) out[i] = (v >> i) & 1;
  return out;
}

std::uint64_t read_word(const Circuit& c, const FloatingResult& r,
                        const std::string& prefix, unsigned n) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < n; ++i) {
    const auto net = c.find_net(prefix + std::to_string(i));
    EXPECT_TRUE(net.has_value()) << prefix << i;
    if (net) v |= std::uint64_t{r.value[net->index()]} << i;
  }
  return v;
}

class AdderArchitectures
    : public ::testing::TestWithParam<std::tuple<const char*, unsigned>> {
 public:
  static Circuit build(const std::string& kind, unsigned bits) {
    if (kind == "ripple") return gen::ripple_carry_adder(bits);
    if (kind == "skip") return gen::carry_skip_adder(bits, 4);
    if (kind == "select") return gen::carry_select_adder(bits, 4);
    return gen::kogge_stone_adder(bits);
  }
};

TEST_P(AdderArchitectures, AddsCorrectly) {
  const auto [kind, bits] = GetParam();
  const Circuit c = build(kind, bits);
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  for (std::uint64_t a = 0; a <= mask; a += (bits > 6 ? 37 : 1)) {
    for (std::uint64_t b = 0; b <= mask; b += (bits > 6 ? 41 : 1)) {
      for (bool cin : {false, true}) {
        auto v = bits_of(a, bits);
        const auto bv = bits_of(b, bits);
        v.insert(v.end(), bv.begin(), bv.end());
        v.push_back(cin);
        const auto r = simulate_floating(c, v);
        const std::uint64_t sum =
            read_word(c, r, "s", bits) |
            (std::uint64_t{r.value[c.find_net("cout")->index()]} << bits);
        ASSERT_EQ(sum, a + b + cin) << kind << " " << a << "+" << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Family, AdderArchitectures,
    ::testing::Combine(::testing::Values("ripple", "skip", "select", "ks"),
                       ::testing::Values(4u, 8u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AdderArchitectures, KoggeStoneIsLogDepth) {
  Circuit ks = gen::kogge_stone_adder(16);
  Circuit rc = gen::ripple_carry_adder(16);
  ks.set_uniform_delay(DelaySpec::fixed(10));
  rc.set_uniform_delay(DelaySpec::fixed(10));
  EXPECT_LT(topological_delay(ks), topological_delay(rc));
}

TEST(AdderArchitectures, CarrySelectHasFalsePaths) {
  Circuit c = gen::carry_select_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const Time exact = exhaustive_floating_delay(c, 17);
  EXPECT_LT(exact, topological_delay(c));
  // The verifier agrees with the oracle end-to-end.
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.delay, exact);
}

TEST(AdderArchitectures, KoggeStoneVerifierMatchesOracle) {
  Circuit c = gen::kogge_stone_adder(6);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.delay, exhaustive_floating_delay(c, 13));
}

TEST(WallaceMultiplier, MultipliesCorrectly) {
  const Circuit c = gen::wallace_multiplier(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      auto v = bits_of(a, 4);
      const auto bv = bits_of(b, 4);
      v.insert(v.end(), bv.begin(), bv.end());
      const auto r = simulate_floating(c, v);
      ASSERT_EQ(read_word(c, r, "p", 8), a * b) << a << "*" << b;
    }
  }
}

TEST(WallaceMultiplier, SpotCheck6x6) {
  const Circuit c = gen::wallace_multiplier(6);
  for (std::uint64_t a : {0ull, 1ull, 33ull, 63ull}) {
    for (std::uint64_t b : {0ull, 7ull, 63ull}) {
      auto v = bits_of(a, 6);
      const auto bv = bits_of(b, 6);
      v.insert(v.end(), bv.begin(), bv.end());
      const auto r = simulate_floating(c, v);
      ASSERT_EQ(read_word(c, r, "p", 12), a * b);
    }
  }
}

TEST(WallaceMultiplier, ReductionNoDeeperThanArrayAt16) {
  // With a plain ripple CPA the final row dominates both architectures;
  // the log-depth 3:2 reduction still keeps Wallace at or below the array
  // once the width is large enough to matter.
  Circuit w = gen::wallace_multiplier(16);
  Circuit arr = gen::array_multiplier(16);
  w.set_uniform_delay(DelaySpec::fixed(10));
  arr.set_uniform_delay(DelaySpec::fixed(10));
  EXPECT_LE(topological_delay(w), topological_delay(arr));
}

}  // namespace
}  // namespace waveck
