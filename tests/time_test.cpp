#include "common/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace waveck {
namespace {

TEST(Time, FiniteConstructionAndValue) {
  const Time t(42);
  EXPECT_TRUE(t.is_finite());
  EXPECT_EQ(t.value(), 42);
  EXPECT_FALSE(t.is_neg_inf());
  EXPECT_FALSE(t.is_pos_inf());
}

TEST(Time, Infinities) {
  EXPECT_TRUE(Time::neg_inf().is_neg_inf());
  EXPECT_TRUE(Time::pos_inf().is_pos_inf());
  EXPECT_FALSE(Time::neg_inf().is_finite());
  EXPECT_FALSE(Time::pos_inf().is_finite());
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::neg_inf(), Time(-1000000));
  EXPECT_LT(Time(-5), Time(3));
  EXPECT_LT(Time(1000000), Time::pos_inf());
  EXPECT_LT(Time::neg_inf(), Time::pos_inf());
  EXPECT_EQ(Time(7), Time(7));
}

TEST(Time, SaturatingAddition) {
  EXPECT_EQ(Time(5) + 3, Time(8));
  EXPECT_EQ(Time(5) - 8, Time(-3));
  EXPECT_EQ(Time::neg_inf() + 1000, Time::neg_inf());
  EXPECT_EQ(Time::pos_inf() - 1000, Time::pos_inf());
}

TEST(Time, MinMax) {
  EXPECT_EQ(Time::min(Time(3), Time(7)), Time(3));
  EXPECT_EQ(Time::max(Time(3), Time(7)), Time(7));
  EXPECT_EQ(Time::max(Time::neg_inf(), Time(0)), Time(0));
  EXPECT_EQ(Time::min(Time::pos_inf(), Time(0)), Time(0));
}

TEST(Time, Streaming) {
  std::ostringstream os;
  os << Time(12) << " " << Time::neg_inf() << " " << Time::pos_inf();
  EXPECT_EQ(os.str(), "12 -inf +inf");
}

TEST(Time, DefaultIsZero) { EXPECT_EQ(Time{}, Time(0)); }

}  // namespace
}  // namespace waveck
