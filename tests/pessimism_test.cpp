#include "verify/pessimism.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

TEST(Pessimism, PerOutputExactDelayMatchesOracle) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  for (NetId o : c.outputs()) {
    const auto od = exact_output_delay(v, o);
    ASSERT_TRUE(od.exact) << c.net(o).name;
    EXPECT_EQ(od.floating, exhaustive_floating_delay(c, o, 17))
        << c.net(o).name;
  }
}

TEST(Pessimism, ReportSortedByGapAndConsistent) {
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c);
  const auto rep = pessimism_report(v);
  ASSERT_EQ(rep.outputs.size(), c.outputs().size());
  EXPECT_EQ(rep.worst_topological, Time(70));
  EXPECT_EQ(rep.worst_floating, Time(60));
  for (const auto& od : rep.outputs) {
    EXPECT_LE(od.floating, od.topological);
  }
  for (std::size_t i = 1; i < rep.outputs.size(); ++i) {
    const auto gap = [](const OutputDelay& d) {
      return d.topological.value() - d.floating.value();
    };
    EXPECT_GE(gap(rep.outputs[i - 1]), gap(rep.outputs[i]));
  }
}

TEST(Pessimism, FalsePathGapVisible) {
  Circuit c = gen::alu({.width = 4});
  gen::append_false_path_block(c, gen::FalsePathKind::kLocalChain, 16);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto rep = pessimism_report(v);
  // The false-path output heads the gap ranking.
  ASSERT_FALSE(rep.outputs.empty());
  EXPECT_EQ(c.net(rep.outputs.front().output).name, "fp_out");
  EXPECT_LT(rep.outputs.front().floating, rep.outputs.front().topological);
}

TEST(Pessimism, OutputWithNoPathsIsDegenerate) {
  Circuit c("deg");
  const NetId a = c.add_net("a");
  c.declare_input(a);
  const NetId x = c.add_net("x");
  c.add_gate(GateType::kBuf, x, {a}, DelaySpec::fixed(5));
  c.declare_output(x);
  c.finalize();
  Verifier v(c);
  const auto od = exact_output_delay(v, x);
  EXPECT_EQ(od.topological, Time(5));
  EXPECT_EQ(od.floating, Time(5));
}

}  // namespace
}  // namespace waveck
