#include "waveform/lt_interval.hpp"

#include <gtest/gtest.h>

namespace waveck {
namespace {

constexpr Time kNI = Time::neg_inf();
constexpr Time kPI = Time::pos_inf();

TEST(LtInterval, TopContainsEverything) {
  const LtInterval top = LtInterval::top();
  EXPECT_TRUE(top.is_top());
  EXPECT_FALSE(top.is_empty());
  EXPECT_TRUE(top.contains(Time(0)));
  EXPECT_TRUE(top.contains(kNI));
  EXPECT_TRUE(top.contains(kPI));
}

TEST(LtInterval, EmptyWhenBoundsCross) {
  const LtInterval e{Time(5), Time(4)};
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e, LtInterval::empty());
  EXPECT_FALSE(LtInterval(Time(5), Time(5)).is_empty());
}

TEST(LtInterval, AllEmptiesEqual) {
  EXPECT_EQ(LtInterval(Time(10), Time(0)), LtInterval(Time(99), Time(-99)));
  EXPECT_EQ(LtInterval::empty(), LtInterval(Time(1), Time(0)));
}

TEST(LtInterval, IntersectBasic) {
  const LtInterval a{Time(0), Time(10)};
  const LtInterval b{Time(5), Time(20)};
  EXPECT_EQ(a.intersect(b), LtInterval(Time(5), Time(10)));
  EXPECT_EQ(b.intersect(a), LtInterval(Time(5), Time(10)));
}

TEST(LtInterval, IntersectDisjointIsEmpty) {
  const LtInterval a{Time(0), Time(3)};
  const LtInterval b{Time(4), Time(9)};
  EXPECT_TRUE(a.intersect(b).is_empty());
}

TEST(LtInterval, IntersectWithEmpty) {
  const LtInterval a{Time(0), Time(3)};
  EXPECT_TRUE(a.intersect(LtInterval::empty()).is_empty());
  EXPECT_TRUE(LtInterval::empty().intersect(a).is_empty());
}

TEST(LtInterval, HullIsNarrowestCover) {
  const LtInterval a{Time(0), Time(3)};
  const LtInterval b{Time(10), Time(12)};
  EXPECT_EQ(a.hull(b), LtInterval(Time(0), Time(12)));
  EXPECT_EQ(a.hull(LtInterval::empty()), a);
  EXPECT_EQ(LtInterval::empty().hull(b), b);
}

TEST(LtInterval, Lemma1UnionExactness) {
  // Adjacent or overlapping intervals: hull == true union.
  EXPECT_TRUE(LtInterval(Time(0), Time(3))
                  .union_is_exact(LtInterval(Time(4), Time(9))));
  EXPECT_TRUE(LtInterval(Time(0), Time(5))
                  .union_is_exact(LtInterval(Time(2), Time(9))));
  // A gap of one integer breaks exactness.
  EXPECT_FALSE(LtInterval(Time(0), Time(3))
                   .union_is_exact(LtInterval(Time(5), Time(9))));
  // Empty operands are always exact.
  EXPECT_TRUE(LtInterval::empty().union_is_exact(LtInterval(Time(5), Time(9))));
}

TEST(LtInterval, ContainsInterval) {
  const LtInterval a{Time(0), Time(10)};
  EXPECT_TRUE(a.contains(LtInterval(Time(2), Time(8))));
  EXPECT_TRUE(a.contains(a));
  EXPECT_TRUE(a.contains(LtInterval::empty()));
  EXPECT_FALSE(a.contains(LtInterval(Time(-1), Time(5))));
  EXPECT_FALSE(LtInterval::empty().contains(a));
}

TEST(LtInterval, NarrownessPaperDefinition) {
  const LtInterval w2{Time(0), Time(10)};
  // Strictly tighter on one side, no wider on the other.
  EXPECT_TRUE(LtInterval(Time(1), Time(10)).narrower_than(w2));
  EXPECT_TRUE(LtInterval(Time(0), Time(9)).narrower_than(w2));
  EXPECT_TRUE(LtInterval(Time(1), Time(9)).narrower_than(w2));
  EXPECT_FALSE(w2.narrower_than(w2));
  EXPECT_FALSE(LtInterval(Time(-1), Time(9)).narrower_than(w2));
  EXPECT_TRUE(LtInterval::empty().narrower_than(w2));
  EXPECT_FALSE(w2.narrower_than(LtInterval::empty()));
}

TEST(LtInterval, ShiftForwardBackwardRoundTrip) {
  const LtInterval a{Time(5), Time(9)};
  const LtInterval fwd = a.shift_forward(2, 4);
  EXPECT_EQ(fwd, LtInterval(Time(7), Time(13)));
  // Backward through the same delay window over-covers the original.
  EXPECT_TRUE(fwd.shift_backward(2, 4).contains(a));
  // Fixed delay: exact round trip.
  EXPECT_EQ(a.shift_forward(3, 3).shift_backward(3, 3), a);
}

TEST(LtInterval, ShiftPreservesInfinities) {
  const LtInterval a{kNI, Time(0)};
  EXPECT_EQ(a.shift_forward(10, 10), LtInterval(kNI, Time(10)));
  const LtInterval b{Time(0), kPI};
  EXPECT_EQ(b.shift_backward(10, 10), LtInterval(Time(-10), kPI));
  EXPECT_TRUE(LtInterval::empty().shift_forward(1, 2).is_empty());
}

TEST(LtInterval, FactoryHelpers) {
  EXPECT_EQ(LtInterval::at_or_after(Time(7)), LtInterval(Time(7), kPI));
  EXPECT_EQ(LtInterval::stable_after(Time(0)), LtInterval(kNI, Time(0)));
}

TEST(LtInterval, Printing) {
  EXPECT_EQ(LtInterval(Time(1), Time(2)).str(), "[1,2]");
  EXPECT_EQ(LtInterval::empty().str(), "phi");
  EXPECT_EQ(LtInterval::top().str(), "[-inf,+inf]");
}

}  // namespace
}  // namespace waveck
