#include "common/telemetry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "gen/generators.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::Registry;
using telemetry::ScopedTimer;
using telemetry::StageTimer;
using telemetry::TimeHistogram;
using telemetry::TraceField;

/// Removes whatever sink a test installed, even on assertion failure.
struct SinkGuard {
  ~SinkGuard() { telemetry::set_trace_sink(nullptr); }
};

TEST(Counter, IncAddResetValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, MovesBothWays) {
  Gauge g;
  g.set(10);
  g.add(-15);
  EXPECT_EQ(g.value(), -5);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Gauge, HighWaterTracksPeak) {
  Gauge g;
  EXPECT_EQ(g.high_water(), 0);
  g.set(4);
  g.add(3);  // 7: the peak
  g.add(-5);
  g.set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.high_water(), 7);
  // Lower observations never lower the mark.
  g.raise_high_water(2);
  EXPECT_EQ(g.high_water(), 7);
  g.raise_high_water(11);
  EXPECT_EQ(g.high_water(), 11);
  g.reset();
  EXPECT_EQ(g.high_water(), 0);
  // Negative values leave the (0-initialised) mark alone.
  g.set(-9);
  EXPECT_EQ(g.high_water(), 0);
}

TEST(Gauge, MergeTakesMaxOfPeaks) {
  Registry a;
  Registry b;
  a.gauge("depth").set(3);
  a.gauge("depth").set(1);  // value 1, peak 3
  b.gauge("depth").set(9);
  b.gauge("depth").set(2);  // value 2, peak 9
  a.merge_from(b);
  EXPECT_EQ(a.gauge("depth").value(), 3);      // values add (1 + 2)
  EXPECT_EQ(a.gauge("depth").high_water(), 9);  // peaks max
}

TEST(StageTimer, AccumulatesCallsAndTime) {
  StageTimer t;
  t.add_ns(1500);
  t.add_ns(500);
  EXPECT_EQ(t.calls(), 2u);
  EXPECT_EQ(t.total_ns(), 2000u);
  EXPECT_DOUBLE_EQ(t.seconds(), 2e-6);
}

TEST(ScopedTimer, AddsOnDestruction) {
  StageTimer t;
  { ScopedTimer s(t); }
  EXPECT_EQ(t.calls(), 1u);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0: exact zeros; bucket i: [2^(i-1), 2^i); last bucket: overflow.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower_bound(4), 8u);

  Histogram h;
  h.observe(0);
  h.observe(3);
  h.observe(3);
  h.observe(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(100)), 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  // All-zero observations: bucket 0 is exact.
  Histogram zeros;
  zeros.observe(0);
  zeros.observe(0);
  EXPECT_EQ(zeros.quantile(0.99), 0.0);

  // Every observation is 7 -> bucket [4, 8): any quantile must land inside
  // the bucket's bounds.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(7);
  const double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 8.0);
  // Interpolation is linear in rank: the median of a single full bucket
  // sits at its midpoint.
  EXPECT_DOUBLE_EQ(p50, 6.0);
}

TEST(Histogram, QuantilesAreMonotonic) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(10);     // bucket [8,16)
  for (int i = 0; i < 9; ++i) h.observe(1000);    // bucket [512,1024)
  h.observe(70000);                               // overflow bucket
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  EXPECT_GE(p99, 512.0);
}

TEST(Histogram, SnapshotCarriesQuantiles) {
  Registry reg;
  reg.histogram("test.quantile_hist").observe(12);
  const std::string js = reg.to_json();
  EXPECT_NE(js.find("\"p50\":"), std::string::npos);
  EXPECT_NE(js.find("\"p90\":"), std::string::npos);
  EXPECT_NE(js.find("\"p99\":"), std::string::npos);
}

TEST(TimeHistogram, BucketBoundariesAreInclusiveUpperBounds) {
  // Bucket i holds us <= kBoundsUs[i]; the last bucket is overflow.
  EXPECT_EQ(TimeHistogram::bucket_index(0), 0u);
  EXPECT_EQ(TimeHistogram::bucket_index(50), 0u);
  EXPECT_EQ(TimeHistogram::bucket_index(51), 1u);
  EXPECT_EQ(TimeHistogram::bucket_index(100), 1u);
  EXPECT_EQ(TimeHistogram::bucket_index(1'000), 4u);
  EXPECT_EQ(TimeHistogram::bucket_index(10'000'000), 15u);
  EXPECT_EQ(TimeHistogram::bucket_index(10'000'001),
            TimeHistogram::kBuckets - 1);
  EXPECT_EQ(TimeHistogram::bucket_index(UINT64_MAX),
            TimeHistogram::kBuckets - 1);

  TimeHistogram h;
  h.observe_us(40);
  h.observe_us(40);
  h.observe_us(75);
  h.observe_us(20'000'000);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_us(), 40u + 40u + 75u + 20'000'000u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(TimeHistogram::kBuckets - 1), 1u);
}

TEST(TimeHistogram, ObserveNsDividesToMicroseconds) {
  TimeHistogram h;
  h.observe_ns(49'999);   // 49 us -> bucket 0
  h.observe_ns(250'999);  // 250 us -> still bucket 2 (<= 250)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.sum_us(), 49u + 250u);
}

TEST(TimeHistogram, QuantileInterpolatesAndCapsAtOverflow) {
  TimeHistogram empty;
  EXPECT_EQ(empty.quantile_us(0.5), 0.0);

  // 100 observations all in bucket (100, 250]: the median of a single full
  // bucket sits at its midpoint under linear rank interpolation.
  TimeHistogram h;
  for (int i = 0; i < 100; ++i) h.observe_us(200);
  EXPECT_DOUBLE_EQ(h.quantile_us(0.50), 175.0);
  EXPECT_GT(h.quantile_us(0.99), h.quantile_us(0.10));

  // Overflow bucket reports its lower bound, never infinity.
  TimeHistogram over;
  over.observe_us(99'000'000);
  EXPECT_DOUBLE_EQ(over.quantile_us(0.5),
                   static_cast<double>(TimeHistogram::kBoundsUs.back()));
}

TEST(TimeHistogram, MergeFromAddsBucketsCountAndSum) {
  TimeHistogram a;
  TimeHistogram b;
  a.observe_us(10);
  a.observe_us(2'000);
  b.observe_us(10);
  b.observe_us(60'000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum_us(), 10u + 2'000u + 10u + 60'000u);
  EXPECT_EQ(a.bucket(0), 2u);  // two 10us observations
  EXPECT_EQ(a.bucket(TimeHistogram::bucket_index(2'000)), 1u);
  EXPECT_EQ(a.bucket(TimeHistogram::bucket_index(60'000)), 1u);
  // Source is untouched.
  EXPECT_EQ(b.count(), 2u);

  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum_us(), 0u);
  for (std::size_t i = 0; i < TimeHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), 0u);
  }
}

TEST(TimeHistogram, RegistryExposesJsonAndPrometheus) {
  auto& reg = Registry::global();
  auto& th = reg.time_histogram("test.latency_us");
  EXPECT_EQ(&reg.time_histogram("test.latency_us"), &th);
  th.observe_us(120);
  th.observe_us(3'000);

  const std::string js = reg.to_json();
  EXPECT_NE(js.find("\"time_histograms\""), std::string::npos);
  EXPECT_NE(js.find("\"test.latency_us\""), std::string::npos);
  EXPECT_NE(js.find("\"sum_us\":"), std::string::npos);
  EXPECT_NE(js.find("\"p99_us\":"), std::string::npos);

  const std::string prom = reg.to_prometheus("waveck");
  EXPECT_NE(prom.find("waveck_test_latency_us_bucket{le=\"50\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("waveck_test_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("waveck_test_latency_us_sum"), std::string::npos);
  EXPECT_NE(prom.find("waveck_test_latency_us_count"), std::string::npos);
}

TEST(Registry, MetricsPersistAndSnapshotIsJson) {
  auto& reg = Registry::global();
  auto& c = reg.counter("test.registry_counter");
  c.inc();
  // Same name returns the same storage.
  EXPECT_EQ(&reg.counter("test.registry_counter"), &c);
  reg.histogram("test.registry_hist").observe(5);
  reg.timer("test.registry_timer").add_ns(100);
  reg.gauge("test.registry_gauge").set(-3);

  const std::string js = reg.to_json();
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
  EXPECT_NE(js.find("\"histograms\""), std::string::npos);
  EXPECT_NE(js.find("\"timers\""), std::string::npos);
  EXPECT_NE(js.find("\"test.registry_counter\""), std::string::npos);
  EXPECT_NE(js.find("\"test.registry_gauge\":{\"value\":-3,\"max\":0}"),
            std::string::npos);
  // Balanced braces/brackets => structurally sound for our writer.
  std::int64_t depth = 0;
  for (char ch : js) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(JsonEscape, EscapesControlAndQuotes) {
  EXPECT_EQ(telemetry::json_escape("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(telemetry::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Trace, NoSinkMeansDisabled) {
  telemetry::set_trace_sink(nullptr);
  EXPECT_FALSE(telemetry::trace_enabled());
  // Safe no-op without a sink.
  telemetry::emit("noop", {{"x", 1}});
}

TEST(JsonlTraceSink, WritesOneSchemaCorrectLinePerEvent) {
  SinkGuard guard;
  std::ostringstream os;
  telemetry::JsonlTraceSink sink(os);
  telemetry::set_trace_sink(&sink);
  telemetry::emit("alpha", {{"n", 7},
                            {"flag", true},
                            {"ratio", 0.5},
                            {"name", "a\"b"}});
  telemetry::emit("beta", {});
  telemetry::set_trace_sink(nullptr);
  telemetry::emit("gamma", {{"dropped", 1}});  // sink removed: not written

  EXPECT_EQ(sink.events_written(), 2u);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("{\"ev\":\"", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"seq\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"t\":"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(os.str().find("\"n\":7"), std::string::npos);
  EXPECT_NE(os.str().find("\"flag\":true"), std::string::npos);
  EXPECT_NE(os.str().find("\"name\":\"a\\\"b\""), std::string::npos);
  EXPECT_EQ(os.str().find("gamma"), std::string::npos);
}

TEST(JsonlTraceSink, StampsOpenSpanIds) {
  SinkGuard guard;
  std::ostringstream os;
  telemetry::JsonlTraceSink sink(os);
  telemetry::set_trace_sink(&sink);

  telemetry::emit("outside", {});  // no open span: no chk/dec keys
  {
    telemetry::ScopedCheckSpan span;
    EXPECT_GT(span.id(), 0);
    EXPECT_EQ(telemetry::span_context().chk, span.id());
    EXPECT_EQ(telemetry::span_context().dec, -1);
    telemetry::emit("in_check", {});
    telemetry::span_context().dec = 5;
    telemetry::emit("in_decision", {{"x", 1}});
    telemetry::span_context().dec = -1;
  }
  EXPECT_EQ(telemetry::span_context().chk, -1);
  telemetry::emit("after", {});
  telemetry::set_trace_sink(nullptr);

  std::istringstream in(os.str());
  std::string outside, in_check, in_decision, after;
  std::getline(in, outside);
  std::getline(in, in_check);
  std::getline(in, in_decision);
  std::getline(in, after);
  EXPECT_EQ(outside.find("\"chk\":"), std::string::npos) << outside;
  EXPECT_NE(in_check.find("\"chk\":"), std::string::npos) << in_check;
  EXPECT_EQ(in_check.find("\"dec\":"), std::string::npos) << in_check;
  EXPECT_NE(in_decision.find("\"dec\":5"), std::string::npos) << in_decision;
  EXPECT_EQ(after.find("\"chk\":"), std::string::npos) << after;
}

TEST(ScopedCheckSpan, NestsAndRestores) {
  const telemetry::SpanContext before = telemetry::span_context();
  {
    telemetry::ScopedCheckSpan outer;
    telemetry::span_context().dec = 3;
    {
      telemetry::ScopedCheckSpan inner;
      EXPECT_GT(inner.id(), outer.id());
      EXPECT_EQ(telemetry::span_context().chk, inner.id());
      EXPECT_EQ(telemetry::span_context().dec, -1);
    }
    EXPECT_EQ(telemetry::span_context().chk, outer.id());
    EXPECT_EQ(telemetry::span_context().dec, 3);
    telemetry::span_context().dec = -1;
  }
  EXPECT_EQ(telemetry::span_context().chk, before.chk);
  EXPECT_EQ(telemetry::span_context().dec, before.dec);
}

/// Counts events by name; used for trace/report parity checks.
struct RecordingSink final : telemetry::TraceSink {
  std::map<std::string, std::size_t> by_name;
  void event(std::string_view name,
             std::span<const TraceField> /*fields*/) override {
    ++by_name[std::string(name)];
  }
};

/// The acceptance-criterion parity check: on a circuit that exercises every
/// stage (Fig. 2 carry-skip adder), the JSONL stream's decision/backtrack/
/// gitd_round/stem counts equal the CheckReport tallies, which themselves
/// are registry snapshots.
TEST(TraceParity, EventCountsMatchReportTallies) {
  Circuit c = gen::carry_skip_adder(16, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto exact = v.exact_floating_delay();  // unsinked warm-up probe

  auto& reg = Registry::global();
  const auto d0 = reg.counter("search.decisions").value();
  const auto b0 = reg.counter("search.backtracks").value();
  const auto g0 = reg.counter("gitd.rounds").value();
  const auto s0 = reg.counter("stem.stems_processed").value();

  SinkGuard guard;
  RecordingSink sink;
  telemetry::set_trace_sink(&sink);
  const auto suite = v.check_circuit(exact.delay);
  telemetry::set_trace_sink(nullptr);

  std::size_t decisions = 0, backtracks = 0, gitd_rounds = 0, stems = 0;
  for (const auto& rep : suite.per_output) {
    decisions += rep.decisions;
    backtracks += rep.backtracks;
    gitd_rounds += rep.gitd_rounds;
    stems += rep.stems_processed;
  }
  EXPECT_EQ(suite.backtracks, backtracks);

  // Trace events == report tallies.
  EXPECT_EQ(sink.by_name["decision"], decisions);
  EXPECT_EQ(sink.by_name["backtrack"], backtracks);
  EXPECT_EQ(sink.by_name["gitd_round"], gitd_rounds);
  EXPECT_EQ(sink.by_name["stem"], stems);
  EXPECT_GE(sink.by_name["propagate"], 1u);
  EXPECT_EQ(sink.by_name["check_begin"], suite.per_output.size());
  EXPECT_EQ(sink.by_name["check_end"], suite.per_output.size());

  // Report tallies == registry deltas.
  EXPECT_EQ(reg.counter("search.decisions").value() - d0, decisions);
  EXPECT_EQ(reg.counter("search.backtracks").value() - b0, backtracks);
  EXPECT_EQ(reg.counter("gitd.rounds").value() - g0, gitd_rounds);
  EXPECT_EQ(reg.counter("stem.stems_processed").value() - s0, stems);

  // At delta_E a vector exists, so the search must have decided something.
  EXPECT_EQ(suite.conclusion, CheckConclusion::kViolation);
  EXPECT_GE(decisions, 1u);
}

TEST(TraceParity, StageTimersCoverCheckSeconds) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto rep = v.check_output(*c.find_net("cout"), Time(1));
  const auto& s = rep.stage_seconds;
  const double staged = s.narrowing + s.gitd + s.stem + s.case_analysis;
  EXPECT_GT(staged, 0.0);
  // The stage breakdown can't exceed the whole check's wall time.
  EXPECT_LE(staged, rep.seconds + 1e-3);
}

}  // namespace
}  // namespace waveck
