// Cross-mode verifier behaviours that the per-module suites do not cover:
// transition vs floating ordering through the Verifier API, per-output
// delay consistency with circuit-level results, and option interplay.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/transition_sim.hpp"
#include "verify/pessimism.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

TEST(VerifierModes, TransitionNeverExceedsFloatingConclusion) {
  // If floating mode proves N at delta, every transition pair is also N.
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  Verifier v(c);
  ASSERT_EQ(v.check_output(s, Time(61)).conclusion,
            CheckConclusion::kNoViolation);
  const std::size_t n = c.inputs().size();
  for (unsigned b1 = 0; b1 < (1u << n); b1 += 17) {
    for (unsigned b2 = 0; b2 < (1u << n); b2 += 23) {
      std::vector<bool> v1(n), v2(n);
      for (std::size_t i = 0; i < n; ++i) {
        v1[i] = (b1 >> i) & 1;
        v2[i] = (b2 >> i) & 1;
      }
      EXPECT_EQ(v.check_transition(s, Time(61), v1, v2).conclusion,
                CheckConclusion::kNoViolation);
    }
  }
}

TEST(VerifierModes, TransitionDelayBoundedByFloatingDelay) {
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto fl = v.exact_floating_delay();
  for (NetId o : c.outputs()) {
    EXPECT_LE(exhaustive_transition_delay(c, o), fl.delay);
  }
}

TEST(VerifierModes, PerOutputMaxEqualsCircuitDelay) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  Verifier v(c);
  const auto circuit_exact = v.exact_floating_delay();
  const auto rep = pessimism_report(v);
  EXPECT_EQ(rep.worst_floating, circuit_exact.delay);
  EXPECT_EQ(rep.worst_topological, circuit_exact.topological);
}

TEST(VerifierModes, CheckCircuitConsistentWithPerOutputChecks) {
  const Circuit c = gen::prepare_for_experiment(gen::build_raw("c1908"));
  VerifyOptions opt;
  Verifier v(c, opt);
  const auto exact = v.exact_floating_delay();
  ASSERT_TRUE(exact.exact);
  // At exact+1 every per-output check individually concludes N.
  const auto arr = topo_arrival(c);
  for (NetId o : c.outputs()) {
    if (arr[o.index()] < exact.delay + 1) continue;
    EXPECT_EQ(v.check_output(o, exact.delay + 1).conclusion,
              CheckConclusion::kNoViolation)
        << c.net(o).name;
  }
}

TEST(VerifierModes, DelayCorrelationNeutralOnPointDelays) {
  // With point delays the correlation stage is a no-op pass-through for
  // arbitrary grouping, including through case analysis.
  Circuit c = gen::hrapcenko(10);
  for (GateId g : c.all_gates()) c.gate_mut(g).delay.group = 1;
  VerifyOptions with;
  with.use_delay_correlation = true;
  Verifier v_with(c, with);
  Verifier v_plain(c);
  for (std::int64_t delta : {55, 60, 61, 70}) {
    EXPECT_EQ(v_with.check_output(*c.find_net("s"), Time(delta)).conclusion,
              v_plain.check_output(*c.find_net("s"), Time(delta)).conclusion)
        << delta;
  }
}

TEST(VerifierModes, AllStagesOffStillExactViaSearch) {
  VerifyOptions opt;
  opt.use_learning = false;
  opt.use_dominators = false;
  opt.use_stem_correlation = false;
  opt.case_analysis.dominators_in_search = false;
  opt.case_analysis.use_scoap = false;
  opt.case_analysis.three_phase = false;
  const Circuit c = gen::hrapcenko(10);
  Verifier v(c, opt);
  const auto res = v.exact_floating_delay();
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.delay, Time(60));
}

}  // namespace
}  // namespace waveck
