#include "sta/path_enum.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

TEST(PathEnum, HrapcenkoLongestPathIsUnsensitizable) {
  const Circuit c = gen::hrapcenko(10);
  const NetId s = *c.find_net("s");
  // The 70-length path requires e3 = 1 (AND side) and e3 = 0 (OR side).
  const std::vector<NetId> long_path{
      *c.find_net("e1"), *c.find_net("n1"), *c.find_net("n2"),
      *c.find_net("n3"), *c.find_net("n4"), *c.find_net("n6"),
      *c.find_net("n7"), s};
  EXPECT_FALSE(statically_sensitizable(c, long_path));
  // The 60-length branch through n5 is sensitizable.
  const std::vector<NetId> short_path{
      *c.find_net("e1"), *c.find_net("n1"), *c.find_net("n2"),
      *c.find_net("n3"), *c.find_net("n4"), *c.find_net("n5"), s};
  EXPECT_TRUE(statically_sensitizable(c, short_path));
}

TEST(PathEnum, HrapcenkoEstimateIs60) {
  const Circuit c = gen::hrapcenko(10);
  const auto r = path_enum_delay(c);
  EXPECT_EQ(r.delay, Time(60));
  EXPECT_GT(r.paths_enumerated, 0u);
  ASSERT_FALSE(r.path.empty());
  EXPECT_TRUE(c.net(r.path.front()).is_primary_input);
}

TEST(PathEnum, LongestFirstOrderStopsAtFirstHit) {
  // On a circuit with no false paths, the very first enumerated path wins.
  Circuit c = gen::c17();
  c.set_uniform_delay(DelaySpec::fixed(10));
  const auto r = path_enum_delay(c);
  EXPECT_EQ(r.delay, topological_delay(c));
  EXPECT_LE(r.paths_enumerated, c.outputs().size() + 1);
}

TEST(PathEnum, CarrySkipStaticBelowTopological) {
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const auto r = path_enum_delay(c);
  EXPECT_LT(r.delay, topological_delay(c));
}

TEST(PathEnum, StaticSensitizationCanUnderestimateFloating) {
  // The classic Du-Yen lesson: static sensitization is not a sound
  // floating-mode criterion. On the carry-skip adder the exact floating
  // delay exceeds the longest statically sensitizable path.
  Circuit c = gen::carry_skip_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  const Time exact = exhaustive_floating_delay(c, 17);
  const auto r = path_enum_delay(c);
  EXPECT_LE(r.delay, exact);  // here: strictly below on the skip structure
}

TEST(PathEnum, BudgetExhaustionReported) {
  const Circuit c = gen::hrapcenko(10);
  PathEnumOptions opt;
  opt.max_paths = 1;  // the first (false) 70-path exhausts the budget
  const auto r = longest_sensitizable_path(c, *c.find_net("s"), opt);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.delay, Time::neg_inf());
  EXPECT_EQ(r.paths_enumerated, 1u);
}

TEST(PathEnum, MuxPathNeedsMatchingSelect) {
  Circuit c("m");
  const NetId sel = c.add_net("sel"), a = c.add_net("a"), b = c.add_net("b");
  c.declare_input(sel);
  c.declare_input(a);
  c.declare_input(b);
  const NetId nsel = c.add_net("nsel");
  c.add_gate(GateType::kNot, nsel, {sel}, DelaySpec::fixed(1));
  const NetId o = c.add_net("o");
  c.add_gate(GateType::kMux, o, {nsel, a, b}, DelaySpec::fixed(1));
  c.declare_output(o);
  c.finalize();
  // Path through d0 requires nsel = 0, i.e. sel = 1 -- consistent.
  EXPECT_TRUE(statically_sensitizable(c, {a, o}));
  // Path through the select is unconditioned.
  EXPECT_TRUE(statically_sensitizable(c, {sel, nsel, o}));
}

TEST(PathEnum, ConflictingSideRequirementsDetected) {
  // AND(x, e) -> OR(y, e): the same e must be 1 and 0.
  Circuit c("conflict");
  const NetId x = c.add_net("x"), e = c.add_net("e");
  c.declare_input(x);
  c.declare_input(e);
  const NetId y = c.add_net("y"), z = c.add_net("z");
  c.add_gate(GateType::kAnd, y, {x, e}, DelaySpec::fixed(1));
  c.add_gate(GateType::kOr, z, {y, e}, DelaySpec::fixed(1));
  c.declare_output(z);
  c.finalize();
  EXPECT_FALSE(statically_sensitizable(c, {x, y, z}));
  EXPECT_TRUE(statically_sensitizable(c, {e, y, z}));
}

}  // namespace
}  // namespace waveck
