// Unit tests for the differential fuzzing subsystem: structured generator
// determinism and shape controls, battery verdicts on known-good circuits,
// shrinker convergence, and engine-level per-seed determinism (identical
// telemetry modulo timestamps).
#include <regex>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/telemetry.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/engine.hpp"
#include "fuzz/shrink.hpp"
#include "gen/generators.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"
#include "netlist/transforms.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

std::string circuit_fingerprint(const Circuit& c) {
  std::ostringstream os;
  write_bench(os, c);
  write_delays(os, c);
  return os.str();
}

TEST(StructuredGen, DeterministicPerSeed) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = 42;
  const Circuit a = gen::structured_random_circuit(cfg);
  const Circuit b = gen::structured_random_circuit(cfg);
  EXPECT_EQ(circuit_fingerprint(a), circuit_fingerprint(b));
  cfg.seed = 43;
  const Circuit d = gen::structured_random_circuit(cfg);
  EXPECT_NE(circuit_fingerprint(a), circuit_fingerprint(d));
}

TEST(StructuredGen, RespectsGateMix) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = 7;
  cfg.gates = 60;
  const auto h = histogram(gen::structured_random_circuit(cfg));
  EXPECT_EQ(h.of(GateType::kMux), 0u);  // default weight 0

  cfg.w_mux = 10;
  const auto hm = histogram(gen::structured_random_circuit(cfg));
  EXPECT_GT(hm.of(GateType::kMux), 0u);

  gen::StructuredCircuitConfig xor_only;
  xor_only.seed = 7;
  xor_only.w_and = xor_only.w_or = xor_only.w_nand = xor_only.w_nor = 0;
  xor_only.w_not = xor_only.w_buf = 0;
  xor_only.w_xor = 1;
  xor_only.w_xnor = 0;
  const auto hx = histogram(gen::structured_random_circuit(xor_only));
  EXPECT_EQ(hx.of(GateType::kXor), hx.total());
}

TEST(StructuredGen, FalsePathBlocksAddOutputs) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = 11;
  cfg.outputs = 2;
  cfg.false_path_blocks = 2;
  const Circuit c = gen::structured_random_circuit(cfg);
  EXPECT_EQ(c.outputs().size(), 4u);  // 2 core + 1 per block
  EXPECT_TRUE(c.find_net("fp0_out").has_value());
  EXPECT_TRUE(c.find_net("fp1_out").has_value());
}

TEST(StructuredGen, DelaysAnnotatedWithinRange) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = 3;
  cfg.delay_max = 5;
  cfg.delay_intervals = true;
  const Circuit c = gen::structured_random_circuit(cfg);
  for (GateId g : c.all_gates()) {
    const DelaySpec d = c.gate(g).delay;
    EXPECT_GE(d.dmin, 0);
    EXPECT_LE(d.dmin, d.dmax);
    EXPECT_GE(d.dmax, 1);
    EXPECT_LE(d.dmax, 5);
  }
}

TEST(InsertBuffers, PreservesFunctionAndTiming) {
  gen::RandomCircuitConfig cfg;
  cfg.inputs = 6;
  cfg.gates = 20;
  cfg.seed = 5;
  const Circuit c = gen::random_circuit(cfg);
  std::vector<NetId> sites;
  for (NetId n : c.all_nets()) {
    if (n.index() % 2 == 0) sites.push_back(n);
  }
  const Circuit buffered = insert_buffers(c, sites);
  EXPECT_GT(buffered.num_gates(), c.num_gates());
  EXPECT_EQ(exhaustive_floating_delay(c), exhaustive_floating_delay(buffered));
  // Interface unchanged.
  ASSERT_EQ(buffered.inputs().size(), c.inputs().size());
  ASSERT_EQ(buffered.outputs().size(), c.outputs().size());
  for (std::size_t i = 0; i < c.outputs().size(); ++i) {
    EXPECT_EQ(buffered.net(buffered.outputs()[i]).name,
              c.net(c.outputs()[i]).name);
  }
}

TEST(Battery, PassesOnKnownGoodCircuits) {
  for (Circuit c : {gen::c17(), gen::hrapcenko()}) {
    const auto r = fuzz::run_battery(c);
    for (const auto& pr : r.results) {
      EXPECT_TRUE(pr.ok) << c.name() << ": " << to_string(pr.property) << ": "
                         << pr.details;
    }
  }
}

TEST(Battery, PropertyNamesRoundTrip) {
  for (fuzz::Property p : fuzz::all_properties()) {
    fuzz::Property back{};
    ASSERT_TRUE(fuzz::property_from_string(fuzz::to_string(p), &back));
    EXPECT_EQ(back, p);
  }
  fuzz::Property dummy{};
  EXPECT_FALSE(fuzz::property_from_string("no_such_property", &dummy));
}

TEST(Battery, VerilogRoundTripSkipsMuxCircuits) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = 9;
  cfg.w_mux = 10;
  Circuit c;
  do {
    c = gen::structured_random_circuit(cfg);
    ++cfg.seed;
  } while (histogram(c).of(GateType::kMux) == 0);
  const auto r =
      fuzz::check_property(c, fuzz::Property::kVerilogRoundTrip);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.skipped);
}

TEST(Shrink, ConvergesToMinimalPredicateWitness) {
  gen::StructuredCircuitConfig cfg;
  cfg.seed = 21;
  cfg.gates = 40;
  const Circuit c = gen::structured_random_circuit(cfg);
  ASSERT_GT(histogram(c).of(GateType::kNor), 0u);
  // Synthetic "failure": the circuit contains a NOR gate. The minimal
  // witness is a single NOR, so a working shrinker must get close.
  const auto has_nor = [](const Circuit& cand) {
    return histogram(cand).of(GateType::kNor) > 0;
  };
  const auto res = fuzz::shrink_circuit(c, has_nor);
  EXPECT_TRUE(has_nor(res.circuit));
  EXPECT_LE(res.circuit.num_gates(), 3u);
  EXPECT_GT(res.accepted, 0u);
  EXPECT_LE(res.circuit.inputs().size(), 2u);
}

TEST(Shrink, ReturnsInputUnchangedWhenPredicateAlreadyPasses) {
  const Circuit c = gen::c17();
  const auto never = [](const Circuit&) { return false; };
  const auto res = fuzz::shrink_circuit(c, never);
  EXPECT_EQ(res.accepted, 0u);
  EXPECT_EQ(res.circuit.num_gates(), c.num_gates());
}

TEST(Shrink, PredicateExceptionsRejectCandidates) {
  const Circuit c = gen::c17();
  // Predicate that fails on the original but throws on any smaller
  // candidate: the shrinker must survive and return the original.
  const std::size_t n = c.num_gates();
  const auto moody = [n](const Circuit& cand) {
    if (cand.num_gates() < n) throw std::runtime_error("boom");
    return true;
  };
  const auto res = fuzz::shrink_circuit(c, moody);
  EXPECT_EQ(res.circuit.num_gates(), n);
}

TEST(Engine, ProfileConfigsAreDeterministic) {
  for (const std::string& p : fuzz::known_profiles()) {
    const auto a = fuzz::profile_config(p, 9, 3);
    const auto b = fuzz::profile_config(p, 9, 3);
    EXPECT_EQ(a.seed, b.seed) << p;
    EXPECT_EQ(a.gates, b.gates) << p;
    EXPECT_EQ(a.inputs, b.inputs) << p;
    const auto other = fuzz::profile_config(p, 9, 4);
    EXPECT_NE(a.seed, other.seed) << p;
  }
}

TEST(Engine, CleanCampaignOnTrunk) {
  fuzz::FuzzConfig cfg;
  cfg.seed = 123;
  cfg.runs = 6;
  cfg.profile = "small";
  const auto s = fuzz::run_fuzz(cfg);
  EXPECT_EQ(s.runs_executed, 6u);
  EXPECT_TRUE(s.failures.empty());
  EXPECT_EQ(s.properties_checked,
            6 * fuzz::all_properties().size());
}

/// Strips the JSONL fields that legitimately differ between identical
/// campaigns: the "t" ns timestamp stamped by the sink.
std::string strip_timestamps(const std::string& jsonl) {
  static const std::regex kTime("\"t\":[0-9]+");
  return std::regex_replace(jsonl, kTime, "\"t\":0");
}

TEST(Engine, SameSeedSameTelemetryModuloTimestamps) {
  const auto campaign = [](std::uint64_t seed) {
    std::ostringstream trace;
    telemetry::JsonlTraceSink sink(trace);
    telemetry::set_trace_sink(&sink);
    fuzz::FuzzConfig cfg;
    cfg.seed = seed;
    cfg.runs = 5;
    cfg.profile = "mixed";
    const auto s = fuzz::run_fuzz(cfg);
    telemetry::set_trace_sink(nullptr);
    return std::pair{strip_timestamps(trace.str()), s.runs_executed};
  };
  const auto [trace_a, runs_a] = campaign(77);
  const auto [trace_b, runs_b] = campaign(77);
  EXPECT_EQ(runs_a, runs_b);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
  const auto [trace_c, runs_c] = campaign(78);
  (void)runs_c;
  EXPECT_NE(trace_a, trace_c);
}

TEST(Engine, CliRejectsUnknownFlagsAndListsProfiles) {
  std::ostringstream out, err;
  EXPECT_EQ(fuzz::fuzz_cli_main({"--bogus"}, out, err), 2);
  EXPECT_NE(err.str().find("usage"), std::string::npos);

  std::ostringstream out2, err2;
  EXPECT_EQ(fuzz::fuzz_cli_main({"--list-profiles"}, out2, err2), 0);
  EXPECT_NE(out2.str().find("mixed"), std::string::npos);

  std::ostringstream out3, err3;
  EXPECT_EQ(fuzz::fuzz_cli_main({"--profile", "nope"}, out3, err3), 2);
}

TEST(Engine, CliRunsASmallCampaign) {
  std::ostringstream out, err;
  const int rc = fuzz::fuzz_cli_main(
      {"--seed", "5", "--runs", "3", "--profile", "small"}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("3/3 runs"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace waveck
