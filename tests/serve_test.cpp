// In-process protocol tests for the serve daemon (doc/SERVE.md): a real
// Server on a temp Unix socket, driven by the blocking serve::Client. The
// contract under test is the wire behaviour — error codes for malformed
// and unknown requests, load/hash namespace rules, admission control
// (`overloaded`), queue deadlines (`deadline_expired`), watchdog output on
// a wedged worker, resident-state reuse, and byte-identity of a served
// report with the offline canonical JSON.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "explain/trace_reader.hpp"
#include "gen/generators.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/circuit.hpp"
#include "netlist/content_hash.hpp"
#include "netlist/transforms.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "verify/report_io.hpp"
#include "verify/verifier.hpp"

namespace waveck {
namespace {

std::string unique_path(const std::string& tag, const std::string& ext) {
  static std::atomic<int> n{0};
  return "/tmp/waveck_serve_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(n.fetch_add(1)) + ext;
}

/// Writes `c` as a .bench file the daemon's `load` op can read back.
std::string write_temp_bench(const Circuit& c, const std::string& tag) {
  const std::string path = unique_path(tag, ".bench");
  std::ofstream out(path);
  write_bench(out, c);
  return path;
}

/// Mirrors the daemon's (and offline CLI's) load path: bench reader,
/// uniform delay 10, solver decomposition.
Circuit offline_load(const std::string& path) {
  Circuit c = read_bench_file(path);
  c.set_uniform_delay(DelaySpec::fixed(10));
  return decompose_for_solver(c);
}

/// For responses that embed nested JSON (check reports, list arrays) the
/// flat parser is the wrong tool; successful-response detection falls back
/// to the same substring probe the CLI client uses.
bool line_ok(const std::string& line) {
  return line.find("\"ok\":true") != std::string::npos;
}

/// Parses one flat JSONL response line; fails the test on malformed output.
explain::TraceEvent parse(const std::string& line) {
  explain::TraceEvent ev;
  std::string err;
  EXPECT_TRUE(explain::parse_flat_object(line, ev, err))
      << err << " in: " << line;
  return ev;
}

bool ok_of(const explain::TraceEvent& ev) {
  const explain::TraceValue* v = ev.find("ok");
  return v != nullptr && v->kind == explain::TraceValue::Kind::kBool && v->b;
}

/// Slices the raw "report" object out of a check response: it is the last
/// key by protocol design, so its bytes run to the final closing brace.
std::string report_of(const std::string& line) {
  const std::size_t pos = line.rfind(",\"report\":");
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + 10;
  return line.substr(start, line.size() - 1 - start);
}

/// A live Server on a fresh temp socket plus the IO thread running it.
class TestServer {
 public:
  explicit TestServer(serve::ServeOptions opt) : opt_(std::move(opt)) {
    if (opt_.socket_path.empty()) {
      opt_.socket_path = unique_path("srv", ".sock");
    }
    server_ = std::make_unique<serve::Server>(opt_);
    std::string err;
    started_ = server_->start(&err);
    EXPECT_TRUE(started_) << err;
    if (started_) io_ = std::thread([this] { server_->run(); });
  }

  ~TestServer() { stop(); }

  void stop() {
    if (io_.joinable()) {
      server_->request_shutdown();
      io_.join();
    }
  }

  [[nodiscard]] serve::Client client() {
    serve::Client c;
    std::string err;
    EXPECT_TRUE(c.connect_unix(opt_.socket_path, &err)) << err;
    return c;
  }

  [[nodiscard]] serve::Server& server() { return *server_; }

 private:
  serve::ServeOptions opt_;
  std::unique_ptr<serve::Server> server_;
  std::thread io_;
  bool started_ = false;
};

TEST(ServeProtocol, MalformedAndUnknownRequests) {
  TestServer ts({});
  serve::Client c = ts.client();

  auto r = c.round_trip(R"(not json)");
  ASSERT_TRUE(r.has_value());
  explain::TraceEvent ev = parse(*r);
  EXPECT_FALSE(ok_of(ev));
  EXPECT_EQ(ev.str("error"), "parse_error");
  EXPECT_EQ(ev.str("op"), "error");

  r = c.round_trip(R"({"op":7})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).str("error"), "missing_field");

  r = c.round_trip(R"({"id":"q1","op":"frobnicate"})");
  ASSERT_TRUE(r.has_value());
  ev = parse(*r);
  EXPECT_EQ(ev.str("error"), "unknown_op");
  EXPECT_EQ(ev.str("id"), "q1");  // the id echoes even on errors

  // debug_stall is a debug op: without --enable-debug-ops the daemon does
  // not even admit it exists.
  r = c.round_trip(R"({"op":"debug_stall","ms":1})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).str("error"), "unknown_op");

  r = c.round_trip(R"({"op":"check","circuit":"x"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).str("error"), "missing_field");

  // Unknown circuits are resolved by the worker, after admission.
  r = c.round_trip(R"({"op":"check","circuit":"nope","delta":100})");
  ASSERT_TRUE(r.has_value());
  ev = parse(*r);
  EXPECT_FALSE(ok_of(ev));
  EXPECT_EQ(ev.str("error"), "unknown_circuit");

  r = c.round_trip(R"({"op":"unload","name":"nope"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).str("error"), "unknown_circuit");

  r = c.round_trip(R"({"op":"load","name":"x","file":"/nonexistent.bench"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).str("error"), "load_failed");

  r = c.round_trip(R"({"op":"ping"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(ok_of(parse(*r)));
}

TEST(ServeProtocol, LoadNamespacesAndContentHash) {
  Circuit csa = gen::carry_skip_adder(8, 2);
  Circuit c17 = gen::c17();
  const std::string csa_path = write_temp_bench(csa, "csa8");
  const std::string c17_path = write_temp_bench(c17, "c17");
  // The hash the daemon must report: computed offline over the decomposed,
  // delay-annotated circuit — the structure checks actually run on.
  const std::string csa_hash = content_hash_hex(offline_load(csa_path));

  TestServer ts({});
  serve::Client c = ts.client();

  auto r = c.round_trip(R"({"op":"load","name":"a","file":")" + csa_path +
                        R"("})");
  ASSERT_TRUE(r.has_value());
  explain::TraceEvent ev = parse(*r);
  ASSERT_TRUE(ok_of(ev)) << *r;
  EXPECT_EQ(ev.str("hash"), csa_hash);
  ASSERT_NE(ev.find("already_loaded"), nullptr);
  EXPECT_FALSE(ev.find("already_loaded")->b);

  // Same name + same structure: idempotent no-op.
  r = c.round_trip(R"({"op":"load","name":"a","file":")" + csa_path +
                   R"("})");
  ASSERT_TRUE(r.has_value());
  ev = parse(*r);
  ASSERT_TRUE(ok_of(ev));
  ASSERT_NE(ev.find("already_loaded"), nullptr);
  EXPECT_TRUE(ev.find("already_loaded")->b);

  // Same name, different structure: refused, never a silent swap.
  r = c.round_trip(R"({"op":"load","name":"a","file":")" + c17_path +
                   R"("})");
  ASSERT_TRUE(r.has_value());
  ev = parse(*r);
  EXPECT_FALSE(ok_of(ev));
  EXPECT_EQ(ev.str("error"), "hash_mismatch");

  // Client-side pin: a stated hash that disagrees with the file is refused
  // before the registry is touched.
  r = c.round_trip(R"({"op":"load","name":"b","file":")" + csa_path +
                   R"(","hash":"deadbeefdeadbeef"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).str("error"), "hash_mismatch");

  // A correct pin loads fine; the two namespaces are independent tenants.
  r = c.round_trip(R"({"op":"load","name":"b","file":")" + csa_path +
                   R"(","hash":")" + csa_hash + R"("})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(ok_of(parse(*r)));

  // The list payload nests an array, so it is probed as raw bytes.
  r = c.round_trip(R"({"op":"list"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(line_ok(*r)) << *r;
  EXPECT_NE(r->find("\"resident\":2"), std::string::npos) << *r;
  EXPECT_NE(r->find("\"name\":\"a\""), std::string::npos) << *r;
  EXPECT_NE(r->find("\"name\":\"b\""), std::string::npos) << *r;

  r = c.round_trip(R"({"op":"unload","name":"b"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(ok_of(parse(*r)));
  r = c.round_trip(R"({"op":"ping"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).num("resident"), 1);
}

TEST(ServeProtocol, ServedReportIsByteIdenticalToOfflineCanonical) {
  Circuit csa = gen::carry_skip_adder(8, 2);
  const std::string path = write_temp_bench(csa, "ident");
  Circuit c = offline_load(path);

  Verifier probe(c);
  const auto exact = probe.exact_floating_delay();
  ASSERT_TRUE(exact.exact);
  const std::int64_t delta = exact.delay.value();

  TestServer ts({});
  serve::Client cl = ts.client();
  auto r = cl.round_trip(R"({"op":"load","name":"csa8","file":")" + path +
                         R"("})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(ok_of(parse(*r))) << *r;

  // Single-output row first: fresh resident verifier, like the offline one.
  const std::string out_name = c.net(c.outputs().front()).name;
  Verifier vout(c);
  const std::string want_out =
      canonical_json(c, vout.check_output(c.outputs().front(), Time(delta)));
  r = cl.round_trip(R"({"op":"check","circuit":"csa8","delta":)" +
                    std::to_string(delta) + R"(,"output":")" + out_name +
                    R"("})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(line_ok(*r)) << *r;
  EXPECT_EQ(report_of(*r), want_out);

  // Whole-circuit suite: serial offline check vs the daemon's resident
  // scheduler — byte-identical canonical JSON (the determinism contract
  // doubling as the wire format).
  Verifier vsuite(c);
  const std::string want_suite =
      canonical_json(c, vsuite.check_circuit(Time(delta)));
  const std::string check_line =
      R"({"op":"check","circuit":"csa8","delta":)" + std::to_string(delta) +
      "}";
  r = cl.round_trip(check_line);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(line_ok(*r)) << *r;
  EXPECT_NE(r->find("\"deadline_expired\":false"), std::string::npos);
  EXPECT_EQ(report_of(*r), want_suite);

  // Repeat: the answer must not drift as resident state warms up, and the
  // shared precompute must not rerun (that is the point of residency).
  r = cl.round_trip(check_line);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(report_of(*r), want_suite);

  // Unknown output on a loaded circuit is its own error, not a crash.
  r = cl.round_trip(
      R"({"op":"check","circuit":"csa8","delta":10,"output":"no_such_net"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(parse(*r).str("error"), "unknown_output");

  const serve::ResidentPtr res = ts.server().registry().get("csa8");
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->stats().prepare_runs.load(), 1u);
  EXPECT_EQ(res->stats().checks.load(), 3u);
}

TEST(ServeProtocol, QueueExpiredDeadlineIsRejectedWithoutRunning) {
  Circuit csa = gen::carry_skip_adder(8, 2);
  const std::string path = write_temp_bench(csa, "ddl");

  serve::ServeOptions opt;
  opt.enable_debug_ops = true;
  TestServer ts(std::move(opt));
  serve::Client c = ts.client();

  auto r = c.round_trip(R"({"op":"load","name":"q","file":")" + path +
                        R"("})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(ok_of(parse(*r))) << *r;

  // Wedge the worker for 250ms, then queue a check that only has 50ms to
  // live: by the time the worker reaches it the deadline has passed, so it
  // is answered deadline_expired without touching the engine.
  ASSERT_TRUE(c.send_line(R"({"id":"s","op":"debug_stall","ms":250})"));
  ASSERT_TRUE(c.send_line(
      R"({"id":"late","op":"check","circuit":"q","delta":100,"timeout_ms":50})"));

  std::string line;
  ASSERT_TRUE(c.recv_line(&line));
  explain::TraceEvent ev = parse(line);
  EXPECT_EQ(ev.str("id"), "s");
  EXPECT_TRUE(ok_of(ev));

  ASSERT_TRUE(c.recv_line(&line));
  ev = parse(line);
  EXPECT_EQ(ev.str("id"), "late");
  EXPECT_FALSE(ok_of(ev));
  EXPECT_EQ(ev.str("error"), "deadline_expired");

  // The worker survives its expired request: the next check runs normally.
  r = c.round_trip(R"({"op":"check","circuit":"q","delta":100})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(line_ok(*r)) << *r;
}

TEST(ServeProtocol, QueueCapRejectsWithOverloaded) {
  serve::ServeOptions opt;
  opt.queue_cap = 1;
  opt.enable_debug_ops = true;
  TestServer ts(std::move(opt));

  // Occupy the worker on one connection, then give it time to pop the
  // stall so the queue itself is empty again.
  serve::Client staller = ts.client();
  ASSERT_TRUE(staller.send_line(R"({"id":"s","op":"debug_stall","ms":400})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  serve::Client c = ts.client();
  ASSERT_TRUE(
      c.send_line(R"({"id":"c1","op":"check","circuit":"x","delta":1})"));
  ASSERT_TRUE(
      c.send_line(R"({"id":"c2","op":"check","circuit":"x","delta":2})"));

  // c1 fills the queue (cap 1); c2 is rejected immediately by the IO
  // thread, so its error overtakes c1's answer on the wire.
  std::string line;
  ASSERT_TRUE(c.recv_line(&line));
  explain::TraceEvent ev = parse(line);
  EXPECT_EQ(ev.str("id"), "c2");
  EXPECT_FALSE(ok_of(ev));
  EXPECT_EQ(ev.str("error"), "overloaded");

  ASSERT_TRUE(c.recv_line(&line));
  ev = parse(line);
  EXPECT_EQ(ev.str("id"), "c1");
  EXPECT_EQ(ev.str("error"), "unknown_circuit");  // admitted, ran, resolved

  ASSERT_TRUE(staller.recv_line(&line));
  EXPECT_TRUE(ok_of(parse(line)));
}

TEST(ServeProtocol, WatchdogReportsStalledWorker) {
  serve::ServeOptions opt;
  opt.enable_debug_ops = true;
  opt.heartbeat_s = 0.02;
  opt.stall_s = 0.06;

  ::testing::internal::CaptureStderr();
  {
    TestServer ts(std::move(opt));
    serve::Client c = ts.client();
    // 400ms with no progress ticks: several heartbeat intervals and at
    // least one full stall window pass while the worker is wedged.
    auto r = c.round_trip(R"({"id":"w","op":"debug_stall","ms":400})");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(ok_of(parse(*r)));
    // The daemon is healthy again after the stall.
    r = c.round_trip(R"({"op":"ping"})");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(ok_of(parse(*r)));
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[waveck hb#"), std::string::npos) << err;
  EXPECT_NE(err.find("[waveck watchdog]"), std::string::npos) << err;
  EXPECT_NE(err.find("debug_stall"), std::string::npos) << err;
  // The stall line and the exit line both carry the structured stats JSON.
  EXPECT_NE(err.find("waveck-serve: stalled {\"requests\":"), std::string::npos)
      << err;
  EXPECT_NE(err.find("waveck-serve: exiting {\"requests\":"), std::string::npos)
      << err;
}

TEST(ServeProtocol, LiveSocketIsNotStolenByASecondServer) {
  serve::ServeOptions opt;
  opt.socket_path = unique_path("dup", ".sock");
  TestServer ts(opt);

  // A second server on the same path must refuse to start, not silently
  // unlink the live daemon's socket out from under it.
  serve::ServeOptions opt2;
  opt2.socket_path = opt.socket_path;
  serve::Server second(opt2);
  std::string err;
  EXPECT_FALSE(second.start(&err));
  EXPECT_NE(err.find("live server"), std::string::npos) << err;

  // The original daemon is untouched and still reachable at its path.
  serve::Client c = ts.client();
  auto r = c.round_trip(R"({"op":"ping"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(ok_of(parse(*r)));
}

TEST(ServeProtocol, StaleSocketFileIsReplaced) {
  const std::string path = unique_path("stale", ".sock");
  {
    // A dead server's leftovers: the file exists but nothing accepts on it
    // (bound, never listened, fd closed → probe gets ECONNREFUSED).
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ::close(fd);
  }
  serve::ServeOptions opt;
  opt.socket_path = path;
  TestServer ts(opt);
  serve::Client c = ts.client();
  auto r = c.round_trip(R"({"op":"ping"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(ok_of(parse(*r)));
}

TEST(ServeProtocol, LoadRunsOnTheWorkerNotTheIOThread) {
  Circuit csa = gen::carry_skip_adder(8, 2);
  const std::string path = write_temp_bench(csa, "ioload");
  serve::ServeOptions opt;
  opt.enable_debug_ops = true;
  TestServer ts(std::move(opt));

  // Wedge the worker, then queue a load behind the wedge: the IO thread
  // must keep answering pings while the load waits its turn on the worker.
  serve::Client loader = ts.client();
  ASSERT_TRUE(loader.send_line(R"({"id":"s","op":"debug_stall","ms":300})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(loader.send_line(
      R"({"id":"l","op":"load","name":"io","file":")" + path + R"("})"));

  serve::Client c = ts.client();
  auto r = c.round_trip(R"({"op":"ping"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(ok_of(parse(*r)));

  std::string line;
  ASSERT_TRUE(loader.recv_line(&line));
  EXPECT_EQ(parse(line).str("id"), "s");
  ASSERT_TRUE(loader.recv_line(&line));
  explain::TraceEvent ev = parse(line);
  EXPECT_EQ(ev.str("id"), "l");
  EXPECT_TRUE(ok_of(ev)) << line;

  // The queued load took effect: the circuit is resident and checkable.
  r = c.round_trip(R"({"op":"check","circuit":"io","delta":100})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(line_ok(*r)) << *r;
}

TEST(ServeProtocol, ShutdownDrainsQueuedRequestsAsErrors) {
  serve::ServeOptions opt;
  opt.enable_debug_ops = true;
  TestServer ts(std::move(opt));
  serve::Client c = ts.client();

  ASSERT_TRUE(c.send_line(R"({"id":"s","op":"debug_stall","ms":300})"));
  // Let the worker pop the stall so it is mid-run (not still queued, which
  // would drain it as shutting_down too) when the shutdown arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(
      c.send_line(R"({"id":"c1","op":"check","circuit":"x","delta":1})"));
  ASSERT_TRUE(c.send_line(R"({"id":"bye","op":"shutdown"})"));

  // The shutdown ack is inline; the stall finishes; the queued check is
  // answered shutting_down during the drain — nothing ever hangs.
  std::string line;
  ASSERT_TRUE(c.recv_line(&line));
  explain::TraceEvent ev = parse(line);
  EXPECT_EQ(ev.str("id"), "bye") << line;
  EXPECT_TRUE(ok_of(ev)) << line;

  ASSERT_TRUE(c.recv_line(&line));
  ev = parse(line);
  EXPECT_EQ(ev.str("id"), "s") << line;
  EXPECT_TRUE(ok_of(ev)) << line;

  ASSERT_TRUE(c.recv_line(&line));
  ev = parse(line);
  EXPECT_EQ(ev.str("id"), "c1");
  EXPECT_FALSE(ok_of(ev));
  EXPECT_EQ(ev.str("error"), "shutting_down");

  ts.stop();
}

TEST(ServeIntrospection, StatsReportsCountersAndPerCircuitTable) {
  Circuit csa = gen::carry_skip_adder(8, 2);
  const std::string path = write_temp_bench(csa, "stats");

  TestServer ts({});
  serve::Client c = ts.client();
  auto r = c.round_trip(R"({"op":"load","name":"m1","file":")" + path +
                        R"("})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(ok_of(parse(*r))) << *r;
  r = c.round_trip(R"({"op":"check","circuit":"m1","delta":100})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(line_ok(*r)) << *r;

  // The circuits array nests, so the envelope is probed by substring like
  // the nested check/list responses above.
  r = c.round_trip(R"({"id":"st","op":"stats"})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(line_ok(*r)) << *r;
  const std::string& line = *r;
  EXPECT_NE(line.find("\"resident\":1"), std::string::npos) << line;
  EXPECT_NE(line.find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(line.find("\"requests\":"), std::string::npos);
  EXPECT_NE(line.find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(line.find("\"queue_depth_hw\":"), std::string::npos);
  EXPECT_NE(line.find("\"queue_cap\":"), std::string::npos);
  EXPECT_NE(line.find("\"avg_batch\":"), std::string::npos);
  EXPECT_NE(line.find("\"dedup_ratio\":"), std::string::npos);
  // Per-namespace table with the request count and both latency legs.
  EXPECT_NE(line.find("\"circuits\":[{\"name\":\"m1\",\"hash\":\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"queued_p50_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"queued_p99_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"engine_p50_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"engine_p99_us\":"), std::string::npos);
}

TEST(ServeIntrospection, MetricsJsonCarriesRegistryAndNamespaces) {
  Circuit csa = gen::carry_skip_adder(8, 2);
  const std::string path = write_temp_bench(csa, "mjson");

  TestServer ts({});
  serve::Client c = ts.client();
  auto r = c.round_trip(R"({"op":"load","name":"mj","file":")" + path +
                        R"("})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(ok_of(parse(*r))) << *r;
  r = c.round_trip(R"({"op":"check","circuit":"mj","delta":100})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(line_ok(*r)) << *r;

  r = c.round_trip(R"({"op":"metrics"})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(line_ok(*r)) << *r;
  const std::string& line = *r;
  EXPECT_NE(line.find("\"format\":\"json\""), std::string::npos);
  EXPECT_NE(line.find("\"registry\":{"), std::string::npos);
  // The registry snapshot includes the global latency split histograms...
  EXPECT_NE(line.find("\"serve.latency.queued_us\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"serve.latency.engine_us\""), std::string::npos);
  // ...and the per-namespace block repeats the split per resident circuit.
  EXPECT_NE(line.find("\"namespaces\":[{\"name\":\"mj\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"queued_us\":{\"count\":"), std::string::npos);
  EXPECT_NE(line.find("\"engine_us\":{\"count\":"), std::string::npos);
  EXPECT_NE(line.find("\"p99_us\":"), std::string::npos);
}

TEST(ServeIntrospection, MetricsPrometheusBodyIsExpositionText) {
  Circuit csa = gen::carry_skip_adder(8, 2);
  const std::string path = write_temp_bench(csa, "mprom");

  TestServer ts({});
  serve::Client c = ts.client();
  auto r = c.round_trip(R"({"op":"load","name":"mp","file":")" + path +
                        R"("})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(ok_of(parse(*r))) << *r;
  r = c.round_trip(R"({"op":"check","circuit":"mp","delta":100})");
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(line_ok(*r)) << *r;

  // The prometheus envelope is flat (the exposition text rides inside one
  // escaped string field), so the flat parser both validates it and
  // unescapes the body — the same path `waveck client metrics prometheus`
  // uses.
  r = c.round_trip(R"({"op":"metrics","format":"prometheus"})");
  ASSERT_TRUE(r.has_value());
  explain::TraceEvent ev = parse(*r);
  EXPECT_TRUE(ok_of(ev)) << *r;
  EXPECT_EQ(ev.str("format"), "prometheus");
  const std::string body{ev.str("body")};
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("# TYPE waveck_serve_requests_total counter"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("waveck_serve_latency_queued_us_bucket{le=\"50\"}"),
            std::string::npos)
      << body;
  EXPECT_NE(
      body.find("waveck_serve_namespace_requests_total{circuit=\"mp\"}"),
      std::string::npos)
      << body;
  EXPECT_NE(body.find("waveck_serve_namespace_latency_us_bucket{circuit="
                      "\"mp\",leg=\"queued\",le=\"50\"}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("waveck_serve_namespace_latency_us_count{circuit="
                      "\"mp\",leg=\"engine\"}"),
            std::string::npos)
      << body;

  // An unknown format is a stable protocol error, not a crash or silence.
  r = c.round_trip(R"({"op":"metrics","format":"xml"})");
  ASSERT_TRUE(r.has_value());
  ev = parse(*r);
  EXPECT_FALSE(ok_of(ev));
  EXPECT_EQ(ev.str("error"), "missing_field");
}

TEST(ServeIntrospection, StatsAndMetricsAnswerWhileWorkerIsBusy) {
  serve::ServeOptions opt;
  opt.enable_debug_ops = true;
  TestServer ts(std::move(opt));

  // Wedge the worker, then demand introspection on a second connection:
  // stats/metrics are served inline by the IO thread, so both must answer
  // well before the stall clears.
  serve::Client staller = ts.client();
  ASSERT_TRUE(
      staller.send_line(R"({"id":"s","op":"debug_stall","ms":1500})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  serve::Client c = ts.client();
  const auto t0 = std::chrono::steady_clock::now();
  auto r = c.round_trip(R"({"op":"stats"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(line_ok(*r)) << *r;
  r = c.round_trip(R"({"op":"metrics","format":"prometheus"})");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(line_ok(*r)) << *r;
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000))
      << "introspection blocked behind the wedged worker";

  std::string line;
  ASSERT_TRUE(staller.recv_line(&line));
  EXPECT_TRUE(ok_of(parse(line)));
}

}  // namespace
}  // namespace waveck
