// Quickstart: build a circuit, ask the one question the library answers --
// "can this output switch at or after time delta?" -- and get either a
// proof or a witnessing test vector.
#include <iostream>

#include "gen/generators.hpp"
#include "gen/iscas_suite.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

int main() {
  using namespace waveck;

  // The ISCAS'85 c17 netlist, NOR-mapped with 10 time units per gate --
  // the paper's experimental setup in miniature.
  const Circuit c = gen::prepare_for_experiment(gen::c17());
  std::cout << "circuit: " << c.name() << " (" << c.num_gates()
            << " NOR gates, " << c.inputs().size() << " inputs, "
            << c.outputs().size() << " outputs)\n";

  // Conservative bound: topological delay.
  const Time top = topological_delay(c);
  std::cout << "topological delay (STA bound): " << top << "\n";

  // Exact floating-mode delay via waveform narrowing + case analysis.
  Verifier verifier(c);
  const auto exact = verifier.exact_floating_delay();
  std::cout << "exact floating-mode delay:     " << exact.delay << "\n";

  // A timing check above the exact delay is *proved* safe...
  const auto safe = verifier.check_circuit(exact.delay + 1);
  std::cout << "check delta=" << (exact.delay + 1) << ": "
            << to_string(safe.conclusion) << " (proof, "
            << safe.backtracks << " backtracks)\n";

  // ...and at the exact delay a violating test vector is produced.
  const auto viol = verifier.check_circuit(exact.delay);
  std::cout << "check delta=" << exact.delay << ": "
            << to_string(viol.conclusion);
  if (viol.vector) {
    std::cout << ", vector " << format_vector(*viol.vector) << " on output "
              << c.net(*viol.violating_output).name;
    // Cross-check with the independent floating-mode simulator.
    const auto sim = simulate_floating(c, *viol.vector);
    std::cout << " (simulated settle time "
              << sim.settle[viol.violating_output->index()] << ")";
  }
  std::cout << "\n";
  return 0;
}
