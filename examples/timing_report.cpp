// Timing-report tour: one circuit, every lens the library offers --
// STA bound, Monte-Carlo band, exact floating delay, a two-vector
// transition check, the sensitized true path as an ASCII timing diagram,
// and the machine-readable JSON record.
#include <iostream>

#include "gen/generators.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/transition_sim.hpp"
#include "sta/sta.hpp"
#include "verify/report_io.hpp"
#include "verify/verifier.hpp"

int main() {
  using namespace waveck;
  Circuit c = gen::carry_select_adder(8, 4);
  c.set_uniform_delay(DelaySpec::fixed(10));
  std::cout << "== " << c.name() << ": " << c.num_gates() << " gates ==\n\n";

  // 1. The conservative STA bound.
  const StaReport sta = run_sta(c);
  std::cout << "STA (topological) bound:   " << sta.topological_delay << "\n";

  // 2. A cheap Monte-Carlo lower bound.
  const auto mc = refined_floating_delay(c, 500);
  std::cout << "Monte-Carlo lower bound:   " << mc.delay << "\n";

  // 3. The exact answer.
  Verifier v(c);
  const auto exact = v.exact_floating_delay();
  std::cout << "exact floating delay:      " << exact.delay
            << "   (so STA over-reports by "
            << (sta.topological_delay.value() - exact.delay.value())
            << ")\n\n";

  // 4. A two-vector transition check: worst witness pair vs a benign one.
  const std::size_t n = c.inputs().size();
  const std::vector<bool> zeros(n, false);
  if (exact.witness) {
    const auto rep =
        v.check_transition(c.outputs().back(), Time(1), zeros, *exact.witness);
    std::cout << "transition 0.. -> witness on "
              << c.net(c.outputs().back()).name << ": "
              << to_string(rep.conclusion) << "\n\n";
  }

  // 5. The sensitized true path under the witness, as a timing diagram.
  if (exact.witness) {
    const auto sim = simulate_floating(c, *exact.witness);
    NetId worst = c.outputs().front();
    for (NetId o : c.outputs()) {
      if (sim.settle[o.index()] > sim.settle[worst.index()]) worst = o;
    }
    const auto path = critical_true_path(c, sim, worst);
    render_timing_diagram(std::cout, c, sim, path, 56);
    std::cout << "\n";
  }

  // 6. Machine-readable record.
  std::cout << "JSON: " << to_json(c, exact) << "\n";
  return 0;
}
