// Vector hunt: read any combinational `.bench` netlist (or use a built-in
// demo circuit), optionally back-annotate delays, and hunt for the exact
// floating-mode delay plus a witnessing vector.
//
// Usage:
//   vector_hunt                       # demo: c6288-style 6x6 multiplier
//   vector_hunt FILE.bench [DELAYS]   # your netlist (+ delay annotation)
#include <fstream>
#include <iostream>

#include "gen/generators.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"
#include "netlist/transforms.hpp"
#include "sim/floating_sim.hpp"
#include "sta/sta.hpp"
#include "verify/verifier.hpp"

int main(int argc, char** argv) {
  using namespace waveck;
  Circuit c;
  try {
    if (argc > 1) {
      c = read_bench_file(argv[1]);
      if (argc > 2) {
        read_delays_file(argv[2], c);
      } else {
        c.set_uniform_delay(DelaySpec::fixed(10));
      }
    } else {
      c = gen::array_multiplier(6);
      c.set_uniform_delay(DelaySpec::fixed(10));
      std::cout << "(no netlist given; using a 6x6 array multiplier demo)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  // Wide XOR/XNOR gates must be 2-input for the solver's exact projections.
  c = decompose_for_solver(c);
  std::cout << c.name() << ": " << c.num_gates() << " gates, "
            << c.inputs().size() << " inputs, " << c.outputs().size()
            << " outputs\n";

  const StaReport sta = run_sta(c);
  std::cout << "topological delay: " << sta.topological_delay << "\n";

  VerifyOptions opt;
  opt.case_analysis.max_backtracks = 50000;
  Verifier v(c, opt);
  const auto exact = v.exact_floating_delay();
  std::cout << (exact.exact ? "exact floating delay: "
                            : "floating delay lower bound (search abandoned "
                              "on some probe): ")
            << exact.delay << "\n";
  if (exact.witness) {
    std::cout << "witness vector (" << c.inputs().size()
              << " inputs): " << format_vector(*exact.witness) << "\n";
    const auto sim = simulate_floating(c, *exact.witness);
    Time settle = Time::neg_inf();
    NetId worst;
    for (NetId o : c.outputs()) {
      if (sim.settle[o.index()] > settle) {
        settle = sim.settle[o.index()];
        worst = o;
      }
    }
    std::cout << "simulated settle: output " << c.net(worst).name << " at "
              << settle << "\n";
  }
  return 0;
}
