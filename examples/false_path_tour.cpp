// A guided tour of the paper's Example 2: watch waveform narrowing prove
// that the longest path of Hrapcenko's circuit (Figure 1) is false.
//
// The circuit's topological delay is 70 (eight gates at 10 units), but the
// 70-unit path requires input e3 to be non-controlling at an AND (e3 = 1)
// and at an OR (e3 = 0) simultaneously. The constraint fixpoint discovers
// this without any search.
#include <iostream>

#include "constraints/constraint_system.hpp"
#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"
#include "verify/verifier.hpp"

int main() {
  using namespace waveck;
  const Circuit c = gen::hrapcenko(10);

  std::cout << "== Hrapcenko false-path circuit (paper Figure 1) ==\n";
  std::cout << "topological delay: " << topological_delay(c)
            << ", exhaustive floating delay: "
            << exhaustive_floating_delay(c) << "\n\n";

  auto dump = [&](const ConstraintSystem& cs, const char* title) {
    std::cout << title << "\n";
    for (const char* n : {"n1", "n2", "n3", "n4", "n5", "n6", "n7", "s"}) {
      std::cout << "  D_" << n << " = " << cs.domain(*c.find_net(n)).str()
                << "\n";
    }
  };

  // Step 1: floating-mode inputs only -- forward arrival bounds.
  {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.schedule_all();
    cs.reach_fixpoint();
    dump(cs, "after forward propagation (inputs stable after 0):");
  }

  // Step 2: add the timing check (s, 61) -- the fixpoint collapses.
  {
    ConstraintSystem cs(c);
    for (NetId in : c.inputs()) {
      cs.restrict_domain(in, AbstractSignal::floating_input());
    }
    cs.restrict_domain(*c.find_net("s"), AbstractSignal::violating(61));
    cs.schedule_all();
    const auto status = cs.reach_fixpoint();
    std::cout << "\nwith timing check (s, 61): "
              << (status == ConstraintSystem::Status::kNoViolation
                      ? "NoViolation -- the 70-delay path is false"
                      : "PossibleViolation")
              << "\n";
  }

  // Step 3: delta = 60 is real; the verifier returns a witness vector.
  {
    Verifier v(c);
    const auto rep = v.check_output(*c.find_net("s"), Time(60));
    std::cout << "\nwith timing check (s, 60): " << to_string(rep.conclusion);
    if (rep.vector) {
      std::cout << ", witness e1..e7 = " << format_vector(*rep.vector);
      const auto sim = simulate_floating(c, *rep.vector);
      std::cout << ", simulated settle(s) = "
                << sim.settle[c.find_net("s")->index()];
    }
    std::cout << "\n";
  }
  return 0;
}
