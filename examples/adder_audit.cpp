// Timing audit of a carry-skip adder (the paper's Figure 2 workload):
// compare the STA bound against the true floating-mode delay, list the
// timing dominators that make the proof cheap, and show the stage at which
// each check closes.
#include <iomanip>
#include <iostream>

#include "analysis/carriers.hpp"
#include "gen/generators.hpp"
#include "sta/sta.hpp"
#include "verify/pessimism.hpp"
#include "verify/verifier.hpp"

int main(int argc, char** argv) {
  using namespace waveck;
  const unsigned bits = argc > 1 ? unsigned(std::stoul(argv[1])) : 16;
  const unsigned block = argc > 2 ? unsigned(std::stoul(argv[2])) : 4;

  Circuit c = gen::carry_skip_adder(bits, block);
  c.set_uniform_delay(DelaySpec::fixed(10));
  std::cout << "== carry-skip adder audit: " << bits << " bits, blocks of "
            << block << " ==\n";
  std::cout << c.num_gates() << " gates, " << c.inputs().size()
            << " inputs\n\n";

  const StaReport sta = run_sta(c);
  std::cout << "STA topological delay: " << sta.topological_delay
            << " (critical path " << sta.critical_path.size()
            << " nets ending at "
            << c.net(sta.output_arrivals.front().first).name << ")\n";

  Verifier v(c);
  const auto exact = v.exact_floating_delay();
  std::cout << "exact floating delay:  " << exact.delay << "  ("
            << exact.probes << " probes, " << exact.total_backtracks
            << " backtracks total)\n";
  if (exact.topological.is_finite() && exact.delay.is_finite()) {
    std::cout << "STA pessimism removed: "
              << (exact.topological.value() - exact.delay.value())
              << " time units ("
              << std::fixed << std::setprecision(1)
              << 100.0 *
                     double(exact.topological.value() - exact.delay.value()) /
                     double(exact.topological.value())
              << "%)\n\n";
  }

  // Per-output view: the final carry has its own (smaller) exact delay.
  const NetId cout_net = *c.find_net("cout");
  const auto cout_delay = exact_output_delay(v, cout_net);
  std::cout << "cout alone: topological " << cout_delay.topological
            << ", exact floating " << cout_delay.floating << "\n\n";

  // The dominator chain of cout at its just-false delta: this is what
  // Section 4's global implications exploit.
  const TimingCheck check{cout_net, cout_delay.floating + 1};
  ConstraintSystem cs(c);
  for (NetId in : c.inputs()) {
    cs.restrict_domain(in, AbstractSignal::floating_input());
  }
  cs.restrict_domain(cout_net,
                     AbstractSignal::violating(cout_delay.floating + 1));
  cs.schedule_all();
  cs.reach_fixpoint();
  const auto doms = timing_dominators(c, check, dynamic_carriers(cs, check));
  std::cout << "dynamic timing dominators of (cout, "
            << (cout_delay.floating + 1) << "): ";
  for (std::size_t i = 0; i < doms.size(); ++i) {
    if (i) std::cout << " -> ";
    std::cout << c.net(doms[i]).name;
  }
  std::cout << "\n\n";

  // Stage report at delta = exact+1 (the proof) and delta = exact (witness).
  for (const Time delta : {cout_delay.floating + 1, cout_delay.floating}) {
    const auto rep = v.check_output(cout_net, delta);
    std::cout << "check (cout, " << delta << "): " << to_string(rep.conclusion)
              << "  [before-GITD " << to_string(rep.before_gitd)
              << ", after-GITD " << to_string(rep.after_gitd)
              << ", after-stem " << to_string(rep.after_stem) << ", "
              << rep.backtracks << " backtracks, " << std::setprecision(3)
              << rep.seconds << "s]\n";
    if (rep.vector) {
      std::cout << "  vector: " << format_vector(*rep.vector) << "\n";
    }
  }
  return 0;
}
