// AVX2 instantiation of the level-sweep kernels. This is the only
// translation unit compiled with -mavx2 (gated by WAVECK_SIMD); it is
// reached at runtime only after active_kernel_table() checked CPUID, so
// building it never makes the binary require AVX2.
//
// The policy mirrors ScalarOps (level_kernel.cpp) op for op. 64-bit min/max
// have no single AVX2 instruction; they are cmpgt+blend, exactly the
// compare the scalar lanes do. blendv works per byte, which is fine because
// every mask lane is all-ones or all-zero (compare results).
#include "constraints/level_kernel.hpp"

#ifdef WAVECK_HAVE_AVX2

#include <immintrin.h>

#include "constraints/level_kernel_impl.hpp"

namespace waveck::kern {

namespace {

struct Avx2Ops {
  static constexpr bool kIsSimd = true;
  using V = __m256i;
  static V broadcast(std::int64_t x) { return _mm256_set1_epi64x(x); }
  static V load4(const std::int64_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store4(std::int64_t* p, V v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V gather(const std::int64_t* base, const std::uint32_t* idx) {
    const __m128i vidx =
        _mm_load_si128(reinterpret_cast<const __m128i*>(idx));
    return _mm256_i32gather_epi64(reinterpret_cast<const long long*>(base),
                                  vidx, 8);
  }
  static V add(V a, V b) { return _mm256_add_epi64(a, b); }
  static V sub(V a, V b) { return _mm256_sub_epi64(a, b); }
  static V min_(V a, V b) {
    return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
  }
  static V max_(V a, V b) {
    return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
  }
  static V cmpgt(V a, V b) { return _mm256_cmpgt_epi64(a, b); }
  static V cmpeq(V a, V b) { return _mm256_cmpeq_epi64(a, b); }
  static V and_(V a, V b) { return _mm256_and_si256(a, b); }
  static V or_(V a, V b) { return _mm256_or_si256(a, b); }
  static V not_(V a) {
    return _mm256_xor_si256(a, _mm256_set1_epi64x(-1));
  }
  /// m ? b : a, per lane (mask lanes are compare results).
  static V blend(V a, V b, V m) { return _mm256_blendv_epi8(a, b, m); }
};

}  // namespace

const KernelTable& avx2_kernel_table() {
  static const KernelTable t = make_kernel_table<Avx2Ops>();
  return t;
}

}  // namespace waveck::kern

#endif  // WAVECK_HAVE_AVX2
