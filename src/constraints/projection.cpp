#include "constraints/projection.hpp"

#include <cassert>

namespace waveck {
namespace {

/// Narrows `dst` to `dst ∩ with`; records the change.
bool narrow_to(LtInterval& dst, const LtInterval& with) {
  const LtInterval nd = dst.intersect(with);
  if (nd == dst.normalized()) {
    if (!(nd == dst)) dst = nd;  // canonicalise empties silently
    return false;
  }
  dst = nd;
  return true;
}

/// Backward rule for one member of a "joint settle" pair/group
/// (all-non-controlling combination, and the XOR/MUX analogues):
/// lambda_out ∈ [max_lambda + dmin, max_lambda + dmax] over the group, so a
/// member satisfies lambda <= out.max - dmin, and lambda >= out.lmin - dmax
/// unless some sibling can itself land in the output window
/// [out.lmin - dmax, out.max - dmin].
struct JointWindow {
  LtInterval window;  // feasible "group max" values
  bool sibling_covers = false;

  JointWindow(const LtInterval& out, DelaySpec d)
      : window(out.shift_backward(d.dmin, d.dmax)) {}

  void add_sibling(const LtInterval& sib) {
    if (sib.intersects(window)) sibling_covers = true;
  }

  [[nodiscard]] LtInterval member_support() const {
    if (window.is_empty()) return LtInterval::empty();
    const Time lo = sibling_covers ? Time::neg_inf() : window.lmin;
    return {lo, window.max};
  }
};

ProjectionDelta project_unary(GateType type, DelaySpec d, AbstractSignal& out,
                              AbstractSignal& in) {
  ProjectionDelta delta;
  const bool inv = inversion(type);
  for (int v = 0; v <= 1; ++v) {
    const bool iv = v != 0;
    const bool ov = iv != inv;
    delta.out_changed |=
        narrow_to(out.cls(ov), in.cls(iv).shift_forward(d.dmin, d.dmax));
    if (narrow_to(in.cls(iv), out.cls(ov).shift_backward(d.dmin, d.dmax))) {
      delta.mark_in(0);
    }
  }
  return delta;
}

ProjectionDelta project_controlling(GateType type, DelaySpec d,
                                    AbstractSignal& out,
                                    std::span<AbstractSignal> ins) {
  ProjectionDelta delta;
  const bool c = controlling_value(type);
  const bool inv = inversion(type);
  const bool nc = !c;
  const bool out_nc = nc != inv;  // output class when all inputs settle at nc
  const bool out_c = c != inv;    // output class when some input controls
  const std::size_t n = ins.size();

  // ---- forward: non-controlled result -----------------------------------
  {
    LtInterval fwd = LtInterval::empty();
    bool all_nc_possible = true;
    Time lmin = Time::neg_inf();
    Time max = Time::neg_inf();
    for (const auto& in : ins) {
      const LtInterval& w = in.cls(nc);
      if (w.is_empty()) {
        all_nc_possible = false;
        break;
      }
      lmin = Time::max(lmin, w.lmin);
      max = Time::max(max, w.max);
    }
    if (all_nc_possible) fwd = LtInterval{lmin + d.dmin, max + d.dmax};
    delta.out_changed |= narrow_to(out.cls(out_nc), fwd);
  }

  // ---- forward: controlled result ----------------------------------------
  {
    LtInterval fwd = LtInterval::empty();
    bool gate_dead = false;   // some input has a bottom domain
    bool some_forced = false; // some input can only be controlling
    Time forced_cap = Time::pos_inf();
    Time free_cap = Time::neg_inf();
    bool any_ctrl = false;
    for (const auto& in : ins) {
      const LtInterval& wc = in.cls(c);
      const LtInterval& wnc = in.cls(nc);
      if (wc.is_empty() && wnc.is_empty()) {
        gate_dead = true;
        break;
      }
      if (wnc.is_empty()) {  // forced controlling
        some_forced = true;
        forced_cap = Time::min(forced_cap, wc.max);
      }
      if (!wc.is_empty()) {
        any_ctrl = true;
        free_cap = Time::max(free_cap, wc.max);
      }
    }
    if (!gate_dead && any_ctrl) {
      const Time cap = some_forced ? forced_cap : free_cap;
      fwd = LtInterval{Time::neg_inf(), cap + d.dmax};
    }
    delta.out_changed |= narrow_to(out.cls(out_c), fwd);
  }

  // ---- backward, per input ------------------------------------------------
  const LtInterval& so = out.cls(out_c);
  const LtInterval& snc = out.cls(out_nc);
  const Time ctrl_need = so.is_empty() ? Time::pos_inf() : so.lmin - d.dmax;

  for (std::size_t i = 0; i < n; ++i) {
    // Controlling class: only the controlled output class supports it, and
    // the input's last transition must not block the output's required one.
    {
      LtInterval support = LtInterval::empty();
      if (!so.is_empty()) {
        support = LtInterval{ctrl_need, Time::pos_inf()};
      }
      if (narrow_to(ins[i].cls(c), support)) delta.mark_in(i);
    }
    // Non-controlling class: (a) the all-non-controlling combination;
    // (b) a combination where some other input controls the output.
    {
      LtInterval support = LtInterval::empty();
      if (!snc.is_empty()) {
        bool others_nc = true;
        JointWindow jw(snc, d);
        for (std::size_t j = 0; j < n && others_nc; ++j) {
          if (j == i) continue;
          const LtInterval& w = ins[j].cls(nc);
          if (w.is_empty()) {
            others_nc = false;
          } else {
            jw.add_sibling(w);
          }
        }
        if (others_nc) support = support.hull(jw.member_support());
      }
      if (!so.is_empty()) {
        bool exists_ctrl_partner = false;
        bool forced_ok = true;
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const LtInterval& wc = ins[j].cls(c);
          const LtInterval& wnc = ins[j].cls(nc);
          if (!wc.is_empty() && wc.max >= ctrl_need) exists_ctrl_partner = true;
          if (wnc.is_empty() && (wc.is_empty() || wc.max < ctrl_need)) {
            forced_ok = false;  // a forced-controlling sibling blocks S_c
          }
        }
        if (exists_ctrl_partner && forced_ok) support = LtInterval::top();
      }
      if (narrow_to(ins[i].cls(nc), support)) delta.mark_in(i);
    }
  }
  return delta;
}

ProjectionDelta project_xor(GateType type, DelaySpec d, AbstractSignal& out,
                            std::span<AbstractSignal> ins) {
  assert(ins.size() == 2 && "wide XOR must be decomposed for the solver");
  ProjectionDelta delta;
  const bool inv = inversion(type);  // XNOR inverts
  AbstractSignal& a = ins[0];
  AbstractSignal& b = ins[1];

  // ---- forward ------------------------------------------------------------
  for (int g = 0; g <= 1; ++g) {
    const bool gamma = g != 0;
    LtInterval fwd = LtInterval::empty();
    for (int al = 0; al <= 1; ++al) {
      const bool alpha = al != 0;
      const bool beta = (alpha != gamma) != inv;  // alpha ^ beta ^ inv = gamma
      const LtInterval& wa = a.cls(alpha);
      const LtInterval& wb = b.cls(beta);
      if (wa.is_empty() || wb.is_empty()) continue;
      const Time hi = Time::max(wa.max, wb.max) + d.dmax;
      // Opposite simultaneous transitions cancel; when the operand intervals
      // cannot contain a common instant the output transition is exact.
      const Time lo = wa.intersects(wb)
                          ? Time::neg_inf()
                          : Time::max(wa.lmin, wb.lmin) + d.dmin;
      fwd = fwd.hull(LtInterval{lo, hi});
    }
    delta.out_changed |= narrow_to(out.cls(gamma), fwd);
  }

  // ---- backward -------------------------------------------------------------
  for (int side = 0; side <= 1; ++side) {
    AbstractSignal& self = side == 0 ? a : b;
    AbstractSignal& sib = side == 0 ? b : a;
    for (int al = 0; al <= 1; ++al) {
      const bool alpha = al != 0;
      LtInterval support = LtInterval::empty();
      for (int be = 0; be <= 1; ++be) {
        const bool beta = be != 0;
        const bool gamma = (alpha != beta) != inv;
        const LtInterval& wb = sib.cls(beta);
        const LtInterval& so = out.cls(gamma);
        if (wb.is_empty() || so.is_empty()) continue;
        const Time need = so.lmin - d.dmax;  // group max must reach this
        const bool sib_covers = wb.max >= need;
        // Upper: out.max - dmin via own transition; additionally, the
        // sibling can cancel a transition at any instant both can reach.
        Time hi = so.max - d.dmin;
        if (sib_covers) hi = Time::max(hi, wb.max);
        const Time lo = sib_covers ? Time::neg_inf() : need;
        support = support.hull(LtInterval{lo, hi});
      }
      if (narrow_to(self.cls(alpha), support)) {
        delta.mark_in(static_cast<std::size_t>(side));
      }
    }
  }
  return delta;
}

ProjectionDelta project_mux(DelaySpec d, AbstractSignal& out,
                            std::span<AbstractSignal> ins) {
  assert(ins.size() == 3);
  ProjectionDelta delta;
  AbstractSignal& sel = ins[0];

  // ---- forward ------------------------------------------------------------
  for (int v = 0; v <= 1; ++v) {
    const bool val = v != 0;
    LtInterval fwd = LtInterval::empty();
    for (int s = 0; s <= 1; ++s) {
      const bool sv = s != 0;
      const LtInterval& ws = sel.cls(sv);
      const LtInterval& wd = ins[sv ? 2 : 1].cls(val);
      if (ws.is_empty() || wd.is_empty()) continue;
      fwd = fwd.hull(
          LtInterval{Time::neg_inf(), Time::max(ws.max, wd.max) + d.dmax});
    }
    delta.out_changed |= narrow_to(out.cls(val), fwd);
  }

  // ---- backward: data inputs ------------------------------------------------
  for (int s = 0; s <= 1; ++s) {
    const bool sv = s != 0;
    const std::size_t di = sv ? 2 : 1;
    const std::size_t other = sv ? 1 : 2;
    for (int v = 0; v <= 1; ++v) {
      const bool val = v != 0;
      LtInterval support = LtInterval::empty();
      // (a) selected: output follows this data input; select is the sibling.
      {
        const LtInterval& so = out.cls(val);
        const LtInterval& wsel = sel.cls(sv);
        if (!so.is_empty() && !wsel.is_empty()) {
          const Time need = so.lmin - d.dmax;
          const bool sel_covers = wsel.max >= need;
          Time hi = so.max - d.dmin;
          if (sel_covers) hi = Time::max(hi, wsel.max);
          support =
              support.hull({sel_covers ? Time::neg_inf() : need, hi});
        }
      }
      // (b) deselected: unconstrained, provided the opposite select can
      // drive some output class through the other data input.
      {
        const LtInterval& wsel_o = sel.cls(!sv);
        if (!wsel_o.is_empty()) {
          for (int w = 0; w <= 1 && !support.is_top(); ++w) {
            const bool wv = w != 0;
            const LtInterval& so = out.cls(wv);
            const LtInterval& wd = ins[other].cls(wv);
            if (so.is_empty() || wd.is_empty()) continue;
            if (Time::max(wsel_o.max, wd.max) + d.dmax >= so.lmin) {
              support = LtInterval::top();
            }
          }
        }
      }
      if (narrow_to(ins[di].cls(val), support)) delta.mark_in(di);
    }
  }

  // ---- backward: select -------------------------------------------------------
  for (int s = 0; s <= 1; ++s) {
    const bool sv = s != 0;
    LtInterval support = LtInterval::empty();
    const std::size_t di = sv ? 2 : 1;
    const std::size_t other = sv ? 1 : 2;
    for (int v = 0; v <= 1 && !support.is_top(); ++v) {
      const bool val = v != 0;
      const LtInterval& so = out.cls(val);
      const LtInterval& wd = ins[di].cls(val);
      if (so.is_empty() || wd.is_empty()) continue;
      const Time need = so.lmin - d.dmax;
      const bool data_covers = wd.max >= need;
      // A late select toggle can be masked whenever the deselected data
      // input can present the same value: no upper bound in that case.
      const bool maskable = !ins[other].cls(val).is_empty();
      Time hi = maskable ? Time::pos_inf() : so.max - d.dmin;
      if (data_covers) hi = Time::max(hi, wd.max);
      support = support.hull({data_covers ? Time::neg_inf() : need, hi});
    }
    if (narrow_to(sel.cls(sv), support)) delta.mark_in(0);
  }
  return delta;
}

}  // namespace

ProjectionDelta project_gate(GateType type, DelaySpec delay,
                             AbstractSignal& out,
                             std::span<AbstractSignal> ins) {
  assert(ins.size() <= 32);
  switch (type) {
    case GateType::kNot:
    case GateType::kBuf:
    case GateType::kDelay:
      return project_unary(type, delay, out, ins[0]);
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
      return project_controlling(type, delay, out, ins);
    case GateType::kXor:
    case GateType::kXnor:
      return project_xor(type, delay, out, ins);
    case GateType::kMux:
      return project_mux(delay, out, ins);
  }
  return {};
}

}  // namespace waveck
