// Relational gate constraints over abstract signals (paper Section 3.2).
//
// `project_gate` narrows the output and input domains of one gate to the
// narrowest abstract signals containing the projections of the gate's timed
// Boolean relation -- the C_g(X_i, X_j, X_s) operator of the paper. The
// rules, per final-value class (see DESIGN.md for derivations):
//
// Gates with a controlling value c (AND/NAND/OR/NOR), delay [dmin, dmax]:
//  * all-inputs-non-controlling result class: lambda_out = delay +
//    max_i(lambda_i) exactly, so forward = [dmin + max lmins,
//    dmax + max maxes]; backward on an input: lambda_i <= out.max - dmin and
//    lambda_i >= out.lmin - dmax unless a sibling's non-controlling interval
//    intersects the output window (the sibling can carry the last
//    transition).
//  * controlled result class: lambda_out <= dmax + min over controlling
//    inputs of lambda_i and is otherwise free; backward: every
//    controlling-class input gets lambda_i >= out.lmin - dmax. This is the
//    "controlling waveforms are removed because they block the way" rule of
//    the paper's Example 2 / Figure 3.
//  * a non-controlling input class is also supported, unconstrained, by any
//    combination in which some *other* input is controlling and can reach
//    the controlled output class.
//
// XOR/XNOR (2-input): lambda_out <= delay + max(lambda_a, lambda_b), with
// equality when lambda_a != lambda_b; simultaneous opposite transitions can
// cancel, which relaxes the forward lower bound (when the operand intervals
// intersect) and the backward upper bound (when the sibling can pair up).
//
// NOT/BUF/DELAY: exact interval shift.
//
// MUX (complex-gate extension, Section 7): select/data pair rules analogous
// to the non-controlling pair, with masking by the deselected data input.
#pragma once

#include <cstdint>
#include <span>

#include "netlist/gate.hpp"
#include "waveform/abstract_waveform.hpp"

namespace waveck {

struct ProjectionDelta {
  bool out_changed = false;
  std::uint32_t ins_changed = 0;  // bit i set iff ins[i] narrowed

  [[nodiscard]] bool any() const { return out_changed || ins_changed != 0; }
  void mark_in(std::size_t i) { ins_changed |= std::uint32_t{1} << i; }
  [[nodiscard]] bool in_changed(std::size_t i) const {
    return (ins_changed >> i) & 1u;
  }
};

/// Applies the gate's relational constraint once: narrows `out` and each
/// `ins[i]` in place. Sound (never removes a sigma-compatible waveform) and
/// monotone (domains only narrow). At most 32 inputs.
ProjectionDelta project_gate(GateType type, DelaySpec delay,
                             AbstractSignal& out,
                             std::span<AbstractSignal> ins);

}  // namespace waveck
