#include "constraints/constraint_system.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/flight_recorder.hpp"
#include "prof/heartbeat.hpp"
#include "prof/perf_counters.hpp"

namespace waveck {

ConstraintSystem::ConstraintSystem(const Circuit& circuit)
    : circuit_(circuit),
      domains_(circuit.num_nets()),
      gate_level_(circuit.num_gates(), 0),
      save_epoch_(circuit.num_nets(), 0),
      ctr_fixpoints_(telemetry::Registry::current().counter("engine.fixpoints")),
      ctr_applications_(
          telemetry::Registry::current().counter("engine.applications")),
      ctr_narrowings_(
          telemetry::Registry::current().counter("engine.narrowings")),
      ctr_conflicts_(telemetry::Registry::current().counter("engine.conflicts")),
      ctr_gate_evals_(
          telemetry::Registry::current().counter("fixpoint.gate_evals")),
      ctr_level_sweeps_(
          telemetry::Registry::current().counter("fixpoint.level_sweeps")),
      ctr_simd_batches_(
          telemetry::Registry::current().counter("fixpoint.simd_batches")),
      ctr_scalar_tail_(
          telemetry::Registry::current().counter("fixpoint.scalar_tail")),
      ctr_perf_cycles_(
          telemetry::Registry::current().counter("perf.fixpoint.cycles")),
      ctr_perf_instructions_(telemetry::Registry::current().counter(
          "perf.fixpoint.instructions")),
      ctr_perf_cache_refs_(telemetry::Registry::current().counter(
          "perf.fixpoint.cache_references")),
      ctr_perf_cache_misses_(telemetry::Registry::current().counter(
          "perf.fixpoint.cache_misses")),
      ctr_perf_branch_misses_(telemetry::Registry::current().counter(
          "perf.fixpoint.branch_misses")),
      ctr_perf_wall_ns_(
          telemetry::Registry::current().counter("perf.fixpoint.wall_ns")),
      ctr_perf_sections_(
          telemetry::Registry::current().counter("perf.fixpoint.sections")),
      h_fixpoint_narrowings_(telemetry::Registry::current().histogram(
          "engine.fixpoint_narrowings")),
      lh_queue_depth_(
          telemetry::Registry::current().histogram("engine.queue_depth")),
      lh_narrowing_magnitude_(telemetry::Registry::current().histogram(
          "engine.narrowing_magnitude")),
      g_trail_depth_(telemetry::Registry::current().gauge("engine.trail_depth")),
      g_queue_depth_(telemetry::Registry::current().gauge("engine.queue_depth")),
      g_arena_bytes_(
          telemetry::Registry::current().gauge("engine.arena_bytes")) {
  // Longest-path gate levels: level(g) = 1 + max level over driven inputs.
  for (GateId g : circuit.topo_order()) {
    std::uint32_t lv = 0;
    for (NetId in : circuit.gate(g).ins) {
      const GateId drv = circuit.net(in).driver;
      if (drv.valid()) lv = std::max(lv, gate_level_[drv.index()] + 1);
    }
    gate_level_[g.index()] = lv;
  }
  plan_.build(circuit, gate_level_);
  slot_queued_.assign(circuit.num_gates());
  level_count_.assign(plan_.num_levels, 0);
  cursor_ = plan_.num_levels;
}

void ConstraintSystem::enable_change_log() {
  if (log_enabled_) return;
  log_enabled_ = true;
  log_bits_.assign(circuit_.num_nets());
}

void ConstraintSystem::save_if_needed(NetId n) {
  auto& epoch = save_epoch_[n.index()];
  if (epoch == current_epoch_) return;
  trail_.push_back({n, domains_.get(n), epoch});
  epoch = current_epoch_;
}

void ConstraintSystem::commit_domain(NetId n, const AbstractSignal& value,
                                     GateId /*source*/) {
  const AbstractSignal dom = domains_.get(n);
  const AbstractSignal nd = dom.intersect(value);
  if (nd == dom) return;

  save_if_needed(n);
  const bool was_single = dom.single_class();
  const bool was_bottom = dom.is_bottom();
  const Time old_latest = dom.latest();
  domains_.set(n, nd);
  ++narrowings_;
  ++domain_gen_;
  log_change(n);
  if (nd.is_bottom() && !was_bottom) {
    ++bottom_count_;
    ctr_conflicts_.inc();
  }

  // Magnitude of the tightening of the latest-transition bound; an infinite
  // jump (top -> finite, or a class emptying) lands in the overflow bucket.
  const Time new_latest = nd.latest();
  if (old_latest == new_latest) {
    lh_narrowing_magnitude_.observe(0);
  } else if (old_latest.is_finite() && new_latest.is_finite()) {
    lh_narrowing_magnitude_.observe(
        static_cast<std::uint64_t>(old_latest.value() - new_latest.value()));
  } else {
    lh_narrowing_magnitude_.observe(
        telemetry::Histogram::bucket_lower_bound(
            telemetry::Histogram::kBuckets - 1));
  }

  schedule_net(n);

  if (implications_ != nullptr && !nd.is_bottom() && nd.single_class() &&
      !was_single) {
    const bool v = nd.the_class();
    for (const auto& [x, w] : implications_->of(n, v)) {
      commit_domain(x, AbstractSignal::class_only(w), GateId{});
    }
  }
}

bool ConstraintSystem::restrict_domain(NetId n, const AbstractSignal& with) {
  const std::uint64_t before = narrowings_;
  commit_domain(n, with, GateId{});
  return narrowings_ != before;
}

void ConstraintSystem::schedule_gate(GateId g) {
  const std::uint32_t slot = plan_.slot_of_gate[g.index()];
  if (slot_queued_.test_set(slot)) return;
  const std::size_t lv = gate_level_[g.index()];
  ++level_count_[lv];
  ++queue_size_;
  if (lv < cursor_) cursor_ = lv;
  if (lv > touched_hi_) touched_hi_ = lv;
}

void ConstraintSystem::schedule_net(NetId n) {
  const Net& net = circuit_.net(n);
  if (net.driver.valid()) schedule_gate(net.driver);
  for (GateId f : net.fanouts) schedule_gate(f);
}

void ConstraintSystem::schedule_all() {
  for (GateId g : circuit_.topo_order()) schedule_gate(g);
}

void ConstraintSystem::clear_queue() {
  if (queue_size_ != 0) {
    // Invariant: every level below cursor_ is already empty, and nothing
    // was pushed above touched_hi_ since the last clear.
    for (std::size_t lv = cursor_; lv <= touched_hi_; ++lv) {
      if (level_count_[lv] != 0) {
        slot_queued_.clear_range(plan_.level_begin[lv],
                                 plan_.level_begin[lv + 1]);
        level_count_[lv] = 0;
      }
    }
    queue_size_ = 0;
  }
  cursor_ = plan_.num_levels;
  touched_hi_ = 0;
}

bool ConstraintSystem::sweep_level(std::size_t lv,
                                   std::uint64_t& next_deadline_check,
                                   std::size_t& peak_queue) {
  const std::uint32_t sb = plan_.level_begin[lv];
  const std::uint32_t se = plan_.level_begin[lv + 1];
  // Snapshot and unqueue the level's scheduled slots before evaluating
  // anything: commits during the sweep re-queue gates (same level included)
  // for the *next* sweep. The word scan yields slots in ascending order,
  // i.e. already grouped by the plan's (kind, type, arity) runs.
  sweep_slots_.clear();
  slot_queued_.for_each_set_in_range(sb, se, [&](std::size_t s) {
    sweep_slots_.push_back(static_cast<std::uint32_t>(s));
    // Wave width at this drain step (the popped gate included).
    lh_queue_depth_.observe(queue_size_);
    if (queue_size_ > peak_queue) peak_queue = queue_size_;
    --queue_size_;
  });
  slot_queued_.clear_range(sb, se);
  level_count_[lv] = 0;

  const KernelTable& kt = active_kernel_table();
  const std::size_t nslots = sweep_slots_.size();
  std::size_t r = plan_.run_begin_of_level[lv];
  std::size_t i = 0;
  while (i < nslots) {
    while (plan_.runs[r].end <= sweep_slots_[i]) ++r;
    const KernelRun& run = plan_.runs[r];
    std::size_t j = i + 1;
    while (j < nslots && sweep_slots_[j] < run.end) ++j;
    const std::size_t seg = j - i;
    if (applications_ >= next_deadline_check) {
      if (prof::monotonic_ns() >= deadline_ns_) {
        clear_queue();
        deadline_hit_ = true;
        return false;
      }
      next_deadline_check = applications_ + kDeadlineStride;
    }
    applications_ += seg;
    kt.fn[static_cast<std::size_t>(run.kind)](domains_, plan_, run,
                                              sweep_slots_.data() + i, seg,
                                              *this, kstats_);
    if (bottom_count_ > 0) return true;  // outer loop clears and concludes
    i = j;
  }
  return true;
}

ConstraintSystem::Status ConstraintSystem::reach_fixpoint() {
  if (deadline_hit_) {
    // Expired on an earlier drain and not re-armed since: nothing more to
    // compute, the caller is on its way to kAbandoned.
    clear_queue();
    return Status::kPossibleViolation;
  }
  const std::uint64_t apps0 = applications_;
  const std::uint64_t nar0 = narrowings_;
  const std::size_t depth0 = queue_size_;
  // Hardware-counter window around the whole drain: two group reads per
  // fixpoint, nothing inside the loop.
  const bool perf_on = prof::counters_enabled();
  prof::CounterSample perf0;
  if (perf_on) perf0 = prof::thread_counter_group().read();
  // Tripwire against unforeseen non-termination (Theorem 1 guarantees the
  // fixpoint is finite; this bound is far above any observed run).
  const std::uint64_t budget =
      applications_ + 1000ull * std::max<std::size_t>(circuit_.num_gates(),
                                                      10000);
  Status status = Status::kPossibleViolation;
  std::size_t peak_queue = queue_size_;
  std::uint64_t sweeps = 0;
  kstats_ = {};
  // Deadline bookkeeping: one clock read every kDeadlineStride gate
  // applications (and one up front, so an already-expired deadline never
  // starts a drain). A hit clears the queue and latches deadline_hit_; the
  // domains stay sound but are not a fixpoint — callers must abandon.
  std::uint64_t next_deadline_check =
      deadline_ns_ != 0 ? applications_ : ~std::uint64_t{0};
  while (queue_size_ > 0) {
    while (level_count_[cursor_] == 0) ++cursor_;
    ++sweeps;
    if (!sweep_level(cursor_, next_deadline_check, peak_queue)) break;
    if (inconsistent()) {
      clear_queue();
      status = Status::kNoViolation;
      break;
    }
    if (applications_ > budget) {
      throw std::logic_error("constraint propagation exceeded budget");
    }
  }

  ctr_fixpoints_.inc();
  ctr_applications_.add(applications_ - apps0);
  ctr_gate_evals_.add(applications_ - apps0);
  ctr_narrowings_.add(narrowings_ - nar0);
  ctr_level_sweeps_.add(sweeps);
  ctr_simd_batches_.add(kstats_.simd_batches);
  ctr_scalar_tail_.add(kstats_.scalar_tail);
  if (perf_on) {
    const prof::CounterDelta d =
        prof::delta_between(perf0, prof::thread_counter_group().read());
    ctr_perf_cycles_.add(d.cycles);
    ctr_perf_instructions_.add(d.instructions);
    ctr_perf_cache_refs_.add(d.cache_references);
    ctr_perf_cache_misses_.add(d.cache_misses);
    ctr_perf_branch_misses_.add(d.branch_misses);
    ctr_perf_wall_ns_.add(d.wall_ns);
    ctr_perf_sections_.inc();
  }
  // Liveness tick for the --progress monitor: gate evaluations are the
  // engine's finest-grained forward-progress unit (+1 so even an empty
  // drain counts as life).
  if (prof::heartbeat_enabled()) {
    prof::ActivityBoard::tick(applications_ - apps0 + 1);
  }
  h_fixpoint_narrowings_.observe(narrowings_ - nar0);
  lh_queue_depth_.flush();
  lh_narrowing_magnitude_.flush();
  // High-water gauges, once per fixpoint: their `max` accumulates the
  // whole-run peak even though `value` is only the latest observation.
  g_trail_depth_.set(static_cast<std::int64_t>(trail_.size()));
  g_queue_depth_.set(static_cast<std::int64_t>(peak_queue));
  g_arena_bytes_.set(static_cast<std::int64_t>(arena_bytes()));
  if (telemetry::trace_enabled()) {
    telemetry::emit(
        "propagate",
        {{"queue", depth0},
         {"applications", applications_ - apps0},
         {"revisions", narrowings_ - nar0},
         {"status", status == Status::kNoViolation ? "N" : "P"}});
  }
  if (flight::enabled()) {
    flight::record(flight::Kind::kPropagate, {},
                   static_cast<std::int64_t>(applications_ - apps0),
                   static_cast<std::int64_t>(narrowings_ - nar0),
                   status == Status::kNoViolation ? 0 : 1);
  }
  return status;
}

std::vector<NetId> ConstraintSystem::changed_since(Mark mark) const {
  std::vector<NetId> nets;
  nets.reserve(trail_.size() - mark);
  for (std::size_t i = mark; i < trail_.size(); ++i) {
    nets.push_back(trail_[i].net);
  }
  return nets;
}

ConstraintSystem::Mark ConstraintSystem::push_state() {
  current_epoch_ = ++epoch_counter_;
  return trail_.size();
}

void ConstraintSystem::pop_to(Mark mark) {
  if (trail_.size() > mark) ++domain_gen_;
  while (trail_.size() > mark) {
    TrailEntry& e = trail_.back();
    if (domains_.is_bottom(e.net.index()) && !e.old_value.is_bottom()) {
      --bottom_count_;
    }
    domains_.set(e.net, e.old_value);
    save_epoch_[e.net.index()] = e.old_epoch;
    log_change(e.net);
    trail_.pop_back();
  }
  clear_queue();
  current_epoch_ = ++epoch_counter_;
}

}  // namespace waveck
