#include "constraints/constraint_system.hpp"

#include <algorithm>
#include <stdexcept>

#include "constraints/projection.hpp"
#include "prof/heartbeat.hpp"
#include "prof/perf_counters.hpp"

namespace waveck {

ConstraintSystem::ConstraintSystem(const Circuit& circuit)
    : circuit_(circuit),
      domains_(circuit.num_nets(), AbstractSignal::top()),
      gate_level_(circuit.num_gates(), 0),
      in_queue_(circuit.num_gates(), 0),
      save_epoch_(circuit.num_nets(), 0),
      ctr_fixpoints_(telemetry::Registry::current().counter("engine.fixpoints")),
      ctr_applications_(
          telemetry::Registry::current().counter("engine.applications")),
      ctr_narrowings_(
          telemetry::Registry::current().counter("engine.narrowings")),
      ctr_conflicts_(telemetry::Registry::current().counter("engine.conflicts")),
      ctr_gate_evals_(
          telemetry::Registry::current().counter("fixpoint.gate_evals")),
      ctr_perf_cycles_(
          telemetry::Registry::current().counter("perf.fixpoint.cycles")),
      ctr_perf_instructions_(telemetry::Registry::current().counter(
          "perf.fixpoint.instructions")),
      ctr_perf_cache_refs_(telemetry::Registry::current().counter(
          "perf.fixpoint.cache_references")),
      ctr_perf_cache_misses_(telemetry::Registry::current().counter(
          "perf.fixpoint.cache_misses")),
      ctr_perf_branch_misses_(telemetry::Registry::current().counter(
          "perf.fixpoint.branch_misses")),
      ctr_perf_wall_ns_(
          telemetry::Registry::current().counter("perf.fixpoint.wall_ns")),
      ctr_perf_sections_(
          telemetry::Registry::current().counter("perf.fixpoint.sections")),
      h_fixpoint_narrowings_(telemetry::Registry::current().histogram(
          "engine.fixpoint_narrowings")),
      lh_queue_depth_(
          telemetry::Registry::current().histogram("engine.queue_depth")),
      lh_narrowing_magnitude_(telemetry::Registry::current().histogram(
          "engine.narrowing_magnitude")),
      g_trail_depth_(telemetry::Registry::current().gauge("engine.trail_depth")),
      g_queue_depth_(telemetry::Registry::current().gauge("engine.queue_depth")),
      g_arena_bytes_(
          telemetry::Registry::current().gauge("engine.arena_bytes")) {
  // Longest-path gate levels: level(g) = 1 + max level over driven inputs.
  std::uint32_t max_lv = 0;
  for (GateId g : circuit.topo_order()) {
    std::uint32_t lv = 0;
    for (NetId in : circuit.gate(g).ins) {
      const GateId drv = circuit.net(in).driver;
      if (drv.valid()) lv = std::max(lv, gate_level_[drv.index()] + 1);
    }
    gate_level_[g.index()] = lv;
    max_lv = std::max(max_lv, lv);
  }
  buckets_.resize(circuit.num_gates() > 0 ? max_lv + 1 : 0);
  cursor_ = buckets_.size();
}

void ConstraintSystem::enable_change_log() {
  if (log_enabled_) return;
  log_enabled_ = true;
  log_stamp_.assign(circuit_.num_nets(), 0);
}

void ConstraintSystem::save_if_needed(NetId n) {
  auto& epoch = save_epoch_[n.index()];
  if (epoch == current_epoch_) return;
  trail_.push_back({n, domains_[n.index()], epoch});
  epoch = current_epoch_;
}

void ConstraintSystem::commit_domain(NetId n, const AbstractSignal& value,
                                     GateId /*source*/) {
  AbstractSignal& dom = domains_[n.index()];
  const AbstractSignal nd = dom.intersect(value);
  if (nd == dom) return;

  save_if_needed(n);
  const bool was_single = dom.single_class();
  const bool was_bottom = dom.is_bottom();
  const Time old_latest = dom.latest();
  dom = nd;
  ++narrowings_;
  ++domain_gen_;
  log_change(n);
  if (nd.is_bottom() && !was_bottom) {
    ++bottom_count_;
    ctr_conflicts_.inc();
  }

  // Magnitude of the tightening of the latest-transition bound; an infinite
  // jump (top -> finite, or a class emptying) lands in the overflow bucket.
  const Time new_latest = nd.latest();
  if (old_latest == new_latest) {
    lh_narrowing_magnitude_.observe(0);
  } else if (old_latest.is_finite() && new_latest.is_finite()) {
    lh_narrowing_magnitude_.observe(
        static_cast<std::uint64_t>(old_latest.value() - new_latest.value()));
  } else {
    lh_narrowing_magnitude_.observe(
        telemetry::Histogram::bucket_lower_bound(
            telemetry::Histogram::kBuckets - 1));
  }

  schedule_net(n);

  if (implications_ != nullptr && !nd.is_bottom() && nd.single_class() &&
      !was_single) {
    const bool v = nd.the_class();
    for (const auto& [x, w] : implications_->of(n, v)) {
      commit_domain(x, AbstractSignal::class_only(w), GateId{});
    }
  }
}

bool ConstraintSystem::restrict_domain(NetId n, const AbstractSignal& with) {
  const std::uint64_t before = narrowings_;
  commit_domain(n, with, GateId{});
  return narrowings_ != before;
}

void ConstraintSystem::schedule_gate(GateId g) {
  if (in_queue_[g.index()] != 0) return;
  in_queue_[g.index()] = 1;
  const std::size_t lv = gate_level_[g.index()];
  buckets_[lv].push_back(g);
  ++queue_size_;
  if (lv < cursor_) cursor_ = lv;
  if (lv > touched_hi_) touched_hi_ = lv;
}

void ConstraintSystem::schedule_net(NetId n) {
  const Net& net = circuit_.net(n);
  if (net.driver.valid()) schedule_gate(net.driver);
  for (GateId f : net.fanouts) schedule_gate(f);
}

void ConstraintSystem::schedule_all() {
  for (GateId g : circuit_.topo_order()) schedule_gate(g);
}

void ConstraintSystem::clear_queue() {
  if (queue_size_ != 0) {
    // Invariant: every bucket below cursor_ is already empty, and nothing
    // was pushed above touched_hi_ since the last clear.
    for (std::size_t lv = cursor_; lv <= touched_hi_; ++lv) {
      for (GateId g : buckets_[lv]) in_queue_[g.index()] = 0;
      buckets_[lv].clear();
    }
    queue_size_ = 0;
  }
  cursor_ = buckets_.size();
  touched_hi_ = 0;
}

void ConstraintSystem::apply_gate(GateId gid) {
  const Gate& g = circuit_.gate(gid);
  AbstractSignal out = domains_[g.out.index()];
  // Local copies: projections see a consistent snapshot; commits re-intersect
  // so concurrent implication-driven narrowing is never widened back.
  std::vector<AbstractSignal>& ins = apply_ins_;
  ins.clear();
  for (NetId in : g.ins) ins.push_back(domains_[in.index()]);

  const ProjectionDelta delta = project_gate(g.type, g.delay, out, ins);
  ++applications_;
  if (delta.out_changed) commit_domain(g.out, out, gid);
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (delta.in_changed(i)) commit_domain(g.ins[i], ins[i], gid);
  }
}

ConstraintSystem::Status ConstraintSystem::reach_fixpoint() {
  if (deadline_hit_) {
    // Expired on an earlier drain and not re-armed since: nothing more to
    // compute, the caller is on its way to kAbandoned.
    clear_queue();
    return Status::kPossibleViolation;
  }
  const std::uint64_t apps0 = applications_;
  const std::uint64_t nar0 = narrowings_;
  const std::size_t depth0 = queue_size_;
  // Hardware-counter window around the whole drain: two group reads per
  // fixpoint, nothing inside the loop.
  const bool perf_on = prof::counters_enabled();
  prof::CounterSample perf0;
  if (perf_on) perf0 = prof::thread_counter_group().read();
  // Tripwire against unforeseen non-termination (Theorem 1 guarantees the
  // fixpoint is finite; this bound is far above any observed run).
  const std::uint64_t budget =
      applications_ + 1000ull * std::max<std::size_t>(circuit_.num_gates(),
                                                      10000);
  Status status = Status::kPossibleViolation;
  std::size_t peak_queue = queue_size_;
  // Deadline bookkeeping: one clock read every kDeadlineStride gate
  // applications (and one up front, so an already-expired deadline never
  // starts a drain). A hit clears the queue and latches deadline_hit_; the
  // domains stay sound but are not a fixpoint — callers must abandon.
  std::uint64_t next_deadline_check =
      deadline_ns_ != 0 ? applications_ : ~std::uint64_t{0};
  while (queue_size_ > 0) {
    if (applications_ >= next_deadline_check) {
      if (prof::monotonic_ns() >= deadline_ns_) {
        clear_queue();
        deadline_hit_ = true;
        break;
      }
      next_deadline_check = applications_ + kDeadlineStride;
    }
    while (buckets_[cursor_].empty()) ++cursor_;
    std::vector<GateId>& bucket = buckets_[cursor_];
    const GateId g = bucket.back();
    bucket.pop_back();
    in_queue_[g.index()] = 0;
    // Wave width at this drain step (the popped gate included).
    lh_queue_depth_.observe(queue_size_);
    if (queue_size_ > peak_queue) peak_queue = queue_size_;
    --queue_size_;
    apply_gate(g);
    if (inconsistent()) {
      clear_queue();
      status = Status::kNoViolation;
      break;
    }
    if (applications_ > budget) {
      throw std::logic_error("constraint propagation exceeded budget");
    }
  }

  ctr_fixpoints_.inc();
  ctr_applications_.add(applications_ - apps0);
  ctr_gate_evals_.add(applications_ - apps0);
  ctr_narrowings_.add(narrowings_ - nar0);
  if (perf_on) {
    const prof::CounterDelta d =
        prof::delta_between(perf0, prof::thread_counter_group().read());
    ctr_perf_cycles_.add(d.cycles);
    ctr_perf_instructions_.add(d.instructions);
    ctr_perf_cache_refs_.add(d.cache_references);
    ctr_perf_cache_misses_.add(d.cache_misses);
    ctr_perf_branch_misses_.add(d.branch_misses);
    ctr_perf_wall_ns_.add(d.wall_ns);
    ctr_perf_sections_.inc();
  }
  // Liveness tick for the --progress monitor: gate evaluations are the
  // engine's finest-grained forward-progress unit (+1 so even an empty
  // drain counts as life).
  if (prof::heartbeat_enabled()) {
    prof::ActivityBoard::tick(applications_ - apps0 + 1);
  }
  h_fixpoint_narrowings_.observe(narrowings_ - nar0);
  lh_queue_depth_.flush();
  lh_narrowing_magnitude_.flush();
  // High-water gauges, once per fixpoint: their `max` accumulates the
  // whole-run peak even though `value` is only the latest observation.
  g_trail_depth_.set(static_cast<std::int64_t>(trail_.size()));
  g_queue_depth_.set(static_cast<std::int64_t>(peak_queue));
  g_arena_bytes_.set(static_cast<std::int64_t>(arena_bytes()));
  if (telemetry::trace_enabled()) {
    telemetry::emit(
        "propagate",
        {{"queue", depth0},
         {"applications", applications_ - apps0},
         {"revisions", narrowings_ - nar0},
         {"status", status == Status::kNoViolation ? "N" : "P"}});
  }
  return status;
}

std::vector<NetId> ConstraintSystem::changed_since(Mark mark) const {
  std::vector<NetId> nets;
  nets.reserve(trail_.size() - mark);
  for (std::size_t i = mark; i < trail_.size(); ++i) {
    nets.push_back(trail_[i].net);
  }
  return nets;
}

ConstraintSystem::Mark ConstraintSystem::push_state() {
  current_epoch_ = ++epoch_counter_;
  return trail_.size();
}

void ConstraintSystem::pop_to(Mark mark) {
  if (trail_.size() > mark) ++domain_gen_;
  while (trail_.size() > mark) {
    TrailEntry& e = trail_.back();
    AbstractSignal& dom = domains_[e.net.index()];
    if (dom.is_bottom() && !e.old_value.is_bottom()) --bottom_count_;
    dom = e.old_value;
    save_epoch_[e.net.index()] = e.old_epoch;
    log_change(e.net);
    trail_.pop_back();
  }
  clear_queue();
  current_epoch_ = ++epoch_counter_;
}

}  // namespace waveck
