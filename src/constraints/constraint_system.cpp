#include "constraints/constraint_system.hpp"

#include <stdexcept>

#include "constraints/projection.hpp"

namespace waveck {

ConstraintSystem::ConstraintSystem(const Circuit& circuit)
    : circuit_(circuit),
      domains_(circuit.num_nets(), AbstractSignal::top()),
      in_queue_(circuit.num_gates(), false),
      save_epoch_(circuit.num_nets(), 0) {}

void ConstraintSystem::save_if_needed(NetId n) {
  auto& epoch = save_epoch_[n.index()];
  if (epoch == current_epoch_) return;
  trail_.push_back({n, domains_[n.index()], epoch});
  epoch = current_epoch_;
}

void ConstraintSystem::commit_domain(NetId n, const AbstractSignal& value,
                                     GateId /*source*/) {
  AbstractSignal& dom = domains_[n.index()];
  const AbstractSignal nd = dom.intersect(value);
  if (nd == dom) return;

  save_if_needed(n);
  const bool was_single = dom.single_class();
  const bool was_bottom = dom.is_bottom();
  dom = nd;
  ++narrowings_;
  if (nd.is_bottom() && !was_bottom) ++bottom_count_;

  schedule_net(n);

  if (implications_ != nullptr && !nd.is_bottom() && nd.single_class() &&
      !was_single) {
    const bool v = nd.the_class();
    for (const auto& [x, w] : implications_->of(n, v)) {
      commit_domain(x, AbstractSignal::class_only(w), GateId{});
    }
  }
}

bool ConstraintSystem::restrict_domain(NetId n, const AbstractSignal& with) {
  const std::uint64_t before = narrowings_;
  commit_domain(n, with, GateId{});
  return narrowings_ != before;
}

void ConstraintSystem::schedule_gate(GateId g) {
  if (in_queue_[g.index()]) return;
  in_queue_[g.index()] = true;
  queue_.push_back(g);
}

void ConstraintSystem::schedule_net(NetId n) {
  const Net& net = circuit_.net(n);
  if (net.driver.valid()) schedule_gate(net.driver);
  for (GateId f : net.fanouts) schedule_gate(f);
}

void ConstraintSystem::schedule_all() {
  for (GateId g : circuit_.topo_order()) schedule_gate(g);
}

void ConstraintSystem::clear_queue() {
  queue_.clear();
  in_queue_.assign(in_queue_.size(), false);
}

void ConstraintSystem::apply_gate(GateId gid) {
  const Gate& g = circuit_.gate(gid);
  AbstractSignal out = domains_[g.out.index()];
  // Local copies: projections see a consistent snapshot; commits re-intersect
  // so concurrent implication-driven narrowing is never widened back.
  std::vector<AbstractSignal> ins;
  ins.reserve(g.ins.size());
  for (NetId in : g.ins) ins.push_back(domains_[in.index()]);

  const ProjectionDelta delta = project_gate(g.type, g.delay, out, ins);
  ++applications_;
  if (delta.out_changed) commit_domain(g.out, out, gid);
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (delta.in_changed(i)) commit_domain(g.ins[i], ins[i], gid);
  }
}

ConstraintSystem::Status ConstraintSystem::reach_fixpoint() {
  // Tripwire against unforeseen non-termination (Theorem 1 guarantees the
  // fixpoint is finite; this bound is far above any observed run).
  const std::uint64_t budget =
      applications_ + 1000ull * std::max<std::size_t>(circuit_.num_gates(),
                                                      10000);
  while (!queue_.empty()) {
    const GateId g = queue_.front();
    queue_.pop_front();
    in_queue_[g.index()] = false;
    apply_gate(g);
    if (inconsistent()) {
      clear_queue();
      return Status::kNoViolation;
    }
    if (applications_ > budget) {
      throw std::logic_error("constraint propagation exceeded budget");
    }
  }
  return Status::kPossibleViolation;
}

std::vector<NetId> ConstraintSystem::changed_since(Mark mark) const {
  std::vector<NetId> nets;
  nets.reserve(trail_.size() - mark);
  for (std::size_t i = mark; i < trail_.size(); ++i) {
    nets.push_back(trail_[i].net);
  }
  return nets;
}

ConstraintSystem::Mark ConstraintSystem::push_state() {
  current_epoch_ = ++epoch_counter_;
  return trail_.size();
}

void ConstraintSystem::pop_to(Mark mark) {
  while (trail_.size() > mark) {
    TrailEntry& e = trail_.back();
    AbstractSignal& dom = domains_[e.net.index()];
    if (dom.is_bottom() && !e.old_value.is_bottom()) --bottom_count_;
    dom = e.old_value;
    save_epoch_[e.net.index()] = e.old_epoch;
    trail_.pop_back();
  }
  clear_queue();
  current_epoch_ = ++epoch_counter_;
}

}  // namespace waveck
