#include "constraints/level_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <span>
#include <tuple>

#include "constraints/level_kernel_impl.hpp"
#include "constraints/projection.hpp"

namespace waveck {

namespace kern {

/// Exact per-gate fallback: loads the touched signals, runs the scalar
/// relational projection, and pushes deltas through the sink — byte for
/// byte what the event-driven engine's apply_gate did.
void generic_kernel(const SoaDomain& dom, const LevelPlan& plan,
                    const KernelRun& run, const std::uint32_t* slots,
                    std::size_t n, CommitSink& sink, KernelStats& stats) {
  stats.scalar_tail += n;
  const std::size_t arity = run.arity;
  assert(arity <= 32 && "projection contract caps gate fanin at 32");
  AbstractSignal ins[32];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = slots[i];
    const std::uint32_t onet = plan.out_net[s];
    AbstractSignal out = dom.get(NetId{onet});
    const std::uint32_t off = plan.ins_offset[s];
    for (std::size_t k = 0; k < arity; ++k) {
      ins[k] = dom.get(NetId{plan.ins_net[off + k]});
    }
    DelaySpec d;
    d.dmin = plan.dmin[s];
    d.dmax = plan.dmax[s];
    const ProjectionDelta delta =
        project_gate(run.type, d, out, std::span<AbstractSignal>(ins, arity));
    if (delta.out_changed) sink.kernel_commit(NetId{onet}, out);
    for (std::size_t k = 0; k < arity; ++k) {
      if (delta.in_changed(k)) {
        sink.kernel_commit(NetId{plan.ins_net[off + k]}, ins[k]);
      }
    }
    if (sink.kernel_inconsistent()) return;
  }
}

/// 4 plain int64 lanes; every op mirrors the AVX2 policy one for one, so
/// the shared kernel templates compile to structurally identical narrowing.
/// Masks are all-ones/all-zero words, exactly like vector compare results.
struct ScalarOps {
  static constexpr bool kIsSimd = false;
  struct V {
    std::int64_t l[4];
  };
  static V broadcast(std::int64_t x) { return {{x, x, x, x}}; }
  static V load4(const std::int64_t* p) { return {{p[0], p[1], p[2], p[3]}}; }
  static void store4(std::int64_t* p, V v) {
    for (int i = 0; i < 4; ++i) p[i] = v.l[i];
  }
  static V gather(const std::int64_t* base, const std::uint32_t* idx) {
    return {{base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]]}};
  }
  static V add(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] + b.l[i];
    return r;
  }
  static V sub(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] - b.l[i];
    return r;
  }
  static V min_(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] < b.l[i] ? a.l[i] : b.l[i];
    return r;
  }
  static V max_(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] > b.l[i] ? a.l[i] : b.l[i];
    return r;
  }
  static V cmpgt(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] > b.l[i] ? -1 : 0;
    return r;
  }
  static V cmpeq(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] == b.l[i] ? -1 : 0;
    return r;
  }
  static V and_(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] & b.l[i];
    return r;
  }
  static V or_(V a, V b) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] | b.l[i];
    return r;
  }
  static V not_(V a) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = ~a.l[i];
    return r;
  }
  /// m ? b : a, per lane (m is all-ones/all-zero).
  static V blend(V a, V b, V m) {
    V r;
    for (int i = 0; i < 4; ++i) r.l[i] = (a.l[i] & ~m.l[i]) | (b.l[i] & m.l[i]);
    return r;
  }
};

#ifdef WAVECK_HAVE_AVX2
// Defined in level_kernel_avx2.cpp (the only -mavx2 translation unit).
const KernelTable& avx2_kernel_table();
#endif

}  // namespace kern

namespace {

[[nodiscard]] KernelKind kind_of(GateType t, std::size_t arity) {
  if (is_unary(t) && arity == 1) return KernelKind::kUnary;
  if (has_controlling_value(t) && arity >= 1 && arity <= kMaxControllingArity) {
    return KernelKind::kControlling;
  }
  return KernelKind::kGeneric;
}

}  // namespace

void LevelPlan::build(const Circuit& c,
                      const std::vector<std::uint32_t>& gate_level) {
  const std::size_t ng = c.num_gates();
  num_levels = 0;
  for (std::uint32_t lv : gate_level) {
    num_levels = std::max<std::size_t>(num_levels, lv + 1);
  }

  std::vector<std::uint32_t> topo_pos(ng, 0);
  std::uint32_t p = 0;
  for (GateId g : c.topo_order()) topo_pos[g.index()] = p++;

  std::vector<std::uint32_t> order(ng);
  std::iota(order.begin(), order.end(), 0u);
  const auto key = [&](std::uint32_t gi) {
    const Gate& g = c.gate(GateId{gi});
    const std::size_t arity = g.ins.size();
    return std::tuple(gate_level[gi],
                      static_cast<std::uint8_t>(kind_of(g.type, arity)),
                      static_cast<std::uint8_t>(g.type),
                      static_cast<std::uint32_t>(arity), topo_pos[gi]);
  };
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });

  slot_of_gate.assign(ng, 0);
  gate_of_slot = order;
  out_net.assign(ng, 0);
  ins_offset.assign(ng + 1, 0);
  dmin.assign(ng, 0);
  dmax.assign(ng, 0);
  ins_net.clear();
  runs.clear();
  level_begin.assign(num_levels + 1, 0);
  run_begin_of_level.assign(num_levels + 1, 0);

  for (std::uint32_t s = 0; s < ng; ++s) {
    const std::uint32_t gi = order[s];
    slot_of_gate[gi] = s;
    const Gate& g = c.gate(GateId{gi});
    out_net[s] = g.out.value();
    ins_offset[s] = static_cast<std::uint32_t>(ins_net.size());
    for (NetId in : g.ins) ins_net.push_back(in.value());
    dmin[s] = g.delay.dmin;
    dmax[s] = g.delay.dmax;

    const std::size_t arity = g.ins.size();
    const KernelKind kind = kind_of(g.type, arity);
    const std::uint32_t lv = gate_level[gi];
    if (runs.empty() || runs.back().type != g.type ||
        runs.back().arity != arity || runs.back().kind != kind ||
        gate_level[gate_of_slot[runs.back().begin]] != lv) {
      runs.push_back({s, s + 1, g.type, static_cast<std::uint32_t>(arity),
                      kind});
    } else {
      runs.back().end = s + 1;
    }
  }
  ins_offset[ng] = static_cast<std::uint32_t>(ins_net.size());

  // Level boundaries over slots and runs (slots are level-major).
  for (std::size_t lv = 0, s = 0, r = 0; lv <= num_levels; ++lv) {
    while (s < ng && gate_level[gate_of_slot[s]] < lv) ++s;
    level_begin[lv] = static_cast<std::uint32_t>(s);
    while (r < runs.size() &&
           gate_level[gate_of_slot[runs[r].begin]] < lv) {
      ++r;
    }
    run_begin_of_level[lv] = static_cast<std::uint32_t>(r);
  }
  level_begin[num_levels] = static_cast<std::uint32_t>(ng);
  run_begin_of_level[num_levels] = static_cast<std::uint32_t>(runs.size());
}

std::size_t LevelPlan::capacity_bytes() const {
  return (slot_of_gate.capacity() + gate_of_slot.capacity() +
          level_begin.capacity() + run_begin_of_level.capacity() +
          out_net.capacity() + ins_offset.capacity() + ins_net.capacity()) *
             sizeof(std::uint32_t) +
         (dmin.capacity() + dmax.capacity()) * sizeof(std::int64_t) +
         runs.capacity() * sizeof(KernelRun);
}

namespace {

const KernelTable& scalar_table() {
  static const KernelTable t = kern::make_kernel_table<kern::ScalarOps>();
  return t;
}

[[nodiscard]] bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// WAVECK_SIMD env override: "0"/"off"/"OFF"/"false" start with the scalar
/// set even on AVX2 hardware (CI pins sanitizer and equality jobs with it).
[[nodiscard]] bool env_allows_simd() {
  const char* e = std::getenv("WAVECK_SIMD");
  if (e == nullptr) return true;
  return !(std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0 ||
           std::strcmp(e, "OFF") == 0 || std::strcmp(e, "false") == 0);
}

std::atomic<bool>& simd_flag() {
  static std::atomic<bool> f{simd_supported() && env_allows_simd()};
  return f;
}

}  // namespace

bool simd_compiled() {
#ifdef WAVECK_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool simd_supported() { return simd_compiled() && cpu_has_avx2(); }

void set_simd_enabled(bool on) {
  simd_flag().store(on && simd_supported(), std::memory_order_relaxed);
}

bool simd_enabled() { return simd_flag().load(std::memory_order_relaxed); }

const KernelTable& active_kernel_table() {
#ifdef WAVECK_HAVE_AVX2
  if (simd_enabled()) return kern::avx2_kernel_table();
#endif
  return scalar_table();
}

}  // namespace waveck
