// Struct-of-arrays storage for the per-net abstract-signal domains.
//
// The constraint system's variable store used to be one AbstractSignal per
// net (array-of-structs). The level-sweep kernels want the transposed
// layout: four flat int64 planes — w0.lo, w0.hi, w1.lo, w1.hi — indexed by
// NetId, so a batch of gates can gather one bound for many nets with a
// single vector load per lane group. Encoding is Time's raw sentinel form
// (waveform/soa_encoding.hpp); stored intervals are always canonical, so
// bitwise plane equality is semantic equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "waveform/abstract_waveform.hpp"
#include "waveform/soa_encoding.hpp"

namespace waveck {

class SoaDomain {
 public:
  SoaDomain() = default;
  /// All nets start at top (every stabilising waveform possible).
  explicit SoaDomain(std::size_t nets) {
    for (int c = 0; c < 2; ++c) {
      lo_[c].assign(nets, soa::kNegInf);
      hi_[c].assign(nets, soa::kPosInf);
    }
    size_ = nets;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  // ----- plane access (kernels) --------------------------------------------
  [[nodiscard]] const std::int64_t* lo(int cls) const { return lo_[cls].data(); }
  [[nodiscard]] const std::int64_t* hi(int cls) const { return hi_[cls].data(); }

  [[nodiscard]] soa::RawInterval raw_cls(std::size_t n, int cls) const {
    return {lo_[cls][n], hi_[cls][n]};
  }

  // ----- whole-signal view -------------------------------------------------
  [[nodiscard]] AbstractSignal get(NetId n) const {
    const std::size_t i = n.index();
    return {soa::from_raw({lo_[0][i], hi_[0][i]}),
            soa::from_raw({lo_[1][i], hi_[1][i]})};
  }
  /// Stores `s`, canonicalising each class interval into the planes.
  void set(NetId n, const AbstractSignal& s) {
    const std::size_t i = n.index();
    for (int c = 0; c < 2; ++c) {
      const soa::RawInterval r = soa::to_raw(s.w[c]);
      lo_[c][i] = r.lo;
      hi_[c][i] = r.hi;
    }
  }

  // ----- predicates straight off the planes --------------------------------
  // Definitions match AbstractSignal's (tested for parity in
  // tests/soa_kernel_test.cpp); the point is skipping signal reassembly in
  // hot consumers (carrier sweeps, cache invalidation).
  [[nodiscard]] bool cls_empty(std::size_t n, int cls) const {
    return soa::is_empty(lo_[cls][n], hi_[cls][n]);
  }
  [[nodiscard]] bool is_bottom(std::size_t n) const {
    return cls_empty(n, 0) && cls_empty(n, 1);
  }
  [[nodiscard]] bool single_class(std::size_t n) const {
    return cls_empty(n, 0) != cls_empty(n, 1);
  }
  /// AbstractSignal::latest in raw encoding (-inf when bottom).
  [[nodiscard]] std::int64_t latest_raw(std::size_t n) const {
    const bool e0 = cls_empty(n, 0);
    const bool e1 = cls_empty(n, 1);
    if (e0 && e1) return soa::kNegInf;
    if (e0) return hi_[1][n];
    if (e1) return hi_[0][n];
    return soa::raw_max(hi_[0][n], hi_[1][n]);
  }
  /// AbstractSignal::has_transition_at_or_after without reassembly.
  [[nodiscard]] bool has_transition_at_or_after(std::size_t n, Time t) const {
    return !is_bottom(n) && latest_raw(n) >= t.raw();
  }

  /// Bytes held by the four planes (arena accounting; capacities).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t b = 0;
    for (int c = 0; c < 2; ++c) {
      b += (lo_[c].capacity() + hi_[c].capacity()) * sizeof(std::int64_t);
    }
    return b;
  }

 private:
  std::vector<std::int64_t> lo_[2];
  std::vector<std::int64_t> hi_[2];
  std::size_t size_ = 0;
};

}  // namespace waveck
