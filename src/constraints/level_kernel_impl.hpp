// Lane-parallel level-sweep kernels, templated over a 4-lane ops policy.
//
// Included by exactly two translation units: level_kernel.cpp instantiates
// the kernels over ScalarOps (plain int64 lanes, always built) and
// level_kernel_avx2.cpp over Avx2Ops (compiled with -mavx2 under
// WAVECK_SIMD). The kernel bodies are shared, so the two sets are
// *structurally identical*: every blend/min/max/saturating-add happens in
// the same order with the same operands, and the narrowing they produce is
// bit-identical. Each kernel is a faithful lane-wise transcript of the
// matching scalar projection in projection.cpp; the per-input "exclude
// self" aggregates replace projection.cpp's per-sibling rescans:
//
//   others_nc(i)       <=>  (#empty wnc over all inputs) - [wnc_i empty] == 0
//   sibling_covers(i)  <=>  (#wnc intersecting window) - [wnc_i does] > 0
//   exists_partner(i)  <=>  (#wc with max >= ctrl_need) - [wc_i does] > 0
//   forced_ok(i)       <=>  (#forced-controlling blockers) - [i is one] == 0
//
// One deliberate deviation from projection.cpp: the scalar backward loop
// narrows ins[] in place, so input i+1's sibling scan can see input i's
// fresh value, while the kernels evaluate every input from the same
// pre-sweep snapshot (Jacobi vs Gauss-Seidel). Both operators are sound and
// monotone and every change re-schedules the gate, so the drains converge
// to the same greatest fixpoint (Theorem 1) — only intermediate evaluation
// counts can differ, never domains.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "constraints/level_kernel.hpp"
#include "netlist/gate.hpp"
#include "waveform/soa_encoding.hpp"

namespace waveck::kern {

/// soa::sat_add on 4 lanes: finite lanes shift, sentinel lanes stick.
template <class Ops>
[[nodiscard]] inline typename Ops::V sat_add(typename Ops::V v,
                                             typename Ops::V d) {
  const typename Ops::V sticky =
      Ops::or_(Ops::cmpeq(v, Ops::broadcast(soa::kNegInf)),
               Ops::cmpeq(v, Ops::broadcast(soa::kPosInf)));
  return Ops::blend(Ops::add(v, d), v, sticky);
}

/// soa::normalized on 4 lanes: lo > hi collapses to the canonical empty.
template <class Ops>
inline void canonicalize(typename Ops::V& lo, typename Ops::V& hi) {
  const typename Ops::V e = Ops::cmpgt(lo, hi);
  lo = Ops::blend(lo, Ops::broadcast(soa::kEmptyLo), e);
  hi = Ops::blend(hi, Ops::broadcast(soa::kEmptyHi), e);
}

/// Commits (current ∩ already-intersected value) iff the planes would
/// actually change; bitwise compare is exact because planes are canonical.
inline void commit_if_changed(const SoaDomain& dom, CommitSink& sink,
                              std::uint32_t net, soa::RawInterval w0,
                              soa::RawInterval w1) {
  if (dom.raw_cls(net, 0) == w0 && dom.raw_cls(net, 1) == w1) return;
  sink.kernel_commit(NetId{net},
                     AbstractSignal{soa::from_raw(w0), soa::from_raw(w1)});
}

/// Exact per-gate fallback shared by both tables; also the tail path for
/// the lane kernels below (defined in level_kernel.cpp).
void generic_kernel(const SoaDomain& dom, const LevelPlan& plan,
                    const KernelRun& run, const std::uint32_t* slots,
                    std::size_t n, CommitSink& sink, KernelStats& stats);

/// NOT/BUF/DELAY: per class v, out := out ∩ fwd(in), in := in ∩ bwd(out'),
/// with bwd reading the freshly narrowed output exactly like project_unary.
///
/// Only full groups of 4 take the lane path: the branch-free lane algebra
/// costs the same whether 1 or 4 lanes are live, and search-phase sweeps are
/// dominated by 1-3 gate segments, so padded short groups would burn ~4x the
/// work of the per-gate projection. The remainder goes through
/// generic_kernel instead — the rule depends only on the segment length,
/// never on Ops, so the scalar and AVX2 tables still execute identical
/// commit sequences (byte-identical reports either way).
template <class Ops>
void unary_kernel(const SoaDomain& dom, const LevelPlan& plan,
                  const KernelRun& run, const std::uint32_t* slots,
                  std::size_t n, CommitSink& sink, KernelStats& stats) {
  using V = typename Ops::V;
  const bool inv = inversion(run.type);
  const V embLo = Ops::broadcast(soa::kEmptyLo);
  const V embHi = Ops::broadcast(soa::kEmptyHi);

  const std::size_t full = n & ~std::size_t{3};
  for (std::size_t i = 0; i < full; i += 4) {
    if (Ops::kIsSimd) {
      ++stats.simd_batches;
    } else {
      stats.scalar_tail += 4;
    }
    alignas(32) std::uint32_t oidx[4], iidx[4];
    alignas(32) std::int64_t dmn[4], dmx[4], ndmn[4], ndmx[4];
    for (std::size_t l = 0; l < 4; ++l) {
      const std::uint32_t s = slots[i + l];
      oidx[l] = plan.out_net[s];
      iidx[l] = plan.ins_net[plan.ins_offset[s]];
      dmn[l] = plan.dmin[s];
      dmx[l] = plan.dmax[s];
      ndmn[l] = -dmn[l];
      ndmx[l] = -dmx[l];
    }
    const V vdmin = Ops::load4(dmn), vdmax = Ops::load4(dmx);
    const V vndmin = Ops::load4(ndmn), vndmax = Ops::load4(ndmx);

    alignas(32) std::int64_t out_lo[2][4], out_hi[2][4];
    alignas(32) std::int64_t in_lo[2][4], in_hi[2][4];
    for (int v = 0; v <= 1; ++v) {
      const int iv = v;
      const int ov = ((v != 0) != inv) ? 1 : 0;
      const V ilo = Ops::gather(dom.lo(iv), iidx);
      const V ihi = Ops::gather(dom.hi(iv), iidx);
      const V olo = Ops::gather(dom.lo(ov), oidx);
      const V ohi = Ops::gather(dom.hi(ov), oidx);

      const V iempty = Ops::cmpgt(ilo, ihi);
      const V flo = Ops::blend(sat_add<Ops>(ilo, vdmin), embLo, iempty);
      const V fhi = Ops::blend(sat_add<Ops>(ihi, vdmax), embHi, iempty);
      V nlo = Ops::max_(olo, flo);
      V nhi = Ops::min_(ohi, fhi);
      canonicalize<Ops>(nlo, nhi);

      const V nempty = Ops::cmpgt(nlo, nhi);
      const V blo = Ops::blend(sat_add<Ops>(nlo, vndmax), embLo, nempty);
      const V bhi = Ops::blend(sat_add<Ops>(nhi, vndmin), embHi, nempty);
      V xlo = Ops::max_(ilo, blo);
      V xhi = Ops::min_(ihi, bhi);
      canonicalize<Ops>(xlo, xhi);

      Ops::store4(out_lo[ov], nlo);
      Ops::store4(out_hi[ov], nhi);
      Ops::store4(in_lo[iv], xlo);
      Ops::store4(in_hi[iv], xhi);
    }
    for (std::size_t l = 0; l < 4; ++l) {
      commit_if_changed(dom, sink, oidx[l], {out_lo[0][l], out_hi[0][l]},
                        {out_lo[1][l], out_hi[1][l]});
      commit_if_changed(dom, sink, iidx[l], {in_lo[0][l], in_hi[0][l]},
                        {in_lo[1][l], in_hi[1][l]});
      if (sink.kernel_inconsistent()) return;
    }
  }
  if (full < n) {
    generic_kernel(dom, plan, run, slots + full, n - full, sink, stats);
  }
}

/// AND/NAND/OR/NOR up to kMaxControllingArity inputs: project_controlling
/// as per-gate lane aggregates plus exclude-self corrections (header note).
/// Full groups of 4 only; the remainder falls to generic_kernel (see the
/// unary kernel's note — the rule is Ops-independent).
template <class Ops>
void controlling_kernel(const SoaDomain& dom, const LevelPlan& plan,
                        const KernelRun& run, const std::uint32_t* slots,
                        std::size_t n, CommitSink& sink, KernelStats& stats) {
  using V = typename Ops::V;
  const bool c = controlling_value(run.type);
  const bool inv = inversion(run.type);
  const int ci = c ? 1 : 0;               // plane of the controlling class
  const int ni = c ? 0 : 1;               // plane of the non-controlling one
  const int oc = ((c != inv)) ? 1 : 0;    // output class when some input controls
  const int onc = ((!c != inv)) ? 1 : 0;  // output class when all settle nc
  const std::size_t A = run.arity;
  assert(A >= 1 && A <= kMaxControllingArity);

  const V embLo = Ops::broadcast(soa::kEmptyLo);
  const V embHi = Ops::broadcast(soa::kEmptyHi);
  const V vneg = Ops::broadcast(soa::kNegInf);
  const V vpos = Ops::broadcast(soa::kPosInf);
  const V zero = Ops::broadcast(0);

  const std::size_t full = n & ~std::size_t{3};
  for (std::size_t i = 0; i < full; i += 4) {
    if (Ops::kIsSimd) {
      ++stats.simd_batches;
    } else {
      stats.scalar_tail += 4;
    }
    alignas(32) std::uint32_t oidx[4];
    alignas(32) std::uint32_t iidx[kMaxControllingArity][4];
    alignas(32) std::int64_t dmn[4], dmx[4], ndmn[4], ndmx[4];
    for (std::size_t l = 0; l < 4; ++l) {
      const std::uint32_t s = slots[i + l];
      oidx[l] = plan.out_net[s];
      const std::uint32_t off = plan.ins_offset[s];
      for (std::size_t k = 0; k < A; ++k) iidx[k][l] = plan.ins_net[off + k];
      dmn[l] = plan.dmin[s];
      dmx[l] = plan.dmax[s];
      ndmn[l] = -dmn[l];
      ndmx[l] = -dmx[l];
    }
    const V vdmin = Ops::load4(dmn), vdmax = Ops::load4(dmx);
    const V vndmin = Ops::load4(ndmn), vndmax = Ops::load4(ndmx);

    // Gather both class intervals of every input once per group.
    V cl[kMaxControllingArity], ch[kMaxControllingArity];
    V nl[kMaxControllingArity], nh[kMaxControllingArity];
    for (std::size_t k = 0; k < A; ++k) {
      cl[k] = Ops::gather(dom.lo(ci), iidx[k]);
      ch[k] = Ops::gather(dom.hi(ci), iidx[k]);
      nl[k] = Ops::gather(dom.lo(ni), iidx[k]);
      nh[k] = Ops::gather(dom.hi(ni), iidx[k]);
    }
    const V outc_lo = Ops::gather(dom.lo(oc), oidx);
    const V outc_hi = Ops::gather(dom.hi(oc), oidx);
    const V outnc_lo = Ops::gather(dom.lo(onc), oidx);
    const V outnc_hi = Ops::gather(dom.hi(onc), oidx);

    // ---- forward, all-non-controlling result class ----------------------
    V any_nc_empty = zero, agg_lmin = vneg, agg_max = vneg;
    for (std::size_t k = 0; k < A; ++k) {
      any_nc_empty = Ops::or_(any_nc_empty, Ops::cmpgt(nl[k], nh[k]));
      agg_lmin = Ops::max_(agg_lmin, nl[k]);
      agg_max = Ops::max_(agg_max, nh[k]);
    }
    const V fnc_lo =
        Ops::blend(sat_add<Ops>(agg_lmin, vdmin), embLo, any_nc_empty);
    const V fnc_hi =
        Ops::blend(sat_add<Ops>(agg_max, vdmax), embHi, any_nc_empty);
    V snc_lo = Ops::max_(outnc_lo, fnc_lo);
    V snc_hi = Ops::min_(outnc_hi, fnc_hi);
    canonicalize<Ops>(snc_lo, snc_hi);

    // ---- forward, controlled result class --------------------------------
    // Dead lanes (some input bottom) accumulate garbage caps; the `live`
    // mask discards them, mirroring project_controlling's early break.
    V dead = zero, forced = zero, any_ctrl = zero;
    V forced_cap = vpos, free_cap = vneg;
    for (std::size_t k = 0; k < A; ++k) {
      const V ce = Ops::cmpgt(cl[k], ch[k]);
      const V ne = Ops::cmpgt(nl[k], nh[k]);
      dead = Ops::or_(dead, Ops::and_(ce, ne));
      forced = Ops::or_(forced, ne);
      forced_cap = Ops::min_(forced_cap, Ops::blend(vpos, ch[k], ne));
      any_ctrl = Ops::or_(any_ctrl, Ops::not_(ce));
      free_cap = Ops::max_(free_cap, Ops::blend(vneg, ch[k], Ops::not_(ce)));
    }
    const V cap = Ops::blend(free_cap, forced_cap, forced);
    const V live = Ops::and_(any_ctrl, Ops::not_(dead));
    const V fc_lo = Ops::blend(embLo, vneg, live);
    const V fc_hi = Ops::blend(embHi, sat_add<Ops>(cap, vdmax), live);
    V sc_lo = Ops::max_(outc_lo, fc_lo);
    V sc_hi = Ops::min_(outc_hi, fc_hi);
    canonicalize<Ops>(sc_lo, sc_hi);

    // ---- backward aggregates --------------------------------------------
    const V so_empty = Ops::cmpgt(sc_lo, sc_hi);
    const V snc_empty = Ops::cmpgt(snc_lo, snc_hi);
    const V ctrl_need = Ops::blend(sat_add<Ops>(sc_lo, vndmax), vpos, so_empty);
    const V supc_lo = Ops::blend(ctrl_need, embLo, so_empty);
    const V supc_hi = Ops::blend(vpos, embHi, so_empty);
    // JointWindow::window; empty exactly when snc is (shift of non-empty is
    // non-empty), so `cover` below is implicitly false on empty windows.
    const V win_lo = Ops::blend(sat_add<Ops>(snc_lo, vndmax), embLo, snc_empty);
    const V win_hi = Ops::blend(sat_add<Ops>(snc_hi, vndmin), embHi, snc_empty);

    V cnt_nc_empty = zero, cnt_cover = zero, cnt_partner = zero,
      cnt_blocker = zero;
    V m_ne[kMaxControllingArity], m_cover[kMaxControllingArity];
    V m_partner[kMaxControllingArity], m_blocker[kMaxControllingArity];
    for (std::size_t k = 0; k < A; ++k) {
      const V ce = Ops::cmpgt(cl[k], ch[k]);
      const V ne = Ops::cmpgt(nl[k], nh[k]);
      const V xlo = Ops::max_(nl[k], win_lo);
      const V xhi = Ops::min_(nh[k], win_hi);
      const V cover = Ops::not_(Ops::cmpgt(xlo, xhi));
      const V reaches = Ops::not_(Ops::cmpgt(ctrl_need, ch[k]));
      const V partner = Ops::and_(Ops::not_(ce), reaches);
      const V blocker = Ops::and_(ne, Ops::or_(ce, Ops::not_(reaches)));
      m_ne[k] = ne;
      m_cover[k] = cover;
      m_partner[k] = partner;
      m_blocker[k] = blocker;
      // Masks are 0/-1, so subtracting counts set lanes.
      cnt_nc_empty = Ops::sub(cnt_nc_empty, ne);
      cnt_cover = Ops::sub(cnt_cover, cover);
      cnt_partner = Ops::sub(cnt_partner, partner);
      cnt_blocker = Ops::sub(cnt_blocker, blocker);
    }

    // ---- backward, per input --------------------------------------------
    alignas(32) std::int64_t newc_lo[kMaxControllingArity][4];
    alignas(32) std::int64_t newc_hi[kMaxControllingArity][4];
    alignas(32) std::int64_t newn_lo[kMaxControllingArity][4];
    alignas(32) std::int64_t newn_hi[kMaxControllingArity][4];
    for (std::size_t k = 0; k < A; ++k) {
      V clo = Ops::max_(cl[k], supc_lo);
      V chi = Ops::min_(ch[k], supc_hi);
      canonicalize<Ops>(clo, chi);

      // Adding the 0/-1 self-mask back subtracts this input from the count.
      const V others_nc = Ops::cmpeq(Ops::add(cnt_nc_empty, m_ne[k]), zero);
      const V sib_covers = Ops::cmpgt(Ops::add(cnt_cover, m_cover[k]), zero);
      const V validA = Ops::and_(Ops::not_(snc_empty), others_nc);
      V a_lo = Ops::blend(win_lo, vneg, sib_covers);
      V a_hi = win_hi;
      a_lo = Ops::blend(embLo, a_lo, validA);
      a_hi = Ops::blend(embHi, a_hi, validA);
      const V has_partner =
          Ops::cmpgt(Ops::add(cnt_partner, m_partner[k]), zero);
      const V forced_ok = Ops::cmpeq(Ops::add(cnt_blocker, m_blocker[k]), zero);
      const V topB =
          Ops::and_(Ops::and_(Ops::not_(so_empty), has_partner), forced_ok);
      const V sup_lo = Ops::blend(a_lo, vneg, topB);
      const V sup_hi = Ops::blend(a_hi, vpos, topB);
      V nlo2 = Ops::max_(nl[k], sup_lo);
      V nhi2 = Ops::min_(nh[k], sup_hi);
      canonicalize<Ops>(nlo2, nhi2);

      Ops::store4(newc_lo[k], clo);
      Ops::store4(newc_hi[k], chi);
      Ops::store4(newn_lo[k], nlo2);
      Ops::store4(newn_hi[k], nhi2);
    }

    alignas(32) std::int64_t osc_lo[4], osc_hi[4], osnc_lo[4], osnc_hi[4];
    Ops::store4(osc_lo, sc_lo);
    Ops::store4(osc_hi, sc_hi);
    Ops::store4(osnc_lo, snc_lo);
    Ops::store4(osnc_hi, snc_hi);

    for (std::size_t l = 0; l < 4; ++l) {
      soa::RawInterval ow[2];
      ow[oc] = {osc_lo[l], osc_hi[l]};
      ow[onc] = {osnc_lo[l], osnc_hi[l]};
      commit_if_changed(dom, sink, oidx[l], ow[0], ow[1]);
      for (std::size_t k = 0; k < A; ++k) {
        soa::RawInterval iw[2];
        iw[ci] = {newc_lo[k][l], newc_hi[k][l]};
        iw[ni] = {newn_lo[k][l], newn_hi[k][l]};
        commit_if_changed(dom, sink, iidx[k][l], iw[0], iw[1]);
      }
      if (sink.kernel_inconsistent()) return;
    }
  }
  if (full < n) {
    generic_kernel(dom, plan, run, slots + full, n - full, sink, stats);
  }
}

template <class Ops>
[[nodiscard]] KernelTable make_kernel_table() {
  KernelTable t;
  t.fn[static_cast<std::size_t>(KernelKind::kUnary)] = &unary_kernel<Ops>;
  t.fn[static_cast<std::size_t>(KernelKind::kControlling)] =
      &controlling_kernel<Ops>;
  t.fn[static_cast<std::size_t>(KernelKind::kGeneric)] = &generic_kernel;
  return t;
}

}  // namespace waveck::kern
