// Event-driven constraint system over abstract signals (paper Section 3.3).
//
// One variable per net (domain: AbstractSignal), one relational constraint
// per gate. `reach_fixpoint` repeatedly applies scheduled gate constraints
// until no domain narrows -- the greatest fixpoint (Theorem 1). Selective
// state saving (a trail) supports the backtracking needed by stem
// correlation and case analysis.
//
// Learned class implications (Section 4, static learning) hook in through
// an ImplicationTable: whenever a net's domain collapses to a single final
// class, the table's consequences are applied as further restrictions.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/telemetry.hpp"
#include "netlist/circuit.hpp"
#include "waveform/abstract_waveform.hpp"

namespace waveck {

/// Class implications (y = v) => (x = w), stored per (net, class).
class ImplicationTable {
 public:
  struct Consequence {
    NetId net;
    bool cls;
  };

  void add(NetId y, bool v, NetId x, bool w) {
    table_[key(y, v)].push_back({x, w});
    ++size_;
  }
  [[nodiscard]] const std::vector<Consequence>& of(NetId y, bool v) const {
    static const std::vector<Consequence> kEmpty;
    const auto it = table_.find(key(y, v));
    return it == table_.end() ? kEmpty : it->second;
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  static std::uint64_t key(NetId y, bool v) {
    return (std::uint64_t{y.value()} << 1) | (v ? 1 : 0);
  }
  std::unordered_map<std::uint64_t, std::vector<Consequence>> table_;
  std::size_t size_ = 0;
};

class ConstraintSystem {
 public:
  enum class Status : std::uint8_t {
    kPossibleViolation,  // fixpoint reached with consistent domains
    kNoViolation,        // some domain emptied: no sigma-compatible waveform
  };

  /// Binds to `circuit` (kept by reference; must outlive the system). All
  /// domains start at top.
  explicit ConstraintSystem(const Circuit& circuit);

  [[nodiscard]] const Circuit& circuit() const { return circuit_; }

  // ----- domains ------------------------------------------------------------
  [[nodiscard]] const AbstractSignal& domain(NetId n) const {
    return domains_[n.index()];
  }
  /// Intersects the domain of `n` with `with`, recording the trail entry and
  /// scheduling affected constraints. Returns true if the domain narrowed.
  bool restrict_domain(NetId n, const AbstractSignal& with);

  [[nodiscard]] bool inconsistent() const { return bottom_count_ > 0; }
  [[nodiscard]] std::size_t bottom_count() const { return bottom_count_; }

  // ----- scheduling / solving -------------------------------------------------
  void schedule_gate(GateId g);
  /// Schedules the driver and every fanout constraint of `n`.
  void schedule_net(NetId n);
  void schedule_all();
  void clear_queue();

  /// Paper Figure 4 `reach_fixpoint`: drains the event queue. Returns
  /// kNoViolation iff some domain emptied (Theorem 2 generalised to any
  /// net).
  Status reach_fixpoint();

  // ----- backtracking ------------------------------------------------------------
  using Mark = std::size_t;
  /// Opens a new restorable state (decision level). Returns the mark to pass
  /// to `pop_to`.
  Mark push_state();
  /// Restores all domains to their values at `mark` and clears the queue.
  void pop_to(Mark mark);
  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }
  /// Net recorded at trail position `i` (allocation-free alternative to
  /// `changed_since` for scanning a trail suffix in place).
  [[nodiscard]] NetId trail_net(std::size_t i) const { return trail_[i].net; }
  /// Nets whose domains changed since `mark`. Each net appears once per
  /// decision level it was first touched in (exactly once when no nested
  /// `push_state` happened after `mark`).
  [[nodiscard]] std::vector<NetId> changed_since(Mark mark) const;

  // ----- learning hook -----------------------------------------------------------
  /// Attaches a table of learned class implications (may be null). Not
  /// owned; must outlive the system.
  void set_implications(const ImplicationTable* table) { implications_ = table; }

  // ----- incremental-analysis support ----------------------------------------
  /// Monotone domain-state generation: bumped on every committed narrowing
  /// and on every `pop_to` restore. Two equal generations guarantee the
  /// domains are unchanged in between — the key an incremental consumer
  /// (CarrierCache) uses to skip resynchronisation entirely.
  [[nodiscard]] std::uint64_t domain_generation() const { return domain_gen_; }
  /// Turns on the change log drained by `drain_changed_nets`. Off by
  /// default so systems without an incremental consumer pay nothing.
  void enable_change_log();
  /// Hands every net whose domain may have changed (narrowed by
  /// `commit_domain` or restored by `pop_to`) since the previous drain to
  /// `f`, each net at most once, in first-change order, then resets the
  /// log. Requires `enable_change_log()`.
  template <class F>
  void drain_changed_nets(F&& f) {
    for (NetId n : change_log_) f(n);
    change_log_.clear();
    ++drain_gen_;
  }

  // ----- deadlines -----------------------------------------------------------
  /// Arms (or, with 0, disarms) an absolute monotonic deadline
  /// (prof::monotonic_ns clock). `reach_fixpoint` checks it every
  /// `kDeadlineStride` gate applications; once it passes, the drain stops
  /// early with the queue cleared, `deadline_hit()` latches, and every
  /// later `reach_fixpoint` call returns immediately. Early exit is sound
  /// only because callers (the verifier pipeline, the FAN decision loop)
  /// check `deadline_hit()` right after and conclude kAbandoned — narrowing
  /// done so far is valid, but the domains are not at a fixpoint.
  void set_deadline_ns(std::uint64_t expiry_mono_ns) {
    deadline_ns_ = expiry_mono_ns;
    deadline_hit_ = false;
  }
  [[nodiscard]] std::uint64_t deadline_ns() const { return deadline_ns_; }
  [[nodiscard]] bool deadline_hit() const { return deadline_hit_; }

  // ----- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t applications() const { return applications_; }
  [[nodiscard]] std::uint64_t narrowings() const { return narrowings_; }

 private:
  static constexpr std::uint64_t kDeadlineStride = 4096;
  std::uint64_t deadline_ns_ = 0;
  bool deadline_hit_ = false;
  void save_if_needed(NetId n);
  /// Commits a narrowed value for net `n`: trail, events, learning.
  void commit_domain(NetId n, const AbstractSignal& value, GateId source);
  void apply_gate(GateId g);
  void log_change(NetId n) {
    if (!log_enabled_) return;
    auto& stamp = log_stamp_[n.index()];
    if (stamp == drain_gen_) return;
    stamp = drain_gen_;
    change_log_.push_back(n);
  }

  const Circuit& circuit_;
  std::vector<AbstractSignal> domains_;

  // Topo-level bucket queue. Gates are bucketed by longest-path depth
  // (every circuit edge goes to a strictly higher level), and the drain
  // always pops from the lowest non-empty level, so a forward wave
  // evaluates each gate at most once per level sweep instead of the
  // re-evaluation churn of chaotic FIFO iteration; backward narrowings
  // (projections restricting gate inputs) rewind the cursor. The greatest
  // fixpoint is order-independent (Theorem 1), so only the evaluation
  // count changes. Buckets below `cursor_` are empty; `touched_hi_` bounds
  // the levels pushed since the last clear, so `clear_queue` is O(touched)
  // rather than O(gates).
  std::vector<std::uint32_t> gate_level_;
  std::vector<std::vector<GateId>> buckets_;
  std::vector<std::uint8_t> in_queue_;
  std::size_t queue_size_ = 0;
  std::size_t cursor_ = 0;
  std::size_t touched_hi_ = 0;

  struct TrailEntry {
    NetId net;
    AbstractSignal old_value;
    std::uint64_t old_epoch;
  };
  std::vector<TrailEntry> trail_;
  std::vector<std::uint64_t> save_epoch_;
  std::uint64_t current_epoch_ = 1;
  std::uint64_t epoch_counter_ = 1;

  std::size_t bottom_count_ = 0;
  const ImplicationTable* implications_ = nullptr;

  std::uint64_t applications_ = 0;
  std::uint64_t narrowings_ = 0;

  // Change log for incremental consumers (see enable_change_log). A net is
  // pushed at most once per drain window: `log_stamp_[n] == drain_gen_`
  // marks "already logged", so the log never exceeds num_nets entries no
  // matter how many narrowings a window sees. Deliberately independent of
  // the trail's `save_epoch_` stamps — those dedupe per decision level,
  // not per drain, and would miss a second commit inside one level.
  bool log_enabled_ = false;
  std::vector<NetId> change_log_;
  std::vector<std::uint64_t> log_stamp_;
  std::uint64_t drain_gen_ = 1;
  std::uint64_t domain_gen_ = 0;

  // Reused input-snapshot buffer for apply_gate (hoisted out of the hot
  // loop; tens of millions of calls per large search).
  std::vector<AbstractSignal> apply_ins_;

  // Registry handles cached at construction: metric updates in the hot
  // paths are plain integer arithmetic, never name lookups. The two
  // highest-rate histograms buffer through LocalHistogram and flush at
  // fixpoint exit (and on destruction), so per-event observation stays
  // non-atomic.
  telemetry::Counter& ctr_fixpoints_;
  telemetry::Counter& ctr_applications_;
  telemetry::Counter& ctr_narrowings_;
  telemetry::Counter& ctr_conflicts_;
  telemetry::Counter& ctr_gate_evals_;
  // Hardware-counter totals for the fixpoint drain (perf observatory):
  // bumped once per reach_fixpoint when prof::counters_enabled(), so the
  // disabled path pays one branch. Cycles/instructions/misses live under
  // "perf.fixpoint.*" next to the stage-level "perf.stage.*" slots.
  telemetry::Counter& ctr_perf_cycles_;
  telemetry::Counter& ctr_perf_instructions_;
  telemetry::Counter& ctr_perf_cache_refs_;
  telemetry::Counter& ctr_perf_cache_misses_;
  telemetry::Counter& ctr_perf_branch_misses_;
  telemetry::Counter& ctr_perf_wall_ns_;
  telemetry::Counter& ctr_perf_sections_;
  telemetry::Histogram& h_fixpoint_narrowings_;
  telemetry::LocalHistogram lh_queue_depth_;
  telemetry::LocalHistogram lh_narrowing_magnitude_;

  // High-water gauges, set once per reach_fixpoint exit (their `max` field
  // in registry snapshots is the whole-run peak; see doc/OBSERVABILITY.md).
  telemetry::Gauge& g_trail_depth_;
  telemetry::Gauge& g_queue_depth_;
  telemetry::Gauge& g_arena_bytes_;

  /// Bytes held by the principal growable arenas (trail, domains, queue
  /// bookkeeping, change log). O(1): capacities only, buckets excluded.
  [[nodiscard]] std::size_t arena_bytes() const {
    return trail_.capacity() * sizeof(TrailEntry) +
           domains_.capacity() * sizeof(AbstractSignal) +
           save_epoch_.capacity() * sizeof(std::uint64_t) +
           in_queue_.capacity() * sizeof(std::uint8_t) +
           gate_level_.capacity() * sizeof(std::uint32_t) +
           change_log_.capacity() * sizeof(NetId) +
           log_stamp_.capacity() * sizeof(std::uint64_t);
  }
};

}  // namespace waveck
