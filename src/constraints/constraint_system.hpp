// Event-driven constraint system over abstract signals (paper Section 3.3).
//
// One variable per net, one relational constraint per gate. The variable
// store is data-oriented: four flat int64 bound planes indexed by NetId
// (SoaDomain) plus bit planes for the in-queue and changed-net flags, so
// the drain can evaluate a whole topological level as one batched sweep
// through the level kernels (level_kernel.hpp) — vectorised min/max/
// saturating-add over 4-wide int64 lanes with a scalar twin. All narrowing
// still funnels through one commit path (`commit_domain`), which keeps the
// trail, scheduling, learning and telemetry semantics identical whichever
// kernel set ran; the greatest fixpoint is order-independent (Theorem 1),
// so canonical results cannot depend on batching or lane width.
//
// `reach_fixpoint` repeatedly applies scheduled gate constraints until no
// domain narrows -- the greatest fixpoint. Selective state saving (a trail
// of old plane values) supports the backtracking needed by stem correlation
// and case analysis.
//
// Learned class implications (Section 4, static learning) hook in through
// an ImplicationTable: whenever a net's domain collapses to a single final
// class, the table's consequences are applied as further restrictions.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitplane.hpp"
#include "common/ids.hpp"
#include "common/telemetry.hpp"
#include "constraints/level_kernel.hpp"
#include "constraints/soa_domain.hpp"
#include "netlist/circuit.hpp"
#include "waveform/abstract_waveform.hpp"

namespace waveck {

/// Class implications (y = v) => (x = w), stored per (net, class).
class ImplicationTable {
 public:
  struct Consequence {
    NetId net;
    bool cls;
  };

  void add(NetId y, bool v, NetId x, bool w) {
    table_[key(y, v)].push_back({x, w});
    ++size_;
  }
  [[nodiscard]] const std::vector<Consequence>& of(NetId y, bool v) const {
    static const std::vector<Consequence> kEmpty;
    const auto it = table_.find(key(y, v));
    return it == table_.end() ? kEmpty : it->second;
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  static std::uint64_t key(NetId y, bool v) {
    return (std::uint64_t{y.value()} << 1) | (v ? 1 : 0);
  }
  std::unordered_map<std::uint64_t, std::vector<Consequence>> table_;
  std::size_t size_ = 0;
};

class ConstraintSystem final : private CommitSink {
 public:
  enum class Status : std::uint8_t {
    kPossibleViolation,  // fixpoint reached with consistent domains
    kNoViolation,        // some domain emptied: no sigma-compatible waveform
  };

  /// Binds to `circuit` (kept by reference; must outlive the system). All
  /// domains start at top.
  explicit ConstraintSystem(const Circuit& circuit);

  [[nodiscard]] const Circuit& circuit() const { return circuit_; }

  // ----- domains ------------------------------------------------------------
  /// The net's abstract signal, assembled from the SoA planes (by value:
  /// the planes are the store, there is no per-net object to reference).
  [[nodiscard]] AbstractSignal domain(NetId n) const {
    return domains_.get(n);
  }
  /// Direct plane view for batch consumers (carrier sweeps, tests).
  [[nodiscard]] const SoaDomain& soa() const { return domains_; }
  /// AbstractSignal::has_transition_at_or_after without reassembling the
  /// signal — the Def. 7 dynamic-carrier test, straight off the planes.
  [[nodiscard]] bool has_transition_at_or_after(NetId n, Time t) const {
    return domains_.has_transition_at_or_after(n.index(), t);
  }
  /// Intersects the domain of `n` with `with`, recording the trail entry and
  /// scheduling affected constraints. Returns true if the domain narrowed.
  bool restrict_domain(NetId n, const AbstractSignal& with);

  [[nodiscard]] bool inconsistent() const { return bottom_count_ > 0; }
  [[nodiscard]] std::size_t bottom_count() const { return bottom_count_; }

  // ----- scheduling / solving -------------------------------------------------
  void schedule_gate(GateId g);
  /// Schedules the driver and every fanout constraint of `n`.
  void schedule_net(NetId n);
  void schedule_all();
  void clear_queue();

  /// Paper Figure 4 `reach_fixpoint`: drains the event queue, one batched
  /// level sweep at a time. Returns kNoViolation iff some domain emptied
  /// (Theorem 2 generalised to any net).
  Status reach_fixpoint();

  // ----- backtracking ------------------------------------------------------------
  using Mark = std::size_t;
  /// Opens a new restorable state (decision level). Returns the mark to pass
  /// to `pop_to`.
  Mark push_state();
  /// Restores all domains to their values at `mark` and clears the queue.
  void pop_to(Mark mark);
  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }
  /// Net recorded at trail position `i` (allocation-free alternative to
  /// `changed_since` for scanning a trail suffix in place).
  [[nodiscard]] NetId trail_net(std::size_t i) const { return trail_[i].net; }
  /// Nets whose domains changed since `mark`. Each net appears once per
  /// decision level it was first touched in (exactly once when no nested
  /// `push_state` happened after `mark`).
  [[nodiscard]] std::vector<NetId> changed_since(Mark mark) const;

  // ----- learning hook -----------------------------------------------------------
  /// Attaches a table of learned class implications (may be null). Not
  /// owned; must outlive the system.
  void set_implications(const ImplicationTable* table) { implications_ = table; }

  // ----- incremental-analysis support ----------------------------------------
  /// Monotone domain-state generation: bumped on every committed narrowing
  /// and on every `pop_to` restore. Two equal generations guarantee the
  /// domains are unchanged in between — the key an incremental consumer
  /// (CarrierCache) uses to skip resynchronisation entirely.
  [[nodiscard]] std::uint64_t domain_generation() const { return domain_gen_; }
  /// Turns on the change log drained by `drain_changed_nets`. Off by
  /// default so systems without an incremental consumer pay nothing.
  void enable_change_log();
  /// Hands every net whose domain may have changed (narrowed by
  /// `commit_domain` or restored by `pop_to`) since the previous drain to
  /// `f`, each net at most once, in first-change order, then resets the
  /// log. Requires `enable_change_log()`.
  template <class F>
  void drain_changed_nets(F&& f) {
    for (NetId n : change_log_) {
      log_bits_.reset(n.index());
      f(n);
    }
    change_log_.clear();
  }

  // ----- deadlines -----------------------------------------------------------
  /// Arms (or, with 0, disarms) an absolute monotonic deadline
  /// (prof::monotonic_ns clock). `reach_fixpoint` checks it every
  /// `kDeadlineStride` gate applications; once it passes, the drain stops
  /// early with the queue cleared, `deadline_hit()` latches, and every
  /// later `reach_fixpoint` call returns immediately. Early exit is sound
  /// only because callers (the verifier pipeline, the FAN decision loop)
  /// check `deadline_hit()` right after and conclude kAbandoned — narrowing
  /// done so far is valid, but the domains are not at a fixpoint.
  void set_deadline_ns(std::uint64_t expiry_mono_ns) {
    deadline_ns_ = expiry_mono_ns;
    deadline_hit_ = false;
  }
  [[nodiscard]] std::uint64_t deadline_ns() const { return deadline_ns_; }
  [[nodiscard]] bool deadline_hit() const { return deadline_hit_; }

  // ----- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t applications() const { return applications_; }
  [[nodiscard]] std::uint64_t narrowings() const { return narrowings_; }

 private:
  static constexpr std::uint64_t kDeadlineStride = 4096;
  std::uint64_t deadline_ns_ = 0;
  bool deadline_hit_ = false;
  void save_if_needed(NetId n);
  /// Commits a narrowed value for net `n`: trail, events, learning.
  void commit_domain(NetId n, const AbstractSignal& value, GateId source);
  /// CommitSink: the kernels' single way of narrowing a net.
  void kernel_commit(NetId n, const AbstractSignal& value) override {
    commit_domain(n, value, GateId{});
  }
  [[nodiscard]] bool kernel_inconsistent() const override {
    return bottom_count_ > 0;
  }
  /// Evaluates every scheduled gate of `lv` as run-batched kernel calls.
  /// Returns false when the deadline expired mid-sweep (queue cleared,
  /// deadline_hit_ latched).
  bool sweep_level(std::size_t lv, std::uint64_t& next_deadline_check,
                   std::size_t& peak_queue);
  void log_change(NetId n) {
    if (!log_enabled_) return;
    if (log_bits_.test_set(n.index())) return;
    change_log_.push_back(n);
  }

  const Circuit& circuit_;
  SoaDomain domains_;

  // Topo-level queue over plan slots. Gates are bucketed by longest-path
  // depth (every circuit edge goes to a strictly higher level) and laid out
  // level-major in the plan's slot order, so "the scheduled gates of the
  // lowest non-empty level" is a word scan of one bit-plane range and comes
  // out pre-sorted into the plan's (gate-class, arity) runs. A forward wave
  // evaluates each gate at most once per level sweep; backward narrowings
  // (projections restricting gate inputs) rewind the cursor. The greatest
  // fixpoint is order-independent (Theorem 1), so only the evaluation
  // count changes. Levels below `cursor_` are empty; `touched_hi_` bounds
  // the levels pushed since the last clear, so `clear_queue` is O(touched)
  // rather than O(gates).
  std::vector<std::uint32_t> gate_level_;
  LevelPlan plan_;
  BitPlane slot_queued_;
  std::vector<std::uint32_t> level_count_;
  std::vector<std::uint32_t> sweep_slots_;  // reused per-sweep scratch
  std::size_t queue_size_ = 0;
  std::size_t cursor_ = 0;
  std::size_t touched_hi_ = 0;

  // Trail entries snapshot the four touched plane values of one net (an
  // AbstractSignal is exactly that quadruple), so pop_to restores planes
  // without any per-net object store.
  struct TrailEntry {
    NetId net;
    AbstractSignal old_value;
    std::uint64_t old_epoch;
  };
  std::vector<TrailEntry> trail_;
  std::vector<std::uint64_t> save_epoch_;
  std::uint64_t current_epoch_ = 1;
  std::uint64_t epoch_counter_ = 1;

  std::size_t bottom_count_ = 0;
  const ImplicationTable* implications_ = nullptr;

  std::uint64_t applications_ = 0;
  std::uint64_t narrowings_ = 0;

  // Change log for incremental consumers (see enable_change_log). A net is
  // pushed at most once per drain window: its `log_bits_` bit marks
  // "already logged", so the log never exceeds num_nets entries no matter
  // how many narrowings a window sees. Deliberately independent of the
  // trail's `save_epoch_` stamps — those dedupe per decision level, not per
  // drain, and would miss a second commit inside one level.
  bool log_enabled_ = false;
  std::vector<NetId> change_log_;
  BitPlane log_bits_;
  std::uint64_t domain_gen_ = 0;

  // Per-drain batching tallies from the kernels, flushed into the
  // fixpoint.* counters at reach_fixpoint exit.
  KernelStats kstats_;

  // Registry handles cached at construction: metric updates in the hot
  // paths are plain integer arithmetic, never name lookups. The two
  // highest-rate histograms buffer through LocalHistogram and flush at
  // fixpoint exit (and on destruction), so per-event observation stays
  // non-atomic.
  telemetry::Counter& ctr_fixpoints_;
  telemetry::Counter& ctr_applications_;
  telemetry::Counter& ctr_narrowings_;
  telemetry::Counter& ctr_conflicts_;
  telemetry::Counter& ctr_gate_evals_;
  telemetry::Counter& ctr_level_sweeps_;
  telemetry::Counter& ctr_simd_batches_;
  telemetry::Counter& ctr_scalar_tail_;
  // Hardware-counter totals for the fixpoint drain (perf observatory):
  // bumped once per reach_fixpoint when prof::counters_enabled(), so the
  // disabled path pays one branch. Cycles/instructions/misses live under
  // "perf.fixpoint.*" next to the stage-level "perf.stage.*" slots.
  telemetry::Counter& ctr_perf_cycles_;
  telemetry::Counter& ctr_perf_instructions_;
  telemetry::Counter& ctr_perf_cache_refs_;
  telemetry::Counter& ctr_perf_cache_misses_;
  telemetry::Counter& ctr_perf_branch_misses_;
  telemetry::Counter& ctr_perf_wall_ns_;
  telemetry::Counter& ctr_perf_sections_;
  telemetry::Histogram& h_fixpoint_narrowings_;
  telemetry::LocalHistogram lh_queue_depth_;
  telemetry::LocalHistogram lh_narrowing_magnitude_;

  // High-water gauges, set once per reach_fixpoint exit (their `max` field
  // in registry snapshots is the whole-run peak; see doc/OBSERVABILITY.md).
  telemetry::Gauge& g_trail_depth_;
  telemetry::Gauge& g_queue_depth_;
  telemetry::Gauge& g_arena_bytes_;

  /// Bytes held by the principal growable arenas (trail, domain planes,
  /// queue bookkeeping, change log, level plan). O(1): capacities only.
  [[nodiscard]] std::size_t arena_bytes() const {
    return trail_.capacity() * sizeof(TrailEntry) +
           domains_.capacity_bytes() +
           save_epoch_.capacity() * sizeof(std::uint64_t) +
           slot_queued_.capacity_bytes() +
           (level_count_.capacity() + gate_level_.capacity() +
            sweep_slots_.capacity()) * sizeof(std::uint32_t) +
           change_log_.capacity() * sizeof(NetId) +
           log_bits_.capacity_bytes() + plan_.capacity_bytes();
  }
};

}  // namespace waveck
