// Event-driven constraint system over abstract signals (paper Section 3.3).
//
// One variable per net (domain: AbstractSignal), one relational constraint
// per gate. `reach_fixpoint` repeatedly applies scheduled gate constraints
// until no domain narrows -- the greatest fixpoint (Theorem 1). Selective
// state saving (a trail) supports the backtracking needed by stem
// correlation and case analysis.
//
// Learned class implications (Section 4, static learning) hook in through
// an ImplicationTable: whenever a net's domain collapses to a single final
// class, the table's consequences are applied as further restrictions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/telemetry.hpp"
#include "netlist/circuit.hpp"
#include "waveform/abstract_waveform.hpp"

namespace waveck {

/// Class implications (y = v) => (x = w), stored per (net, class).
class ImplicationTable {
 public:
  struct Consequence {
    NetId net;
    bool cls;
  };

  void add(NetId y, bool v, NetId x, bool w) {
    table_[key(y, v)].push_back({x, w});
    ++size_;
  }
  [[nodiscard]] const std::vector<Consequence>& of(NetId y, bool v) const {
    static const std::vector<Consequence> kEmpty;
    const auto it = table_.find(key(y, v));
    return it == table_.end() ? kEmpty : it->second;
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  static std::uint64_t key(NetId y, bool v) {
    return (std::uint64_t{y.value()} << 1) | (v ? 1 : 0);
  }
  std::unordered_map<std::uint64_t, std::vector<Consequence>> table_;
  std::size_t size_ = 0;
};

class ConstraintSystem {
 public:
  enum class Status : std::uint8_t {
    kPossibleViolation,  // fixpoint reached with consistent domains
    kNoViolation,        // some domain emptied: no sigma-compatible waveform
  };

  /// Binds to `circuit` (kept by reference; must outlive the system). All
  /// domains start at top.
  explicit ConstraintSystem(const Circuit& circuit);

  [[nodiscard]] const Circuit& circuit() const { return circuit_; }

  // ----- domains ------------------------------------------------------------
  [[nodiscard]] const AbstractSignal& domain(NetId n) const {
    return domains_[n.index()];
  }
  /// Intersects the domain of `n` with `with`, recording the trail entry and
  /// scheduling affected constraints. Returns true if the domain narrowed.
  bool restrict_domain(NetId n, const AbstractSignal& with);

  [[nodiscard]] bool inconsistent() const { return bottom_count_ > 0; }
  [[nodiscard]] std::size_t bottom_count() const { return bottom_count_; }

  // ----- scheduling / solving -------------------------------------------------
  void schedule_gate(GateId g);
  /// Schedules the driver and every fanout constraint of `n`.
  void schedule_net(NetId n);
  void schedule_all();
  void clear_queue();

  /// Paper Figure 4 `reach_fixpoint`: drains the event queue. Returns
  /// kNoViolation iff some domain emptied (Theorem 2 generalised to any
  /// net).
  Status reach_fixpoint();

  // ----- backtracking ------------------------------------------------------------
  using Mark = std::size_t;
  /// Opens a new restorable state (decision level). Returns the mark to pass
  /// to `pop_to`.
  Mark push_state();
  /// Restores all domains to their values at `mark` and clears the queue.
  void pop_to(Mark mark);
  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }
  /// Nets whose domains changed since `mark`. Each net appears once per
  /// decision level it was first touched in (exactly once when no nested
  /// `push_state` happened after `mark`).
  [[nodiscard]] std::vector<NetId> changed_since(Mark mark) const;

  // ----- learning hook -----------------------------------------------------------
  /// Attaches a table of learned class implications (may be null). Not
  /// owned; must outlive the system.
  void set_implications(const ImplicationTable* table) { implications_ = table; }

  // ----- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t applications() const { return applications_; }
  [[nodiscard]] std::uint64_t narrowings() const { return narrowings_; }

 private:
  void save_if_needed(NetId n);
  /// Commits a narrowed value for net `n`: trail, events, learning.
  void commit_domain(NetId n, const AbstractSignal& value, GateId source);
  void apply_gate(GateId g);

  const Circuit& circuit_;
  std::vector<AbstractSignal> domains_;

  std::deque<GateId> queue_;
  std::vector<bool> in_queue_;

  struct TrailEntry {
    NetId net;
    AbstractSignal old_value;
    std::uint64_t old_epoch;
  };
  std::vector<TrailEntry> trail_;
  std::vector<std::uint64_t> save_epoch_;
  std::uint64_t current_epoch_ = 1;
  std::uint64_t epoch_counter_ = 1;

  std::size_t bottom_count_ = 0;
  const ImplicationTable* implications_ = nullptr;

  std::uint64_t applications_ = 0;
  std::uint64_t narrowings_ = 0;

  // Registry handles cached at construction: metric updates in the hot
  // paths are plain integer arithmetic, never name lookups.
  telemetry::Counter& ctr_fixpoints_;
  telemetry::Counter& ctr_applications_;
  telemetry::Counter& ctr_narrowings_;
  telemetry::Counter& ctr_conflicts_;
  telemetry::Histogram& h_queue_depth_;
  telemetry::Histogram& h_fixpoint_narrowings_;
  telemetry::Histogram& h_narrowing_magnitude_;
};

}  // namespace waveck
