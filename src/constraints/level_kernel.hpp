// Batched level-sweep projection kernels over the SoA domain planes.
//
// PR 4's bucket queue already drains gates one topological level at a time;
// within a level no gate feeds another, so a whole drained level can be
// evaluated as one data-parallel sweep. At levelization time the gates are
// pre-sorted into per-(gate-class, fanin-arity) runs with packed
// operand-index tables (LevelPlan); at drain time the constraint system
// hands each run's scheduled slots to a kernel picked from a dispatch table
// (KernelTable). Two structurally identical kernel sets exist: a 4-lane
// scalar set (always built) and an AVX2 set (built under WAVECK_SIMD,
// selected at runtime via CPUID) — both are instantiations of the same
// templates in level_kernel_impl.hpp over a lane-ops policy, so they narrow
// bit-identically and canonical reports cannot depend on which one ran.
//
// Kernels never write the planes directly: every narrowed value goes
// through CommitSink::commit (the constraint system's commit_domain), which
// preserves the trail, scheduling, learning and telemetry semantics of the
// scalar engine exactly. Within-sweep evaluation order may differ from the
// event-driven engine's, but the greatest fixpoint is order-independent
// (paper Theorem 1), so drains converge to identical domains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "constraints/soa_domain.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

enum class KernelKind : std::uint8_t {
  kUnary,        // NOT/BUF/DELAY: vector shift + intersect
  kControlling,  // AND/NAND/OR/NOR up to kMaxControllingArity inputs
  kGeneric,      // XOR/XNOR/MUX and very wide gates: scalar project_gate
};
inline constexpr std::size_t kNumKernelKinds = 3;

/// Widest fanin the dedicated controlling-gate kernel handles; wider gates
/// fall back to the generic kernel (identical semantics, no batching).
inline constexpr std::size_t kMaxControllingArity = 8;

/// A maximal range of slots sharing (level, kind, type, arity).
struct KernelRun {
  std::uint32_t begin = 0;  // first slot
  std::uint32_t end = 0;    // one past last slot
  GateType type = GateType::kAnd;
  std::uint32_t arity = 0;
  KernelKind kind = KernelKind::kGeneric;
};

/// Levelization-time layout: gates sorted by (level, kind, type, arity,
/// topo position) into dense "slots", with packed per-slot operand tables
/// so kernels index planes without touching Gate objects.
struct LevelPlan {
  std::vector<std::uint32_t> slot_of_gate;  // gate index -> slot
  std::vector<std::uint32_t> gate_of_slot;  // slot -> gate index
  std::vector<std::uint32_t> level_begin;   // level -> first slot (n+1 ents)
  std::vector<KernelRun> runs;              // ascending by begin
  std::vector<std::uint32_t> run_begin_of_level;  // level -> first run
  // Per-slot packed tables. A slot's inputs occupy
  // ins_net[ins_offset[slot] .. ins_offset[slot] + arity).
  std::vector<std::uint32_t> out_net;
  std::vector<std::uint32_t> ins_offset;
  std::vector<std::uint32_t> ins_net;
  std::vector<std::int64_t> dmin;
  std::vector<std::int64_t> dmax;
  std::size_t num_levels = 0;

  /// Builds the plan from the circuit and per-gate longest-path levels.
  void build(const Circuit& c, const std::vector<std::uint32_t>& gate_level);

  [[nodiscard]] std::size_t capacity_bytes() const;
};

/// Commit interface back into the constraint system. Kernels evaluate in
/// small buffered groups and push each narrowed net through here, in the
/// same per-gate order (output first, then inputs) as the scalar engine.
class CommitSink {
 public:
  /// Narrows `n` to (current ∩ value); trail/schedule/learning included.
  virtual void kernel_commit(NetId n, const AbstractSignal& value) = 0;
  /// True once some domain emptied; kernels return early.
  [[nodiscard]] virtual bool kernel_inconsistent() const = 0;

 protected:
  ~CommitSink() = default;
};

/// Per-drain batching tallies, flushed into the fixpoint.* counters.
struct KernelStats {
  std::uint64_t simd_batches = 0;  // full 4-wide vector groups evaluated
  std::uint64_t scalar_tail = 0;   // gates evaluated outside full batches
};

using KernelFn = void (*)(const SoaDomain& dom, const LevelPlan& plan,
                          const KernelRun& run, const std::uint32_t* slots,
                          std::size_t n, CommitSink& sink, KernelStats& stats);

struct KernelTable {
  KernelFn fn[kNumKernelKinds] = {};
};

// ----- runtime dispatch ------------------------------------------------------
/// True iff the AVX2 kernel set was compiled in (WAVECK_SIMD build).
[[nodiscard]] bool simd_compiled();
/// True iff compiled in *and* this CPU reports AVX2.
[[nodiscard]] bool simd_supported();
/// Requests the AVX2 set on/off at runtime (effective only when supported).
/// The initial setting honours the WAVECK_SIMD environment variable
/// ("0"/"off"/"OFF" disable); the fuzz battery's simd_equivalence property
/// flips this in-process to compare both paths.
void set_simd_enabled(bool on);
[[nodiscard]] bool simd_enabled();
/// The kernel set the next sweep will dispatch through.
[[nodiscard]] const KernelTable& active_kernel_table();

}  // namespace waveck
