// Component delay correlation (the paper's companion capability, reference
// [1]: S. M. Aourid, E. Cerny, "CLP-Based Gate-Level Timing Verification
// with Delay Correlation", IWLS'97).
//
// Gates whose DelaySpec carries the same non-negative `group` id share one
// physical delay variable D in [dmin, dmax]. Treating D as a constraint
// variable and narrowing it by relational interval arithmetic removes the
// pessimism of letting each instance pick an independent value: a timing
// check that needs one instance slow and a correlated instance fast is
// inconsistent.
//
// Narrowing rules (sound; derived from the projection semantics):
//  * unary gate (NOT/BUF/DELAY): lambda_out = lambda_in + D exactly, so
//    D ⊆ hull over feasible class pairs of
//        [out.lmin - in.max, out.max - in.lmin];
//  * controlling gate whose controlled output class is refuted (only the
//    all-non-controlling combination remains): lambda_out = D + max_i
//    lambda_i, giving the analogous window over the input maxima.
// Group domains are the intersection over member-gate windows; an empty
// group domain refutes the whole check (Theorem 2 reasoning lifted to
// delay variables).
//
// Usage (see Verifier::check_output with use_delay_correlation): run the
// narrowing loop *before* any case-analysis decision, write the narrowed
// intervals back into the (caller-owned, mutable) circuit, re-run the
// waveform fixpoint, and repeat until quiescent. Decisions taken later
// remain sound because the delay deductions depend only on the undecided
// top-level state.
#pragma once

#include <cstddef>

#include "constraints/constraint_system.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

struct DelayCorrelationStats {
  std::size_t rounds = 0;
  std::size_t gates_narrowed = 0;
  bool proved_no_violation = false;
};

/// One full correlation loop: narrow delay variables from the current
/// domains, intersect per group, write back, re-fixpoint; repeat until no
/// interval changes. `c` must be the very circuit `cs` was built on (passed
/// mutably for the write-back). The system must be at a fixpoint on entry.
DelayCorrelationStats apply_delay_correlation(ConstraintSystem& cs,
                                              Circuit& c);

}  // namespace waveck
