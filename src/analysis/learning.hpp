// Static learning of class implications (paper Section 4, first paragraph).
//
// SOCRATES-style pre-processing: for every net y and class v, assert y = v
// on a scratch constraint system and propagate; every other net x that
// collapses to a single class w yields the implication (y=v) => (x=w) and
// its contrapositive (x=!w) => (y=!v). Classes that propagate to an outright
// contradiction are globally impossible and reported separately so callers
// can restrict them permanently.
//
// The implications are derived from the Boolean structure only (domains
// start at top), so they remain valid in any narrower state -- in
// particular under every timing check.
#pragma once

#include <vector>

#include "constraints/constraint_system.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

struct LearningResult {
  ImplicationTable table;
  /// (net, class) pairs that are globally unsatisfiable.
  std::vector<std::pair<NetId, bool>> impossible;
  std::size_t direct = 0;          // implications found by propagation
  std::size_t contrapositive = 0;  // added contrapositives
};

struct LearningOptions {
  /// Skip learning for circuits with more nets than this (pre-processing
  /// cost guard); an empty table is returned.
  std::size_t max_nets = 200000;
  /// Record the contrapositive of each discovered implication (SOCRATES
  /// stores these explicitly; they are the non-local ones local propagation
  /// cannot rediscover).
  bool contrapositives = true;
  /// Stop recording once the table reaches this size (memory guard on
  /// implication-dense circuits such as long carry chains).
  std::size_t max_implications = 2'000'000;
};

[[nodiscard]] LearningResult learn_implications(const Circuit& c,
                                                const LearningOptions& opt = {});

}  // namespace waveck
