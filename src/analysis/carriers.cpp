#include "analysis/carriers.hpp"

#include <algorithm>
#include <cassert>

#include "netlist/topo_delay.hpp"

namespace waveck {
namespace {

/// delta - k for finite operands.
Time minus(Time delta, Time k) {
  assert(delta.is_finite() && k.is_finite());
  return Time(delta.value() - k.value());
}

}  // namespace

CarrierSet static_carriers(const Circuit& c, const TimingCheck& check) {
  CarrierSet set;
  set.distance.assign(c.num_nets(), Time::neg_inf());
  const auto top = topo_arrival(c);
  const auto to_s = topo_to_target(c, check.output);
  for (std::size_t i = 0; i < c.num_nets(); ++i) {
    const Time d = to_s[i];
    if (d == Time::neg_inf()) continue;
    // Longest path through net i ending at s.
    const Time through = top[i] + d.value();
    if (through >= check.delta) set.distance[i] = d;
  }
  return set;
}

CarrierSet dynamic_carriers(const ConstraintSystem& cs,
                            const TimingCheck& check) {
  const Circuit& c = cs.circuit();
  CarrierSet set;
  set.distance.assign(c.num_nets(), Time::neg_inf());
  // An inconsistent system has no sigma-compatible waveform anywhere.
  if (cs.inconsistent()) return set;
  std::vector<Time> cand(c.num_nets(), Time::neg_inf());
  cand[check.output.index()] = Time(0);

  auto finalize = [&](NetId n) {
    const Time k = cand[n.index()];
    if (k == Time::neg_inf()) return;
    if (cs.has_transition_at_or_after(n, minus(check.delta, k))) {
      set.distance[n.index()] = k;
    }
  };

  const auto& order = c.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& g = c.gate(*it);
    // All consumers of g.out were processed already: its candidate distance
    // is final; validate the Def. 7 domain condition.
    finalize(g.out);
    const Time k = set.distance[g.out.index()];
    if (k == Time::neg_inf()) continue;
    const Time kp = k + g.delay.dmax;
    for (NetId in : g.ins) {
      cand[in.index()] = Time::max(cand[in.index()], kp);
    }
  }
  for (NetId in : c.inputs()) finalize(in);
  // Degenerate case: the checked output is itself a primary input.
  if (!c.net(check.output).driver.valid()) finalize(check.output);
  return set;
}

std::vector<NetId> timing_dominators(const Circuit& c,
                                     const TimingCheck& check,
                                     const CarrierSet& carriers) {
  DominatorScratch scratch;
  return timing_dominators(c, check, carriers, scratch);
}

std::vector<NetId> timing_dominators(const Circuit& c,
                                     const TimingCheck& check,
                                     const CarrierSet& carriers,
                                     DominatorScratch& scratch) {
  const NetId s = check.output;
  if (!carriers.is_carrier(s)) return {};

  // Vertices of Psi': carrier nets in reverse-circuit-topological order
  // (s first, upstream later), then the virtual sink T. This is a
  // topological order of Psi' because its edges run downstream-net ->
  // upstream-net.
  std::vector<NetId>& verts = scratch.verts;
  verts.clear();
  for (GateId g : c.topo_order()) {
    const NetId out = c.gate(g).out;
    if (carriers.is_carrier(out)) verts.push_back(out);
  }
  std::reverse(verts.begin(), verts.end());
  for (NetId in : c.inputs()) {
    if (carriers.is_carrier(in) && in != s) verts.push_back(in);
  }
  // `s` must be the source (index 0); it is first among driven nets, but if
  // s is itself a primary input (a circuit can declare an input as an
  // output, and the fuzz shrinker produces such netlists) it was excluded
  // from both collection loops above and has to be inserted here.
  if (verts.empty() || verts.front() != s) {
    const auto it = std::find(verts.begin(), verts.end(), s);
    if (it == verts.end()) {
      verts.insert(verts.begin(), s);
    } else {
      std::rotate(verts.begin(), it, it + 1);
    }
  }

  const std::size_t n_verts = verts.size() + 1;  // + T
  const std::size_t t_idx = verts.size();
  std::vector<std::size_t>& vert_index = scratch.vert_index;
  vert_index.assign(c.num_nets(), SIZE_MAX);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    vert_index[verts[i].index()] = i;
  }

  // Predecessor lists: edge y -> x for every carrier input x of y's driving
  // gate; edge y -> T when y is a primary input of the circuit. The inner
  // vectors keep their capacity across calls via the scratch.
  std::vector<std::vector<std::size_t>>& preds = scratch.preds;
  if (preds.size() < n_verts) preds.resize(n_verts);
  for (std::size_t i = 0; i < n_verts; ++i) preds[i].clear();
  for (std::size_t yi = 0; yi < verts.size(); ++yi) {
    const NetId y = verts[yi];
    const GateId drv = c.net(y).driver;
    if (!drv.valid()) {
      preds[t_idx].push_back(yi);
      continue;
    }
    for (NetId x : c.gate(drv).ins) {
      const std::size_t xi = vert_index[x.index()];
      if (xi != SIZE_MAX) preds[xi].push_back(yi);
    }
  }

  // Cooper-Harvey-Kennedy iterative idom; a single pass suffices on a DAG
  // processed in topological order.
  constexpr std::size_t kUndef = SIZE_MAX;
  std::vector<std::size_t>& idom = scratch.idom;
  idom.assign(n_verts, kUndef);
  idom[0] = 0;  // S = s
  auto intersect = [&](std::size_t a, std::size_t b) {
    while (a != b) {
      while (a > b) a = idom[a];
      while (b > a) b = idom[b];
    }
    return a;
  };
  for (std::size_t v = 1; v < n_verts; ++v) {
    std::size_t best = kUndef;
    for (std::size_t p : preds[v]) {
      if (idom[p] == kUndef) continue;  // unreachable from S
      best = best == kUndef ? p : intersect(best, p);
    }
    idom[v] = best;
  }

  std::vector<NetId> doms;
  if (idom[t_idx] == kUndef) {
    // No complete carrier path: no extra implication beyond s itself.
    doms.push_back(s);
    return doms;
  }
  for (std::size_t v = idom[t_idx];; v = idom[v]) {
    doms.push_back(verts[v]);
    if (v == 0) break;
  }
  std::reverse(doms.begin(), doms.end());  // s first, outward
  return doms;
}

std::size_t apply_dominator_restrictions(ConstraintSystem& cs,
                                         const TimingCheck& check,
                                         const CarrierSet& carriers,
                                         const std::vector<NetId>& doms) {
  std::size_t changed = 0;
  for (NetId d : doms) {
    const Time k = carriers.distance[d.index()];
    if (k == Time::neg_inf()) continue;
    const Time bound = Time(check.delta.value() - k.value());
    if (cs.restrict_domain(d, AbstractSignal::violating(bound))) ++changed;
  }
  return changed;
}

namespace {

std::size_t apply_implications(ConstraintSystem& cs, const TimingCheck& check,
                               const CarrierSet& carriers) {
  const auto doms = timing_dominators(cs.circuit(), check, carriers);
  return apply_dominator_restrictions(cs, check, carriers, doms);
}

}  // namespace

std::size_t apply_dominator_implications(ConstraintSystem& cs,
                                         const TimingCheck& check) {
  if (cs.inconsistent()) return 0;
  return apply_implications(cs, check, dynamic_carriers(cs, check));
}

std::size_t apply_static_dominator_implications(ConstraintSystem& cs,
                                                const TimingCheck& check) {
  if (cs.inconsistent()) return 0;
  return apply_implications(cs, check, static_carriers(cs.circuit(), check));
}

}  // namespace waveck
