// SCOAP combinational controllability/observability (Goldstein-Thigpen),
// used to guide the modified-FAN case analysis (paper Section 5).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace waveck {

struct Scoap {
  // cc[v][net]: combinational v-controllability (>= 1; primary inputs are 1).
  std::vector<std::uint32_t> cc0;
  std::vector<std::uint32_t> cc1;
  // co[net]: combinational observability (primary outputs are 0).
  std::vector<std::uint32_t> co;

  [[nodiscard]] std::uint32_t cc(bool v, NetId n) const {
    return (v ? cc1 : cc0)[n.index()];
  }
};

[[nodiscard]] Scoap compute_scoap(const Circuit& c);

}  // namespace waveck
