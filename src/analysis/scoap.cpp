#include "analysis/scoap.hpp"

#include <algorithm>
#include <limits>

namespace waveck {
namespace {

constexpr std::uint32_t kCap = 1u << 24;  // avoid overflow on deep circuits

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  return std::min(kCap, a + b);
}

}  // namespace

Scoap compute_scoap(const Circuit& c) {
  Scoap s;
  s.cc0.assign(c.num_nets(), kCap);
  s.cc1.assign(c.num_nets(), kCap);
  s.co.assign(c.num_nets(), kCap);

  for (NetId in : c.inputs()) {
    s.cc0[in.index()] = 1;
    s.cc1[in.index()] = 1;
  }

  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    const std::size_t o = g.out.index();
    switch (g.type) {
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool cv = controlling_value(g.type);
        // Controlled output value: set ONE input to the controlling value.
        std::uint32_t ctrl = kCap;
        // Non-controlled output: set ALL inputs to the non-controlling value.
        std::uint32_t nctrl = 1;
        for (NetId in : g.ins) {
          ctrl = std::min(ctrl, s.cc(cv, in));
          nctrl = sat_add(nctrl, s.cc(!cv, in));
        }
        ctrl = sat_add(ctrl, 1);
        const bool ctrl_out = cv != inversion(g.type);
        (ctrl_out ? s.cc1 : s.cc0)[o] = ctrl;
        (ctrl_out ? s.cc0 : s.cc1)[o] = nctrl;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Fold inputs pairwise: cost of parity p over first k inputs.
        std::uint32_t even = 1;  // parity 0 so far (no inputs: parity 0)
        std::uint32_t odd = kCap;
        bool first = true;
        for (NetId in : g.ins) {
          const std::uint32_t c0 = s.cc0[in.index()];
          const std::uint32_t c1 = s.cc1[in.index()];
          if (first) {
            even = c0;
            odd = c1;
            first = false;
          } else {
            const std::uint32_t ne =
                std::min(sat_add(even, c0), sat_add(odd, c1));
            const std::uint32_t no =
                std::min(sat_add(even, c1), sat_add(odd, c0));
            even = ne;
            odd = no;
          }
        }
        const bool inv = inversion(g.type);
        s.cc0[o] = sat_add(inv ? odd : even, 1);
        s.cc1[o] = sat_add(inv ? even : odd, 1);
        break;
      }
      case GateType::kNot:
        s.cc0[o] = sat_add(s.cc1[g.ins[0].index()], 1);
        s.cc1[o] = sat_add(s.cc0[g.ins[0].index()], 1);
        break;
      case GateType::kBuf:
      case GateType::kDelay:
        s.cc0[o] = sat_add(s.cc0[g.ins[0].index()], 1);
        s.cc1[o] = sat_add(s.cc1[g.ins[0].index()], 1);
        break;
      case GateType::kMux: {
        const NetId sel = g.ins[0], d0 = g.ins[1], d1 = g.ins[2];
        for (int v = 0; v <= 1; ++v) {
          const auto& ccv = v ? s.cc1 : s.cc0;
          const std::uint32_t via0 =
              sat_add(s.cc0[sel.index()], ccv[d0.index()]);
          const std::uint32_t via1 =
              sat_add(s.cc1[sel.index()], ccv[d1.index()]);
          (v ? s.cc1 : s.cc0)[o] = sat_add(std::min(via0, via1), 1);
        }
        break;
      }
    }
  }

  // Observability, outputs-to-inputs.
  for (NetId out : c.outputs()) s.co[out.index()] = 0;
  const auto& order = c.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& g = c.gate(*it);
    const std::uint32_t co_out = s.co[g.out.index()];
    if (co_out >= kCap) continue;
    for (std::size_t i = 0; i < g.ins.size(); ++i) {
      std::uint32_t cost = co_out;
      switch (g.type) {
        case GateType::kAnd:
        case GateType::kNand:
        case GateType::kOr:
        case GateType::kNor: {
          const bool ncv = !controlling_value(g.type);
          for (std::size_t j = 0; j < g.ins.size(); ++j) {
            if (j != i) cost = sat_add(cost, s.cc(ncv, g.ins[j]));
          }
          break;
        }
        case GateType::kXor:
        case GateType::kXnor:
          for (std::size_t j = 0; j < g.ins.size(); ++j) {
            if (j != i) {
              cost = sat_add(cost, std::min(s.cc0[g.ins[j].index()],
                                            s.cc1[g.ins[j].index()]));
            }
          }
          break;
        case GateType::kNot:
        case GateType::kBuf:
        case GateType::kDelay:
          break;
        case GateType::kMux:
          if (i == 0) {
            // Observing the select needs the data inputs to differ.
            cost = sat_add(cost, std::min(sat_add(s.cc0[g.ins[1].index()],
                                                  s.cc1[g.ins[2].index()]),
                                          sat_add(s.cc1[g.ins[1].index()],
                                                  s.cc0[g.ins[2].index()])));
          } else {
            cost = sat_add(cost, s.cc(i == 2, g.ins[0]));
          }
          break;
      }
      cost = sat_add(cost, 1);
      auto& slot = s.co[g.ins[i].index()];
      slot = std::min(slot, cost);
    }
  }
  return s;
}

}  // namespace waveck
