#include "analysis/delay_correlation.hpp"

#include <unordered_map>
#include <vector>

#include "common/telemetry.hpp"

namespace waveck {
namespace {

/// a - b with infinity propagation toward the pessimistic side of the
/// requested bound.
Time sub_low(Time a, Time b) {  // lower bound of {x - y : x >= a', y <= b'}
  if (a.is_neg_inf() || b.is_pos_inf()) return Time::neg_inf();
  if (a.is_pos_inf() || b.is_neg_inf()) return Time::pos_inf();
  return Time(a.value() - b.value());
}

struct Window {
  Time lo = Time::pos_inf();  // empty until first hull
  Time hi = Time::neg_inf();
  bool feasible = false;

  void hull(Time l, Time h) {
    lo = Time::min(lo, l);
    hi = Time::max(hi, h);
    feasible = true;
  }
};

/// Feasible window for gate g's delay variable from the current domains, or
/// !feasible when the gate relation admits no class pair at all.
Window delay_window(const ConstraintSystem& cs, const Gate& g) {
  Window w;
  const AbstractSignal& out = cs.domain(g.out);

  if (is_unary(g.type)) {
    const bool inv = inversion(g.type);
    const AbstractSignal& in = cs.domain(g.ins[0]);
    for (int v = 0; v <= 1; ++v) {
      const bool iv = v != 0;
      const LtInterval& wi = in.cls(iv);
      const LtInterval& wo = out.cls(iv != inv);
      if (wi.is_empty() || wo.is_empty()) continue;
      // lambda_out = lambda_in + D exactly.
      w.hull(sub_low(wo.lmin, wi.max), sub_low(wo.max, wi.lmin));
    }
    return w;
  }

  if (has_controlling_value(g.type)) {
    const bool c = controlling_value(g.type);
    const bool inv = inversion(g.type);
    const LtInterval& so = out.cls(c != inv);       // controlled result
    const LtInterval& snc = out.cls(!c != inv);     // all-non-controlling
    if (!so.is_empty()) {
      // A controlled combination may be the witness; its lambda_out <=
      // D + min(...) constrains D only from below by -inf: no narrowing.
      w.feasible = true;
      w.lo = Time::neg_inf();
      w.hi = Time::pos_inf();
      return w;
    }
    if (snc.is_empty()) return w;  // gate output fully refuted
    Time max_lmin = Time::neg_inf();
    Time max_max = Time::neg_inf();
    for (NetId in : g.ins) {
      // domain() returns by value (SoA store): copy, don't bind through cls().
      const LtInterval wi = cs.domain(in).cls(!c);
      if (wi.is_empty()) return w;  // no feasible combination at all
      max_lmin = Time::max(max_lmin, wi.lmin);
      max_max = Time::max(max_max, wi.max);
    }
    // lambda_out = D + max_i lambda_i exactly.
    w.hull(sub_low(snc.lmin, max_max), sub_low(snc.max, max_lmin));
    return w;
  }

  // XOR/MUX: cancellation makes the relation loose; no narrowing.
  w.feasible = true;
  w.lo = Time::neg_inf();
  w.hi = Time::pos_inf();
  return w;
}

}  // namespace

DelayCorrelationStats apply_delay_correlation(ConstraintSystem& cs,
                                              Circuit& c) {
  auto& reg = telemetry::Registry::current();
  auto& ctr_rounds = reg.counter("delay_corr.rounds");
  auto& ctr_gates = reg.counter("delay_corr.gates_narrowed");

  DelayCorrelationStats stats;
  if (cs.inconsistent()) {
    stats.proved_no_violation = true;
    return stats;
  }
  constexpr std::size_t kMaxRounds = 64;

  for (; stats.rounds < kMaxRounds; ++stats.rounds) {
    // Per-gate windows, then per-group intersections.
    std::vector<Window> windows(c.num_gates());
    std::unordered_map<std::int32_t, std::pair<Time, Time>> group_dom;
    bool infeasible_gate = false;
    NetId infeasible_net;

    for (GateId gid : c.topo_order()) {
      const Gate& g = c.gate(gid);
      Window w = delay_window(cs, g);
      if (!w.feasible) {
        // The gate relation admits no waveform at all: the check fails.
        infeasible_gate = true;
        infeasible_net = g.out;
        break;
      }
      // Clamp to the gate's current interval.
      w.lo = Time::max(w.lo, Time(g.delay.dmin));
      w.hi = Time::min(w.hi, Time(g.delay.dmax));
      windows[gid.index()] = w;
      if (g.delay.group >= 0) {
        auto& gd = group_dom
                       .try_emplace(g.delay.group,
                                    std::make_pair(Time::neg_inf(),
                                                   Time::pos_inf()))
                       .first->second;
        gd.first = Time::max(gd.first, w.lo);
        gd.second = Time::min(gd.second, w.hi);
      }
    }

    std::size_t changed = 0;
    if (!infeasible_gate) {
      for (GateId gid : c.topo_order()) {
        Gate& g = c.gate_mut(gid);
        Time lo = windows[gid.index()].lo;
        Time hi = windows[gid.index()].hi;
        if (g.delay.group >= 0) {
          const auto& gd = group_dom.at(g.delay.group);
          lo = Time::max(lo, gd.first);
          hi = Time::min(hi, gd.second);
        }
        if (lo > hi) {
          infeasible_gate = true;
          infeasible_net = g.out;
          break;
        }
        const std::int64_t nlo = lo.is_finite() ? lo.value() : g.delay.dmin;
        const std::int64_t nhi = hi.is_finite() ? hi.value() : g.delay.dmax;
        if (nlo != g.delay.dmin || nhi != g.delay.dmax) {
          g.delay.dmin = std::max(g.delay.dmin, nlo);
          g.delay.dmax = std::min(g.delay.dmax, nhi);
          ++changed;
          cs.schedule_gate(gid);
        }
      }
    }

    if (infeasible_gate) {
      cs.restrict_domain(infeasible_net, AbstractSignal::bottom());
      stats.proved_no_violation = true;
      return stats;
    }
    if (changed == 0) break;
    ctr_rounds.inc();
    stats.gates_narrowed += changed;
    ctr_gates.add(changed);
    if (telemetry::trace_enabled()) {
      telemetry::emit("delay_corr_round",
                      {{"round", stats.rounds}, {"gates_narrowed", changed}});
    }
    if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) {
      stats.proved_no_violation = true;
      return stats;
    }
  }
  return stats;
}

}  // namespace waveck
