// FAN head lines (Fujiwara-Shimono).
//
// A line is *bound* if it is a fanout stem or is reachable from one; all
// other lines are *free* (they sit in fanout-free input regions). A *head
// line* is a free line feeding a gate whose output is bound (or a free
// primary output). FAN stops its backtrace at head lines: a value wanted
// on a head line can always be justified later because its cone is
// fanout-free -- deciding there instead of at the inputs shrinks the search
// tree. The paper's modified FAN (Section 5) inherits this machinery.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace waveck {

struct HeadLines {
  std::vector<bool> bound;  // per net: stem or fed (transitively) by one
  std::vector<bool> head;   // per net: free line on the free/bound frontier

  [[nodiscard]] bool is_head(NetId n) const { return head[n.index()]; }
  [[nodiscard]] bool is_bound(NetId n) const { return bound[n.index()]; }
};

[[nodiscard]] HeadLines compute_head_lines(const Circuit& c);

}  // namespace waveck
