#include "analysis/learning.hpp"

#include <algorithm>
#include <unordered_set>

namespace waveck {
namespace {

std::uint64_t pair_key(NetId y, bool v, NetId x, bool w) {
  return (std::uint64_t{y.value()} << 33) | (std::uint64_t{v} << 32) |
         (std::uint64_t{x.value()} << 1) | std::uint64_t{w};
}

}  // namespace

LearningResult learn_implications(const Circuit& c,
                                  const LearningOptions& opt) {
  LearningResult res;
  if (c.num_nets() > opt.max_nets) return res;

  ConstraintSystem cs(c);
  std::unordered_set<std::uint64_t> seen;
  // Large circuits learn ~10^6 pairs; pre-sizing avoids the rehash churn.
  seen.reserve(std::min<std::size_t>(opt.max_implications, 1u << 20));

  for (NetId y : c.all_nets()) {
    if (res.table.size() >= opt.max_implications) break;
    for (int v = 0; v <= 1; ++v) {
      const bool vy = v != 0;
      const auto mark = cs.push_state();
      cs.restrict_domain(y, AbstractSignal::class_only(vy));
      const auto status = cs.reach_fixpoint();
      if (status == ConstraintSystem::Status::kNoViolation) {
        res.impossible.emplace_back(y, vy);
        cs.pop_to(mark);
        continue;
      }
      // Every collapsed net is an implication target. (y itself collapsed
      // trivially; skip it.) Only nets touched by the propagation need
      // scanning; the trail suffix is read in place.
      for (std::size_t i = mark; i < cs.trail_size(); ++i) {
        const NetId x = cs.trail_net(i);
        if (x == y) continue;
        const AbstractSignal& d = cs.domain(x);
        if (!d.single_class()) continue;
        const bool wx = d.the_class();
        if (seen.insert(pair_key(y, vy, x, wx)).second) {
          res.table.add(y, vy, x, wx);
          ++res.direct;
        }
        if (opt.contrapositives &&
            seen.insert(pair_key(x, !wx, y, !vy)).second) {
          res.table.add(x, !wx, y, !vy);
          ++res.contrapositive;
        }
      }
      cs.pop_to(mark);
    }
  }
  return res;
}

}  // namespace waveck
