// Static/dynamic carriers and timing dominators (paper Section 4).
//
// A net is a *static carrier* of sigma = (xi, s, delta) iff some path
// through it to s has length >= delta (Def. 4). The *static-carrier
// circuit* (Def. 5) induces a DAG Psi' from s (source S) to a virtual sink T
// fed by the carrier inputs; nets dominating T are *static timing
// dominators* (Def. 6): every sufficiently long path runs through them, so
// waveforms on a dominator d that are stable at/after (delta - top_{d->s})
// cannot cause a violation (Lemma 3).
//
// *Dynamic carriers* (Def. 7) refine this using the current abstract-signal
// domains: x is a carrier at distance k only if its domain still contains
// transitions at/after (delta - k). Dominators of the dynamic-carrier DAG
// are *dynamic timing dominators* (Def. 9); Theorem 3 / Corollary 1 allow
// intersecting their domains with "transitions at/after (delta - k)", the
// global timing implication driving the Figure 4 loop.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "constraints/constraint_system.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

/// The timing check sigma = (xi, s, delta) (Section 2): does output s have a
/// transition at or after time delta?
struct TimingCheck {
  NetId output;
  Time delta;
};

/// Carrier sets with per-net distance-to-s (the largest k such that the net
/// is a k-carrier; Time::neg_inf() for non-carriers).
struct CarrierSet {
  std::vector<Time> distance;  // indexed by NetId
  [[nodiscard]] bool is_carrier(NetId n) const {
    return distance[n.index()] != Time::neg_inf();
  }
  [[nodiscard]] std::size_t count() const {
    std::size_t k = 0;
    for (const Time& t : distance) k += (t != Time::neg_inf());
    return k;
  }
};

/// Static carriers: distance is top_{x->s}; a net qualifies iff
/// top_x + top_{x->s} >= delta.
[[nodiscard]] CarrierSet static_carriers(const Circuit& c,
                                         const TimingCheck& check);

/// Dynamic carriers of Def. 7 over the system's current domains.
[[nodiscard]] CarrierSet dynamic_carriers(const ConstraintSystem& cs,
                                          const TimingCheck& check);

/// Reusable buffers for `timing_dominators`: a repeat caller (the search
/// loop recomputes dominators thousands of times per check) avoids
/// reallocating the per-call vertex/edge scratch.
struct DominatorScratch {
  std::vector<NetId> verts;
  std::vector<std::size_t> vert_index;
  std::vector<std::vector<std::size_t>> preds;
  std::vector<std::size_t> idom;
};

/// Timing dominators: the nets on every S->T path of the carrier DAG,
/// ordered from s outward (s itself first). Works for both carrier kinds.
[[nodiscard]] std::vector<NetId> timing_dominators(const Circuit& c,
                                                   const TimingCheck& check,
                                                   const CarrierSet& carriers);

/// As above, reusing `scratch` across calls. Identical output.
[[nodiscard]] std::vector<NetId> timing_dominators(const Circuit& c,
                                                   const TimingCheck& check,
                                                   const CarrierSet& carriers,
                                                   DominatorScratch& scratch);

/// One round of Corollary 1: intersects every dynamic timing dominator d
/// with (0|delta-k..+inf, 1|delta-k..+inf), k = dynamic distance of d.
/// Returns the number of domains narrowed (0 = the loop in Figure 4 is
/// done).
std::size_t apply_dominator_implications(ConstraintSystem& cs,
                                         const TimingCheck& check);

/// The restriction loop of Corollary 1 over precomputed dominators: shared
/// by `apply_dominator_implications` and the CarrierCache-backed overload
/// (carrier_cache.hpp). Returns the number of domains narrowed.
std::size_t apply_dominator_restrictions(ConstraintSystem& cs,
                                         const TimingCheck& check,
                                         const CarrierSet& carriers,
                                         const std::vector<NetId>& doms);

/// Lemma 3 variant using static carriers/distances only (no domain reads);
/// exposed for the ablation benches.
std::size_t apply_static_dominator_implications(ConstraintSystem& cs,
                                                const TimingCheck& check);

}  // namespace waveck
