#include "analysis/carrier_cache.hpp"

#include <algorithm>
#include <cassert>

#include "common/flight_recorder.hpp"

namespace waveck {

namespace {
void flight_cache(std::uint8_t kind_code) {
  if (flight::enabled()) {
    flight::record(flight::Kind::kCache, {}, 0, 0, kind_code);
  }
}
}  // namespace

CarrierCache::CarrierCache(ConstraintSystem& cs, const TimingCheck& check)
    : cs_(cs),
      check_(check),
      ctr_hits_(telemetry::Registry::current().counter("cache.hits")),
      ctr_misses_(telemetry::Registry::current().counter("cache.misses")),
      ctr_dom_rebuilds_(
          telemetry::Registry::current().counter("cache.dom_rebuilds")) {
  cs_.enable_change_log();
  const Circuit& c = cs_.circuit();
  order_.reserve(c.num_nets());
  const auto& topo = c.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    order_.push_back(c.gate(*it).out);
  }
  for (std::size_t i = 0; i < c.num_nets(); ++i) {
    const NetId n{static_cast<std::uint32_t>(i)};
    if (!c.net(n).driver.valid()) order_.push_back(n);
  }
  assert(order_.size() == c.num_nets());
  net_pos_.assign(c.num_nets(), 0);
  for (std::size_t i = 0; i < order_.size(); ++i) {
    net_pos_[order_[i].index()] = static_cast<std::uint32_t>(i);
  }
  in_cone_.assign(c.num_nets(), 0);
  bottom_set_.distance.assign(c.num_nets(), Time::neg_inf());
}

bool CarrierCache::finalizable(NetId n) const {
  // Matches which nets `dynamic_carriers` ever validates: gate outputs,
  // declared primary inputs, and the checked output itself (degenerate
  // input-as-output netlists from the fuzz shrinker).
  const Net& net = cs_.circuit().net(n);
  return net.driver.valid() || net.is_primary_input || n == check_.output;
}

Time CarrierCache::carrier_distance(NetId n, Time cand) const {
  if (cand == Time::neg_inf() || !finalizable(n)) return Time::neg_inf();
  assert(check_.delta.is_finite() && cand.is_finite());
  const Time bound = Time(check_.delta.value() - cand.value());
  return cs_.has_transition_at_or_after(n, bound) ? cand : Time::neg_inf();
}

Time CarrierCache::pull_candidate(NetId n) const {
  const Circuit& c = cs_.circuit();
  Time cand = n == check_.output ? Time(0) : Time::neg_inf();
  for (GateId gid : c.net(n).fanouts) {
    const Gate& g = c.gate(gid);
    const Time k = set_.distance[g.out.index()];
    if (k == Time::neg_inf()) continue;
    cand = Time::max(cand, k + g.delay.dmax);
  }
  return cand;
}

void CarrierCache::rebuild_full() {
  const Circuit& c = cs_.circuit();
  set_.distance.assign(c.num_nets(), Time::neg_inf());
  cand_.assign(c.num_nets(), Time::neg_inf());
  for (NetId n : order_) {
    const Time cand = pull_candidate(n);
    cand_[n.index()] = cand;
    set_.distance[n.index()] = carrier_distance(n, cand);
  }
  doms_valid_ = false;
}

void CarrierCache::rebuild_cone() {
  const Circuit& c = cs_.circuit();
  // Upstream fan-in closure of the flipped nets: a distance change on net y
  // feeds the candidate distances of y's driver-gate inputs, and nothing
  // else. Every net whose value can change is therefore in this cone.
  cone_.clear();
  std::uint32_t pos_lo = UINT32_MAX;
  std::uint32_t pos_hi = 0;
  auto add = [&](NetId n) {
    std::uint8_t& f = in_cone_[n.index()];
    if (f == 0) {
      f = 1;
      cone_.push_back(n);
      const std::uint32_t p = net_pos_[n.index()];
      pos_lo = std::min(pos_lo, p);
      pos_hi = std::max(pos_hi, p);
    }
  };
  for (NetId n : flips_) add(n);
  for (std::size_t i = 0; i < cone_.size(); ++i) {
    const GateId drv = c.net(cone_[i]).driver;
    if (!drv.valid()) continue;
    for (NetId in : c.gate(drv).ins) add(in);
  }

  // Downstream-before-upstream sweep: rather than sorting the cone, scan
  // the precomputed processing order over the cone's position span (a flag
  // test per position -- cheaper than O(cone log cone) for these sizes).
  bool dist_changed = false;
  for (std::uint32_t p = pos_lo; p <= pos_hi; ++p) {
    const NetId n = order_[p];
    if (in_cone_[n.index()] == 0) continue;
    const Time cand = pull_candidate(n);
    cand_[n.index()] = cand;
    const Time nd = carrier_distance(n, cand);
    if (nd != set_.distance[n.index()]) {
      set_.distance[n.index()] = nd;
      dist_changed = true;
    }
    in_cone_[n.index()] = 0;
  }
  if (dist_changed) doms_valid_ = false;
}

void CarrierCache::sync() {
  const std::uint64_t gen = cs_.domain_generation();
  if (!built_) {
    cs_.drain_changed_nets([](NetId) {});
    rebuild_full();
    built_ = true;
    synced_gen_ = gen;
    ctr_misses_.inc();
    if (telemetry::trace_enabled()) {
      telemetry::emit("cache", {{"kind", "miss"}});
    }
    flight_cache(flight::kCacheMiss);
    return;
  }
  if (synced_gen_ == gen) {
    ctr_hits_.inc();
    if (telemetry::trace_enabled()) {
      telemetry::emit("cache", {{"kind", "hit"}});
    }
    flight_cache(flight::kCacheHit);
    return;
  }
  // A domain change matters only if it flips the Def. 7 status under the
  // net's current candidate distance; candidate distances themselves only
  // move when a downstream status flips.
  flips_.clear();
  cs_.drain_changed_nets([&](NetId n) {
    if (carrier_distance(n, cand_[n.index()]) != set_.distance[n.index()]) {
      flips_.push_back(n);
    }
  });
  synced_gen_ = gen;
  if (flips_.empty()) {
    ctr_hits_.inc();
    if (telemetry::trace_enabled()) {
      telemetry::emit("cache", {{"kind", "hit"}});
    }
    flight_cache(flight::kCacheHit);
    return;
  }
  ctr_misses_.inc();
  if (telemetry::trace_enabled()) {
    telemetry::emit("cache", {{"kind", "miss"}});
  }
  flight_cache(flight::kCacheMiss);
  rebuild_cone();
}

const CarrierSet& CarrierCache::carriers() {
  // An inconsistent system has no sigma-compatible waveform anywhere; the
  // cached state is deliberately left alone (not even the log is drained)
  // so the next consistent query -- typically right after `pop_to` -- sees
  // every restore.
  if (cs_.inconsistent()) return bottom_set_;
  sync();
  return set_;
}

const std::vector<NetId>& CarrierCache::dominators() {
  if (cs_.inconsistent()) return empty_doms_;
  sync();
  if (!doms_valid_) {
    doms_ = timing_dominators(cs_.circuit(), check_, set_, dom_scratch_);
    doms_valid_ = true;
    ctr_dom_rebuilds_.inc();
    if (telemetry::trace_enabled()) {
      telemetry::emit("cache", {{"kind", "dom_rebuild"}});
    }
    flight_cache(flight::kCacheDomRebuild);
  }
  return doms_;
}

std::size_t apply_dominator_implications(ConstraintSystem& cs,
                                         const TimingCheck& check,
                                         CarrierCache* cache) {
  if (cache == nullptr) return apply_dominator_implications(cs, check);
  if (cs.inconsistent()) return 0;
  const std::vector<NetId>& doms = cache->dominators();
  return apply_dominator_restrictions(cs, check, cache->carriers(), doms);
}

}  // namespace waveck
