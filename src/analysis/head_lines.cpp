#include "analysis/head_lines.hpp"

namespace waveck {

HeadLines compute_head_lines(const Circuit& c) {
  HeadLines hl;
  hl.bound.assign(c.num_nets(), false);
  hl.head.assign(c.num_nets(), false);

  // Bound = stem (>= 2 fanout branches) or any fanin is bound; one
  // topological pass settles it.
  for (NetId n : c.inputs()) {
    if (c.net(n).fanouts.size() >= 2) hl.bound[n.index()] = true;
  }
  for (GateId g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    bool b = c.net(gate.out).fanouts.size() >= 2;
    for (NetId in : gate.ins) b = b || hl.bound[in.index()];
    hl.bound[gate.out.index()] = b;
  }

  // Head = free line on the frontier: some fanout gate's output is bound,
  // or it is a free primary output.
  for (NetId n : c.all_nets()) {
    if (hl.bound[n.index()]) continue;
    bool frontier = c.net(n).is_primary_output && c.net(n).fanouts.empty();
    for (GateId g : c.net(n).fanouts) {
      frontier = frontier || hl.bound[c.gate(g).out.index()];
    }
    hl.head[n.index()] = frontier;
  }
  return hl;
}

}  // namespace waveck
