// Incremental dynamic-carrier / timing-dominator cache.
//
// `dynamic_carriers` (Def. 7) is a function of the current abstract-signal
// domains only; the search loop (case analysis, stem correlation) queries it
// after every decision and every backtrack, historically recomputing the
// whole circuit each time. CarrierCache keeps the carrier set materialised
// and patches it incrementally:
//
//  * The constraint system's `domain_generation()` counter says whether any
//    domain changed since the last query -- equal generations are a pure
//    cache hit.
//  * Otherwise the change log (`drain_changed_nets`) yields the nets whose
//    domains narrowed or were restored by `pop_to`. A domain change matters
//    only if it flips the net's Def. 7 carrier status under its current
//    candidate distance; carrier distances of other nets depend solely on
//    the statuses of their downstream consumers, so a flip can only
//    propagate upstream. The cache recomputes exactly the upstream fan-in
//    cone of the flipped nets, pulling candidate distances in
//    downstream-before-upstream order.
//  * Dominators are recomputed (full `timing_dominators`) lazily, only when
//    some carrier distance actually changed since the last dominator query.
//
// The values are bit-for-bit those of the from-scratch functions -- the
// differential fuzz property `cache_equivalence` and
// `tests/carrier_cache_test.cpp` enforce this.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/carriers.hpp"
#include "common/ids.hpp"
#include "common/telemetry.hpp"
#include "constraints/constraint_system.hpp"

namespace waveck {

class CarrierCache {
 public:
  /// Binds to `cs` (kept by reference; must outlive the cache) and turns on
  /// its change log. Construction is cheap; the first `carriers()` /
  /// `dominators()` query pays one full rebuild.
  CarrierCache(ConstraintSystem& cs, const TimingCheck& check);

  CarrierCache(const CarrierCache&) = delete;
  CarrierCache& operator=(const CarrierCache&) = delete;

  /// Current dynamic carriers; identical to `dynamic_carriers(cs, check)`.
  /// The reference stays valid until the next query after a domain change.
  [[nodiscard]] const CarrierSet& carriers();

  /// Current dynamic timing dominators; identical to
  /// `timing_dominators(circuit, check, dynamic_carriers(cs, check))`.
  [[nodiscard]] const std::vector<NetId>& dominators();

  [[nodiscard]] const TimingCheck& check() const { return check_; }

 private:
  void sync();
  void rebuild_full();
  void rebuild_cone();
  [[nodiscard]] Time pull_candidate(NetId n) const;
  [[nodiscard]] Time carrier_distance(NetId n, Time cand) const;
  [[nodiscard]] bool finalizable(NetId n) const;

  ConstraintSystem& cs_;
  TimingCheck check_;

  // Cached values: per-net candidate distances (the max over consumers,
  // before the Def. 7 domain test) and the validated carrier set.
  CarrierSet set_;
  std::vector<Time> cand_;
  std::vector<NetId> doms_;
  bool doms_valid_ = false;
  bool built_ = false;
  std::uint64_t synced_gen_ = 0;

  // Net processing order: gate outputs in reverse topological order, then
  // the undriven nets. Processing in this order guarantees every consumer
  // gate's output distance is final before its inputs are pulled.
  std::vector<NetId> order_;
  std::vector<std::uint32_t> net_pos_;

  // Scratch for the incremental pass.
  std::vector<NetId> flips_;
  std::vector<NetId> cone_;
  std::vector<std::uint8_t> in_cone_;
  DominatorScratch dom_scratch_;

  // Returned for inconsistent systems: no sigma-compatible waveform exists,
  // so the carrier set is empty (matches the from-scratch functions). The
  // cache state is left untouched -- the log is drained on the next
  // consistent query, typically right after a `pop_to`.
  CarrierSet bottom_set_;
  std::vector<NetId> empty_doms_;

  telemetry::Counter& ctr_hits_;
  telemetry::Counter& ctr_misses_;
  telemetry::Counter& ctr_dom_rebuilds_;
};

/// Corollary 1 round backed by the cache; `cache == nullptr` falls back to
/// the from-scratch `apply_dominator_implications(cs, check)`. Produces the
/// identical domain narrowings either way.
std::size_t apply_dominator_implications(ConstraintSystem& cs,
                                         const TimingCheck& check,
                                         CarrierCache* cache);

}  // namespace waveck
