#include "verify/report_io.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/telemetry.hpp"
#include "prof/perf_counters.hpp"

namespace waveck {
namespace {

std::string escape(const std::string& s) { return telemetry::json_escape(s); }

/// Minimal JSON writer: objects and arrays via explicit calls.
class Json {
 public:
  Json& begin() { return raw("{"); }
  Json& end() {
    // Like end_array(): a closed object is itself a value, so the next
    // sibling key needs a comma.
    os_ << "}";
    comma_ = true;
    return *this;
  }
  Json& key(const std::string& k) {
    sep();
    os_ << '"' << escape(k) << "\":";
    comma_ = false;
    return *this;
  }
  Json& value(const std::string& v) {
    sep();
    os_ << '"' << escape(v) << '"';
    comma_ = true;
    return *this;
  }
  Json& value(const char* v) { return value(std::string(v)); }
  Json& value(std::int64_t v) {
    sep();
    os_ << v;
    comma_ = true;
    return *this;
  }
  Json& value(std::size_t v) { return value(static_cast<std::int64_t>(v)); }
  Json& value(double v) {
    sep();
    // JSON has no nan/inf literal; a non-finite double (e.g. a rate whose
    // denominator counter read zero) must degrade to 0, never to a token
    // that breaks machine parsers.
    os_ << (std::isfinite(v) ? v : 0.0);
    comma_ = true;
    return *this;
  }
  Json& value(bool v) {
    sep();
    os_ << (v ? "true" : "false");
    comma_ = true;
    return *this;
  }
  Json& value(Time t) {
    if (t.is_finite()) return value(t.value());
    return value(t.str());
  }
  Json& null() {
    sep();
    os_ << "null";
    comma_ = true;
    return *this;
  }
  /// Splices a pre-serialised JSON value (e.g. a registry snapshot).
  Json& raw_value(const std::string& s) {
    sep();
    os_ << s;
    comma_ = true;
    return *this;
  }
  Json& begin_array() {
    sep();
    os_ << "[";
    comma_ = false;
    return *this;
  }
  Json& end_array() {
    os_ << "]";
    comma_ = true;
    return *this;
  }
  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  Json& raw(const char* s) {
    sep();
    os_ << s;
    comma_ = false;
    return *this;
  }
  void sep() {
    if (comma_) os_ << ",";
    comma_ = false;
  }
  std::ostringstream os_;
  bool comma_ = false;
};

void stage_seconds_body(Json& j, const StageSeconds& s) {
  j.key("stage_seconds").begin();
  j.key("narrowing").value(s.narrowing);
  j.key("gitd").value(s.gitd);
  j.key("stem").value(s.stem);
  j.key("case_analysis").value(s.case_analysis);
  j.end();
}

void perf_totals_body(Json& j, const prof::CounterTotals& t, bool hw) {
  j.key("wall_ns").value(static_cast<std::size_t>(t.wall_ns));
  if (!hw) return;  // degraded path: wall-clock only, no fake zeros
  j.key("cycles").value(static_cast<std::size_t>(t.cycles));
  j.key("instructions").value(static_cast<std::size_t>(t.instructions));
  j.key("ipc").value(t.ipc());
  j.key("cache_references")
      .value(static_cast<std::size_t>(t.cache_references));
  j.key("cache_misses").value(static_cast<std::size_t>(t.cache_misses));
  j.key("cache_miss_rate").value(t.cache_miss_rate());
  j.key("branch_misses").value(static_cast<std::size_t>(t.branch_misses));
}

/// "perf" object: per-stage scaled hardware counters, present only when the
/// check ran with prof::counters_enabled(). On the degraded path (no PMU,
/// perf_event_paranoid, containers) the marker flips to "unavailable" and
/// stages carry wall_ns only.
void stage_perf_body(Json& j, const StagePerf& p) {
  if (!p.any()) return;
  const bool hw = p.total().hw_valid;
  j.key("perf").begin();
  j.key("counters").value(hw ? "available" : "unavailable");
  if (!hw) j.key("reason").value(prof::unavailable_reason());
  const std::pair<const char*, const prof::CounterTotals*> stages[] = {
      {"narrowing", &p.narrowing},
      {"gitd", &p.gitd},
      {"stem", &p.stem},
      {"case_analysis", &p.case_analysis}};
  for (const auto& [name, totals] : stages) {
    if (!totals->any()) continue;
    j.key(name).begin();
    perf_totals_body(j, *totals, hw);
    j.end();
  }
  j.end();
}

void check_body(Json& j, const Circuit& c, const CheckReport& rep) {
  j.key("output").value(c.net(rep.check.output).name);
  j.key("delta").value(rep.check.delta);
  j.key("conclusion").value(to_string(rep.conclusion));
  j.key("stages").begin();
  j.key("before_gitd").value(to_string(rep.before_gitd));
  j.key("after_gitd").value(to_string(rep.after_gitd));
  j.key("after_stem").value(to_string(rep.after_stem));
  j.end();
  j.key("backtracks").value(rep.backtracks);
  j.key("decisions").value(rep.decisions);
  j.key("gitd_rounds").value(rep.gitd_rounds);
  j.key("stems_processed").value(rep.stems_processed);
  j.key("seconds").value(rep.seconds);
  stage_seconds_body(j, rep.stage_seconds);
  stage_perf_body(j, rep.stage_perf);
  j.key("vector");
  if (rep.vector) {
    j.value(format_vector(*rep.vector));
  } else {
    j.null();
  }
}

}  // namespace

std::string to_json(const Circuit& c, const CheckReport& rep,
                    bool include_metrics) {
  Json j;
  j.begin();
  j.key("circuit").value(c.name());
  check_body(j, c, rep);
  if (include_metrics) {
    j.key("metrics").raw_value(telemetry::Registry::global().to_json());
  }
  j.end();
  return j.str();
}

namespace {

/// The determinism contract (doc/PARALLELISM.md) covers everything except
/// timing: wall-clock fields go to zero and the perf block (which always
/// carries wall_ns) is dropped entirely.
void strip_timing(CheckReport& rep) {
  rep.seconds = 0.0;
  rep.stage_seconds = StageSeconds{};
  rep.stage_perf = StagePerf{};
}

}  // namespace

std::string canonical_json(const Circuit& c, CheckReport rep) {
  strip_timing(rep);
  return to_json(c, rep, /*include_metrics=*/false);
}

std::string canonical_json(const Circuit& c, SuiteReport rep) {
  rep.seconds = 0.0;
  rep.stage_seconds = StageSeconds{};
  rep.stage_perf = StagePerf{};
  for (auto& out : rep.per_output) strip_timing(out);
  return to_json(c, rep, /*include_metrics=*/false);
}

std::string to_json(const Circuit& c, const SuiteReport& rep,
                    bool include_metrics) {
  Json j;
  j.begin();
  j.key("circuit").value(c.name());
  j.key("delta").value(rep.delta);
  j.key("conclusion").value(to_string(rep.conclusion));
  j.key("stages").begin();
  j.key("before_gitd").value(to_string(rep.before_gitd));
  j.key("after_gitd").value(to_string(rep.after_gitd));
  j.key("after_stem").value(to_string(rep.after_stem));
  j.end();
  j.key("backtracks").value(rep.backtracks);
  j.key("seconds").value(rep.seconds);
  stage_seconds_body(j, rep.stage_seconds);
  stage_perf_body(j, rep.stage_perf);
  j.key("vector");
  if (rep.vector) {
    j.value(format_vector(*rep.vector));
  } else {
    j.null();
  }
  j.key("violating_output");
  if (rep.violating_output) {
    j.value(c.net(*rep.violating_output).name);
  } else {
    j.null();
  }
  j.key("outputs").begin_array();
  for (const auto& out : rep.per_output) {
    j.begin();
    check_body(j, c, out);
    j.end();
  }
  j.end_array();
  if (include_metrics) {
    j.key("metrics").raw_value(telemetry::Registry::global().to_json());
  }
  j.end();
  return j.str();
}

std::string to_json(const Circuit& c,
                    const Verifier::ExactDelayResult& res) {
  Json j;
  j.begin();
  j.key("circuit").value(c.name());
  j.key("topological_delay").value(res.topological);
  j.key("floating_delay").value(res.delay);
  j.key("exact").value(res.exact);
  j.key("probes").value(res.probes);
  j.key("total_backtracks").value(res.total_backtracks);
  j.key("witness");
  if (res.witness) {
    j.value(format_vector(*res.witness));
  } else {
    j.null();
  }
  j.key("metrics").raw_value(telemetry::Registry::global().to_json());
  j.end();
  return j.str();
}

std::string to_json(const Circuit& c, const PessimismReport& rep) {
  Json j;
  j.begin();
  j.key("circuit").value(c.name());
  j.key("worst_topological").value(rep.worst_topological);
  j.key("worst_floating").value(rep.worst_floating);
  j.key("outputs").begin_array();
  for (const auto& od : rep.outputs) {
    j.begin();
    j.key("output").value(c.net(od.output).name);
    j.key("topological").value(od.topological);
    j.key("floating").value(od.floating);
    j.key("exact").value(od.exact);
    j.key("backtracks").value(od.backtracks);
    j.end();
  }
  j.end_array();
  j.end();
  return j.str();
}

void render_timing_diagram(std::ostream& os, const Circuit& c,
                           const FloatingResult& sim,
                           const std::vector<NetId>& path, unsigned width) {
  if (path.empty()) return;
  Time horizon = Time(1);
  std::size_t name_w = 4;
  for (NetId n : path) {
    horizon = Time::max(horizon, sim.settle[n.index()]);
    name_w = std::max(name_w, c.net(n).name.size());
  }
  const double scale =
      horizon.is_finite() && horizon.value() > 0
          ? double(width) / double(horizon.value())
          : 1.0;
  auto col = [&](Time t) {
    if (!t.is_finite()) return t.is_neg_inf() ? 0u : width;
    const auto x = static_cast<long>(double(t.value()) * scale + 0.5);
    return static_cast<unsigned>(std::clamp<long>(x, 0, width));
  };

  os << std::string(name_w + 2, ' ') << "t=0" << std::string(width - 6, ' ')
     << horizon << "\n";
  for (NetId n : path) {
    const unsigned settle_col = col(sim.settle[n.index()]);
    os << c.net(n).name << std::string(name_w - c.net(n).name.size() + 1, ' ')
       << '|';
    // '?' until the settle point, then the final value.
    for (unsigned x = 0; x < width; ++x) {
      os << (x < settle_col ? '?' : (sim.value[n.index()] ? '1' : '0'));
    }
    os << "|  settles@" << sim.settle[n.index()] << "\n";
  }
}

std::string timing_diagram_string(const Circuit& c, const FloatingResult& sim,
                                  const std::vector<NetId>& path,
                                  unsigned width) {
  std::ostringstream os;
  render_timing_diagram(os, c, sim, path, width);
  return os.str();
}

}  // namespace waveck
