// Stem correlation (paper Section 5, pre-processing stage).
//
// For a reconvergent fanout stem Y that is a dynamic carrier, compute the
// fixpoint twice -- once with Y restricted to class 0, once to class 1 --
// and replace every domain D_X by the hull union of its two branch values.
// Waveforms incompatible with *both* classes of Y disappear without taking
// any decision. A branch that propagates to a contradiction proves the
// other class outright (a necessary assignment).
#pragma once

#include <cstddef>
#include <span>

#include "analysis/carriers.hpp"
#include "constraints/constraint_system.hpp"

namespace waveck {

struct StemCorrelationStats {
  std::size_t stems_processed = 0;
  std::size_t domains_narrowed = 0;
  std::size_t one_sided = 0;  // stems whose one class was refuted
  bool proved_no_violation = false;
};

class CarrierCache;

/// Runs stem correlation over `stems` (typically the circuit's reconvergent
/// fanout stems), skipping nets that are not dynamic carriers or are already
/// single-class. At most `max_stems` carrier stems (nearest the output
/// first) are split -- a cost cap for very large circuits. The system must
/// be at a fixpoint on entry and is left at a fixpoint. `cache` (may be
/// null) serves the carrier distances used for stem ordering.
StemCorrelationStats apply_stem_correlation(ConstraintSystem& cs,
                                            const TimingCheck& check,
                                            std::span<const NetId> stems,
                                            std::size_t max_stems = SIZE_MAX,
                                            CarrierCache* cache = nullptr);

}  // namespace waveck
