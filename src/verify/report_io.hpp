// Report rendering: machine-readable JSON and human-readable ASCII timing
// diagrams for verification results.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/floating_sim.hpp"
#include "verify/pessimism.hpp"
#include "verify/verifier.hpp"

namespace waveck {

/// JSON for a single-output check (stages, conclusion, vector, timing).
/// `include_metrics` controls the trailing process-wide registry snapshot
/// (global state, not a property of the check).
[[nodiscard]] std::string to_json(const Circuit& c, const CheckReport& rep,
                                  bool include_metrics = true);

/// JSON for a circuit-level check. `include_metrics` controls the trailing
/// process-wide registry snapshot; the scheduler determinism tests disable
/// it to compare serial and parallel suites byte-for-byte (the snapshot is
/// global state, not a property of the suite).
[[nodiscard]] std::string to_json(const Circuit& c, const SuiteReport& rep,
                                  bool include_metrics = true);

/// Canonical (byte-comparable) report JSON: the determinism-contract view
/// with every wall-clock field zeroed, the hardware-counter block dropped,
/// and no registry snapshot. Two runs of the same check on the same netlist
/// yield identical bytes across processes and thread counts; the serve
/// daemon embeds exactly this form and `waveck check --canon` prints it.
[[nodiscard]] std::string canonical_json(const Circuit& c, CheckReport rep);
[[nodiscard]] std::string canonical_json(const Circuit& c, SuiteReport rep);

/// JSON for the exact-delay search result.
[[nodiscard]] std::string to_json(const Circuit& c,
                                  const Verifier::ExactDelayResult& res);

/// JSON for the per-output pessimism report.
[[nodiscard]] std::string to_json(const Circuit& c,
                                  const PessimismReport& rep);

/// ASCII timing diagram of a simulated witness along a path: one row per
/// net, a time axis scaled to `width` columns, `?` marking the interval
/// where the net may still toggle and its final value after the settle
/// point. Rows appear input-first.
void render_timing_diagram(std::ostream& os, const Circuit& c,
                           const FloatingResult& sim,
                           const std::vector<NetId>& path,
                           unsigned width = 64);
[[nodiscard]] std::string timing_diagram_string(
    const Circuit& c, const FloatingResult& sim,
    const std::vector<NetId>& path, unsigned width = 64);

}  // namespace waveck
