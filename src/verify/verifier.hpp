// Top-level timing verifier (paper Figure 4 plus the Section 5 stages).
//
// For a timing check sigma = (xi, s, delta) the verifier runs, in order:
//   1. waveform-narrowing fixpoint (with static-learning implications),
//   2. the global-implication loop on dynamic timing dominators (G.I.T.D.),
//   3. stem correlation on reconvergent dynamic-carrier stems,
//   4. FAN-based case analysis,
// recording the paper's Table 1 stage columns (P/N after each stage), the
// backtrack count, the test vector if one exists, and wall-clock time.
//
// Suite checks (one check per primary output) share a fixed plan and merge
// discipline — plan_suite_checks() + SuiteMerger — used identically by the
// serial `check_circuit` and the parallel scheduler in src/sched, which is
// what makes parallel suite reports bit-identical to serial ones (see
// doc/PARALLELISM.md for the determinism contract).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/carriers.hpp"
#include "analysis/learning.hpp"
#include "analysis/scoap.hpp"
#include "prof/perf_counters.hpp"
#include "verify/case_analysis.hpp"

namespace waveck {

struct VerifyOptions {
  bool use_learning = true;
  /// Component delay correlation (reference [1]): narrow shared delay
  /// variables by relational interval arithmetic between the fixpoint
  /// stages. Only useful when DelaySpec::group ids are assigned; the check
  /// then runs on a private copy of the circuit (the narrowed intervals are
  /// check-specific).
  bool use_delay_correlation = false;
  bool use_dominators = true;        // stage 2 (G.I.T.D.)
  bool use_stem_correlation = true;  // stage 3
  std::size_t max_stems = SIZE_MAX;  // stage-3 cost cap for huge circuits
  bool use_case_analysis = true;     // stage 4
  /// Serve dynamic carriers / timing dominators from the incremental
  /// CarrierCache instead of recomputing per query. Pure optimisation:
  /// reports are identical either way (the `cache_equivalence` fuzz
  /// property enforces this); off switches every stage to the
  /// from-scratch functions.
  bool use_carrier_cache = true;
  /// Absolute monotonic deadline for each check (prof::monotonic_ns clock;
  /// 0 = none). Threaded into the fixpoint drain and the FAN decision loop;
  /// a check that outlives it concludes kAbandoned (never a wrong verdict —
  /// expiry only ever abandons). `waveck check --timeout-ms N` and the
  /// serve daemon's per-request deadlines both arrive here.
  std::uint64_t deadline_ns = 0;
  CaseAnalysisOptions case_analysis;
  LearningOptions learning;
};

enum class StageStatus : std::uint8_t {
  kNotRun,      // the paper's '-' (earlier stage already concluded)
  kPossible,    // 'P'
  kNoViolation  // 'N'
};

[[nodiscard]] constexpr const char* to_string(StageStatus s) {
  switch (s) {
    case StageStatus::kNotRun: return "-";
    case StageStatus::kPossible: return "P";
    case StageStatus::kNoViolation: return "N";
  }
  return "?";
}

enum class CheckConclusion : std::uint8_t {
  kNoViolation,  // proved: s cannot transition at/after delta
  kViolation,    // test vector found
  kAbandoned,    // case-analysis budget exceeded (or check cancelled)
  kPossible,     // narrowing says possible; case analysis disabled
};

[[nodiscard]] constexpr const char* to_string(CheckConclusion c) {
  switch (c) {
    case CheckConclusion::kNoViolation: return "N";
    case CheckConclusion::kViolation: return "V";
    case CheckConclusion::kAbandoned: return "A";
    case CheckConclusion::kPossible: return "P";
  }
  return "?";
}

/// Wall time spent in each pipeline stage of a check (Table 1's cost
/// breakdown). Mirrored process-wide in the telemetry registry under the
/// "stage.*" timers.
struct StageSeconds {
  double narrowing = 0.0;      // stage 1 fixpoint (incl. initial domains)
  double gitd = 0.0;           // stage 2 dominator-implication loop
  double stem = 0.0;           // stage 3 stem correlation
  double case_analysis = 0.0;  // stage 4 FAN search
};

/// Scaled hardware-counter totals per pipeline stage (perf observatory,
/// src/prof). Slots mirror StageSeconds — delay correlation folds into
/// narrowing. Empty (any() == false) when prof::counters_enabled() was off
/// for the check; hw_valid == false on the wall-clock-only degraded path.
struct StagePerf {
  prof::CounterTotals narrowing;
  prof::CounterTotals gitd;
  prof::CounterTotals stem;
  prof::CounterTotals case_analysis;

  void add(const StagePerf& o) {
    narrowing.add(o.narrowing);
    gitd.add(o.gitd);
    stem.add(o.stem);
    case_analysis.add(o.case_analysis);
  }
  [[nodiscard]] bool any() const {
    return narrowing.any() || gitd.any() || stem.any() ||
           case_analysis.any();
  }
  [[nodiscard]] prof::CounterTotals total() const {
    prof::CounterTotals t;
    t.add(narrowing);
    t.add(gitd);
    t.add(stem);
    t.add(case_analysis);
    return t;
  }
};

/// Per-check record. The event tallies (backtracks, decisions, gitd_rounds,
/// stems_processed, correlated_delay_narrowings) are snapshots of the
/// telemetry registry counters taken around the check, so they always agree
/// with the process-wide metrics and the JSONL trace stream. (Under the
/// parallel scheduler each worker snapshots its own thread registry, so
/// the tallies stay attributable per check.)
struct CheckReport {
  TimingCheck check{};
  StageStatus before_gitd = StageStatus::kNotRun;
  StageStatus after_gitd = StageStatus::kNotRun;
  StageStatus after_stem = StageStatus::kNotRun;
  CheckConclusion conclusion = CheckConclusion::kPossible;
  std::size_t backtracks = 0;
  std::size_t decisions = 0;
  std::size_t gitd_rounds = 0;
  std::size_t stems_processed = 0;
  std::size_t correlated_delay_narrowings = 0;
  std::optional<std::vector<bool>> vector;  // indexed like Circuit::inputs()
  double seconds = 0.0;
  StageSeconds stage_seconds;
  StagePerf stage_perf;
};

/// Aggregate over every primary output (the paper's Table 1 row semantics:
/// a stage shows N only when it eliminates the violation on all outputs).
struct SuiteReport {
  Time delta{};
  StageStatus before_gitd = StageStatus::kNotRun;
  StageStatus after_gitd = StageStatus::kNotRun;
  StageStatus after_stem = StageStatus::kNotRun;
  CheckConclusion conclusion = CheckConclusion::kPossible;
  std::size_t backtracks = 0;
  std::optional<std::vector<bool>> vector;
  std::optional<NetId> violating_output;
  std::vector<CheckReport> per_output;
  double seconds = 0.0;
  StageSeconds stage_seconds;  // summed over per_output
  StagePerf stage_perf;        // summed over per_output
};

/// The fixed per-suite check order and the outputs STA alone dismisses.
/// Outputs are visited worst-topological-arrival first (a violation, if
/// any, is likeliest on the slowest output); `trivial[i]` marks outputs
/// whose arrival is already below delta. Serial and parallel suite runs
/// share this plan, so "lowest-indexed output" means the same thing in
/// both.
struct SuitePlan {
  Time delta{};
  std::vector<NetId> order;
  std::vector<bool> trivial;  // parallel to `order`
};
[[nodiscard]] SuitePlan plan_suite_checks(const Circuit& c, Time delta);

/// The report a trivially-safe output gets (STA arrival < delta): N before
/// G.I.T.D., no stage work. The paper's tool reaches the same N before
/// G.I.T.D. (no static carriers).
[[nodiscard]] CheckReport sta_trivial_report(NetId s, Time delta);

/// Order-driven fold of per-output CheckReports into a SuiteReport. Both
/// the serial `check_circuit` loop and the parallel CheckScheduler merge
/// through this class, feeding reports strictly in SuitePlan order, so the
/// aggregate stage statuses, conclusion precedence (V > A > P > N),
/// backtrack and stage_seconds sums, and the early stop at the first
/// (lowest-indexed) violating output are identical in both modes.
class SuiteMerger {
 public:
  explicit SuiteMerger(Time delta);

  /// Folds the next report in plan order. Returns false once the suite is
  /// settled (a violation was absorbed): callers stop feeding — reports
  /// for later outputs are discarded, exactly like the serial early break.
  bool add(CheckReport rep);

  [[nodiscard]] SuiteReport finish(double seconds) &&;

 private:
  SuiteReport suite_;
};

class Verifier {
 public:
  explicit Verifier(const Circuit& c, VerifyOptions opt = {});

  /// Single-output timing check (the paper's verify(xi, s, delta)).
  ///
  /// Thread safety: after `prepare_shared()` has returned, concurrent
  /// calls from multiple threads are safe — every check builds its own
  /// ConstraintSystem and trail, and the shared analyses are read-only.
  [[nodiscard]] CheckReport check_output(NetId s, Time delta);

  /// Two-vector transition-mode check: inputs carry exactly the v1 -> v2
  /// transition at time 0 (non-toggling inputs are constant). Same engine;
  /// only the input abstract waveforms change (paper Section 1).
  [[nodiscard]] CheckReport check_transition(NetId s, Time delta,
                                             const std::vector<bool>& v1,
                                             const std::vector<bool>& v2);

  /// Checks delta against every primary output. Outputs whose topological
  /// arrival is below delta are trivially N and skipped. Serial; the
  /// parallel equivalent is sched::CheckScheduler::check_circuit.
  [[nodiscard]] SuiteReport check_circuit(Time delta);

  struct ExactDelayResult {
    Time delay = Time::neg_inf();        // exact floating-mode delay
    Time topological = Time::neg_inf();  // STA bound, for comparison
    std::optional<std::vector<bool>> witness;
    std::optional<NetId> witness_output;
    std::size_t probes = 0;
    std::size_t total_backtracks = 0;
    bool exact = true;  // false if some probe was abandoned
  };
  /// Exact floating-mode circuit delay by adaptive binary search on delta,
  /// using found vectors' simulated settle times to jump the lower bound.
  [[nodiscard]] ExactDelayResult exact_floating_delay();
  /// Same search with an injected suite probe: the scheduler passes its
  /// parallel check_circuit here, so serial and parallel searches share
  /// one probing loop (and, with a deterministic probe, one trajectory).
  [[nodiscard]] ExactDelayResult exact_floating_delay(
      const std::function<SuiteReport(Time)>& probe);

  /// Forces every lazily computed shared analysis now (on the calling
  /// thread), so later `check_output` calls only read them. The parallel
  /// scheduler calls this once before fanning out workers.
  void prepare_shared();

  /// Installs (or clears, with nullptr) the cooperative cancellation flag
  /// polled by the case-analysis search; a cancelled check concludes
  /// kAbandoned. Used by sched::CheckScheduler's witness-only mode. Do not
  /// flip while checks are running on other threads unless that is the
  /// point (the flag itself is an atomic).
  void set_cancel_flag(const std::atomic<bool>* flag);

  /// Re-arms (or, with 0, clears) the per-check deadline for subsequent
  /// checks — the serve daemon's per-request path on a resident verifier.
  /// Only call between checks, never while checks run on other threads.
  void set_deadline_ns(std::uint64_t expiry_mono_ns);

  [[nodiscard]] const Circuit& circuit() const { return c_; }
  [[nodiscard]] const VerifyOptions& options() const { return opt_; }

  /// Lazily computed shared analyses (exposed for benches/tests).
  [[nodiscard]] const LearningResult& learning();
  [[nodiscard]] const Scoap& scoap();
  [[nodiscard]] const std::vector<NetId>& reconvergent_stems();

 private:
  /// `mutable_c` is non-null (and aliases `c`) when delay correlation may
  /// write narrowed intervals back. `input_override`, when non-null, gives
  /// the initial domain of each primary input (indexed like
  /// Circuit::inputs()) instead of the floating-mode default.
  CheckReport run_check(const Circuit& c, Circuit* mutable_c, NetId s,
                        Time delta,
                        const std::vector<AbstractSignal>* input_override =
                            nullptr);
  /// Stage pipeline of `run_check`; the wrapper owns timing, trace events
  /// and the registry-counter snapshots that fill the report tallies.
  CheckReport run_check_stages(const Circuit& c, Circuit* mutable_c, NetId s,
                               Time delta,
                               const std::vector<AbstractSignal>*
                                   input_override);

  const Circuit& c_;
  VerifyOptions opt_;
  std::optional<LearningResult> learning_;
  std::optional<Scoap> scoap_;
  std::optional<std::vector<NetId>> stems_;
};

/// Formats a vector as a 0/1 string in Circuit::inputs() order.
[[nodiscard]] std::string format_vector(const std::vector<bool>& v);

}  // namespace waveck
