#include "verify/verifier.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "analysis/carrier_cache.hpp"
#include "analysis/delay_correlation.hpp"
#include "common/flight_recorder.hpp"
#include "common/telemetry.hpp"
#include "netlist/topo_delay.hpp"
#include "prof/heartbeat.hpp"
#include "sim/floating_sim.hpp"
#include "sim/transition_sim.hpp"
#include "verify/stem_correlation.hpp"

namespace waveck {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

StageStatus status_of(ConstraintSystem::Status s) {
  return s == ConstraintSystem::Status::kNoViolation
             ? StageStatus::kNoViolation
             : StageStatus::kPossible;
}

/// Flight-record code for a stage verdict rendered by to_string(StageStatus)
/// ("-" / "P" / "N"); the close_stage lambda only has the string.
std::uint8_t flight_stage_code(const char* status) {
  switch (status[0]) {
    case 'P': return flight::kStagePossible;
    case 'N': return flight::kStageNoViolation;
    default: return flight::kStageNotRun;
  }
}

std::int64_t flight_delta(Time delta) {
  if (delta.is_pos_inf()) return std::numeric_limits<std::int64_t>::max();
  if (delta.is_neg_inf()) return std::numeric_limits<std::int64_t>::min();
  return delta.value();
}

/// Worst-of for stage aggregation: P dominates N dominates NotRun.
StageStatus aggregate(StageStatus a, StageStatus b) {
  if (a == StageStatus::kPossible || b == StageStatus::kPossible) {
    return StageStatus::kPossible;
  }
  if (a == StageStatus::kNoViolation || b == StageStatus::kNoViolation) {
    return StageStatus::kNoViolation;
  }
  return StageStatus::kNotRun;
}

}  // namespace

Verifier::Verifier(const Circuit& c, VerifyOptions opt)
    : c_(c), opt_(opt) {}

void Verifier::prepare_shared() {
  (void)learning();  // the empty LearningResult when learning is disabled
  if (opt_.use_stem_correlation) (void)reconvergent_stems();
  if (opt_.use_case_analysis && opt_.case_analysis.use_scoap) (void)scoap();
}

void Verifier::set_cancel_flag(const std::atomic<bool>* flag) {
  opt_.case_analysis.cancel = flag;
}

void Verifier::set_deadline_ns(std::uint64_t expiry_mono_ns) {
  opt_.deadline_ns = expiry_mono_ns;
}

const LearningResult& Verifier::learning() {
  if (!learning_) {
    learning_ = opt_.use_learning ? learn_implications(c_, opt_.learning)
                                  : LearningResult{};
  }
  return *learning_;
}

const Scoap& Verifier::scoap() {
  if (!scoap_) scoap_ = compute_scoap(c_);
  return *scoap_;
}

const std::vector<NetId>& Verifier::reconvergent_stems() {
  if (!stems_) {
    std::vector<NetId> stems;
    for (NetId n : c_.fanout_stems()) {
      if (c_.is_reconvergent_stem(n)) stems.push_back(n);
    }
    stems_ = std::move(stems);
  }
  return *stems_;
}

CheckReport Verifier::check_output(NetId s, Time delta) {
  if (!opt_.use_delay_correlation) {
    return run_check(c_, nullptr, s, delta);
  }
  // Correlation narrows delay intervals per check: work on a private copy.
  Circuit copy = c_;
  return run_check(copy, &copy, s, delta);
}

CheckReport Verifier::check_transition(NetId s, Time delta,
                                       const std::vector<bool>& v1,
                                       const std::vector<bool>& v2) {
  std::vector<AbstractSignal> inputs;
  inputs.reserve(v1.size());
  for (std::size_t i = 0; i < v1.size(); ++i) {
    inputs.push_back(transition_input_signal(v1[i], v2[i]));
  }
  CheckReport rep;
  if (!opt_.use_delay_correlation) {
    rep = run_check(c_, nullptr, s, delta, &inputs);
  } else {
    Circuit copy = c_;
    rep = run_check(copy, &copy, s, delta, &inputs);
  }
  // The case-analysis validator uses the floating-mode simulator, which is
  // an over-approximation here (it assumes unknown pre-history even on
  // non-toggling inputs): confirm any violation against the exact
  // two-vector simulation.
  if (rep.conclusion == CheckConclusion::kViolation) {
    const auto sim = simulate_transition(c_, v1, v2);
    if (sim.settle[s.index()] < delta) {
      rep.conclusion = CheckConclusion::kNoViolation;
      rep.vector.reset();
    } else {
      rep.vector = v2;
    }
  }
  return rep;
}

CheckReport Verifier::run_check(const Circuit& c, Circuit* mutable_c,
                                NetId s, Time delta,
                                const std::vector<AbstractSignal>* input_override) {
  // The tallies of the report are registry snapshots: the stages below bump
  // the process-wide counters and this wrapper reads back the deltas, so
  // CheckReport, the metrics snapshot and the trace stream always agree.
  auto& reg = telemetry::Registry::current();
  auto& ctr_backtracks = reg.counter("search.backtracks");
  auto& ctr_decisions = reg.counter("search.decisions");
  auto& ctr_gitd_rounds = reg.counter("gitd.rounds");
  auto& ctr_stems = reg.counter("stem.stems_processed");
  auto& ctr_corr = reg.counter("delay_corr.gates_narrowed");
  const std::uint64_t backtracks0 = ctr_backtracks.value();
  const std::uint64_t decisions0 = ctr_decisions.value();
  const std::uint64_t gitd0 = ctr_gitd_rounds.value();
  const std::uint64_t stems0 = ctr_stems.value();
  const std::uint64_t corr0 = ctr_corr.value();

  reg.counter("verify.checks").inc();
  // Check-level span: every event emitted until the matching check_end
  // (stages, decisions, propagations — including from code that knows
  // nothing about checks) is stamped with this check's id.
  std::optional<telemetry::ScopedCheckSpan> span;
  if (telemetry::trace_enabled() || flight::enabled()) {
    span.emplace();  // the flight recorder attributes by chk id too
    if (telemetry::trace_enabled()) {
      telemetry::emit("check_begin", {{"output", c.net(s).name},
                                      {"delta", delta.value()}});
    }
    if (flight::enabled()) {
      flight::record(flight::Kind::kCheckBegin, c.net(s).name,
                     flight_delta(delta));
    }
  }
  // Profiler mark (thread-local, one relaxed store) and heartbeat board
  // slot: both borrow the net's name, which outlives the check.
  telemetry::set_check_mark(c.net(s).name.c_str());
  if (prof::heartbeat_enabled()) {
    prof::ActivityBoard::begin_check(c.net(s).name.c_str(),
                                     span ? span->id() : -1);
  }

  const telemetry::StopWatch watch;
  CheckReport rep = run_check_stages(c, mutable_c, s, delta, input_override);
  rep.seconds = watch.seconds();
  telemetry::set_stage_mark(nullptr);
  telemetry::set_check_mark(nullptr);
  if (prof::heartbeat_enabled()) prof::ActivityBoard::end_check();
  rep.backtracks = ctr_backtracks.value() - backtracks0;
  rep.decisions = ctr_decisions.value() - decisions0;
  rep.gitd_rounds = ctr_gitd_rounds.value() - gitd0;
  rep.stems_processed = ctr_stems.value() - stems0;
  rep.correlated_delay_narrowings = ctr_corr.value() - corr0;

  reg.counter(std::string("verify.conclusion.") +
              to_string(rep.conclusion)).inc();
  if (telemetry::trace_enabled()) {
    if (rep.vector) {
      // The witness rides along so offline consumers (the DOT exporter's
      // critical-path highlight) need no re-search.
      const std::string vec = format_vector(*rep.vector);
      telemetry::emit("check_end",
                      {{"output", c.net(s).name},
                       {"conclusion", to_string(rep.conclusion)},
                       {"seconds", rep.seconds},
                       {"vector", vec}});
    } else {
      telemetry::emit("check_end",
                      {{"output", c.net(s).name},
                       {"conclusion", to_string(rep.conclusion)},
                       {"seconds", rep.seconds}});
    }
  }
  if (flight::enabled()) {
    // The conclusion codes in flight_recorder.hpp mirror CheckConclusion's
    // declaration order, so the enum value doubles as the record code.
    flight::record(flight::Kind::kCheckEnd, c.net(s).name,
                   static_cast<std::int64_t>(rep.seconds * 1e9), 0,
                   static_cast<std::uint8_t>(rep.conclusion));
  }
  // Post-mortem trigger: a check abandoned because its deadline passed is
  // exactly the "why was this slow?" moment the blackbox exists for. The
  // per-reason cooldown in dump_blackbox keeps a refutation band that blows
  // its budget on every output from writing hundreds of dumps.
  if (rep.conclusion == CheckConclusion::kAbandoned && opt_.deadline_ns != 0 &&
      prof::monotonic_ns() >= opt_.deadline_ns && flight::blackbox_enabled()) {
    flight::dump_blackbox("deadline_expired");
  }
  return rep;
}

CheckReport Verifier::run_check_stages(
    const Circuit& c, Circuit* mutable_c, NetId s, Time delta,
    const std::vector<AbstractSignal>* input_override) {
  auto& reg = telemetry::Registry::current();
  CheckReport rep;
  rep.check = TimingCheck{s, delta};

  telemetry::StopWatch stage_watch;
  // Stage spans: `stage_begin`/`stage_end` bracket each pipeline stage in
  // the trace (stage_end carries the stage's verdict), nested inside the
  // enclosing check span. The offline analyzer rebuilds its waterfalls
  // from these; the registry stage timers stay the metrics source.
  //
  // With prof::counters_enabled() each stage also gets a hardware-counter
  // window (group read at open, delta at close), accumulated twice: into
  // the CheckReport's StagePerf slot and into the thread's registry under
  // "perf.stage.<name>.*" — keeping both views additive means the global
  // registry always equals the sum over per-check reports, regardless of
  // how checks were spread across workers.
  const bool perf_on = prof::counters_enabled();
  prof::CounterSample perf_mark;
  const auto open_stage = [&](const char* stage) {
    telemetry::set_stage_mark(stage);
    if (prof::heartbeat_enabled()) prof::ActivityBoard::set_stage(stage);
    if (perf_on) perf_mark = prof::thread_counter_group().read();
    if (telemetry::trace_enabled()) {
      telemetry::emit("stage_begin", {{"stage", stage}});
    }
    if (flight::enabled()) {
      flight::record(flight::Kind::kStageBegin, stage);
    }
  };
  const auto close_stage = [&](const char* timer, const char* stage,
                               const char* status, double& slot,
                               prof::CounterTotals* perf_slot) {
    const std::uint64_t ns = stage_watch.ns();
    reg.timer(timer).add_ns(ns);
    slot += static_cast<double>(ns) * 1e-9;
    stage_watch = telemetry::StopWatch();
    if (perf_on && perf_slot != nullptr) {
      const prof::CounterDelta d = prof::delta_between(
          perf_mark, prof::thread_counter_group().read());
      perf_slot->add(d);
      prof::add_to_registry(reg, timer, d);
    }
    telemetry::set_stage_mark(nullptr);
    if (telemetry::trace_enabled()) {
      telemetry::emit("stage_end", {{"stage", stage}, {"status", status}});
    }
    if (flight::enabled()) {
      flight::record(flight::Kind::kStageEnd, stage, 0, 0,
                     flight_stage_code(status));
    }
  };

  ConstraintSystem cs(c);
  cs.set_deadline_ns(opt_.deadline_ns);
  // True once the check's deadline has passed: either the fixpoint drain
  // latched it mid-drain, or the wall clock moved past it between stages.
  // Every stage boundary below funnels through this — an expired check
  // concludes kAbandoned with whatever stage statuses it honestly earned.
  const auto deadline_expired = [&] {
    if (opt_.deadline_ns == 0) return false;
    return cs.deadline_hit() || prof::monotonic_ns() >= opt_.deadline_ns;
  };
  if (opt_.use_learning) {
    open_stage("learning");
    const LearningResult& lr = learning();  // lazily computed once
    reg.timer("stage.learning").add_ns(stage_watch.ns());
    stage_watch = telemetry::StopWatch();
    if (telemetry::trace_enabled()) {
      telemetry::emit("stage_end", {{"stage", "learning"}, {"status", "-"}});
    }
    if (flight::enabled()) {
      flight::record(flight::Kind::kStageEnd, "learning", 0, 0,
                     flight::kStageNotRun);
    }
    cs.set_implications(&lr.table);
  }
  open_stage("narrowing");

  // Initial domains (Section 3.3): floating-mode inputs, the delta
  // restriction on s, everything else top; then the globally-impossible
  // classes found by learning.
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    cs.restrict_domain(c.inputs()[i],
                       input_override != nullptr
                           ? (*input_override)[i]
                           : AbstractSignal::floating_input());
  }
  cs.restrict_domain(s, AbstractSignal::violating(delta));
  if (opt_.use_learning) {
    for (const auto& [net, cls] : learning().impossible) {
      cs.restrict_domain(net, AbstractSignal::class_only(!cls));
    }
  }
  cs.schedule_all();

  // Stage 1: plain narrowing fixpoint.
  rep.before_gitd = status_of(cs.reach_fixpoint());
  close_stage("stage.narrowing", "narrowing", to_string(rep.before_gitd),
              rep.stage_seconds.narrowing, &rep.stage_perf.narrowing);
  if (rep.before_gitd == StageStatus::kNoViolation) {
    rep.conclusion = CheckConclusion::kNoViolation;
    return rep;
  }
  if (deadline_expired()) {
    rep.conclusion = CheckConclusion::kAbandoned;
    return rep;
  }

  // Stage 1.5 (extension, reference [1]): correlated delay narrowing.
  if (mutable_c != nullptr) {
    open_stage("delay_correlation");
    const auto stats = apply_delay_correlation(cs, *mutable_c);
    close_stage("stage.delay_correlation", "delay_correlation",
                stats.proved_no_violation ? "N" : "P",
                rep.stage_seconds.narrowing, &rep.stage_perf.narrowing);
    if (stats.proved_no_violation) {
      rep.before_gitd = StageStatus::kNoViolation;
      rep.conclusion = CheckConclusion::kNoViolation;
      return rep;
    }
  }

  // Incremental carrier/dominator cache for stages 2-4. Constructed after
  // delay correlation: that stage narrows *gate delays*, which the
  // constraint system's change log does not track, so the cache must not
  // observe a pre-correlation circuit. Construction is cheap; the first
  // query pays the one full build.
  std::optional<CarrierCache> cache_storage;
  CarrierCache* cache = nullptr;
  if (opt_.use_carrier_cache) {
    cache = &cache_storage.emplace(cs, TimingCheck{s, delta});
  }

  // Stage 2: global implications on dynamic timing dominators (Figure 4).
  if (opt_.use_dominators) {
    open_stage("gitd");
    auto& ctr_rounds = reg.counter("gitd.rounds");
    rep.after_gitd = StageStatus::kPossible;
    for (;;) {
      if (deadline_expired()) break;
      ctr_rounds.inc();
      const std::size_t narrowed =
          apply_dominator_implications(cs, rep.check, cache);
      if (telemetry::trace_enabled()) {
        telemetry::emit("gitd_round", {{"narrowed", narrowed}});
      }
      if (flight::enabled()) {
        flight::record(flight::Kind::kGitdRound, {},
                       static_cast<std::int64_t>(narrowed));
      }
      if (narrowed == 0) break;
      if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) {
        rep.after_gitd = StageStatus::kNoViolation;
        break;
      }
    }
    close_stage("stage.gitd", "gitd", to_string(rep.after_gitd),
                rep.stage_seconds.gitd, &rep.stage_perf.gitd);
    if (rep.after_gitd == StageStatus::kNoViolation) {
      rep.conclusion = CheckConclusion::kNoViolation;
      return rep;
    }
    if (deadline_expired()) {
      rep.conclusion = CheckConclusion::kAbandoned;
      return rep;
    }
  }

  // Stage 3: stem correlation.
  if (opt_.use_stem_correlation) {
    open_stage("stem");
    const auto stats = apply_stem_correlation(
        cs, rep.check, reconvergent_stems(), opt_.max_stems, cache);
    const bool closed =
        stats.proved_no_violation ||
        (opt_.use_dominators &&
         [&] {  // re-run the dominator loop on the correlated domains
           for (;;) {
             if (deadline_expired()) return false;
             if (apply_dominator_implications(cs, rep.check, cache) == 0)
               return false;
             if (cs.reach_fixpoint() ==
                 ConstraintSystem::Status::kNoViolation)
               return true;
           }
         }());
    close_stage("stage.stem", "stem", closed ? "N" : "P",
                rep.stage_seconds.stem, &rep.stage_perf.stem);
    if (closed) {
      rep.after_stem = StageStatus::kNoViolation;
      rep.conclusion = CheckConclusion::kNoViolation;
      return rep;
    }
    rep.after_stem = StageStatus::kPossible;
    if (deadline_expired()) {
      rep.conclusion = CheckConclusion::kAbandoned;
      return rep;
    }
  }

  // Stage 4: case analysis.
  if (!opt_.use_case_analysis) {
    rep.conclusion = CheckConclusion::kPossible;
    return rep;
  }
  const Scoap* sc =
      opt_.case_analysis.use_scoap ? &scoap() : nullptr;
  open_stage("case_analysis");
  CaseAnalysisOptions ca_opt = opt_.case_analysis;
  ca_opt.deadline_ns = opt_.deadline_ns;
  const auto outcome = run_case_analysis(cs, rep.check, sc, ca_opt, cache);
  switch (outcome.result) {
    case CaseResult::kViolation:
      rep.conclusion = CheckConclusion::kViolation;
      rep.vector = outcome.vector;
      break;
    case CaseResult::kNoViolation:
      rep.conclusion = CheckConclusion::kNoViolation;
      break;
    case CaseResult::kAbandoned:
      rep.conclusion = CheckConclusion::kAbandoned;
      break;
  }
  close_stage("stage.case_analysis", "case_analysis",
              to_string(rep.conclusion), rep.stage_seconds.case_analysis,
              &rep.stage_perf.case_analysis);
  return rep;
}

SuitePlan plan_suite_checks(const Circuit& c, Time delta) {
  SuitePlan plan;
  plan.delta = delta;
  // Check outputs worst-arrival first: a violation, if any, is likeliest on
  // the topologically-slowest output.
  const auto top = topo_arrival(c);
  plan.order = c.outputs();
  std::sort(plan.order.begin(), plan.order.end(), [&](NetId a, NetId b) {
    return top[a.index()] > top[b.index()];
  });
  plan.trivial.reserve(plan.order.size());
  for (NetId s : plan.order) {
    plan.trivial.push_back(top[s.index()] < delta);
  }
  return plan;
}

CheckReport sta_trivial_report(NetId s, Time delta) {
  CheckReport rep;
  rep.check = TimingCheck{s, delta};
  rep.before_gitd = StageStatus::kNoViolation;
  rep.conclusion = CheckConclusion::kNoViolation;
  return rep;
}

SuiteMerger::SuiteMerger(Time delta) {
  suite_.delta = delta;
  suite_.conclusion = CheckConclusion::kNoViolation;
}

bool SuiteMerger::add(CheckReport rep) {
  suite_.before_gitd = aggregate(suite_.before_gitd, rep.before_gitd);
  suite_.after_gitd = aggregate(suite_.after_gitd, rep.after_gitd);
  suite_.after_stem = aggregate(suite_.after_stem, rep.after_stem);
  suite_.backtracks += rep.backtracks;
  suite_.stage_seconds.narrowing += rep.stage_seconds.narrowing;
  suite_.stage_seconds.gitd += rep.stage_seconds.gitd;
  suite_.stage_seconds.stem += rep.stage_seconds.stem;
  suite_.stage_seconds.case_analysis += rep.stage_seconds.case_analysis;
  suite_.stage_perf.add(rep.stage_perf);

  if (rep.conclusion == CheckConclusion::kViolation) {
    // One witness settles the circuit-level question; later outputs are
    // not part of the suite (serial never visits them).
    suite_.conclusion = CheckConclusion::kViolation;
    suite_.vector = rep.vector;
    suite_.violating_output = rep.check.output;
    suite_.per_output.push_back(std::move(rep));
    return false;
  }
  if (rep.conclusion == CheckConclusion::kAbandoned) {
    suite_.conclusion = CheckConclusion::kAbandoned;
  } else if (rep.conclusion == CheckConclusion::kPossible &&
             suite_.conclusion == CheckConclusion::kNoViolation) {
    suite_.conclusion = CheckConclusion::kPossible;
  }
  suite_.per_output.push_back(std::move(rep));
  return true;
}

SuiteReport SuiteMerger::finish(double seconds) && {
  suite_.seconds = seconds;
  return std::move(suite_);
}

SuiteReport Verifier::check_circuit(Time delta) {
  const auto t0 = Clock::now();
  const SuitePlan plan = plan_suite_checks(c_, delta);
  SuiteMerger merger(delta);
  for (std::size_t i = 0; i < plan.order.size(); ++i) {
    CheckReport rep = plan.trivial[i]
                          ? sta_trivial_report(plan.order[i], delta)
                          : check_output(plan.order[i], delta);
    if (!merger.add(std::move(rep))) break;
  }
  return std::move(merger).finish(seconds_since(t0));
}

Verifier::ExactDelayResult Verifier::exact_floating_delay() {
  return exact_floating_delay(
      [this](Time delta) { return check_circuit(delta); });
}

Verifier::ExactDelayResult Verifier::exact_floating_delay(
    const std::function<SuiteReport(Time)>& probe) {
  ExactDelayResult res;
  res.topological = topological_delay(c_);
  if (res.topological == Time::neg_inf()) return res;

  // Invariant: violation exists at every delta <= lo (witnessed), none at
  // delta > hi.
  std::int64_t lo = 0;
  std::int64_t hi = res.topological.value();
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    ++res.probes;
    SuiteReport r = probe(Time(mid));
    res.total_backtracks += r.backtracks;
    if (r.conclusion == CheckConclusion::kViolation) {
      // Jump: the witness's true settle time is a valid lower bound.
      const auto sim = simulate_floating(c_, *r.vector);
      Time settle = Time::neg_inf();
      for (NetId o : c_.outputs()) {
        settle = Time::max(settle, sim.settle[o.index()]);
      }
      lo = std::max(mid, settle.value());
      res.witness = r.vector;
      res.witness_output = r.violating_output;
    } else if (r.conclusion == CheckConclusion::kNoViolation) {
      hi = mid - 1;
    } else {
      // Abandoned/possible: cannot decide exactly; keep the sound bounds.
      res.exact = false;
      hi = mid - 1;  // treat as "not proven": report the largest witnessed
    }
  }
  res.delay = Time(lo);
  if (lo == 0 && !res.witness) {
    // Re-derive the trivial witness at delta = 0 for completeness.
    SuiteReport r = probe(Time(0));
    if (r.conclusion == CheckConclusion::kViolation) {
      res.witness = r.vector;
      res.witness_output = r.violating_output;
    }
  }
  return res;
}

std::string format_vector(const std::vector<bool>& v) {
  std::string s;
  s.reserve(v.size());
  for (bool b : v) s += b ? '1' : '0';
  return s;
}

}  // namespace waveck
