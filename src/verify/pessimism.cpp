#include "verify/pessimism.hpp"

#include <algorithm>

#include "netlist/topo_delay.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {

OutputDelay exact_output_delay(Verifier& v, NetId s) {
  const Circuit& c = v.circuit();
  OutputDelay res;
  res.output = s;
  res.topological = topo_arrival(c)[s.index()];
  if (res.topological == Time::neg_inf()) return res;

  std::int64_t lo = 0;
  std::int64_t hi = res.topological.value();
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    CheckReport rep = v.check_output(s, Time(mid));
    res.backtracks += rep.backtracks;
    if (rep.conclusion == CheckConclusion::kViolation) {
      const auto sim = simulate_floating(c, *rep.vector);
      lo = std::max(mid, sim.settle[s.index()].value());
    } else if (rep.conclusion == CheckConclusion::kNoViolation) {
      hi = mid - 1;
    } else {
      res.exact = false;
      hi = mid - 1;
    }
  }
  res.floating = Time(lo);
  return res;
}

PessimismReport pessimism_report(Verifier& v) {
  PessimismReport rep;
  for (NetId o : v.circuit().outputs()) {
    rep.outputs.push_back(exact_output_delay(v, o));
    rep.worst_topological =
        Time::max(rep.worst_topological, rep.outputs.back().topological);
    rep.worst_floating =
        Time::max(rep.worst_floating, rep.outputs.back().floating);
  }
  std::sort(rep.outputs.begin(), rep.outputs.end(),
            [](const OutputDelay& a, const OutputDelay& b) {
              const auto gap = [](const OutputDelay& d) {
                return d.topological.is_finite() && d.floating.is_finite()
                           ? d.topological.value() - d.floating.value()
                           : 0;
              };
              return gap(a) > gap(b);
            });
  return rep;
}

}  // namespace waveck
