#include "verify/case_analysis.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "analysis/carrier_cache.hpp"
#include "analysis/head_lines.hpp"
#include "common/flight_recorder.hpp"
#include "common/telemetry.hpp"
#include "prof/heartbeat.hpp"
#include "prof/perf_counters.hpp"
#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

bool decided(const ConstraintSystem& cs, NetId n) {
  return cs.domain(n).single_class() || cs.domain(n).is_bottom();
}

/// Objective weights (n0, n1): delay of a path to s potentially enabled by
/// steering the net to 0 / 1.
struct Weights {
  Time n0 = Time::neg_inf();
  Time n1 = Time::neg_inf();

  void add(bool v, Time n, bool sum_mode) {
    Time& slot = v ? n1 : n0;
    if (sum_mode && slot != Time::neg_inf() && n != Time::neg_inf()) {
      slot = Time(slot.value() + n.value());
    } else {
      slot = Time::max(slot, n);
    }
  }
  [[nodiscard]] Time best() const { return Time::max(n0, n1); }
};

class FanGuide {
 public:
  FanGuide(const ConstraintSystem& cs, const TimingCheck& check,
           const Scoap* scoap, const CaseAnalysisOptions& opt,
           CarrierCache* cache)
      : c_(cs.circuit()),
        check_(check),
        scoap_(scoap),
        opt_(opt),
        cache_(cache),
        heads_(compute_head_lines(cs.circuit())) {
    // Net processing level for the objective backtrace: topo index of the
    // driver (+1); PIs are 0. Fixed for the circuit, so computed once.
    net_level_.assign(c_.num_nets(), 0);
    {
      std::uint32_t idx = 1;
      for (GateId g : c_.topo_order()) {
        net_level_[c_.gate(g).out.index()] = idx;
        max_level_ = idx;
        ++idx;
      }
    }
    buckets_.resize(max_level_ + 1);
    queued_.assign(c_.num_nets(), 0);
    if (opt_.three_phase) build_phase1_regions(cs);
  }

  /// Next decision (net, class), or nullopt when only primary-input
  /// completion remains impossible (every net decided).
  [[nodiscard]] std::optional<std::pair<NetId, bool>> pick(
      const ConstraintSystem& cs) {
    CarrierSet local;
    const CarrierSet* carriers;
    if (cache_ != nullptr) {
      carriers = &cache_->carriers();
    } else {
      local = dynamic_carriers(cs, check_);
      carriers = &local;
    }
    const auto& cands = objective_candidates(cs, *carriers);

    // Phase 1: between consecutive dynamic dominators, in order.
    for (const auto& member : phase1_region_member_) {
      if (auto d = best_in(cs, cands, &member)) return d;
    }
    // Phase 2: whole carrier neighbourhood.
    if (auto d = best_in(cs, cands, nullptr)) return d;
    // Phase 3: the output, then primary inputs via complete backtrace from
    // unjustified gates.
    if (!decided(cs, check_.output)) {
      return std::make_pair(check_.output, preferred_class(cs, check_.output));
    }
    if (auto d = justify_pick(cs)) return d;
    for (NetId in : c_.inputs()) {
      if (!decided(cs, in)) {
        return std::make_pair(in, preferred_class(cs, in));
      }
    }
    return std::nullopt;
  }

 private:
  // --- phase-1 regions -------------------------------------------------------
  void build_phase1_regions(const ConstraintSystem& cs) {
    std::vector<NetId> doms;
    if (cache_ != nullptr) {
      doms = cache_->dominators();
    } else {
      const CarrierSet carriers = dynamic_carriers(cs, check_);
      doms = timing_dominators(c_, check_, carriers);
    }
    for (std::size_t i = 0; i < doms.size(); ++i) {
      const NetId stop =
          i + 1 < doms.size() ? doms[i + 1] : NetId{};  // invalid on last
      phase1_region_member_.push_back(cone_of(doms[i], stop));
    }
  }

  /// Fan-in cone of `root` (exclusive of `stop`) as a per-net membership
  /// flag vector -- the representation `best_in` filters against.
  [[nodiscard]] std::vector<std::uint8_t> cone_of(NetId root,
                                                  NetId stop) const {
    std::vector<std::uint8_t> member(c_.num_nets(), 0);
    std::vector<NetId> stack{root};
    member[root.index()] = 1;
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      const GateId drv = c_.net(n).driver;
      if (!drv.valid()) continue;
      for (NetId in : c_.gate(drv).ins) {
        if (member[in.index()] != 0) continue;
        if (stop.valid() && in == stop) continue;  // exclude d_{i+1}
        member[in.index()] = 1;
        stack.push_back(in);
      }
    }
    return member;
  }

  // --- objective backtrace ----------------------------------------------------
  struct Candidate {
    NetId net;
    Weights w;
  };

  [[nodiscard]] const std::vector<Candidate>& objective_candidates(
      const ConstraintSystem& cs, const CarrierSet& carriers) {
    // NOTE: the map is deliberately function-local. Its iteration order
    // seeds the bucket insertion order below, which in turn fixes the
    // candidate order and hence tie-breaks between equal-weight decisions;
    // a reused map would keep its grown bucket count across picks and
    // enumerate in a different (still deterministic, but history-dependent)
    // order, changing search traces. A fresh map built by the identical
    // insertion sequence always enumerates identically.
    std::unordered_map<NetId, Weights> weights;
    // Initial objectives: sensitize Psi. For each gate driving a carrier,
    // steer its non-carrier inputs to the gate's non-controlling value; the
    // enabled path length is the carrier path through the gate.
    for (GateId gid : c_.topo_order()) {
      const Gate& g = c_.gate(gid);
      if (!carriers.is_carrier(g.out)) continue;
      const Time dist = carriers.distance[g.out.index()];
      const Time enabled = dist + g.delay.dmax;
      if (!has_controlling_value(g.type)) continue;
      const bool want = !controlling_value(g.type);
      for (NetId in : g.ins) {
        if (carriers.is_carrier(in) || decided(cs, in)) continue;
        weights[in].add(want, enabled, opt_.sum_at_fanout);
      }
    }
    cands_.clear();
    if (weights.empty()) return cands_;

    // Descending-level sweep: stems and primary inputs terminate the
    // backtrace and become candidates; other nets forward their objective
    // through their driving gate. Buckets and queued flags are reused
    // arenas: emits target strictly lower levels, so each bucket is fully
    // settled (and can be reset) once its level has been processed.
    auto enqueue = [&](NetId n) {
      if (queued_[n.index()] == 0) {
        queued_[n.index()] = 1;
        buckets_[net_level_[n.index()]].push_back(n);
      }
    };
    for (const auto& [n, w] : weights) enqueue(n);

    for (std::size_t lv = max_level_ + 1; lv-- > 0;) {
      std::vector<NetId>& bucket = buckets_[lv];
      for (std::size_t bi = 0; bi < bucket.size(); ++bi) {
        const NetId n = bucket[bi];
        const Weights w = weights[n];
        const bool is_stem = c_.net(n).fanouts.size() >= 2;
        const bool is_pi = !c_.net(n).driver.valid();
        // FAN stops multiple backtrace at stems, head lines and inputs: a
        // value wanted on a head line is always justifiable later (its
        // cone is fanout-free).
        if (!decided(cs, n) && (is_stem || is_pi || heads_.is_head(n))) {
          cands_.push_back({n, w});
          continue;
        }
        if (is_pi) continue;
        backtrace_through(cs, n, w, [&](NetId in, bool want, Time nw) {
          weights[in].add(want, nw, opt_.sum_at_fanout);
          enqueue(in);
        });
      }
      for (NetId n : bucket) queued_[n.index()] = 0;
      bucket.clear();
    }
    return cands_;
  }

  template <class Emit>
  void backtrace_through(const ConstraintSystem& cs, NetId n, const Weights& w,
                         Emit emit) const {
    const Gate& g = c_.gate(c_.net(n).driver);
    const Time up0 = w.n0 == Time::neg_inf() ? w.n0 : w.n0 + g.delay.dmax;
    const Time up1 = w.n1 == Time::neg_inf() ? w.n1 : w.n1 + g.delay.dmax;
    auto forward = [&](NetId in, bool want, bool from1) {
      const Time nw = from1 ? up1 : up0;
      if (nw == Time::neg_inf()) return;
      if (decided(cs, in)) return;
      emit(in, want, nw);
    };
    switch (g.type) {
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool cv = controlling_value(g.type);
        const bool inv = inversion(g.type);
        const bool ctrl_out = cv != inv;  // output value when controlled
        // Wanting the controlled value: one input to cv (cheapest);
        // wanting the non-controlled value: every input to !cv.
        for (int ov = 0; ov <= 1; ++ov) {
          const bool out_v = ov != 0;
          const Time nw = out_v ? up1 : up0;
          if (nw == Time::neg_inf()) continue;
          if (out_v == ctrl_out) {
            if (const auto in = cheapest_input(cs, g, cv)) {
              if (!decided(cs, *in)) emit(*in, cv, nw);
            }
          } else {
            for (NetId in : g.ins) {
              if (!decided(cs, in)) emit(in, !cv, nw);
            }
          }
        }
        break;
      }
      case GateType::kNot:
        forward(g.ins[0], true, false);   // out 0 <- in 1
        forward(g.ins[0], false, true);   // out 1 <- in 0
        break;
      case GateType::kBuf:
      case GateType::kDelay:
        forward(g.ins[0], false, false);
        forward(g.ins[0], true, true);
        break;
      case GateType::kXor:
      case GateType::kXnor:
        // Either value of either input can participate in the wanted
        // parity; spread the strongest objective to both classes.
        for (NetId in : g.ins) {
          const Time nw = Time::max(up0, up1);
          if (nw == Time::neg_inf()) break;
          if (decided(cs, in)) continue;
          emit(in, false, nw);
          emit(in, true, nw);
        }
        break;
      case GateType::kMux:
        for (int sv = 0; sv <= 1; ++sv) {
          forward(g.ins[0], sv != 0, sv != 0);
        }
        for (std::size_t di = 1; di <= 2; ++di) {
          forward(g.ins[di], false, false);
          forward(g.ins[di], true, true);
        }
        break;
    }
  }

  [[nodiscard]] std::optional<NetId> cheapest_input(const ConstraintSystem& cs,
                                                    const Gate& g,
                                                    bool want) const {
    std::optional<NetId> best;
    std::uint64_t best_cost = UINT64_MAX;
    for (NetId in : g.ins) {
      if (decided(cs, in)) continue;
      const std::uint64_t cost =
          scoap_ != nullptr && opt_.use_scoap ? scoap_->cc(want, in) : 1;
      if (cost < best_cost) {
        best_cost = cost;
        best = in;
      }
    }
    return best;
  }

  [[nodiscard]] std::optional<std::pair<NetId, bool>> best_in(
      const ConstraintSystem& cs, const std::vector<Candidate>& cands,
      const std::vector<std::uint8_t>* region) const {
    const Candidate* best = nullptr;
    for (const auto& cand : cands) {
      if (decided(cs, cand.net)) continue;
      if (region != nullptr && (*region)[cand.net.index()] == 0) continue;
      if (best == nullptr || cand.w.best() > best->w.best()) best = &cand;
    }
    if (best == nullptr) return std::nullopt;
    bool cls = best->w.n1 > best->w.n0;
    if (best->w.n1 == best->w.n0 && scoap_ != nullptr && opt_.use_scoap) {
      cls = scoap_->cc(true, best->net) <= scoap_->cc(false, best->net);
    }
    return std::make_pair(best->net, cls);
  }

  /// Heuristic class for direct decisions: the class whose waveforms can
  /// transition latest (most likely to carry the violation).
  [[nodiscard]] bool preferred_class(const ConstraintSystem& cs,
                                     NetId n) const {
    const AbstractSignal& d = cs.domain(n);
    if (d.cls(true).is_empty()) return false;
    if (d.cls(false).is_empty()) return true;
    if (d.cls(true).max != d.cls(false).max) {
      return d.cls(true).max > d.cls(false).max;
    }
    if (scoap_ != nullptr && opt_.use_scoap) {
      return scoap_->cc(true, n) <= scoap_->cc(false, n);
    }
    return true;
  }

  // --- phase 3: justification -------------------------------------------------
  [[nodiscard]] bool is_justified(const ConstraintSystem& cs,
                                  const Gate& g) const {
    const AbstractSignal& od = cs.domain(g.out);
    if (!od.single_class()) return true;  // nothing to justify yet
    const bool v = od.the_class();
    switch (g.type) {
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool cv = controlling_value(g.type);
        const bool ctrl_out = cv != inversion(g.type);
        bool all_nc = true;
        for (NetId in : g.ins) {
          const AbstractSignal& d = cs.domain(in);
          if (d.single_class() && d.the_class() == cv) {
            return true;  // forced (to ctrl_out; mismatches die in propagation)
          }
          if (!(d.single_class() && d.the_class() == !cv)) all_nc = false;
        }
        return v != ctrl_out && all_nc;
      }
      case GateType::kXor:
      case GateType::kXnor:
      case GateType::kNot:
      case GateType::kBuf:
      case GateType::kDelay:
        for (NetId in : g.ins) {
          if (!cs.domain(in).single_class()) return false;
        }
        return true;
      case GateType::kMux: {
        const AbstractSignal& sd = cs.domain(g.ins[0]);
        const AbstractSignal& d0 = cs.domain(g.ins[1]);
        const AbstractSignal& d1 = cs.domain(g.ins[2]);
        if (sd.single_class()) {
          return cs.domain(g.ins[sd.the_class() ? 2 : 1]).single_class();
        }
        return d0.single_class() && d1.single_class() &&
               d0.the_class() == d1.the_class();
      }
    }
    return true;
  }

  [[nodiscard]] std::optional<std::pair<NetId, bool>> justify_pick(
      const ConstraintSystem& cs) const {
    for (GateId gid : c_.topo_order()) {
      const Gate& g = c_.gate(gid);
      if (is_justified(cs, g)) continue;
      // Complete backtrace: walk upstream until a primary input.
      NetId net = g.out;
      bool want = cs.domain(g.out).the_class();
      for (std::size_t guard = 0; guard <= c_.num_nets(); ++guard) {
        const GateId drv = c_.net(net).driver;
        if (!drv.valid()) return std::make_pair(net, want);
        const auto next = justify_step(cs, c_.gate(drv), want);
        if (!next) break;  // all inputs decided; propagation will settle it
        net = next->first;
        want = next->second;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<std::pair<NetId, bool>> justify_step(
      const ConstraintSystem& cs, const Gate& g, bool v) const {
    switch (g.type) {
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool cv = controlling_value(g.type);
        const bool ctrl_out = cv != inversion(g.type);
        const bool want = v == ctrl_out ? cv : !cv;
        if (const auto in = cheapest_input(cs, g, want)) {
          return std::make_pair(*in, want);
        }
        return std::nullopt;
      }
      case GateType::kNot:
        if (!decided(cs, g.ins[0])) return std::make_pair(g.ins[0], !v);
        return std::nullopt;
      case GateType::kBuf:
      case GateType::kDelay:
        if (!decided(cs, g.ins[0])) return std::make_pair(g.ins[0], v);
        return std::nullopt;
      case GateType::kXor:
      case GateType::kXnor: {
        const bool parity = v != inversion(g.type);  // required xor of inputs
        bool known = false;
        NetId open;
        bool acc = false;
        for (NetId in : g.ins) {
          const AbstractSignal& d = cs.domain(in);
          if (d.single_class()) {
            acc = acc != d.the_class();
          } else if (!known) {
            open = in;
            known = true;
          }  // further open inputs: value free; steer the first one
        }
        if (!known) return std::nullopt;
        return std::make_pair(open, parity != acc);
      }
      case GateType::kMux: {
        const AbstractSignal& sd = cs.domain(g.ins[0]);
        if (sd.single_class()) {
          const NetId data = g.ins[sd.the_class() ? 2 : 1];
          if (!decided(cs, data)) return std::make_pair(data, v);
          return std::nullopt;
        }
        return std::make_pair(g.ins[0], false);
      }
    }
    return std::nullopt;
  }

  const Circuit& c_;
  TimingCheck check_;
  const Scoap* scoap_;
  CaseAnalysisOptions opt_;
  CarrierCache* cache_;
  HeadLines heads_;
  std::vector<std::vector<std::uint8_t>> phase1_region_member_;

  // Reused backtrace arenas (pick runs once per search decision).
  std::vector<std::uint32_t> net_level_;
  std::uint32_t max_level_ = 0;
  std::vector<std::vector<NetId>> buckets_;
  std::vector<std::uint8_t> queued_;
  std::vector<Candidate> cands_;
};

/// Fixpoint plus the dominator-implication loop of Figure 4. Returns false
/// on inconsistency.
bool propagate(ConstraintSystem& cs, const TimingCheck& check,
               bool dominators, CarrierCache* cache) {
  for (;;) {
    if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) {
      return false;
    }
    if (!dominators) return true;
    if (apply_dominator_implications(cs, check, cache) == 0) return true;
  }
}

bool all_inputs_decided(const ConstraintSystem& cs) {
  for (NetId in : cs.circuit().inputs()) {
    if (!cs.domain(in).single_class()) return false;
  }
  return true;
}

std::vector<bool> extract_vector(const ConstraintSystem& cs) {
  std::vector<bool> v;
  v.reserve(cs.circuit().inputs().size());
  for (NetId in : cs.circuit().inputs()) {
    v.push_back(cs.domain(in).the_class());
  }
  return v;
}

}  // namespace

CaseAnalysisOutcome run_case_analysis(ConstraintSystem& cs,
                                      const TimingCheck& check,
                                      const Scoap* scoap,
                                      const CaseAnalysisOptions& opt,
                                      CarrierCache* cache) {
  auto& reg = telemetry::Registry::current();
  auto& ctr_decisions = reg.counter("search.decisions");
  auto& ctr_backtracks = reg.counter("search.backtracks");
  auto& ctr_conflicts = reg.counter("search.conflicts");
  auto& ctr_spurious = reg.counter("search.spurious_vectors");
  auto& h_conflict_depth = reg.histogram("search.conflict_depth");
  auto& g_depth = reg.gauge("search.depth");

  CaseAnalysisOutcome out;
  const auto entry = cs.push_state();
  FanGuide guide(cs, check, scoap, opt, cache);

  struct Decision {
    NetId net;
    bool cls;
    ConstraintSystem::Mark mark;
    bool flipped;
    std::int64_t id;  // trace span id (1-based per search; -1 untraced)
  };
  std::vector<Decision> stack;
  std::int64_t next_decision_id = 0;

  // Decision spans: each decision opens a subtree in the trace (the sink
  // stamps every nested event with span_context().dec) and is closed by
  // exactly one `decision_close` — "exhausted" when both classes failed,
  // "witness"/"abandoned" for decisions still open when the search stops.
  // The offline analyzer relies on this bracketing being exact; the flight
  // recorder mirrors it 1:1 so blackbox dumps analyze the same way.
  const auto close_open_decisions = [&stack](const char* outcome,
                                             std::uint8_t outcome_code) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->id < 0) continue;
      telemetry::span_context().dec = it->id;
      if (telemetry::trace_enabled()) {
        telemetry::emit("decision_close", {{"outcome", outcome}});
      }
      if (flight::enabled()) {
        flight::record(flight::Kind::kDecisionClose, {}, 0, 0, outcome_code);
      }
    }
    telemetry::span_context().dec = -1;
  };

  bool consistent = propagate(cs, check, opt.dominators_in_search, cache);

  // One decision boundary's worth of stop conditions: external cancel, the
  // per-check deadline (also latched by the fixpoint drain via
  // cs.deadline_hit()), both concluding kAbandoned like budget exhaustion.
  const auto stop_requested = [&] {
    if (opt.cancel != nullptr && opt.cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    if (cs.deadline_hit()) return true;
    return opt.deadline_ns != 0 && prof::monotonic_ns() >= opt.deadline_ns;
  };

  for (;;) {
    if (stop_requested()) {
      cs.pop_to(entry);
      close_open_decisions("abandoned", flight::kOutcomeAbandoned);
      out.result = CaseResult::kAbandoned;
      return out;
    }
    if (consistent && all_inputs_decided(cs)) {
      // Candidate test vector; cross-validate with the independent
      // floating-mode simulator (exact per-vector settle time).
      auto vec = extract_vector(cs);
      const auto sim = simulate_floating(cs.circuit(), vec);
      if (sim.settle[check.output.index()] >= check.delta) {
        close_open_decisions("witness", flight::kOutcomeWitness);
        out.result = CaseResult::kViolation;
        out.vector = std::move(vec);
        return out;
      }
      consistent = false;  // spurious: treat as a conflict and backtrack
      ctr_spurious.inc();
      if (telemetry::trace_enabled()) {
        telemetry::emit("spurious_vector", {{"depth", stack.size()}});
      }
      if (flight::enabled()) {
        flight::record(flight::Kind::kSpurious, {}, 0,
                       static_cast<std::int64_t>(stack.size()));
      }
    }

    if (!consistent) {
      ctr_conflicts.inc();
      h_conflict_depth.observe(stack.size());
      if (telemetry::trace_enabled()) {
        telemetry::emit("conflict", {{"depth", stack.size()}});
      }
      if (flight::enabled()) {
        flight::record(flight::Kind::kConflict, {}, 0,
                       static_cast<std::int64_t>(stack.size()));
      }
      // Backtrack to the deepest unflipped decision and try its other class.
      bool resumed = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        if (d.flipped) {
          cs.pop_to(d.mark);
          if (d.id >= 0) {
            telemetry::span_context().dec = d.id;
            if (telemetry::trace_enabled()) {
              telemetry::emit("decision_close", {{"outcome", "exhausted"}});
            }
            if (flight::enabled()) {
              flight::record(flight::Kind::kDecisionClose, {}, 0, 0,
                             flight::kOutcomeExhausted);
            }
          }
          stack.pop_back();
          telemetry::span_context().dec = stack.empty() ? -1 : stack.back().id;
          continue;
        }
        cs.pop_to(d.mark);
        d.cls = !d.cls;
        d.flipped = true;
        ++out.backtracks;
        ctr_backtracks.inc();
        g_depth.set(static_cast<std::int64_t>(stack.size()));
        if (prof::heartbeat_enabled()) {
          prof::ActivityBoard::set_depth(
              static_cast<std::int64_t>(stack.size()));
        }
        if (d.id >= 0) {
          telemetry::span_context().dec = d.id;
          if (telemetry::trace_enabled()) {
            telemetry::emit("backtrack",
                            {{"net", cs.circuit().net(d.net).name},
                             {"cls", d.cls},
                             {"depth", stack.size()}});
          }
          if (flight::enabled()) {
            flight::record(flight::Kind::kBacktrack,
                           cs.circuit().net(d.net).name, 0,
                           static_cast<std::int64_t>(stack.size()),
                           d.cls ? 1 : 0);
          }
        }
        if (out.backtracks > opt.max_backtracks) {
          cs.pop_to(entry);
          close_open_decisions("abandoned", flight::kOutcomeAbandoned);
          out.result = CaseResult::kAbandoned;
          return out;
        }
        cs.restrict_domain(d.net, AbstractSignal::class_only(d.cls));
        consistent = propagate(cs, check, opt.dominators_in_search, cache);
        if (consistent) {
          resumed = true;
          break;
        }
        ctr_conflicts.inc();
        h_conflict_depth.observe(stack.size());
        if (telemetry::trace_enabled()) {
          telemetry::emit("conflict", {{"depth", stack.size()}});
        }
        if (flight::enabled()) {
          flight::record(flight::Kind::kConflict, {}, 0,
                         static_cast<std::int64_t>(stack.size()));
        }
      }
      if (resumed) continue;
      if (stack.empty()) {
        cs.pop_to(entry);
        out.result = CaseResult::kNoViolation;
        return out;
      }
      continue;
    }

    // Consistent, inputs not fully decided: take the next decision.
    const auto pick = guide.pick(cs);
    if (!pick) {
      // Every net is class-decided except inconsistent leftovers; force the
      // remaining inputs (should not happen: all_inputs_decided was false).
      consistent = false;
      continue;
    }
    Decision d{pick->first, pick->second, cs.push_state(), false, -1};
    if (telemetry::trace_enabled() || flight::enabled()) {
      d.id = ++next_decision_id;
    }
    stack.push_back(d);
    ++out.decisions;
    ctr_decisions.inc();
    g_depth.set(static_cast<std::int64_t>(stack.size()));
    if (prof::heartbeat_enabled()) {
      prof::ActivityBoard::set_depth(
          static_cast<std::int64_t>(stack.size()));
    }
    if (d.id >= 0) {
      // The decision's own id rides in the sink-stamped "dec"; `parent`
      // links it into the tree (-1 = child of the search root).
      const std::int64_t parent =
          stack.size() > 1 ? stack[stack.size() - 2].id : -1;
      telemetry::span_context().dec = d.id;
      if (telemetry::trace_enabled()) {
        telemetry::emit("decision", {{"parent", parent},
                                     {"net", cs.circuit().net(d.net).name},
                                     {"cls", d.cls},
                                     {"depth", stack.size()}});
      }
      if (flight::enabled()) {
        flight::record(flight::Kind::kDecision,
                       cs.circuit().net(d.net).name, parent,
                       static_cast<std::int64_t>(stack.size()),
                       d.cls ? 1 : 0);
      }
    }
    cs.restrict_domain(d.net, AbstractSignal::class_only(d.cls));
    consistent = propagate(cs, check, opt.dominators_in_search, cache);
  }
}

}  // namespace waveck
