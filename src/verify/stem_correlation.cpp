#include "verify/stem_correlation.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/telemetry.hpp"

namespace waveck {

namespace {

void trace_stem(const ConstraintSystem& cs, NetId stem,
                std::string_view outcome, std::size_t narrowed) {
  if (!telemetry::trace_enabled()) return;
  telemetry::emit("stem", {{"net", cs.circuit().net(stem).name},
                           {"outcome", outcome},
                           {"narrowed", narrowed}});
}

}  // namespace

StemCorrelationStats apply_stem_correlation(ConstraintSystem& cs,
                                            const TimingCheck& check,
                                            std::span<const NetId> stems,
                                            std::size_t max_stems) {
  auto& reg = telemetry::Registry::current();
  auto& ctr_stems = reg.counter("stem.stems_processed");
  auto& ctr_one_sided = reg.counter("stem.one_sided");
  auto& ctr_narrowed = reg.counter("stem.domains_narrowed");

  StemCorrelationStats stats;
  if (cs.inconsistent()) {
    stats.proved_no_violation = true;
    return stats;
  }

  // Order stems nearest-to-the-output first: their split prunes the region
  // the violation must come from.
  CarrierSet carriers = dynamic_carriers(cs, check);
  std::vector<NetId> work(stems.begin(), stems.end());
  std::erase_if(work, [&](NetId n) { return !carriers.is_carrier(n); });
  std::sort(work.begin(), work.end(), [&](NetId a, NetId b) {
    return carriers.distance[a.index()] < carriers.distance[b.index()];
  });
  if (work.size() > max_stems) work.resize(max_stems);

  for (NetId stem : work) {
    const AbstractSignal& dom = cs.domain(stem);
    if (dom.is_bottom() || dom.single_class()) continue;

    std::unordered_map<NetId, AbstractSignal> branch0;
    bool ok0 = false, ok1 = false;

    {
      const auto mark = cs.push_state();
      cs.restrict_domain(stem, AbstractSignal::class_only(false));
      ok0 = cs.reach_fixpoint() ==
            ConstraintSystem::Status::kPossibleViolation;
      if (ok0) {
        for (NetId n : cs.changed_since(mark)) {
          branch0.emplace(n, cs.domain(n));
        }
      }
      cs.pop_to(mark);
    }
    std::unordered_map<NetId, AbstractSignal> branch1;
    {
      const auto mark = cs.push_state();
      cs.restrict_domain(stem, AbstractSignal::class_only(true));
      ok1 = cs.reach_fixpoint() ==
            ConstraintSystem::Status::kPossibleViolation;
      if (ok1) {
        for (NetId n : cs.changed_since(mark)) {
          branch1.emplace(n, cs.domain(n));
        }
      }
      cs.pop_to(mark);
    }

    ++stats.stems_processed;
    ctr_stems.inc();
    if (!ok0 && !ok1) {
      // Neither class admits a solution: the whole check is inconsistent.
      cs.restrict_domain(stem, AbstractSignal::bottom());
      stats.proved_no_violation = true;
      trace_stem(cs, stem, "refuted", 0);
      return stats;
    }
    if (ok0 != ok1) {
      // Necessary assignment: keep the surviving class and its propagation.
      ++stats.one_sided;
      ctr_one_sided.inc();
      trace_stem(cs, stem, "one_sided", 0);
      cs.restrict_domain(stem, AbstractSignal::class_only(ok1));
      if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) {
        stats.proved_no_violation = true;
        return stats;
      }
      continue;
    }
    // Both classes alive: D_X := D_X0 u D_X1 for nets narrowed in both
    // branches (a net untouched by a branch keeps its pre-split value there,
    // so only the intersection of the changed sets can narrow).
    std::size_t narrowed_here = 0;
    for (const auto& [net, v0] : branch0) {
      const auto it = branch1.find(net);
      if (it == branch1.end()) continue;
      const AbstractSignal united = v0.unite(it->second);
      if (cs.restrict_domain(net, united)) {
        ++stats.domains_narrowed;
        ++narrowed_here;
      }
    }
    ctr_narrowed.add(narrowed_here);
    trace_stem(cs, stem, "both", narrowed_here);
    if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) {
      stats.proved_no_violation = true;
      return stats;
    }
  }
  return stats;
}

}  // namespace waveck
