#include "verify/stem_correlation.hpp"

#include <algorithm>
#include <string_view>
#include <vector>

#include "analysis/carrier_cache.hpp"
#include "common/flight_recorder.hpp"
#include "common/telemetry.hpp"

namespace waveck {

namespace {

void trace_stem(const ConstraintSystem& cs, NetId stem,
                std::string_view outcome, std::size_t narrowed) {
  if (telemetry::trace_enabled()) {
    telemetry::emit("stem", {{"net", cs.circuit().net(stem).name},
                             {"outcome", outcome},
                             {"narrowed", narrowed}});
  }
  if (flight::enabled()) {
    flight::record(flight::Kind::kStem, cs.circuit().net(stem).name);
  }
}

}  // namespace

StemCorrelationStats apply_stem_correlation(ConstraintSystem& cs,
                                            const TimingCheck& check,
                                            std::span<const NetId> stems,
                                            std::size_t max_stems,
                                            CarrierCache* cache) {
  auto& reg = telemetry::Registry::current();
  auto& ctr_stems = reg.counter("stem.stems_processed");
  auto& ctr_one_sided = reg.counter("stem.one_sided");
  auto& ctr_narrowed = reg.counter("stem.domains_narrowed");

  StemCorrelationStats stats;
  if (cs.inconsistent()) {
    stats.proved_no_violation = true;
    return stats;
  }

  // Order stems nearest-to-the-output first: their split prunes the region
  // the violation must come from.
  CarrierSet local_carriers;
  const CarrierSet* carriers;
  if (cache != nullptr) {
    carriers = &cache->carriers();
  } else {
    local_carriers = dynamic_carriers(cs, check);
    carriers = &local_carriers;
  }
  std::vector<NetId> work(stems.begin(), stems.end());
  std::erase_if(work, [&](NetId n) { return !carriers->is_carrier(n); });
  std::sort(work.begin(), work.end(), [&](NetId a, NetId b) {
    return carriers->distance[a.index()] < carriers->distance[b.index()];
  });
  if (work.size() > max_stems) work.resize(max_stems);

  // Branch snapshots live in flat per-net arenas stamped per stem: no
  // per-stem hashing or node allocation, and only the nets the propagation
  // actually touched (the trail suffix) are ever written.
  const std::size_t num_nets = cs.circuit().num_nets();
  std::vector<AbstractSignal> val0(num_nets), val1(num_nets);
  std::vector<std::uint32_t> stamp0(num_nets, 0), stamp1(num_nets, 0);
  std::vector<NetId> changed0;
  std::uint32_t stem_gen = 0;

  for (NetId stem : work) {
    const AbstractSignal& dom = cs.domain(stem);
    if (dom.is_bottom() || dom.single_class()) continue;

    ++stem_gen;
    changed0.clear();
    bool ok0 = false, ok1 = false;

    {
      const auto mark = cs.push_state();
      cs.restrict_domain(stem, AbstractSignal::class_only(false));
      ok0 = cs.reach_fixpoint() ==
            ConstraintSystem::Status::kPossibleViolation;
      if (ok0) {
        for (std::size_t i = mark; i < cs.trail_size(); ++i) {
          const NetId n = cs.trail_net(i);
          if (stamp0[n.index()] != stem_gen) {
            stamp0[n.index()] = stem_gen;
            val0[n.index()] = cs.domain(n);
            changed0.push_back(n);
          }
        }
      }
      cs.pop_to(mark);
    }
    {
      const auto mark = cs.push_state();
      cs.restrict_domain(stem, AbstractSignal::class_only(true));
      ok1 = cs.reach_fixpoint() ==
            ConstraintSystem::Status::kPossibleViolation;
      if (ok1) {
        for (std::size_t i = mark; i < cs.trail_size(); ++i) {
          const NetId n = cs.trail_net(i);
          if (stamp1[n.index()] != stem_gen) {
            stamp1[n.index()] = stem_gen;
            val1[n.index()] = cs.domain(n);
          }
        }
      }
      cs.pop_to(mark);
    }

    ++stats.stems_processed;
    ctr_stems.inc();
    if (!ok0 && !ok1) {
      // Neither class admits a solution: the whole check is inconsistent.
      cs.restrict_domain(stem, AbstractSignal::bottom());
      stats.proved_no_violation = true;
      trace_stem(cs, stem, "refuted", 0);
      return stats;
    }
    if (ok0 != ok1) {
      // Necessary assignment: keep the surviving class and its propagation.
      ++stats.one_sided;
      ctr_one_sided.inc();
      trace_stem(cs, stem, "one_sided", 0);
      cs.restrict_domain(stem, AbstractSignal::class_only(ok1));
      if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) {
        stats.proved_no_violation = true;
        return stats;
      }
      continue;
    }
    // Both classes alive: D_X := D_X0 u D_X1 for nets narrowed in both
    // branches (a net untouched by a branch keeps its pre-split value there,
    // so only the intersection of the changed sets can narrow). The
    // restrictions are intersections, so their application order does not
    // affect the fixpoint that follows.
    std::size_t narrowed_here = 0;
    for (NetId net : changed0) {
      if (stamp1[net.index()] != stem_gen) continue;
      const AbstractSignal united =
          val0[net.index()].unite(val1[net.index()]);
      if (cs.restrict_domain(net, united)) {
        ++stats.domains_narrowed;
        ++narrowed_here;
      }
    }
    ctr_narrowed.add(narrowed_here);
    trace_stem(cs, stem, "both", narrowed_here);
    if (cs.reach_fixpoint() == ConstraintSystem::Status::kNoViolation) {
      stats.proved_no_violation = true;
      return stats;
    }
  }
  return stats;
}

}  // namespace waveck
