// Per-output pessimism analysis: exact floating-mode delay for every
// primary output, next to its topological (STA) arrival. This is the
// "useless redesign effort" view from the paper's introduction: the gap
// between the two columns is the pessimism a topological-only tool would
// report.
#pragma once

#include <vector>

#include "verify/verifier.hpp"

namespace waveck {

struct OutputDelay {
  NetId output;
  Time topological = Time::neg_inf();
  Time floating = Time::neg_inf();  // exact unless `exact` is false
  bool exact = true;
  std::size_t backtracks = 0;
};

struct PessimismReport {
  std::vector<OutputDelay> outputs;  // sorted, most pessimistic gap first
  Time worst_topological = Time::neg_inf();
  Time worst_floating = Time::neg_inf();
};

/// Exact floating delay of one output by adaptive binary search (same
/// witness-jump strategy as Verifier::exact_floating_delay, restricted to
/// `s`).
[[nodiscard]] OutputDelay exact_output_delay(Verifier& v, NetId s);

/// Per-output sweep over all primary outputs.
[[nodiscard]] PessimismReport pessimism_report(Verifier& v);

}  // namespace waveck
