// Case analysis by waveform splitting (paper Section 5).
//
// A branch-and-bound search that restricts net domains to one final class at
// a time, propagating each decision through the narrowing engine (including
// the dynamic-dominator implications of Figure 4), until either
//   * every primary input is class-determined and the system is consistent
//     -- a test vector, cross-validated against the independent floating-
//     mode simulator -- or
//   * all alternatives are refuted: no violation is possible.
//
// Decision selection follows the paper's modified FAN:
//   * *initial objectives* sensitize the dynamic-carrier circuit Psi: inputs
//     of Psi gates that are not carriers themselves are steered to the
//     non-controlling value of the gate they feed;
//   * objectives are triplets (k, n0(k), n1(k)) where n_v is the length of a
//     path to s potentially enabled by setting k to v; at fanout stems the
//     incoming n values combine by MAX (the paper's modification; the
//     original FAN sum is available as an ablation);
//   * SCOAP controllability breaks ties;
//   * decisions run in 3 phases: between consecutive dynamic dominators
//     (computed before any decision), then the whole carrier neighbourhood,
//     then the output and primary inputs via complete backtrace from
//     unjustified gates.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "analysis/carriers.hpp"
#include "analysis/scoap.hpp"
#include "constraints/constraint_system.hpp"

namespace waveck {

struct CaseAnalysisOptions {
  std::size_t max_backtracks = 100000;
  /// Re-run the dominator implications after every decision (the paper's
  /// `evaluate` loop).
  bool dominators_in_search = true;
  /// Ablation: combine objective weights at fanout stems with SUM (original
  /// FAN) instead of the paper's MAX.
  bool sum_at_fanout = false;
  /// Ablation: disable SCOAP tie-breaking.
  bool use_scoap = true;
  /// Ablation: collapse the 3-phase decision ordering into one phase.
  bool three_phase = true;
  /// Cooperative cancellation (src/sched): when non-null and set, the
  /// search stops at the next decision boundary and returns kAbandoned,
  /// exactly as if the backtrack budget had been exhausted. Polled with a
  /// relaxed load once per search-loop iteration.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute monotonic deadline (prof::monotonic_ns clock; 0 = none).
  /// Checked alongside `cancel` at every decision boundary — and, through
  /// ConstraintSystem::set_deadline_ns, inside each propagation drain — so
  /// expiry mid-search returns kAbandoned within microseconds.
  std::uint64_t deadline_ns = 0;
};

enum class CaseResult : std::uint8_t {
  kViolation,    // test vector found (and validated by simulation)
  kNoViolation,  // search exhausted: no sigma-compatible assignment
  kAbandoned,    // backtrack budget exceeded (paper's 'A' entries)
};

struct CaseAnalysisOutcome {
  CaseResult result = CaseResult::kAbandoned;
  std::size_t backtracks = 0;
  std::size_t decisions = 0;
  /// Test vector (indexed like Circuit::inputs()) when result == kViolation.
  std::vector<bool> vector;
};

class CarrierCache;

/// Runs the case analysis on a system already at a fixpoint (typically after
/// global implications and stem correlation). `scoap` may be null. On
/// kViolation the system is left at the satisfying state; otherwise it is
/// restored to the entry state. `cache` (may be null) serves the dynamic
/// carriers and dominators incrementally; the search behaves identically
/// with or without it.
CaseAnalysisOutcome run_case_analysis(ConstraintSystem& cs,
                                      const TimingCheck& check,
                                      const Scoap* scoap,
                                      const CaseAnalysisOptions& opt = {},
                                      CarrierCache* cache = nullptr);

}  // namespace waveck
