// waveck serve: a long-lived timing-check daemon (ROADMAP item 1).
//
// One process loads circuits once and answers check requests over a socket,
// so interactive callers (editors, regression drivers, parameter sweeps)
// stop paying the per-invocation cost the offline CLI pays every time:
// netlist parse, decomposition, static learning, SCOAP, stem enumeration,
// carrier-cache warmup. Those all live in the resident Verifier
// (serve/registry.hpp) and are reused across requests.
//
// Architecture (doc/SERVE.md):
//   * IO thread — poll() over the listeners, a self-pipe and every client
//     connection. Parses JSONL requests; answers cheap control ops (ping,
//     list, stats, unload, shutdown) inline; enqueues load and check work
//     (a netlist load parses and decomposes a whole circuit, so it runs on
//     the worker — the poll loop stays responsive throughout).
//   * Bounded queue — admission control. A request that arrives when
//     `queue_cap` checks are already pending is rejected immediately with
//     an `overloaded` error: the daemon never buffers unboundedly and a
//     client never hangs on a silently parked request.
//   * Worker thread — pops a check, coalesces every queued request for the
//     same circuit into one batch (up to `max_batch`), dedups identical
//     (delta, output) pairs within it (one engine run fans out to every
//     requester), and runs them through the resident scheduler/verifier.
//     Per-request deadlines map onto the engine deadline plumbing
//     (sched/cancellation.hpp): a request expired in the queue is answered
//     `deadline_expired` without running; one that expires mid-run comes
//     back conclusion "A" — the worker itself always survives.
//   * Supervisor — with `heartbeat_s > 0` a prof::ProgressMonitor thread
//     watches the ActivityBoard: periodic status lines to stderr plus a
//     `watchdog_stall` snapshot when the worker stops making progress.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace waveck::prof {
class ProgressMonitor;
}  // namespace waveck::prof

namespace waveck::serve {

struct ServeOptions {
  /// Unix-domain socket path ("" = no UDS listener). A stale socket file
  /// at the path (nothing accepting) is replaced; if a live server answers
  /// there, start() refuses rather than steal the path.
  std::string socket_path;
  /// TCP listener on loopback (0 = no TCP listener; -1 = ephemeral port,
  /// readable from Server::tcp_port() after start()).
  int tcp_port = 0;
  /// Admission control: pending checks beyond this are rejected with
  /// `overloaded`.
  std::size_t queue_cap = 64;
  /// Scheduler fan-out inside a whole-circuit check (1 = serial).
  std::size_t jobs = 1;
  /// Deadline applied to check requests that carry no timeout_ms
  /// (0 = none).
  std::uint64_t default_timeout_ms = 0;
  /// Max requests coalesced into one worker batch.
  std::size_t max_batch = 16;
  /// Supervisor heartbeat interval in seconds (0 = no supervisor).
  double heartbeat_s = 0.0;
  /// No-progress window before a watchdog snapshot (0 = monitor default).
  double stall_s = 0.0;
  /// Allow the debug_stall op (tests/CI only: wedges the worker on demand).
  bool enable_debug_ops = false;
  /// Install SIGTERM/SIGINT handlers that trigger a clean shutdown (the
  /// CLI sets this; in-process tests do not).
  bool handle_signals = false;
  /// Flight-recorder blackbox directory ("" = post-mortem dumps disabled).
  /// When set, start() arms flight::set_blackbox_dir and the fatal-signal
  /// handlers, so watchdog stalls, deadline expiries, load shedding and
  /// crashes all leave an explain-loadable dump behind.
  std::string blackbox_dir;
};

class Server {
 public:
  explicit Server(ServeOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners, spawns the worker (and supervisor, if enabled).
  /// False + `*err` on failure; the server is then inert.
  bool start(std::string* err);

  /// IO loop; blocks until request_shutdown() (or a handled signal), then
  /// drains, joins the worker, and writes the final stats line to stderr.
  void run();

  /// Triggers a clean shutdown from any thread (async-signal-safe).
  void request_shutdown();

  /// Actual TCP port after start() (ephemeral binds resolve here).
  [[nodiscard]] int tcp_port() const { return tcp_port_; }
  [[nodiscard]] CircuitRegistry& registry() { return registry_; }

 private:
  struct Connection;
  struct Pending;

  // --- IO thread ---------------------------------------------------------
  bool bind_unix(std::string* err);
  bool bind_tcp(std::string* err);
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void enqueue(const std::shared_ptr<Connection>& conn, const Request& req);
  [[nodiscard]] std::string stats_response(const std::string& id);
  [[nodiscard]] std::string metrics_response(const std::string& id,
                                             const std::string& format);
  [[nodiscard]] std::string list_response(const std::string& id);

  // --- worker thread ------------------------------------------------------
  void worker_loop();
  void run_batch(std::vector<Pending> batch);
  void handle_load(const std::shared_ptr<Connection>& conn,
                   const Request& req);
  void run_checks(const ResidentPtr& resident, std::vector<Pending> group);
  void run_stall(const Pending& p);

  void send(const std::shared_ptr<Connection>& conn, const std::string& line);
  /// Compact JSON object with the headline counters — the payload of the
  /// final stderr line, and of the watchdog's on_stall line.
  [[nodiscard]] std::string stats_json();
  [[nodiscard]] double uptime_s() const;
  void final_stats_line();

  ServeOptions opt_;
  CircuitRegistry registry_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: signals/shutdown -> poll()

  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stop_worker_ = false;
  std::thread worker_;
  std::unique_ptr<prof::ProgressMonitor> monitor_;

  /// Installed as every resident verifier's cancel flag — at
  /// ResidentCircuit construction, before the entry is published, so no
  /// check can race the installation. Shutdown aborts the in-flight case
  /// analysis at its next decision boundary.
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::uint64_t start_ns_ = 0;  // monotonic_ns at start(); uptime base
};

}  // namespace waveck::serve
