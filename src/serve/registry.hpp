// Multi-tenant resident-circuit registry for the serve daemon.
//
// Each `load` materialises a ResidentCircuit: the finalized netlist plus
// the expensive per-circuit state the offline CLI rebuilds on every
// invocation — a Verifier (whose prepare_shared() analyses and
// CarrierCache persist across requests) and a CheckScheduler for
// whole-circuit suites. Entries are keyed by namespace name; the content
// hash (netlist/content_hash.hpp) pins the identity: re-loading the same
// structure under the same name is idempotent, a different structure is a
// hash_mismatch error, never a silent swap.
//
// Thread model: the registry map is mutex-guarded (IO thread loads/unloads
// while the worker resolves names). The ResidentCircuit internals
// (Verifier, scheduler, stats) are NOT locked here — every check runs on
// the single worker thread, which is the only caller of check_* on a
// resident entry. shared_ptr keeps an entry alive across an unload that
// races an in-flight check.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/telemetry.hpp"
#include "netlist/circuit.hpp"
#include "sched/check_scheduler.hpp"
#include "verify/verifier.hpp"

namespace waveck::serve {

/// Relaxed atomics throughout (the TimeHistograms too): the worker thread
/// writes, `list`/`stats`/`metrics` snapshots read from the IO thread.
struct ResidentStats {
  std::atomic<std::uint64_t> checks{0};   // engine runs on this circuit
  std::atomic<std::uint64_t> requests{0};  // check requests answered (fanout)
  std::atomic<std::uint64_t> deduped{0};   // requests satisfied by a twin run
  std::atomic<std::uint64_t> batches{0};  // worker batches on this circuit
  std::atomic<std::uint64_t> prepare_runs{0};  // stays at 1: state resident
  /// Request latency split at the queue/engine boundary: `queued_us` is
  /// enqueue -> worker pickup, `engine_us` is pickup -> response ready. The
  /// split is the diagnosis: a fat queued tail means admission pressure
  /// (raise queue_cap / add daemons), a fat engine tail means the checks
  /// themselves are slow (look at the circuit, not the daemon).
  telemetry::TimeHistogram queued_us;
  telemetry::TimeHistogram engine_us;
};

class ResidentCircuit {
 public:
  /// `c` must be finalized. `jobs` is the scheduler fan-out for
  /// whole-circuit checks (1 = serial inline). `cancel_flag` (may be null)
  /// is installed as the verifier's cancel flag *before* the entry is
  /// published in the registry: once another thread can see this circuit
  /// and run checks on it, nothing mutates the verifier's cancellation
  /// wiring anymore.
  ResidentCircuit(std::string name, Circuit c, std::size_t jobs,
                  const std::atomic<bool>* cancel_flag);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& hash() const { return hash_; }
  [[nodiscard]] const Circuit& circuit() const { return circuit_; }
  [[nodiscard]] Verifier& verifier() { return verifier_; }
  [[nodiscard]] sched::CheckScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] ResidentStats& stats() { return stats_; }

  /// Runs the shared analyses once; later calls are no-ops (worker thread
  /// only). Returns true when this call did the work.
  bool ensure_prepared();

 private:
  std::string name_;
  std::string hash_;
  Circuit circuit_;  // must outlive verifier_ (holds a const reference)
  Verifier verifier_;
  sched::CheckScheduler scheduler_;
  ResidentStats stats_;
  bool prepared_ = false;
};

using ResidentPtr = std::shared_ptr<ResidentCircuit>;

struct LoadOutcome {
  ResidentPtr resident;        // null on hash_mismatch
  bool already_loaded = false; // same name + same hash: idempotent no-op
  bool hash_mismatch = false;  // same name, different structure
  std::string existing_hash;   // filled on both non-fresh outcomes
};

struct ResidentInfo {
  std::string name;
  std::string hash;
  std::size_t nets = 0;
  std::size_t gates = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::uint64_t checks = 0;
};

class CircuitRegistry {
 public:
  /// `cancel_flag` (may be null) is handed to every ResidentCircuit at
  /// construction — see the ResidentCircuit constructor contract.
  explicit CircuitRegistry(std::size_t jobs,
                           const std::atomic<bool>* cancel_flag = nullptr)
      : jobs_(jobs), cancel_flag_(cancel_flag) {}

  /// Registers `c` under `name` (see LoadOutcome for the collision rules).
  [[nodiscard]] LoadOutcome load(const std::string& name, Circuit c);
  /// Removes the entry; in-flight checks keep their shared_ptr. Returns
  /// false when the name is not resident.
  bool unload(const std::string& name);
  [[nodiscard]] ResidentPtr get(const std::string& name);
  /// Name-sorted snapshot for the `list` op.
  [[nodiscard]] std::vector<ResidentInfo> list();
  /// Name-sorted snapshot of the resident entries themselves — the
  /// stats/metrics ops read per-namespace counters and latency histograms
  /// directly (all relaxed atomics, safe against the worker).
  [[nodiscard]] std::vector<ResidentPtr> snapshot();
  [[nodiscard]] std::size_t size();

 private:
  std::size_t jobs_;
  const std::atomic<bool>* cancel_flag_;
  std::mutex mu_;
  std::unordered_map<std::string, ResidentPtr> by_name_;
};

}  // namespace waveck::serve
