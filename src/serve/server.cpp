#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <thread>
#include <utility>

#include "common/flight_recorder.hpp"
#include "common/telemetry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/content_hash.hpp"
#include "netlist/delay_annotation.hpp"
#include "netlist/transforms.hpp"
#include "netlist/verilog_io.hpp"
#include "prof/heartbeat.hpp"
#include "prof/perf_counters.hpp"
#include "verify/report_io.hpp"

namespace waveck::serve {
namespace {

/// A request line longer than this without a newline is a protocol abuse;
/// the connection is answered with parse_error and closed.
constexpr std::size_t kMaxLineBytes = 1u << 20;

/// How long one response write may wait for a slow reader to drain the
/// socket buffer before the connection is declared broken: up to
/// kMaxWriteStalls polls of kWriteStallPollMs each (~10 s total).
constexpr int kWriteStallPollMs = 100;
constexpr int kMaxWriteStalls = 100;

telemetry::Counter& counter(const char* name) {
  return telemetry::Registry::global().counter(name);
}

/// Self-pipe write end for the signal handler (async-signal-safe: only
/// write() touches it).
std::atomic<int> g_signal_wake_fd{-1};

void on_shutdown_signal(int /*sig*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

/// Mirrors the offline CLI's netlist loading exactly (tools/waveck_cli.cpp
/// `load`): same readers, same default uniform delay of 10, same solver
/// decomposition — a prerequisite for served reports being byte-identical
/// to offline ones.
Circuit load_circuit(const std::string& path, const std::string& delays) {
  const bool verilog =
      path.size() > 2 && path.compare(path.size() - 2, 2, ".v") == 0;
  Circuit c = verilog ? read_verilog_file(path) : read_bench_file(path);
  if (!delays.empty()) {
    read_delays_file(delays, c);
  } else {
    c.set_uniform_delay(DelaySpec::fixed(10));
  }
  return decompose_for_solver(c);
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::string inbuf;
  std::mutex write_mu;  // serialises worker/IO writes; guards fd teardown
  bool closed = false;  // IO thread only
  /// Set (any thread) when a write could not be completed: the outbound
  /// stream may end mid-line, so nothing more is ever written to it and
  /// the IO thread reaps the connection instead of serving it further.
  std::atomic<bool> broken{false};

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (fd < 0 || broken.load(std::memory_order_relaxed)) return;
    const char* p = line.data();
    std::size_t n = line.size();
    int stalls = 0;
    while (n > 0) {
      const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
      if (w > 0) {
        p += w;
        n -= static_cast<std::size_t>(w);
        stalls = 0;
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // The fd is O_NONBLOCK and the send buffer is full (a report
        // larger than SO_SNDBUF, or a reader that stopped draining).
        // Returning here would truncate the JSONL line and corrupt every
        // later response on this stream, so wait — bounded — for POLLOUT.
        if (++stalls > kMaxWriteStalls) break;
        pollfd pfd{fd, POLLOUT, 0};
        const int rc = ::poll(&pfd, 1, kWriteStallPollMs);
        if (rc < 0 && errno != EINTR) break;
        continue;
      }
      break;  // peer gone or hard error
    }
    if (n > 0) broken.store(true, std::memory_order_relaxed);
  }

  void close_fd() {
    std::lock_guard<std::mutex> lock(write_mu);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

struct Server::Pending {
  std::shared_ptr<Connection> conn;
  Request req;
  std::uint64_t expiry_ns = 0;    // absolute monotonic deadline; 0 = none
  std::uint64_t enqueued_ns = 0;  // monotonic_ns at admission (latency base)
};

Server::Server(ServeOptions opt)
    // Taking &stopping_ before its initializer runs is fine: the registry
    // only stores the pointer, and no circuit loads before start().
    : opt_(std::move(opt)),
      registry_(opt_.jobs == 0 ? 1 : opt_.jobs, &stopping_) {}

Server::~Server() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_worker_ = true;
  }
  queue_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  monitor_.reset();
  for (const auto& conn : conns_) conn->close_fd();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!opt_.socket_path.empty() && started_) {
    ::unlink(opt_.socket_path.c_str());
  }
  g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

bool Server::bind_unix(std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    *err = "socket path too long: " + opt_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);
  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (unix_fd_ < 0) {
    *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Never steal a live daemon's socket: probe the path first and only
  // unlink when nothing answers (ECONNREFUSED = socket file left behind by
  // a dead server). If the connect succeeds a server is accepting there —
  // refuse to start rather than silently orphan it.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      ::close(probe);
      *err = "a live server is already accepting on " + opt_.socket_path +
             " (use a different --socket, or shut it down first)";
      return false;
    }
    const bool stale = errno == ECONNREFUSED;
    ::close(probe);
    if (stale) ::unlink(opt_.socket_path.c_str());
    // ENOENT: nothing at the path. Anything else: leave the path alone and
    // let bind() report the conflict.
  }
  if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(unix_fd_, 64) < 0) {
    *err = "bind " + opt_.socket_path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

bool Server::bind_tcp(std::string* err) {
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (tcp_fd_ < 0) {
    *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only: no
  // authentication story, so never listen on a routable interface.
  addr.sin_port =
      htons(opt_.tcp_port > 0 ? static_cast<std::uint16_t>(opt_.tcp_port)
                              : 0);
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(tcp_fd_, 64) < 0) {
    *err = "bind tcp port " + std::to_string(opt_.tcp_port) + ": " +
           std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    tcp_port_ = ntohs(bound.sin_port);
  }
  return true;
}

bool Server::start(std::string* err) {
  if (opt_.socket_path.empty() && opt_.tcp_port == 0) {
    *err = "serve needs a --socket path or a --tcp port";
    return false;
  }
  if (::pipe(wake_pipe_) < 0) {
    *err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (!opt_.socket_path.empty() && !bind_unix(err)) return false;
  if (opt_.tcp_port != 0 && !bind_tcp(err)) return false;
  if (opt_.handle_signals) {
    g_signal_wake_fd.store(wake_pipe_[1], std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = on_shutdown_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
  }
  if (!opt_.blackbox_dir.empty()) {
    flight::set_blackbox_dir(opt_.blackbox_dir);
    flight::install_fatal_handlers();
  }
  if (opt_.heartbeat_s > 0.0) {
    monitor_ = std::make_unique<prof::ProgressMonitor>(
        prof::HeartbeatOptions{
            .interval_s = opt_.heartbeat_s,
            .stall_s = opt_.stall_s,
            // The monitor already dumped the thread snapshot and blackbox;
            // this appends the daemon-level view in the same structured
            // shape the exit line uses, so a stalled daemon's last stderr
            // lines are machine-readable.
            .on_stall =
                [this] {
                  std::cerr << "waveck-serve: stalled " << stats_json()
                            << "\n" << std::flush;
                }},
        std::cerr);
  }
  start_ns_ = prof::monotonic_ns();
  worker_ = std::thread([this] { worker_loop(); });
  started_ = true;
  return true;
}

void Server::request_shutdown() {
  const char b = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void Server::run() {
  if (!started_) return;
  std::vector<pollfd> pfds;
  bool shutdown = false;
  while (!shutdown) {
    pfds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    int unix_idx = -1;
    int tcp_idx = -1;
    if (unix_fd_ >= 0) {
      unix_idx = static_cast<int>(pfds.size());
      pfds.push_back({unix_fd_, POLLIN, 0});
    }
    if (tcp_fd_ >= 0) {
      tcp_idx = static_cast<int>(pfds.size());
      pfds.push_back({tcp_fd_, POLLIN, 0});
    }
    const std::size_t conn_base = pfds.size();
    for (const auto& conn : conns_) {
      pfds.push_back({conn->fd, POLLIN, 0});
    }
    const int rc = ::poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((pfds[0].revents & POLLIN) != 0) {
      shutdown = true;  // drained by close; no need to read the bytes
      continue;
    }
    const auto accept_on = [this](int listen_fd) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conns_.push_back(std::move(conn));
    };
    if (unix_idx >= 0 && (pfds[unix_idx].revents & POLLIN) != 0) {
      accept_on(unix_fd_);
    }
    if (tcp_idx >= 0 && (pfds[tcp_idx].revents & POLLIN) != 0) {
      accept_on(tcp_fd_);
    }
    for (std::size_t i = 0; i < conns_.size() && conn_base + i < pfds.size();
         ++i) {
      const short rev = pfds[conn_base + i].revents;
      if ((rev & (POLLIN | POLLERR | POLLHUP)) != 0) {
        handle_readable(conns_[i]);
      }
    }
    for (const auto& conn : conns_) {
      // A write marked the stream broken (slow reader or hard send error):
      // stop serving the connection rather than read more requests whose
      // responses would land on a corrupted stream.
      if (!conn->closed && conn->broken.load(std::memory_order_relaxed)) {
        conn->close_fd();
        conn->closed = true;
      }
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::shared_ptr<Connection>& c) {
                                  return c->closed;
                                }),
                 conns_.end());
  }

  // Teardown: stop accepting, abort the in-flight check (cancel flag),
  // let the worker drain the queue as shutting_down errors, then report.
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_worker_ = true;
  }
  queue_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  monitor_.reset();
  for (const auto& conn : conns_) conn->close_fd();
  conns_.clear();
  if (!opt_.socket_path.empty()) ::unlink(opt_.socket_path.c_str());
  final_stats_line();
}

void Server::handle_readable(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    conn->closed = true;  // EOF or hard error
    break;
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn->inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = conn->inbuf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty()) handle_line(conn, line);
    if (conn->closed) break;
  }
  conn->inbuf.erase(0, start);
  if (conn->inbuf.size() > kMaxLineBytes) {
    counter("serve.errors").inc();
    send(conn, error_response("", "parse_error",
                              "request line exceeds 1 MiB"));
    conn->closed = true;
  }
  if (conn->closed) conn->close_fd();
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  counter("serve.requests").inc();
  ParseResult parsed = parse_request(line, opt_.enable_debug_ops);
  if (!parsed.ok) {
    counter("serve.errors").inc();
    send(conn, error_response(parsed.id, parsed.error, parsed.message));
    return;
  }
  const Request& req = parsed.req;
  if (flight::enabled()) {
    flight::record(
        flight::Kind::kServeRequest, to_string(req.op),
        telemetry::Registry::global().gauge("serve.queue_depth").value());
  }
  switch (req.op) {
    case Op::kPing: {
      ResponseWriter w = ok_response(req.id, Op::kPing);
      w.field("resident", static_cast<std::uint64_t>(registry_.size()));
      send(conn, std::move(w).done());
      return;
    }
    case Op::kList:
      send(conn, list_response(req.id));
      return;
    case Op::kStats:
      send(conn, stats_response(req.id));
      return;
    case Op::kMetrics:
      // Served inline like stats: the IO thread reads only relaxed atomics,
      // so metrics answer even while the worker is wedged mid-check — the
      // moment a scrape matters most.
      send(conn, metrics_response(req.id, req.format));
      return;
    case Op::kLoad:
      // Loading parses, annotates and decomposes a whole netlist — worker
      // work. Done inline it would stall accepts, pings and reads for
      // every client for the duration.
      enqueue(conn, req);
      return;
    case Op::kUnload: {
      if (!registry_.unload(req.name)) {
        counter("serve.errors").inc();
        send(conn, error_response(req.id, Op::kUnload, "unknown_circuit",
                                  "no circuit named \"" + req.name + "\""));
        return;
      }
      ResponseWriter w = ok_response(req.id, Op::kUnload);
      w.field("name", req.name);
      send(conn, std::move(w).done());
      return;
    }
    case Op::kShutdown: {
      ResponseWriter w = ok_response(req.id, Op::kShutdown);
      send(conn, std::move(w).done());
      request_shutdown();
      return;
    }
    case Op::kCheck:
    case Op::kDebugStall:
      enqueue(conn, req);
      return;
  }
}

void Server::handle_load(const std::shared_ptr<Connection>& conn,
                         const Request& req) {
  Circuit c;
  try {
    c = load_circuit(req.file, req.delays);
  } catch (const std::exception& e) {
    counter("serve.errors").inc();
    send(conn, error_response(req.id, Op::kLoad, "load_failed", e.what()));
    return;
  }
  const std::string hash = content_hash_hex(c);
  if (!req.hash.empty() && req.hash != hash) {
    counter("serve.errors").inc();
    send(conn, error_response(req.id, Op::kLoad, "hash_mismatch",
                              "expected hash " + req.hash +
                                  " but \"" + req.file + "\" hashes to " +
                                  hash));
    return;
  }
  LoadOutcome out = registry_.load(req.name, std::move(c));
  if (out.hash_mismatch) {
    counter("serve.errors").inc();
    send(conn, error_response(
                   req.id, Op::kLoad, "hash_mismatch",
                   "name \"" + req.name + "\" is bound to hash " +
                       out.existing_hash + ", refusing to rebind to " + hash +
                       " (unload first)"));
    return;
  }
  ResponseWriter w = ok_response(req.id, Op::kLoad);
  w.field("name", out.resident->name());
  w.field("hash", out.resident->hash());
  w.field("circuit", out.resident->circuit().name());
  w.field("nets",
          static_cast<std::uint64_t>(out.resident->circuit().num_nets()));
  w.field("gates",
          static_cast<std::uint64_t>(out.resident->circuit().num_gates()));
  w.field("inputs", static_cast<std::uint64_t>(
                        out.resident->circuit().inputs().size()));
  w.field("outputs", static_cast<std::uint64_t>(
                         out.resident->circuit().outputs().size()));
  w.field("already_loaded", out.already_loaded);
  send(conn, std::move(w).done());
}

void Server::enqueue(const std::shared_ptr<Connection>& conn,
                     const Request& req) {
  Pending p;
  p.conn = conn;
  p.req = req;
  p.enqueued_ns = prof::monotonic_ns();
  const std::uint64_t timeout_ms =
      req.timeout_ms ? *req.timeout_ms : opt_.default_timeout_ms;
  if (req.op == Op::kCheck && timeout_ms > 0) {
    p.expiry_ns = p.enqueued_ns + timeout_ms * 1'000'000ull;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= opt_.queue_cap) {
      counter("serve.overloaded").inc();
      counter("serve.errors").inc();
      send(conn, error_response(req.id, req.op, "overloaded",
                                "check queue full (cap " +
                                    std::to_string(opt_.queue_cap) + ")"));
      // Shedding load is an incident worth evidence: what filled the queue
      // is in the rings. Rate-limited inside dump_blackbox, so a rejection
      // storm writes one dump, not thousands.
      flight::dump_blackbox("overloaded");
      return;
    }
    queue_.push_back(std::move(p));
    telemetry::Registry::global()
        .gauge("serve.queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stop_worker_ || !queue_.empty(); });
      if (stop_worker_) break;  // leftovers drain below, as errors
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (batch[0].req.op == Op::kCheck) {
        // Coalesce: every queued check for the same circuit joins this
        // batch (order within the batch is queue order; unrelated requests
        // keep their positions).
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < opt_.max_batch;) {
          if (it->req.op == Op::kLoad && it->req.name == batch[0].req.circuit) {
            // A pending load for this circuit is a reorder barrier: a check
            // queued behind it must see its effect, not jump the queue.
            break;
          }
          if (it->req.op == Op::kCheck &&
              it->req.circuit == batch[0].req.circuit) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      telemetry::Registry::global()
          .gauge("serve.queue_depth")
          .set(static_cast<std::int64_t>(queue_.size()));
    }
    run_batch(std::move(batch));
  }

  std::deque<Pending> rest;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    rest.swap(queue_);
  }
  for (const Pending& p : rest) {
    counter("serve.errors").inc();
    send(p.conn, error_response(p.req.id, p.req.op, "shutting_down",
                                "server is shutting down"));
  }
}

void Server::run_batch(std::vector<Pending> batch) {
  if (batch[0].req.op == Op::kDebugStall) {
    run_stall(batch[0]);
    return;
  }
  if (batch[0].req.op == Op::kLoad) {
    if (prof::heartbeat_enabled()) {
      prof::ActivityBoard::begin_check("load", -1);
    }
    handle_load(batch[0].conn, batch[0].req);
    if (prof::heartbeat_enabled()) {
      prof::ActivityBoard::end_check();
    }
    return;
  }
  counter("serve.batches").inc();
  counter("serve.batch.coalesced").add(batch.size() - 1);
  ResidentPtr resident = registry_.get(batch[0].req.circuit);
  if (resident == nullptr) {
    for (const Pending& p : batch) {
      counter("serve.errors").inc();
      send(p.conn,
           error_response(p.req.id, Op::kCheck, "unknown_circuit",
                          "no circuit named \"" + p.req.circuit +
                              "\" (load it first)"));
    }
    return;
  }
  resident->stats().batches.fetch_add(1, std::memory_order_relaxed);
  run_checks(resident, std::move(batch));
}

void Server::run_checks(const ResidentPtr& resident,
                        std::vector<Pending> group) {
  const Circuit& c = resident->circuit();
  Verifier& v = resident->verifier();

  // Requests whose deadline passed while queued: answered without running.
  std::vector<Pending> live;
  live.reserve(group.size());
  const std::uint64_t now = prof::monotonic_ns();
  bool queue_expired = false;
  for (Pending& p : group) {
    if (p.expiry_ns != 0 && now >= p.expiry_ns) {
      counter("serve.deadline_expired").inc();
      counter("serve.errors").inc();
      send(p.conn, error_response(p.req.id, Op::kCheck, "deadline_expired",
                                  "deadline passed while queued"));
      queue_expired = true;
    } else {
      live.push_back(std::move(p));
    }
  }
  if (queue_expired) {
    // A request that rotted in the queue means the worker fell behind its
    // clients; the rings say on what.
    flight::dump_blackbox("deadline_expired");
  }
  if (live.empty()) return;
  resident->ensure_prepared();
  ResidentStats& rstats = resident->stats();
  auto& reg = telemetry::Registry::global();

  // Dedup identical work within the batch: one engine run per distinct
  // (delta, output), fanned out to every requester. First-seen order.
  std::map<std::pair<std::int64_t, std::string>, std::size_t> index;
  std::vector<std::vector<Pending>> unique_runs;
  for (Pending& p : live) {
    const auto key = std::make_pair(p.req.delta, p.req.output);
    const auto it = index.find(key);
    if (it == index.end()) {
      index.emplace(key, unique_runs.size());
      unique_runs.push_back({});
      unique_runs.back().push_back(std::move(p));
    } else {
      counter("serve.batch.deduped").inc();
      rstats.deduped.fetch_add(1, std::memory_order_relaxed);
      unique_runs[it->second].push_back(std::move(p));
    }
  }
  if (flight::enabled()) {
    flight::record(flight::Kind::kServeBatch, resident->name(),
                   static_cast<std::int64_t>(live.size()),
                   static_cast<std::int64_t>(unique_runs.size()));
  }

  for (std::vector<Pending>& run : unique_runs) {
    // The run's deadline is the loosest among its requesters: a no-deadline
    // requester keeps the run unbounded, otherwise the max expiry wins (a
    // tighter requester may receive its answer late rather than never).
    std::uint64_t expiry = 0;
    bool unbounded = false;
    for (const Pending& p : run) {
      if (p.expiry_ns == 0) unbounded = true;
      expiry = std::max(expiry, p.expiry_ns);
    }
    if (unbounded) expiry = 0;

    const Request& rq = run.front().req;
    const Time delta(rq.delta);
    const std::uint64_t run_start_ns = prof::monotonic_ns();
    std::string conclusion;
    std::string report;
    if (rq.output.empty()) {
      counter("serve.checks").inc();
      resident->stats().checks.fetch_add(1, std::memory_order_relaxed);
      sched::CheckScheduler& s = resident->scheduler();
      s.token().arm_deadline(expiry);
      v.set_deadline_ns(expiry);
      const SuiteReport rep = s.check_circuit(delta);
      s.token().arm_deadline(0);
      v.set_deadline_ns(0);
      conclusion = to_string(rep.conclusion);
      report = canonical_json(c, rep);
    } else {
      const auto net = c.find_net(rq.output);
      if (!net) {
        for (const Pending& p : run) {
          counter("serve.errors").inc();
          send(p.conn,
               error_response(p.req.id, Op::kCheck, "unknown_output",
                              "circuit \"" + p.req.circuit +
                                  "\" has no net \"" + rq.output + "\""));
        }
        continue;
      }
      counter("serve.checks").inc();
      resident->stats().checks.fetch_add(1, std::memory_order_relaxed);
      v.set_deadline_ns(expiry);
      const CheckReport rep = v.check_output(*net, delta);
      v.set_deadline_ns(0);
      conclusion = to_string(rep.conclusion);
      report = canonical_json(c, rep);
    }

    const std::uint64_t done_ns = prof::monotonic_ns();
    bool run_expired = false;
    for (const Pending& p : run) {
      const bool expired = p.expiry_ns != 0 && done_ns >= p.expiry_ns;
      if (expired) {
        counter("serve.deadline_expired").inc();
        run_expired = true;
      }
      // Latency split at the worker-pickup boundary: `now` (batch pickup)
      // closes the queued leg for every requester; the engine leg is shared
      // by the whole dedup group — a fanned-out requester waited for the
      // same run.
      const std::uint64_t queued_ns = now > p.enqueued_ns
                                          ? now - p.enqueued_ns : 0;
      rstats.requests.fetch_add(1, std::memory_order_relaxed);
      rstats.queued_us.observe_ns(queued_ns);
      rstats.engine_us.observe_ns(done_ns - run_start_ns);
      reg.time_histogram("serve.latency.queued_us").observe_ns(queued_ns);
      reg.time_histogram("serve.latency.engine_us")
          .observe_ns(done_ns - run_start_ns);
      ResponseWriter w = ok_response(p.req.id, Op::kCheck);
      w.field("circuit", p.req.circuit);
      w.field("delta", p.req.delta);
      if (!p.req.output.empty()) w.field("output", p.req.output);
      w.field("conclusion", conclusion);
      w.field("deadline_expired", expired);
      // "report" is deliberately last: its raw bytes run to the final
      // closing brace, so clients can slice them out for byte comparison
      // against `waveck check --json --canon`.
      w.raw("report", report);
      send(p.conn, std::move(w).done());
    }
    if (run_expired) flight::dump_blackbox("deadline_expired");
  }
}

void Server::run_stall(const Pending& p) {
  // Deliberately wedge: occupy the worker without advancing any progress
  // tick, so the supervisor's watchdog has something real to detect.
  if (flight::enabled()) {
    flight::record(flight::Kind::kMark, "debug_stall",
                   static_cast<std::int64_t>(p.req.stall_ms));
  }
  if (prof::heartbeat_enabled()) {
    prof::ActivityBoard::begin_check("debug_stall", -1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(p.req.stall_ms));
  if (prof::heartbeat_enabled()) {
    prof::ActivityBoard::end_check();
  }
  ResponseWriter w = ok_response(p.req.id, Op::kDebugStall);
  w.field("stalled_ms", p.req.stall_ms);
  send(p.conn, std::move(w).done());
}

void Server::send(const std::shared_ptr<Connection>& conn,
                  const std::string& line) {
  counter("serve.responses").inc();
  if (flight::enabled()) {
    // Pull "op" and "ok" back out of the rendered envelope — the fixed key
    // order makes this two substring finds, not a parse.
    std::string_view op = "?";
    const std::size_t k = line.find("\"op\":\"");
    if (k != std::string::npos) {
      const std::size_t v = k + 6;
      const std::size_t e = line.find('"', v);
      if (e != std::string::npos) {
        op = std::string_view(line).substr(v, e - v);
      }
    }
    const bool ok = line.find("\"ok\":true") != std::string::npos;
    flight::record(flight::Kind::kServeResponse, op,
                   static_cast<std::int64_t>(line.size()), 0, ok ? 1 : 0);
  }
  conn->write_line(line);
}

std::string Server::list_response(const std::string& id) {
  const std::vector<ResidentInfo> infos = registry_.list();
  std::string arr = "[";
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const ResidentInfo& info = infos[i];
    if (i > 0) arr += ",";
    arr += "{\"name\":\"" + telemetry::json_escape(info.name) +
           "\",\"hash\":\"" + info.hash +
           "\",\"nets\":" + std::to_string(info.nets) +
           ",\"gates\":" + std::to_string(info.gates) +
           ",\"inputs\":" + std::to_string(info.inputs) +
           ",\"outputs\":" + std::to_string(info.outputs) +
           ",\"checks\":" + std::to_string(info.checks) + "}";
  }
  arr += "]";
  ResponseWriter w = ok_response(id, Op::kList);
  w.field("resident", static_cast<std::uint64_t>(infos.size()));
  w.raw("circuits", arr);
  return std::move(w).done();
}

namespace {

/// Counters surfaced by the stats op, the structured exit line and the
/// stall line; "serve.requests" becomes field "requests" (the +6 below).
constexpr const char* kStatKeys[] = {
    "serve.requests",       "serve.responses",
    "serve.errors",         "serve.overloaded",
    "serve.deadline_expired", "serve.checks",
    "serve.batches",        "serve.batch.coalesced",
    "serve.batch.deduped",  "serve.loads",
    "serve.unloads",        "serve.prepare.runs",
};

std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// One TimeHistogram as a JSON object, matching the registry's
/// "time_histograms" entry shape so explain/tooling parses both the same.
std::string time_hist_json(const telemetry::TimeHistogram& h) {
  std::string out = "{\"count\":" + std::to_string(h.count()) +
                    ",\"sum_us\":" + std::to_string(h.sum_us()) +
                    ",\"buckets\":[";
  for (std::size_t i = 0; i < telemetry::TimeHistogram::kBuckets; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(h.bucket(i));
  }
  out += "],\"p50_us\":" + fmt3(h.quantile_us(0.50)) +
         ",\"p90_us\":" + fmt3(h.quantile_us(0.90)) +
         ",\"p99_us\":" + fmt3(h.quantile_us(0.99)) + "}";
  return out;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string prom_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  return out;
}

/// One TimeHistogram as labeled Prometheus histogram series. The base
/// `# TYPE` line is emitted once by the caller; labels carry the circuit
/// namespace and the queued/engine leg.
void prom_time_hist(std::string& os, const std::string& name,
                    const std::string& labels,
                    const telemetry::TimeHistogram& h) {
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < telemetry::TimeHistogram::kBoundsUs.size();
       ++i) {
    cum += h.bucket(i);
    os += name + "_bucket{" + labels + ",le=\"" +
          std::to_string(telemetry::TimeHistogram::kBoundsUs[i]) + "\"} " +
          std::to_string(cum) + "\n";
  }
  cum += h.bucket(telemetry::TimeHistogram::kBuckets - 1);
  os += name + "_bucket{" + labels + ",le=\"+Inf\"} " +
        std::to_string(cum) + "\n";
  os += name + "_sum{" + labels + "} " + std::to_string(h.sum_us()) + "\n";
  os += name + "_count{" + labels + "} " + std::to_string(h.count()) + "\n";
}

}  // namespace

double Server::uptime_s() const {
  return static_cast<double>(prof::monotonic_ns() - start_ns_) * 1e-9;
}

std::string Server::stats_response(const std::string& id) {
  auto& reg = telemetry::Registry::global();
  ResponseWriter w = ok_response(id, Op::kStats);
  w.field("resident", static_cast<std::uint64_t>(registry_.size()));
  w.field("uptime_s", uptime_s());
  for (const char* key : kStatKeys) {
    w.field(key + 6, reg.counter(key).value());
  }
  w.field("queue_depth",
          static_cast<std::int64_t>(reg.gauge("serve.queue_depth").value()));
  w.field("queue_depth_hw",
          static_cast<std::int64_t>(
              reg.gauge("serve.queue_depth").high_water()));
  w.field("queue_cap", static_cast<std::uint64_t>(opt_.queue_cap));
  // Batching effectiveness as ratios, not just raw counters: avg_batch is
  // check requests per worker wakeup, dedup_ratio the fraction of batched
  // requests that rode a twin's engine run.
  const double batches =
      static_cast<double>(reg.counter("serve.batches").value());
  const double coalesced =
      static_cast<double>(reg.counter("serve.batch.coalesced").value());
  const double deduped =
      static_cast<double>(reg.counter("serve.batch.deduped").value());
  w.field("avg_batch", batches > 0.0 ? (batches + coalesced) / batches : 0.0);
  w.field("dedup_ratio",
          batches + coalesced > 0.0 ? deduped / (batches + coalesced) : 0.0);
  // Resident table: per-namespace request counts and latency quantiles.
  std::string arr = "[";
  bool first = true;
  for (const ResidentPtr& r : registry_.snapshot()) {
    const ResidentStats& s = r->stats();
    if (!first) arr += ",";
    first = false;
    arr += "{\"name\":\"" + telemetry::json_escape(r->name()) +
           "\",\"hash\":\"" + r->hash() +
           "\",\"checks\":" +
           std::to_string(s.checks.load(std::memory_order_relaxed)) +
           ",\"requests\":" +
           std::to_string(s.requests.load(std::memory_order_relaxed)) +
           ",\"deduped\":" +
           std::to_string(s.deduped.load(std::memory_order_relaxed)) +
           ",\"batches\":" +
           std::to_string(s.batches.load(std::memory_order_relaxed)) +
           ",\"queued_p50_us\":" + fmt3(s.queued_us.quantile_us(0.50)) +
           ",\"queued_p99_us\":" + fmt3(s.queued_us.quantile_us(0.99)) +
           ",\"engine_p50_us\":" + fmt3(s.engine_us.quantile_us(0.50)) +
           ",\"engine_p99_us\":" + fmt3(s.engine_us.quantile_us(0.99)) + "}";
  }
  arr += "]";
  w.raw("circuits", arr);
  return std::move(w).done();
}

std::string Server::metrics_response(const std::string& id,
                                     const std::string& format) {
  auto& reg = telemetry::Registry::global();
  const std::vector<ResidentPtr> residents = registry_.snapshot();
  if (format == "prometheus") {
    // Full exposition text, shipped as one escaped string field: clients
    // (`waveck client metrics --format prometheus`, the CI scraper) unwrap
    // "body" and hand it to a Prometheus parser verbatim.
    std::string body = reg.to_prometheus("waveck");
    if (!residents.empty()) {
      body += "# TYPE waveck_serve_namespace_requests_total counter\n";
      for (const ResidentPtr& r : residents) {
        const ResidentStats& s = r->stats();
        const std::string lbl = "circuit=\"" + prom_label(r->name()) + "\"";
        body += "waveck_serve_namespace_requests_total{" + lbl + "} " +
                std::to_string(s.requests.load(std::memory_order_relaxed)) +
                "\n";
      }
      body += "# TYPE waveck_serve_namespace_deduped_total counter\n";
      for (const ResidentPtr& r : residents) {
        const ResidentStats& s = r->stats();
        const std::string lbl = "circuit=\"" + prom_label(r->name()) + "\"";
        body += "waveck_serve_namespace_deduped_total{" + lbl + "} " +
                std::to_string(s.deduped.load(std::memory_order_relaxed)) +
                "\n";
      }
      body += "# TYPE waveck_serve_namespace_latency_us histogram\n";
      for (const ResidentPtr& r : residents) {
        const ResidentStats& s = r->stats();
        const std::string lbl = "circuit=\"" + prom_label(r->name()) + "\"";
        prom_time_hist(body, "waveck_serve_namespace_latency_us",
                       lbl + ",leg=\"queued\"", s.queued_us);
        prom_time_hist(body, "waveck_serve_namespace_latency_us",
                       lbl + ",leg=\"engine\"", s.engine_us);
      }
    }
    ResponseWriter w = ok_response(id, Op::kMetrics);
    w.field("format", "prometheus");
    w.field("uptime_s", uptime_s());
    w.field("body", body);
    return std::move(w).done();
  }
  ResponseWriter w = ok_response(id, Op::kMetrics);
  w.field("format", "json");
  w.field("uptime_s", uptime_s());
  w.raw("registry", reg.to_json());
  std::string arr = "[";
  bool first = true;
  for (const ResidentPtr& r : residents) {
    const ResidentStats& s = r->stats();
    if (!first) arr += ",";
    first = false;
    arr += "{\"name\":\"" + telemetry::json_escape(r->name()) +
           "\",\"requests\":" +
           std::to_string(s.requests.load(std::memory_order_relaxed)) +
           ",\"deduped\":" +
           std::to_string(s.deduped.load(std::memory_order_relaxed)) +
           ",\"queued_us\":" + time_hist_json(s.queued_us) +
           ",\"engine_us\":" + time_hist_json(s.engine_us) + "}";
  }
  arr += "]";
  w.raw("namespaces", arr);
  return std::move(w).done();
}

std::string Server::stats_json() {
  auto& reg = telemetry::Registry::global();
  std::string out = "{";
  for (const char* key : kStatKeys) {
    out += "\"";
    out += key + 6;
    out += "\":" + std::to_string(reg.counter(key).value()) + ",";
  }
  out += "\"queue_depth_hw\":" +
         std::to_string(reg.gauge("serve.queue_depth").high_water()) +
         ",\"resident\":" + std::to_string(registry_.size()) +
         ",\"uptime_s\":" + fmt3(uptime_s()) + "}";
  return out;
}

void Server::final_stats_line() {
  // Human prefix, machine payload: `grep waveck-serve:` still works, and
  // everything after "exiting " is one parseable JSON object — the same
  // shape the watchdog's "stalled" line carries.
  std::cerr << "waveck-serve: exiting " << stats_json() << "\n";
}

}  // namespace waveck::serve
