// Wire protocol of the waveck serve daemon (doc/SERVE.md).
//
// Transport is a byte stream (Unix-domain or TCP socket) carrying JSONL in
// both directions: one flat JSON object per \n-terminated line. Requests
// reuse the trace-line grammar (explain/trace_reader.hpp) — the engine's
// canonical-JSON discipline is the wire format, not a second dialect — so a
// request is any flat object with an "op" field; nested values are a parse
// error by construction.
//
// Responses always carry "ok". Failures add "error" (a stable machine code
// from kErrorCodes below) and "message" (human text, may change). Check
// responses embed the canonical check report (verify/report_io.hpp
// canonical_json) as the *last* key of the envelope, so the raw report
// bytes are extractable by suffix and byte-comparable against an offline
// `waveck check --json --canon` run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace waveck::serve {

/// Stable "error" codes (doc/SERVE.md documents each):
///   parse_error      malformed request line
///   unknown_op       "op" not in the table (or debug op while disabled)
///   missing_field    a required field is absent or has the wrong type
///   unknown_circuit  check/unload names a circuit that is not resident
///   hash_mismatch    load under an existing name with different content
///   load_failed      netlist file unreadable/invalid
///   overloaded       admission control: the bounded queue is full
///   deadline_expired the request's deadline passed before it ran
///   shutting_down    the server is draining; request not executed
enum class Op : std::uint8_t {
  kPing,
  kLoad,
  kUnload,
  kList,
  kStats,
  kMetrics,  // registry snapshot + latency histograms (json or prometheus)
  kCheck,
  kShutdown,
  kDebugStall,  // --enable-debug-ops only: wedge the worker for "ms"
};

[[nodiscard]] const char* to_string(Op op);

/// One parsed request. Optional fields keep their "absent" encoding so the
/// server can distinguish "not given" from a zero value.
struct Request {
  Op op = Op::kPing;
  std::string id;  // client correlation id, echoed verbatim ("" = none)

  // load
  std::string name;    // also unload
  std::string file;    // netlist path (.bench / .v), server-side
  std::string delays;  // optional delay-annotation path
  std::string hash;    // optional expected content hash (hex)

  // check
  std::string circuit;
  std::int64_t delta = 0;
  std::string output;  // "" = whole-circuit suite check
  std::optional<std::uint64_t> timeout_ms;

  // metrics: "" (= "json"), "json", or "prometheus"
  std::string format;

  // debug_stall
  std::uint64_t stall_ms = 0;
};

/// Outcome of parsing one request line. On failure `error`/`message` hold
/// the response code and human text (the id, when recoverable, is echoed).
struct ParseResult {
  bool ok = false;
  Request req;
  std::string error;    // "" when ok
  std::string message;  // "" when ok
  std::string id;       // best-effort echo even on failure
};

/// Parses one JSONL request line. Never throws.
[[nodiscard]] ParseResult parse_request(const std::string& line,
                                        bool debug_ops_enabled);

/// Response envelope assembly. Key order is fixed (id? op ok ...), so equal
/// responses are byte-equal — the protocol inherits the determinism
/// contract's comparability.
class ResponseWriter {
 public:
  explicit ResponseWriter(const std::string& id, const char* op);

  ResponseWriter& field(const char* key, const std::string& v);
  ResponseWriter& field(const char* key, const char* v);
  ResponseWriter& field(const char* key, std::int64_t v);
  ResponseWriter& field(const char* key, std::uint64_t v);
  ResponseWriter& field(const char* key, bool v);
  /// Fixed three-decimal rendering (uptime seconds, ratios): doubles on the
  /// wire stay byte-stable across platforms.
  ResponseWriter& field(const char* key, double v);
  /// Splices a pre-serialised JSON value (e.g. a canonical report).
  ResponseWriter& raw(const char* key, const std::string& json);

  /// Finishes the line: "...}\n".
  [[nodiscard]] std::string done() &&;

 private:
  std::string out_;
};

/// "{...,"ok":true,...}\n"
[[nodiscard]] ResponseWriter ok_response(const std::string& id, Op op);
/// "{...,"ok":false,"error":CODE,"message":MSG}\n"
[[nodiscard]] std::string error_response(const std::string& id, Op op,
                                         const std::string& code,
                                         const std::string& message);
/// Same, for lines that failed before an op was known.
[[nodiscard]] std::string error_response(const std::string& id,
                                         const std::string& code,
                                         const std::string& message);

}  // namespace waveck::serve
