// Minimal blocking JSONL client for the serve protocol.
//
// One request line out, one response line back; used by the `waveck
// client` subcommand and the in-process protocol tests. Intentionally
// dependency-free: a client needs none of the engine.
#pragma once

#include <optional>
#include <string>

namespace waveck::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain socket. False + `*err` on failure.
  bool connect_unix(const std::string& path, std::string* err);
  /// Connects to a loopback TCP port.
  bool connect_tcp(int port, std::string* err);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one request line (a trailing '\n' is added when missing).
  bool send_line(const std::string& line);
  /// Receives the next response line (without the '\n'). False on EOF or
  /// error.
  bool recv_line(std::string* out);
  /// send_line + recv_line.
  [[nodiscard]] std::optional<std::string> round_trip(
      const std::string& line);

  void close();

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace waveck::serve
