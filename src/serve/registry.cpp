#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

#include "common/telemetry.hpp"
#include "netlist/content_hash.hpp"

namespace waveck::serve {

namespace {

VerifyOptions resident_options() {
  // The cache is the point of residency: repeated checks on the same
  // circuit reuse carriers/dominators across requests.
  VerifyOptions opt;
  opt.use_carrier_cache = true;
  return opt;
}

}  // namespace

ResidentCircuit::ResidentCircuit(std::string name, Circuit c,
                                 std::size_t jobs,
                                 const std::atomic<bool>* cancel_flag)
    : name_(std::move(name)),
      circuit_(std::move(c)),
      verifier_(circuit_, resident_options()),
      scheduler_(verifier_, {.jobs = jobs}) {
  hash_ = content_hash_hex(circuit_);
  verifier_.set_cancel_flag(cancel_flag);
}

bool ResidentCircuit::ensure_prepared() {
  if (prepared_) return false;
  verifier_.prepare_shared();
  prepared_ = true;
  stats_.prepare_runs.fetch_add(1, std::memory_order_relaxed);
  telemetry::Registry::global().counter("serve.prepare.runs").inc();
  return true;
}

LoadOutcome CircuitRegistry::load(const std::string& name, Circuit c) {
  const std::string fresh_hash = content_hash_hex(c);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    LoadOutcome out;
    out.existing_hash = it->second->hash();
    if (out.existing_hash == fresh_hash) {
      out.resident = it->second;
      out.already_loaded = true;
    } else {
      out.hash_mismatch = true;
    }
    return out;
  }
  LoadOutcome out;
  out.resident = std::make_shared<ResidentCircuit>(name, std::move(c), jobs_,
                                                   cancel_flag_);
  by_name_.emplace(name, out.resident);
  telemetry::Registry::global().counter("serve.loads").inc();
  return out;
}

bool CircuitRegistry::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = by_name_.erase(name) > 0;
  if (erased) {
    telemetry::Registry::global().counter("serve.unloads").inc();
  }
  return erased;
}

ResidentPtr CircuitRegistry::get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<ResidentInfo> CircuitRegistry::list() {
  std::vector<ResidentInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(by_name_.size());
    for (const auto& [name, res] : by_name_) {
      ResidentInfo info;
      info.name = name;
      info.hash = res->hash();
      info.nets = res->circuit().num_nets();
      info.gates = res->circuit().num_gates();
      info.inputs = res->circuit().inputs().size();
      info.outputs = res->circuit().outputs().size();
      info.checks = res->stats().checks.load(std::memory_order_relaxed);
      out.push_back(std::move(info));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ResidentInfo& a, const ResidentInfo& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<ResidentPtr> CircuitRegistry::snapshot() {
  std::vector<ResidentPtr> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(by_name_.size());
    for (const auto& [name, res] : by_name_) out.push_back(res);
  }
  std::sort(out.begin(), out.end(),
            [](const ResidentPtr& a, const ResidentPtr& b) {
              return a->name() < b->name();
            });
  return out;
}

std::size_t CircuitRegistry::size() {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.size();
}

}  // namespace waveck::serve
