#include "serve/protocol.hpp"

#include <cstdio>
#include <utility>

#include "common/telemetry.hpp"
#include "explain/trace_reader.hpp"

namespace waveck::serve {
namespace {

ParseResult fail(std::string id, std::string code, std::string message) {
  ParseResult r;
  r.ok = false;
  r.id = std::move(id);
  r.error = std::move(code);
  r.message = std::move(message);
  return r;
}

/// Required string field: non-empty string value.
bool need_str(const explain::TraceEvent& ev, const char* key,
              std::string* out) {
  const explain::TraceValue* v = ev.find(key);
  if (v == nullptr || v->kind != explain::TraceValue::Kind::kString ||
      v->str.empty()) {
    return false;
  }
  *out = v->str;
  return true;
}

/// Optional string field ("" when absent).
std::string opt_str(const explain::TraceEvent& ev, const char* key) {
  const explain::TraceValue* v = ev.find(key);
  if (v == nullptr || v->kind != explain::TraceValue::Kind::kString) return "";
  return v->str;
}

bool opt_num(const explain::TraceEvent& ev, const char* key,
             std::int64_t* out) {
  const explain::TraceValue* v = ev.find(key);
  if (v == nullptr || v->kind != explain::TraceValue::Kind::kNumber) {
    return false;
  }
  *out = v->i;
  return true;
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kLoad: return "load";
    case Op::kUnload: return "unload";
    case Op::kList: return "list";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kCheck: return "check";
    case Op::kShutdown: return "shutdown";
    case Op::kDebugStall: return "debug_stall";
  }
  return "?";
}

ParseResult parse_request(const std::string& line, bool debug_ops_enabled) {
  explain::TraceEvent ev;
  std::string err;
  if (!explain::parse_flat_object(line, ev, err)) {
    return fail("", "parse_error", err);
  }
  const std::string id = opt_str(ev, "id");
  std::string op_name;
  if (!need_str(ev, "op", &op_name)) {
    return fail(id, "missing_field", "request needs a string \"op\" field");
  }

  ParseResult r;
  r.ok = true;
  r.id = id;
  r.req.id = id;
  Request& q = r.req;

  if (op_name == "ping") {
    q.op = Op::kPing;
  } else if (op_name == "list") {
    q.op = Op::kList;
  } else if (op_name == "stats") {
    q.op = Op::kStats;
  } else if (op_name == "metrics") {
    q.op = Op::kMetrics;
    q.format = opt_str(ev, "format");
    if (!q.format.empty() && q.format != "json" && q.format != "prometheus") {
      return fail(id, "missing_field",
                  "metrics \"format\" must be \"json\" or \"prometheus\"");
    }
  } else if (op_name == "shutdown") {
    q.op = Op::kShutdown;
  } else if (op_name == "load") {
    q.op = Op::kLoad;
    if (!need_str(ev, "name", &q.name)) {
      return fail(id, "missing_field", "load needs \"name\"");
    }
    if (!need_str(ev, "file", &q.file)) {
      return fail(id, "missing_field", "load needs \"file\"");
    }
    q.delays = opt_str(ev, "delays");
    q.hash = opt_str(ev, "hash");
  } else if (op_name == "unload") {
    q.op = Op::kUnload;
    if (!need_str(ev, "name", &q.name)) {
      return fail(id, "missing_field", "unload needs \"name\"");
    }
  } else if (op_name == "check") {
    q.op = Op::kCheck;
    if (!need_str(ev, "circuit", &q.circuit)) {
      return fail(id, "missing_field", "check needs \"circuit\"");
    }
    if (!opt_num(ev, "delta", &q.delta)) {
      return fail(id, "missing_field", "check needs a numeric \"delta\"");
    }
    q.output = opt_str(ev, "output");
    std::int64_t tmo = 0;
    if (opt_num(ev, "timeout_ms", &tmo)) {
      if (tmo < 0) {
        return fail(id, "missing_field", "\"timeout_ms\" must be >= 0");
      }
      q.timeout_ms = static_cast<std::uint64_t>(tmo);
    }
  } else if (op_name == "debug_stall") {
    // Hidden behind --enable-debug-ops: reported as unknown when disabled,
    // so production servers don't advertise a self-wedging endpoint.
    if (!debug_ops_enabled) {
      return fail(id, "unknown_op", "unknown op \"" + op_name + "\"");
    }
    q.op = Op::kDebugStall;
    std::int64_t ms = 0;
    if (!opt_num(ev, "ms", &ms) || ms < 0) {
      return fail(id, "missing_field", "debug_stall needs a numeric \"ms\"");
    }
    q.stall_ms = static_cast<std::uint64_t>(ms);
  } else {
    return fail(id, "unknown_op", "unknown op \"" + op_name + "\"");
  }
  return r;
}

ResponseWriter::ResponseWriter(const std::string& id, const char* op) {
  out_.reserve(128);
  out_ += '{';
  if (!id.empty()) {
    out_ += "\"id\":\"";
    out_ += telemetry::json_escape(id);
    out_ += "\",";
  }
  out_ += "\"op\":\"";
  out_ += op;
  out_ += '"';
}

ResponseWriter& ResponseWriter::field(const char* key, const std::string& v) {
  out_ += ",\"";
  out_ += key;
  out_ += "\":\"" + telemetry::json_escape(v) + "\"";
  return *this;
}

ResponseWriter& ResponseWriter::field(const char* key, const char* v) {
  return field(key, std::string(v));
}

ResponseWriter& ResponseWriter::field(const char* key, std::int64_t v) {
  out_ += ",\"";
  out_ += key;
  out_ += "\":" + std::to_string(v);
  return *this;
}

ResponseWriter& ResponseWriter::field(const char* key, std::uint64_t v) {
  out_ += ",\"";
  out_ += key;
  out_ += "\":" + std::to_string(v);
  return *this;
}

ResponseWriter& ResponseWriter::field(const char* key, bool v) {
  out_ += ",\"";
  out_ += key;
  out_ += v ? "\":true" : "\":false";
  return *this;
}

ResponseWriter& ResponseWriter::field(const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out_ += ",\"";
  out_ += key;
  out_ += "\":";
  out_ += buf;
  return *this;
}

ResponseWriter& ResponseWriter::raw(const char* key, const std::string& json) {
  out_ += ",\"";
  out_ += key;
  out_ += "\":" + json;
  return *this;
}

std::string ResponseWriter::done() && {
  out_ += "}\n";
  return std::move(out_);
}

ResponseWriter ok_response(const std::string& id, Op op) {
  ResponseWriter w(id, to_string(op));
  w.field("ok", true);
  return w;
}

namespace {

std::string error_response_impl(const std::string& id, const char* op,
                                const std::string& code,
                                const std::string& message) {
  ResponseWriter w(id, op);
  w.field("ok", false);
  w.field("error", code);
  w.field("message", message);
  return std::move(w).done();
}

}  // namespace

std::string error_response(const std::string& id, Op op,
                           const std::string& code,
                           const std::string& message) {
  return error_response_impl(id, to_string(op), code, message);
}

std::string error_response(const std::string& id, const std::string& code,
                           const std::string& message) {
  // Lines that failed before an op was recognisable respond as op "error".
  return error_response_impl(id, "error", code, message);
}

}  // namespace waveck::serve
