#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace waveck::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

bool Client::connect_unix(const std::string& path, std::string* err) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err != nullptr) {
      *err = "connect " + path + ": " + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

bool Client::connect_tcp(int port, std::string* err) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err != nullptr) {
      *err = "connect port " + std::to_string(port) + ": " +
             std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

bool Client::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string out = line;
  if (out.empty() || out.back() != '\n') out += '\n';
  const char* p = out.data();
  std::size_t n = out.size();
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool Client::recv_line(std::string* out) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *out = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> Client::round_trip(const std::string& line) {
  if (!send_line(line)) return std::nullopt;
  std::string out;
  if (!recv_line(&out)) return std::nullopt;
  return out;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

}  // namespace waveck::serve
