// Baseline topological static timing analysis (no false-path awareness).
//
// This is the conservative bound the paper improves on: the topological
// delay `top` (Table 1 column 2) and per-output arrival times. Reported
// next to the floating-mode results to show the pessimism removed by
// waveform narrowing.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

struct StaReport {
  Time topological_delay = Time::neg_inf();
  std::vector<std::pair<NetId, Time>> output_arrivals;  // sorted, worst first
  std::vector<NetId> critical_path;                     // input..worst output
};

[[nodiscard]] StaReport run_sta(const Circuit& c);

}  // namespace waveck
