#include "sta/path_enum.hpp"

#include <algorithm>
#include <queue>

#include "constraints/constraint_system.hpp"
#include "netlist/topo_delay.hpp"

namespace waveck {

bool statically_sensitizable(const Circuit& c,
                             const std::vector<NetId>& path) {
  if (path.size() < 2) return true;
  ConstraintSystem cs(c);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GateId drv = c.net(path[i]).driver;
    if (!drv.valid()) return false;  // malformed path
    const Gate& g = c.gate(drv);
    const NetId on_path = path[i - 1];

    if (has_controlling_value(g.type)) {
      const bool nc = !controlling_value(g.type);
      for (NetId in : g.ins) {
        if (in == on_path) continue;
        cs.restrict_domain(in, AbstractSignal::class_only(nc));
      }
    } else if (g.type == GateType::kMux) {
      // The select must route the on-path data leg; a path through the
      // select itself imposes no side requirement.
      if (on_path == g.ins[1]) {
        cs.restrict_domain(g.ins[0], AbstractSignal::class_only(false));
      } else if (on_path == g.ins[2]) {
        cs.restrict_domain(g.ins[0], AbstractSignal::class_only(true));
      }
    }
    // XOR/XNOR and unary gates: every input value propagates; no side
    // requirement.
    if (cs.inconsistent()) return false;
  }
  return cs.reach_fixpoint() == ConstraintSystem::Status::kPossibleViolation;
}

namespace {

/// Suffix arena node: net plus parent suffix (toward the output).
struct Node {
  NetId net;
  std::int32_t parent;
};

struct Entry {
  Time bound;          // top_net + suffix length: full-path upper bound
  std::int32_t node;   // arena index of the suffix head
  Time suffix;         // length of the suffix (node -> s)

  bool operator<(const Entry& o) const { return bound < o.bound; }
};

}  // namespace

PathEnumResult longest_sensitizable_path(const Circuit& c, NetId s,
                                         const PathEnumOptions& opt) {
  PathEnumResult res;
  const auto top = topo_arrival(c);

  std::vector<Node> arena;
  std::priority_queue<Entry> queue;
  arena.push_back({s, -1});
  queue.push({top[s.index()], 0, Time(0)});

  while (!queue.empty()) {
    const Entry e = queue.top();
    queue.pop();
    const NetId x = arena[e.node].net;

    if (!c.net(x).driver.valid()) {
      // Complete path (x is a primary input). Bound == exact length here.
      ++res.paths_enumerated;
      std::vector<NetId> path;
      for (std::int32_t n = e.node; n >= 0; n = arena[n].parent) {
        path.push_back(arena[n].net);
      }
      // arena chains suffixes output-first; walking parents yields
      // input..output order already.
      if (statically_sensitizable(c, path)) {
        ++res.paths_sensitizable;
        if (e.suffix > res.delay) {
          res.delay = e.suffix;
          res.path = path;
        }
        return res;  // longest-first order: first hit is the answer
      }
      if (res.paths_enumerated >= opt.max_paths) {
        res.budget_exhausted = true;
        return res;
      }
      continue;
    }

    const Gate& g = c.gate(c.net(x).driver);
    const Time nsuffix = e.suffix + g.delay.dmax;
    if (arena.size() > 64 * opt.max_paths + (1u << 16)) {
      res.budget_exhausted = true;  // frontier blow-up guard
      return res;
    }
    for (NetId in : g.ins) {
      if (opt.target != Time::neg_inf() &&
          top[in.index()] + nsuffix.value() < opt.target) {
        continue;  // cannot reach the target through this extension
      }
      arena.push_back({in, e.node});
      queue.push({top[in.index()] + nsuffix.value(),
                  std::int32_t(arena.size() - 1), nsuffix});
    }
  }
  return res;
}

PathEnumResult path_enum_delay(const Circuit& c, const PathEnumOptions& opt) {
  PathEnumResult best;
  const auto top = topo_arrival(c);
  std::vector<NetId> outs = c.outputs();
  std::sort(outs.begin(), outs.end(), [&](NetId a, NetId b) {
    return top[a.index()] > top[b.index()];
  });
  for (NetId o : outs) {
    if (top[o.index()] <= best.delay) break;  // cannot improve
    PathEnumOptions sub = opt;
    sub.target = best.delay == Time::neg_inf() ? opt.target
                                               : best.delay + 1;
    const PathEnumResult r = longest_sensitizable_path(c, o, sub);
    best.paths_enumerated += r.paths_enumerated;
    best.paths_sensitizable += r.paths_sensitizable;
    best.budget_exhausted |= r.budget_exhausted;
    if (r.delay > best.delay) {
      best.delay = r.delay;
      best.path = r.path;
    }
  }
  return best;
}

}  // namespace waveck
