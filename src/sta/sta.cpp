#include "sta/sta.hpp"

#include <algorithm>

#include "netlist/topo_delay.hpp"

namespace waveck {

StaReport run_sta(const Circuit& c) {
  StaReport r;
  const auto top = topo_arrival(c);
  for (NetId o : c.outputs()) {
    r.output_arrivals.emplace_back(o, top[o.index()]);
  }
  std::sort(r.output_arrivals.begin(), r.output_arrivals.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!r.output_arrivals.empty()) {
    r.topological_delay = r.output_arrivals.front().second;
    r.critical_path = longest_path_to(c, r.output_arrivals.front().first);
  }
  return r;
}

}  // namespace waveck
