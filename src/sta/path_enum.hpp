// Path-oriented timing verification baseline (the approach the paper's
// introduction contrasts with: "path oriented timing verifiers suffer from
// poor performance as they may have to enumerate a very large number of
// paths").
//
// Enumerates input->output paths in non-increasing length order (DFS guided
// by longest-completion bounds) and tests each for *static sensitizability*
// (Brand-Iyengar style): every side input of the path can be set to its
// non-controlling value consistently, established by class-only constraint
// propagation. The delay estimate is the length of the first sensitizable
// path.
//
// Two well-known defects, both demonstrated in bench/tests against the
// exact floating-mode engine:
//  * cost: the number of near-critical paths can explode (the enumeration
//    budget is part of the result);
//  * accuracy: static sensitization is not a sound delay criterion under
//    floating mode -- it can *underestimate* (a statically-unsensitizable
//    path may still carry a glitch) and mislabel paths.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

struct PathEnumOptions {
  /// Stop after this many paths were tested for sensitization.
  std::size_t max_paths = 100000;
  /// Stop once a sensitizable path at least this long was found
  /// (neg_inf = find the longest sensitizable path).
  Time target = Time::neg_inf();
};

struct PathEnumResult {
  /// Length of the longest statically-sensitizable path found (neg_inf if
  /// none within budget).
  Time delay = Time::neg_inf();
  /// The path itself (nets, input first), when found.
  std::vector<NetId> path;
  std::size_t paths_enumerated = 0;
  std::size_t paths_sensitizable = 0;
  bool budget_exhausted = false;
};

/// Longest statically-sensitizable path into output `s`.
[[nodiscard]] PathEnumResult longest_sensitizable_path(
    const Circuit& c, NetId s, const PathEnumOptions& opt = {});

/// Circuit-level estimate: max over primary outputs.
[[nodiscard]] PathEnumResult path_enum_delay(const Circuit& c,
                                             const PathEnumOptions& opt = {});

/// Static sensitization test for one concrete path (exposed for tests):
/// every side input of every path gate is required to take its
/// non-controlling value; class-only propagation decides consistency.
/// Paths through XOR/MUX side structure impose no side-value requirement
/// (no controlling value), matching the classic criterion.
[[nodiscard]] bool statically_sensitizable(const Circuit& c,
                                           const std::vector<NetId>& path);

}  // namespace waveck
