// Raw (sentinel-encoded) interval algebra for the SoA domain planes.
//
// The data-oriented constraint core stores every net's abstract signal as
// four int64 planes — w0.lo / w0.hi / w1.lo / w1.hi, indexed by NetId —
// using Time's sentinel encoding (kRawNegInf / kRawPosInf). This header is
// the scalar reference implementation of the plane algebra; the level-sweep
// kernels (constraints/level_kernel_impl.hpp) are lane-parallel transcripts
// of exactly these functions, so simd and scalar paths narrow identically.
//
// Plane invariant: a stored interval is always *canonical* — either
// lo <= hi, or exactly the canonical empty (lo = +inf raw, hi = -inf raw).
// Every function below that produces an interval canonicalises, so bitwise
// plane equality coincides with LtInterval's semantic equality and the
// kernels' changed-value tests are single integer compares.
#pragma once

#include <cstdint>

#include "waveform/lt_interval.hpp"

namespace waveck::soa {

inline constexpr std::int64_t kNegInf = Time::kRawNegInf;
inline constexpr std::int64_t kPosInf = Time::kRawPosInf;

/// Canonical empty interval, as stored in the planes.
inline constexpr std::int64_t kEmptyLo = kPosInf;
inline constexpr std::int64_t kEmptyHi = kNegInf;

[[nodiscard]] constexpr bool is_empty(std::int64_t lo, std::int64_t hi) {
  return lo > hi;
}

/// Time::plus on the raw encoding: finite values shift, infinities stick.
[[nodiscard]] constexpr std::int64_t sat_add(std::int64_t v, std::int64_t d) {
  return (v == kNegInf || v == kPosInf) ? v : v + d;
}

[[nodiscard]] constexpr std::int64_t raw_min(std::int64_t a, std::int64_t b) {
  return a < b ? a : b;
}
[[nodiscard]] constexpr std::int64_t raw_max(std::int64_t a, std::int64_t b) {
  return a > b ? a : b;
}

/// A raw interval pair, canonical by construction (see functions below).
struct RawInterval {
  std::int64_t lo = kNegInf;
  std::int64_t hi = kPosInf;

  friend constexpr bool operator==(RawInterval a, RawInterval b) = default;
};

inline constexpr RawInterval kEmpty{kEmptyLo, kEmptyHi};
inline constexpr RawInterval kTop{kNegInf, kPosInf};

/// Canonicalises: any lo > hi collapses to the canonical empty.
[[nodiscard]] constexpr RawInterval normalized(std::int64_t lo,
                                               std::int64_t hi) {
  return is_empty(lo, hi) ? kEmpty : RawInterval{lo, hi};
}

/// LtInterval::intersect on raw planes (canonical result).
[[nodiscard]] constexpr RawInterval intersect(RawInterval a, RawInterval b) {
  return normalized(raw_max(a.lo, b.lo), raw_min(a.hi, b.hi));
}

/// LtInterval::hull on raw planes (canonical result).
[[nodiscard]] constexpr RawInterval hull(RawInterval a, RawInterval b) {
  if (is_empty(a.lo, a.hi)) return normalized(b.lo, b.hi);
  if (is_empty(b.lo, b.hi)) return a;
  return {raw_min(a.lo, b.lo), raw_max(a.hi, b.hi)};
}

/// LtInterval::shift_forward: empty stays empty, bounds saturate.
[[nodiscard]] constexpr RawInterval shift_forward(RawInterval a,
                                                  std::int64_t dmin,
                                                  std::int64_t dmax) {
  if (is_empty(a.lo, a.hi)) return kEmpty;
  return {sat_add(a.lo, dmin), sat_add(a.hi, dmax)};
}

/// LtInterval::shift_backward (inverse image through the delay interval).
[[nodiscard]] constexpr RawInterval shift_backward(RawInterval a,
                                                   std::int64_t dmin,
                                                   std::int64_t dmax) {
  if (is_empty(a.lo, a.hi)) return kEmpty;
  return {sat_add(a.lo, -dmax), sat_add(a.hi, -dmin)};
}

[[nodiscard]] constexpr bool intersects(RawInterval a, RawInterval b) {
  return !is_empty(a.lo, a.hi) && !is_empty(b.lo, b.hi) &&
         raw_max(a.lo, b.lo) <= raw_min(a.hi, b.hi);
}

/// Round-trips with LtInterval. A stored (canonical) plane value converts
/// losslessly; to_raw canonicalises non-canonical empties on the way in.
[[nodiscard]] constexpr RawInterval to_raw(const LtInterval& i) {
  return i.is_empty() ? kEmpty : RawInterval{i.lmin.raw(), i.max.raw()};
}
[[nodiscard]] constexpr LtInterval from_raw(RawInterval r) {
  return {Time::from_raw(r.lo), Time::from_raw(r.hi)};
}

}  // namespace waveck::soa
