// Last-transition-time intervals.
//
// An abstract waveform  v|lmin..max  (paper Def. 1) is the set of binary
// waveforms that eventually stabilise at value v and whose *last time
// different from v*, lambda(f), lies in [lmin, max] (lambda of the constant-v
// waveform is -inf). The interval [lmin, max] is the whole algebraic content
// of an abstract waveform; the class bit v is carried separately by
// AbstractWaveform / AbstractSignal. This header implements the interval
// algebra: emptiness, intersection, hull-union (the paper's AW union),
// narrowness, and delay shifts.
#pragma once

#include <iosfwd>
#include <string>

#include "common/time.hpp"

namespace waveck {

/// Closed interval [lmin, max] of last-transition times. Empty iff lmin > max.
///
/// All empty intervals compare equal (the paper treats the empty abstract
/// waveform as a single value, phi); `normalized()` maps them to a canonical
/// representation.
struct LtInterval {
  Time lmin = Time::neg_inf();
  Time max = Time::pos_inf();

  constexpr LtInterval() = default;
  constexpr LtInterval(Time lo, Time hi) : lmin(lo), max(hi) {}

  /// The full interval (-inf, +inf): every stabilising waveform of the class.
  [[nodiscard]] static constexpr LtInterval top() { return {}; }
  /// Canonical empty interval (phi).
  [[nodiscard]] static constexpr LtInterval empty() {
    return {Time::pos_inf(), Time::neg_inf()};
  }
  /// Waveforms whose last transition is at or after `t` (the timing-check
  /// restriction  v|t..+inf  of Section 3.3 / Corollary 1).
  [[nodiscard]] static constexpr LtInterval at_or_after(Time t) {
    return {t, Time::pos_inf()};
  }
  /// Waveforms stable at/before `t`:  v|-inf..t  (floating-mode inputs use
  /// t = 0).
  [[nodiscard]] static constexpr LtInterval stable_after(Time t) {
    return {Time::neg_inf(), t};
  }

  [[nodiscard]] constexpr bool is_empty() const { return lmin > max; }
  [[nodiscard]] constexpr bool is_top() const {
    return lmin.is_neg_inf() && max.is_pos_inf();
  }

  [[nodiscard]] constexpr LtInterval normalized() const {
    return is_empty() ? empty() : *this;
  }

  friend constexpr bool operator==(const LtInterval& a, const LtInterval& b) {
    if (a.is_empty() || b.is_empty()) return a.is_empty() && b.is_empty();
    return a.lmin == b.lmin && a.max == b.max;
  }

  /// Set intersection (exact on intervals).
  [[nodiscard]] constexpr LtInterval intersect(const LtInterval& o) const {
    if (is_empty() || o.is_empty()) return empty();
    return LtInterval{Time::max(lmin, o.lmin), Time::min(max, o.max)}
        .normalized();
  }

  /// The paper's AW union: the narrowest interval containing both operands
  /// (convex hull). May strictly over-approximate set union (Lemma 1 gives
  /// the exactness condition, see `union_is_exact`).
  [[nodiscard]] constexpr LtInterval hull(const LtInterval& o) const {
    if (is_empty()) return o.normalized();
    if (o.is_empty()) return normalized();
    return {Time::min(lmin, o.lmin), Time::max(max, o.max)};
  }

  /// Lemma 1: the hull equals the true set union iff the operand intervals
  /// are adjacent or overlapping (no integer gap between them).
  [[nodiscard]] constexpr bool union_is_exact(const LtInterval& o) const {
    if (is_empty() || o.is_empty()) return true;
    return o.max + 1 >= lmin && max + 1 >= o.lmin;
  }

  [[nodiscard]] constexpr bool contains(Time t) const {
    return lmin <= t && t <= max;
  }
  /// Subset test (exact on intervals).
  [[nodiscard]] constexpr bool contains(const LtInterval& o) const {
    if (o.is_empty()) return true;
    if (is_empty()) return false;
    return lmin <= o.lmin && o.max <= max;
  }
  [[nodiscard]] constexpr bool intersects(const LtInterval& o) const {
    return !intersect(o).is_empty();
  }

  /// Strict narrowness  w1 < w2  (paper Section 3.1.1): proper subset with at
  /// least one bound strictly tightened. Empty is narrower than any
  /// non-empty interval.
  [[nodiscard]] constexpr bool narrower_than(const LtInterval& o) const {
    if (is_empty()) return !o.is_empty();
    if (o.is_empty()) return false;
    return (max <= o.max && lmin > o.lmin) || (max < o.max && lmin >= o.lmin);
  }

  /// Forward shift through a delay interval [dmin, dmax]: a transition at
  /// time t on the input appears on the output in [t + dmin, t + dmax].
  [[nodiscard]] constexpr LtInterval shift_forward(std::int64_t dmin,
                                                   std::int64_t dmax) const {
    if (is_empty()) return empty();
    return {lmin + dmin, max + dmax};
  }
  /// Backward shift (inverse image through the delay interval).
  [[nodiscard]] constexpr LtInterval shift_backward(std::int64_t dmin,
                                                    std::int64_t dmax) const {
    if (is_empty()) return empty();
    return {lmin - dmax, max - dmin};
  }

  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const LtInterval& i);

}  // namespace waveck
