// Abstract waveforms (paper Def. 1) and abstract signals (paper Def. 2).
#pragma once

#include <array>
#include <cassert>
#include <iosfwd>
#include <string>

#include "waveform/lt_interval.hpp"

namespace waveck {

/// An abstract waveform  v|lmin..max : the binary waveforms that stabilise at
/// logic value `v` after `max` and whose last time different from `v` is in
/// [lmin, max]. The combination of a class bit and a last-transition
/// interval.
struct AbstractWaveform {
  bool v = false;
  LtInterval lti = LtInterval::top();

  constexpr AbstractWaveform() = default;
  constexpr AbstractWaveform(bool value, LtInterval i) : v(value), lti(i) {}
  constexpr AbstractWaveform(bool value, Time lmin, Time max)
      : v(value), lti(lmin, max) {}

  [[nodiscard]] constexpr bool is_empty() const { return lti.is_empty(); }

  friend constexpr bool operator==(const AbstractWaveform& a,
                                   const AbstractWaveform& b) {
    if (a.is_empty() || b.is_empty()) return a.is_empty() && b.is_empty();
    return a.v == b.v && a.lti == b.lti;
  }

  /// Operations are defined on same-class operands (paper Section 3.1.1).
  [[nodiscard]] constexpr AbstractWaveform intersect(
      const AbstractWaveform& o) const {
    assert(is_empty() || o.is_empty() || v == o.v);
    return {v, lti.intersect(o.lti)};
  }
  [[nodiscard]] constexpr AbstractWaveform unite(
      const AbstractWaveform& o) const {
    assert(is_empty() || o.is_empty() || v == o.v);
    return {is_empty() ? o.v : v, lti.hull(o.lti)};
  }
  [[nodiscard]] constexpr bool narrower_than(const AbstractWaveform& o) const {
    return lti.narrower_than(o.lti);
  }

  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const AbstractWaveform& w);

/// An abstract signal: a pair of abstract waveforms, one per final value
/// (paper Def. 2). `cls(0)` holds the last-transition interval of the
/// finally-0 waveforms, `cls(1)` of the finally-1 ones. This is the domain of
/// every constraint variable (one per circuit net).
struct AbstractSignal {
  std::array<LtInterval, 2> w = {LtInterval::top(), LtInterval::top()};

  constexpr AbstractSignal() = default;
  constexpr AbstractSignal(LtInterval w0, LtInterval w1) : w{w0, w1} {}

  /// Top: contains every stabilising binary waveform.
  [[nodiscard]] static constexpr AbstractSignal top() { return {}; }
  /// Both classes empty: no waveform possible (inconsistency witness,
  /// Theorem 2).
  [[nodiscard]] static constexpr AbstractSignal bottom() {
    return {LtInterval::empty(), LtInterval::empty()};
  }
  /// Floating-mode primary input: stable at/ after time t (paper uses t=0).
  [[nodiscard]] static constexpr AbstractSignal floating_input(Time t = 0) {
    return {LtInterval::stable_after(t), LtInterval::stable_after(t)};
  }
  /// Timing-check output restriction: transitions at or after delta.
  [[nodiscard]] static constexpr AbstractSignal violating(Time delta) {
    return {LtInterval::at_or_after(delta), LtInterval::at_or_after(delta)};
  }
  /// Restriction of a net to one final class (case-analysis decision).
  [[nodiscard]] static constexpr AbstractSignal class_only(bool v) {
    AbstractSignal s;
    s.w[v ? 0 : 1] = LtInterval::empty();
    return s;
  }

  [[nodiscard]] constexpr LtInterval& cls(bool v) { return w[v ? 1 : 0]; }
  [[nodiscard]] constexpr const LtInterval& cls(bool v) const {
    return w[v ? 1 : 0];
  }

  [[nodiscard]] constexpr bool is_bottom() const {
    return w[0].is_empty() && w[1].is_empty();
  }
  [[nodiscard]] constexpr bool is_top() const {
    return w[0].is_top() && w[1].is_top();
  }
  /// True iff exactly one class is non-empty (final value decided).
  [[nodiscard]] constexpr bool single_class() const {
    return w[0].is_empty() != w[1].is_empty();
  }
  /// The decided final value; caller must ensure `single_class()`.
  [[nodiscard]] constexpr bool the_class() const {
    assert(single_class());
    return w[0].is_empty();
  }

  friend constexpr bool operator==(const AbstractSignal& a,
                                   const AbstractSignal& b) {
    return a.w[0] == b.w[0] && a.w[1] == b.w[1];
  }

  [[nodiscard]] constexpr AbstractSignal intersect(
      const AbstractSignal& o) const {
    return {w[0].intersect(o.w[0]), w[1].intersect(o.w[1])};
  }
  [[nodiscard]] constexpr AbstractSignal unite(const AbstractSignal& o) const {
    return {w[0].hull(o.w[0]), w[1].hull(o.w[1])};
  }
  [[nodiscard]] constexpr bool contains(const AbstractSignal& o) const {
    return w[0].contains(o.w[0]) && w[1].contains(o.w[1]);
  }
  /// Paper narrowness on AS: componentwise <=, strict in at least one class.
  [[nodiscard]] constexpr bool narrower_than(const AbstractSignal& o) const {
    const bool le0 = o.w[0].contains(w[0]);
    const bool le1 = o.w[1].contains(w[1]);
    return le0 && le1 && !(*this == o);
  }

  /// Latest possible last-transition time over both classes (used by the
  /// dynamic-carrier test and the "blocks the way" decision of Section 4).
  [[nodiscard]] constexpr Time latest() const {
    if (is_bottom()) return Time::neg_inf();
    if (w[0].is_empty()) return w[1].max;
    if (w[1].is_empty()) return w[0].max;
    return Time::max(w[0].max, w[1].max);
  }
  /// Earliest guaranteed last-transition lower bound over both classes.
  [[nodiscard]] constexpr Time earliest_lmin() const {
    if (is_bottom()) return Time::pos_inf();
    if (w[0].is_empty()) return w[1].lmin;
    if (w[1].is_empty()) return w[0].lmin;
    return Time::min(w[0].lmin, w[1].lmin);
  }

  /// True iff some waveform in the signal has a transition at/after `t`
  /// (the Def. 7 dynamic-carrier condition).
  [[nodiscard]] constexpr bool has_transition_at_or_after(Time t) const {
    return latest() >= t && !is_bottom();
  }

  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const AbstractSignal& s);

}  // namespace waveck
