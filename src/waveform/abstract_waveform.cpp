#include "waveform/abstract_waveform.hpp"

#include <ostream>
#include <sstream>

namespace waveck {

std::string LtInterval::str() const {
  if (is_empty()) return "phi";
  return "[" + lmin.str() + "," + max.str() + "]";
}

std::ostream& operator<<(std::ostream& os, const LtInterval& i) {
  return os << i.str();
}

std::string AbstractWaveform::str() const {
  if (is_empty()) return "phi";
  return std::string(v ? "1|" : "0|") + lti.str();
}

std::ostream& operator<<(std::ostream& os, const AbstractWaveform& w) {
  return os << w.str();
}

std::string AbstractSignal::str() const {
  std::ostringstream os;
  os << "(0|" << w[0].str() << ", 1|" << w[1].str() << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AbstractSignal& s) {
  return os << s.str();
}

}  // namespace waveck
