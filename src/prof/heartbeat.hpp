// Live progress heartbeat and soft watchdog (perf observatory, pillar 3).
//
// Under --progress [SECS] a ProgressMonitor thread periodically emits a
// one-line status to stderr and a "heartbeat" JSONL trace event, and — when
// no progress tick has arrived for the stall window — a thread-dump-style
// snapshot of what every worker is doing ("watchdog_stall"). This is the
// seed of the serve daemon's wedged-worker detection (ROADMAP item 1).
//
// Why an ActivityBoard instead of the registry: under --jobs N the workers
// accumulate into private ScopedRegistry instances that only merge into the
// global registry at batch end, so the monitor cannot see live progress
// there. The board is a fixed array of per-worker slots (indexed by
// telemetry::worker_id()) holding only lock-free atomics: current output
// name, pipeline stage, check id, start time, decision depth, and a
// monotonically increasing progress tick that the fixpoint drain advances
// by its gate-evaluation count.
//
// Producers guard every board write with heartbeat_enabled() — a relaxed
// atomic flag that is false unless a monitor is running — so the disabled
// hot path pays one load + branch, the same discipline as trace_enabled().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <thread>
#include <condition_variable>
#include <mutex>

namespace waveck::prof {

namespace detail {
extern std::atomic<bool> g_heartbeat_enabled;
}  // namespace detail

[[nodiscard]] inline bool heartbeat_enabled() {
  return detail::g_heartbeat_enabled.load(std::memory_order_relaxed);
}
/// Normally driven by ProgressMonitor's lifetime; exposed for tests.
void set_heartbeat_enabled(bool on);

struct WorkerActivity {
  std::atomic<const char*> output{nullptr};  // borrowed net name, or null
  std::atomic<const char*> stage{nullptr};   // literal stage name, or null
  std::atomic<std::int64_t> chk{-1};
  std::atomic<std::uint64_t> since_ns{0};    // monotonic_ns at begin_check
  std::atomic<std::uint64_t> progress{0};
  std::atomic<std::int64_t> depth{0};
};

class ActivityBoard {
 public:
  static constexpr int kMaxWorkers = 64;  // worker ids above this share 0

  [[nodiscard]] static ActivityBoard& instance();
  [[nodiscard]] WorkerActivity& slot(int worker);

  // Static conveniences resolving the calling thread's slot. Callers guard
  // with heartbeat_enabled().
  static void begin_check(const char* output, std::int64_t chk);
  static void end_check();
  static void set_stage(const char* stage);
  static void set_depth(std::int64_t depth);
  static void tick(std::uint64_t n = 1);

  /// Sum of every slot's progress tick; the watchdog's liveness signal.
  [[nodiscard]] std::uint64_t total_progress() const;

 private:
  WorkerActivity slots_[kMaxWorkers];
};

struct HeartbeatOptions {
  double interval_s = 5.0;
  /// No-progress window before a watchdog snapshot; <= 0 picks
  /// max(30, 6 * interval).
  double stall_s = 0.0;
  /// Invoked (from the monitor thread) once per stall episode, after the
  /// stderr snapshot, the "watchdog_stall" trace event, and the automatic
  /// flight-recorder blackbox dump. The serve daemon hangs its structured
  /// stats line here.
  std::function<void()> on_stall;
};

/// Owns the monitor thread; construction enables heartbeat_enabled() and
/// emits "progress_begin", stop() (or destruction) emits "progress_end"
/// with the beat/stall totals so traces can assert balanced brackets.
class ProgressMonitor {
 public:
  ProgressMonitor(const HeartbeatOptions& opt, std::ostream& err);
  ~ProgressMonitor();
  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  void stop();
  [[nodiscard]] std::uint64_t beats() const {
    return beats_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  HeartbeatOptions opt_;
  double stall_s_ = 0.0;
  std::ostream* err_;
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace waveck::prof
