// Hardware performance counters (perf observatory, pillar 1).
//
// A PerfCounterGroup opens one perf_event_open(2) group per thread — cycles
// (leader), instructions, cache-references, cache-misses, branch-misses —
// and reads all five with a single read(2) thanks to PERF_FORMAT_GROUP.
// Raw values come back with the group's enabled/running times; deltas are
// multiplex-scaled (raw * d_enabled / d_running) so sections measured while
// the PMU was time-sliced across groups still report honest estimates.
//
// Graceful degradation: in containers, under perf_event_paranoid, or on
// machines without a PMU, perf_event_open fails (EACCES/EPERM/ENOENT). The
// group then stays closed, exactly one process-wide warning goes to stderr,
// and every sample still carries CLOCK_MONOTONIC so wall-time attribution
// keeps working; consumers see hw_valid=false and emit an explicit
// "counters":"unavailable" marker instead of zeros-pretending-to-be-data.
// The WAVECK_PERF_FAKE_ERRNO env var (an errno name like "EACCES" or a
// number) forces the failure path for tests.
//
// Concurrency: groups are per-thread (thread_counter_group()), so workers
// under --jobs N each count their own thread; per-stage deltas are added
// both to the CheckReport being built and to the calling thread's
// Registry::current(), and the scheduler's registry merge therefore merges
// counter groups exactly like every other metric.
//
// Everything is gated on counters_enabled(), a relaxed atomic flag that is
// false by default: the disabled hot path pays one load + branch, no
// syscalls.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/telemetry.hpp"

namespace waveck::prof {

/// CLOCK_MONOTONIC in nanoseconds.
[[nodiscard]] std::uint64_t monotonic_ns();

/// One point-in-time reading of a thread's counter group. Hardware fields
/// are raw (unscaled); monotonic_ns is always valid.
struct CounterSample {
  bool hw_valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  std::uint64_t monotonic_ns = 0;
};

/// Difference between two samples with multiplex scaling applied.
struct CounterDelta {
  bool hw_valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t wall_ns = 0;
};

/// Scales a raw event delta by enabled/running time: the kernel multiplexes
/// groups onto the PMU, so a group scheduled for only part of the window
/// extrapolates linearly. enabled==running (the common, un-multiplexed
/// case) returns raw unchanged; running==0 means the group never got the
/// PMU, in which case raw (necessarily 0) is returned as-is.
[[nodiscard]] std::uint64_t scale_multiplexed(std::uint64_t raw,
                                              std::uint64_t enabled_ns,
                                              std::uint64_t running_ns);

[[nodiscard]] CounterDelta delta_between(const CounterSample& begin,
                                         const CounterSample& end);

/// Accumulated deltas for one attribution slot (a pipeline stage, a bench
/// row, a whole run). hw_valid is the AND over contributions with hardware
/// data — a single degraded section marks the total wall-clock-only.
struct CounterTotals {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t sections = 0;
  bool hw_valid = true;

  void add(const CounterDelta& d);
  void add(const CounterTotals& o);
  [[nodiscard]] bool any() const { return sections != 0; }
  /// Instructions per cycle; 0 when no cycles were counted.
  [[nodiscard]] double ipc() const;
  /// cache_misses / cache_references; 0 when no references were counted.
  [[nodiscard]] double cache_miss_rate() const;
};

/// One perf_event_open group bound to the calling thread. Construction
/// opens (or degrades); read() is one syscall. Not thread-safe: use from
/// the owning thread only (thread_counter_group() handles this).
class PerfCounterGroup {
 public:
  static constexpr std::size_t kEvents = 5;

  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when the hardware group opened; false on the degraded path.
  [[nodiscard]] bool available() const { return fds_[0] >= 0; }
  /// Why the group is unavailable ("" when available()).
  [[nodiscard]] const std::string& unavailable_reason() const {
    return reason_;
  }
  [[nodiscard]] CounterSample read() const;

 private:
  int fds_[kEvents] = {-1, -1, -1, -1, -1};
  std::uint64_t ids_[kEvents] = {0, 0, 0, 0, 0};
  std::string reason_;
};

/// Master switch (relaxed atomic; default off). Probe sites load it once
/// per section and skip all syscalls when false.
[[nodiscard]] bool counters_enabled();
void set_counters_enabled(bool on);

/// The calling thread's lazily opened group.
[[nodiscard]] PerfCounterGroup& thread_counter_group();

/// First process-wide open-failure reason ("" if none failed yet). Stable
/// once set; what report writers put next to "counters":"unavailable".
[[nodiscard]] std::string unavailable_reason();
/// How many fallback warnings went to stderr (tests assert exactly one).
[[nodiscard]] std::uint64_t warnings_emitted();

/// Adds a scaled delta to the calling thread's registry under
/// "perf.<slot>.{cycles,instructions,cache_references,cache_misses,
/// branch_misses,wall_ns,sections}". Worker registries merge these like
/// every other counter, so global totals equal the sum over checks.
void add_to_registry(telemetry::Registry& reg, std::string_view slot,
                     const CounterDelta& d);

/// Destroys the calling thread's group so the next thread_counter_group()
/// re-opens (used to exercise WAVECK_PERF_FAKE_ERRNO in tests).
void reset_thread_counter_group_for_testing();

}  // namespace waveck::prof
