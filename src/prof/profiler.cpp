#include "prof/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "common/telemetry.hpp"

#ifdef __linux__
#include <cxxabi.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#endif

namespace waveck::prof {

namespace {

constexpr int kMaxFrames = 32;

struct Record {
  void* pc[kMaxFrames];
  const char* stage;
  const char* check;
  std::int32_t depth;
  std::int32_t worker;
};

// Handler-visible state. The ring is preallocated by start(); the handler
// claims a slot with one relaxed fetch_add and never touches anything that
// could allocate or lock.
std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_cursor{0};
std::vector<Record> g_records;
std::size_t g_capacity = 0;
std::uint32_t g_hz = 0;

#ifdef __linux__
struct sigaction g_prev_action {};

extern "C" void waveck_sigprof_handler(int) {
  const int saved_errno = errno;
  if (g_armed.load(std::memory_order_relaxed)) {
    const std::size_t i = g_cursor.fetch_add(1, std::memory_order_relaxed);
    if (i < g_capacity) {
      Record& r = g_records[i];
      r.depth = backtrace(r.pc, kMaxFrames);
      r.stage = telemetry::stage_mark();
      r.check = telemetry::check_mark();
      r.worker = telemetry::worker_id();
    }
  }
  errno = saved_errno;
}

/// "path(mangled+0x1a) [0x...]" -> demangled symbol, raw symbol, or the
/// module basename when the frame has no symbol at all.
std::string frame_name(const char* symbolized) {
  std::string s(symbolized != nullptr ? symbolized : "");
  const std::size_t open = s.find('(');
  const std::size_t plus = s.find('+', open == std::string::npos ? 0 : open);
  if (open != std::string::npos && plus != std::string::npos &&
      plus > open + 1) {
    std::string mangled = s.substr(open + 1, plus - open - 1);
    int status = 0;
    char* dem =
        abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
    if (status == 0 && dem != nullptr) {
      std::string out(dem);
      std::free(dem);
      return out;
    }
    if (dem != nullptr) std::free(dem);
    return mangled;
  }
  // No symbol: keep the module basename so the frame is still meaningful.
  const std::size_t cut = open != std::string::npos ? open : s.find(' ');
  std::string module = s.substr(0, cut);
  const std::size_t slash = module.rfind('/');
  if (slash != std::string::npos) module = module.substr(slash + 1);
  return module.empty() ? "??" : module;
}
#endif

std::string json_str(const std::string& s) {
  std::string out = "\"";
  out += telemetry::json_escape(s);
  out += '"';
  return out;
}

}  // namespace

SamplingProfiler& SamplingProfiler::instance() {
  static SamplingProfiler p;
  return p;
}

bool SamplingProfiler::running() const {
  return g_armed.load(std::memory_order_relaxed);
}

bool SamplingProfiler::start(const ProfilerOptions& opt, std::string* error) {
#ifdef __linux__
  if (running()) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  g_hz = opt.hz == 0 ? 997 : opt.hz;
  g_capacity = opt.max_samples == 0 ? (1u << 16) : opt.max_samples;
  g_records.assign(g_capacity, Record{});
  g_cursor.store(0, std::memory_order_relaxed);

  // Prime libgcc's unwinder outside signal context: the first backtrace()
  // call may allocate/dlopen, later ones are async-signal-safe in practice.
  void* prime[2];
  backtrace(prime, 2);

  struct sigaction sa {};
  sa.sa_handler = waveck_sigprof_handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_prev_action) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }

  g_armed.store(true, std::memory_order_release);
  const long usec = std::max(1000000L / static_cast<long>(g_hz), 1L);
  itimerval timer{};
  timer.it_interval.tv_sec = usec / 1000000;
  timer.it_interval.tv_usec = usec % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_prev_action, nullptr);
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  return true;
#else
  (void)opt;
  if (error != nullptr) *error = "profiler not supported on this platform";
  return false;
#endif
}

ProfileReport SamplingProfiler::stop() {
  ProfileReport rep;
#ifdef __linux__
  if (!running()) return rep;
  itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
  g_armed.store(false, std::memory_order_release);
  sigaction(SIGPROF, &g_prev_action, nullptr);

  const std::size_t claimed = g_cursor.load(std::memory_order_relaxed);
  const std::size_t n = std::min(claimed, g_capacity);
  rep.samples = n;
  rep.dropped = claimed - n;
  rep.cpu_seconds = static_cast<double>(n) / static_cast<double>(g_hz);

  // Symbolize each record once; name cache keyed by pc.
  std::map<void*, std::string> names;
  std::map<std::string, std::uint64_t> folded;  // key: "f;f;f" root-first
  for (std::size_t i = 0; i < n; ++i) {
    const Record& r = g_records[i];
    if (r.depth <= 0) continue;
    // Trim the signal prologue: frame 0 is the handler itself, frame 1 the
    // kernel trampoline (__restore_rt). Search a few frames in case of
    // inlining differences, fall back to dropping the first two.
    int first_app = std::min(2, r.depth - 1);
    char** symbols = backtrace_symbols(const_cast<void* const*>(r.pc),
                                       r.depth);
    if (symbols == nullptr) continue;
    for (int f = 0; f < std::min(4, r.depth); ++f) {
      if (std::strstr(symbols[f], "__restore_rt") != nullptr ||
          std::strstr(symbols[f], "sigprof_handler") != nullptr) {
        first_app = std::min(f + 1, r.depth - 1);
      }
    }
    std::string key;
    if (r.check != nullptr) {
      key += "check:";
      key += r.check;
    }
    if (r.stage != nullptr) {
      if (!key.empty()) key += ';';
      key += "stage:";
      key += r.stage;
    }
    for (int f = r.depth - 1; f >= first_app; --f) {  // root first
      auto it = names.find(r.pc[f]);
      if (it == names.end()) {
        it = names.emplace(r.pc[f], frame_name(symbols[f])).first;
      }
      if (!key.empty()) key += ';';
      key += it->second;
    }
    std::free(symbols);
    if (!key.empty()) ++folded[key];
  }
  g_records.clear();
  g_records.shrink_to_fit();

  // Collapsed-stack text plus the speedscope "sampled" document; one
  // sample entry per distinct stack with its count as the weight.
  std::ostringstream folded_os;
  std::map<std::string, std::size_t> frame_index;
  std::vector<std::string> frame_names;
  std::ostringstream samples_os;
  std::ostringstream weights_os;
  std::uint64_t total = 0;
  bool first_stack = true;
  for (const auto& [key, count] : folded) {
    folded_os << key << ' ' << count << '\n';
    samples_os << (first_stack ? "[" : ",[");
    weights_os << (first_stack ? "" : ",") << count;
    first_stack = false;
    std::size_t pos = 0;
    bool first_frame = true;
    while (pos <= key.size()) {
      const std::size_t sep = key.find(';', pos);
      const std::string frame =
          key.substr(pos, sep == std::string::npos ? sep : sep - pos);
      auto [it, inserted] =
          frame_index.try_emplace(frame, frame_names.size());
      if (inserted) frame_names.push_back(frame);
      samples_os << (first_frame ? "" : ",") << it->second;
      first_frame = false;
      if (sep == std::string::npos) break;
      pos = sep + 1;
    }
    samples_os << ']';
    total += count;
  }
  rep.folded = folded_os.str();

  std::ostringstream ss;
  ss << "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\""
     << ",\"name\":\"waveck profile\",\"exporter\":\"waveck\""
     << ",\"activeProfileIndex\":0,\"shared\":{\"frames\":[";
  for (std::size_t i = 0; i < frame_names.size(); ++i) {
    ss << (i ? "," : "") << "{\"name\":" << json_str(frame_names[i]) << "}";
  }
  ss << "]},\"profiles\":[{\"type\":\"sampled\",\"name\":\"cpu (" << g_hz
     << "Hz)\",\"unit\":\"none\",\"startValue\":0,\"endValue\":" << total
     << ",\"samples\":[" << samples_os.str() << "],\"weights\":["
     << weights_os.str() << "]}]}";
  rep.speedscope_json = ss.str();
#endif
  return rep;
}

}  // namespace waveck::prof
