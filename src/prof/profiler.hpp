// In-process sampling profiler (perf observatory, pillar 2).
//
// A SIGPROF handler driven by setitimer(ITIMER_PROF) captures a backtrace(3)
// stack into a preallocated ring of fixed-size records — the handler does no
// allocation, no locking, and no symbolization, only an atomic slot claim
// plus reads of the thread-local telemetry marks (check output name and
// pipeline stage, see telemetry::stage_mark). Because ITIMER_PROF counts
// process CPU time, samples land on whichever thread is burning cycles, so
// --jobs N workers are profiled together.
//
// stop() symbolizes once (backtrace_symbols + __cxa_demangle), prepends two
// synthetic annotation frames — "check:<output>" and "stage:<stage>" — to
// each stack, and folds everything into
//   * collapsed-stack text ("frame;frame;frame count" per line, the format
//     flamegraph.pl and speedscope both ingest), and
//   * a speedscope-compatible JSON document ("type":"sampled").
// The annotation frames are what let a flamegraph separate fixpoint vs FAN
// vs stem-correlation time per check even where C++ inlining muddies the
// raw frames.
//
// One profiler per process (SIGPROF is process-wide); start/stop from the
// main thread. Tool binaries need -rdynamic for backtrace_symbols to see
// function names.
#pragma once

#include <cstdint>
#include <string>

namespace waveck::prof {

struct ProfilerOptions {
  std::uint32_t hz = 997;        // off the 1000Hz beat of timer interrupts
  std::size_t max_samples = 1u << 16;
};

struct ProfileReport {
  std::size_t samples = 0;
  std::size_t dropped = 0;       // ring full; raise max_samples
  double cpu_seconds = 0.0;      // samples / hz
  std::string folded;            // collapsed-stack text
  std::string speedscope_json;
};

class SamplingProfiler {
 public:
  [[nodiscard]] static SamplingProfiler& instance();

  /// Arms the timer. Returns false (with *error set) if already running or
  /// the platform lacks SIGPROF/backtrace support.
  bool start(const ProfilerOptions& opt, std::string* error = nullptr);
  [[nodiscard]] bool running() const;
  /// Disarms, symbolizes, folds. Safe to call when not running (empty
  /// report).
  ProfileReport stop();

 private:
  SamplingProfiler() = default;
};

}  // namespace waveck::prof
