#include "prof/heartbeat.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <string>

#include "common/flight_recorder.hpp"
#include "common/telemetry.hpp"
#include "prof/perf_counters.hpp"

namespace waveck::prof {

namespace detail {
std::atomic<bool> g_heartbeat_enabled{false};
}  // namespace detail

void set_heartbeat_enabled(bool on) {
  detail::g_heartbeat_enabled.store(on, std::memory_order_relaxed);
}

ActivityBoard& ActivityBoard::instance() {
  static ActivityBoard board;
  return board;
}

WorkerActivity& ActivityBoard::slot(int worker) {
  const int i = worker >= 0 && worker < kMaxWorkers ? worker : 0;
  return slots_[i];
}

namespace {
WorkerActivity& self_slot() {
  return ActivityBoard::instance().slot(telemetry::worker_id());
}
}  // namespace

void ActivityBoard::begin_check(const char* output, std::int64_t chk) {
  WorkerActivity& s = self_slot();
  s.output.store(output, std::memory_order_relaxed);
  s.stage.store(nullptr, std::memory_order_relaxed);
  s.chk.store(chk, std::memory_order_relaxed);
  s.depth.store(0, std::memory_order_relaxed);
  s.since_ns.store(monotonic_ns(), std::memory_order_relaxed);
}

void ActivityBoard::end_check() {
  WorkerActivity& s = self_slot();
  s.output.store(nullptr, std::memory_order_relaxed);
  s.stage.store(nullptr, std::memory_order_relaxed);
  s.chk.store(-1, std::memory_order_relaxed);
  s.depth.store(0, std::memory_order_relaxed);
}

void ActivityBoard::set_stage(const char* stage) {
  self_slot().stage.store(stage, std::memory_order_relaxed);
}

void ActivityBoard::set_depth(std::int64_t depth) {
  self_slot().depth.store(depth, std::memory_order_relaxed);
}

void ActivityBoard::tick(std::uint64_t n) {
  self_slot().progress.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t ActivityBoard::total_progress() const {
  std::uint64_t total = 0;
  for (const WorkerActivity& s : slots_) {
    total += s.progress.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

/// 152340 -> "152k", 12 -> "12": compact rate formatting for the one-liner.
std::string compact(std::uint64_t v) {
  char buf[32];
  if (v >= 10'000'000) {
    std::snprintf(buf, sizeof buf, "%lluM",
                  static_cast<unsigned long long>(v / 1'000'000));
  } else if (v >= 10'000) {
    std::snprintf(buf, sizeof buf, "%lluk",
                  static_cast<unsigned long long>(v / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
  }
  return buf;
}

std::string fmt_s(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fs", s);
  return buf;
}

}  // namespace

ProgressMonitor::ProgressMonitor(const HeartbeatOptions& opt,
                                 std::ostream& err)
    : opt_(opt), err_(&err) {
  if (opt_.interval_s <= 0.0) opt_.interval_s = 5.0;
  stall_s_ = opt_.stall_s > 0.0
                 ? opt_.stall_s
                 : std::max(30.0, 6.0 * opt_.interval_s);
  set_heartbeat_enabled(true);
  telemetry::emit("progress_begin",
                  {{"interval_s", opt_.interval_s}, {"stall_s", stall_s_}});
  thread_ = std::thread([this] { run(); });
}

ProgressMonitor::~ProgressMonitor() { stop(); }

void ProgressMonitor::stop() {
  {
    const std::scoped_lock lock(mu_);
    if (stopped_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::scoped_lock lock(mu_);
    stopped_ = true;
  }
  set_heartbeat_enabled(false);
  telemetry::emit("progress_end", {{"beats", beats()}, {"stalls", stalls()}});
}

void ProgressMonitor::run() {
  auto& board = ActivityBoard::instance();
  auto& reg = telemetry::Registry::global();
  const std::uint64_t t0 = monotonic_ns();
  std::uint64_t prev_ticks = board.total_progress();
  std::uint64_t prev_ns = t0;
  std::uint64_t last_advance_ns = t0;
  bool stall_reported = false;

  std::unique_lock lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk,
                 std::chrono::duration<double>(opt_.interval_s),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lk.unlock();

    const std::uint64_t now = monotonic_ns();
    const std::uint64_t ticks = board.total_progress();
    const double dt = static_cast<double>(now - prev_ns) * 1e-9;
    const std::uint64_t rate =
        dt > 0.0 ? static_cast<std::uint64_t>(
                       static_cast<double>(ticks - prev_ticks) / dt)
                 : 0;
    const std::uint64_t beat =
        beats_.fetch_add(1, std::memory_order_relaxed) + 1;
    const double elapsed = static_cast<double>(now - t0) * 1e-9;
    // Merged-registry tallies lag live workers until batch end, but give
    // the long-horizon picture the board's raw ticks cannot.
    const std::uint64_t decisions = reg.counter("search.decisions").value();
    const std::uint64_t backtracks = reg.counter("search.backtracks").value();
    const std::int64_t queue_hw = reg.gauge("engine.queue_depth").high_water();

    std::string line = "[waveck hb#" + std::to_string(beat) + " t=" +
                       fmt_s(elapsed) + "] gate_evals=" + compact(ticks) +
                       " (+" + compact(rate) + "/s) decisions=" +
                       compact(decisions) + " backtracks=" +
                       compact(backtracks) + " queue_hw=" +
                       std::to_string(queue_hw);
    int active = 0;
    for (int w = 0; w < ActivityBoard::kMaxWorkers; ++w) {
      const WorkerActivity& s = board.slot(w);
      const char* out = s.output.load(std::memory_order_relaxed);
      if (out == nullptr) continue;
      ++active;
      const char* stage = s.stage.load(std::memory_order_relaxed);
      const double in_check =
          static_cast<double>(now -
                              s.since_ns.load(std::memory_order_relaxed)) *
          1e-9;
      line += " | w" + std::to_string(w) + " " + out + " " +
              (stage != nullptr ? stage : "-") + " d=" +
              std::to_string(s.depth.load(std::memory_order_relaxed)) +
              " " + fmt_s(in_check);
    }
    *err_ << line << "\n" << std::flush;
    telemetry::emit("heartbeat", {{"n", beat},
                                  {"elapsed_s", elapsed},
                                  {"gate_evals", ticks},
                                  {"gate_evals_per_s", rate},
                                  {"decisions", decisions},
                                  {"backtracks", backtracks},
                                  {"queue_hw", queue_hw},
                                  {"active", active}});

    // An all-idle board is not a stall: a long-lived daemon with no work in
    // flight makes no progress by design, and a spurious stall here would
    // both cry wolf on stderr and burn the blackbox dump cooldown right
    // before a real wedge. The stall window starts when a worker opens a
    // check (the board slot goes active) and its ticks stop advancing.
    if (ticks != prev_ticks || active == 0) {
      last_advance_ns = now;
      stall_reported = false;
    } else if (!stall_reported &&
               static_cast<double>(now - last_advance_ns) * 1e-9 >=
                   stall_s_) {
      stall_reported = true;  // once per stall episode
      stalls_.fetch_add(1, std::memory_order_relaxed);
      const double stalled_s =
          static_cast<double>(now - last_advance_ns) * 1e-9;
      *err_ << "[waveck watchdog] no progress for " << fmt_s(stalled_s)
            << "; active checks:\n";
      int dumped = 0;
      for (int w = 0; w < ActivityBoard::kMaxWorkers; ++w) {
        const WorkerActivity& s = board.slot(w);
        const char* out = s.output.load(std::memory_order_relaxed);
        if (out == nullptr) continue;
        ++dumped;
        const char* stage = s.stage.load(std::memory_order_relaxed);
        const double in_check =
            static_cast<double>(
                now - s.since_ns.load(std::memory_order_relaxed)) *
            1e-9;
        *err_ << "  w" << w << ": " << out << " stage="
              << (stage != nullptr ? stage : "-") << " depth="
              << s.depth.load(std::memory_order_relaxed) << " chk#"
              << s.chk.load(std::memory_order_relaxed) << " elapsed="
              << fmt_s(in_check) << "\n";
      }
      if (dumped == 0) *err_ << "  (no check in flight)\n";
      *err_ << std::flush;
      telemetry::emit("watchdog_stall",
                      {{"stalled_s", stalled_s}, {"active", dumped}});
      // Post-mortem evidence: mark the stall in the rings, then flush them
      // to the blackbox (no-op unless --blackbox armed a directory).
      if (flight::enabled()) {
        flight::record(flight::Kind::kMark, "watchdog_stall", 0,
                       static_cast<std::int64_t>(dumped));
      }
      const std::string path = flight::dump_blackbox("watchdog_stall");
      if (!path.empty()) {
        *err_ << "[waveck watchdog] flight recorder dumped to " << path
              << "\n" << std::flush;
      }
      if (opt_.on_stall) opt_.on_stall();
    }
    prev_ticks = ticks;
    prev_ns = now;
    lk.lock();
  }
}

}  // namespace waveck::prof
