#include "prof/perf_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace waveck::prof {

namespace {

std::atomic<bool> g_counters_enabled{false};
std::atomic<std::uint64_t> g_warnings{0};
std::mutex g_reason_mu;
std::string g_first_reason;  // guarded by g_reason_mu

thread_local std::unique_ptr<PerfCounterGroup> t_group;

/// Records the first failure and warns exactly once per process: repeated
/// per-thread opens (every worker degrades the same way) stay quiet.
void note_unavailable(const std::string& reason) {
  const std::scoped_lock lock(g_reason_mu);
  if (!g_first_reason.empty()) return;
  g_first_reason = reason;
  g_warnings.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "waveck: hardware counters unavailable (%s); "
               "reporting wall-clock only\n",
               reason.c_str());
}

/// WAVECK_PERF_FAKE_ERRNO: an errno name or number forcing open failure.
int fake_errno() {
  const char* v = std::getenv("WAVECK_PERF_FAKE_ERRNO");
  if (v == nullptr || *v == '\0') return 0;
  if (std::strcmp(v, "ENOENT") == 0) return ENOENT;
  if (std::strcmp(v, "EACCES") == 0) return EACCES;
  if (std::strcmp(v, "EPERM") == 0) return EPERM;
  if (std::strcmp(v, "EINVAL") == 0) return EINVAL;
  const int n = std::atoi(v);
  return n > 0 ? n : EACCES;
}

}  // namespace

std::uint64_t monotonic_ns() {
#ifdef __linux__
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

std::uint64_t scale_multiplexed(std::uint64_t raw, std::uint64_t enabled_ns,
                                std::uint64_t running_ns) {
  if (raw == 0 || enabled_ns == running_ns) return raw;
  if (running_ns == 0) return raw;
  const long double scaled = static_cast<long double>(raw) *
                             static_cast<long double>(enabled_ns) /
                             static_cast<long double>(running_ns);
  return static_cast<std::uint64_t>(scaled + 0.5L);
}

CounterDelta delta_between(const CounterSample& begin,
                           const CounterSample& end) {
  CounterDelta d;
  d.wall_ns = end.monotonic_ns - begin.monotonic_ns;
  d.hw_valid = begin.hw_valid && end.hw_valid;
  if (!d.hw_valid) return d;
  const std::uint64_t en = end.time_enabled_ns - begin.time_enabled_ns;
  const std::uint64_t run = end.time_running_ns - begin.time_running_ns;
  d.cycles = scale_multiplexed(end.cycles - begin.cycles, en, run);
  d.instructions =
      scale_multiplexed(end.instructions - begin.instructions, en, run);
  d.cache_references = scale_multiplexed(
      end.cache_references - begin.cache_references, en, run);
  d.cache_misses =
      scale_multiplexed(end.cache_misses - begin.cache_misses, en, run);
  d.branch_misses =
      scale_multiplexed(end.branch_misses - begin.branch_misses, en, run);
  return d;
}

void CounterTotals::add(const CounterDelta& d) {
  cycles += d.cycles;
  instructions += d.instructions;
  cache_references += d.cache_references;
  cache_misses += d.cache_misses;
  branch_misses += d.branch_misses;
  wall_ns += d.wall_ns;
  ++sections;
  hw_valid = hw_valid && d.hw_valid;
}

void CounterTotals::add(const CounterTotals& o) {
  if (o.sections == 0) return;
  cycles += o.cycles;
  instructions += o.instructions;
  cache_references += o.cache_references;
  cache_misses += o.cache_misses;
  branch_misses += o.branch_misses;
  wall_ns += o.wall_ns;
  sections += o.sections;
  hw_valid = hw_valid && o.hw_valid;
}

double CounterTotals::ipc() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(instructions) /
                           static_cast<double>(cycles);
}

double CounterTotals::cache_miss_rate() const {
  return cache_references == 0 ? 0.0
                               : static_cast<double>(cache_misses) /
                                     static_cast<double>(cache_references);
}

PerfCounterGroup::PerfCounterGroup() {
#ifdef __linux__
  static constexpr std::uint64_t kConfigs[kEvents] = {
      PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
      PERF_COUNT_HW_BRANCH_MISSES};

  if (const int fake = fake_errno(); fake != 0) {
    reason_ = std::string("perf_event_open: ") + std::strerror(fake) +
              " [forced by WAVECK_PERF_FAKE_ERRNO]";
    note_unavailable(reason_);
    return;
  }

  for (std::size_t i = 0; i < kEvents; ++i) {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = kConfigs[i];
    attr.disabled = (i == 0) ? 1 : 0;  // arm the whole group via the leader
    attr.exclude_kernel = 1;           // usable at perf_event_paranoid <= 2
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int group_fd = (i == 0) ? -1 : fds_[0];
    const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, group_fd,
                            PERF_FLAG_FD_CLOEXEC);
    if (fd < 0) {
      if (i == 0) {
        // No leader, no group: degrade to wall-clock only.
        reason_ = std::string("perf_event_open: ") + std::strerror(errno);
        note_unavailable(reason_);
        return;
      }
      continue;  // a missing sibling just reports 0
    }
    fds_[i] = static_cast<int>(fd);
    ioctl(fds_[i], PERF_EVENT_IOC_ID, &ids_[i]);
  }
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#else
  reason_ = "perf_event_open: not supported on this platform";
  note_unavailable(reason_);
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#ifdef __linux__
  for (int& fd : fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
#endif
}

CounterSample PerfCounterGroup::read() const {
  CounterSample s;
  s.monotonic_ns = monotonic_ns();
#ifdef __linux__
  if (!available()) return s;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // then (value, id) per group member.
  std::uint64_t buf[3 + 2 * kEvents] = {};
  const ssize_t n = ::read(fds_[0], buf, sizeof buf);
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return s;
  s.time_enabled_ns = buf[1];
  s.time_running_ns = buf[2];
  std::uint64_t* slots[kEvents] = {&s.cycles, &s.instructions,
                                   &s.cache_references, &s.cache_misses,
                                   &s.branch_misses};
  const std::uint64_t nr = buf[0];
  for (std::uint64_t v = 0; v < nr && v < kEvents; ++v) {
    const std::uint64_t value = buf[3 + 2 * v];
    const std::uint64_t id = buf[3 + 2 * v + 1];
    for (std::size_t i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0 && ids_[i] == id) {
        *slots[i] = value;
        break;
      }
    }
  }
  s.hw_valid = true;
#endif
  return s;
}

bool counters_enabled() {
  return g_counters_enabled.load(std::memory_order_relaxed);
}

void set_counters_enabled(bool on) {
  g_counters_enabled.store(on, std::memory_order_relaxed);
}

PerfCounterGroup& thread_counter_group() {
  if (!t_group) t_group = std::make_unique<PerfCounterGroup>();
  return *t_group;
}

std::string unavailable_reason() {
  const std::scoped_lock lock(g_reason_mu);
  return g_first_reason;
}

std::uint64_t warnings_emitted() {
  return g_warnings.load(std::memory_order_relaxed);
}

void add_to_registry(telemetry::Registry& reg, std::string_view slot,
                     const CounterDelta& d) {
  const std::string prefix = "perf." + std::string(slot) + ".";
  reg.counter(prefix + "cycles").add(d.cycles);
  reg.counter(prefix + "instructions").add(d.instructions);
  reg.counter(prefix + "cache_references").add(d.cache_references);
  reg.counter(prefix + "cache_misses").add(d.cache_misses);
  reg.counter(prefix + "branch_misses").add(d.branch_misses);
  reg.counter(prefix + "wall_ns").add(d.wall_ns);
  reg.counter(prefix + "sections").inc();
}

void reset_thread_counter_group_for_testing() { t_group.reset(); }

}  // namespace waveck::prof
