// Floating-mode delay simulation (the Chen/Du/Devadas-Keutzer-Malik rules).
//
// Under floating mode the initial state of every net is unknown; applying an
// input vector at time 0, a gate output is guaranteed stable once
//   * some *controlling*-valued input has settled (earliest such input), or
//   * all inputs have settled (when no input settles at a controlling value).
// The per-vector settle time of the checked output is the exact floating
// delay for that vector; maximising over all vectors gives the circuit's
// floating-mode delay (paper Section 2). This simulator is the independent
// oracle used to validate test vectors produced by the case analysis, and
// (exhaustively, for small circuits) the ground truth for the whole method.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

/// Thrown when an exhaustive-oracle query would enumerate more than
/// 2^max_inputs vectors. Deliberately loud: silently clamping (or sampling)
/// would turn the ground-truth oracle into a lower bound and make every
/// differential check built on it unsound. Callers that can tolerate a
/// partial answer must choose that explicitly (e.g. Monte-Carlo in
/// sim/monte_carlo.hpp).
class OracleLimitError : public std::invalid_argument {
 public:
  OracleLimitError(const std::string& circuit, std::size_t inputs,
                   unsigned limit)
      : std::invalid_argument(
            "exhaustive floating-delay oracle on '" + circuit + "': " +
            std::to_string(inputs) + " primary inputs exceed the " +
            std::to_string(limit) +
            "-input enumeration limit (2^n vectors); raise max_inputs "
            "explicitly or use the Monte-Carlo bound instead"),
        inputs_(inputs),
        limit_(limit) {}
  [[nodiscard]] std::size_t inputs() const { return inputs_; }
  [[nodiscard]] unsigned limit() const { return limit_; }

 private:
  std::size_t inputs_;
  unsigned limit_;
};

struct FloatingResult {
  std::vector<bool> value;   // final value per net (indexed by NetId)
  std::vector<Time> settle;  // guaranteed-stable-after time per net
};

/// Simulates one vector. `inputs[i]` is the value of `c.inputs()[i]`.
[[nodiscard]] FloatingResult simulate_floating(const Circuit& c,
                                               const std::vector<bool>& inputs);

/// Worst floating settle time of net `s` over all input vectors, by
/// exhaustive enumeration. Requires <= `max_inputs` primary inputs.
[[nodiscard]] Time exhaustive_floating_delay(const Circuit& c, NetId s,
                                             unsigned max_inputs = 24);

/// Worst floating settle time over every primary output.
[[nodiscard]] Time exhaustive_floating_delay(const Circuit& c,
                                             unsigned max_inputs = 24);

/// Finds a vector whose settle time on `s` is >= delta, or nullopt.
[[nodiscard]] std::optional<std::vector<bool>> find_violating_vector(
    const Circuit& c, NetId s, Time delta, unsigned max_inputs = 24);

}  // namespace waveck
