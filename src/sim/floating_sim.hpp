// Floating-mode delay simulation (the Chen/Du/Devadas-Keutzer-Malik rules).
//
// Under floating mode the initial state of every net is unknown; applying an
// input vector at time 0, a gate output is guaranteed stable once
//   * some *controlling*-valued input has settled (earliest such input), or
//   * all inputs have settled (when no input settles at a controlling value).
// The per-vector settle time of the checked output is the exact floating
// delay for that vector; maximising over all vectors gives the circuit's
// floating-mode delay (paper Section 2). This simulator is the independent
// oracle used to validate test vectors produced by the case analysis, and
// (exhaustively, for small circuits) the ground truth for the whole method.
#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

struct FloatingResult {
  std::vector<bool> value;   // final value per net (indexed by NetId)
  std::vector<Time> settle;  // guaranteed-stable-after time per net
};

/// Simulates one vector. `inputs[i]` is the value of `c.inputs()[i]`.
[[nodiscard]] FloatingResult simulate_floating(const Circuit& c,
                                               const std::vector<bool>& inputs);

/// Worst floating settle time of net `s` over all input vectors, by
/// exhaustive enumeration. Requires <= `max_inputs` primary inputs.
[[nodiscard]] Time exhaustive_floating_delay(const Circuit& c, NetId s,
                                             unsigned max_inputs = 24);

/// Worst floating settle time over every primary output.
[[nodiscard]] Time exhaustive_floating_delay(const Circuit& c,
                                             unsigned max_inputs = 24);

/// Finds a vector whose settle time on `s` is >= delta, or nullopt.
[[nodiscard]] std::optional<std::vector<bool>> find_violating_vector(
    const Circuit& c, NetId s, Time delta, unsigned max_inputs = 24);

}  // namespace waveck
