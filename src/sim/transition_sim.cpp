#include "sim/transition_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace waveck {

AbstractSignal transition_input_signal(bool v1, bool v2) {
  AbstractSignal s;
  s.cls(!v2) = LtInterval::empty();
  s.cls(v2) = v1 == v2 ? LtInterval{Time::neg_inf(), Time::neg_inf()}
                       : LtInterval{Time(0), Time(0)};
  return s;
}

FloatingResult simulate_transition(const Circuit& c,
                                   const std::vector<bool>& v1,
                                   const std::vector<bool>& v2) {
  assert(v1.size() == c.inputs().size() && v2.size() == c.inputs().size());
  FloatingResult r;
  r.value.assign(c.num_nets(), false);
  r.settle.assign(c.num_nets(), Time::neg_inf());
  for (std::size_t i = 0; i < v2.size(); ++i) {
    const NetId in = c.inputs()[i];
    r.value[in.index()] = v2[i];
    r.settle[in.index()] = v1[i] == v2[i] ? Time::neg_inf() : Time(0);
  }

  std::vector<bool> invals;
  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    invals.clear();
    for (NetId in : g.ins) invals.push_back(r.value[in.index()]);
    const bool out = eval_gate(g.type, invals);

    Time t = Time::neg_inf();
    if (has_controlling_value(g.type)) {
      const bool cv = controlling_value(g.type);
      Time earliest_ctrl = Time::pos_inf();
      Time latest = Time::neg_inf();
      for (std::size_t i = 0; i < g.ins.size(); ++i) {
        const Time ti = r.settle[g.ins[i].index()];
        latest = Time::max(latest, ti);
        if (invals[i] == cv) earliest_ctrl = Time::min(earliest_ctrl, ti);
      }
      t = Time::min(earliest_ctrl, latest);
    } else if (g.type == GateType::kMux) {
      const Time ts = r.settle[g.ins[0].index()];
      const Time t0 = r.settle[g.ins[1].index()];
      const Time t1 = r.settle[g.ins[2].index()];
      const Time selected = Time::max(ts, invals[0] ? t1 : t0);
      const Time agree =
          invals[1] == invals[2] ? Time::max(t0, t1) : Time::pos_inf();
      t = Time::min(selected, agree);
    } else {
      for (NetId in : g.ins) t = Time::max(t, r.settle[in.index()]);
    }
    r.value[g.out.index()] = out;
    // A net that never transitions stays at -inf; delays only apply to
    // actual settling events.
    r.settle[g.out.index()] = t == Time::neg_inf() ? t : t + g.delay.dmax;
  }
  return r;
}

namespace {

template <class Visit>
void for_each_pair(const Circuit& c, unsigned max_inputs, Visit visit) {
  const std::size_t n = c.inputs().size();
  if (n > max_inputs) {
    throw std::invalid_argument(
        "exhaustive transition oracle limited to " +
        std::to_string(max_inputs) + " inputs; circuit has " +
        std::to_string(n));
  }
  std::vector<bool> v1(n), v2(n);
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t b1 = 0; b1 < total; ++b1) {
    for (std::size_t i = 0; i < n; ++i) v1[i] = (b1 >> i) & 1;
    for (std::uint64_t b2 = 0; b2 < total; ++b2) {
      for (std::size_t i = 0; i < n; ++i) v2[i] = (b2 >> i) & 1;
      visit(v1, v2);
    }
  }
}

}  // namespace

Time exhaustive_transition_delay(const Circuit& c, NetId s,
                                 unsigned max_inputs) {
  Time worst = Time::neg_inf();
  for_each_pair(c, max_inputs, [&](const auto& v1, const auto& v2) {
    worst = Time::max(worst,
                      simulate_transition(c, v1, v2).settle[s.index()]);
  });
  return worst;
}

Time exhaustive_transition_delay(const Circuit& c, unsigned max_inputs) {
  Time worst = Time::neg_inf();
  for_each_pair(c, max_inputs, [&](const auto& v1, const auto& v2) {
    const auto r = simulate_transition(c, v1, v2);
    for (NetId o : c.outputs()) {
      worst = Time::max(worst, r.settle[o.index()]);
    }
  });
  return worst;
}

std::vector<NetId> critical_true_path(const Circuit& c,
                                      const FloatingResult& r, NetId s) {
  std::vector<NetId> path{s};
  NetId cur = s;
  while (c.net(cur).driver.valid()) {
    const Gate& g = c.gate(c.net(cur).driver);
    // The input that determined the settle time, mirroring the simulator's
    // min/max rules.
    NetId pick = g.ins.front();
    if (has_controlling_value(g.type)) {
      const bool cv = controlling_value(g.type);
      Time earliest_ctrl = Time::pos_inf();
      NetId ctrl;
      Time latest = Time::neg_inf();
      NetId late = g.ins.front();
      for (NetId in : g.ins) {
        const Time ti = r.settle[in.index()];
        if (r.value[in.index()] == cv && ti < earliest_ctrl) {
          earliest_ctrl = ti;
          ctrl = in;
        }
        if (ti >= latest) {
          latest = ti;
          late = in;
        }
      }
      pick = ctrl.valid() && earliest_ctrl <= latest ? ctrl : late;
    } else if (g.type == GateType::kMux) {
      const bool sel = r.value[g.ins[0].index()];
      const NetId data = g.ins[sel ? 2 : 1];
      const NetId other = g.ins[sel ? 1 : 2];
      const Time selected =
          Time::max(r.settle[g.ins[0].index()], r.settle[data.index()]);
      const bool agree =
          r.value[g.ins[1].index()] == r.value[g.ins[2].index()];
      if (agree && Time::max(r.settle[data.index()],
                             r.settle[other.index()]) < selected) {
        pick = r.settle[data.index()] >= r.settle[other.index()] ? data
                                                                 : other;
      } else {
        pick = r.settle[g.ins[0].index()] >= r.settle[data.index()]
                   ? g.ins[0]
                   : data;
      }
    } else {
      Time latest = Time::neg_inf();
      for (NetId in : g.ins) {
        if (r.settle[in.index()] >= latest) {
          latest = r.settle[in.index()];
          pick = in;
        }
      }
    }
    cur = pick;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace waveck
