// Two-vector transition-mode delay (paper Section 1: the method "adapts to
// different circuit-delay modes (two-vector transition or floating mode) by
// a simple change in the abstract waveforms applied to the inputs").
//
// In transition mode a specific vector pair (V1, V2) is applied: every
// input is stable at V1[i] before time 0 and at V2[i] from time 0 on. The
// per-pair delay of an output is the time it is guaranteed stable; the
// transition delay of the circuit maximises over all pairs. Inputs that do
// not toggle have last-transition time -inf; toggling inputs transition
// exactly at 0 -- which is precisely the abstract-signal restriction
// (class V2[i] only, interval [0,0] or [-inf,-inf]) used by
// Verifier-level transition checks.
#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"
#include "sim/floating_sim.hpp"
#include "waveform/abstract_waveform.hpp"

namespace waveck {

/// Simulates the pair (v1 -> v2). Settle times follow the same
/// controlled/non-controlled rules as floating mode, except a non-toggling
/// input is stable from the start (time -inf).
[[nodiscard]] FloatingResult simulate_transition(const Circuit& c,
                                                 const std::vector<bool>& v1,
                                                 const std::vector<bool>& v2);

/// Worst transition settle time of net `s` over all vector pairs (2^(2n)
/// pairs; exhaustive oracle for small circuits).
[[nodiscard]] Time exhaustive_transition_delay(const Circuit& c, NetId s,
                                               unsigned max_inputs = 12);
[[nodiscard]] Time exhaustive_transition_delay(const Circuit& c,
                                               unsigned max_inputs = 12);

/// The abstract-signal restriction encoding "input i carries the
/// transition v1 -> v2 at time 0".
[[nodiscard]] AbstractSignal transition_input_signal(bool v1, bool v2);

/// One *sensitized* path that sets the settle time of `s` under a floating
/// or transition simulation: walks back from `s` through the input that
/// determined each gate's settle time (the earliest controlling input, or
/// the latest input otherwise). This is the "true path" witness
/// accompanying a test vector.
[[nodiscard]] std::vector<NetId> critical_true_path(const Circuit& c,
                                                    const FloatingResult& r,
                                                    NetId s);

}  // namespace waveck
