#include "sim/floating_sim.hpp"

#include <cassert>
#include <stdexcept>

namespace waveck {

FloatingResult simulate_floating(const Circuit& c,
                                 const std::vector<bool>& inputs) {
  assert(inputs.size() == c.inputs().size());
  FloatingResult r;
  r.value.assign(c.num_nets(), false);
  r.settle.assign(c.num_nets(), Time(0));

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    r.value[c.inputs()[i].index()] = inputs[i];
  }

  std::vector<bool> invals;
  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    invals.clear();
    for (NetId in : g.ins) invals.push_back(r.value[in.index()]);
    const bool out = eval_gate(g.type, invals);

    Time t = Time::neg_inf();
    if (has_controlling_value(g.type)) {
      const bool cv = controlling_value(g.type);
      Time earliest_ctrl = Time::pos_inf();
      Time latest = Time::neg_inf();
      for (std::size_t i = 0; i < g.ins.size(); ++i) {
        const Time ti = r.settle[g.ins[i].index()];
        latest = Time::max(latest, ti);
        if (invals[i] == cv) earliest_ctrl = Time::min(earliest_ctrl, ti);
      }
      t = Time::min(earliest_ctrl, latest);
    } else if (g.type == GateType::kMux) {
      const Time ts = r.settle[g.ins[0].index()];
      const Time t0 = r.settle[g.ins[1].index()];
      const Time t1 = r.settle[g.ins[2].index()];
      const Time selected = Time::max(ts, invals[0] ? t1 : t0);
      // When both data inputs agree, the select no longer matters once both
      // data inputs are stable.
      const Time agree = invals[1] == invals[2] ? Time::max(t0, t1)
                                                : Time::pos_inf();
      t = Time::min(selected, agree);
    } else {
      for (NetId in : g.ins) {
        t = Time::max(t, r.settle[in.index()]);
      }
    }
    r.value[g.out.index()] = out;
    r.settle[g.out.index()] = t + g.delay.dmax;
  }
  return r;
}

namespace {

template <class Visit>
void for_each_vector(const Circuit& c, unsigned max_inputs, Visit visit) {
  const std::size_t n = c.inputs().size();
  if (n > max_inputs || n >= 63) {
    // n >= 63 would overflow the vector-count shift below even if the
    // caller raised max_inputs — an impossible enumeration either way, so
    // diagnose rather than wrap silently.
    throw OracleLimitError(c.name(), n, n > max_inputs ? max_inputs : 62);
  }
  std::vector<bool> v(n, false);
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (std::size_t i = 0; i < n; ++i) v[i] = (bits >> i) & 1;
    if (!visit(v)) return;
  }
}

}  // namespace

Time exhaustive_floating_delay(const Circuit& c, NetId s,
                               unsigned max_inputs) {
  Time worst = Time::neg_inf();
  for_each_vector(c, max_inputs, [&](const std::vector<bool>& v) {
    const auto r = simulate_floating(c, v);
    worst = Time::max(worst, r.settle[s.index()]);
    return true;
  });
  return worst;
}

Time exhaustive_floating_delay(const Circuit& c, unsigned max_inputs) {
  Time worst = Time::neg_inf();
  for_each_vector(c, max_inputs, [&](const std::vector<bool>& v) {
    const auto r = simulate_floating(c, v);
    for (NetId o : c.outputs()) {
      worst = Time::max(worst, r.settle[o.index()]);
    }
    return true;
  });
  return worst;
}

std::optional<std::vector<bool>> find_violating_vector(const Circuit& c,
                                                       NetId s, Time delta,
                                                       unsigned max_inputs) {
  std::optional<std::vector<bool>> found;
  for_each_vector(c, max_inputs, [&](const std::vector<bool>& v) {
    const auto r = simulate_floating(c, v);
    if (r.settle[s.index()] >= delta) {
      found = v;
      return false;
    }
    return true;
  });
  return found;
}

}  // namespace waveck
