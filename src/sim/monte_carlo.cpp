#include "sim/monte_carlo.hpp"

#include "sim/floating_sim.hpp"

namespace waveck {
namespace {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b9) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1d;
  }
};

/// Worst settle over outputs; also reports the output.
Time worst_settle(const Circuit& c, const FloatingResult& r, NetId* where) {
  Time worst = Time::neg_inf();
  for (NetId o : c.outputs()) {
    if (r.settle[o.index()] >= worst) {
      worst = r.settle[o.index()];
      if (where != nullptr) *where = o;
    }
  }
  return worst;
}

}  // namespace

SampledDelay sampled_floating_delay(const Circuit& c, std::size_t samples,
                                    std::uint64_t seed) {
  Rng rng(seed);
  SampledDelay best;
  const std::size_t n = c.inputs().size();
  std::vector<bool> v(n);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < n; ++i) v[i] = rng.next() & 1;
    const auto r = simulate_floating(c, v);
    NetId where;
    const Time t = worst_settle(c, r, &where);
    ++best.samples;
    if (t > best.delay) {
      best.delay = t;
      best.witness = v;
      best.output = where;
    }
  }
  return best;
}

SampledDelay refined_floating_delay(const Circuit& c, std::size_t samples,
                                    std::uint64_t seed) {
  SampledDelay best = sampled_floating_delay(c, samples, seed);
  if (best.witness.empty()) return best;
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < best.witness.size(); ++i) {
      std::vector<bool> v = best.witness;
      v[i] = !v[i];
      const auto r = simulate_floating(c, v);
      NetId where;
      const Time t = worst_settle(c, r, &where);
      ++best.samples;
      if (t > best.delay) {
        best.delay = t;
        best.witness = std::move(v);
        best.output = where;
        improved = true;
      }
    }
  }
  return best;
}

}  // namespace waveck
