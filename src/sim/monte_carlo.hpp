// Monte-Carlo floating-delay estimation.
//
// For circuits too wide for the exhaustive oracle, random-vector sampling
// gives a *lower* bound on the floating-mode delay plus the best witness
// found. Useful as a sanity band around the verifier's exact result (exact
// >= sampled always) and as a quick profiling tool.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

struct SampledDelay {
  Time delay = Time::neg_inf();  // best settle seen (lower bound on exact)
  std::vector<bool> witness;     // vector achieving it
  NetId output;                  // where it settled last
  std::size_t samples = 0;
};

/// Simulates `samples` uniformly random vectors (deterministic per seed).
[[nodiscard]] SampledDelay sampled_floating_delay(const Circuit& c,
                                                  std::size_t samples,
                                                  std::uint64_t seed = 1);

/// Greedy refinement: starting from the sampled best, flips single input
/// bits while the settle time improves (usually tightens the bound
/// considerably on arithmetic circuits).
[[nodiscard]] SampledDelay refined_floating_delay(const Circuit& c,
                                                  std::size_t samples,
                                                  std::uint64_t seed = 1);

}  // namespace waveck
