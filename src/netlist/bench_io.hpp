// ISCAS'85/'89 `.bench` netlist reader and writer (combinational subset).
//
// Grammar (per the Brglez-Fujiwara neutral netlist format):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(in1, in2, ...)
// Supported gate keywords: AND, NAND, OR, NOR, XOR, XNOR, NOT, INV, BUF,
// BUFF, DELAY, MUX. Sequential elements (DFF) are rejected with a parse
// error: the method targets combinational timing checks.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace waveck {

/// Parses a `.bench` netlist. `name` labels the resulting circuit (used in
/// reports). Throws ParseError / CircuitError on malformed input. The
/// returned circuit is finalized.
[[nodiscard]] Circuit read_bench(std::istream& is, std::string name = "bench");
[[nodiscard]] Circuit read_bench_string(const std::string& text,
                                        std::string name = "bench");
[[nodiscard]] Circuit read_bench_file(const std::string& path);

/// Writes a `.bench` netlist (delays are not part of the format; use
/// write_delays / read_delays for those).
void write_bench(std::ostream& os, const Circuit& c);
[[nodiscard]] std::string write_bench_string(const Circuit& c);

}  // namespace waveck
