// Netlist transforms: solver canonicalization and NOR technology mapping.
//
// The paper evaluates *NOR-gate implementations* of the ISCAS'85 circuits
// with a uniform delay of 10 on every gate output; `map_to_nor` performs
// that re-implementation. `decompose_for_solver` canonicalizes wide
// XOR/XNOR gates (and optionally MUXes) into the 2-input forms the
// constraint projections are exact for.
#pragma once

#include "netlist/circuit.hpp"

namespace waveck {

struct DecomposeOptions {
  /// Split XOR/XNOR with > 2 inputs into balanced 2-input trees.
  bool split_wide_xor = true;
  /// Replace MUX(s,d0,d1) by (NOT s AND d0) OR (s AND d1). When false, MUX
  /// is kept for the dedicated complex-gate constraint model.
  bool lower_mux = false;
};

/// Returns a functionally equivalent circuit in solver-canonical form.
/// Net names are preserved; helper nets get a `__d<N>` suffix. New gates
/// introduced by a split inherit zero delay except the final gate of each
/// tree, which inherits the original gate's delay (so path lengths are
/// preserved exactly for trees of depth 1; deeper trees distribute delay 0
/// on inner nodes, keeping the original gate's [dmin,dmax] on the root).
[[nodiscard]] Circuit decompose_for_solver(const Circuit& c,
                                           const DecomposeOptions& opt = {});

/// Re-implements every gate with NOR gates only (a k-input NOR plus the
/// 1-input NOR as inverter), as in the paper's experimental setup. The
/// resulting circuit has all-zero delays; callers typically follow with
/// `set_uniform_delay(DelaySpec::fixed(10))`.
[[nodiscard]] Circuit map_to_nor(const Circuit& c);

/// Inserts a zero-delay BUF after each net in `nets` and rewires that net's
/// *gate fanouts* to read the buffered copy (primary-output declarations
/// stay on the original net, so the interface is unchanged). Identity
/// function + zero delay means the transform preserves both the Boolean
/// function and every floating-mode settle time exactly — the differential
/// fuzzer uses it as a semantics-preserving mutation that any analysis must
/// be invariant under. Requests naming nonexistent nets are ignored;
/// duplicates insert a single buffer.
[[nodiscard]] Circuit insert_buffers(const Circuit& c,
                                     const std::vector<NetId>& nets);

/// Gate-count statistics helper.
struct GateHistogram {
  std::array<std::size_t, 10> count{};
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t of(GateType t) const {
    return count[static_cast<std::size_t>(t)];
  }
};
[[nodiscard]] GateHistogram histogram(const Circuit& c);

}  // namespace waveck
