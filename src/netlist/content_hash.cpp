#include "netlist/content_hash.hpp"

#include <cstddef>

#include "netlist/circuit.hpp"

namespace waveck {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv1a {
  std::uint64_t h = kFnvOffset;

  void byte(std::uint8_t b) {
    h ^= b;
    h *= kFnvPrime;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    // Length-prefixed so {"ab","c"} and {"a","bc"} never collide.
    u64(s.size());
    for (char ch : s) byte(static_cast<std::uint8_t>(ch));
  }
};

}  // namespace

std::uint64_t content_hash(const Circuit& c) {
  Fnv1a f;
  f.u64(c.num_nets());
  for (NetId n : c.all_nets()) {
    const Net& net = c.net(n);
    f.str(net.name);
    f.byte(net.is_primary_input ? 1 : 0);
    f.byte(net.is_primary_output ? 1 : 0);
  }
  f.u64(c.num_gates());
  for (GateId g : c.all_gates()) {
    const Gate& gate = c.gate(g);
    f.byte(static_cast<std::uint8_t>(gate.type));
    f.i64(gate.delay.dmin);
    f.i64(gate.delay.dmax);
    f.i64(gate.delay.group);
    f.u64(gate.out.index());
    f.u64(gate.ins.size());
    for (NetId in : gate.ins) f.u64(in.index());
  }
  // Declaration order of the primary I/O matters to the engine (suite plans
  // and vectors are indexed by it), so it is part of the identity.
  f.u64(c.inputs().size());
  for (NetId n : c.inputs()) f.u64(n.index());
  f.u64(c.outputs().size());
  for (NetId n : c.outputs()) f.u64(n.index());
  return f.h;
}

std::string content_hash_hex(const Circuit& c) {
  const std::uint64_t h = content_hash(c);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    const auto nibble =
        static_cast<unsigned>((h >> (4 * (15 - i))) & 0xF);
    out[static_cast<std::size_t>(i)] =
        static_cast<char>(nibble < 10 ? '0' + nibble : 'a' + (nibble - 10));
  }
  return out;
}

}  // namespace waveck
