// SDF-lite delay back-annotation (paper Section 7 mentions SDF processing).
//
// Text format, one record per line:
//   <output-net-name> <dmin> <dmax> [<group>]
// applied to the gate driving the named net. `*` as the net name sets the
// default for every gate not otherwise annotated. The optional non-negative
// <group> assigns the gate to a correlated-delay group (shared physical
// delay variable; see analysis/delay_correlation.hpp). Comments start with
// `#`.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace waveck {

/// Applies annotations from `is` to `c`. Throws ParseError on malformed
/// records or unknown nets. Returns the number of gates annotated.
std::size_t read_delays(std::istream& is, Circuit& c,
                        const std::string& source_name = "delays");
std::size_t read_delays_string(const std::string& text, Circuit& c);
std::size_t read_delays_file(const std::string& path, Circuit& c);

/// Writes every gate's delay as an annotation record.
void write_delays(std::ostream& os, const Circuit& c);

}  // namespace waveck
