// Structural content hash of a circuit.
//
// The serve daemon (src/serve) keys resident circuits by (namespace name,
// content hash): a re-`load` under the same name is idempotent when the
// netlist is byte-for-byte the same structure and rejected (hash_mismatch)
// when it is not, so two clients can never silently run checks against
// different circuits under one name.
//
// The hash covers everything the verification result depends on — net
// names, gate types, connectivity, delay intervals and correlation groups,
// input/output declarations — and nothing it does not (no pointers, no
// construction order beyond the stored net/gate order, which the engine
// itself treats as significant). FNV-1a 64 over a flat serialization:
// stable across processes and runs, not across changes to this file.
#pragma once

#include <cstdint>
#include <string>

namespace waveck {

class Circuit;

/// 64-bit FNV-1a over the circuit's structure and delays. The circuit must
/// be finalized (the hash includes the input/output declarations).
[[nodiscard]] std::uint64_t content_hash(const Circuit& c);

/// The hash as fixed-width lowercase hex ("%016x") — the wire form used in
/// serve `load`/`list` responses.
[[nodiscard]] std::string content_hash_hex(const Circuit& c);

}  // namespace waveck
