// Topological (longest-path) delay queries (paper Section 2).
//
//   top_n        — length of the longest input->n path
//   top_{x->s}   — length of the longest x->s path
//   top          — circuit topological delay (max over outputs)
//
// Path length is the sum of gate dmax along the path (the paper attributes
// delay to DELAY elements; we attribute it to every gate's output, which is
// the same thing once DELAY elements are gates).
#pragma once

#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"

namespace waveck {

/// top_n for every net, indexed by NetId. Primary inputs are 0.
[[nodiscard]] std::vector<Time> topo_arrival(const Circuit& c);

/// Earliest-arrival counterpart (shortest path over dmin): the classic STA
/// min-delay bound used for hold-style checks.
[[nodiscard]] std::vector<Time> topo_arrival_min(const Circuit& c);

/// top_{x->s} for every net x and a fixed target net s, indexed by NetId.
/// Time::neg_inf() for nets with no path to s; top_{s->s} = 0.
[[nodiscard]] std::vector<Time> topo_to_target(const Circuit& c, NetId s);

/// Circuit topological delay: max over primary outputs of top_n.
[[nodiscard]] Time topological_delay(const Circuit& c);

/// One longest input->s path as a net sequence (critical path witness for
/// the STA baseline).
[[nodiscard]] std::vector<NetId> longest_path_to(const Circuit& c, NetId s);

}  // namespace waveck
