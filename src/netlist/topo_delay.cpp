#include "netlist/topo_delay.hpp"

#include <algorithm>

namespace waveck {

std::vector<Time> topo_arrival(const Circuit& c) {
  std::vector<Time> top(c.num_nets(), Time(0));
  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    Time worst = Time::neg_inf();
    for (NetId in : g.ins) worst = Time::max(worst, top[in.index()]);
    if (g.ins.empty()) worst = Time(0);
    top[g.out.index()] = worst + g.delay.dmax;
  }
  return top;
}

std::vector<Time> topo_arrival_min(const Circuit& c) {
  std::vector<Time> t(c.num_nets(), Time(0));
  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    Time best = Time::pos_inf();
    for (NetId in : g.ins) best = Time::min(best, t[in.index()]);
    if (g.ins.empty()) best = Time(0);
    t[g.out.index()] = best + g.delay.dmin;
  }
  return t;
}

std::vector<Time> topo_to_target(const Circuit& c, NetId s) {
  std::vector<Time> dist(c.num_nets(), Time::neg_inf());
  dist[s.index()] = Time(0);
  const auto& order = c.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& g = c.gate(*it);
    const Time via = dist[g.out.index()];
    if (via == Time::neg_inf()) continue;
    const Time through = via + g.delay.dmax;
    for (NetId in : g.ins) {
      dist[in.index()] = Time::max(dist[in.index()], through);
    }
  }
  return dist;
}

Time topological_delay(const Circuit& c) {
  const auto top = topo_arrival(c);
  Time worst = Time::neg_inf();
  for (NetId o : c.outputs()) worst = Time::max(worst, top[o.index()]);
  return worst;
}

std::vector<NetId> longest_path_to(const Circuit& c, NetId s) {
  const auto top = topo_arrival(c);
  std::vector<NetId> path;
  NetId cur = s;
  path.push_back(cur);
  while (c.net(cur).driver.valid()) {
    const Gate& g = c.gate(c.net(cur).driver);
    // Pick the input on the longest path: top(in) + dmax == top(out).
    NetId best = g.ins.front();
    for (NetId in : g.ins) {
      if (top[in.index()] > top[best.index()]) best = in;
    }
    cur = best;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace waveck
