// Combinational gate-level circuit as a DAG of gates over delayless nets
// (paper Section 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/ids.hpp"
#include "netlist/gate.hpp"

namespace waveck {

struct Gate {
  GateType type = GateType::kBuf;
  DelaySpec delay;
  NetId out;
  std::vector<NetId> ins;
};

struct Net {
  std::string name;
  GateId driver;                // invalid for primary inputs
  std::vector<GateId> fanouts;  // gates with this net as an input
  bool is_primary_input = false;
  bool is_primary_output = false;
};

/// A combinational circuit. Build with `add_net` / `add_gate` /
/// `declare_input` / `declare_output`, then call `finalize()` once; most
/// queries require a finalized circuit.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  // ----- construction -----------------------------------------------------
  NetId add_net(std::string name);
  /// Returns an existing net by name or creates it.
  NetId net_by_name_or_add(std::string_view name);
  GateId add_gate(GateType type, NetId out, std::vector<NetId> ins,
                  DelaySpec delay = {});
  void declare_input(NetId n);
  void declare_output(NetId n);

  /// Validates the structure (every net driven xor declared input, no
  /// multiple drivers, acyclic), computes the topological gate order and
  /// fanout lists. Throws CircuitError on violation.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  // ----- queries ----------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }

  [[nodiscard]] const Net& net(NetId id) const { return nets_[id.index()]; }
  [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id.index()]; }
  [[nodiscard]] Gate& gate_mut(GateId id) { return gates_[id.index()]; }

  [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& outputs() const { return outputs_; }

  /// Gates in topological (fanin-before-fanout) order; finalized only.
  [[nodiscard]] const std::vector<GateId>& topo_order() const {
    return topo_order_;
  }

  [[nodiscard]] std::optional<NetId> find_net(std::string_view name) const;

  /// Iteration helpers.
  [[nodiscard]] std::vector<NetId> all_nets() const;
  [[nodiscard]] std::vector<GateId> all_gates() const;

  /// Sets every gate delay to `d` (the paper's uniform-delay experiments).
  void set_uniform_delay(DelaySpec d);

  /// Nets with >= 2 fanout branches (candidate stems for stem correlation).
  [[nodiscard]] std::vector<NetId> fanout_stems() const;

  /// True iff `stem` reconverges: two distinct fanout branches reach a common
  /// gate downstream. Finalized only.
  [[nodiscard]] bool is_reconvergent_stem(NetId stem) const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<GateId> topo_order_;
  std::unordered_map<std::string, NetId> by_name_;
  bool finalized_ = false;
};

}  // namespace waveck
