#include "netlist/transforms.hpp"

#include <array>
#include <string>
#include <vector>

namespace waveck {
namespace {

/// Incremental builder that copies the net space of a source circuit and
/// appends helper nets with unique names.
class Rebuilder {
 public:
  explicit Rebuilder(const Circuit& src, std::string suffix)
      : src_(src), out_(src.name()), suffix_(std::move(suffix)) {
    map_.reserve(src.num_nets());
    for (NetId n : src.all_nets()) {
      const NetId nn = out_.add_net(src.net(n).name);
      map_.push_back(nn);
      if (src.net(n).is_primary_input) out_.declare_input(nn);
      if (src.net(n).is_primary_output) out_.declare_output(nn);
    }
  }

  [[nodiscard]] NetId mapped(NetId src_net) const {
    return map_[src_net.index()];
  }

  [[nodiscard]] NetId fresh_net() {
    return out_.add_net("n" + suffix_ + std::to_string(counter_++));
  }

  GateId emit(GateType t, NetId out, std::vector<NetId> ins, DelaySpec d) {
    return out_.add_gate(t, out, std::move(ins), d);
  }

  [[nodiscard]] Circuit finish() {
    out_.finalize();
    return std::move(out_);
  }

 private:
  const Circuit& src_;
  Circuit out_;
  std::string suffix_;
  std::vector<NetId> map_;
  std::size_t counter_ = 0;
};

}  // namespace

Circuit decompose_for_solver(const Circuit& c, const DecomposeOptions& opt) {
  Rebuilder rb(c, "__d");
  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    std::vector<NetId> ins;
    ins.reserve(g.ins.size());
    for (NetId i : g.ins) ins.push_back(rb.mapped(i));
    const NetId out = rb.mapped(g.out);

    if (opt.split_wide_xor && is_xor_like(g.type) && ins.size() > 2) {
      // Balanced tree of 2-input XORs; the root carries the original type
      // (XOR vs XNOR) and the original delay.
      std::vector<NetId> layer = ins;
      while (layer.size() > 2) {
        std::vector<NetId> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
          const NetId t = rb.fresh_net();
          rb.emit(GateType::kXor, t, {layer[i], layer[i + 1]}, DelaySpec{});
          next.push_back(t);
        }
        if (layer.size() % 2) next.push_back(layer.back());
        layer = std::move(next);
      }
      rb.emit(g.type, out, {layer[0], layer[1]}, g.delay);
      continue;
    }

    if (opt.lower_mux && g.type == GateType::kMux) {
      // out = (NOT s AND d0) OR (s AND d1); delay kept on the final OR.
      const NetId s = ins[0], d0 = ins[1], d1 = ins[2];
      const NetId ns = rb.fresh_net();
      const NetId a0 = rb.fresh_net();
      const NetId a1 = rb.fresh_net();
      rb.emit(GateType::kNot, ns, {s}, DelaySpec{});
      rb.emit(GateType::kAnd, a0, {ns, d0}, DelaySpec{});
      rb.emit(GateType::kAnd, a1, {s, d1}, DelaySpec{});
      rb.emit(GateType::kOr, out, {a0, a1}, g.delay);
      continue;
    }

    rb.emit(g.type, out, std::move(ins), g.delay);
  }
  return rb.finish();
}

Circuit map_to_nor(const Circuit& c) {
  Rebuilder rb(c, "__nor");
  const DelaySpec z{};

  auto inv = [&](NetId a) {
    const NetId t = rb.fresh_net();
    rb.emit(GateType::kNor, t, {a}, z);
    return t;
  };
  // 4-NOR XNOR cell: n = NOR(a,b); XNOR(a,b) = NOR(NOR(a,n), NOR(b,n)).
  auto xnor_into = [&](NetId a, NetId b, NetId out) {
    const NetId n = rb.fresh_net();
    const NetId x = rb.fresh_net();
    const NetId y = rb.fresh_net();
    rb.emit(GateType::kNor, n, {a, b}, z);
    rb.emit(GateType::kNor, x, {a, n}, z);
    rb.emit(GateType::kNor, y, {b, n}, z);
    rb.emit(GateType::kNor, out, {x, y}, z);
  };

  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    std::vector<NetId> ins;
    ins.reserve(g.ins.size());
    for (NetId i : g.ins) ins.push_back(rb.mapped(i));
    const NetId out = rb.mapped(g.out);

    switch (g.type) {
      case GateType::kNor:
        rb.emit(GateType::kNor, out, std::move(ins), z);
        break;
      case GateType::kOr: {
        const NetId t = rb.fresh_net();
        rb.emit(GateType::kNor, t, std::move(ins), z);
        rb.emit(GateType::kNor, out, {t}, z);
        break;
      }
      case GateType::kNot:
        rb.emit(GateType::kNor, out, {ins[0]}, z);
        break;
      case GateType::kBuf:
      case GateType::kDelay: {
        const NetId t = inv(ins[0]);
        rb.emit(GateType::kNor, out, {t}, z);
        break;
      }
      case GateType::kAnd: {
        std::vector<NetId> invd;
        invd.reserve(ins.size());
        for (NetId i : ins) invd.push_back(inv(i));
        rb.emit(GateType::kNor, out, std::move(invd), z);
        break;
      }
      case GateType::kNand: {
        std::vector<NetId> invd;
        invd.reserve(ins.size());
        for (NetId i : ins) invd.push_back(inv(i));
        const NetId t = rb.fresh_net();
        rb.emit(GateType::kNor, t, std::move(invd), z);
        rb.emit(GateType::kNor, out, {t}, z);
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        if (ins.size() == 1) {  // degenerate: XOR(a) = a, XNOR(a) = !a
          if (g.type == GateType::kXnor) {
            rb.emit(GateType::kNor, out, {ins[0]}, z);
          } else {
            const NetId t = inv(ins[0]);
            rb.emit(GateType::kNor, out, {t}, z);
          }
          break;
        }
        // Reduce wide gates pairwise: XOR...XOR, final stage fixes parity.
        std::vector<NetId> layer = ins;
        while (layer.size() > 2) {
          std::vector<NetId> next;
          for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            const NetId xn = rb.fresh_net();
            xnor_into(layer[i], layer[i + 1], xn);
            next.push_back(inv(xn));  // XOR = NOT XNOR
          }
          if (layer.size() % 2) next.push_back(layer.back());
          layer = std::move(next);
        }
        const NetId a = layer[0];
        const NetId b = layer[1];
        if (g.type == GateType::kXnor) {
          xnor_into(a, b, out);
        } else {
          const NetId xn = rb.fresh_net();
          xnor_into(a, b, xn);
          rb.emit(GateType::kNor, out, {xn}, z);
        }
        break;
      }
      case GateType::kMux: {
        // (NOT s AND d0) OR (s AND d1) in NORs:
        // a0 = NOR(s, nd0); a1 = NOR(ns, nd1); out = NOR(NOR(a0,a1)) -- via
        // OR(a0,a1) = NOR(NOR(a0,a1)): a0 = !s & d0 = NOR(s, !d0).
        const NetId s = ins[0], d0 = ins[1], d1 = ins[2];
        const NetId nd0 = inv(d0);
        const NetId nd1 = inv(d1);
        const NetId ns = inv(s);
        const NetId a0 = rb.fresh_net();
        const NetId a1 = rb.fresh_net();
        const NetId o = rb.fresh_net();
        rb.emit(GateType::kNor, a0, {s, nd0}, z);
        rb.emit(GateType::kNor, a1, {ns, nd1}, z);
        rb.emit(GateType::kNor, o, {a0, a1}, z);
        rb.emit(GateType::kNor, out, {o}, z);
        break;
      }
    }
  }
  return rb.finish();
}

Circuit insert_buffers(const Circuit& c, const std::vector<NetId>& nets) {
  std::vector<bool> selected(c.num_nets(), false);
  for (NetId n : nets) {
    if (n.index() < c.num_nets()) selected[n.index()] = true;
  }
  Rebuilder rb(c, "__buf");
  // Read-side alias: fanout gates of a selected net read its buffered copy;
  // the original net keeps its driver and any primary-output declaration.
  std::vector<NetId> alias(c.num_nets());
  for (NetId n : c.all_nets()) alias[n.index()] = rb.mapped(n);
  const auto buffer_now = [&](NetId src) {
    const NetId b = rb.fresh_net();
    rb.emit(GateType::kBuf, b, {rb.mapped(src)}, DelaySpec{});
    alias[src.index()] = b;
  };
  for (NetId in : c.inputs()) {
    if (selected[in.index()]) buffer_now(in);
  }
  for (GateId gid : c.topo_order()) {
    const Gate& g = c.gate(gid);
    std::vector<NetId> ins;
    ins.reserve(g.ins.size());
    for (NetId i : g.ins) ins.push_back(alias[i.index()]);
    rb.emit(g.type, rb.mapped(g.out), std::move(ins), g.delay);
    if (selected[g.out.index()]) buffer_now(g.out);
  }
  return rb.finish();
}

std::size_t GateHistogram::total() const {
  std::size_t t = 0;
  for (auto c : count) t += c;
  return t;
}

GateHistogram histogram(const Circuit& c) {
  GateHistogram h;
  for (GateId g : c.all_gates()) {
    ++h.count[static_cast<std::size_t>(c.gate(g).type)];
  }
  return h;
}

}  // namespace waveck
