#include "netlist/delay_annotation.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/diagnostics.hpp"

namespace waveck {

std::size_t read_delays(std::istream& is, Circuit& c,
                        const std::string& source_name) {
  std::string line;
  int lineno = 0;
  std::size_t applied = 0;
  bool have_default = false;
  DelaySpec def;
  std::vector<bool> touched(c.num_gates(), false);

  while (std::getline(is, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream ls(line);
    std::string net_name;
    if (!(ls >> net_name)) continue;
    std::int64_t dmin = 0, dmax = 0;
    if (!(ls >> dmin >> dmax)) {
      throw ParseError(source_name, lineno,
                       "expected `<net> <dmin> <dmax> [<group>]`");
    }
    if (dmin < 0 || dmin > dmax) {
      throw ParseError(source_name, lineno, "need 0 <= dmin <= dmax");
    }
    std::int64_t group = -1;
    if (ls >> group) {
      if (group < 0) {
        throw ParseError(source_name, lineno, "group must be non-negative");
      }
    } else {
      group = -1;  // stream extraction zeroes the target on failure
    }
    DelaySpec spec{dmin, dmax};
    spec.group = static_cast<std::int32_t>(group);
    if (net_name == "*") {
      def = spec;
      have_default = true;
      continue;
    }
    const auto net = c.find_net(net_name);
    if (!net) throw ParseError(source_name, lineno, "unknown net " + net_name);
    const GateId g = c.net(*net).driver;
    if (!g.valid()) {
      throw ParseError(source_name, lineno,
                       "net " + net_name + " is a primary input");
    }
    c.gate_mut(g).delay = spec;
    touched[g.index()] = true;
    ++applied;
  }
  if (have_default) {
    for (GateId g : c.all_gates()) {
      if (!touched[g.index()]) {
        c.gate_mut(g).delay = def;
        ++applied;
      }
    }
  }
  return applied;
}

std::size_t read_delays_string(const std::string& text, Circuit& c) {
  std::istringstream is(text);
  return read_delays(is, c, "delays");
}

std::size_t read_delays_file(const std::string& path, Circuit& c) {
  std::ifstream is(path);
  if (!is) throw ParseError(path, 0, "cannot open file");
  return read_delays(is, c, path);
}

void write_delays(std::ostream& os, const Circuit& c) {
  os << "# delay annotation for " << c.name() << "\n";
  for (GateId g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    os << c.net(gate.out).name << " " << gate.delay.dmin << " "
       << gate.delay.dmax;
    if (gate.delay.group >= 0) os << " " << gate.delay.group;
    os << "\n";
  }
}

}  // namespace waveck
