#include "netlist/verilog_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/diagnostics.hpp"

namespace waveck {
namespace {

/// Tokenizer: strips // and /* */ comments, splits identifiers, numbers and
/// punctuation, and tracks line numbers for diagnostics.
class Lexer {
 public:
  struct Token {
    std::string text;
    int line;
  };

  Lexer(std::istream& is, std::string file) : file_(std::move(file)) {
    std::string line;
    int lineno = 0;
    bool in_block_comment = false;
    while (std::getline(is, line)) {
      ++lineno;
      std::string clean;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (in_block_comment) {
          if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            in_block_comment = false;
            ++i;
          }
          continue;
        }
        if (line[i] == '/' && i + 1 < line.size()) {
          if (line[i + 1] == '/') break;
          if (line[i + 1] == '*') {
            in_block_comment = true;
            ++i;
            continue;
          }
        }
        clean += line[i];
      }
      lex_line(clean, lineno);
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const Token& peek() const {
    if (done()) throw ParseError(file_, last_line_, "unexpected end of file");
    return tokens_[pos_];
  }
  Token next() {
    const Token t = peek();
    ++pos_;
    return t;
  }
  Token expect(const std::string& text) {
    const Token t = next();
    if (t.text != text) {
      throw ParseError(file_, t.line,
                       "expected `" + text + "`, got `" + t.text + "`");
    }
    return t;
  }
  [[nodiscard]] const std::string& file() const { return file_; }

 private:
  void lex_line(const std::string& s, int lineno) {
    std::size_t i = 0;
    auto is_ident = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '$' || c == '.';
    };
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (is_ident(c) || c == '\\') {
        std::string t;
        if (c == '\\') {  // escaped identifier: up to whitespace
          ++i;
          while (i < s.size() &&
                 !std::isspace(static_cast<unsigned char>(s[i]))) {
            t += s[i++];
          }
        } else {
          while (i < s.size() && is_ident(s[i])) t += s[i++];
        }
        tokens_.push_back({t, lineno});
      } else {
        tokens_.push_back({std::string(1, c), lineno});
        ++i;
      }
      last_line_ = lineno;
    }
  }

  std::string file_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int last_line_ = 1;
};

std::optional<GateType> primitive(const std::string& kw) {
  if (kw == "and") return GateType::kAnd;
  if (kw == "nand") return GateType::kNand;
  if (kw == "or") return GateType::kOr;
  if (kw == "nor") return GateType::kNor;
  if (kw == "xor") return GateType::kXor;
  if (kw == "xnor") return GateType::kXnor;
  if (kw == "not") return GateType::kNot;
  if (kw == "buf") return GateType::kBuf;
  return std::nullopt;
}

bool is_keyword(const std::string& t) {
  return t == "module" || t == "endmodule" || t == "input" ||
         t == "output" || t == "wire" || primitive(t).has_value();
}

}  // namespace

Circuit read_verilog(std::istream& is, std::string fallback_name) {
  Lexer lex(is, fallback_name);
  Circuit c(std::move(fallback_name));

  lex.expect("module");
  const auto name_tok = lex.next();
  c.set_name(name_tok.text);
  // Port list (names only; direction comes from the declarations).
  if (lex.peek().text == "(") {
    lex.next();
    while (lex.peek().text != ")") {
      lex.next();  // port name or comma
    }
    lex.next();  // ')'
  }
  lex.expect(";");

  auto read_name_list = [&](auto&& per_name) {
    for (;;) {
      const auto t = lex.next();
      if (t.text == ";") break;
      if (t.text == ",") continue;
      if (t.text == "[") {
        throw ParseError(lex.file(), t.line,
                         "vector nets are not supported (scalar gate-level "
                         "netlists only)");
      }
      per_name(t.text, t.line);
    }
  };

  while (!lex.done()) {
    const auto t = lex.next();
    if (t.text == "endmodule") {
      c.finalize();
      return c;
    }
    if (t.text == "input") {
      read_name_list([&](const std::string& n, int) {
        c.declare_input(c.net_by_name_or_add(n));
      });
      continue;
    }
    if (t.text == "output") {
      read_name_list([&](const std::string& n, int) {
        c.declare_output(c.net_by_name_or_add(n));
      });
      continue;
    }
    if (t.text == "wire") {
      read_name_list([&](const std::string& n, int) {
        c.net_by_name_or_add(n);
      });
      continue;
    }
    const auto prim = primitive(t.text);
    if (!prim) {
      throw ParseError(lex.file(), t.line,
                       "unsupported construct `" + t.text +
                           "` (structural gate primitives only)");
    }
    // Optional instance name, then (out, in...);
    if (lex.peek().text != "(") {
      const auto inst = lex.next();
      if (is_keyword(inst.text) || inst.text == "(") {
        throw ParseError(lex.file(), inst.line, "malformed instantiation");
      }
    }
    lex.expect("(");
    std::vector<NetId> terminals;
    for (;;) {
      const auto tok = lex.next();
      if (tok.text == ")") break;
      if (tok.text == ",") continue;
      terminals.push_back(c.net_by_name_or_add(tok.text));
    }
    lex.expect(";");
    if (terminals.size() < 2) {
      throw ParseError(lex.file(), t.line,
                       "primitive needs an output and at least one input");
    }
    const NetId out = terminals.front();
    terminals.erase(terminals.begin());
    try {
      c.add_gate(*prim, out, std::move(terminals));
    } catch (const CircuitError& e) {
      throw ParseError(lex.file(), t.line, e.what());
    }
  }
  throw ParseError(lex.file(), 0, "missing endmodule");
}

Circuit read_verilog_string(const std::string& text,
                            std::string fallback_name) {
  std::istringstream is(text);
  return read_verilog(is, std::move(fallback_name));
}

Circuit read_verilog_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ParseError(path, 0, "cannot open file");
  auto slash = path.find_last_of('/');
  return read_verilog(is, slash == std::string::npos
                              ? path
                              : path.substr(slash + 1));
}

void write_verilog(std::ostream& os, const Circuit& c) {
  auto id = [](const std::string& n) {
    // Identifiers that are not plain Verilog names get escaped.
    bool plain = !n.empty() && !std::isdigit(static_cast<unsigned char>(n[0]));
    for (char ch : n) {
      plain = plain && (std::isalnum(static_cast<unsigned char>(ch)) ||
                        ch == '_' || ch == '$');
    }
    return plain ? n : "\\" + n + " ";
  };

  os << "module " << (c.name().empty() ? "top" : c.name()) << " (";
  bool first = true;
  for (NetId n : c.inputs()) {
    os << (first ? "" : ", ") << id(c.net(n).name);
    first = false;
  }
  for (NetId n : c.outputs()) {
    os << (first ? "" : ", ") << id(c.net(n).name);
    first = false;
  }
  os << ");\n";
  for (NetId n : c.inputs()) os << "  input " << id(c.net(n).name) << ";\n";
  for (NetId n : c.outputs()) {
    os << "  output " << id(c.net(n).name) << ";\n";
  }
  for (NetId n : c.all_nets()) {
    const Net& net = c.net(n);
    if (!net.is_primary_input && !net.is_primary_output) {
      os << "  wire " << id(net.name) << ";\n";
    }
  }

  std::size_t inst = 0;
  for (GateId g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    auto emit = [&](const char* prim, NetId out,
                    const std::vector<NetId>& ins) {
      os << "  " << prim << " g" << inst++ << " (" << id(c.net(out).name);
      for (NetId in : ins) os << ", " << id(c.net(in).name);
      os << ");\n";
    };
    switch (gate.type) {
      case GateType::kAnd: emit("and", gate.out, gate.ins); break;
      case GateType::kNand: emit("nand", gate.out, gate.ins); break;
      case GateType::kOr: emit("or", gate.out, gate.ins); break;
      case GateType::kNor: emit("nor", gate.out, gate.ins); break;
      case GateType::kXor: emit("xor", gate.out, gate.ins); break;
      case GateType::kXnor: emit("xnor", gate.out, gate.ins); break;
      case GateType::kNot: emit("not", gate.out, gate.ins); break;
      case GateType::kBuf:
      case GateType::kDelay:
        os << "  // DELAY element emitted as buf\n";
        emit("buf", gate.out, gate.ins);
        break;
      case GateType::kMux:
        // No MUX primitive in the subset: document and refuse silently
        // correct output is impossible without helper nets, so reject.
        throw CircuitError(
            "write_verilog: lower MUX gates first (decompose_for_solver "
            "with lower_mux=true)");
    }
  }
  os << "endmodule\n";
}

std::string write_verilog_string(const Circuit& c) {
  std::ostringstream os;
  write_verilog(os, c);
  return os.str();
}

}  // namespace waveck
