#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/diagnostics.hpp"

namespace waveck {
namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::string strip(const std::string& s) {
  auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::optional<GateType> gate_from_keyword(const std::string& kw) {
  const std::string k = upper(kw);
  if (k == "AND") return GateType::kAnd;
  if (k == "NAND") return GateType::kNand;
  if (k == "OR") return GateType::kOr;
  if (k == "NOR") return GateType::kNor;
  if (k == "XOR") return GateType::kXor;
  if (k == "XNOR") return GateType::kXnor;
  if (k == "NOT" || k == "INV") return GateType::kNot;
  if (k == "BUF" || k == "BUFF") return GateType::kBuf;
  if (k == "DELAY") return GateType::kDelay;
  if (k == "MUX") return GateType::kMux;
  return std::nullopt;
}

std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!strip(cur).empty() || !out.empty()) out.push_back(strip(cur));
  return out;
}

}  // namespace

Circuit read_bench(std::istream& is, std::string name) {
  Circuit c(std::move(name));
  std::string line;
  int lineno = 0;
  const std::string fname = c.name();
  while (std::getline(is, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = strip(line);
    if (line.empty()) continue;

    const std::string u = upper(line);
    if (u.rfind("INPUT", 0) == 0 || u.rfind("OUTPUT", 0) == 0) {
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        throw ParseError(fname, lineno, "malformed INPUT/OUTPUT directive");
      }
      const std::string net = strip(line.substr(open + 1, close - open - 1));
      if (net.empty()) throw ParseError(fname, lineno, "empty net name");
      const NetId id = c.net_by_name_or_add(net);
      if (u.rfind("INPUT", 0) == 0) {
        c.declare_input(id);
      } else {
        c.declare_output(id);
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ParseError(fname, lineno, "expected `out = GATE(...)`");
    }
    const std::string out_name = strip(line.substr(0, eq));
    std::string rhs = strip(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      throw ParseError(fname, lineno, "malformed gate expression: " + rhs);
    }
    const std::string kw = strip(rhs.substr(0, open));
    if (upper(kw) == "DFF" || upper(kw) == "DFFSR" || upper(kw) == "LATCH") {
      throw ParseError(fname, lineno,
                       "sequential element '" + kw +
                           "' not supported (combinational checks only)");
    }
    const auto type = gate_from_keyword(kw);
    if (!type) throw ParseError(fname, lineno, "unknown gate keyword: " + kw);
    const auto args = split_args(rhs.substr(open + 1, close - open - 1));
    if (args.empty() || args.front().empty()) {
      throw ParseError(fname, lineno, "gate with no inputs");
    }
    std::vector<NetId> ins;
    ins.reserve(args.size());
    for (const auto& a : args) {
      if (a.empty()) throw ParseError(fname, lineno, "empty input name");
      ins.push_back(c.net_by_name_or_add(a));
    }
    const NetId out = c.net_by_name_or_add(out_name);
    try {
      c.add_gate(*type, out, std::move(ins));
    } catch (const CircuitError& e) {
      throw ParseError(fname, lineno, e.what());
    }
  }
  c.finalize();
  return c;
}

Circuit read_bench_string(const std::string& text, std::string name) {
  std::istringstream is(text);
  return read_bench(is, std::move(name));
}

Circuit read_bench_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ParseError(path, 0, "cannot open file");
  auto slash = path.find_last_of('/');
  return read_bench(is, slash == std::string::npos ? path
                                                   : path.substr(slash + 1));
}

void write_bench(std::ostream& os, const Circuit& c) {
  os << "# " << c.name() << " (" << c.num_gates() << " gates, "
     << c.num_nets() << " nets)\n";
  for (NetId n : c.inputs()) os << "INPUT(" << c.net(n).name << ")\n";
  for (NetId n : c.outputs()) os << "OUTPUT(" << c.net(n).name << ")\n";
  for (GateId g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    os << c.net(gate.out).name << " = " << to_string(gate.type) << "(";
    for (std::size_t i = 0; i < gate.ins.size(); ++i) {
      if (i) os << ", ";
      os << c.net(gate.ins[i]).name;
    }
    os << ")\n";
  }
}

std::string write_bench_string(const Circuit& c) {
  std::ostringstream os;
  write_bench(os, c);
  return os.str();
}

}  // namespace waveck
