// Gate types and their static properties.
//
// The paper's gate alphabet (Section 2): AND, NAND, OR, NOR, NOT, BUFFER,
// DELAY, XOR, XNOR. MUX is the complex-gate extension mentioned in the
// conclusions. Delays are intervals [dmin, dmax] attached to gates; the
// max-floating-delay computation uses only dmax, but both bounds are kept so
// the same netlist serves min-delay analyses.
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

namespace waveck {

enum class GateType : std::uint8_t {
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kNot,
  kBuf,
  kDelay,  // identity function; pure delay element
  kMux,    // inputs: (sel, d0, d1); out = sel ? d1 : d0
};

[[nodiscard]] constexpr std::string_view to_string(GateType t) {
  switch (t) {
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kNot: return "NOT";
    case GateType::kBuf: return "BUF";
    case GateType::kDelay: return "DELAY";
    case GateType::kMux: return "MUX";
  }
  return "?";
}

/// AND/NAND/OR/NOR: gates with a controlling input value.
[[nodiscard]] constexpr bool has_controlling_value(GateType t) {
  return t == GateType::kAnd || t == GateType::kNand || t == GateType::kOr ||
         t == GateType::kNor;
}

/// The input value that by itself determines the output (Section 2).
[[nodiscard]] constexpr bool controlling_value(GateType t) {
  assert(has_controlling_value(t));
  return t == GateType::kOr || t == GateType::kNor;
}

/// Whether the gate inverts (output = f(...) xor inversion).
[[nodiscard]] constexpr bool inversion(GateType t) {
  switch (t) {
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXnor:
    case GateType::kNot:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr bool is_unary(GateType t) {
  return t == GateType::kNot || t == GateType::kBuf || t == GateType::kDelay;
}

[[nodiscard]] constexpr bool is_xor_like(GateType t) {
  return t == GateType::kXor || t == GateType::kXnor;
}

/// Boolean evaluation on final values. (vector<bool>: the natural vector
/// container for net values; bit-packing keeps exhaustive sweeps compact.)
[[nodiscard]] constexpr bool eval_gate(GateType t, const std::vector<bool>& in) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand: {
      bool v = true;
      for (bool b : in) v = v && b;
      return v != inversion(t);
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool v = false;
      for (bool b : in) v = v || b;
      return v != inversion(t);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool v = false;
      for (bool b : in) v = v != b;
      return v != inversion(t);
    }
    case GateType::kNot:
      return !in[0];
    case GateType::kBuf:
    case GateType::kDelay:
      return in[0];
    case GateType::kMux:
      return in[0] ? in[2] : in[1];
  }
  return false;
}

/// Gate delay interval. Only dmax participates in max-floating-delay
/// narrowing; dmin tightens backward projections when non-zero.
///
/// `group` implements component delay correlation (the paper's companion
/// reference [1], Aourid-Cerny IWLS'97): gates with the same non-negative
/// group id share one physical delay variable, so narrowing the interval of
/// one narrows them all (see analysis/delay_correlation.hpp). -1 means an
/// independent delay.
struct DelaySpec {
  std::int64_t dmin = 0;
  std::int64_t dmax = 0;
  std::int32_t group = -1;

  constexpr DelaySpec() = default;
  constexpr DelaySpec(std::int64_t lo, std::int64_t hi) : dmin(lo), dmax(hi) {
    assert(lo >= 0 && lo <= hi);
  }
  /// Fixed delay d.
  static constexpr DelaySpec fixed(std::int64_t d) { return {d, d}; }

  friend constexpr bool operator==(DelaySpec a, DelaySpec b) = default;
};

}  // namespace waveck
