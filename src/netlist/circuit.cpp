#include "netlist/circuit.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace waveck {

NetId Circuit::add_net(std::string name) {
  if (by_name_.contains(name)) {
    throw CircuitError("duplicate net name: " + name);
  }
  const NetId id{nets_.size()};
  Net n;
  n.name = std::move(name);
  by_name_.emplace(n.name, id);
  nets_.push_back(std::move(n));
  finalized_ = false;
  return id;
}

NetId Circuit::net_by_name_or_add(std::string_view name) {
  if (auto it = by_name_.find(std::string(name)); it != by_name_.end()) {
    return it->second;
  }
  return add_net(std::string(name));
}

GateId Circuit::add_gate(GateType type, NetId out, std::vector<NetId> ins,
                         DelaySpec delay) {
  if (is_unary(type) && ins.size() != 1) {
    throw CircuitError("unary gate must have exactly one input");
  }
  if (type == GateType::kMux && ins.size() != 3) {
    throw CircuitError("MUX must have inputs (sel, d0, d1)");
  }
  if (!is_unary(type) && type != GateType::kMux && ins.empty()) {
    throw CircuitError("gate with no inputs");
  }
  if (nets_[out.index()].driver.valid()) {
    throw CircuitError("net " + nets_[out.index()].name +
                       " has multiple drivers");
  }
  const GateId id{gates_.size()};
  gates_.push_back(Gate{type, delay, out, std::move(ins)});
  nets_[out.index()].driver = id;
  finalized_ = false;
  return id;
}

void Circuit::declare_input(NetId n) {
  nets_[n.index()].is_primary_input = true;
  finalized_ = false;
}

void Circuit::declare_output(NetId n) {
  nets_[n.index()].is_primary_output = true;
  finalized_ = false;
}

void Circuit::finalize() {
  inputs_.clear();
  outputs_.clear();
  topo_order_.clear();
  for (auto& n : nets_) n.fanouts.clear();

  for (std::size_t i = 0; i < gates_.size(); ++i) {
    for (NetId in : gates_[i].ins) {
      nets_[in.index()].fanouts.push_back(GateId{i});
    }
  }

  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (n.is_primary_input && n.driver.valid()) {
      throw CircuitError("net " + n.name + " is both driven and an input");
    }
    if (!n.is_primary_input && !n.driver.valid()) {
      throw CircuitError("net " + n.name + " is undriven and not an input");
    }
    if (n.is_primary_input) inputs_.push_back(NetId{i});
    if (n.is_primary_output) outputs_.push_back(NetId{i});
  }

  // Kahn topological sort over gates.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::queue<GateId> ready;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    std::uint32_t deps = 0;
    for (NetId in : gates_[i].ins) {
      if (nets_[in.index()].driver.valid()) ++deps;
    }
    pending[i] = deps;
    if (deps == 0) ready.push(GateId{i});
  }
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop();
    topo_order_.push_back(g);
    const NetId out = gates_[g.index()].out;
    for (GateId f : nets_[out.index()].fanouts) {
      if (--pending[f.index()] == 0) ready.push(f);
    }
  }
  if (topo_order_.size() != gates_.size()) {
    throw CircuitError("circuit " + name_ + " contains a combinational cycle");
  }
  finalized_ = true;
}

std::optional<NetId> Circuit::find_net(std::string_view name) const {
  if (auto it = by_name_.find(std::string(name)); it != by_name_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::vector<NetId> Circuit::all_nets() const {
  std::vector<NetId> v(nets_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) v[i] = NetId{i};
  return v;
}

std::vector<GateId> Circuit::all_gates() const {
  std::vector<GateId> v(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) v[i] = GateId{i};
  return v;
}

void Circuit::set_uniform_delay(DelaySpec d) {
  for (auto& g : gates_) {
    g.delay.dmin = d.dmin;
    g.delay.dmax = d.dmax;  // correlation groups survive re-annotation
  }
}

std::vector<NetId> Circuit::fanout_stems() const {
  std::vector<NetId> stems;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].fanouts.size() >= 2) stems.push_back(NetId{i});
  }
  return stems;
}

bool Circuit::is_reconvergent_stem(NetId stem) const {
  const auto& fo = nets_[stem.index()].fanouts;
  if (fo.size() < 2) return false;
  // Mark, per gate, the set of stem branches that reach it; reconvergent iff
  // some gate is reached by >= 2 branches. Branch sets are represented by
  // 64-bit masks (stems with > 64 branches fall back to "reconvergent" --
  // conservative and irrelevant in practice).
  if (fo.size() > 64) return true;
  std::vector<std::uint64_t> reach(gates_.size(), 0);
  for (std::size_t b = 0; b < fo.size(); ++b) {
    reach[fo[b].index()] |= std::uint64_t{1} << b;
  }
  for (GateId g : topo_order_) {
    std::uint64_t m = reach[g.index()];
    if (m == 0) continue;
    if ((m & (m - 1)) != 0) return true;  // two branches meet at g
    for (GateId f : nets_[gates_[g.index()].out.index()].fanouts) {
      reach[f.index()] |= m;
    }
  }
  return false;
}

}  // namespace waveck
