// Structural Verilog reader/writer (gate-primitive subset).
//
// The ISCAS'85/'89 circuits circulate both as `.bench` and as structural
// Verilog built from the gate primitives; this reader accepts that subset:
//
//   module c17 (N1, N2, N3, N6, N7, N22, N23);
//     input  N1, N2, N3, N6, N7;
//     output N22, N23;
//     wire   N10, N11, N16, N19;
//     nand NAND2_1 (N10, N1, N3);   // first terminal is the output
//     not  (N5, N4);                // instance name optional
//   endmodule
//
// Supported primitives: and, nand, or, nor, xor, xnor, not, buf. Comments
// (`//`, `/* */`), multi-line statements, and vectors-free scalar nets
// only. Everything else (assign, always, ranges, parameters) is rejected
// with a ParseError -- the tool targets gate-level combinational netlists.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace waveck {

[[nodiscard]] Circuit read_verilog(std::istream& is,
                                   std::string fallback_name = "verilog");
[[nodiscard]] Circuit read_verilog_string(const std::string& text,
                                          std::string fallback_name = "v");
[[nodiscard]] Circuit read_verilog_file(const std::string& path);

/// Writes the circuit as structural Verilog (MUX/DELAY are emitted as
/// comments plus equivalent primitives: DELAY -> buf, MUX -> and/or/not).
void write_verilog(std::ostream& os, const Circuit& c);
[[nodiscard]] std::string write_verilog_string(const Circuit& c);

}  // namespace waveck
