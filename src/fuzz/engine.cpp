#include "fuzz/engine.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/telemetry.hpp"
#include "gen/rng.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"

namespace waveck::fuzz {

const std::vector<std::string>& known_profiles() {
  static const std::vector<std::string> kProfiles = {
      "mixed", "small", "mux", "falsepath", "xor", "wide"};
  return kProfiles;
}

gen::StructuredCircuitConfig profile_config(const std::string& profile,
                                            std::uint64_t base_seed,
                                            std::size_t run) {
  gen::Rng rng(gen::mix_seed(base_seed, run));
  gen::StructuredCircuitConfig cfg;
  cfg.seed = gen::mix_seed(base_seed, run * 2 + 1);
  // Every profile varies size run-to-run; the profile fixes the *shape*.
  cfg.inputs = 6 + static_cast<unsigned>(rng.below(3));   // 6..8
  cfg.gates = 18 + static_cast<unsigned>(rng.below(25));  // 18..42
  cfg.outputs = 2 + static_cast<unsigned>(rng.below(3));
  cfg.delay_intervals = rng.chance(34);
  if (profile == "small") {
    cfg.inputs = 5 + static_cast<unsigned>(rng.below(2));
    cfg.gates = 10 + static_cast<unsigned>(rng.below(10));
    cfg.outputs = 1 + static_cast<unsigned>(rng.below(2));
  } else if (profile == "mux") {
    cfg.w_mux = 3;
  } else if (profile == "falsepath") {
    cfg.false_path_blocks = 1 + static_cast<unsigned>(rng.below(3));
    cfg.false_path_stages = 4 + static_cast<unsigned>(rng.below(6));
    cfg.reconvergence_percent = 75;
  } else if (profile == "xor") {
    // Narrowing-resistant: XOR has no controlling value, so the fixpoint
    // stages conclude little and the case analysis carries the weight.
    cfg.w_xor = 6;
    cfg.w_xnor = 4;
    cfg.w_and = 1;
    cfg.w_or = 1;
  } else if (profile == "wide") {
    cfg.inputs = 9 + static_cast<unsigned>(rng.below(3));  // 9..11
    cfg.gates = 40 + static_cast<unsigned>(rng.below(30));
    cfg.outputs = 3 + static_cast<unsigned>(rng.below(3));
  } else {
    // "mixed": rotate the special shapes through the run index so every
    // battery sees every circuit family.
    switch (run % 4) {
      case 1: cfg.w_mux = 2; break;
      case 2:
        cfg.false_path_blocks = 1 + static_cast<unsigned>(rng.below(2));
        cfg.false_path_stages = 4 + static_cast<unsigned>(rng.below(5));
        break;
      case 3: cfg.w_xor = 5; cfg.w_xnor = 3; break;
      default: break;
    }
  }
  return cfg;
}

namespace {

namespace fs = std::filesystem;

/// Writes `<stem>.bench`, `<stem>.delays`, `<stem>.repro` into `dir`.
std::string write_repro(const std::string& dir, const FuzzConfig& cfg,
                        const FuzzFailure& f) {
  fs::create_directories(dir);
  std::ostringstream stem;
  stem << "fuzz_" << to_string(f.property) << "_s" << cfg.seed << "_r"
       << f.run;
  const fs::path base = fs::path(dir) / stem.str();

  const fs::path bench = base.string() + ".bench";
  {
    std::ofstream os(bench);
    os << "# shrunk differential-fuzzing repro — see " << stem.str()
       << ".repro\n";
    write_bench(os, f.shrunk);
  }
  {
    std::ofstream os(base.string() + ".delays");
    os << "# delay annotation for " << stem.str() << ".bench\n";
    write_delays(os, f.shrunk);
  }
  {
    std::ofstream os(base.string() + ".repro");
    os << "property: " << to_string(f.property) << "\n"
       << "details: " << f.details << "\n"
       << "profile: " << cfg.profile << "\n"
       << "base_seed: " << cfg.seed << "\n"
       << "run: " << f.run << "\n"
       << "derived_seed: " << f.derived_seed << "\n"
       << "gates: " << f.shrunk.num_gates() << " (from " << f.gates_before
       << ")\n"
       << "replay: waveck_fuzz --seed " << cfg.seed << " --runs "
       << (f.run + 1) << " --profile " << cfg.profile << "\n"
       << "replay-one: waveck check " << stem.str() << ".bench <delta> "
       << stem.str() << ".delays\n";
  }
  return bench.string();
}

/// Detaches the process trace sink for the scope. The battery and the
/// shrinker execute thousands of internal verifier/scheduler probes whose
/// search events are (a) noise at campaign scale and (b) not reproducible
/// byte-for-byte — the parallel-determinism probe's workers race for
/// checks, so *which* worker emits how many events is timing-dependent
/// even though the merged report is not. Suppressing them keeps the
/// campaign trace to the engine's own fuzz_* events, which are identical
/// across same-seed runs (modulo the sink's "t" stamps).
class ScopedTraceSuppression {
 public:
  ScopedTraceSuppression() : saved_(telemetry::trace_sink()) {
    telemetry::set_trace_sink(nullptr);
  }
  ~ScopedTraceSuppression() { telemetry::set_trace_sink(saved_); }
  ScopedTraceSuppression(const ScopedTraceSuppression&) = delete;
  ScopedTraceSuppression& operator=(const ScopedTraceSuppression&) = delete;

 private:
  telemetry::TraceSink* saved_;
};

}  // namespace

FuzzSummary run_fuzz(const FuzzConfig& cfg) {
  auto& reg = telemetry::Registry::current();
  auto& c_runs = reg.counter("fuzz.runs");
  auto& c_failures = reg.counter("fuzz.failures");
  auto& c_props = reg.counter("fuzz.properties_checked");
  auto& c_skipped = reg.counter("fuzz.properties_skipped");
  auto& c_shrink_evals = reg.counter("fuzz.shrink_evals");
  auto& c_shrink_accepted = reg.counter("fuzz.shrink_accepted");
  auto& t_generate = reg.timer("fuzz.generate");
  auto& t_battery = reg.timer("fuzz.battery");
  auto& t_shrink = reg.timer("fuzz.shrink");

  FuzzSummary summary;
  const telemetry::StopWatch campaign;
  for (std::size_t run = 0; run < cfg.runs; ++run) {
    if (cfg.time_budget_seconds > 0 &&
        campaign.seconds() >= cfg.time_budget_seconds) {
      summary.time_budget_hit = true;
      break;
    }
    const auto gcfg = profile_config(cfg.profile, cfg.seed, run);
    Circuit c;
    {
      const telemetry::ScopedTimer st(t_generate);
      c = gen::structured_random_circuit(gcfg);
    }
    c_runs.inc();
    ++summary.runs_executed;
    telemetry::emit("fuzz_run",
                    {{"run", run},
                     {"seed", static_cast<std::int64_t>(gcfg.seed)},
                     {"gates", c.num_gates()},
                     {"inputs", c.inputs().size()},
                     {"outputs", c.outputs().size()}});

    BatteryOptions bopt = cfg.battery;
    bopt.salt = gcfg.seed;
    BatteryResult battery;
    {
      const telemetry::ScopedTimer st(t_battery);
      const ScopedTraceSuppression quiet;
      battery = run_battery(c, bopt);
    }
    for (const auto& r : battery.results) {
      c_props.inc();
      ++summary.properties_checked;
      if (r.skipped) {
        c_skipped.inc();
        ++summary.properties_skipped;
      }
    }
    const PropertyResult* failure = battery.first_failure();
    if (failure == nullptr) continue;

    c_failures.inc();
    telemetry::emit("fuzz_failure",
                    {{"run", run},
                     {"property", to_string(failure->property)},
                     {"details", failure->details}});

    FuzzFailure f;
    f.run = run;
    f.derived_seed = gcfg.seed;
    f.property = failure->property;
    f.details = failure->details;
    f.gates_before = c.num_gates();
    if (cfg.shrink) {
      const Property p = failure->property;
      const auto still_fails = [&](const Circuit& cand) {
        return !check_property(cand, p, bopt).ok;
      };
      ShrinkResult sres;
      {
        const telemetry::ScopedTimer st(t_shrink);
        const ScopedTraceSuppression quiet;
        sres = shrink_circuit(c, still_fails, cfg.shrink_options);
      }
      c_shrink_evals.add(sres.evals);
      c_shrink_accepted.add(sres.accepted);
      f.shrunk = std::move(sres.circuit);
      telemetry::emit("fuzz_shrunk", {{"run", run},
                                      {"gates_before", f.gates_before},
                                      {"gates_after", f.shrunk.num_gates()},
                                      {"evals", sres.evals},
                                      {"accepted", sres.accepted}});
    } else {
      f.shrunk = c;
    }
    if (!cfg.corpus_dir.empty()) {
      f.bench_path = write_repro(cfg.corpus_dir, cfg, f);
    }
    summary.failures.push_back(std::move(f));
    if (summary.failures.size() >= cfg.max_failures) break;
  }
  summary.seconds = campaign.seconds();
  telemetry::emit("fuzz_done", {{"runs", summary.runs_executed},
                                {"failures", summary.failures.size()}});
  return summary;
}

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

int fuzz_usage(std::ostream& err) {
  err << "usage: waveck_fuzz [options]\n"
         "  --seed N           base seed (default 1); every run derives its "
         "own stream\n"
         "  --runs N           circuits to generate and check (default 100)\n"
         "  --time-budget SEC  stop starting new runs after SEC seconds\n"
         "  --profile NAME     generator profile (default mixed): ";
  for (std::size_t i = 0; i < known_profiles().size(); ++i) {
    err << (i ? ", " : "") << known_profiles()[i];
  }
  err << "\n"
         "  --corpus-dir DIR   write shrunk repros (.bench/.delays/.repro) "
         "here\n"
         "  --jobs N           workers for the parallel-determinism check "
         "(default 2)\n"
         "  --max-inputs N     exhaustive-oracle input cap (default 14)\n"
         "  --max-failures N   stop after N failures (default 25)\n"
         "  --no-shrink        keep failing circuits full-size\n"
         "  --list-profiles    print profile names and exit\n"
         "exit status: 0 clean, 1 failures found, 2 usage error\n";
  return 2;
}

}  // namespace

int fuzz_cli_main(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  FuzzConfig cfg;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&](std::uint64_t* slot) {
      if (i + 1 >= args.size()) return false;
      return parse_u64(args[++i], slot);
    };
    std::uint64_t v = 0;
    if (a == "--seed" && value(&v)) {
      cfg.seed = v;
    } else if (a == "--runs" && value(&v)) {
      cfg.runs = v;
    } else if (a == "--time-budget" && i + 1 < args.size()) {
      try {
        cfg.time_budget_seconds = std::stod(args[++i]);
      } catch (const std::exception&) {
        err << "error: --time-budget needs seconds\n";
        return fuzz_usage(err);
      }
    } else if (a == "--profile" && i + 1 < args.size()) {
      cfg.profile = args[++i];
      bool known = false;
      for (const auto& p : known_profiles()) known = known || p == cfg.profile;
      if (!known) {
        err << "error: unknown profile '" << cfg.profile << "'\n";
        return fuzz_usage(err);
      }
    } else if (a == "--corpus-dir" && i + 1 < args.size()) {
      cfg.corpus_dir = args[++i];
    } else if (a == "--jobs" && value(&v)) {
      cfg.battery.jobs = v;
    } else if (a == "--max-inputs" && value(&v)) {
      cfg.battery.max_inputs = static_cast<unsigned>(v);
    } else if (a == "--max-failures" && value(&v)) {
      cfg.max_failures = v;
    } else if (a == "--no-shrink") {
      cfg.shrink = false;
    } else if (a == "--list-profiles") {
      for (const auto& p : known_profiles()) out << p << "\n";
      return 0;
    } else {
      err << "error: unknown or malformed option '" << a << "'\n";
      return fuzz_usage(err);
    }
  }

  const FuzzSummary s = run_fuzz(cfg);
  for (const auto& f : s.failures) {
    out << "FAIL run " << f.run << " seed " << f.derived_seed << " ["
        << to_string(f.property) << "] " << f.details << "\n";
    out << "  shrunk to " << f.shrunk.num_gates() << " gates (from "
        << f.gates_before << ")";
    if (!f.bench_path.empty()) out << " -> " << f.bench_path;
    out << "\n";
  }
  out << "fuzz: " << s.runs_executed << "/" << cfg.runs << " runs, "
      << s.properties_checked << " property checks ("
      << s.properties_skipped << " skipped), " << s.failures.size()
      << " failure" << (s.failures.size() == 1 ? "" : "s");
  if (s.time_budget_hit) out << ", time budget hit";
  out << " [" << std::fixed << s.seconds << "s]\n";
  return s.failures.empty() ? 0 : 1;
}

}  // namespace waveck::fuzz
