// Differential cross-check battery: every way this repo can compute or
// transform a floating-mode answer, checked against every other on one
// circuit (doc/TESTING.md "oracle hierarchy").
//
// The battery is the fuzzer's verdict function and the shrinker's fitness
// function, so each property is independently runnable: `check_property`
// re-runs exactly one discriminating property on a candidate circuit. All
// properties are deterministic — any derived randomness (buffer-insertion
// sites, sampled vectors) comes from BatteryOptions::salt, never from
// wall-clock or global state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace waveck::fuzz {

enum class Property : std::uint8_t {
  /// Verifier::exact_floating_delay == exhaustive oracle, witness replays.
  kExactDelay,
  /// Per-δ agreement: check_circuit at sampled δ says V iff the oracle has
  /// a vector settling at/after δ; V witnesses replay through
  /// simulate_floating to >= δ; N answers have no oracle counterexample.
  kDeltaSoundness,
  /// Verdicts are monotone in δ: scanning δ upward, once the verifier
  /// answers NoViolation it never answers Violation again.
  kDeltaMonotonic,
  /// Zero-delay buffer insertion (netlist/transforms) preserves the exact
  /// floating delay and the verifier still matches the oracle on it.
  kBufferInvariance,
  /// map_to_nor preserves the Boolean function (all-vector value
  /// equivalence) and the verifier matches the oracle on the remap.
  kNorRemap,
  /// Serial vs --jobs N suite reports are byte-identical JSON.
  kParallelDeterminism,
  /// write_bench -> read_bench -> write_bench is a fixpoint and preserves
  /// structure + delay annotations.
  kBenchRoundTrip,
  /// Same for structural Verilog (skipped for MUX/DELAY circuits, which
  /// the writer legally lowers).
  kVerilogRoundTrip,
  /// CarrierCache on vs off suite reports are byte-identical JSON: the
  /// incremental carrier/dominator cache is a pure optimisation (catches
  /// stale-cache bugs).
  kCacheEquivalence,
  /// AVX2 vs scalar level-sweep kernels produce byte-identical suite JSON:
  /// the SIMD kernels are a pure optimisation of the same narrowing
  /// operators (skipped when the host lacks AVX2 or the build omitted it).
  kSimdEquivalence,
  /// A traced per-output run yields a structurally well-formed JSONL trace:
  /// the explain analyzer reconstructs it with zero warnings (every
  /// check_begin has a matching check_end, every decision exactly one
  /// close, no orphan attributions) and the per-check decision/backtrack/
  /// gitd/stem tallies equal the CheckReport counters.
  kTraceWellFormed,
};

[[nodiscard]] const char* to_string(Property p);
/// Parses the names `to_string` produces; returns false on unknown names.
bool property_from_string(const std::string& name, Property* out);
[[nodiscard]] const std::vector<Property>& all_properties();

struct BatteryOptions {
  /// Exhaustive-oracle input cap: circuits wider than this fail loudly
  /// (OracleLimitError) instead of being silently skipped.
  unsigned max_inputs = 14;
  /// Worker threads for the kParallelDeterminism property.
  std::size_t jobs = 2;
  /// Deterministic salt for derived choices (buffer sites, δ samples).
  std::uint64_t salt = 0;
  /// Skip kNorRemap on circuits whose NOR remap would exceed this many
  /// gates (the remap is quadratic-ish on wide gates). Skipping is recorded
  /// in PropertyResult::skipped, never silent.
  std::size_t max_nor_gates = 4000;
};

struct PropertyResult {
  Property property{};
  bool ok = true;
  bool skipped = false;  // property not applicable (reason in details)
  std::string details;   // failure diagnosis or skip reason
};

struct BatteryResult {
  std::vector<PropertyResult> results;
  [[nodiscard]] bool ok() const {
    for (const auto& r : results) {
      if (!r.ok) return false;
    }
    return true;
  }
  /// First failing property, if any.
  [[nodiscard]] const PropertyResult* first_failure() const {
    for (const auto& r : results) {
      if (!r.ok) return &r;
    }
    return nullptr;
  }
};

/// Runs one property. Never throws for a *failing* property (failures are
/// data); throws OracleLimitError/CircuitError only for unusable inputs.
[[nodiscard]] PropertyResult check_property(const Circuit& c, Property p,
                                            const BatteryOptions& opt = {});

/// Runs the full battery in `all_properties()` order.
[[nodiscard]] BatteryResult run_battery(const Circuit& c,
                                        const BatteryOptions& opt = {});

}  // namespace waveck::fuzz
