// Automatic witness shrinking: greedy delta-debugging over a failing
// circuit. Given a predicate "this circuit still fails the discriminating
// property", the shrinker tries structural reductions (drop an output,
// bypass a gate, narrow a gate's fanin, simplify a delay), keeps every
// reduction that preserves the failure, and garbage-collects dead logic
// after each acceptance — driving a fuzz-sized circuit down to a repro
// small enough to debug by hand (and cheap enough to replay in CI forever).
#pragma once

#include <cstddef>
#include <functional>

#include "netlist/circuit.hpp"

namespace waveck::fuzz {

/// Returns true while the candidate circuit still exhibits the failure.
/// Must be deterministic; exceptions thrown by the predicate are treated as
/// "candidate unusable" (the reduction is rejected), so a predicate built
/// on the battery can simply re-run its property.
using StillFails = std::function<bool(const Circuit&)>;

struct ShrinkOptions {
  /// Full passes over the reduction kinds; each pass retries everything
  /// because earlier acceptances unlock later ones. The loop also stops at
  /// the first pass that accepts nothing.
  unsigned max_rounds = 8;
  /// Hard cap on predicate evaluations (each runs the battery property).
  std::size_t max_evals = 4000;
};

struct ShrinkResult {
  Circuit circuit;              // smallest failing circuit found
  std::size_t evals = 0;        // predicate evaluations spent
  std::size_t accepted = 0;     // reductions kept
  bool hit_eval_budget = false;
};

/// Precondition: `still_fails(c)` is true (the caller observed the
/// failure); if it is not, the input is returned unchanged.
[[nodiscard]] ShrinkResult shrink_circuit(const Circuit& c,
                                          const StillFails& still_fails,
                                          const ShrinkOptions& opt = {});

}  // namespace waveck::fuzz
