#include "fuzz/shrink.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace waveck::fuzz {
namespace {

/// Name-keyed editable view of a circuit. Gates are kept in topological
/// order, so every edit below (which only ever rewires a net to one of its
/// topological ancestors) stays acyclic by construction.
struct EGate {
  GateType type;
  DelaySpec delay;
  std::string out;
  std::vector<std::string> ins;
};

struct ENetlist {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<EGate> gates;
};

ENetlist to_editable(const Circuit& c) {
  ENetlist e;
  e.name = c.name();
  for (NetId n : c.inputs()) e.inputs.push_back(c.net(n).name);
  for (NetId n : c.outputs()) e.outputs.push_back(c.net(n).name);
  for (GateId g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    EGate eg{gate.type, gate.delay, c.net(gate.out).name, {}};
    for (NetId in : gate.ins) eg.ins.push_back(c.net(in).name);
    e.gates.push_back(std::move(eg));
  }
  return e;
}

/// Throws CircuitError on structurally invalid candidates; callers reject.
Circuit build(const ENetlist& e) {
  Circuit c(e.name);
  for (const std::string& in : e.inputs) {
    c.declare_input(c.net_by_name_or_add(in));
  }
  for (const EGate& g : e.gates) {
    std::vector<NetId> ins;
    ins.reserve(g.ins.size());
    for (const std::string& in : g.ins) {
      ins.push_back(c.net_by_name_or_add(in));
    }
    c.add_gate(g.type, c.net_by_name_or_add(g.out), std::move(ins), g.delay);
  }
  for (const std::string& out : e.outputs) {
    c.declare_output(c.net_by_name_or_add(out));
  }
  c.finalize();
  return c;
}

/// Dead-logic elimination: keep only gates in the transitive fanin of an
/// output, inputs that still feed something (or are outputs themselves),
/// and outputs that still exist.
void prune_dead(ENetlist& e) {
  std::unordered_map<std::string, std::size_t> driver;
  for (std::size_t i = 0; i < e.gates.size(); ++i) driver[e.gates[i].out] = i;

  std::unordered_set<std::string> input_set(e.inputs.begin(), e.inputs.end());
  // Outputs must name a live net (an input or a driven net).
  std::vector<std::string> outputs;
  std::unordered_set<std::string> seen_out;
  for (const std::string& o : e.outputs) {
    if ((driver.count(o) || input_set.count(o)) && seen_out.insert(o).second) {
      outputs.push_back(o);
    }
  }
  e.outputs = std::move(outputs);

  std::unordered_set<std::string> live;
  std::vector<std::string> work(e.outputs.begin(), e.outputs.end());
  while (!work.empty()) {
    const std::string n = std::move(work.back());
    work.pop_back();
    if (!live.insert(n).second) continue;
    const auto it = driver.find(n);
    if (it == driver.end()) continue;
    for (const std::string& in : e.gates[it->second].ins) work.push_back(in);
  }

  std::vector<EGate> gates;
  gates.reserve(e.gates.size());
  for (EGate& g : e.gates) {
    if (live.count(g.out)) gates.push_back(std::move(g));
  }
  e.gates = std::move(gates);

  std::vector<std::string> inputs;
  for (const std::string& in : e.inputs) {
    if (live.count(in)) inputs.push_back(in);
  }
  // A circuit needs at least one input to have any vectors at all.
  if (inputs.empty() && !e.inputs.empty()) inputs.push_back(e.inputs.front());
  e.inputs = std::move(inputs);
}

void replace_reads(ENetlist& e, const std::string& from,
                   const std::string& to) {
  for (EGate& g : e.gates) {
    for (std::string& in : g.ins) {
      if (in == from) in = to;
    }
  }
  for (std::string& o : e.outputs) {
    if (o == from) o = to;
  }
}

class Shrinker {
 public:
  Shrinker(ENetlist start, const StillFails& pred, const ShrinkOptions& opt)
      : best_(std::move(start)), pred_(pred), opt_(opt) {}

  /// Tests a candidate; on success adopts it as the new best.
  bool try_adopt(ENetlist cand) {
    if (evals_ >= opt_.max_evals) {
      hit_budget_ = true;
      return false;
    }
    ++evals_;
    try {
      const Circuit c = build(cand);
      if (!pred_(c)) return false;
    } catch (const std::exception&) {
      return false;  // structurally unusable or predicate blew up: reject
    }
    best_ = std::move(cand);
    ++accepted_;
    return true;
  }

  bool pass() {
    const std::size_t before = accepted_;
    reduce_outputs();
    reduce_gates();
    reduce_fanin();
    merge_inputs();
    reduce_delays();
    return accepted_ != before;
  }

  [[nodiscard]] ShrinkResult finish() && {
    ShrinkResult r{build(best_), evals_, accepted_, hit_budget_};
    return r;
  }

  [[nodiscard]] bool hit_budget() const { return hit_budget_; }

 private:
  void reduce_outputs() {
    for (std::size_t i = best_.outputs.size(); i-- > 0;) {
      if (best_.outputs.size() <= 1) break;
      ENetlist cand = best_;
      cand.outputs.erase(cand.outputs.begin() +
                         static_cast<std::ptrdiff_t>(i));
      prune_dead(cand);
      try_adopt(std::move(cand));
    }
  }

  /// Bypass: delete gate g and rewire its readers to one of its inputs
  /// (d0 for a MUX, the first input otherwise).
  void reduce_gates() {
    for (std::size_t i = best_.gates.size(); i-- > 0;) {
      if (i >= best_.gates.size()) continue;  // vector shrank under us
      ENetlist cand = best_;
      const EGate g = cand.gates[i];
      const std::string& repl =
          g.type == GateType::kMux ? g.ins[1] : g.ins[0];
      cand.gates.erase(cand.gates.begin() + static_cast<std::ptrdiff_t>(i));
      replace_reads(cand, g.out, repl);
      prune_dead(cand);
      try_adopt(std::move(cand));
    }
  }

  /// Narrow a wide gate by dropping one input.
  void reduce_fanin() {
    for (std::size_t i = best_.gates.size(); i-- > 0;) {
      if (i >= best_.gates.size()) continue;
      if (best_.gates[i].ins.size() <= 2 ||
          best_.gates[i].type == GateType::kMux) {
        continue;
      }
      for (std::size_t k = best_.gates[i].ins.size(); k-- > 0;) {
        if (i >= best_.gates.size() || best_.gates[i].ins.size() <= 2) break;
        ENetlist cand = best_;
        cand.gates[i].ins.erase(cand.gates[i].ins.begin() +
                                static_cast<std::ptrdiff_t>(k));
        prune_dead(cand);
        try_adopt(std::move(cand));
      }
    }
  }

  /// Merge primary inputs: fewer inputs halve the oracle's replay cost and
  /// shorten the repro vector.
  void merge_inputs() {
    for (std::size_t i = best_.inputs.size(); i-- > 1;) {
      if (i >= best_.inputs.size()) continue;
      ENetlist cand = best_;
      const std::string victim = cand.inputs[i];
      cand.inputs.erase(cand.inputs.begin() + static_cast<std::ptrdiff_t>(i));
      replace_reads(cand, victim, cand.inputs.front());
      prune_dead(cand);
      try_adopt(std::move(cand));
    }
  }

  /// Simplify delay annotations: zero first, unit second, collapse
  /// intervals to their dmax third.
  void reduce_delays() {
    for (std::size_t i = 0; i < best_.gates.size(); ++i) {
      const DelaySpec d = best_.gates[i].delay;
      if (d == DelaySpec::fixed(0)) continue;
      for (const DelaySpec repl :
           {DelaySpec::fixed(0), DelaySpec::fixed(1),
            DelaySpec::fixed(d.dmax)}) {
        if (best_.gates[i].delay == repl) break;
        ENetlist cand = best_;
        cand.gates[i].delay = repl;
        if (try_adopt(std::move(cand))) break;
      }
    }
  }

  ENetlist best_;
  const StillFails& pred_;
  const ShrinkOptions& opt_;
  std::size_t evals_ = 0;
  std::size_t accepted_ = 0;
  bool hit_budget_ = false;
};

}  // namespace

ShrinkResult shrink_circuit(const Circuit& c, const StillFails& still_fails,
                            const ShrinkOptions& opt) {
  bool fails = false;
  try {
    fails = still_fails(c);
  } catch (const std::exception&) {
    fails = false;
  }
  if (!fails) {
    return {Circuit(c), 1, 0, false};
  }
  Shrinker s(to_editable(c), still_fails, opt);
  for (unsigned round = 0; round < opt.max_rounds; ++round) {
    if (!s.pass() || s.hit_budget()) break;
  }
  return std::move(s).finish();
}

}  // namespace waveck::fuzz
