#include "fuzz/differential.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "common/telemetry.hpp"
#include "constraints/level_kernel.hpp"
#include "explain/analyzer.hpp"
#include "gen/rng.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"
#include "netlist/topo_delay.hpp"
#include "netlist/transforms.hpp"
#include "netlist/verilog_io.hpp"
#include "sched/check_scheduler.hpp"
#include "sim/floating_sim.hpp"
#include "verify/report_io.hpp"
#include "verify/verifier.hpp"

namespace waveck::fuzz {

const char* to_string(Property p) {
  switch (p) {
    case Property::kExactDelay: return "exact_delay";
    case Property::kDeltaSoundness: return "delta_soundness";
    case Property::kDeltaMonotonic: return "delta_monotonic";
    case Property::kBufferInvariance: return "buffer_invariance";
    case Property::kNorRemap: return "nor_remap";
    case Property::kParallelDeterminism: return "parallel_determinism";
    case Property::kBenchRoundTrip: return "bench_roundtrip";
    case Property::kVerilogRoundTrip: return "verilog_roundtrip";
    case Property::kCacheEquivalence: return "cache_equivalence";
    case Property::kSimdEquivalence: return "simd_equivalence";
    case Property::kTraceWellFormed: return "trace_well_formed";
  }
  return "?";
}

bool property_from_string(const std::string& name, Property* out) {
  for (Property p : all_properties()) {
    if (name == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

const std::vector<Property>& all_properties() {
  static const std::vector<Property> kAll = {
      Property::kExactDelay,       Property::kDeltaSoundness,
      Property::kDeltaMonotonic,   Property::kBufferInvariance,
      Property::kNorRemap,         Property::kParallelDeterminism,
      Property::kBenchRoundTrip,   Property::kVerilogRoundTrip,
      Property::kCacheEquivalence, Property::kSimdEquivalence,
      Property::kTraceWellFormed,
  };
  return kAll;
}

namespace {

PropertyResult pass(Property p) { return {p, true, false, ""}; }

PropertyResult fail(Property p, std::string details) {
  return {p, false, false, std::move(details)};
}

PropertyResult skip(Property p, std::string reason) {
  return {p, true, true, std::move(reason)};
}

/// Worst floating settle over every primary output under `v`.
Time replay_settle(const Circuit& c, const std::vector<bool>& v) {
  const auto sim = simulate_floating(c, v);
  Time worst = Time::neg_inf();
  for (NetId o : c.outputs()) {
    worst = Time::max(worst, sim.settle[o.index()]);
  }
  return worst;
}

/// Verifier search must agree with the exhaustive oracle on `c`; used both
/// directly (kExactDelay) and on transformed circuits.
PropertyResult verifier_matches_oracle(Property p, const Circuit& c,
                                       const BatteryOptions& opt,
                                       const char* what) {
  const Time oracle = exhaustive_floating_delay(c, opt.max_inputs);
  Verifier v(c);
  const auto res = v.exact_floating_delay();
  if (!res.exact) {
    return fail(p, std::string(what) + ": exact-delay search abandoned");
  }
  if (res.delay != oracle) {
    return fail(p, std::string(what) + ": verifier says " + res.delay.str() +
                       ", exhaustive oracle says " + oracle.str());
  }
  if (res.witness) {
    const Time settle = replay_settle(c, *res.witness);
    if (settle != res.delay) {
      return fail(p, std::string(what) + ": witness replays to " +
                         settle.str() + ", claimed delay " + res.delay.str());
    }
  }
  return pass(p);
}

PropertyResult check_exact_delay(const Circuit& c, const BatteryOptions& opt) {
  return verifier_matches_oracle(Property::kExactDelay, c, opt, "original");
}

/// δ samples: boundary-heavy around the oracle delay, plus a few salted
/// interior points up to the topological bound.
std::vector<std::int64_t> sample_deltas(Time oracle, Time topo,
                                        std::uint64_t salt) {
  const std::int64_t o = oracle.is_finite() ? oracle.value() : 0;
  const std::int64_t t =
      topo.is_finite() ? std::max(topo.value(), o) : o;
  std::map<std::int64_t, bool> set;  // ordered, deduped
  for (std::int64_t d : {std::int64_t{0}, o - 2, o - 1, o, o + 1, o + 3,
                         t, t + 1}) {
    if (d >= 0) set[d] = true;
  }
  gen::Rng rng(gen::mix_seed(salt, static_cast<std::uint64_t>(o + 1)));
  for (int i = 0; i < 4 && t > 0; ++i) {
    set[static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(t) + 1))] = true;
  }
  std::vector<std::int64_t> out;
  out.reserve(set.size());
  for (const auto& [d, _] : set) out.push_back(d);
  return out;
}

PropertyResult check_delta_soundness(const Circuit& c,
                                     const BatteryOptions& opt) {
  constexpr Property p = Property::kDeltaSoundness;
  const Time oracle = exhaustive_floating_delay(c, opt.max_inputs);
  const Time topo = topological_delay(c);
  Verifier v(c);
  for (std::int64_t d : sample_deltas(oracle, topo, opt.salt)) {
    const Time delta(d);
    const auto rep = v.check_circuit(delta);
    const bool oracle_violates = oracle >= delta;
    switch (rep.conclusion) {
      case CheckConclusion::kViolation: {
        if (!oracle_violates) {
          return fail(p, "delta " + std::to_string(d) +
                             ": verifier found a violation but the oracle "
                             "delay is only " + oracle.str());
        }
        if (!rep.vector) {
          return fail(p, "delta " + std::to_string(d) +
                             ": Violation verdict carries no witness");
        }
        const Time settle = replay_settle(c, *rep.vector);
        if (settle < delta) {
          return fail(p, "delta " + std::to_string(d) +
                             ": witness replays to settle " + settle.str() +
                             " < delta (bogus witness)");
        }
        break;
      }
      case CheckConclusion::kNoViolation:
        if (oracle_violates) {
          return fail(p, "delta " + std::to_string(d) +
                             ": verifier claims NoViolation but oracle "
                             "delay " + oracle.str() + " >= delta (unsound)");
        }
        break;
      default:
        return fail(p, "delta " + std::to_string(d) + ": inconclusive (" +
                           to_string(rep.conclusion) + ")");
    }
  }
  return pass(p);
}

PropertyResult check_delta_monotonic(const Circuit& c,
                                     const BatteryOptions& opt) {
  constexpr Property p = Property::kDeltaMonotonic;
  const Time oracle = exhaustive_floating_delay(c, opt.max_inputs);
  const Time topo = topological_delay(c);
  Verifier v(c);
  bool seen_no_violation = false;
  std::int64_t first_n = 0;
  for (std::int64_t d : sample_deltas(oracle, topo, opt.salt ^ 0x5eedu)) {
    const auto rep = v.check_circuit(Time(d));
    if (rep.conclusion == CheckConclusion::kNoViolation) {
      if (!seen_no_violation) first_n = d;
      seen_no_violation = true;
    } else if (rep.conclusion == CheckConclusion::kViolation) {
      if (seen_no_violation) {
        return fail(p, "NoViolation at delta " + std::to_string(first_n) +
                           " but Violation again at larger delta " +
                           std::to_string(d));
      }
    } else {
      return fail(p, "delta " + std::to_string(d) + ": inconclusive (" +
                         to_string(rep.conclusion) + ")");
    }
  }
  return pass(p);
}

PropertyResult check_buffer_invariance(const Circuit& c,
                                       const BatteryOptions& opt) {
  constexpr Property p = Property::kBufferInvariance;
  // Salted, deterministic site choice: roughly one net in four.
  gen::Rng rng(gen::mix_seed(opt.salt, c.num_nets()));
  std::vector<NetId> sites;
  for (NetId n : c.all_nets()) {
    if (rng.chance(25)) sites.push_back(n);
  }
  const Circuit buffered = insert_buffers(c, sites);
  const Time before = exhaustive_floating_delay(c, opt.max_inputs);
  const Time after = exhaustive_floating_delay(buffered, opt.max_inputs);
  if (before != after) {
    return fail(p, "zero-delay buffering changed the oracle delay: " +
                       before.str() + " -> " + after.str() + " (" +
                       std::to_string(sites.size()) + " sites)");
  }
  auto sub = verifier_matches_oracle(p, buffered, opt, "buffered");
  return sub;
}

PropertyResult check_nor_remap(const Circuit& c, const BatteryOptions& opt) {
  constexpr Property p = Property::kNorRemap;
  Circuit mapped = map_to_nor(c);
  if (mapped.num_gates() > opt.max_nor_gates) {
    return skip(p, "NOR remap has " + std::to_string(mapped.num_gates()) +
                       " gates > cap " + std::to_string(opt.max_nor_gates));
  }
  mapped.set_uniform_delay(DelaySpec::fixed(10));
  // Function preservation: every vector, every output value.
  const std::size_t n = c.inputs().size();
  if (n > opt.max_inputs) {
    throw OracleLimitError(c.name(), n, opt.max_inputs);
  }
  std::vector<bool> v(n, false);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    for (std::size_t i = 0; i < n; ++i) v[i] = (bits >> i) & 1;
    const auto a = simulate_floating(c, v);
    const auto b = simulate_floating(mapped, v);
    for (std::size_t o = 0; o < c.outputs().size(); ++o) {
      const NetId oa = c.outputs()[o];
      const NetId ob = mapped.outputs()[o];
      if (a.value[oa.index()] != b.value[ob.index()]) {
        return fail(p, "NOR remap changed output '" + c.net(oa).name +
                           "' under vector " + std::to_string(bits));
      }
    }
  }
  return verifier_matches_oracle(p, mapped, opt, "nor-mapped");
}

/// Suite JSON with the wall-clock fields zeroed: the determinism contract
/// (doc/PARALLELISM.md) covers everything except timing. Shared with the
/// CLI (--canon) and the serve daemon via report_io.
std::string canonical_suite_json(const Circuit& c, SuiteReport rep) {
  return canonical_json(c, std::move(rep));
}

PropertyResult check_cache_equivalence(const Circuit& c,
                                       const BatteryOptions& opt) {
  (void)opt;
  constexpr Property p = Property::kCacheEquivalence;
  const Time topo = topological_delay(c);
  const std::int64_t t = topo.is_finite() ? topo.value() : 0;
  for (std::int64_t d : {t / 2, t, t + 1}) {
    if (d < 0) continue;
    const Time delta(d);
    VerifyOptions cached_opt;
    cached_opt.use_carrier_cache = true;
    Verifier cached(c, cached_opt);
    const std::string on = canonical_suite_json(c, cached.check_circuit(delta));
    VerifyOptions scratch_opt;
    scratch_opt.use_carrier_cache = false;
    Verifier scratch(c, scratch_opt);
    const std::string off =
        canonical_suite_json(c, scratch.check_circuit(delta));
    if (on != off) {
      return fail(p, "cache-on vs cache-off suite JSON differs at delta " +
                         std::to_string(d));
    }
  }
  return pass(p);
}

PropertyResult check_simd_equivalence(const Circuit& c,
                                      const BatteryOptions& opt) {
  (void)opt;
  constexpr Property p = Property::kSimdEquivalence;
  if (!simd_supported()) {
    return skip(p, simd_compiled() ? "host CPU lacks AVX2"
                                   : "built without WAVECK_SIMD");
  }
  const bool prior = simd_enabled();
  const Time topo = topological_delay(c);
  const std::int64_t t = topo.is_finite() ? topo.value() : 0;
  for (std::int64_t d : {t / 2, t, t + 1}) {
    if (d < 0) continue;
    const Time delta(d);
    set_simd_enabled(true);
    Verifier simd_v(c);
    const std::string on = canonical_suite_json(c, simd_v.check_circuit(delta));
    set_simd_enabled(false);
    Verifier scalar_v(c);
    const std::string off =
        canonical_suite_json(c, scalar_v.check_circuit(delta));
    set_simd_enabled(prior);
    if (on != off) {
      return fail(p, "simd vs scalar suite JSON differs at delta " +
                         std::to_string(d));
    }
  }
  return pass(p);
}

PropertyResult check_parallel_determinism(const Circuit& c,
                                          const BatteryOptions& opt) {
  constexpr Property p = Property::kParallelDeterminism;
  const Time topo = topological_delay(c);
  const std::int64_t t = topo.is_finite() ? topo.value() : 0;
  for (std::int64_t d : {t / 2, t, t + 1}) {
    if (d < 0) continue;
    const Time delta(d);
    Verifier serial(c);
    const std::string ser = canonical_suite_json(c, serial.check_circuit(delta));
    Verifier parallel_v(c);
    sched::CheckScheduler sched(parallel_v,
                                {.jobs = opt.jobs ? opt.jobs : 2});
    const std::string par = canonical_suite_json(c, sched.check_circuit(delta));
    if (ser != par) {
      return fail(p, "serial vs jobs=" +
                         std::to_string(opt.jobs ? opt.jobs : 2) +
                         " suite JSON differs at delta " + std::to_string(d));
    }
  }
  return pass(p);
}

/// Gate-delay map keyed by output net name (order-independent comparison).
std::map<std::string, DelaySpec> delay_map(const Circuit& c) {
  std::map<std::string, DelaySpec> m;
  for (GateId g : c.all_gates()) {
    m[c.net(c.gate(g).out).name] = c.gate(g).delay;
  }
  return m;
}

PropertyResult structure_equal(Property p, const Circuit& a, const Circuit& b,
                               const char* what) {
  if (a.num_gates() != b.num_gates() || a.num_nets() != b.num_nets() ||
      a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    std::ostringstream os;
    os << what << " changed the structure: " << a.num_gates() << "g/"
       << a.num_nets() << "n/" << a.inputs().size() << "i/"
       << a.outputs().size() << "o vs " << b.num_gates() << "g/"
       << b.num_nets() << "n/" << b.inputs().size() << "i/"
       << b.outputs().size() << "o";
    return fail(p, os.str());
  }
  return pass(p);
}

PropertyResult check_bench_roundtrip(const Circuit& c,
                                     const BatteryOptions& opt) {
  (void)opt;
  constexpr Property p = Property::kBenchRoundTrip;
  const std::string s1 = write_bench_string(c);
  Circuit c2 = read_bench_string(s1, c.name());
  const std::string s2 = write_bench_string(c2);
  if (s1 != s2) {
    return fail(p, "write->read->write is not a fixpoint");
  }
  if (auto r = structure_equal(p, c, c2, ".bench round-trip"); !r.ok) {
    return r;
  }
  // Delay annotations survive a write_delays/read_delays round-trip onto
  // the reparsed circuit.
  std::ostringstream ds;
  write_delays(ds, c);
  std::istringstream is(ds.str());
  read_delays(is, c2);
  if (delay_map(c) != delay_map(c2)) {
    return fail(p, "delay annotations not preserved across round-trip");
  }
  return pass(p);
}

PropertyResult check_verilog_roundtrip(const Circuit& c,
                                       const BatteryOptions& opt) {
  (void)opt;
  constexpr Property p = Property::kVerilogRoundTrip;
  const auto hist = histogram(c);
  if (hist.of(GateType::kMux) > 0 || hist.of(GateType::kDelay) > 0) {
    return skip(p, "writer lowers MUX/DELAY to primitives (documented)");
  }
  const std::string s1 = write_verilog_string(c);
  Circuit c2 = read_verilog_string(s1, c.name());
  const std::string s2 = write_verilog_string(c2);
  if (s1 != s2) {
    return fail(p, "write->read->write is not a fixpoint");
  }
  return structure_equal(p, c, c2, "Verilog round-trip");
}

PropertyResult check_trace_well_formed(const Circuit& c,
                                       const BatteryOptions& opt) {
  (void)opt;
  constexpr Property p = Property::kTraceWellFormed;
  const Time topo = topological_delay(c);
  const std::int64_t t = topo.is_finite() ? topo.value() : 0;

  // Capture every output's check at both deltas with a private sink
  // (restoring whatever sink — usually none — the fuzz engine had
  // installed). check_output is used directly: unlike check_circuit it
  // never takes the trivial-STA shortcut, so each report has a trace span.
  std::ostringstream trace;
  telemetry::JsonlTraceSink sink(trace);
  telemetry::TraceSink* const prev = telemetry::trace_sink();
  telemetry::set_trace_sink(&sink);
  std::vector<CheckReport> reports;
  for (const std::int64_t d : {t, t + 1}) {
    if (d < 0) continue;
    Verifier v(c);
    for (const NetId o : c.outputs()) {
      reports.push_back(v.check_output(o, Time{d}));
    }
  }
  telemetry::set_trace_sink(prev);

  std::istringstream in(trace.str());
  const explain::TraceAnalysis a = explain::analyze_trace(in);
  if (!a.well_formed()) {
    std::string why = a.warnings.empty() ? "(no detail)" : a.warnings.front();
    return fail(p, std::to_string(a.n_warnings) +
                       " analyzer warning(s), first: " + why);
  }
  if (a.checks.size() != reports.size()) {
    return fail(p, "trace has " + std::to_string(a.checks.size()) +
                       " checks, verifier ran " +
                       std::to_string(reports.size()));
  }
  // The serial loop runs checks in order, so the Nth check span is the Nth
  // CheckReport; every event tally must agree with the report's counters.
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CheckReport& r = reports[i];
    const explain::CheckTree& ct = a.checks[i];
    const std::string expect_out = c.net(r.check.output).name;
    const auto mismatch = [&](const char* what, std::uint64_t traced,
                              std::size_t reported) {
      return fail(p, "check " + std::to_string(ct.chk) + " (" + expect_out +
                         "): trace " + what + "=" + std::to_string(traced) +
                         " but CheckReport says " + std::to_string(reported));
    };
    if (ct.output != expect_out) {
      return fail(p, "check order mismatch: trace has " + ct.output +
                         ", verifier ran " + expect_out);
    }
    if (!ct.closed) {
      return fail(p, "check " + std::to_string(ct.chk) + " never closed");
    }
    if (ct.conclusion != to_string(r.conclusion)) {
      return fail(p, "check " + std::to_string(ct.chk) + " conclusion \"" +
                         ct.conclusion + "\" vs report \"" +
                         to_string(r.conclusion) + "\"");
    }
    if (ct.n_decisions != r.decisions) {
      return mismatch("decisions", ct.n_decisions, r.decisions);
    }
    if (ct.n_backtracks != r.backtracks) {
      return mismatch("backtracks", ct.n_backtracks, r.backtracks);
    }
    if (ct.n_gitd_rounds != r.gitd_rounds) {
      return mismatch("gitd_rounds", ct.n_gitd_rounds, r.gitd_rounds);
    }
    if (ct.n_stems != r.stems_processed) {
      return mismatch("stems", ct.n_stems, r.stems_processed);
    }
  }
  return pass(p);
}

}  // namespace

PropertyResult check_property(const Circuit& c, Property p,
                              const BatteryOptions& opt) {
  switch (p) {
    case Property::kExactDelay: return check_exact_delay(c, opt);
    case Property::kDeltaSoundness: return check_delta_soundness(c, opt);
    case Property::kDeltaMonotonic: return check_delta_monotonic(c, opt);
    case Property::kBufferInvariance: return check_buffer_invariance(c, opt);
    case Property::kNorRemap: return check_nor_remap(c, opt);
    case Property::kParallelDeterminism:
      return check_parallel_determinism(c, opt);
    case Property::kBenchRoundTrip: return check_bench_roundtrip(c, opt);
    case Property::kVerilogRoundTrip: return check_verilog_roundtrip(c, opt);
    case Property::kCacheEquivalence: return check_cache_equivalence(c, opt);
    case Property::kSimdEquivalence: return check_simd_equivalence(c, opt);
    case Property::kTraceWellFormed: return check_trace_well_formed(c, opt);
  }
  return fail(p, "unknown property");
}

BatteryResult run_battery(const Circuit& c, const BatteryOptions& opt) {
  BatteryResult r;
  r.results.reserve(all_properties().size());
  for (Property p : all_properties()) {
    r.results.push_back(check_property(c, p, opt));
  }
  return r;
}

}  // namespace waveck::fuzz
