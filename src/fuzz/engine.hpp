// Seed-driven differential fuzzing engine.
//
// One run = derive a per-run seed from (base seed, run index), generate a
// structure-aware random circuit for the active profile, run the
// differential battery, and on any failing property shrink the circuit
// against that property and (optionally) emit a minimal repro —
// `.bench` + `.delays` + a `.repro` metadata file — into the corpus
// directory, where corpus_replay_test picks it up as a permanent
// regression test.
//
// Determinism contract: with the same FuzzConfig the engine makes
// bit-identical decisions — circuits, verdicts, shrink trajectories, file
// contents. Wall-clock enters only through `time_budget_seconds` (which can
// stop a run earlier on a slower machine) and the timing metrics. The
// engine detaches the trace sink around its internal battery/shrinker
// probes (their scheduler workers race for checks, so their event streams
// are not reproducible), leaving only the engine's own fuzz_* events —
// which carry no timing fields beyond the sink's "t" stamp, so two
// same-seed campaigns produce byte-identical telemetry modulo timestamps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/shrink.hpp"
#include "gen/generators.hpp"
#include "netlist/circuit.hpp"

namespace waveck::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t runs = 100;
  /// Stop starting new runs after this much wall time (0 = no budget).
  double time_budget_seconds = 0;
  /// Generator profile; see known_profiles().
  std::string profile = "mixed";
  /// Where shrunk repros are written; empty = keep them in memory only.
  std::string corpus_dir;
  BatteryOptions battery;
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Stop the whole campaign after this many failures.
  std::size_t max_failures = 25;
};

struct FuzzFailure {
  std::size_t run = 0;
  std::uint64_t derived_seed = 0;
  Property property{};
  std::string details;
  Circuit shrunk;          // == original circuit when shrinking is off
  std::size_t gates_before = 0;
  std::string bench_path;  // empty when corpus_dir is empty
};

struct FuzzSummary {
  std::size_t runs_executed = 0;
  std::size_t properties_checked = 0;
  std::size_t properties_skipped = 0;
  std::vector<FuzzFailure> failures;
  bool time_budget_hit = false;
  double seconds = 0;
};

[[nodiscard]] const std::vector<std::string>& known_profiles();

/// The generator configuration run `run` of a campaign uses (exposed so
/// tests and the corpus metadata can reproduce a single run exactly).
[[nodiscard]] gen::StructuredCircuitConfig profile_config(
    const std::string& profile, std::uint64_t base_seed, std::size_t run);

[[nodiscard]] FuzzSummary run_fuzz(const FuzzConfig& cfg);

/// Shared CLI driver behind `tools/waveck_fuzz` and `waveck fuzz`.
/// Flags: --seed N --runs N --time-budget SEC --profile NAME
/// --corpus-dir DIR --jobs N --max-inputs N --no-shrink --list-profiles.
/// Returns 0 (clean), 1 (failures found), 2 (usage error).
int fuzz_cli_main(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err);

}  // namespace waveck::fuzz
