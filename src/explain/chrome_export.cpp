#include "explain/chrome_export.hpp"

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/telemetry.hpp"
#include "explain/trace_reader.hpp"

namespace waveck::explain {

namespace {

/// Emits one chrome event object per line, comma-separating after the
/// first. All events share pid 1; tid is the waveck worker id.
class ChromeWriter {
 public:
  explicit ChromeWriter(std::ostream& out) : out_(out) {
    out_ << "{\"traceEvents\":[\n";
  }

  void finish(std::size_t* events_out) {
    out_ << "\n]}\n";
    if (events_out != nullptr) *events_out = count_;
  }

  /// Declares the thread-name metadata for `w` once.
  void declare_worker(std::int64_t w) {
    if (!seen_workers_.insert(w).second) return;
    const std::string name = w == 0 ? "main" : "worker " + std::to_string(w);
    open(R"("ph":"M","name":"thread_name")", w, -1);
    out_ << ",\"args\":{\"name\":\"" << name << "\"}";
    close();
    // Sort the main thread first, workers in id order.
    open(R"("ph":"M","name":"thread_sort_index")", w, -1);
    out_ << ",\"args\":{\"sort_index\":" << w << "}";
    close();
  }

  void duration_begin(const TraceEvent& e, const std::string& name,
                      const char* cat) {
    begin_event("B", e, name, cat);
    close();
  }
  void duration_begin_args(const TraceEvent& e, const std::string& name,
                           const char* cat, const std::string& args) {
    begin_event("B", e, name, cat);
    out_ << ",\"args\":{" << args << "}";
    close();
  }
  void duration_end(const TraceEvent& e, const std::string& args) {
    open(R"("ph":"E")", e.w, e.t);
    if (!args.empty()) out_ << ",\"args\":{" << args << "}";
    close();
  }
  void instant(const TraceEvent& e, const std::string& name, const char* cat,
               const std::string& args) {
    begin_event("i", e, name, cat);
    out_ << ",\"s\":\"t\"";
    if (!args.empty()) out_ << ",\"args\":{" << args << "}";
    close();
  }
  void counter(const TraceEvent& e, const std::string& name,
               const std::string& args) {
    begin_event("C", e, name, "engine");
    out_ << ",\"args\":{" << args << "}";
    close();
  }

 private:
  void begin_event(const char* ph, const TraceEvent& e,
                   const std::string& name, const char* cat) {
    open_raw();
    out_ << "\"ph\":\"" << ph << "\",\"name\":\""
         << telemetry::json_escape(name) << "\",\"cat\":\"" << cat << '"';
    stamp(e.w, e.t);
  }
  void open(const char* head, std::int64_t w, std::int64_t t) {
    open_raw();
    out_ << head;
    stamp(w, t);
  }
  void open_raw() {
    if (count_ > 0) out_ << ",\n";
    out_ << '{';
    ++count_;
  }
  void stamp(std::int64_t w, std::int64_t t) {
    out_ << ",\"pid\":1,\"tid\":" << w;
    if (t >= 0) {
      // Sink timestamps are ns; chrome wants microseconds.
      std::ostringstream ts;
      ts << (static_cast<double>(t) / 1000.0);
      out_ << ",\"ts\":" << ts.str();
    } else {
      out_ << ",\"ts\":0";
    }
  }
  void close() { out_ << '}'; }

  std::ostream& out_;
  std::size_t count_ = 0;
  std::set<std::int64_t> seen_workers_;
};

std::string search_args(const TraceEvent& e) {
  std::string a = "\"dec\":" + std::to_string(e.dec);
  a += ",\"depth\":" + std::to_string(e.num("depth", 0));
  return a;
}

}  // namespace

ChromeExportStats write_chrome_trace(std::istream& in, std::ostream& out) {
  ChromeExportStats stats;
  ChromeWriter w(out);
  std::set<std::int64_t> workers;
  TraceReader reader(in);
  TraceEvent e;
  while (reader.next(e)) {
    ++stats.events_in;
    w.declare_worker(e.w);
    workers.insert(e.w);

    if (e.ev == "batch_begin") {
      // Pre-declare every pool track so an idle worker still shows up.
      const std::int64_t jobs = e.num("jobs", 0);
      for (std::int64_t i = 1; i <= jobs; ++i) w.declare_worker(i);
      w.duration_begin_args(e, "batch", "sched",
                            "\"jobs\":" + std::to_string(jobs) +
                                ",\"checks\":" +
                                std::to_string(e.num("checks", 0)));
    } else if (e.ev == "batch_end") {
      w.duration_end(e, "\"checks_skipped\":" +
                            std::to_string(e.num("checks_skipped", 0)));
    } else if (e.ev == "check_begin") {
      w.duration_begin_args(
          e, "check " + std::string(e.str("output")), "check",
          "\"chk\":" + std::to_string(e.chk) +
              ",\"delta\":" + std::to_string(e.num("delta", 0)));
    } else if (e.ev == "check_end") {
      w.duration_end(e, "\"conclusion\":\"" +
                            telemetry::json_escape(e.str("conclusion")) +
                            "\"");
    } else if (e.ev == "stage_begin") {
      w.duration_begin(e, "stage " + std::string(e.str("stage")), "stage");
    } else if (e.ev == "stage_end") {
      w.duration_end(e, "\"status\":\"" +
                            telemetry::json_escape(e.str("status")) + "\"");
    } else if (e.ev == "decision") {
      w.duration_begin_args(
          e,
          "decide " + std::string(e.str("net")) + "=" +
              (e.find("cls") != nullptr && e.find("cls")->b ? "1" : "0"),
          "search",
          search_args(e) + ",\"parent\":" +
              std::to_string(e.num("parent", -1)));
    } else if (e.ev == "decision_close") {
      w.duration_end(e, "\"outcome\":\"" +
                            telemetry::json_escape(e.str("outcome")) + "\"");
    } else if (e.ev == "backtrack") {
      w.instant(e, "backtrack " + std::string(e.str("net")), "search",
                search_args(e));
    } else if (e.ev == "conflict") {
      w.instant(e, "conflict", "search",
                "\"depth\":" + std::to_string(e.num("depth", 0)));
    } else if (e.ev == "propagate") {
      // One counter series per worker track.
      w.counter(e, "fixpoint w" + std::to_string(e.w),
                "\"applications\":" +
                    std::to_string(e.num("applications", 0)) +
                    ",\"revisions\":" + std::to_string(e.num("revisions", 0)));
    } else if (e.ev == "cache") {
      w.instant(e, "cache " + std::string(e.str("kind")), "cache", "");
    } else {
      // stem, gitd_round, spurious_vector, delay_corr_round, fuzz_*:
      // generic instants keep the timeline complete.
      w.instant(e, std::string(e.ev), "misc", "");
    }
  }
  if (!reader.error().empty()) {
    throw std::runtime_error(reader.error());
  }
  w.finish(&stats.events_out);
  stats.workers = workers.size();
  return stats;
}

}  // namespace waveck::explain
