// Trace analyzer: reconstructs per-check search trees from a JSONL trace
// (doc/EXPLAIN.md).
//
// The sink stamps every line with the open span ids ("chk", "dec"), so the
// analyzer can rebuild, per timing check: the stage waterfall, the FAN
// decision tree with per-subtree work attribution, and the cache timeline —
// without the producers ever having threaded ids through hot call sites.
// Structural violations (orphan attributions, unclosed spans, double flips)
// become warnings; a well-formed trace yields none, which is what the fuzz
// battery's trace-well-formedness property and the CI smoke step assert.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace waveck::explain {

/// One verifier pipeline stage of a check (learning, narrowing,
/// delay_correlation, gitd, stem, case_analysis).
struct StageSpan {
  std::string stage;
  std::string status;        // producer-defined; "" while still open
  std::int64_t t_begin = -1;  // sink timestamps, ns
  std::int64_t t_end = -1;

  [[nodiscard]] double seconds() const {
    return t_begin >= 0 && t_end >= t_begin
               ? static_cast<double>(t_end - t_begin) * 1e-9
               : 0.0;
  }
};

/// One FAN decision and the work directly attributed to it (events stamped
/// with its id while it was the innermost open decision).
struct DecisionNode {
  std::int64_t id = -1;
  std::int64_t parent = -1;  // -1: child of the search root
  std::string net;
  bool cls = false;
  std::int64_t depth = 0;
  std::int64_t t_open = -1;
  std::int64_t t_close = -1;
  bool backtracked = false;  // first branch failed and was flipped
  std::string close;         // "exhausted" | "witness" | "abandoned" | ""

  std::uint64_t gate_evals = 0;
  std::uint64_t narrowings = 0;
  std::uint64_t propagates = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t spurious = 0;
  /// Direct work spent under branches of this decision that failed (moved
  /// from the running branch accumulator on backtrack / exhausted close).
  std::uint64_t wasted_gate_evals = 0;

  std::vector<std::int64_t> children;
};

/// One reconstructed timing check.
struct CheckTree {
  std::int64_t chk = -1;
  std::string output;
  std::int64_t delta = 0;
  int worker = 0;
  std::string conclusion;  // from check_end; "" if the trace is truncated
  double seconds = 0.0;
  std::string witness;  // check_end "vector" payload, if any
  std::int64_t t_begin = -1;
  std::int64_t t_end = -1;
  bool closed = false;

  std::vector<StageSpan> stages;
  std::map<std::int64_t, DecisionNode> decisions;
  std::vector<std::int64_t> roots;  // decision ids with parent == -1

  // Event tallies (must equal the CheckReport/registry tallies; the fuzz
  // battery's parity property leans on this).
  std::uint64_t n_decisions = 0;
  std::uint64_t n_backtracks = 0;
  std::uint64_t n_conflicts = 0;
  std::uint64_t n_spurious = 0;
  std::uint64_t n_gitd_rounds = 0;
  std::uint64_t n_stems = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_dom_rebuilds = 0;

  /// Work stamped with this check but no decision (pipeline stages and the
  /// search root).
  std::uint64_t root_gate_evals = 0;
  std::uint64_t root_narrowings = 0;

  [[nodiscard]] std::uint64_t total_gate_evals() const;
  [[nodiscard]] std::uint64_t wasted_gate_evals() const;
  /// Fraction of this check's gate evaluations spent under decision
  /// branches that were subsequently backtracked or exhausted.
  [[nodiscard]] double wasted_ratio() const;
};

/// Per-net aggregation across every check in the trace.
struct NetStat {
  std::string net;
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t gate_evals = 0;
  std::uint64_t narrowings = 0;
};

/// Cumulative carrier-cache counters after each cache event.
struct CacheSample {
  std::int64_t t = -1;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t dom_rebuilds = 0;
};

/// One scheduler batch (parallel runs only).
struct BatchSpan {
  std::int64_t delta = 0;
  std::int64_t jobs = 0;
  std::int64_t checks = 0;
  std::int64_t checks_skipped = 0;
};

struct TraceAnalysis {
  std::vector<CheckTree> checks;  // in order of first appearance
  std::vector<BatchSpan> batches;
  std::vector<int> workers;  // distinct "w" values, ascending
  std::map<std::string, NetStat> net_stats;
  std::vector<CacheSample> cache_timeline;
  std::map<std::string, std::uint64_t> event_counts;  // per "ev" name
  std::uint64_t events = 0;
  std::int64_t t_first = -1;
  std::int64_t t_last = -1;

  /// Non-empty when the trace is a flight-recorder blackbox dump: the
  /// `fr_dump` header's trigger ("watchdog_stall", "deadline_expired",
  /// "fatal_signal", "exit", ...), plus the header's ring/record tallies.
  std::string dump_reason;
  std::int64_t dump_rings = 0;
  std::int64_t dump_records = 0;

  /// Structural problems; empty for a well-formed trace. Storage is capped
  /// (`n_warnings` keeps the true count).
  std::vector<std::string> warnings;
  std::uint64_t n_warnings = 0;

  [[nodiscard]] bool well_formed() const { return n_warnings == 0; }

  /// Nets ordered by `NetStat::*member` descending, at most `k`.
  [[nodiscard]] std::vector<const NetStat*> top_nets(
      std::uint64_t NetStat::* member, std::size_t k) const;
};

/// Streams the trace once and reconstructs everything above. A reader parse
/// error becomes a warning (the events before it are still analyzed).
[[nodiscard]] TraceAnalysis analyze_trace(std::istream& in);

}  // namespace waveck::explain
