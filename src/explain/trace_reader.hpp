// Streaming reader for waveck JSONL traces (doc/OBSERVABILITY.md).
//
// Each trace line is one flat JSON object. The reader parses every field in
// source order and keeps the *raw source token* of each value alongside its
// decoded form, so a consumer can re-serialize a line byte-for-byte (the
// `--canon` normalisation relies on this: stripping "t"/"seq" must not
// perturb any other token, or same-seed trace diffs would report false
// mismatches).
#pragma once

#include <cstdint>
#include <istream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace waveck::explain {

/// One decoded field value, with the exact source token preserved.
struct TraceValue {
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kNull };

  Kind kind = Kind::kNull;
  std::string raw;  // verbatim source token (strings include the quotes)
  std::string str;  // unescaped body (kString only)
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
};

/// One trace event. The sink-stamped header fields are mirrored into typed
/// members for convenience; `fields` holds *every* field in source order.
struct TraceEvent {
  std::string ev;
  std::int64_t seq = -1;
  std::int64_t t = -1;
  std::int64_t w = 0;
  std::int64_t chk = -1;  // enclosing check span (-1: outside any check)
  std::int64_t dec = -1;  // enclosing decision subtree (-1: search root)
  std::vector<std::pair<std::string, TraceValue>> fields;

  [[nodiscard]] const TraceValue* find(std::string_view key) const;
  /// String field body, or "" when absent / not a string.
  [[nodiscard]] std::string_view str(std::string_view key) const;
  /// Integer field, or `dflt` when absent / not a number.
  [[nodiscard]] std::int64_t num(std::string_view key,
                                 std::int64_t dflt = -1) const;
};

/// Parses one JSONL line (a flat JSON object) into `out`. Returns false and
/// fills `err` on malformed input. Nested objects/arrays are rejected: the
/// sink never emits them.
bool parse_trace_line(std::string_view line, TraceEvent& out,
                      std::string& err);

/// Same grammar without the trace-specific "ev" requirement: any flat JSON
/// object parses. The serve daemon's request parser (src/serve) reuses this
/// so the wire format and the trace format stay one dialect.
bool parse_flat_object(std::string_view line, TraceEvent& out,
                       std::string& err);

/// Re-serializes `ev` exactly as the sink wrote it, minus any field whose
/// key is in `strip`. Raw tokens are copied verbatim, so the output of a
/// no-op strip is byte-identical to the input line.
[[nodiscard]] std::string canonical_line(
    const TraceEvent& ev, std::span<const std::string_view> strip);

/// Pulls events off an istream one line at a time. A malformed line stops
/// the stream: next() returns false with error() non-empty.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in) : in_(in) {}

  /// Advances to the next event (blank lines are skipped). Returns false at
  /// end of stream or on the first malformed line.
  bool next(TraceEvent& ev);

  [[nodiscard]] std::size_t line_number() const { return line_no_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::istream& in_;
  std::string line_;
  std::size_t line_no_ = 0;
  std::string error_;
};

}  // namespace waveck::explain
