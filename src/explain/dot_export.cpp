#include "explain/dot_export.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "analysis/carriers.hpp"
#include "constraints/constraint_system.hpp"
#include "sim/floating_sim.hpp"
#include "waveform/abstract_waveform.hpp"

namespace waveck::explain {

namespace {

std::string dot_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Critical path of the witness under floating simulation: from the checked
/// output backwards, always through the latest-settling input pin.
std::vector<NetId> witness_path(const Circuit& c, NetId s,
                                const FloatingResult& fr) {
  std::vector<NetId> path{s};
  NetId cur = s;
  while (c.net(cur).driver.valid()) {
    const Gate& g = c.gate(c.net(cur).driver);
    NetId best;
    for (NetId in : g.ins) {
      if (!best.valid() ||
          fr.settle[in.index()] > fr.settle[best.index()]) {
        best = in;
      }
    }
    if (!best.valid()) break;  // constant gate
    path.push_back(best);
    cur = best;
  }
  std::reverse(path.begin(), path.end());  // input first, like PathEnum
  return path;
}

}  // namespace

std::optional<std::vector<bool>> parse_vector(const std::string& s) {
  std::vector<bool> v;
  v.reserve(s.size());
  for (const char c : s) {
    if (c == '0') v.push_back(false);
    else if (c == '1') v.push_back(true);
    else return std::nullopt;
  }
  return v;
}

DotResult carrier_dot(const Circuit& c, const std::string& output, Time delta,
                      const DotOptions& opt) {
  const std::optional<NetId> s = c.find_net(output);
  if (!s.has_value()) {
    throw std::runtime_error("no net named \"" + output + "\" in circuit \"" +
                             c.name() + "\"");
  }
  const TimingCheck check{*s, delta};

  // The carrier DAG as the search sees it right after seeding the
  // violation hypothesis (the same state the first GITD round refines).
  ConstraintSystem cs(c);
  cs.restrict_domain(*s, AbstractSignal::violating(delta));
  cs.reach_fixpoint();
  const CarrierSet carriers = dynamic_carriers(cs, check);
  const std::vector<NetId> doms = timing_dominators(c, check, carriers);
  std::unordered_set<std::uint32_t> dom_set;
  for (NetId d : doms) dom_set.insert(d.value());

  // Witness critical path (if the caller has one).
  std::vector<NetId> path;
  if (opt.witness.has_value() &&
      opt.witness->size() == c.inputs().size()) {
    path = witness_path(c, *s, simulate_floating(c, *opt.witness));
  }
  std::unordered_set<std::uint32_t> path_set;
  for (NetId n : path) path_set.insert(n.value());

  const auto included = [&](NetId n) {
    return carriers.is_carrier(n) || path_set.contains(n.value());
  };

  DotResult res;
  res.carrier_nets = carriers.count();
  res.dominators = doms.size();
  res.path_nets = path.size();

  std::ostringstream dot;
  dot << "// waveck carrier circuit: check (" << output << ", "
      << delta.str() << ")\n";
  dot << "// carriers=" << res.carrier_nets << " dominators="
      << res.dominators;
  if (!path.empty()) dot << " witness_path=" << res.path_nets;
  dot << "\ndigraph carriers {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=ellipse, fontname=\"Helvetica\", fontsize=10];\n";

  for (std::size_t i = 0; i < c.num_nets(); ++i) {
    const NetId n{static_cast<std::uint32_t>(i)};
    if (!included(n)) continue;
    dot << "  n" << i << " [label=\"" << dot_escape(c.net(n).name);
    if (carriers.is_carrier(n)) {
      dot << "\\nk=" << carriers.distance[i].str();
    }
    dot << '"';
    if (n == *s) dot << ", shape=doublecircle";
    if (dom_set.contains(n.value())) {
      dot << ", style=filled, fillcolor=\"#bfdbfe\", penwidth=2";
    }
    if (path_set.contains(n.value())) dot << ", color=red";
    dot << "];\n";
  }

  // Path edges are the consecutive pairs of the witness path; everything
  // else included is a plain carrier-DAG edge.
  std::unordered_set<std::uint64_t> path_edges;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    path_edges.insert((std::uint64_t{path[i].value()} << 32) |
                      path[i + 1].value());
  }
  for (GateId g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    if (!included(gate.out)) continue;
    for (NetId in : gate.ins) {
      if (!included(in)) continue;
      dot << "  n" << in.index() << " -> n" << gate.out.index()
          << " [label=\"" << to_string(gate.type) << '"';
      if (path_edges.contains((std::uint64_t{in.value()} << 32) |
                              gate.out.value())) {
        dot << ", color=red, penwidth=2";
      }
      dot << "];\n";
    }
  }
  dot << "}\n";
  res.dot = dot.str();
  return res;
}

}  // namespace waveck::explain
