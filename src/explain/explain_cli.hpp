// `waveck explain` driver: turns a JSONL trace into a human report, a JSON
// report, a chrome trace, per-check carrier DOT files, or a canonical
// (timestamp-free) normalisation for byte-exact trace diffing.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace waveck::explain {

/// Runs `waveck explain ARGS...` (ARGS excludes the command word).
/// Exit codes: 0 = clean; 1 = the trace is structurally damaged (analyzer
/// warnings were printed); 2 = usage / file / parse error.
int explain_cli_main(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err);

}  // namespace waveck::explain
