// Chrome trace-event (about://tracing, Perfetto) export of a waveck JSONL
// trace. One track ("tid") per worker id: checks, pipeline stages and
// decision subtrees become nested duration events; backtracks, conflicts
// and cache probes become instants; fixpoint work becomes a counter series.
#pragma once

#include <istream>
#include <ostream>

namespace waveck::explain {

struct ChromeExportStats {
  std::size_t events_in = 0;   // trace lines consumed
  std::size_t events_out = 0;  // chrome events written (metadata included)
  std::size_t workers = 0;     // distinct tracks
};

/// Streams `in` (JSONL trace) into `out` as a chrome trace-event JSON array.
/// Malformed input throws std::runtime_error (the CLI reports and exits 2).
ChromeExportStats write_chrome_trace(std::istream& in, std::ostream& out);

}  // namespace waveck::explain
