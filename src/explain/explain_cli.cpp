#include "explain/explain_cli.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "common/telemetry.hpp"
#include "explain/analyzer.hpp"
#include "explain/chrome_export.hpp"
#include "explain/dot_export.hpp"
#include "explain/trace_reader.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/delay_annotation.hpp"
#include "netlist/transforms.hpp"
#include "netlist/verilog_io.hpp"

namespace waveck::explain {

namespace {

struct Options {
  std::string trace_path;
  bool json = false;
  bool canon = false;
  std::string chrome_path;
  std::string dot_dir;
  std::string circuit_path;
  std::string delays_path;
  std::int64_t tree_chk = -1;  // --tree CHK: render that decision tree
  std::size_t top = 10;
};

int usage(std::ostream& err) {
  err << "usage: waveck explain TRACE.jsonl [options]\n"
         "  (no options)        text report: checks, stages, hot nets, waste\n"
         "  --json              the same analysis as a JSON document\n"
         "  --tree CHK          also render check CHK's decision tree\n"
         "  --top K             rows in the hot-net tables (default 10)\n"
         "  --chrome FILE.json  chrome://tracing / Perfetto export\n"
         "  --dot DIR           carrier-circuit DOT per violating check\n"
         "                      (needs --circuit; witness path in red)\n"
         "  --circuit FILE      .bench/.v the trace was produced from\n"
         "  --delays FILE       delay annotation for --circuit\n"
         "  --canon             strip \"t\"/\"seq\" and print the trace to\n"
         "                      stdout (byte-stable; for same-seed diffs)\n"
         "exit: 0 clean, 1 trace has structural warnings, 2 usage/IO error\n";
  return 2;
}

/// Mirrors the main CLI's circuit loader (uniform delay 10 by default).
Circuit load_circuit(const std::string& path, const std::string& delays) {
  const bool verilog =
      path.size() > 2 && path.substr(path.size() - 2) == ".v";
  Circuit c = verilog ? read_verilog_file(path) : read_bench_file(path);
  if (!delays.empty()) {
    read_delays_file(delays, c);
  } else {
    c.set_uniform_delay(DelaySpec::fixed(10));
  }
  return decompose_for_solver(c);
}

int run_canon(const Options& opt, std::ostream& out, std::ostream& err) {
  std::ifstream in(opt.trace_path);
  if (!in) {
    err << "error: cannot open " << opt.trace_path << "\n";
    return 2;
  }
  static constexpr std::array<std::string_view, 2> kStrip = {"t", "seq"};
  TraceReader reader(in);
  TraceEvent e;
  while (reader.next(e)) out << canonical_line(e, kStrip) << "\n";
  if (!reader.error().empty()) {
    err << "error: " << reader.error() << "\n";
    return 2;
  }
  return 0;
}

std::string pct(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ratio * 100.0 << "%";
  return os.str();
}

std::string secs(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << s << "s";
  return os.str();
}

void render_tree(std::ostream& out, const CheckTree& c, std::int64_t id,
                 const std::string& indent) {
  const auto it = c.decisions.find(id);
  if (it == c.decisions.end()) return;
  const DecisionNode& d = it->second;
  out << indent << d.net << "=" << (d.cls ? 1 : 0) << "  ["
      << (d.close.empty() ? "open" : d.close)
      << (d.backtracked ? ", flipped" : "") << ", evals " << d.gate_evals
      << ", wasted " << d.wasted_gate_evals << ", conflicts " << d.conflicts
      << "]\n";
  for (const std::int64_t child : d.children) {
    render_tree(out, c, child, indent + "  ");
  }
}

void text_report(const TraceAnalysis& a, const Options& opt,
                 std::ostream& out) {
  const double span = a.t_first >= 0 && a.t_last >= a.t_first
                          ? static_cast<double>(a.t_last - a.t_first) * 1e-9
                          : 0.0;
  out << "trace: " << a.events << " events over " << secs(span) << ", "
      << a.workers.size() << " worker(s), " << a.checks.size()
      << " check(s)";
  if (!a.batches.empty()) out << ", " << a.batches.size() << " batch(es)";
  out << "\n";
  if (!a.dump_reason.empty()) {
    out << "flight-recorder dump: reason=" << a.dump_reason << ", "
        << a.dump_rings << " ring(s), " << a.dump_records
        << " record(s) seen\n";
  }
  out << "\n";

  // ---- per-check table ----------------------------------------------------
  std::map<std::string, std::size_t> by_conclusion;
  out << std::left << std::setw(5) << "CHK" << std::setw(18) << "OUTPUT"
      << std::right << std::setw(7) << "DELTA" << std::setw(6) << "CONCL"
      << std::setw(7) << "DECS" << std::setw(7) << "BTRK" << std::setw(7)
      << "CONFL" << std::setw(10) << "EVALS" << std::setw(8) << "WASTED"
      << std::setw(11) << "SECONDS" << "\n";
  for (const CheckTree& c : a.checks) {
    ++by_conclusion[c.conclusion.empty() ? "?" : c.conclusion];
    out << std::left << std::setw(5) << c.chk << std::setw(18) << c.output
        << std::right << std::setw(7) << c.delta << std::setw(6)
        << (c.conclusion.empty() ? "?" : c.conclusion) << std::setw(7)
        << c.n_decisions << std::setw(7) << c.n_backtracks << std::setw(7)
        << c.n_conflicts << std::setw(10) << c.total_gate_evals()
        << std::setw(8) << pct(c.wasted_ratio()) << std::setw(11)
        << std::fixed << std::setprecision(6) << c.seconds << "\n";
  }
  out << "conclusions:";
  for (const auto& [k, n] : by_conclusion) out << " " << k << "=" << n;
  out << "\n\n";

  // ---- stage waterfall (totals across checks) -----------------------------
  struct StageTotal {
    double seconds = 0.0;
    std::vector<double> samples;  // per-check durations, for exact quantiles
  };
  std::vector<std::pair<std::string, StageTotal>> stage_order;
  for (const CheckTree& c : a.checks) {
    for (const StageSpan& s : c.stages) {
      auto it = std::find_if(stage_order.begin(), stage_order.end(),
                             [&](const auto& p) { return p.first == s.stage; });
      if (it == stage_order.end()) {
        stage_order.push_back({s.stage, {}});
        it = std::prev(stage_order.end());
      }
      it->second.seconds += s.seconds();
      it->second.samples.push_back(s.seconds());
    }
  }
  // Exact order-statistic quantile over the collected durations (sorted,
  // linearly interpolated between ranks) -- unlike the registry histograms
  // there is no bucketing error here, the full sample list is in memory.
  const auto quantile = [](const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  };
  if (!stage_order.empty()) {
    out << "stage waterfall (summed over checks):\n";
    out << "  " << std::left << std::setw(18) << "STAGE" << std::right
        << std::setw(11) << "TOTAL" << std::setw(7) << "COUNT"
        << std::setw(11) << "P50" << std::setw(11) << "P90"
        << std::setw(11) << "P99" << "\n";
    for (auto& [stage, tot] : stage_order) {
      std::sort(tot.samples.begin(), tot.samples.end());
      out << "  " << std::left << std::setw(18) << stage << std::right
          << std::setw(10) << std::fixed << std::setprecision(6)
          << tot.seconds << "s" << std::setw(7) << tot.samples.size()
          << std::setw(11) << quantile(tot.samples, 0.50) << std::setw(11)
          << quantile(tot.samples, 0.90) << std::setw(11)
          << quantile(tot.samples, 0.99) << "\n";
    }
    out << "\n";
  }

  // ---- hot nets -----------------------------------------------------------
  const auto net_table = [&](const char* title,
                             std::uint64_t NetStat::* member) {
    const auto rows = a.top_nets(member, opt.top);
    if (rows.empty()) return;
    out << title << "\n";
    out << "  " << std::left << std::setw(18) << "NET" << std::right
        << std::setw(10) << "EVALS" << std::setw(10) << "NARROW"
        << std::setw(7) << "DECS" << std::setw(7) << "BTRK" << "\n";
    for (const NetStat* ns : rows) {
      out << "  " << std::left << std::setw(18) << ns->net << std::right
          << std::setw(10) << ns->gate_evals << std::setw(10)
          << ns->narrowings << std::setw(7) << ns->decisions << std::setw(7)
          << ns->backtracks << "\n";
    }
    out << "\n";
  };
  net_table("hot nets by attributed gate evals:", &NetStat::gate_evals);
  net_table("backtrack hotspots (by decision net):", &NetStat::backtracks);

  // ---- cache + waste ------------------------------------------------------
  std::uint64_t hits = 0, misses = 0, rebuilds = 0;
  if (!a.cache_timeline.empty()) {
    hits = a.cache_timeline.back().hits;
    misses = a.cache_timeline.back().misses;
    rebuilds = a.cache_timeline.back().dom_rebuilds;
  }
  if (hits + misses > 0) {
    out << "carrier cache: " << hits << " hits, " << misses << " misses ("
        << pct(static_cast<double>(hits) /
               static_cast<double>(hits + misses))
        << " hit rate), " << rebuilds << " dominator rebuilds\n";
  }
  std::uint64_t total = 0, wasted = 0;
  for (const CheckTree& c : a.checks) {
    total += c.total_gate_evals();
    wasted += c.wasted_gate_evals();
  }
  out << "search work: " << total << " gate evals, " << wasted
      << " under failed branches ("
      << pct(total == 0 ? 0.0
                        : static_cast<double>(wasted) /
                              static_cast<double>(total))
      << " wasted)\n";

  // ---- optional decision tree --------------------------------------------
  if (opt.tree_chk >= 0) {
    const auto it =
        std::find_if(a.checks.begin(), a.checks.end(),
                     [&](const CheckTree& c) { return c.chk == opt.tree_chk; });
    if (it == a.checks.end()) {
      out << "\n(no check with id " << opt.tree_chk << " in this trace)\n";
    } else {
      out << "\ndecision tree of check " << it->chk << " (" << it->output
          << ", delta " << it->delta << ", " << it->n_decisions
          << " decisions):\n";
      for (const std::int64_t root : it->roots) {
        render_tree(out, *it, root, "  ");
      }
      if (!it->witness.empty()) out << "  witness: " << it->witness << "\n";
    }
  }
}

void json_report(const TraceAnalysis& a, std::ostream& out) {
  out << "{\"events\":" << a.events << ",\"t_span_ns\":"
      << (a.t_first >= 0 && a.t_last >= a.t_first ? a.t_last - a.t_first : 0);
  if (!a.dump_reason.empty()) {
    out << ",\"dump_reason\":\"" << telemetry::json_escape(a.dump_reason)
        << "\"";
  }
  out << ",\"workers\":[";
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    out << (i ? "," : "") << a.workers[i];
  }
  out << "],\"checks\":[";
  bool first = true;
  for (const CheckTree& c : a.checks) {
    if (!first) out << ",";
    first = false;
    out << "{\"chk\":" << c.chk << ",\"output\":\""
        << telemetry::json_escape(c.output) << "\",\"delta\":" << c.delta
        << ",\"worker\":" << c.worker << ",\"conclusion\":\""
        << telemetry::json_escape(c.conclusion) << "\",\"seconds\":"
        << c.seconds << ",\"decisions\":" << c.n_decisions
        << ",\"backtracks\":" << c.n_backtracks << ",\"conflicts\":"
        << c.n_conflicts << ",\"spurious\":" << c.n_spurious
        << ",\"gitd_rounds\":" << c.n_gitd_rounds << ",\"stems\":"
        << c.n_stems << ",\"gate_evals\":" << c.total_gate_evals()
        << ",\"wasted_gate_evals\":" << c.wasted_gate_evals()
        << ",\"wasted_ratio\":" << c.wasted_ratio() << ",\"cache\":{\"hits\":"
        << c.cache_hits << ",\"misses\":" << c.cache_misses
        << ",\"dom_rebuilds\":" << c.cache_dom_rebuilds << "},\"stages\":[";
    for (std::size_t i = 0; i < c.stages.size(); ++i) {
      const StageSpan& s = c.stages[i];
      out << (i ? "," : "") << "{\"stage\":\""
          << telemetry::json_escape(s.stage) << "\",\"status\":\""
          << telemetry::json_escape(s.status) << "\",\"seconds\":"
          << s.seconds() << "}";
    }
    out << "]";
    if (!c.witness.empty()) {
      out << ",\"witness\":\"" << telemetry::json_escape(c.witness) << "\"";
    }
    out << "}";
  }
  out << "],\"net_stats\":[";
  first = true;
  for (const NetStat* ns : a.top_nets(&NetStat::gate_evals, 50)) {
    if (!first) out << ",";
    first = false;
    out << "{\"net\":\"" << telemetry::json_escape(ns->net)
        << "\",\"gate_evals\":" << ns->gate_evals << ",\"narrowings\":"
        << ns->narrowings << ",\"decisions\":" << ns->decisions
        << ",\"backtracks\":" << ns->backtracks << "}";
  }
  out << "],\"cache_samples\":" << a.cache_timeline.size()
      << ",\"n_warnings\":" << a.n_warnings << ",\"warnings\":[";
  for (std::size_t i = 0; i < a.warnings.size(); ++i) {
    out << (i ? "," : "") << "\"" << telemetry::json_escape(a.warnings[i])
        << "\"";
  }
  out << "]}\n";
}

std::string sanitize(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

int write_dots(const TraceAnalysis& a, const Options& opt, std::ostream& out,
               std::ostream& err) {
  Circuit c;
  try {
    c = load_circuit(opt.circuit_path, opt.delays_path);
  } catch (const std::exception& e) {
    err << "error: cannot load --circuit: " << e.what() << "\n";
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(opt.dot_dir, ec);
  if (ec) {
    err << "error: cannot create " << opt.dot_dir << ": " << ec.message()
        << "\n";
    return 2;
  }
  std::size_t written = 0;
  for (const CheckTree& chk : a.checks) {
    if (chk.conclusion != "V") continue;  // carrier DOTs: violating checks
    DotOptions dopt;
    if (!chk.witness.empty()) dopt.witness = parse_vector(chk.witness);
    try {
      const DotResult res = carrier_dot(c, chk.output, Time{chk.delta}, dopt);
      const std::string path = opt.dot_dir + "/chk" +
                               std::to_string(chk.chk) + "_" +
                               sanitize(chk.output) + ".dot";
      std::ofstream os(path);
      if (!os) {
        err << "error: cannot write " << path << "\n";
        return 2;
      }
      os << res.dot;
      ++written;
      out << "dot: " << path << " (" << res.carrier_nets << " carriers, "
          << res.dominators << " dominators"
          << (res.path_nets > 0
                  ? ", witness path " + std::to_string(res.path_nets) + " nets"
                  : std::string())
          << ")\n";
    } catch (const std::exception& e) {
      err << "error: dot export for check " << chk.chk << ": " << e.what()
          << "\n";
      return 2;
    }
  }
  if (written == 0) {
    out << "dot: no violating checks in trace, nothing to render\n";
  }
  return 0;
}

}  // namespace

int explain_cli_main(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err) {
  Options opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "error: " << flag << " needs an argument\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--json") opt.json = true;
    else if (a == "--canon") opt.canon = true;
    else if (a == "--chrome") {
      const std::string* v = value("--chrome");
      if (v == nullptr) return usage(err);
      opt.chrome_path = *v;
    } else if (a == "--dot") {
      const std::string* v = value("--dot");
      if (v == nullptr) return usage(err);
      opt.dot_dir = *v;
    } else if (a == "--circuit") {
      const std::string* v = value("--circuit");
      if (v == nullptr) return usage(err);
      opt.circuit_path = *v;
    } else if (a == "--delays") {
      const std::string* v = value("--delays");
      if (v == nullptr) return usage(err);
      opt.delays_path = *v;
    } else if (a == "--tree") {
      const std::string* v = value("--tree");
      if (v == nullptr) return usage(err);
      try {
        opt.tree_chk = std::stoll(*v);
      } catch (const std::exception&) {
        err << "error: --tree needs a check id, got " << *v << "\n";
        return usage(err);
      }
    } else if (a == "--top") {
      const std::string* v = value("--top");
      if (v == nullptr) return usage(err);
      try {
        opt.top = std::stoull(*v);
      } catch (const std::exception&) {
        err << "error: --top needs a number, got " << *v << "\n";
        return usage(err);
      }
    } else if (!a.empty() && a[0] == '-') {
      err << "error: unknown flag " << a << "\n";
      return usage(err);
    } else if (opt.trace_path.empty()) {
      opt.trace_path = a;
    } else {
      err << "error: more than one trace file given\n";
      return usage(err);
    }
  }
  if (opt.trace_path.empty()) return usage(err);
  if (!opt.dot_dir.empty() && opt.circuit_path.empty()) {
    err << "error: --dot needs --circuit FILE\n";
    return usage(err);
  }

  if (opt.canon) return run_canon(opt, out, err);

  std::ifstream in(opt.trace_path);
  if (!in) {
    err << "error: cannot open " << opt.trace_path << "\n";
    return 2;
  }
  const TraceAnalysis analysis = analyze_trace(in);

  if (!opt.chrome_path.empty()) {
    std::ifstream cin2(opt.trace_path);
    std::ofstream cout2(opt.chrome_path);
    if (!cout2) {
      err << "error: cannot write " << opt.chrome_path << "\n";
      return 2;
    }
    try {
      const ChromeExportStats stats = write_chrome_trace(cin2, cout2);
      out << "chrome: " << opt.chrome_path << " (" << stats.events_out
          << " events, " << stats.workers << " track(s))\n";
    } catch (const std::exception& e) {
      err << "error: chrome export: " << e.what() << "\n";
      return 2;
    }
  }
  if (!opt.dot_dir.empty()) {
    const int rc = write_dots(analysis, opt, out, err);
    if (rc != 0) return rc;
  }

  if (opt.json) {
    json_report(analysis, out);
  } else {
    text_report(analysis, opt, out);
  }

  if (analysis.n_warnings > 0) {
    err << "trace is structurally damaged: " << analysis.n_warnings
        << " warning(s)\n";
    for (const std::string& w : analysis.warnings) err << "  " << w << "\n";
    return 1;
  }
  return 0;
}

}  // namespace waveck::explain
