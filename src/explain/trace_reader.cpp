#include "explain/trace_reader.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace waveck::explain {

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Parses a JSON string starting at s[i] == '"'. Fills `v.raw` (with quotes)
/// and `v.str` (unescaped). Returns false on malformed escapes / truncation.
bool parse_string(std::string_view s, std::size_t& i, TraceValue& v,
                  std::string& err) {
  const std::size_t start = i;
  ++i;  // opening quote
  v.kind = TraceValue::Kind::kString;
  v.str.clear();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      v.raw.assign(s.substr(start, i - start));
      return true;
    }
    if (c != '\\') {
      v.str.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= s.size()) break;
    const char e = s[i + 1];
    i += 2;
    switch (e) {
      case '"': v.str.push_back('"'); break;
      case '\\': v.str.push_back('\\'); break;
      case '/': v.str.push_back('/'); break;
      case 'b': v.str.push_back('\b'); break;
      case 'f': v.str.push_back('\f'); break;
      case 'n': v.str.push_back('\n'); break;
      case 'r': v.str.push_back('\r'); break;
      case 't': v.str.push_back('\t'); break;
      case 'u': {
        if (i + 4 > s.size()) {
          err = "truncated \\u escape";
          return false;
        }
        unsigned cp = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[i + k];
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
          else {
            err = "bad \\u escape digit";
            return false;
          }
        }
        i += 4;
        append_utf8(v.str, cp);
        break;
      }
      default:
        err = "unknown escape sequence";
        return false;
    }
  }
  err = "unterminated string";
  return false;
}

bool parse_value(std::string_view s, std::size_t& i, TraceValue& v,
                 std::string& err) {
  if (i >= s.size()) {
    err = "missing value";
    return false;
  }
  const char c = s[i];
  if (c == '"') return parse_string(s, i, v, err);
  if (c == 't' && s.substr(i, 4) == "true") {
    v.kind = TraceValue::Kind::kBool;
    v.b = true;
    v.raw = "true";
    i += 4;
    return true;
  }
  if (c == 'f' && s.substr(i, 5) == "false") {
    v.kind = TraceValue::Kind::kBool;
    v.b = false;
    v.raw = "false";
    i += 5;
    return true;
  }
  if (c == 'n' && s.substr(i, 4) == "null") {
    v.kind = TraceValue::Kind::kNull;
    v.raw = "null";
    i += 4;
    return true;
  }
  if (c == '-' || (c >= '0' && c <= '9')) {
    const std::size_t start = i;
    if (c == '-') ++i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i < s.size() && s[i] == '.') {
      ++i;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    }
    v.kind = TraceValue::Kind::kNumber;
    v.raw.assign(s.substr(start, i - start));
    std::from_chars(v.raw.data(), v.raw.data() + v.raw.size(), v.i);
    v.d = std::strtod(v.raw.c_str(), nullptr);
    return true;
  }
  err = "unexpected character in value";
  return false;
}

}  // namespace

const TraceValue* TraceEvent::find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string_view TraceEvent::str(std::string_view key) const {
  const TraceValue* v = find(key);
  return v != nullptr && v->kind == TraceValue::Kind::kString
             ? std::string_view{v->str}
             : std::string_view{};
}

std::int64_t TraceEvent::num(std::string_view key, std::int64_t dflt) const {
  const TraceValue* v = find(key);
  return v != nullptr && v->kind == TraceValue::Kind::kNumber ? v->i : dflt;
}

bool parse_flat_object(std::string_view line, TraceEvent& out,
                       std::string& err) {
  out = TraceEvent{};
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') {
    err = "line is not a JSON object";
    return false;
  }
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(line, i);
      TraceValue key;
      if (i >= line.size() || line[i] != '"' ||
          !parse_string(line, i, key, err)) {
        if (err.empty()) err = "expected field key";
        return false;
      }
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') {
        err = "expected ':' after key";
        return false;
      }
      ++i;
      skip_ws(line, i);
      TraceValue val;
      if (!parse_value(line, i, val, err)) return false;
      out.fields.emplace_back(std::move(key.str), std::move(val));
      skip_ws(line, i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      err = "expected ',' or '}'";
      return false;
    }
  }
  skip_ws(line, i);
  if (i != line.size()) {
    err = "trailing characters after object";
    return false;
  }

  for (const auto& [k, v] : out.fields) {
    if (k == "ev" && v.kind == TraceValue::Kind::kString) out.ev = v.str;
    else if (k == "seq") out.seq = v.i;
    else if (k == "t") out.t = v.i;
    else if (k == "w") out.w = v.i;
    else if (k == "chk") out.chk = v.i;
    else if (k == "dec") out.dec = v.i;
  }
  return true;
}

bool parse_trace_line(std::string_view line, TraceEvent& out,
                      std::string& err) {
  if (!parse_flat_object(line, out, err)) return false;
  if (out.ev.empty()) {
    err = "missing \"ev\" field";
    return false;
  }
  return true;
}

std::string canonical_line(const TraceEvent& ev,
                           std::span<const std::string_view> strip) {
  std::string out;
  out.reserve(128);
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : ev.fields) {
    bool skip = false;
    for (std::string_view s : strip) {
      if (k == s) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(k);  // keys the sink emits never need escaping
    out.append("\":");
    out.append(v.raw);
  }
  out.push_back('}');
  return out;
}

bool TraceReader::next(TraceEvent& ev) {
  while (std::getline(in_, line_)) {
    ++line_no_;
    if (line_.empty()) continue;
    std::string err;
    if (!parse_trace_line(line_, ev, err)) {
      error_ = "line " + std::to_string(line_no_) + ": " + err;
      return false;
    }
    return true;
  }
  return false;
}

}  // namespace waveck::explain
