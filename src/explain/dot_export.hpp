// Graphviz DOT export of the dynamic carrier circuit of one timing check
// (paper Defs. 5/7): carrier nets with their distance-to-output, timing
// dominators highlighted, and — when the check found a witness vector —
// the critical path of that vector's floating simulation drawn in red.
//
// The trace records the check (output, delta, witness vector) but not the
// netlist, so rendering needs the circuit the trace was produced from.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "netlist/circuit.hpp"

namespace waveck::explain {

struct DotOptions {
  /// Witness input vector ("0101..." over c.inputs() order), if the check
  /// concluded with a violation.
  std::optional<std::vector<bool>> witness;
};

struct DotResult {
  std::string dot;
  std::size_t carrier_nets = 0;
  std::size_t dominators = 0;
  std::size_t path_nets = 0;  // witness critical path length (0: no witness)
};

/// Renders the dynamic-carrier DAG of check (output, delta) after the
/// initial violation-seeded fixpoint. `output` names a net of `c`; throws
/// std::runtime_error if it does not exist.
[[nodiscard]] DotResult carrier_dot(const Circuit& c,
                                    const std::string& output, Time delta,
                                    const DotOptions& opt = {});

/// Parses a witness vector string of '0'/'1' (as emitted in the trace's
/// check_end "vector" field). Returns nullopt on any other character.
[[nodiscard]] std::optional<std::vector<bool>> parse_vector(
    const std::string& s);

}  // namespace waveck::explain
